package repro

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/page"
	"repro/internal/trace"
)

// benchOpts scale the databases down so the full figure suite runs in
// minutes. experiment.Get memoizes builds, so the database cost is paid
// once per process; each benchmark iteration measures the experiment
// itself (trace recording and policy replays).
var benchOpts = experiment.Options{Objects: 24_000, Places: 600, Seed: 1}

// benchFigure runs one paper figure end to end per iteration and reports
// the mean absolute gain across its cells as a metric.
func benchFigure(b *testing.B, id string) {
	b.Helper()
	fn := experiment.Figures()[id]
	if fn == nil {
		b.Fatalf("unknown figure %q", id)
	}
	// Prime the database cache outside the timer.
	if _, err := experiment.Get(1, benchOpts); err != nil {
		b.Fatal(err)
	}
	if _, err := experiment.Get(2, benchOpts); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var tables []*experiment.Table
	for i := 0; i < b.N; i++ {
		var err error
		tables, err = fn(benchOpts, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	sum, n := 0.0, 0
	for _, t := range tables {
		for _, row := range t.Cells {
			for _, v := range row {
				if v < 0 {
					v = -v
				}
				sum += v
				n++
			}
		}
	}
	if n > 0 {
		b.ReportMetric(sum/float64(n), "mean|gain|%")
	}
	b.ReportMetric(float64(len(tables)), "tables")
}

// BenchmarkFig04LRUPvsLRU regenerates Figure 4: type/priority-based LRU
// against plain LRU over all buffer sizes on both databases.
func BenchmarkFig04LRUPvsLRU(b *testing.B) { benchFigure(b, "4") }

// BenchmarkFig05LRUK regenerates Figure 5: LRU-2/3/5 against LRU.
func BenchmarkFig05LRUK(b *testing.B) { benchFigure(b, "5") }

// BenchmarkFig06SpatialVariants regenerates Figure 6: the five spatial
// strategies relative to A.
func BenchmarkFig06SpatialVariants(b *testing.B) { benchFigure(b, "6") }

// BenchmarkFig07Uniform regenerates Figure 7: the uniform-distribution
// comparison of LRU-P, A and LRU-2.
func BenchmarkFig07Uniform(b *testing.B) { benchFigure(b, "7") }

// BenchmarkFig08IdenticalSimilar regenerates Figure 8.
func BenchmarkFig08IdenticalSimilar(b *testing.B) { benchFigure(b, "8") }

// BenchmarkFig09IndependentIntensified regenerates Figure 9.
func BenchmarkFig09IndependentIntensified(b *testing.B) { benchFigure(b, "9") }

// BenchmarkFig12StaticCandidate regenerates Figure 12: SLRU with static
// candidate-set sizes against the pure spatial strategy.
func BenchmarkFig12StaticCandidate(b *testing.B) { benchFigure(b, "12") }

// BenchmarkFig13ASB regenerates Figure 13 — the headline comparison of
// A, SLRU, ASB and LRU-2 against LRU.
func BenchmarkFig13ASB(b *testing.B) { benchFigure(b, "13") }

// BenchmarkFig14Adaptation regenerates Figure 14: the candidate-set size
// of the ASB over the mixed INT/U/S workload.
func BenchmarkFig14Adaptation(b *testing.B) { benchFigure(b, "14") }

// BenchmarkLRUTvsLRUP regenerates the §3.2 LRU-T/LRU-P comparison.
func BenchmarkLRUTvsLRUP(b *testing.B) { benchFigure(b, "lrut") }

// BenchmarkPolicyReplay measures raw replacement-policy throughput: one
// recorded reference string replayed through each policy at a fixed
// buffer size (ns/op is per full replay; the refs/op metric sizes it).
func BenchmarkPolicyReplay(b *testing.B) {
	db, err := experiment.Get(1, benchOpts)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := db.Trace("U-W-100", 1)
	if err != nil {
		b.Fatal(err)
	}
	frames := db.Frames(0.047)
	for _, f := range core.StandardFactories() {
		f := f
		b.Run(f.Name, func(b *testing.B) {
			b.ReportMetric(float64(tr.Len()), "refs/op")
			for i := 0; i < b.N; i++ {
				if _, err := trace.Replay(tr, db.Store, f.New(frames), frames); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationASBCriteria measures the ASB with each spatial
// criterion on a mixed workload — the design-choice ablation called out
// in DESIGN.md §6.
func BenchmarkAblationASBCriteria(b *testing.B) {
	db, err := experiment.Get(1, benchOpts)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := db.Trace("U-W-100", 1)
	if err != nil {
		b.Fatal(err)
	}
	frames := db.Frames(0.047)
	lruStats, err := trace.Replay(tr, db.Store, core.NewLRU(), frames)
	if err != nil {
		b.Fatal(err)
	}
	for _, crit := range page.Criteria() {
		crit := crit
		b.Run(crit.String(), func(b *testing.B) {
			var gain float64
			for i := 0; i < b.N; i++ {
				opts := core.DefaultASBOptions()
				opts.Criterion = crit
				st, err := trace.Replay(tr, db.Store, core.NewASB(frames, opts), frames)
				if err != nil {
					b.Fatal(err)
				}
				gain = (float64(lruStats.DiskReads())/float64(st.DiskReads()) - 1) * 100
			}
			b.ReportMetric(gain, "gain%")
		})
	}
}

// BenchmarkAblationOverflowSize sweeps the ASB overflow-buffer share —
// the paper's future-work item 1.
func BenchmarkAblationOverflowSize(b *testing.B) {
	db, err := experiment.Get(1, benchOpts)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := db.Trace("U-W-100", 1)
	if err != nil {
		b.Fatal(err)
	}
	frames := db.Frames(0.047)
	lruStats, err := trace.Replay(tr, db.Store, core.NewLRU(), frames)
	if err != nil {
		b.Fatal(err)
	}
	for _, frac := range []float64{0.05, 0.10, 0.20, 0.30, 0.40} {
		frac := frac
		b.Run(fmt.Sprintf("overflow=%.0f%%", frac*100), func(b *testing.B) {
			var gain float64
			for i := 0; i < b.N; i++ {
				opts := core.DefaultASBOptions()
				opts.OverflowFrac = frac
				st, err := trace.Replay(tr, db.Store, core.NewASB(frames, opts), frames)
				if err != nil {
					b.Fatal(err)
				}
				gain = (float64(lruStats.DiskReads())/float64(st.DiskReads()) - 1) * 100
			}
			b.ReportMetric(gain, "gain%")
		})
	}
}

// BenchmarkUpdateWorkload runs the mixed query/insert/delete workload
// (the paper's future-work item 2) under each policy, reporting physical
// reads + write-backs as the io/op metric.
func BenchmarkUpdateWorkload(b *testing.B) {
	factories := make([]core.Factory, 0, 4)
	for _, n := range []string{"LRU", "LRU-2", "A", "ASB"} {
		f, err := core.FactoryByName(n)
		if err != nil {
			b.Fatal(err)
		}
		factories = append(factories, f)
	}
	mix := experiment.DefaultUpdateMix()
	for _, f := range factories {
		f := f
		b.Run(f.Name, func(b *testing.B) {
			var io uint64
			for i := 0; i < b.N; i++ {
				res, err := experiment.RunUpdateWorkload(1, 12_000, 0.03,
					[]core.Factory{f}, mix, 1)
				if err != nil {
					b.Fatal(err)
				}
				io = res[0].IO
			}
			b.ReportMetric(float64(io), "io/op")
		})
	}
}
