// Command asbviz reproduces Figure 14 of the paper: the candidate-set
// size of the adaptable spatial buffer over the concatenated mixed
// workload INT-W-33 + U-W-33 + S-W-33. It prints per-phase averages, an
// ASCII plot of the trajectory, and optionally the full series as CSV.
//
//	asbviz -db 1 -frac 0.047
//	asbviz -csv trajectory.csv
//
// Instead of recomputing, -in renders a previously captured trajectory
// (written by asbviz -csv or spatialbench -ctraj):
//
//	asbviz -in trajectory.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiment"
	"repro/internal/obs"
)

func main() {
	var (
		dbNum   = flag.Int("db", 1, "database number (1 or 2)")
		objects = flag.Int("objects", 0, "object count (0 = default scale)")
		seed    = flag.Int64("seed", 1, "generation seed")
		frac    = flag.Float64("frac", experiment.LargestFrac, "buffer size as a fraction of the page count")
		csvPath = flag.String("csv", "", "write the (refIndex, candidateSize) series as CSV")
		inPath  = flag.String("in", "", "render a previously captured trajectory CSV instead of recomputing")
		width   = flag.Int("width", 100, "plot width in columns")
		height  = flag.Int("height", 20, "plot height in rows")
	)
	flag.Parse()

	var err error
	if *inPath != "" {
		err = runFromFile(*inPath, *width, *height)
	} else {
		err = run(*dbNum, *objects, *seed, *frac, *csvPath, *width, *height)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "asbviz:", err)
		os.Exit(1)
	}
}

func run(dbNum, objects int, seed int64, frac float64, csvPath string, width, height int) error {
	db, err := experiment.Get(dbNum, experiment.Options{Objects: objects, Seed: seed})
	if err != nil {
		return err
	}
	at, err := experiment.RunAdaptation(db, frac, seed)
	if err != nil {
		return err
	}

	fmt.Printf("%s, buffer %.1f%% (%d frames; main part %d, initial candidate %d)\n",
		db.Name, frac*100, at.Frames, at.MainCap, at.Initial)
	phases := []string{"INT-W-33", "U-W-33", "S-W-33"}
	for p, name := range phases {
		avg := at.PhaseAverage(p)
		fmt.Printf("phase %d (%-8s): avg candidate size %6.1f  (%.0f%% of main part)\n",
			p+1, name, avg, avg/float64(at.MainCap)*100)
	}
	fmt.Printf("%d adaptation events over %d references\n\n", len(at.Sizes), at.PhaseEnds[2])

	plot(at.RefAt, at.Sizes, at.PhaseEnds[2], at.MainCap, at.Initial, at.PhaseEnds[:2], width, height)
	legend(width, phases)

	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		if err := obs.WriteTrajectoryCSV(f, at.RefAt, at.Sizes); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("\nwrote %d samples to %s\n", len(at.Sizes), csvPath)
	}
	return nil
}

// runFromFile renders a captured trajectory. The CSV carries no phase
// boundaries or buffer geometry, so bounds are inferred from the data:
// the y-axis spans up to the largest candidate size seen and the x-axis
// ends at the last sample.
func runFromFile(path string, width, height int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	refs, cands, err := obs.ReadTrajectoryCSV(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(refs) == 0 {
		fmt.Println("(no adaptation events)")
		return nil
	}
	maxCand, total := cands[0], refs[len(refs)-1]+1
	for _, c := range cands {
		if c > maxCand {
			maxCand = c
		}
	}
	fmt.Printf("%s: %d adaptation events over %d references, candidate size %d..%d\n\n",
		path, len(refs), total, minInt(cands), maxCand)
	plot(refs, cands, total, maxCand, cands[0], nil, width, height)
	return nil
}

func minInt(xs []int) int {
	m := xs[0]
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// plot renders a candidate-size trajectory as ASCII art: step-wise,
// carrying the last size forward, with optional phase boundaries marked
// as vertical bars.
func plot(refAt, sizes []int, total, maxSize, initial int, bounds []int, width, height int) {
	if len(sizes) == 0 {
		fmt.Println("(no adaptation events)")
		return
	}
	if total < 1 {
		total = 1
	}
	if maxSize < 1 {
		maxSize = 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	col := func(ref int) int {
		c := ref * (width - 1) / total
		if c >= width {
			c = width - 1
		}
		return c
	}
	row := func(size int) int {
		r := height - 1 - (size-1)*(height-1)/maxSize
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	last := initial
	idx := 0
	for ref := 0; ref < total; ref++ {
		for idx < len(refAt) && refAt[idx] <= ref {
			last = sizes[idx]
			idx++
		}
		grid[row(last)][col(ref)] = '*'
	}
	for _, end := range bounds {
		c := col(end)
		for r := 0; r < height; r++ {
			if grid[r][c] == ' ' {
				grid[r][c] = '|'
			}
		}
	}
	fmt.Printf("%4d +%s\n", maxSize, strings.Repeat("-", width))
	for r, line := range grid {
		label := "     "
		if r == height-1 {
			label = "   1 "
		}
		fmt.Printf("%s|%s\n", label, string(line))
	}
	fmt.Printf("     +%s\n", strings.Repeat("-", width))
}

// legend prints the phase names under the plot.
func legend(width int, phases []string) {
	fmt.Printf("      %-*s%-*s%s\n", width/3, phases[0], width/3, phases[1], phases[2])
}
