// Command asbviz reproduces Figure 14 of the paper: the candidate-set
// size of the adaptable spatial buffer over the concatenated mixed
// workload INT-W-33 + U-W-33 + S-W-33. It prints per-phase averages, an
// ASCII plot of the trajectory, and optionally the full series as CSV.
//
//	asbviz -db 1 -frac 0.047
//	asbviz -csv trajectory.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiment"
)

func main() {
	var (
		dbNum   = flag.Int("db", 1, "database number (1 or 2)")
		objects = flag.Int("objects", 0, "object count (0 = default scale)")
		seed    = flag.Int64("seed", 1, "generation seed")
		frac    = flag.Float64("frac", experiment.LargestFrac, "buffer size as a fraction of the page count")
		csvPath = flag.String("csv", "", "write the (refIndex, candidateSize) series as CSV")
		width   = flag.Int("width", 100, "plot width in columns")
		height  = flag.Int("height", 20, "plot height in rows")
	)
	flag.Parse()

	if err := run(*dbNum, *objects, *seed, *frac, *csvPath, *width, *height); err != nil {
		fmt.Fprintln(os.Stderr, "asbviz:", err)
		os.Exit(1)
	}
}

func run(dbNum, objects int, seed int64, frac float64, csvPath string, width, height int) error {
	db, err := experiment.Get(dbNum, experiment.Options{Objects: objects, Seed: seed})
	if err != nil {
		return err
	}
	at, err := experiment.RunAdaptation(db, frac, seed)
	if err != nil {
		return err
	}

	fmt.Printf("%s, buffer %.1f%% (%d frames; main part %d, initial candidate %d)\n",
		db.Name, frac*100, at.Frames, at.MainCap, at.Initial)
	phases := []string{"INT-W-33", "U-W-33", "S-W-33"}
	for p, name := range phases {
		avg := at.PhaseAverage(p)
		fmt.Printf("phase %d (%-8s): avg candidate size %6.1f  (%.0f%% of main part)\n",
			p+1, name, avg, avg/float64(at.MainCap)*100)
	}
	fmt.Printf("%d adaptation events over %d references\n\n", len(at.Sizes), at.PhaseEnds[2])

	plot(at, width, height, phases)

	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		w := bufio.NewWriter(f)
		fmt.Fprintln(w, "ref,candidate")
		for i := range at.Sizes {
			fmt.Fprintf(w, "%d,%d\n", at.RefAt[i], at.Sizes[i])
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("\nwrote %d samples to %s\n", len(at.Sizes), csvPath)
	}
	return nil
}

// plot renders the candidate-size trajectory as ASCII art with phase
// boundaries marked.
func plot(at *experiment.AdaptationTrace, width, height int, phases []string) {
	if len(at.Sizes) == 0 {
		fmt.Println("(no adaptation events)")
		return
	}
	total := at.PhaseEnds[2]
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	col := func(ref int) int {
		c := ref * (width - 1) / total
		if c >= width {
			c = width - 1
		}
		return c
	}
	row := func(size int) int {
		r := height - 1 - (size-1)*(height-1)/at.MainCap
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	// Draw the trajectory (step-wise, carrying the last size forward).
	last := at.Initial
	idx := 0
	for ref := 0; ref < total; ref++ {
		for idx < len(at.RefAt) && at.RefAt[idx] <= ref {
			last = at.Sizes[idx]
			idx++
		}
		grid[row(last)][col(ref)] = '*'
	}
	// Phase boundaries.
	for _, end := range at.PhaseEnds[:2] {
		c := col(end)
		for r := 0; r < height; r++ {
			if grid[r][c] == ' ' {
				grid[r][c] = '|'
			}
		}
	}
	fmt.Printf("%4d +%s\n", at.MainCap, strings.Repeat("-", width))
	for r, line := range grid {
		label := "     "
		if r == height-1 {
			label = "   1 "
		}
		fmt.Printf("%s|%s\n", label, string(line))
	}
	fmt.Printf("     +%s\n", strings.Repeat("-", width))
	fmt.Printf("      %-*s%-*s%s\n", width/3, phases[0], width/3, phases[1], phases[2])
}
