// Command bufserve runs a spatial buffer as a long-lived daemon and
// serves its live metrics over HTTP. It builds one of the synthetic
// databases, records the page-reference trace of a query set, and then
// replays that trace in a loop from several worker goroutines through a
// shared buffer pool — by default an async page-hashed sharded pool
// with one shard per CPU — a steady-state workload to watch through
// /metrics, /vars and the dashboard. The pool is selected by the -pool
// composition spec (e.g. "locked", "sharded,shards=4",
// "async,shards=8,wbworkers=2"); the old -shards/-writeback-* flags
// remain as deprecated aliases (-shards 1 falls back to the single
// mutex-protected locked engine). With a sharded layout, /metrics
// additionally exposes per-shard residency and ASB gauges labeled
// shard="i".
//
// Start it and look around:
//
//	bufserve -addr :8080 -objects 20000 -set U-P -policy ASB
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/metrics | grep spatialbuf_
//	curl -N localhost:8080/events/ctraj       # SSE: live c-trajectory
//	open http://localhost:8080/               # dashboard
//
// The HTTP server (including /debug/pprof) comes up before the database
// build starts, so /healthz answers immediately; /metrics serves zeros
// until the workload is running. Event capture to disk is optional:
// -events FILE attaches a JSONL sink behind the async ring (-ring) with
// 1-in-N request sampling (-sample); ring overflow is dropped, counted
// and exported as spatialbuf_events_dropped_total rather than ever
// blocking the request path.
//
// Request-scoped tracing is on by default at 1-in-1024 sampling
// (-trace-sample, 0 disables): sampled requests record a span tree
// (Get → victim-select / asb-adapt / store.Read ...) into per-shard
// rings of -trace-buf completed traces, served as Chrome trace-event
// JSON (load in Perfetto) or JSONL at /debug/trace?n=100&format=chrome.
// Tracing also enables the shard-contention profiler: per-shard lock
// wait, queue depth and acquisition counts under
// spatialbuf_shard_lock_* on /metrics.
//
// The shadow-cache profiler is on by default: metadata-only ghost
// caches replay the live request stream against the -shadow what-if
// policies at the real capacity and against the real policy at the
// -shadow-ladder capacity multipliers (the online miss-ratio curve),
// exported as spatialbuf_shadow_* gauges, streamed at /events/shadow
// (SSE) and rendered as a dashboard panel. -shadow "" turns it off;
// -shadow-sample N trades fidelity for event-rate headroom.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/obs/live"
	"repro/internal/obs/shadow"
	"repro/internal/obs/tracing"
)

// splitList splits a comma-separated flag value, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// parseLadder parses the comma-separated capacity multipliers, ignoring
// malformed entries.
func parseLadder(s string) []float64 {
	var out []float64
	for _, part := range splitList(s) {
		if v, err := strconv.ParseFloat(part, 64); err == nil && v > 0 {
			out = append(out, v)
		}
	}
	return out
}

type config struct {
	addr     string
	dbNum    int
	objects  int
	seed     int64
	set      string
	policy   string
	frac     float64
	workers  int
	pool     string
	shards   int
	duration time.Duration
	loops    int
	rate     int
	events   string
	sample   int
	ring     int

	traceSample int
	traceBuf    int

	wbWorkers int
	wbQueue   int

	shadowPolicies string
	shadowLadder   string
	shadowSample   int
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", ":8080", "HTTP listen address for metrics, dashboard and pprof")
	flag.IntVar(&cfg.dbNum, "db", 1, "database number (1 or 2)")
	flag.IntVar(&cfg.objects, "objects", 0, "objects in the database (0 = default scale)")
	flag.Int64Var(&cfg.seed, "seed", 1, "generation seed")
	flag.StringVar(&cfg.set, "set", "U-P", "query set to replay (e.g. U-P, INT-W-33)")
	flag.StringVar(&cfg.policy, "policy", "ASB", "replacement policy: a registry name (LRU, ASB, ...) or a parameterized spec like LRU-K:4, SLRU:EA:0.25, SPATIAL:EM, ASB:A:0.3, PIN:2")
	flag.Float64Var(&cfg.frac, "frac", experiment.LargestFrac, "buffer size as a fraction of the database")
	flag.IntVar(&cfg.workers, "workers", runtime.GOMAXPROCS(0), "concurrent replay goroutines")
	flag.StringVar(&cfg.pool, "pool", "", "pool composition spec: layout[,shards=N][,wbworkers=N][,wbqueue=N] with layout bare|locked|sharded|async (empty = derive from the deprecated -shards/-writeback-* flags)")
	flag.IntVar(&cfg.shards, "shards", runtime.GOMAXPROCS(0), "deprecated alias (use -pool): buffer pool shards (1 = single mutex-protected pool)")
	flag.DurationVar(&cfg.duration, "duration", 0, "stop after this long (0 = run until signalled)")
	flag.IntVar(&cfg.loops, "loops", 0, "trace replays per worker (0 = unbounded)")
	flag.IntVar(&cfg.rate, "rate", 0, "approximate total requests/second across workers (0 = unthrottled)")
	flag.StringVar(&cfg.events, "events", "", "also capture the event stream as JSONL to this file")
	flag.IntVar(&cfg.sample, "sample", 64, "with -events: keep 1 in N request events (evictions etc. always kept)")
	flag.IntVar(&cfg.ring, "ring", live.DefaultRingCapacity, "with -events: async ring capacity in events")
	flag.IntVar(&cfg.traceSample, "trace-sample", 1024, "record a span trace for 1 in N requests, served at /debug/trace (0 = tracing off)")
	flag.IntVar(&cfg.traceBuf, "trace-buf", 256, "completed traces retained per shard ring")
	flag.IntVar(&cfg.wbWorkers, "writeback-workers", buffer.DefaultWritebackWorkers, "deprecated alias (use -pool wbworkers=): async layout background dirty-page writer goroutines")
	flag.IntVar(&cfg.wbQueue, "writeback-queue", buffer.DefaultWritebackQueue, "deprecated alias (use -pool wbqueue=): async layout write-back queue capacity in pages")
	flag.StringVar(&cfg.shadowPolicies, "shadow", "LRU,SLRU 50%,ASB", "comma-separated what-if policies (names or parameterized specs like LRU-K:4) simulated by shadow caches at the real capacity (empty disables shadow profiling)")
	flag.StringVar(&cfg.shadowLadder, "shadow-ladder", "0.5,1,2,4", "capacity multipliers the real policy is shadow-simulated at (the online miss-ratio curve)")
	flag.IntVar(&cfg.shadowSample, "shadow-sample", 1, "feed the shadow bank 1 in N request events")
	flag.Parse()

	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "bufserve:", err)
		os.Exit(1)
	}
}

// poolComposition resolves the pool composition: the -pool spec when
// given, otherwise the historical behavior of the deprecated flags —
// an async sharded pool with one shard per -shards, falling back to a
// single locked engine at -shards 1.
func poolComposition(cfg config) (buffer.Composition, error) {
	if cfg.pool != "" {
		comp, err := buffer.ParseComposition(cfg.pool)
		if err != nil {
			return buffer.Composition{}, err
		}
		if comp.Layout == buffer.LayoutBare && cfg.workers > 1 {
			return buffer.Composition{}, fmt.Errorf("-pool bare is single-threaded; use -workers 1 or a locked/sharded/async layout")
		}
		return comp, nil
	}
	shards := cfg.shards
	if shards < 1 {
		shards = 1
	}
	if shards == 1 {
		return buffer.Composition{Layout: buffer.LayoutLocked}, nil
	}
	return buffer.Composition{
		Layout:           buffer.LayoutAsync,
		Shards:           shards,
		WritebackWorkers: cfg.wbWorkers,
		WritebackQueue:   cfg.wbQueue,
	}, nil
}

func run(cfg config) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if cfg.duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.duration)
		defer cancel()
	}

	comp, err := poolComposition(cfg)
	if err != nil {
		return err
	}

	// The tracer is sized by the composition's shard count before the
	// pool exists so /debug/trace can be mounted before serving starts;
	// a pool that clamps to fewer shards simply leaves trailing rings
	// empty.
	var tracer *tracing.Tracer
	if cfg.traceSample > 0 {
		rings := 1
		if comp.Layout == buffer.LayoutSharded || comp.Layout == buffer.LayoutAsync {
			if rings = comp.Shards; rings < 1 {
				rings = runtime.GOMAXPROCS(0)
			}
		}
		tracer = tracing.NewTracer(cfg.traceSample, rings, cfg.traceBuf)
	}

	svc := live.NewService()
	mux := http.NewServeMux()
	mux.Handle("/", svc.Handler())
	mux.Handle("/debug/trace", tracing.Handler(tracer))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	// Listen synchronously so a bad -addr fails fast and /healthz is
	// reachable while the (potentially long) database build runs.
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: mux}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Printf("bufserve: serving metrics on http://%s/\n", ln.Addr())

	db, err := experiment.Get(cfg.dbNum, experiment.Options{Objects: cfg.objects, Seed: cfg.seed})
	if err != nil {
		return err
	}
	tr, err := db.Trace(cfg.set, cfg.seed)
	if err != nil {
		return err
	}
	fac, err := core.FactoryByName(cfg.policy)
	if err != nil {
		return err
	}
	frames := db.Frames(cfg.frac)
	pool, err := comp.Build(db.Store, fac.New, frames)
	if err != nil {
		return err
	}
	if c, ok := pool.(interface{ Close() error }); ok {
		defer c.Close()
	}
	shards := 1
	if sp, ok := pool.(interface{ Shards() int }); ok {
		shards = sp.Shards() // may have been clamped for tiny buffers
	}
	if ap, ok := pool.(*buffer.AsyncPool); ok {
		svc.AddGauge("spatialbuf_writeback_queue_depth", "Pages waiting in the background write-back queue.",
			func() float64 { return float64(ap.Writeback().Depth) })
		svc.AddGauge("spatialbuf_writeback_pending_pages", "Pages queued or mid-write in the write-back machinery.",
			func() float64 { return float64(ap.Writeback().Pending) })
		svc.AddGauge("spatialbuf_writeback_written_total", "Completed background page writes.",
			func() float64 { return float64(ap.Writeback().Written) })
		svc.AddGauge("spatialbuf_writeback_coalesced_total", "Write-backs absorbed by an already-queued entry for the same page.",
			func() float64 { return float64(ap.Writeback().Coalesced) })
		svc.AddGauge("spatialbuf_writeback_fallbacks_total", "Evictions written synchronously because the queue was full.",
			func() float64 { return float64(ap.Writeback().Fallbacks) })
		svc.AddGauge("spatialbuf_writeback_queue_capacity", "Write-back queue capacity in pages.",
			func() float64 { return float64(ap.Writeback().QueueCap) })
		svc.AddGauge("spatialbuf_writeback_canceled_total", "Queued write-backs canceled because the page was re-admitted before its write ran.",
			func() float64 { return float64(ap.Writeback().Canceled) })
		svc.AddGauge("spatialbuf_writeback_errors_total", "Background page writes that failed.",
			func() float64 { return float64(ap.Writeback().Errors) })
		svc.AddGauge("spatialbuf_inflight_reads", "Physical reads currently in flight across all shards (singleflight leaders).",
			func() float64 { return float64(ap.InflightReads()) })
	}
	if sp, ok := pool.(interface {
		Shards() int
		ShardLen(i int) int
		ShardPolicy(i int) buffer.Policy
	}); ok {
		var asbParts []live.ASBGauges
		for i := 0; i < sp.Shards(); i++ {
			svc.AddLabeledGauge("spatialbuf_shard_resident_pages",
				fmt.Sprintf("shard=%q", fmt.Sprint(i)),
				"Pages currently resident in this buffer shard.",
				func() float64 { return float64(sp.ShardLen(i)) })
			if asb, ok := sp.ShardPolicy(i).(live.ASBGauges); ok {
				asbParts = append(asbParts, asb)
				svc.AddShardASBGauges(i, asb)
			}
		}
		if len(asbParts) > 0 {
			// Pool-level aggregate under the standard names: candidate
			// frames and overflow pages summed across the shards.
			svc.AddASBGauges(live.SumASBGauges(asbParts...))
		}
	} else if pp, ok := pool.(interface{ Policy() buffer.Policy }); ok {
		if asb, ok := pp.Policy().(live.ASBGauges); ok {
			svc.AddASBGauges(asb)
		}
	}
	if tracer != nil {
		cont := tracing.NewContention(shards)
		if tp, ok := pool.(interface {
			SetTracer(t *tracing.Tracer)
			EnableContention(c *tracing.Contention)
		}); ok {
			tp.SetTracer(tracer)
			tp.EnableContention(cont)
		} else if e, ok := pool.(*buffer.Engine); ok {
			e.SetTracer(tracer, 0)
		}
		svc.AddContentionGauges(cont)
		svc.AddTracerGauges(tracer)
	}
	svc.AddGauge("spatialbuf_resident_pages", "Pages currently held in buffer frames.",
		func() float64 { return float64(pool.Len()) })
	svc.AddGauge("spatialbuf_capacity_pages", "Total buffer capacity in frames.",
		func() float64 { return float64(frames) })
	svc.AddGauge("spatialbuf_workers", "Replay worker goroutines.",
		func() float64 { return float64(cfg.workers) })
	svc.AddGauge("spatialbuf_shards", "Buffer pool shards (1 = single mutex-protected pool).",
		func() float64 { return float64(shards) })

	sinks := []obs.Sink{svc.Sink()}
	var async *live.AsyncSink
	if cfg.events != "" {
		f, err := os.Create(cfg.events)
		if err != nil {
			return err
		}
		jsonl := obs.NewJSONLSinkCloser(f)
		jsonl.Mark(fmt.Sprintf("bufserve %s/%s/%.4f workers=%d", cfg.set, cfg.policy, cfg.frac, cfg.workers))
		// The ring makes the single-goroutine JSONL sink safe under many
		// producers and keeps file I/O off the request path; sampling
		// keeps the file size proportional to interesting events.
		async = live.NewAsyncSink(obs.NewSamplingSink(jsonl, cfg.sample), cfg.ring, svc.Counters.AddDropped)
		sinks = append(sinks, async)
		svc.AddAsyncSinkGauges(async)
	}
	var shadowAsync *live.AsyncSink
	if cfg.shadowPolicies != "" {
		specs := shadow.Specs(cfg.policy, frames, splitList(cfg.shadowPolicies), parseLadder(cfg.shadowLadder))
		bank, err := shadow.NewBank(specs, core.Resolver, 0)
		if err != nil {
			return err
		}
		// The bank replays every event through all its ghost caches under
		// one mutex, so it lives behind its own async ring: the request
		// path pays one non-blocking channel send (before sampling, if
		// -shadow-sample > 1), never the simulation cost.
		shadowAsync = live.NewAsyncSink(bank, cfg.ring, svc.Counters.AddDropped)
		sinks = append(sinks, obs.NewSamplingSink(shadowAsync, cfg.shadowSample))
		svc.AddShadowGauges(bank)
		fmt.Printf("bufserve: shadow profiler: %d ghost caches (policies %s at %d frames; %s ladder %s)\n",
			bank.Len(), cfg.shadowPolicies, frames, cfg.policy, cfg.shadowLadder)
	}
	pool.SetSink(obs.Tee(sinks...))

	fmt.Printf("bufserve: %s, %d-page buffer (%s, %.1f%%, pool %s, %d shards), replaying %s (%d refs) on %d workers\n",
		db.Name, frames, cfg.policy, cfg.frac*100, comp, shards, cfg.set, tr.Len(), cfg.workers)

	var wg sync.WaitGroup
	var interval time.Duration
	if cfg.rate > 0 {
		interval = time.Duration(int64(cfg.workers) * int64(time.Second) / int64(cfg.rate))
	}
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Distinct query-ID ranges per worker and per loop keep the
			// spatial locality of each replayed query intact without two
			// workers ever sharing a query ID.
			var tick *time.Ticker
			if interval > 0 {
				tick = time.NewTicker(interval)
				defer tick.Stop()
			}
			for loop := 0; cfg.loops == 0 || loop < cfg.loops; loop++ {
				base := uint64(w)<<48 | uint64(loop)<<24
				for _, ref := range tr.Refs {
					if ctx.Err() != nil {
						return
					}
					if tick != nil {
						select {
						case <-tick.C:
						case <-ctx.Done():
							return
						}
					}
					if _, err := pool.Get(ref.Page, buffer.AccessContext{QueryID: base + ref.Query}); err != nil {
						fmt.Fprintf(os.Stderr, "bufserve: worker %d: %v\n", w, err)
						return
					}
				}
			}
		}(w)
	}

	workersDone := make(chan struct{})
	go func() { wg.Wait(); close(workersDone) }()
	select {
	case <-ctx.Done():
	case <-workersDone: // finite -loops finished early
	case err := <-serveErr:
		stop()
		<-workersDone
		return fmt.Errorf("http server: %w", err)
	}
	stop()
	<-workersDone

	// Shutdown order matters: detach producers, then drain the ring,
	// then stop serving (so a final scrape still sees the full counts).
	pool.SetSink(nil)
	if async != nil {
		if err := async.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "bufserve: closing event sink: %v\n", err)
		}
		fmt.Printf("bufserve: event capture: %d delivered, %d dropped\n", async.Delivered(), async.Dropped())
	}
	if shadowAsync != nil {
		if err := shadowAsync.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "bufserve: closing shadow sink: %v\n", err)
		}
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Printf("bufserve: final counters: %s\n", svc.Counters.String())
	return nil
}
