// Command datagen materializes the synthetic databases and query sets of
// the reproduction as plain-text files for inspection or external use.
//
//	datagen -db 1 -objects 50000 -out ./data
//
// writes objects.csv (id,minx,miny,maxx,maxy), places.csv
// (x,y,population) and one CSV per requested query set.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/experiment"
	"repro/internal/obs"
)

func main() {
	var (
		dbNum   = flag.Int("db", 1, "database number (1 or 2)")
		objects = flag.Int("objects", 0, "object count (0 = default scale)")
		seed    = flag.Int64("seed", 1, "generation seed")
		out     = flag.String("out", "data", "output directory")
		sets    = flag.String("sets", "U-P,U-W-33,ID-W,S-P,INT-P,IND-P", "query sets to emit")
		queries = flag.Int("queries", 1000, "queries per emitted set")
		prof    obs.ProfileFlags
	)
	prof.Register(flag.CommandLine)
	flag.Parse()

	stop, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	err = run(*dbNum, *objects, *seed, *out, *sets, *queries)
	if serr := stop(); err == nil {
		err = serr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(dbNum, objects int, seed int64, out, sets string, queries int) error {
	db, err := experiment.Get(dbNum, experiment.Options{Objects: objects, Seed: seed})
	if err != nil {
		return err
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}

	if err := writeFile(filepath.Join(out, "objects.csv"), func(w *bufio.Writer) error {
		fmt.Fprintln(w, "id,minx,miny,maxx,maxy")
		for _, o := range db.Objects {
			fmt.Fprintf(w, "%d,%g,%g,%g,%g\n", o.ID, o.MBR.MinX, o.MBR.MinY, o.MBR.MaxX, o.MBR.MaxY)
		}
		return nil
	}); err != nil {
		return err
	}

	if err := writeFile(filepath.Join(out, "places.csv"), func(w *bufio.Writer) error {
		fmt.Fprintln(w, "x,y,population")
		for _, p := range db.Places {
			fmt.Fprintf(w, "%g,%g,%d\n", p.Loc.X, p.Loc.Y, p.Population)
		}
		return nil
	}); err != nil {
		return err
	}

	for _, name := range splitCSV(sets) {
		qs, err := db.QuerySet(name, queries, seed)
		if err != nil {
			return err
		}
		path := filepath.Join(out, "queries-"+name+".csv")
		if err := writeFile(path, func(w *bufio.Writer) error {
			fmt.Fprintln(w, "id,minx,miny,maxx,maxy")
			for _, q := range qs.Queries {
				fmt.Fprintf(w, "%d,%g,%g,%g,%g\n", q.ID, q.Rect.MinX, q.Rect.MinY, q.Rect.MaxX, q.Rect.MaxY)
			}
			return nil
		}); err != nil {
			return err
		}
	}

	fmt.Printf("%s: wrote %d objects, %d places and query sets [%s] to %s\n",
		db.Name, len(db.Objects), len(db.Places), sets, out)
	fmt.Printf("tree: %d pages (%.2f%% directory), height %d\n",
		db.Stats.TotalPages(), db.Stats.DirFraction()*100, db.Stats.Height)
	return nil
}

func writeFile(path string, fill func(*bufio.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if err := fill(w); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func splitCSV(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if part := s[start:i]; part != "" {
				out = append(out, part)
			}
			start = i + 1
		}
	}
	return out
}
