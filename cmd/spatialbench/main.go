// Command spatialbench reproduces the evaluation of Brinkhoff (EDBT 2002):
// it builds the synthetic databases, runs the paper's query sets across
// replacement policies and buffer sizes, and prints the figures as tables
// of relative performance gains.
//
// Reproduce one figure (4, 5, 6, 7, 8, 9, 12, 13, 14 or "lrut"):
//
//	spatialbench -figure 13
//
// Reproduce everything (this is how EXPERIMENTS.md is generated):
//
//	spatialbench -figure all
//
// Ad-hoc sweeps:
//
//	spatialbench -db 1 -sets U-P,INT-P -policies LRU,A,ASB -fracs 0.006,0.047
//
// Scale control: -objects overrides the object count per database;
// -paperscale uses the paper's sizes (1,641,079 / 572,694 — minutes of
// build time). -csv writes each table additionally as CSV into a
// directory.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/experiment"
)

func main() {
	var (
		figure     = flag.String("figure", "", "figure to reproduce: 4..9, 12..14, lrut, the extensions crosssam/updates, or 'all'")
		dbNum      = flag.Int("db", 1, "database number for ad-hoc sweeps (1 or 2)")
		sets       = flag.String("sets", "", "comma-separated query sets for an ad-hoc sweep (e.g. U-P,INT-W-33)")
		policies   = flag.String("policies", "LRU,A,LRU-2,ASB", "comma-separated policies for an ad-hoc sweep")
		fracs      = flag.String("fracs", "0.006,0.047", "comma-separated buffer fractions for an ad-hoc sweep")
		objects    = flag.Int("objects", 0, "objects per database (0 = default scale)")
		paperScale = flag.Bool("paperscale", false, "use the paper's database sizes (slow)")
		seed       = flag.Int64("seed", 1, "generation seed")
		csvDir     = flag.String("csv", "", "directory to additionally write tables as CSV")
	)
	flag.Parse()

	if *figure == "" && *sets == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*figure, *dbNum, *sets, *policies, *fracs, *objects, *paperScale, *seed, *csvDir); err != nil {
		fmt.Fprintln(os.Stderr, "spatialbench:", err)
		os.Exit(1)
	}
}

func run(figure string, dbNum int, sets, policies, fracs string, objects int, paperScale bool, seed int64, csvDir string) error {
	opts := experiment.Options{Objects: objects, Seed: seed}
	if paperScale {
		opts.Objects = -1 // marker: resolved per database below
	}

	optsFor := func(n int) experiment.Options {
		o := opts
		if paperScale {
			o.Objects = experiment.PaperObjects[n]
		}
		return o
	}

	emit := func(tables []*experiment.Table) error {
		for _, t := range tables {
			fmt.Println(t.Render())
			if csvDir != "" {
				if err := os.MkdirAll(csvDir, 0o755); err != nil {
					return err
				}
				path := filepath.Join(csvDir, t.ID+".csv")
				if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
					return err
				}
			}
		}
		return nil
	}

	if sets != "" && figure == "" {
		return adHoc(dbNum, sets, policies, fracs, optsFor(dbNum), seed, emit)
	}

	figs := experiment.Figures()
	var ids []string
	if figure == "all" {
		ids = experiment.FigureIDs()
	} else {
		if figs[figure] == nil {
			return fmt.Errorf("unknown figure %q (have %v)", figure, experiment.FigureIDs())
		}
		ids = []string{figure}
	}
	for _, id := range ids {
		fmt.Printf("=== Figure %s ===\n", id)
		// Figures resolve databases themselves; pass per-DB options via
		// the shared Options (paper scale handled by Objects<0 marker).
		o := opts
		if paperScale {
			// Figures build both databases; use the marker convention:
			// Objects<0 is not understood downstream, so resolve to DB1's
			// size — per-figure paper-scale runs should use ad-hoc mode
			// per database instead. Keep it simple: reproduce figures at
			// a single explicit scale.
			return fmt.Errorf("-paperscale is only supported for ad-hoc sweeps (-sets); use -objects to scale figures")
		}
		tables, err := figs[id](o, seed)
		if err != nil {
			return fmt.Errorf("figure %s: %w", id, err)
		}
		if err := emit(tables); err != nil {
			return err
		}
	}
	return nil
}

// adHoc runs a custom sweep and prints one gain table per buffer
// fraction.
func adHoc(dbNum int, setsCSV, policiesCSV, fracsCSV string, opts experiment.Options, seed int64, emit func([]*experiment.Table) error) error {
	db, err := experiment.Get(dbNum, opts)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d objects, %d pages (%.2f%% directory), height %d\n",
		db.Name, db.Stats.NumObjects, db.Stats.TotalPages(),
		db.Stats.DirFraction()*100, db.Stats.Height)

	setNames := splitCSV(setsCSV)
	polNames := splitCSV(policiesCSV)
	var fracList []float64
	for _, f := range splitCSV(fracsCSV) {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return fmt.Errorf("bad fraction %q: %w", f, err)
		}
		fracList = append(fracList, v)
	}

	withLRU := polNames
	if !contains(polNames, "LRU") {
		withLRU = append([]string{"LRU"}, polNames...)
	}
	var factories []core.Factory
	for _, n := range withLRU {
		f, err := core.FactoryByName(n)
		if err != nil {
			return err
		}
		factories = append(factories, f)
	}
	sw, err := experiment.Run(db, setNames, factories, fracList, seed)
	if err != nil {
		return err
	}
	var tables []*experiment.Table
	for _, frac := range fracList {
		t := experiment.NewTable(
			fmt.Sprintf("adhoc-db%d-%.1f%%", dbNum, frac*100),
			fmt.Sprintf("ad-hoc sweep, %s, buffer %.1f%%", db.Name, frac*100),
			"gain vs LRU [%]", setNames, polNames)
		for _, set := range setNames {
			for _, pol := range polNames {
				g, err := sw.Gain(set, pol, frac)
				if err != nil {
					return err
				}
				if err := t.Set(set, pol, g*100); err != nil {
					return err
				}
			}
		}
		tables = append(tables, t)
	}
	return emit(tables)
}

func splitCSV(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
