// Command spatialbench reproduces the evaluation of Brinkhoff (EDBT 2002):
// it builds the synthetic databases, runs the paper's query sets across
// replacement policies and buffer sizes, and prints the figures as tables
// of relative performance gains.
//
// Reproduce one figure (4, 5, 6, 7, 8, 9, 12, 13, 14 or "lrut"):
//
//	spatialbench -figure 13
//
// Reproduce everything (this is how EXPERIMENTS.md is generated):
//
//	spatialbench -figure all
//
// Ad-hoc sweeps:
//
//	spatialbench -db 1 -sets U-P,INT-P -policies LRU,A,ASB -fracs 0.006,0.047
//
// Scale control: -objects overrides the object count per database;
// -paperscale uses the paper's sizes (1,641,079 / 572,694 — minutes of
// build time). -csv writes each table additionally as CSV into a
// directory.
//
// Observability: -events FILE re-replays an ad-hoc sweep sequentially
// with a JSONL event sink attached (one "mark" line per combination);
// -window N prints windowed hit ratios per combination; -shadow lists
// what-if policies simulated by metadata-only shadow caches during the
// replays (with the -shadow-ladder capacity rungs of the replayed
// policy), printing per-combination hit ratios and regret; -ctraj FILE runs
// the Fig. 14 adaptation workload and writes the ASB candidate-size
// trajectory as CSV (render it with asbviz -in FILE). The standard
// -cpuprofile, -memprofile and -trace flags profile the whole run.
//
// Live monitoring: -serve ADDR starts the metrics HTTP server of
// internal/obs/live (Prometheus /metrics, JSON /vars, /healthz, SSE
// /events/ctraj, dashboard at /) and feeds it every replay the run
// performs, so long sweeps can be watched while they execute.
//
// Request tracing: -trace-out FILE attaches a sampling span recorder
// (1 in -trace-sample requests) to every replay the run performs and
// writes the retained traces as Chrome trace-event JSON — load the
// file in chrome://tracing or https://ui.perfetto.dev to see sampled
// requests as nested Get → victim-select → store.Read span trees with
// shard ids and ASB criterion values.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/obs/live"
	"repro/internal/obs/shadow"
	"repro/internal/obs/tracing"
	"repro/internal/trace"
)

// config collects the command-line options.
type config struct {
	figure     string
	dbNum      int
	sets       string
	policies   string
	fracs      string
	objects    int
	paperScale bool
	seed       int64
	csvDir     string
	events     string
	window     int
	ctraj      string
	serve      string
	pool       string
	shards     int

	traceOut    string
	traceSample int

	wbWorkers int
	wbQueue   int

	shadowPolicies string
	shadowLadder   string
	shadowSample   int
}

func main() {
	var cfg config
	var prof obs.ProfileFlags
	flag.StringVar(&cfg.figure, "figure", "", "figure to reproduce: 4..9, 12..14, lrut, the extensions crosssam/updates, or 'all'")
	flag.IntVar(&cfg.dbNum, "db", 1, "database number for ad-hoc sweeps (1 or 2)")
	flag.StringVar(&cfg.sets, "sets", "", "comma-separated query sets for an ad-hoc sweep (e.g. U-P,INT-W-33)")
	flag.StringVar(&cfg.policies, "policies", "LRU,A,LRU-2,ASB", "comma-separated policies for an ad-hoc sweep: registry names or parameterized specs like LRU-K:4, SLRU:EA:0.25")
	flag.StringVar(&cfg.fracs, "fracs", "0.006,0.047", "comma-separated buffer fractions for an ad-hoc sweep")
	flag.IntVar(&cfg.objects, "objects", 0, "objects per database (0 = default scale)")
	flag.BoolVar(&cfg.paperScale, "paperscale", false, "use the paper's database sizes (slow)")
	flag.Int64Var(&cfg.seed, "seed", 1, "generation seed")
	flag.StringVar(&cfg.csvDir, "csv", "", "directory to additionally write tables as CSV")
	flag.StringVar(&cfg.events, "events", "", "with -sets: write the sweep's event stream as JSONL to this file")
	flag.IntVar(&cfg.window, "window", 0, "with -sets: print hit ratios over windows of N requests")
	flag.StringVar(&cfg.ctraj, "ctraj", "", "run the Fig. 14 adaptation workload and write the c-trajectory CSV to this file")
	flag.StringVar(&cfg.serve, "serve", "", "serve live metrics on this address (e.g. :8080) while the run executes")
	flag.StringVar(&cfg.pool, "pool", "", "with -events/-window/-shadow: pool composition spec for instrumented replays, layout[,shards=N][,wbworkers=N][,wbqueue=N] with layout bare|locked|sharded|async (empty = derive from the deprecated -shards/-writeback-* flags)")
	flag.IntVar(&cfg.shards, "shards", 1, "deprecated alias (use -pool): replay through an async page-hashed sharded pool with this many shards (per-shard policy instances)")
	flag.StringVar(&cfg.traceOut, "trace-out", "", "write request span traces as Chrome trace-event JSON to this file")
	flag.IntVar(&cfg.traceSample, "trace-sample", 1024, "with -trace-out: trace 1 in N buffer requests")
	flag.IntVar(&cfg.wbWorkers, "writeback-workers", buffer.DefaultWritebackWorkers, "deprecated alias (use -pool wbworkers=): async layout background dirty-page writer goroutines")
	flag.IntVar(&cfg.wbQueue, "writeback-queue", buffer.DefaultWritebackQueue, "deprecated alias (use -pool wbqueue=): async layout write-back queue capacity in pages")
	flag.StringVar(&cfg.shadowPolicies, "shadow", "", "with -sets: comma-separated what-if policies shadow-simulated during instrumented replays (names or specs, e.g. LRU,SLRU 50%,LRU-K:4,ASB)")
	flag.StringVar(&cfg.shadowLadder, "shadow-ladder", "0.5,1,2,4", "with -shadow: capacity multipliers the replayed policy is shadow-simulated at")
	flag.IntVar(&cfg.shadowSample, "shadow-sample", 1, "with -shadow: feed the shadow bank 1 in N request events")
	prof.Register(flag.CommandLine)
	flag.Parse()

	if cfg.figure == "" && cfg.sets == "" && cfg.ctraj == "" {
		flag.Usage()
		os.Exit(2)
	}
	stop, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "spatialbench:", err)
		os.Exit(1)
	}
	err = run(cfg)
	if serr := stop(); err == nil {
		err = serr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "spatialbench:", err)
		os.Exit(1)
	}
}

// poolComposition resolves the instrumented-replay pool composition:
// the -pool spec when given, otherwise the historical behavior of the
// deprecated flags — an async sharded pool at -shards > 1, a bare
// engine otherwise (the replay is single-threaded).
func poolComposition(cfg config) (buffer.Composition, error) {
	if cfg.pool != "" {
		return buffer.ParseComposition(cfg.pool)
	}
	if cfg.shards > 1 {
		return buffer.Composition{
			Layout:           buffer.LayoutAsync,
			Shards:           cfg.shards,
			WritebackWorkers: cfg.wbWorkers,
			WritebackQueue:   cfg.wbQueue,
		}, nil
	}
	return buffer.Composition{Layout: buffer.LayoutBare}, nil
}

func run(cfg config) error {
	opts := experiment.Options{Objects: cfg.objects, Seed: cfg.seed}

	comp, err := poolComposition(cfg)
	if err != nil {
		return err
	}

	var tracer *tracing.Tracer
	if cfg.traceOut != "" {
		sample := cfg.traceSample
		if sample < 1 {
			sample = 1
		}
		rings := 1
		if comp.Layout == buffer.LayoutSharded || comp.Layout == buffer.LayoutAsync {
			if rings = comp.Shards; rings < 1 {
				rings = runtime.GOMAXPROCS(0)
			}
		}
		// Offline runs keep a deep ring: the file is written once at the
		// end, so retention is the only thing bounding what it can show.
		tracer = tracing.NewTracer(sample, rings, 4096)
		experiment.SetTracer(tracer)
		defer experiment.SetTracer(nil)
	}

	if cfg.serve != "" {
		// The listener is opened synchronously so a bad address fails the
		// run instead of a background goroutine. Every replay the
		// experiment package performs then feeds the service's sink; the
		// server is torn down with the process (benchmark runs exit when
		// done, so there is no separate shutdown path).
		svc := live.NewService()
		ln, err := net.Listen("tcp", cfg.serve)
		if err != nil {
			return fmt.Errorf("-serve %s: %w", cfg.serve, err)
		}
		experiment.SetObserver(svc.Sink())
		go http.Serve(ln, svc.Handler())
		fmt.Printf("serving live metrics on http://%s/\n", ln.Addr())
	}

	optsFor := func(n int) experiment.Options {
		o := opts
		if cfg.paperScale {
			o.Objects = experiment.PaperObjects[n]
		}
		return o
	}

	emit := func(tables []*experiment.Table) error {
		for _, t := range tables {
			fmt.Println(t.Render())
			if cfg.csvDir != "" {
				if err := os.MkdirAll(cfg.csvDir, 0o755); err != nil {
					return err
				}
				path := filepath.Join(cfg.csvDir, t.ID+".csv")
				if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
					return err
				}
			}
		}
		return nil
	}

	if cfg.sets != "" {
		if err := adHoc(cfg, optsFor(cfg.dbNum), tracer, emit); err != nil {
			return err
		}
	}

	if cfg.figure != "" {
		figs := experiment.Figures()
		var ids []string
		if cfg.figure == "all" {
			ids = experiment.FigureIDs()
		} else {
			if figs[cfg.figure] == nil {
				return fmt.Errorf("unknown figure %q (have %v)", cfg.figure, experiment.FigureIDs())
			}
			ids = []string{cfg.figure}
		}
		for _, id := range ids {
			fmt.Printf("=== Figure %s ===\n", id)
			if cfg.paperScale {
				// Figures build both databases; per-figure paper-scale runs
				// should use ad-hoc mode per database instead.
				return fmt.Errorf("-paperscale is only supported for ad-hoc sweeps (-sets); use -objects to scale figures")
			}
			tables, err := figs[id](opts, cfg.seed)
			if err != nil {
				return fmt.Errorf("figure %s: %w", id, err)
			}
			if err := emit(tables); err != nil {
				return err
			}
		}
	}

	if cfg.ctraj != "" {
		if err := writeCTrajectory(cfg.dbNum, optsFor(cfg.dbNum), cfg.seed, cfg.ctraj); err != nil {
			return err
		}
	}

	if tracer != nil {
		if err := writeTraces(tracer, cfg.traceOut); err != nil {
			return err
		}
	}
	return nil
}

// writeTraces dumps everything the tracer retained as Chrome trace-event
// JSON.
func writeTraces(tracer *tracing.Tracer, path string) error {
	traces := tracer.Traces(0)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tracing.WriteChromeTrace(f, traces); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d request traces (1 in %d of %d requests) to %s\n",
		len(traces), tracer.SampleEvery(), tracer.Seen(), path)
	return nil
}

// writeCTrajectory runs the Fig. 14 mixed workload (INT-W-33 + U-W-33 +
// S-W-33 through an ASB buffer) and writes the candidate-size trajectory
// captured from the event stream as "ref,candidate" CSV.
func writeCTrajectory(dbNum int, opts experiment.Options, seed int64, path string) error {
	db, err := experiment.Get(dbNum, opts)
	if err != nil {
		return err
	}
	at, err := experiment.RunAdaptation(db, experiment.LargestFrac, seed)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteTrajectoryCSV(f, at.RefAt, at.Sizes); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote c-trajectory (%d samples over %d references) to %s\n",
		len(at.Sizes), at.PhaseEnds[2], path)
	return nil
}

// adHoc runs a custom sweep and prints one gain table per buffer
// fraction. With -events or -window it additionally re-replays every
// combination sequentially with observability sinks attached.
func adHoc(cfg config, opts experiment.Options, tracer *tracing.Tracer, emit func([]*experiment.Table) error) error {
	db, err := experiment.Get(cfg.dbNum, opts)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d objects, %d pages (%.2f%% directory), height %d\n",
		db.Name, db.Stats.NumObjects, db.Stats.TotalPages(),
		db.Stats.DirFraction()*100, db.Stats.Height)

	setNames := splitCSV(cfg.sets)
	polNames := splitCSV(cfg.policies)
	var fracList []float64
	for _, f := range splitCSV(cfg.fracs) {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return fmt.Errorf("bad fraction %q: %w", f, err)
		}
		fracList = append(fracList, v)
	}

	withLRU := polNames
	if !contains(polNames, "LRU") {
		withLRU = append([]string{"LRU"}, polNames...)
	}
	var factories []core.Factory
	for _, n := range withLRU {
		f, err := core.FactoryByName(n)
		if err != nil {
			return err
		}
		factories = append(factories, f)
	}
	sw, err := experiment.Run(db, setNames, factories, fracList, cfg.seed)
	if err != nil {
		return err
	}
	var tables []*experiment.Table
	for _, frac := range fracList {
		t := experiment.NewTable(
			fmt.Sprintf("adhoc-db%d-%.1f%%", cfg.dbNum, frac*100),
			fmt.Sprintf("ad-hoc sweep, %s, buffer %.1f%%", db.Name, frac*100),
			"gain vs LRU [%]", setNames, polNames)
		for _, set := range setNames {
			for _, pol := range polNames {
				g, err := sw.Gain(set, pol, frac)
				if err != nil {
					return err
				}
				if err := t.Set(set, pol, g*100); err != nil {
					return err
				}
			}
		}
		tables = append(tables, t)
	}
	if err := emit(tables); err != nil {
		return err
	}
	if cfg.events != "" || cfg.window > 0 || cfg.shadowPolicies != "" {
		comp, err := poolComposition(cfg)
		if err != nil {
			return err
		}
		return instrumentedReplays(db, setNames, polNames, fracList, cfg.seed, cfg.events, cfg.window, comp, tracer,
			splitCSV(cfg.shadowPolicies), parseLadder(cfg.shadowLadder), cfg.shadowSample)
	}
	return nil
}

// instrumentedReplays re-runs each (set, policy, fraction) combination of
// an ad-hoc sweep sequentially with observability sinks attached: a JSONL
// event stream separated by "mark" lines, and/or a windowed hit-ratio
// report. Kept separate from the parallel sweep so the measured tables
// stay unperturbed and the event file has a deterministic order.
//
// The replays program against buffer.Pool: each combination runs
// through the pool composition comp describes — with a sharded layout,
// one policy instance per shard, events tagged with their shard,
// measuring the partitioned variant of each policy instead of the
// monolithic one. The replay itself is single-threaded, where the async
// pool is stat-for-stat identical to the synchronous one, so the tables
// stay comparable.
func instrumentedReplays(db *experiment.Database, setNames, polNames []string, fracs []float64, seed int64, eventsPath string, window int, comp buffer.Composition, tracer *tracing.Tracer, shadowPols []string, shadowLadder []float64, shadowSample int) error {
	var jsonl *obs.JSONLSink
	if eventsPath != "" {
		f, err := os.Create(eventsPath)
		if err != nil {
			return err
		}
		jsonl = obs.NewJSONLSinkCloser(f)
		defer jsonl.Close()
	}
	for _, set := range setNames {
		tr, err := db.Trace(set, seed)
		if err != nil {
			return err
		}
		for _, frac := range fracs {
			frames := db.Frames(frac)
			for _, polName := range polNames {
				fac, err := core.FactoryByName(polName)
				if err != nil {
					return err
				}
				label := fmt.Sprintf("%s/%s/%.4f", set, polName, frac)
				var sinks []obs.Sink
				if jsonl != nil {
					jsonl.Mark(label)
					sinks = append(sinks, jsonl)
				}
				var wt *obs.WindowTracker
				if window > 0 {
					wt = obs.NewWindowTracker(window, 1<<16)
					sinks = append(sinks, wt)
				}
				var bank *shadow.Bank
				if len(shadowPols) > 0 {
					specs := shadow.Specs(polName, frames, shadowPols, shadowLadder)
					bank, err = shadow.NewBank(specs, core.Resolver, window)
					if err != nil {
						return fmt.Errorf("instrumented replay %s: %w", label, err)
					}
					// The replay is single-threaded and offline, so the bank
					// hangs directly off the tee — no async ring needed.
					sinks = append(sinks, obs.NewSamplingSink(bank, shadowSample))
				}
				pool, err := comp.Build(db.Store, fac.New, frames)
				if err != nil {
					return fmt.Errorf("instrumented replay %s: %w", label, err)
				}
				pool.SetSink(obs.Tee(sinks...))
				if tracer != nil {
					switch p := pool.(type) {
					case interface{ SetTracer(t *tracing.Tracer) }:
						p.SetTracer(tracer)
					case *buffer.Engine:
						p.SetTracer(tracer, 0)
					}
				}
				if _, err := trace.ReplayOn(tr, pool); err != nil {
					return fmt.Errorf("instrumented replay %s: %w", label, err)
				}
				if c, ok := pool.(interface{ Close() error }); ok {
					if err := c.Close(); err != nil {
						return fmt.Errorf("instrumented replay %s: close: %w", label, err)
					}
				}
				if bank != nil {
					fmt.Printf("%-24s shadow regret %+.4f (real hit ratio %.3f over %d events):\n",
						label, bank.Regret(), bank.RealHitRatio(), bank.RealRequests())
					for _, st := range bank.Stats() {
						fmt.Printf("    %-10s %6d frames  hit ratio %.3f  window %.3f\n",
							st.Policy, st.Capacity, st.HitRatio, st.WindowHitRatio)
					}
				}
				if wt != nil {
					fmt.Printf("%-24s windowed hit ratio (n=%d):", label, wt.WindowSize())
					for _, r := range wt.HitRatios() {
						fmt.Printf(" %.3f", r)
					}
					if cur := wt.Current(); cur.Requests > 0 {
						fmt.Printf(" [%.3f]", cur.HitRatio())
					}
					fmt.Println()
				}
			}
		}
	}
	if jsonl != nil {
		if err := jsonl.Close(); err != nil {
			return fmt.Errorf("writing %s: %w", eventsPath, err)
		}
		fmt.Printf("wrote event stream to %s\n", eventsPath)
	}
	return nil
}

// parseLadder parses comma-separated capacity multipliers, ignoring
// malformed or non-positive entries.
func parseLadder(s string) []float64 {
	var out []float64
	for _, part := range splitCSV(s) {
		if v, err := strconv.ParseFloat(part, 64); err == nil && v > 0 {
			out = append(out, v)
		}
	}
	return out
}

func splitCSV(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
