// Command tracedump records the page-reference trace of a query set
// against a database and reports its structure: length, distinct pages,
// per-level breakdown, and reuse statistics. With -refs it also dumps the
// raw reference string.
//
//	tracedump -db 1 -set INT-P
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/page"
	"repro/internal/trace"
)

func main() {
	var (
		dbNum   = flag.Int("db", 1, "database number (1 or 2)")
		objects = flag.Int("objects", 0, "object count (0 = default scale)")
		seed    = flag.Int64("seed", 1, "generation seed")
		setName = flag.String("set", "U-P", "query set to trace")
		queries = flag.Int("queries", 0, "query count (0 = calibrated)")
		refs    = flag.Bool("refs", false, "dump the raw reference string")
		out     = flag.String("out", "", "save the trace to a file (gob) for later replay")
		prof    obs.ProfileFlags
	)
	prof.Register(flag.CommandLine)
	flag.Parse()

	stop, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracedump:", err)
		os.Exit(1)
	}
	err = run(*dbNum, *objects, *seed, *setName, *queries, *refs, *out)
	if serr := stop(); err == nil {
		err = serr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracedump:", err)
		os.Exit(1)
	}
}

func run(dbNum, objects int, seed int64, setName string, queries int, dumpRefs bool, out string) error {
	db, err := experiment.Get(dbNum, experiment.Options{Objects: objects, Seed: seed})
	if err != nil {
		return err
	}
	var tr *trace.Trace
	if queries == 0 {
		tr, err = db.Trace(setName, seed)
	} else {
		set, qerr := db.QuerySet(setName, queries, seed)
		if qerr != nil {
			return qerr
		}
		tr, err = trace.Record(db.Tree, set)
	}
	if err != nil {
		return err
	}

	touch := make(map[page.ID]int)
	byLevel := make(map[int]int)
	numQueries := uint64(0)
	for _, r := range tr.Refs {
		touch[r.Page]++
		if r.Query > numQueries {
			numQueries = r.Query
		}
	}
	for id, n := range touch {
		p, err := db.Store.Read(id)
		if err != nil {
			return err
		}
		byLevel[p.Level] += n
	}

	fmt.Printf("%s / %s: %d queries, %d page references, %d distinct pages\n",
		db.Name, setName, numQueries, tr.Len(), len(touch))
	fmt.Printf("references per query: %.2f\n", float64(tr.Len())/float64(numQueries))

	levels := make([]int, 0, len(byLevel))
	for l := range byLevel {
		levels = append(levels, l)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(levels)))
	for _, l := range levels {
		kind := "data"
		if l > 0 {
			kind = "directory"
		}
		fmt.Printf("  level %d (%s): %d references (%.1f%%)\n",
			l, kind, byLevel[l], float64(byLevel[l])/float64(tr.Len())*100)
	}

	counts := make([]int, 0, len(touch))
	for _, c := range touch {
		counts = append(counts, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	sum := 0
	for _, c := range counts {
		sum += c
	}
	cum, covered := 0, len(counts)
	for i, c := range counts {
		cum += c
		if cum*10 >= sum*8 { // 80% of references
			covered = i + 1
			break
		}
	}
	fmt.Printf("hottest page: %d references; 80%% of references hit %d pages (%.1f%% of touched)\n",
		counts[0], covered, float64(covered)/float64(len(touch))*100)

	if out != "" {
		if err := tr.Save(out); err != nil {
			return err
		}
		fmt.Printf("trace saved to %s\n", out)
	}
	if dumpRefs {
		for _, r := range tr.Refs {
			fmt.Printf("%d\t%d\n", r.Query, r.Page)
		}
	}
	return nil
}
