// Command tracedump records the page-reference trace of a query set
// against a database and reports its structure: length, distinct pages,
// per-level breakdown, and reuse statistics. With -refs it also dumps the
// raw reference string.
//
//	tracedump -db 1 -set INT-P
//
// With -mrc FILE it additionally replays the trace through offline
// shadow caches — every -mrc-policies policy at every -mrc-capacities
// buffer size (default: powers of two up to the trace's distinct page
// count) — and writes the resulting miss-ratio curves as a
// results/-style CSV (rows = capacities, columns = policies, values =
// miss ratios). This is the offline twin of bufserve's live
// spatialbuf_shadow_* gauges: same simulators, fed from a recorded
// trace instead of the live event stream.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/obs/shadow"
	"repro/internal/page"
	"repro/internal/trace"
)

func main() {
	var (
		dbNum   = flag.Int("db", 1, "database number (1 or 2)")
		objects = flag.Int("objects", 0, "object count (0 = default scale)")
		seed    = flag.Int64("seed", 1, "generation seed")
		setName = flag.String("set", "U-P", "query set to trace")
		queries = flag.Int("queries", 0, "query count (0 = calibrated)")
		refs    = flag.Bool("refs", false, "dump the raw reference string")
		out     = flag.String("out", "", "save the trace to a file (gob) for later replay")
		mrc     = flag.String("mrc", "", "write a miss-ratio-curve CSV (shadow-cache replay) to this file")
		mrcPols = flag.String("mrc-policies", "LRU,SLRU 50%,ASB", "with -mrc: comma-separated policies to curve")
		mrcCaps = flag.String("mrc-capacities", "", "with -mrc: comma-separated buffer sizes in frames (empty = powers of two up to the distinct page count)")
		prof    obs.ProfileFlags
	)
	prof.Register(flag.CommandLine)
	flag.Parse()

	stop, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracedump:", err)
		os.Exit(1)
	}
	err = run(*dbNum, *objects, *seed, *setName, *queries, *refs, *out, *mrc, *mrcPols, *mrcCaps)
	if serr := stop(); err == nil {
		err = serr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracedump:", err)
		os.Exit(1)
	}
}

func run(dbNum, objects int, seed int64, setName string, queries int, dumpRefs bool, out, mrc, mrcPols, mrcCaps string) error {
	db, err := experiment.Get(dbNum, experiment.Options{Objects: objects, Seed: seed})
	if err != nil {
		return err
	}
	var tr *trace.Trace
	if queries == 0 {
		tr, err = db.Trace(setName, seed)
	} else {
		set, qerr := db.QuerySet(setName, queries, seed)
		if qerr != nil {
			return qerr
		}
		tr, err = trace.Record(db.Tree, set)
	}
	if err != nil {
		return err
	}

	touch := make(map[page.ID]int)
	byLevel := make(map[int]int)
	numQueries := uint64(0)
	for _, r := range tr.Refs {
		touch[r.Page]++
		if r.Query > numQueries {
			numQueries = r.Query
		}
	}
	for id, n := range touch {
		p, err := db.Store.Read(id)
		if err != nil {
			return err
		}
		byLevel[p.Level] += n
	}

	fmt.Printf("%s / %s: %d queries, %d page references, %d distinct pages\n",
		db.Name, setName, numQueries, tr.Len(), len(touch))
	fmt.Printf("references per query: %.2f\n", float64(tr.Len())/float64(numQueries))

	levels := make([]int, 0, len(byLevel))
	for l := range byLevel {
		levels = append(levels, l)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(levels)))
	for _, l := range levels {
		kind := "data"
		if l > 0 {
			kind = "directory"
		}
		fmt.Printf("  level %d (%s): %d references (%.1f%%)\n",
			l, kind, byLevel[l], float64(byLevel[l])/float64(tr.Len())*100)
	}

	counts := make([]int, 0, len(touch))
	for _, c := range touch {
		counts = append(counts, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	sum := 0
	for _, c := range counts {
		sum += c
	}
	cum, covered := 0, len(counts)
	for i, c := range counts {
		cum += c
		if cum*10 >= sum*8 { // 80% of references
			covered = i + 1
			break
		}
	}
	fmt.Printf("hottest page: %d references; 80%% of references hit %d pages (%.1f%% of touched)\n",
		counts[0], covered, float64(covered)/float64(len(touch))*100)

	if out != "" {
		if err := tr.Save(out); err != nil {
			return err
		}
		fmt.Printf("trace saved to %s\n", out)
	}
	if mrc != "" {
		if err := writeMRC(tr, db, mrc, mrcPols, mrcCaps, len(touch)); err != nil {
			return err
		}
	}
	if dumpRefs {
		for _, r := range tr.Refs {
			fmt.Printf("%d\t%d\n", r.Query, r.Page)
		}
	}
	return nil
}

// writeMRC replays the trace through a grid of offline shadow caches —
// every requested policy at every capacity — and writes the miss-ratio
// curves as a results/-style CSV: one row per capacity, one column per
// policy. Page descriptors are read from the store once (PageMetas), so
// the replay itself is pure in-memory simulation.
func writeMRC(tr *trace.Trace, db *experiment.Database, path, polList, capList string, distinct int) error {
	var pols []string
	for _, p := range strings.Split(polList, ",") {
		if p = strings.TrimSpace(p); p != "" {
			pols = append(pols, p)
		}
	}
	if len(pols) == 0 {
		return fmt.Errorf("-mrc-policies is empty")
	}
	var capacities []int
	if capList == "" {
		for c := 2; ; c *= 2 {
			capacities = append(capacities, c)
			if c >= distinct {
				break
			}
		}
	} else {
		for _, f := range strings.Split(capList, ",") {
			f = strings.TrimSpace(f)
			if f == "" {
				continue
			}
			v, err := strconv.Atoi(f)
			if err != nil || v < 2 {
				return fmt.Errorf("bad -mrc-capacities entry %q (want integer ≥ 2)", f)
			}
			capacities = append(capacities, v)
		}
		sort.Ints(capacities)
	}
	if len(capacities) == 0 {
		return fmt.Errorf("-mrc-capacities is empty")
	}

	var specs []shadow.Spec
	for _, p := range pols {
		for _, c := range capacities {
			specs = append(specs, shadow.Spec{Policy: p, Capacity: c})
		}
	}
	bank, err := shadow.NewBank(specs, core.Resolver, 0)
	if err != nil {
		return err
	}
	metas, err := trace.PageMetas(tr, db.Store)
	if err != nil {
		return err
	}
	for _, ref := range tr.Refs {
		bank.Request(obs.RequestEvent{Page: ref.Page, QueryID: ref.Query, Meta: metas[ref.Page]})
	}

	missAt := make(map[shadow.Spec]float64, bank.Len())
	for _, st := range bank.Stats() {
		missAt[shadow.Spec{Policy: st.Policy, Capacity: st.Capacity}] = 1 - st.HitRatio
	}
	var b strings.Builder
	b.WriteString("row")
	for _, p := range pols {
		b.WriteString("," + p)
	}
	b.WriteByte('\n')
	for _, c := range capacities {
		fmt.Fprintf(&b, "%d", c)
		for _, p := range pols {
			fmt.Fprintf(&b, ",%.4f", missAt[shadow.Spec{Policy: p, Capacity: c}])
		}
		b.WriteByte('\n')
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote miss-ratio curves (%d policies × %d capacities over %d references) to %s\n",
		len(pols), len(capacities), tr.Len(), path)
	return nil
}
