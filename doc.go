// Package repro is a from-scratch Go reproduction of
//
//	Thomas Brinkhoff: "A Robust and Self-Tuning Page-Replacement
//	Strategy for Spatial Database Systems", EDBT 2002 (LNCS 2287).
//
// The system consists of:
//
//   - internal/geom — 2-D geometry (points, MBRs, area/margin/overlap);
//   - internal/page — the spatial page model and the five spatial
//     replacement criteria A, EA, M, EM, EO;
//   - internal/storage — page stores with physical-I/O accounting (memory
//     and file backed, fixed-size binary pages);
//   - internal/buffer — the buffer manager with a pluggable replacement
//     Policy interface;
//   - internal/core — the paper's contribution: LRU, FIFO, LRU-T, LRU-P,
//     LRU-K, the pure spatial strategies, SLRU and the self-tuning
//     adaptable spatial buffer (ASB);
//   - internal/rtree — a full R*-tree (insertion with forced reinsertion,
//     R* split, deletion, window/point/NN queries, spatial join);
//   - internal/dataset, internal/queryset — synthetic stand-ins for the
//     paper's proprietary data and its five query distributions;
//   - internal/trace — page-reference recording and exact replay;
//   - internal/experiment — the evaluation harness reproducing every
//     figure of the paper (Figs. 4–9, 12–14).
//
// Command-line tools live under cmd/ (spatialbench, datagen, tracedump,
// asbviz); runnable examples under examples/. The benchmarks in
// bench_test.go regenerate one figure each; EXPERIMENTS.md records
// paper-versus-measured results. See README.md and DESIGN.md.
package repro
