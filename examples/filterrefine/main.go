// Filterrefine demonstrates the paper's full storage architecture
// (§2.1, after Brinkhoff et al. 1993): window queries run in two steps —
// the R*-tree filters candidates by MBR, then the *exact representations*
// stored on separate object pages are tested. Directory, data and object
// pages share one buffer here, which is exactly the situation the
// type-based policies were designed for: LRU-T drops object pages first
// and keeps directory pages longest.
//
//	go run ./examples/filterrefine
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/objstore"
	"repro/internal/rtree"
	"repro/internal/storage"
)

func main() {
	gen := dataset.USMainland(1)
	shaped := gen.ShapedObjects(2, 40_000)

	// One page store holds BOTH the tree pages and the object pages, so
	// a single buffer manages all three page categories.
	store := storage.NewMemStore()
	tree, err := rtree.New(store, rtree.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	shapes := make(map[uint64]geom.Polyline, len(shaped))
	exact := make([]objstore.ExactObject, len(shaped))
	for i, s := range shaped {
		if err := tree.Insert(s.ID, s.MBR); err != nil {
			log.Fatal(err)
		}
		shapes[s.ID] = s.Shape
		exact[i] = objstore.ExactObject{ID: s.ID, Shape: s.Shape}
	}
	if err := tree.FinalizeStats(); err != nil {
		log.Fatal(err)
	}
	objs, err := objstore.Build(store, exact, 0)
	if err != nil {
		log.Fatal(err)
	}
	ts, _ := tree.Stats()
	fmt.Printf("tree: %d pages; object store: %d pages; %d objects\n",
		ts.TotalPages(), objs.NumPages(), objs.NumObjects())

	// Window workload around the data clusters.
	rng := rand.New(rand.NewSource(5))
	var windows []geom.Rect
	for i := 0; i < 1200; i++ {
		c := geom.Point{
			X: gen.Space.MinX + rng.Float64()*gen.Space.Width(),
			Y: gen.Space.MinY + rng.Float64()*gen.Space.Height(),
		}
		windows = append(windows, geom.RectFromCenter(c, 12, 8).Intersection(gen.Space))
	}

	frames := (ts.TotalPages() + objs.NumPages()) * 2 / 100
	fmt.Printf("shared buffer: %d frames (2%%)\n\n", frames)

	policies := []buffer.Policy{core.NewLRU(), core.NewLRUT(), core.NewLRUP(),
		core.NewASB(frames, core.DefaultASBOptions())}
	var lruIO uint64
	for _, pol := range policies {
		buf, err := buffer.NewManager(store, pol, frames)
		if err != nil {
			log.Fatal(err)
		}
		hits, candidates := 0, 0
		for i, w := range windows {
			if w.IsEmpty() {
				continue
			}
			res, err := objstore.FilterRefine(tree, buf, objs, buf, shapes,
				buffer.AccessContext{QueryID: uint64(i + 1)}, w, nil)
			if err != nil {
				log.Fatal(err)
			}
			hits += res.Hits
			candidates += res.Candidates
		}
		io := buf.Stats().DiskReads()
		if pol.Name() == "LRU" {
			lruIO = io
		}
		fmt.Printf("%-6s %8d disk accesses  (gain vs LRU %+5.1f%%)  %d exact hits of %d candidates\n",
			pol.Name(), io, (float64(lruIO)/float64(io)-1)*100, hits, candidates)
	}
}
