// Mapviewer simulates an interactive map client: a user pans and zooms
// across a map, producing overlapping window queries with strong but
// shifting locality. The example compares the I/O cost of the same
// session under LRU, the pure spatial strategy A, LRU-2 and the
// adaptable spatial buffer.
//
//	go run ./examples/mapviewer
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/page"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// session generates a panning/zooming viewport trajectory: mostly small
// steps, occasional jumps to another region, occasional zoom changes.
func session(space geom.Rect, steps int, seed int64) []geom.Rect {
	rng := rand.New(rand.NewSource(seed))
	pos := space.Center()
	zoom := 40.0 // viewport half-width
	var out []geom.Rect
	for i := 0; i < steps; i++ {
		switch {
		case rng.Float64() < 0.04: // jump to a new region
			pos = geom.Point{
				X: space.MinX + rng.Float64()*space.Width(),
				Y: space.MinY + rng.Float64()*space.Height(),
			}
		case rng.Float64() < 0.10: // zoom in/out
			zoom *= []float64{0.5, 2}[rng.Intn(2)]
			if zoom < 10 {
				zoom = 10
			}
			if zoom > 120 {
				zoom = 120
			}
		default: // pan
			pos.X += rng.NormFloat64() * zoom / 3
			pos.Y += rng.NormFloat64() * zoom / 5
		}
		vp := geom.RectFromCenter(pos, 2*zoom, zoom).Intersection(space)
		if vp.IsEmpty() {
			pos = space.Center()
			continue
		}
		out = append(out, vp)
	}
	return out
}

func main() {
	gen := dataset.USMainland(1)
	objects := gen.Objects(2, 60_000)
	store := storage.NewMemStore()
	tree, err := rtree.New(store, rtree.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	for _, o := range objects {
		if err := tree.Insert(o.ID, o.MBR); err != nil {
			log.Fatal(err)
		}
	}
	if err := tree.FinalizeStats(); err != nil {
		log.Fatal(err)
	}
	stats, err := tree.Stats()
	if err != nil {
		log.Fatal(err)
	}
	viewports := session(gen.Space, 3000, 7)
	fmt.Printf("map with %d pages; panning session of %d viewport queries\n",
		stats.TotalPages(), len(viewports))
	frames := stats.TotalPages() * 2 / 100
	fmt.Printf("buffer: %d frames (2%% of the map)\n\n", frames)

	policies := []buffer.Policy{
		core.NewLRU(),
		core.NewLRUK(2),
		core.NewSpatial(page.CritA),
		core.NewASB(frames, core.DefaultASBOptions()),
	}
	var lruAccesses uint64
	for _, pol := range policies {
		store.ResetStats()
		buf, err := buffer.NewManager(store, pol, frames)
		if err != nil {
			log.Fatal(err)
		}
		results := 0
		for i, vp := range viewports {
			ctx := buffer.AccessContext{QueryID: uint64(i + 1)}
			err := tree.Search(buf, ctx, vp, func(page.Entry) bool {
				results++
				return true
			})
			if err != nil {
				log.Fatal(err)
			}
		}
		bs := buf.Stats()
		if pol.Name() == "LRU" {
			lruAccesses = bs.DiskReads()
		}
		gain := 0.0
		if bs.DiskReads() > 0 {
			gain = (float64(lruAccesses)/float64(bs.DiskReads()) - 1) * 100
		}
		fmt.Printf("%-6s %8d disk accesses  %5.1f%% hit ratio  gain vs LRU %+.1f%%\n",
			pol.Name(), bs.DiskReads(), bs.HitRatio()*100, gain)
	}
}
