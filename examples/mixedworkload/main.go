// Mixedworkload demonstrates the self-tuning behaviour of the adaptable
// spatial buffer (the experiment behind Fig. 14 of the paper): the query
// profile changes from intensified to uniform to similar, and the ASB
// shifts the balance between its LRU and spatial components accordingly —
// without any manual tuning.
//
//	go run ./examples/mixedworkload
package main

import (
	"fmt"
	"log"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/page"
	"repro/internal/queryset"
	"repro/internal/trace"
)

func main() {
	db, err := experiment.Get(1, experiment.Options{Objects: 60_000, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d pages\n", db.Name, db.Stats.TotalPages())

	// Three phases with different profiles, as in the paper's Fig. 14.
	intW, err := db.QuerySet("INT-W-100", 800, 1)
	if err != nil {
		log.Fatal(err)
	}
	uniW, err := db.QuerySet("U-W-100", 800, 1)
	if err != nil {
		log.Fatal(err)
	}
	simW, err := db.QuerySet("S-W-100", 800, 1)
	if err != nil {
		log.Fatal(err)
	}
	mixed := queryset.Concat("mixed", intW, uniW, simW)

	frames := db.Frames(0.047)
	pol := core.NewASB(frames, core.DefaultASBOptions())
	buf, err := buffer.NewManager(db.Store, pol, frames)
	if err != nil {
		log.Fatal(err)
	}
	// The candidate-set trajectory comes from the observability layer: a
	// trajectory recorder samples the size at every Adapt event.
	rec := obs.NewTrajectoryRecorder()
	buf.SetSink(rec)

	fmt.Printf("buffer %d frames: main part %d, overflow %d, initial candidate set %d\n\n",
		frames, pol.MainCapacity(), pol.OverflowCapacity(), pol.CandidateSize())

	// Run the phases back to back on the same (never cleared) buffer and
	// report the candidate size as the profile shifts.
	phaseEnd := []int{intW.Len(), intW.Len() + uniW.Len(), mixed.Len()}
	phaseName := []string{"intensified (INT-W-100)", "uniform (U-W-100)", "similar (S-W-100)"}
	phase := 0
	for i, q := range mixed.Queries {
		ctx := buffer.AccessContext{QueryID: q.ID}
		if err := db.Tree.Search(buf, ctx, q.Rect, func(page.Entry) bool { return true }); err != nil {
			log.Fatal(err)
		}
		if i+1 == phaseEnd[phase] {
			fmt.Printf("after %-24s candidate set = %4d / %d (%4.0f%% of main part), %d adaptations so far\n",
				phaseName[phase]+":", pol.CandidateSize(), pol.MainCapacity(),
				float64(pol.CandidateSize())/float64(pol.MainCapacity())*100,
				pol.Adaptations())
			phase++
		}
	}

	lo, hi := pol.MainCapacity(), 1
	for _, c := range rec.Cand {
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	fmt.Printf("\ncandidate-set range over the session: %d – %d frames\n", lo, hi)

	bs := buf.Stats()
	fmt.Printf("total: %d requests, %.1f%% hit ratio, %d disk accesses\n",
		bs.Requests, bs.HitRatio()*100, bs.DiskReads())

	// Compare against a static LRU buffer on the identical workload.
	lruStats, err := trace.RunLive(db.Tree, mixed, mustManager(db, core.NewLRU(), frames))
	if err != nil {
		log.Fatal(err)
	}
	gain := (float64(lruStats.DiskReads())/float64(bs.DiskReads()) - 1) * 100
	fmt.Printf("plain LRU on the same workload: %d disk accesses → ASB gain %+.1f%%\n",
		lruStats.DiskReads(), gain)
}

func mustManager(db *experiment.Database, pol buffer.Policy, frames int) *buffer.Manager {
	m, err := buffer.NewManager(db.Store, pol, frames)
	if err != nil {
		log.Fatal(err)
	}
	return m
}
