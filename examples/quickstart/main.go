// Quickstart: build a spatial database, put an adaptable spatial buffer
// (ASB) in front of it, and run window queries.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/page"
	"repro/internal/rtree"
	"repro/internal/storage"
)

func main() {
	// 1. Generate a clustered spatial dataset (20,000 objects).
	gen := dataset.USMainland(1)
	objects := gen.Objects(2, 20_000)

	// 2. Index it with an R*-tree over an in-memory page store. The
	//    fan-outs (51 directory / 42 data entries) match the paper.
	store := storage.NewMemStore()
	tree, err := rtree.New(store, rtree.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	for _, o := range objects {
		if err := tree.Insert(o.ID, o.MBR); err != nil {
			log.Fatal(err)
		}
	}
	// Finalize per-page statistics (needed by the spatial criteria).
	if err := tree.FinalizeStats(); err != nil {
		log.Fatal(err)
	}
	stats, err := tree.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d objects in %d pages (height %d, %.1f%% directory pages)\n",
		stats.NumObjects, stats.TotalPages(), stats.Height, stats.DirFraction()*100)
	store.ResetStats()

	// 3. Put a buffer in front: 4% of the database, managed by the
	//    self-tuning adaptable spatial buffer.
	frames := stats.TotalPages() * 4 / 100
	policy := core.NewASB(frames, core.DefaultASBOptions())
	buf, err := buffer.NewManager(store, policy, frames)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Run some window queries through the buffer. Each query gets its
	//    own ID: the buffer uses it to recognize correlated accesses.
	found := 0
	for q := 1; q <= 500; q++ {
		window := geom.RectFromCenter(
			geom.Point{X: float64(q%40) * 25, Y: float64(q%20) * 25}, 30, 15)
		ctx := buffer.AccessContext{QueryID: uint64(q)}
		err := tree.Search(buf, ctx, window, func(e page.Entry) bool {
			found++
			return true
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	// 5. Inspect the result: every buffer miss was one disk access.
	bs := buf.Stats()
	fmt.Printf("500 window queries: %d results, %d page requests, %.1f%% hit ratio, %d disk accesses\n",
		found, bs.Requests, bs.HitRatio()*100, bs.DiskReads())
	fmt.Printf("ASB self-tuned its candidate set to %d of %d main-part frames (%d adaptations)\n",
		policy.CandidateSize(), policy.MainCapacity(), policy.Adaptations())
}
