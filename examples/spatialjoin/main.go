// Spatialjoin exercises the paper's future-work item 2: the influence of
// page-replacement strategies on spatial joins. Two map layers (a
// "roads"-like layer and a "places"-like layer) are joined by
// synchronized R*-tree traversal; the join's page accesses run through a
// shared buffer under different replacement policies.
//
//	go run ./examples/spatialjoin
package main

import (
	"fmt"
	"log"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/page"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// buildLayer indexes objects into a fresh tree over its own store.
func buildLayer(objs []dataset.Object) (*rtree.Tree, *storage.MemStore, error) {
	store := storage.NewMemStore()
	tree, err := rtree.New(store, rtree.DefaultParams())
	if err != nil {
		return nil, nil, err
	}
	for _, o := range objs {
		if err := tree.Insert(o.ID, o.MBR); err != nil {
			return nil, nil, err
		}
	}
	if err := tree.FinalizeStats(); err != nil {
		return nil, nil, err
	}
	store.ResetStats()
	return tree, store, nil
}

func main() {
	gen := dataset.USMainland(1)
	// Two layers over the same space with different seeds: their objects
	// cluster in the same regions (as map layers do) but differ.
	left, leftStore, err := buildLayer(gen.Objects(2, 40_000))
	if err != nil {
		log.Fatal(err)
	}
	right, rightStore, err := buildLayer(gen.Objects(3, 30_000))
	if err != nil {
		log.Fatal(err)
	}
	ls, _ := left.Stats()
	rs, _ := right.Stats()
	fmt.Printf("left layer: %d pages; right layer: %d pages\n", ls.TotalPages(), rs.TotalPages())

	// A small shared budget per side: joins revisit directory pages of
	// both trees heavily, so the policy matters.
	framesL := ls.TotalPages() * 2 / 100
	framesR := rs.TotalPages() * 2 / 100
	fmt.Printf("buffers: %d + %d frames (2%% of each layer)\n\n", framesL, framesR)

	mkPolicy := map[string]func(frames int) buffer.Policy{
		"LRU":   func(int) buffer.Policy { return core.NewLRU() },
		"LRU-2": func(int) buffer.Policy { return core.NewLRUK(2) },
		"A":     func(int) buffer.Policy { return core.NewSpatial(page.CritA) },
		"ASB":   func(f int) buffer.Policy { return core.NewASB(f, core.DefaultASBOptions()) },
	}
	order := []string{"LRU", "LRU-2", "A", "ASB"}
	var lruIO uint64
	for _, name := range order {
		bufL, err := buffer.NewManager(leftStore, mkPolicy[name](framesL), framesL)
		if err != nil {
			log.Fatal(err)
		}
		bufR, err := buffer.NewManager(rightStore, mkPolicy[name](framesR), framesR)
		if err != nil {
			log.Fatal(err)
		}
		pairs := 0
		err = rtree.Join(left, right, bufL, bufR,
			buffer.AccessContext{QueryID: 1},
			func(rtree.JoinPair) bool { pairs++; return true })
		if err != nil {
			log.Fatal(err)
		}
		io := bufL.Stats().DiskReads() + bufR.Stats().DiskReads()
		if name == "LRU" {
			lruIO = io
		}
		gain := (float64(lruIO)/float64(io) - 1) * 100
		fmt.Printf("%-6s %9d intersecting pairs, %8d disk accesses, gain vs LRU %+.1f%%\n",
			name, pairs, io, gain)
	}
}
