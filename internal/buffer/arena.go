package buffer

// Arena is a fixed pre-allocated table of Frames with a free-list: the
// frame-recycling substrate behind a Manager (one arena per manager, so
// one per pool shard). All frames a manager ever serves come from its
// arena, so steady-state admission and eviction perform zero heap
// allocations — a miss pops a scrubbed frame off the free-list and an
// eviction pushes the victim back.
//
// Recycling is safe because frames never escape the manager's
// serialization: the Pool implementations return *page.Page to callers,
// never *Frame, and every frame access (policy callbacks, write-back
// enqueue) happens under the shard's lock before the frame is freed.
//
// An arena frame carries its own slot index (ArenaIndex), which the
// tracing layer reports on victim-select spans. Frames constructed
// outside an arena (tests drive policies with hand-made frames) report
// index -1 and are ignored by Free, so policies never need to know where
// a frame came from.
type Arena struct {
	frames []Frame
	free   []int32 // stack of free slot indices
}

// NewArena returns an arena of capacity frames, all free.
func NewArena(capacity int) *Arena {
	a := &Arena{
		frames: make([]Frame, capacity),
		free:   make([]int32, 0, capacity),
	}
	a.Reset()
	return a
}

// Cap returns the arena size in frames.
func (a *Arena) Cap() int { return len(a.frames) }

// Live returns the number of frames currently allocated.
func (a *Arena) Live() int { return len(a.frames) - len(a.free) }

// Alloc pops a scrubbed frame off the free-list, or returns nil when the
// arena is exhausted. The returned frame is zero-valued apart from its
// arena slot tag.
func (a *Arena) Alloc() *Frame {
	n := len(a.free)
	if n == 0 {
		return nil
	}
	i := a.free[n-1]
	a.free = a.free[:n-1]
	f := &a.frames[i]
	*f = Frame{arena: i + 1}
	return f
}

// Free scrubs f and returns it to the free-list. Frames that did not come
// from this arena (hand-made test frames, the defensive heap fallback)
// are ignored, as is nil. The scrub clears page pointer, link words and
// policy scratch, so a bug that touches a freed frame reads zeroes, not a
// stale neighbor.
func (a *Arena) Free(f *Frame) {
	if f == nil || f.arena == 0 {
		return
	}
	i := f.arena - 1
	if int(i) >= len(a.frames) || &a.frames[i] != f {
		return // not ours
	}
	*f = Frame{arena: f.arena}
	a.free = append(a.free, i)
}

// Reset scrubs every frame and rebuilds the free-list (all frames free).
// Slot 0 is allocated first, so a cleared manager refills its arena in
// deterministic order.
func (a *Arena) Reset() {
	for i := range a.frames {
		a.frames[i] = Frame{arena: int32(i) + 1}
	}
	a.free = a.free[:0]
	for i := len(a.frames) - 1; i >= 0; i-- {
		a.free = append(a.free, int32(i))
	}
}
