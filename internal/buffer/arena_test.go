package buffer

import (
	"testing"

	"repro/internal/page"
)

func TestArenaAllocFreeRecycle(t *testing.T) {
	a := NewArena(3)
	if a.Cap() != 3 || a.Live() != 0 {
		t.Fatalf("fresh arena: cap %d live %d", a.Cap(), a.Live())
	}

	f0 := a.Alloc()
	f1 := a.Alloc()
	f2 := a.Alloc()
	if f0 == nil || f1 == nil || f2 == nil {
		t.Fatal("alloc returned nil with free frames")
	}
	if a.Alloc() != nil {
		t.Fatal("alloc past capacity did not return nil")
	}
	if a.Live() != 3 {
		t.Fatalf("live = %d", a.Live())
	}
	if f0.ArenaIndex() != 0 || f1.ArenaIndex() != 1 || f2.ArenaIndex() != 2 {
		t.Fatalf("slot order: %d %d %d", f0.ArenaIndex(), f1.ArenaIndex(), f2.ArenaIndex())
	}

	// Dirty a frame, free it, and check the next alloc of the slot is
	// scrubbed but keeps its slot tag.
	f1.Meta.ID = 42
	f1.Dirty = true
	f1.Tag = 7
	f1.Crit = 1.5
	f1.pins = 2
	a.Free(f1)
	if a.Live() != 2 {
		t.Fatalf("live after free = %d", a.Live())
	}
	g := a.Alloc()
	if g != f1 {
		t.Fatal("free-list did not recycle the freed slot")
	}
	if g.Meta.ID != 0 || g.Dirty || g.Tag != 0 || g.Crit != 0 || g.Pinned() {
		t.Fatalf("recycled frame not scrubbed: %+v", g)
	}
	if g.ArenaIndex() != 1 {
		t.Fatalf("recycled frame lost its slot: %d", g.ArenaIndex())
	}
}

func TestArenaIgnoresForeignFrames(t *testing.T) {
	a := NewArena(2)
	f := a.Alloc()

	// Hand-made frames report -1 and are ignored by Free.
	hand := &Frame{Meta: page.Meta{ID: 9}}
	if hand.ArenaIndex() != -1 {
		t.Fatalf("hand-made ArenaIndex = %d", hand.ArenaIndex())
	}
	a.Free(hand)
	a.Free(nil)
	if a.Live() != 1 {
		t.Fatalf("foreign free changed occupancy: live = %d", a.Live())
	}

	// A frame from another arena is ignored too (its slot tag points into
	// the other arena's table).
	b := NewArena(2)
	fb := b.Alloc()
	a.Free(fb)
	if a.Live() != 1 || b.Live() != 1 {
		t.Fatalf("cross-arena free changed occupancy: a %d b %d", a.Live(), b.Live())
	}
	_ = f
}

func TestArenaReset(t *testing.T) {
	a := NewArena(4)
	for i := 0; i < 4; i++ {
		f := a.Alloc()
		f.Meta.ID = page.ID(i + 1)
	}
	a.Reset()
	if a.Live() != 0 {
		t.Fatalf("live after reset = %d", a.Live())
	}
	// Deterministic refill order: slot 0 first.
	for i := 0; i < 4; i++ {
		f := a.Alloc()
		if f == nil || f.ArenaIndex() != int32(i) {
			t.Fatalf("post-reset alloc %d returned slot %v", i, f.ArenaIndex())
		}
		if f.Meta.ID != 0 {
			t.Fatalf("post-reset frame not scrubbed: %+v", f)
		}
	}
}

// TestManagerArenaSteadyState pins the recycling invariant at the manager
// level: after the buffer warms up, the arena's live count tracks
// residency exactly and never exceeds capacity.
func TestManagerArenaSteadyState(t *testing.T) {
	s := newStore(t, 32)
	m, err := NewManager(s, newTestPolicy(), 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		id := page.ID(i%32 + 1)
		if _, err := m.Get(id, AccessContext{QueryID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
		if got := m.arena.Live(); got != m.Len() {
			t.Fatalf("after %d requests: arena live %d != resident %d", i+1, got, m.Len())
		}
	}
	if err := m.Clear(); err != nil {
		t.Fatal(err)
	}
	if m.arena.Live() != 0 {
		t.Fatalf("arena live after Clear = %d", m.arena.Live())
	}
	// The manager must be fully usable after the reset.
	if _, err := m.Get(1, AccessContext{}); err != nil {
		t.Fatal(err)
	}
	if m.arena.Live() != 1 {
		t.Fatalf("arena live after post-Clear get = %d", m.arena.Live())
	}
}
