package buffer

import (
	"fmt"

	"repro/internal/obs/tracing"
)

// DefaultWritebackWorkers is the number of background writer goroutines
// used when AsyncConfig leaves it zero.
const DefaultWritebackWorkers = 2

// AsyncConfig tunes the asynchronous I/O machinery of the async layer.
// The zero value selects the defaults.
type AsyncConfig struct {
	// WritebackWorkers is the number of background goroutines writing
	// dirty evicted pages to the store (default DefaultWritebackWorkers).
	WritebackWorkers int
	// WritebackQueue is the write-back queue capacity in pages (default
	// DefaultWritebackQueue). When the queue is full, evictions fall back
	// to a synchronous under-lock write — the backpressure path.
	WritebackQueue int
}

// AsyncPool is the asynchronous-I/O layer over a Router: every shard
// engine's miss path is switched to the non-blocking protocol — the
// shard lock protects only in-memory state, the physical read happens
// outside it (with per-shard singleflight coalescing of concurrent
// misses for the same page) — and dirty evicted pages drain through one
// shared bounded background write-back queue. See the "I/O concurrency
// contract" section of DESIGN.md for the protocol.
//
// Semantics relative to the synchronous router:
//
//   - Logical counters (Stats) are identical for single-threaded
//     read-only workloads; under concurrency, coalesced misses are
//     additionally counted in Stats.Coalesced, so DiskReads stays the
//     physical read count.
//   - Dirty write-backs are asynchronous. Flush, Clear and Close drain
//     the queue before returning; until then the pool itself serves the
//     queued versions on a miss (read-your-writes), never the stale
//     store.
//
// Call Close when done with the pool to stop the writer goroutines; an
// un-Closed pool leaks them but is otherwise harmless (they idle on an
// empty queue).
type AsyncPool struct {
	*Router
	wb *writeback
}

// Async stacks the asynchronous-I/O layer on a router. The router must
// not be used directly afterwards (the layer overrides its barrier
// operations); it must not already carry an async layer.
func Async(r *Router, cfg AsyncConfig) *AsyncPool {
	workers := cfg.WritebackWorkers
	if workers < 1 {
		workers = DefaultWritebackWorkers
	}
	queueCap := cfg.WritebackQueue
	if queueCap < 1 {
		queueCap = DefaultWritebackQueue
	}
	p := &AsyncPool{Router: r, wb: newWriteback(r.store, workers, queueCap)}
	for _, sh := range r.shards {
		sh.e.enableAsync(p.wb)
	}
	return p
}

// Writeback returns a snapshot of the background write-back queue
// counters.
func (p *AsyncPool) Writeback() WritebackMetrics { return p.wb.metrics() }

// Flush writes back all dirty resident pages, shard by shard, after
// first draining the background write-back queue — so when Flush
// returns every write-back decided before the call is durable. The
// drain comes first deliberately: queued pages are never resident
// (re-admission cancels their queued write), so the two write sets are
// disjoint, and draining first means no background writer is still
// running behind the per-shard flushes.
func (p *AsyncPool) Flush() error {
	if err := p.wb.drain(); err != nil {
		return fmt.Errorf("buffer: write-back drain: %w", err)
	}
	return p.Router.Flush()
}

// Close flushes the pool (draining the write-back queue) and stops the
// background writer goroutines. The pool remains usable afterwards —
// with the queue closed, dirty evictions fall back to synchronous
// writes.
func (p *AsyncPool) Close() error {
	err := p.Flush()
	if cerr := p.wb.close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// Clear evicts everything, resets every shard's policy and zeroes all
// counters, draining the write-back queue first (and clearing its
// sticky error either way — Clear zeroes all accounting).
func (p *AsyncPool) Clear() error {
	err := p.wb.drain()
	p.wb.resetErr()
	if err != nil {
		return fmt.Errorf("buffer: write-back drain: %w", err)
	}
	return p.Router.Clear()
}

// SetTracer attaches a tracer to every shard (see Router.SetTracer) and
// to the background write-back workers, whose store writes record
// KindWriteback spans. A nil tracer detaches.
func (p *AsyncPool) SetTracer(t *tracing.Tracer) {
	p.Router.SetTracer(t)
	p.wb.setTracer(t)
}
