package buffer

import (
	"bytes"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/page"
	"repro/internal/storage"
)

// gatedStore blocks every Read until the gate is closed, so a test can
// pile an arbitrary number of concurrent misses onto one in-flight read
// before letting it complete. fail, when set, makes gated reads error
// after the gate opens.
type gatedStore struct {
	storage.Store
	gate  chan struct{}
	fail  atomic.Bool
	reads atomic.Int32
}

var errGatedRead = errors.New("gated read failed")

func (s *gatedStore) Read(id page.ID) (*page.Page, error) {
	<-s.gate
	s.reads.Add(1)
	if s.fail.Load() {
		return nil, errGatedRead
	}
	return s.Store.Read(id)
}

// blockWriteStore blocks every Write until the gate is closed, keeping
// write-back queue entries pending for as long as a test needs them.
type blockWriteStore struct {
	storage.Store
	gate chan struct{}
}

func (s *blockWriteStore) Write(p *page.Page) error {
	<-s.gate
	return s.Store.Write(p)
}

// countingStore counts Reads per page on top of a base store.
type countingStore struct {
	storage.Store
	reads atomic.Int64
}

func (s *countingStore) Read(id page.ID) (*page.Page, error) {
	p, err := s.Store.Read(id)
	if err == nil {
		s.reads.Add(1)
	}
	return p, err
}

// testPage builds a data page with a distinctive ObjID, for asserting
// which version of a page a read returned.
func testPage(id page.ID, obj uint64) *page.Page {
	p := page.New(id, page.TypeData, 0, 1)
	p.Append(page.Entry{MBR: geom.NewRect(0, 0, 1, 1), ObjID: obj})
	p.Recompute()
	return p
}

// waitForRequests polls until the pool has accounted n requests — i.e.
// the leader is mid-read and every other goroutine is registered as a
// coalesced waiter — or the deadline passes.
func waitForRequests(t *testing.T, sp *ShardedPool, n uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for sp.Stats().Requests < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d accounted requests (have %d)", n, sp.Stats().Requests)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAsyncSingleflightOneRead is the coalescing contract: N goroutines
// missing the same page perform exactly one physical read, all share
// its result, and the accounting identity DiskReads = Misses −
// Coalesced holds exactly.
func TestAsyncSingleflightOneRead(t *testing.T) {
	gs := &gatedStore{Store: newStore(t, 8), gate: make(chan struct{})}
	sp, err := NewAsyncShardedPool(gs, testFactory, 4, 1, AsyncConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()

	const n = 16
	var wg sync.WaitGroup
	pages := make([]*page.Page, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pages[i], errs[i] = sp.Get(1, AccessContext{QueryID: uint64(i)})
		}(i)
	}
	waitForRequests(t, sp, n)
	close(gs.gate)
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if pages[i] == nil || pages[i].ID != 1 {
			t.Fatalf("request %d returned wrong page: %+v", i, pages[i])
		}
	}
	if got := gs.reads.Load(); got != 1 {
		t.Errorf("store reads = %d, want exactly 1", got)
	}
	st := sp.Stats()
	if st.Requests != n || st.Misses != n || st.Hits != 0 {
		t.Errorf("stats = %+v, want %d misses", st, n)
	}
	if st.Coalesced != n-1 {
		t.Errorf("coalesced = %d, want %d", st.Coalesced, n-1)
	}
	if st.DiskReads() != 1 {
		t.Errorf("DiskReads = %d, want 1", st.DiskReads())
	}
	if sp.Len() != 1 {
		t.Errorf("resident pages = %d, want 1", sp.Len())
	}
}

// TestAsyncSingleflightSharedError checks the error path: a failed read
// is delivered to the leader and every coalesced waiter, leaves no
// residue (nothing resident, no stuck in-flight entry), and the next
// miss for the page starts a fresh read that can succeed.
func TestAsyncSingleflightSharedError(t *testing.T) {
	gs := &gatedStore{Store: newStore(t, 8), gate: make(chan struct{})}
	gs.fail.Store(true)
	sp, err := NewAsyncShardedPool(gs, testFactory, 4, 1, AsyncConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()

	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = sp.Get(3, AccessContext{})
		}(i)
	}
	waitForRequests(t, sp, n)
	close(gs.gate)
	wg.Wait()

	for i := 0; i < n; i++ {
		if !errors.Is(errs[i], errGatedRead) {
			t.Fatalf("request %d: err = %v, want %v", i, errs[i], errGatedRead)
		}
	}
	if sp.Len() != 0 {
		t.Errorf("resident pages = %d after failed read, want 0", sp.Len())
	}

	// No residue: with the failure cleared, the same page loads fine.
	gs.fail.Store(false)
	p, err := sp.Get(3, AccessContext{})
	if err != nil || p == nil || p.ID != 3 {
		t.Fatalf("get after failure: page %+v, err %v", p, err)
	}
}

// TestAsyncFixCoalesce pins through the coalesced path: N concurrent
// Fixes of one absent page share one read, and every caller holds a
// real pin afterwards (each Unfix releases exactly one).
func TestAsyncFixCoalesce(t *testing.T) {
	gs := &gatedStore{Store: newStore(t, 8), gate: make(chan struct{})}
	sp, err := NewAsyncShardedPool(gs, testFactory, 4, 1, AsyncConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()

	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = sp.Fix(5, AccessContext{})
		}(i)
	}
	waitForRequests(t, sp, n)
	close(gs.gate)
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("fix %d: %v", i, errs[i])
		}
	}
	if got := gs.reads.Load(); got != 1 {
		t.Errorf("store reads = %d, want exactly 1", got)
	}
	// Exactly n pins: n Unfixes succeed, one more fails.
	for i := 0; i < n; i++ {
		if err := sp.Unfix(5); err != nil {
			t.Fatalf("unfix %d: %v", i, err)
		}
	}
	if err := sp.Unfix(5); err == nil {
		t.Error("unfix beyond pin count should fail")
	}
}

// TestAsyncSingleShardSeedEquivalence pins the tentpole's compatibility
// promise: a single-threaded read-only replay through a 1-shard async
// pool is stat-for-stat — and event-for-event — identical to the seed
// Manager over the same reference string.
func TestAsyncSingleShardSeedEquivalence(t *testing.T) {
	const numPages, capacity, requests = 64, 16, 4096

	seedStore := newStore(t, numPages)
	seed, err := NewManager(seedStore, newTestPolicy(), capacity)
	if err != nil {
		t.Fatal(err)
	}
	var seedLog bytes.Buffer
	seedSink := obs.NewJSONLSink(&seedLog)
	seed.SetSink(seedSink)

	asyncStore := newStore(t, numPages)
	sp, err := NewAsyncShardedPool(asyncStore, testFactory, capacity, 1, AsyncConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	var asyncLog bytes.Buffer
	asyncSink := obs.NewJSONLSink(&asyncLog)
	sp.SetSink(asyncSink)

	// A deterministic LCG reference string with rereference locality.
	replay := func(get func(page.ID, AccessContext) (*page.Page, error)) {
		state := uint64(1)
		for i := 0; i < requests; i++ {
			state = state*6364136223846793005 + 1442695040888963407
			id := page.ID(state>>33%numPages + 1)
			if _, err := get(id, AccessContext{QueryID: uint64(i) / 8}); err != nil {
				t.Fatal(err)
			}
		}
	}
	replay(seed.Get)
	replay(sp.Get)

	if ss, as := seed.Stats(), sp.Stats(); ss != as {
		t.Errorf("stats diverge:\n seed  %+v\n async %+v", ss, as)
	}
	if sr, ar := seedStore.Stats().Reads, asyncStore.Stats().Reads; sr != ar {
		t.Errorf("physical reads diverge: seed %d, async %d", sr, ar)
	}
	seedIDs, asyncIDs := seed.ResidentIDs(), sp.ResidentIDs()
	sort.Slice(seedIDs, func(i, j int) bool { return seedIDs[i] < seedIDs[j] })
	if len(seedIDs) != len(asyncIDs) {
		t.Fatalf("resident sets diverge: %d vs %d pages", len(seedIDs), len(asyncIDs))
	}
	for i := range seedIDs {
		if seedIDs[i] != asyncIDs[i] {
			t.Fatalf("resident sets diverge at %d: %d vs %d", i, seedIDs[i], asyncIDs[i])
		}
	}
	if err := seedSink.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := asyncSink.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seedLog.Bytes(), asyncLog.Bytes()) {
		t.Error("event streams diverge between seed Manager and 1-shard async pool")
	}
}

// TestAsyncConcurrentGetStress hammers a 4-shard async pool with
// concurrent readers under -race and checks the global accounting
// identity for Get-only workloads: physical reads == Misses −
// Coalesced.
func TestAsyncConcurrentGetStress(t *testing.T) {
	const numPages, capacity, workers, perWorker = 256, 64, 8, 1500
	cs := &countingStore{Store: newStore(t, numPages)}
	sp, err := NewAsyncShardedPool(cs, testFactory, capacity, 4, AsyncConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			state := uint64(w)*2862933555777941757 + 3037000493
			for i := 0; i < perWorker; i++ {
				state = state*6364136223846793005 + 1442695040888963407
				id := page.ID(state>>33%numPages + 1)
				if _, err := sp.Get(id, AccessContext{QueryID: uint64(i)}); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	st := sp.Stats()
	if st.Requests != workers*perWorker {
		t.Errorf("requests = %d, want %d", st.Requests, workers*perWorker)
	}
	if st.Hits+st.Misses != st.Requests {
		t.Errorf("hits %d + misses %d != requests %d", st.Hits, st.Misses, st.Requests)
	}
	if got, want := uint64(cs.reads.Load()), st.DiskReads(); got != want {
		t.Errorf("physical reads = %d, want Misses-Coalesced = %d", got, want)
	}
}

// TestAsyncWritebackReadYourWrites evicts a dirty page into the
// write-back queue (with the physical write blocked), then misses on
// it: the pool must serve the queued version — never the stale store —
// count the miss as coalesced, and keep the page dirty so the canceled
// write eventually happens.
func TestAsyncWritebackReadYourWrites(t *testing.T) {
	bw := &blockWriteStore{Store: newStore(t, 32), gate: make(chan struct{})}
	sp, err := NewAsyncShardedPool(bw, testFactory, 2, 1, AsyncConfig{WritebackWorkers: 1, WritebackQueue: 4})
	if err != nil {
		t.Fatal(err)
	}

	ctx := AccessContext{}
	if _, err := sp.Get(1, ctx); err != nil {
		t.Fatal(err)
	}
	if err := sp.Put(testPage(9, 999), ctx); err != nil {
		t.Fatal(err)
	}
	// FIFO: Get(2) evicts clean page 1; Get(3) evicts dirty page 9 into
	// the queue, where the gated store keeps it pending.
	if _, err := sp.Get(2, ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Get(3, ctx); err != nil {
		t.Fatal(err)
	}

	p, err := sp.Get(9, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Entries) != 1 || p.Entries[0].ObjID != 999 {
		t.Fatalf("got stale page 9 content: %+v", p)
	}
	st := sp.Stats()
	if st.Coalesced != 1 {
		t.Errorf("coalesced = %d, want 1 (the queue-served miss)", st.Coalesced)
	}
	if m := sp.Writeback(); m.Canceled != 1 {
		t.Errorf("canceled write-backs = %d, want 1", m.Canceled)
	}

	close(bw.gate)
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
	// The re-admitted page stayed dirty, so Close's flush made it
	// durable despite the canceled queued write.
	got, err := bw.Store.Read(9)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != 1 || got.Entries[0].ObjID != 999 {
		t.Fatalf("store holds stale page 9 after Close: %+v", got)
	}
}

// TestAsyncFlushDrainsWriteback dirties a batch of pages, evicts them
// into the write-back queue, and checks that Flush is a durability
// barrier: afterwards the store holds every new version and the queue
// is empty.
func TestAsyncFlushDrainsWriteback(t *testing.T) {
	st := newStore(t, 32)
	sp, err := NewAsyncShardedPool(st, testFactory, 4, 1, AsyncConfig{WritebackWorkers: 2, WritebackQueue: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()

	ctx := AccessContext{}
	for id := page.ID(1); id <= 8; id++ {
		if err := sp.Put(testPage(id, 1000+uint64(id)), ctx); err != nil {
			t.Fatal(err)
		}
	}
	// Evict the dirty pages by pulling in clean ones.
	for id := page.ID(20); id <= 27; id++ {
		if _, err := sp.Get(id, ctx); err != nil {
			t.Fatal(err)
		}
	}
	if err := sp.Flush(); err != nil {
		t.Fatal(err)
	}

	for id := page.ID(1); id <= 8; id++ {
		p, err := st.Read(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(p.Entries) != 1 || p.Entries[0].ObjID != 1000+uint64(id) {
			t.Fatalf("page %d not durable after Flush: %+v", id, p)
		}
	}
	m := sp.Writeback()
	if m.Pending != 0 || m.Depth != 0 {
		t.Errorf("queue not drained after Flush: %+v", m)
	}
	if m.Queued == 0 || m.Written == 0 {
		t.Errorf("expected background write-backs, got %+v", m)
	}
}

// TestWritebackCoalesceAndClose unit-tests the queue itself:
// re-enqueueing a pending page replaces it in place (one physical
// write, newest version wins), close drains, and a closed queue refuses
// work so the pool degrades to synchronous writes.
func TestWritebackCoalesceAndClose(t *testing.T) {
	bw := &blockWriteStore{Store: newStore(t, 4), gate: make(chan struct{})}
	w := newWriteback(bw, 1, 4)

	if !w.enqueue(testPage(1, 100)) {
		t.Fatal("first enqueue refused")
	}
	if !w.enqueue(testPage(1, 200)) {
		t.Fatal("coalescing enqueue refused")
	}
	m := w.metrics()
	if m.Queued != 1 || m.Coalesced != 1 {
		t.Fatalf("metrics after coalesce: %+v", m)
	}

	close(bw.gate)
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	p, err := bw.Store.Read(1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Entries[0].ObjID != 200 {
		t.Fatalf("store holds stale version after coalesced write: %+v", p)
	}
	if w.enqueue(testPage(1, 300)) {
		t.Error("closed queue accepted work")
	}
}

// failWriteStore fails every Write.
type failWriteStore struct {
	storage.Store
}

var errFailedWrite = errors.New("write failed")

func (s *failWriteStore) Write(*page.Page) error { return errFailedWrite }

// TestWritebackStickyError checks that a failed background write
// surfaces at the next drain (Flush barrier), and that Clear resets the
// sticky error along with the rest of the accounting.
func TestWritebackStickyError(t *testing.T) {
	fs := &failWriteStore{Store: newStore(t, 8)}
	sp, err := NewAsyncShardedPool(fs, testFactory, 2, 1, AsyncConfig{WritebackWorkers: 1, WritebackQueue: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()

	ctx := AccessContext{}
	if err := sp.Put(testPage(1, 7), ctx); err != nil {
		t.Fatal(err)
	}
	// Evict the dirty page; the background write fails.
	if _, err := sp.Get(2, ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Get(3, ctx); err != nil {
		t.Fatal(err)
	}
	if err := sp.Flush(); !errors.Is(err, errFailedWrite) {
		t.Fatalf("Flush err = %v, want %v", err, errFailedWrite)
	}
	if m := sp.Writeback(); m.Errors == 0 {
		t.Errorf("error counter not bumped: %+v", m)
	}
	// Clear resets the sticky error, so the next Flush succeeds.
	if err := sp.Clear(); !errors.Is(err, errFailedWrite) {
		t.Fatalf("Clear err = %v, want the sticky %v", err, errFailedWrite)
	}
	if err := sp.Clear(); err != nil {
		t.Fatalf("Clear after reset: %v", err)
	}
	if err := sp.Flush(); err != nil {
		t.Fatalf("Flush after reset: %v", err)
	}
}

// TestWritebackBackpressure fills a tiny queue with blocked writes and
// checks the fallback contract: refused enqueues are written
// synchronously by the evicting request, so no dirty page is ever
// dropped.
func TestWritebackBackpressure(t *testing.T) {
	base := newStore(t, 64)
	bw := &blockWriteStore{Store: base, gate: make(chan struct{})}
	w := newWriteback(bw, 1, 1)

	accepted := 0
	for id := page.ID(1); id <= 3; id++ {
		if w.enqueue(testPage(id, uint64(id))) {
			accepted++
		}
	}
	// Capacity 1 plus at most one page already claimed by the (blocked)
	// worker: at least one of the three enqueues must have been refused.
	if accepted == 3 {
		t.Fatal("tiny queue accepted every enqueue; backpressure never engaged")
	}
	if m := w.metrics(); m.Fallbacks != uint64(3-accepted) {
		t.Errorf("fallbacks = %d, want %d", m.Fallbacks, 3-accepted)
	}
	close(bw.gate)
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
}
