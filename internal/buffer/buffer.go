// Package buffer implements the buffer manager in front of a page store:
// the component whose replacement policy the paper studies.
//
// The manager holds up to a fixed number of page frames. A page request is
// a hit (served from memory, no physical I/O) or a miss (one physical read
// through the store, possibly preceded by an eviction chosen by the
// replacement Policy). Requests carry an AccessContext with the current
// query ID: the paper (§2.2) treats two accesses as correlated exactly when
// they belong to the same query, which the LRU-K policy needs.
//
// The replacement policies themselves (LRU, LRU-T, LRU-P, LRU-K, the
// spatial strategies, SLRU and the adaptable spatial buffer) live in
// package core; they plug in through the Policy interface.
package buffer

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core/intrusive"
	"repro/internal/obs"
	"repro/internal/obs/tracing"
	"repro/internal/page"
	"repro/internal/storage"
)

// ErrAllPinned is returned when a miss cannot evict because every frame is
// pinned.
var ErrAllPinned = errors.New("buffer: all frames pinned")

// AccessContext describes one page request. QueryID identifies the query
// on whose behalf the request is made; the paper defines two accesses to
// be correlated iff they share a query (§2.2).
type AccessContext struct {
	QueryID uint64
}

// Frame is one buffer slot: a cached page, its descriptor, and the
// bookkeeping the manager and policy need.
//
// Beyond the manager-owned fields, a frame embeds the intrusive words the
// replacement policies link it with: list hooks, a heap slot, a scratch
// tag, a cached criterion and a recency stamp. Exactly one policy owns a
// frame per residence (OnAdmit to OnEvict), so the words are shared
// across policies without conflict; the arena scrubs them on every
// recycle. See DESIGN.md, "Frame lifecycle and memory layout".
type Frame struct {
	Meta page.Meta
	Page *page.Page

	// LastUse is the logical time (manager clock) of the most recent
	// request for this frame. The manager updates it after OnHit returns,
	// so policies observe the previous value during the callback and
	// receive the new value as the callback's now argument.
	LastUse uint64

	// Dirty marks the page for write-back on eviction.
	Dirty bool

	pins int

	// arena is 1+slot index in the owning Arena, 0 for frames constructed
	// outside an arena.
	arena int32

	// Links are the intrusive list hooks of the owning policy's recency /
	// FIFO / ring order (LRU, FIFO, LRU-T/P, LRU-K residency, SLRU, ASB,
	// CLOCK).
	Links intrusive.Hooks[*Frame]

	// Slot is the frame's position in the owning policy's min-heap
	// (Spatial), maintained by the heap's move callback; -1 when absent.
	Slot int32

	// Tag is small per-policy scratch: the ASB region (main/overflow), the
	// CLOCK reference bit, a PriorityLRU class, or an LRU-K history-record
	// index.
	Tag uint32

	// Crit caches the owning policy's spatial criterion value for the
	// page, so victim scans and ASB adaptation votes never recompute MBR
	// geometry.
	Crit float64

	// Stamp is a policy-owned recency shadow of LastUse (Spatial updates
	// it in OnHit, before the manager bumps LastUse).
	Stamp uint64

	// aux is policy-private per-frame state for policies outside this
	// package that need more than the embedded words. The standard
	// policies no longer use it; it remains for extension policies (and
	// the list-backed reference implementations the equivalence tests
	// keep).
	aux any
}

// Pinned reports whether the frame is currently pinned and therefore not
// evictable.
func (f *Frame) Pinned() bool { return f.pins > 0 }

// ArenaIndex returns the frame's slot in its manager's arena, or -1 for
// frames constructed outside an arena (hand-made test frames).
func (f *Frame) ArenaIndex() int32 { return f.arena - 1 }

// Aux returns the policy-private state attached to the frame.
func (f *Frame) Aux() any { return f.aux }

// SetAux attaches policy-private state to the frame.
func (f *Frame) SetAux(v any) { f.aux = v }

// Policy decides which frame to evict when the buffer is full.
//
// The manager guarantees: OnAdmit is called exactly once per residence of a
// page; OnHit only for admitted frames; Victim only when at least one frame
// exists; OnEvict exactly once for the frame most recently returned by
// Victim. Victim must never return a pinned frame (return nil instead,
// which the manager surfaces as ErrAllPinned).
type Policy interface {
	// Name returns the policy's display name (e.g. "LRU", "ASB").
	Name() string
	// OnAdmit is invoked when f enters the buffer at logical time now.
	OnAdmit(f *Frame, now uint64, ctx AccessContext)
	// OnHit is invoked when a request finds f in the buffer. f.LastUse
	// still holds the previous access time; the manager sets it to now
	// after the callback returns.
	OnHit(f *Frame, now uint64, ctx AccessContext)
	// Victim selects the frame to evict, or nil if every frame is pinned.
	// ctx is the access on whose behalf the eviction happens; LRU-K uses
	// it to exclude pages whose last reference is correlated with the
	// current access (paper §2.2, third case).
	Victim(ctx AccessContext) *Frame
	// OnEvict is invoked after the manager removed f from the buffer.
	OnEvict(f *Frame)
	// Reset discards all policy state (the manager was cleared).
	Reset()
}

// Stats are the logical access counters of a Manager. DiskReads equals
// Misses: every miss costs exactly one physical read.
type Stats struct {
	Requests  uint64
	Hits      uint64
	Misses    uint64
	Evictions uint64
	// Puts counts write-path requests (Manager.Put); they are not part
	// of Requests/Hits/Misses, which describe the read path.
	Puts uint64
	// WriteBacks counts dirty pages handed to the store on eviction or
	// Flush. With a background write-back queue attached this counts the
	// logical write-back decisions; the physical store writes can be
	// fewer when several write-backs of the same page coalesce.
	WriteBacks uint64
	// Coalesced counts misses that were served without their own
	// physical read: either by sharing another request's in-flight read
	// (singleflight) or from a page still waiting in the write-back
	// queue. Always a subset of Misses; zero on synchronous pools, so
	// Misses-Coalesced equals the physical read count.
	Coalesced uint64
}

// Add accumulates o into s, field by field. It is the merge operation
// behind ShardedPool.Stats: counters are additive, so the merge of the
// per-shard snapshots equals the counters of the whole run.
func (s *Stats) Add(o Stats) {
	s.Requests += o.Requests
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.Puts += o.Puts
	s.WriteBacks += o.WriteBacks
	s.Coalesced += o.Coalesced
}

// DiskReads returns the number of physical reads caused through the
// buffer — the paper's cost metric for read-only workloads. Coalesced
// misses shared another request's read (or a queued write-back), so
// they cost no read of their own.
func (s Stats) DiskReads() uint64 { return s.Misses - s.Coalesced }

// DiskIO returns physical reads plus write-backs — the cost metric for
// update workloads.
func (s Stats) DiskIO() uint64 { return s.DiskReads() + s.WriteBacks }

// HitRatio returns Hits/Requests, or 0 for an unused buffer.
func (s Stats) HitRatio() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Requests)
}

// Manager is the buffer manager. It is not safe for concurrent use; the
// experiment harness runs one manager per goroutine.
type Manager struct {
	store    storage.Store
	policy   Policy
	capacity int

	// io is the store the request path actually reads and writes: the raw
	// store normally, or a storage.Traced wrapper around it while a tracer
	// is attached (so physical I/O shows up as child spans).
	io storage.Store

	frames map[page.ID]*Frame
	arena  *Arena
	clock  uint64
	stats  Stats

	// sink receives observability events; never nil (NopSink by
	// default), so the hot path emits unconditionally and stays
	// allocation-free when unobserved.
	sink obs.Sink
	// timer is non-nil only when sink implements obs.LatencyRecorder;
	// then each request is bracketed with monotonic-clock readings and
	// the elapsed nanoseconds published. Latency-blind sinks (including
	// NopSink) keep the hot path free of clock reads.
	timer obs.LatencyRecorder

	// tracer samples request-scoped span traces; nil when tracing is
	// disabled (the request path then pays a single pointer test). shard
	// is the pool-shard index stamped on every span this manager records.
	tracer *tracing.Tracer
	shard  int
	// slot hands the current request's Active trace to the policy and the
	// traced store; it is read and written only under the manager's
	// serialization (its shard's lock in concurrent pools).
	slot tracing.Slot
	// pendingLockWait is the shard-lock wait of the request about to run,
	// deposited by the enclosing concurrent pool after it acquired the
	// lock and consumed (and cleared) by the next traced request.
	pendingLockWait int64

	// wb, when non-nil, receives dirty evicted pages for background
	// write-back instead of the synchronous under-lock store write.
	wb writebackEnqueuer
}

// NewManager creates a buffer of the given capacity (in frames, ≥ 1) over
// store, managed by policy.
func NewManager(store storage.Store, policy Policy, capacity int) (*Manager, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("buffer: capacity %d, need ≥ 1", capacity)
	}
	if store == nil || policy == nil {
		return nil, errors.New("buffer: nil store or policy")
	}
	return &Manager{
		store:    store,
		policy:   policy,
		capacity: capacity,
		io:       store,
		frames:   make(map[page.ID]*Frame, capacity),
		arena:    NewArena(capacity),
		sink:     obs.NopSink{},
	}, nil
}

// SetSink attaches an observability sink to the manager and, if the
// policy implements obs.SinkSetter, to the policy as well — one call
// instruments the whole stack. A nil sink detaches (back to NopSink).
// The manager emits Request events; instrumented policies emit
// Eviction, OverflowPromotion and Adapt events.
func (m *Manager) SetSink(s obs.Sink) {
	if s == nil {
		s = obs.NopSink{}
	}
	m.sink = s
	m.timer, _ = s.(obs.LatencyRecorder)
	if ss, ok := m.policy.(obs.SinkSetter); ok {
		ss.SetSink(s)
	}
}

// SetTracer attaches a request-scoped span tracer to the manager, to its
// store (via a storage.Traced wrapper, so physical I/O appears as child
// spans) and, if the policy implements tracing.SlotSetter, to the policy
// (so victim selections and ASB adaptations appear as child spans) —
// like SetSink, one call instruments the whole stack. shard is the pool
// shard this manager serves (0 for an unsharded manager); it is stamped
// on every span and selects the tracer's trace ring. A nil tracer
// detaches everything.
func (m *Manager) SetTracer(t *tracing.Tracer, shard int) {
	m.tracer = t
	m.shard = shard
	m.pendingLockWait = 0
	if t != nil {
		m.io = storage.Traced(m.store, &m.slot)
	} else {
		m.io = m.store
		m.slot.SetActive(nil)
	}
	if ss, ok := m.policy.(tracing.SlotSetter); ok {
		if t != nil {
			ss.SetTraceSlot(&m.slot)
		} else {
			ss.SetTraceSlot(nil)
		}
	}
}

// Tracer returns the attached tracer, or nil when tracing is disabled.
func (m *Manager) Tracer() *tracing.Tracer { return m.tracer }

// depositLockWait records the shard-lock wait of the request about to
// run; the next traced request attaches it to its root span. Called by
// the concurrent pools after acquiring the shard lock.
func (m *Manager) depositLockWait(ns int64) { m.pendingLockWait = ns }

// latencyTimer returns the sink's latency recorder, or nil when the
// attached sink is latency-blind. The async pool's request path times
// itself (it bypasses timedServe), so it needs the recorder directly.
func (m *Manager) latencyTimer() obs.LatencyRecorder { return m.timer }

// Capacity returns the buffer capacity in frames.
func (m *Manager) Capacity() int { return m.capacity }

// Len returns the number of resident pages.
func (m *Manager) Len() int { return len(m.frames) }

// Contains reports whether the page is resident (without counting a
// request or touching policy state).
func (m *Manager) Contains(id page.ID) bool {
	_, ok := m.frames[id]
	return ok
}

// Policy returns the replacement policy driving this manager.
func (m *Manager) Policy() Policy { return m.policy }

// Stats returns the logical access counters.
func (m *Manager) Stats() Stats { return m.stats }

// Get requests the page without pinning it. The returned page must be
// treated as read-only and may be evicted by any later request.
func (m *Manager) Get(id page.ID, ctx AccessContext) (*page.Page, error) {
	f, err := m.request(tracing.KindGet, id, ctx)
	if err != nil {
		return nil, err
	}
	return f.Page, nil
}

// Fix requests the page and pins its frame; the caller must Unfix it.
// Pinned frames are never evicted.
func (m *Manager) Fix(id page.ID, ctx AccessContext) (*page.Page, error) {
	f, err := m.request(tracing.KindFix, id, ctx)
	if err != nil {
		return nil, err
	}
	f.pins++
	return f.Page, nil
}

// Unfix releases one pin on the page. Like Get/Put it routes through
// the tracing plumbing: sampled unfixes record a root span (Hit set
// when the page was resident), so pin-leak debugging can line pins and
// unpins up in one trace timeline.
func (m *Manager) Unfix(id page.ID) error {
	if m.tracer != nil {
		wait := m.pendingLockWait
		m.pendingLockWait = 0
		if a := m.tracer.StartRequest(tracing.KindUnfix, id, 0, m.shard, wait); a != nil {
			resident := m.Contains(id)
			err := m.unfix(id)
			a.Finish(resident, err != nil)
			return err
		}
	}
	return m.unfix(id)
}

// unfix is the untraced pin release.
func (m *Manager) unfix(id page.ID) error {
	f, ok := m.frames[id]
	if !ok {
		return fmt.Errorf("buffer: unfix of non-resident page %d", id)
	}
	if f.pins == 0 {
		return fmt.Errorf("buffer: unfix of unpinned page %d", id)
	}
	f.pins--
	return nil
}

// MarkDirty flags a resident page for write-back on eviction or Flush.
// Sampled calls record a root span like Get/Put, so the dirtying of a
// page is visible in the same trace timeline as its later write-back.
func (m *Manager) MarkDirty(id page.ID) error {
	if m.tracer != nil {
		wait := m.pendingLockWait
		m.pendingLockWait = 0
		if a := m.tracer.StartRequest(tracing.KindMarkDirty, id, 0, m.shard, wait); a != nil {
			resident := m.Contains(id)
			err := m.markDirty(id)
			a.Finish(resident, err != nil)
			return err
		}
	}
	return m.markDirty(id)
}

// markDirty is the untraced dirty flagging.
func (m *Manager) markDirty(id page.ID) error {
	f, ok := m.frames[id]
	if !ok {
		return fmt.Errorf("buffer: mark dirty of non-resident page %d", id)
	}
	f.Dirty = true
	return nil
}

// request implements the hit/miss protocol, timing the request when the
// sink asked for latencies and tracing it when a tracer sampled it.
func (m *Manager) request(kind tracing.SpanKind, id page.ID, ctx AccessContext) (*Frame, error) {
	if m.tracer != nil {
		wait := m.pendingLockWait
		m.pendingLockWait = 0
		if a := m.tracer.StartRequest(kind, id, ctx.QueryID, m.shard, wait); a != nil {
			m.slot.SetActive(a)
			hitsBefore := m.stats.Hits
			f, err := m.timedServe(id, ctx)
			m.slot.SetActive(nil)
			a.Finish(m.stats.Hits > hitsBefore, err != nil)
			return f, err
		}
	}
	return m.timedServe(id, ctx)
}

// timedServe brackets serve with latency timing when the sink asked for
// it.
func (m *Manager) timedServe(id page.ID, ctx AccessContext) (*Frame, error) {
	if m.timer == nil {
		return m.serve(id, ctx)
	}
	start := time.Now()
	f, err := m.serve(id, ctx)
	m.timer.RecordLatency(time.Since(start).Nanoseconds())
	return f, err
}

// serve is the untimed hit/miss protocol. It is composed from the
// locked primitives below (hitLocked/missLocked/admitLocked) so the
// concurrent pools can run the same protocol with the physical read
// lifted out of the critical section; the composition here performs the
// exact seed sequence: count, read, evict, admit.
func (m *Manager) serve(id page.ID, ctx AccessContext) (*Frame, error) {
	if f, ok := m.frames[id]; ok {
		m.hitLocked(f, ctx)
		return f, nil
	}
	now := m.missLocked(id, ctx, false)
	// Read before evicting: a failed read must not discard a perfectly
	// good cached page (or count an eviction) for a request that errored.
	p, err := m.io.Read(id)
	if err != nil {
		// The miss was counted, so its event must still flow — with a
		// zero Meta, since no page materialized.
		m.emitMiss(id, ctx, false, page.Meta{})
		return nil, err
	}
	// Emit after the successful read, so the event carries the page's
	// Meta (shadow caches replay spatial criteria from it), and before
	// admission, so Request still precedes any Eviction it causes.
	m.emitMiss(id, ctx, false, p.Meta)
	return m.admitLocked(p, now, ctx)
}

// frame returns the resident frame for id, or nil — residency lookup
// without any request accounting, for the concurrent pools' fast path.
func (m *Manager) frame(id page.ID) *Frame { return m.frames[id] }

// hitLocked accounts one read request served by the resident frame f:
// clock tick, hit counters, sink event, policy OnHit, LastUse update.
// Must run under the manager's serialization.
func (m *Manager) hitLocked(f *Frame, ctx AccessContext) {
	m.clock++
	now := m.clock
	m.stats.Requests++
	m.stats.Hits++
	m.sink.Request(obs.RequestEvent{Page: f.Meta.ID, QueryID: ctx.QueryID, Hit: true, Meta: f.Meta})
	m.policy.OnHit(f, now, ctx)
	f.LastUse = now
}

// missLocked accounts one read request that missed and returns the
// request's logical time, at which the page should later be admitted.
// coalesced marks misses that will share another request's physical
// read instead of performing their own. Counting is split from event
// emission (emitMiss) so the miss paths can attach the read page's Meta
// to the event once the read resolved. Must run under the manager's
// serialization.
func (m *Manager) missLocked(id page.ID, ctx AccessContext, coalesced bool) uint64 {
	m.clock++
	m.stats.Requests++
	m.stats.Misses++
	if coalesced {
		m.stats.Coalesced++
	}
	return m.clock
}

// emitMiss publishes the Request event of a miss counted by missLocked,
// exactly once per counted miss. meta is the descriptor of the page the
// miss resolved to, or the zero Meta when none materialized (failed
// reads, coalesced waiters). Must run under the manager's serialization.
func (m *Manager) emitMiss(id page.ID, ctx AccessContext, coalesced bool, meta page.Meta) {
	m.sink.Request(obs.RequestEvent{Page: id, QueryID: ctx.QueryID, Hit: false, Coalesced: coalesced, Meta: meta})
}

// tickLocked advances the logical clock for a request that was already
// accounted (a coalesced waiter retrying as a fresh reader). Must run
// under the manager's serialization.
func (m *Manager) tickLocked() uint64 {
	m.clock++
	return m.clock
}

// admitLocked installs the freshly read page at logical time now,
// evicting first when the buffer is full. Must run under the manager's
// serialization; now must come from missLocked/tickLocked.
func (m *Manager) admitLocked(p *page.Page, now uint64, ctx AccessContext) (*Frame, error) {
	if len(m.frames) >= m.capacity {
		if err := m.evictOne(ctx); err != nil {
			return nil, err
		}
	}
	f := m.allocFrame()
	f.Meta = p.Meta
	f.Page = p
	f.LastUse = now
	m.frames[p.ID] = f
	m.policy.OnAdmit(f, now, ctx)
	return f, nil
}

// allocFrame takes a scrubbed frame from the arena. The capacity check in
// the admit paths guarantees a free frame (residents ≤ capacity = arena
// size); the heap fallback only exists so an invariant bug degrades to an
// allocation instead of a crash.
func (m *Manager) allocFrame() *Frame {
	if f := m.arena.Alloc(); f != nil {
		return f
	}
	return &Frame{}
}

// writebackEnqueuer is the hook a background write-back queue installs
// on a manager (via setWriteback): enqueue hands over a dirty evicted
// page and reports whether the queue accepted it. It is called under
// the shard lock, so it must never block; a false return (queue full or
// closed) makes the manager fall back to a synchronous write — the
// queue-full backpressure path. take cancels (and returns) the pending
// entry for a page, so a newer version entering the buffer supersedes a
// queued older one before its stale write can land.
type writebackEnqueuer interface {
	enqueue(p *page.Page) bool
	take(id page.ID) (*page.Page, bool)
}

// setWriteback attaches (or, with nil, detaches) a background
// write-back queue: dirty victims are enqueued instead of written
// synchronously under the lock.
func (m *Manager) setWriteback(wb writebackEnqueuer) { m.wb = wb }

// evictOne asks the policy for a victim, writes it back if dirty (or
// hands it to the background write-back queue when one is attached),
// and removes it.
func (m *Manager) evictOne(ctx AccessContext) error {
	v := m.policy.Victim(ctx)
	if v == nil {
		return ErrAllPinned
	}
	if v.Pinned() {
		return fmt.Errorf("buffer: policy %s returned pinned victim %d", m.policy.Name(), v.Meta.ID)
	}
	if _, ok := m.frames[v.Meta.ID]; !ok {
		return fmt.Errorf("buffer: policy %s returned non-resident victim %d", m.policy.Name(), v.Meta.ID)
	}
	if v.Dirty {
		if m.wb != nil && m.wb.enqueue(v.Page) {
			// Queued: a background writer will perform the physical
			// write; until then misses on this page are served from the
			// queue (read-your-writes), never from the stale store.
		} else if err := m.io.Write(v.Page); err != nil {
			return fmt.Errorf("buffer: write-back of page %d: %w", v.Meta.ID, err)
		}
		m.stats.WriteBacks++
	}
	delete(m.frames, v.Meta.ID)
	m.stats.Evictions++
	m.policy.OnEvict(v)
	// The policy has unlinked the frame and nothing above holds a *Frame
	// (callers only ever see *page.Page), so the slot recycles to the
	// free-list for the admission that triggered this eviction.
	m.arena.Free(v)
	return nil
}

// Flush writes back all dirty resident pages without evicting them.
// Flushes are rare and expensive, so a tracer records every one (no
// sampling), with one store.Write child span per dirty page.
func (m *Manager) Flush() error {
	if a := m.tracer.StartOp(tracing.KindFlush, m.shard); a != nil {
		m.slot.SetActive(a)
		err := m.flush()
		m.slot.SetActive(nil)
		a.Finish(false, err != nil)
		return err
	}
	return m.flush()
}

// flush is the untraced write-back loop.
func (m *Manager) flush() error {
	for _, f := range m.frames {
		if !f.Dirty {
			continue
		}
		if err := m.io.Write(f.Page); err != nil {
			return fmt.Errorf("buffer: flush page %d: %w", f.Meta.ID, err)
		}
		m.stats.WriteBacks++
		f.Dirty = false
	}
	return nil
}

// Clear evicts everything (writing back dirty pages), resets the policy
// and zeroes the statistics. The paper clears the buffer before each query
// set "in order to increase the comparability of the results" (§3).
func (m *Manager) Clear() error {
	if err := m.Flush(); err != nil {
		return err
	}
	clear(m.frames)
	// Reset the policy while the frame links are still intact (its Clear
	// walks them), then scrub and refill the arena.
	m.policy.Reset()
	m.arena.Reset()
	m.clock = 0
	m.stats = Stats{}
	return nil
}

// ResidentIDs returns the IDs of all resident pages, for tests and
// introspection. Order is unspecified.
func (m *Manager) ResidentIDs() []page.ID {
	ids := make([]page.ID, 0, len(m.frames))
	for id := range m.frames {
		ids = append(ids, id)
	}
	return ids
}

// Updater is an optional Policy extension for policies that cache
// page-derived state (e.g. spatial criteria): OnUpdate is invoked instead
// of OnHit when a resident page's content changes via Put.
type Updater interface {
	OnUpdate(f *Frame, now uint64, ctx AccessContext)
}

// Put installs a new version of a page in the buffer and marks it dirty;
// it is the write path for update workloads. A non-resident page is
// admitted without a physical read (the caller provides the content); a
// resident page is replaced in place. Dirty pages are written back on
// eviction or Flush. Like reads, Puts are timed when the sink implements
// obs.LatencyRecorder.
func (m *Manager) Put(p *page.Page, ctx AccessContext) error {
	if m.tracer != nil && p != nil {
		wait := m.pendingLockWait
		m.pendingLockWait = 0
		if a := m.tracer.StartRequest(tracing.KindPut, p.ID, ctx.QueryID, m.shard, wait); a != nil {
			m.slot.SetActive(a)
			resident := m.Contains(p.ID)
			err := m.timedPut(p, ctx)
			m.slot.SetActive(nil)
			// A Put "hits" when it replaced a resident page in place.
			a.Finish(resident, err != nil)
			return err
		}
	}
	return m.timedPut(p, ctx)
}

// timedPut brackets put with latency timing when the sink asked for it.
func (m *Manager) timedPut(p *page.Page, ctx AccessContext) error {
	if m.timer == nil {
		return m.put(p, ctx)
	}
	start := time.Now()
	err := m.put(p, ctx)
	m.timer.RecordLatency(time.Since(start).Nanoseconds())
	return err
}

// put is the untimed write path.
func (m *Manager) put(p *page.Page, ctx AccessContext) error {
	if p == nil || p.ID == page.InvalidID {
		return errors.New("buffer: put of invalid page")
	}
	m.clock++
	now := m.clock
	m.stats.Puts++

	if f, ok := m.frames[p.ID]; ok {
		f.Page = p
		f.Meta = p.Meta
		f.Dirty = true
		if u, ok := m.policy.(Updater); ok {
			u.OnUpdate(f, now, ctx)
		} else {
			m.policy.OnHit(f, now, ctx)
		}
		f.LastUse = now
		return nil
	}

	if m.wb != nil {
		// A queued write-back of an older version is superseded by this
		// content; cancel it so the stale write can never land after ours.
		m.wb.take(p.ID)
	}
	if len(m.frames) >= m.capacity {
		if err := m.evictOne(ctx); err != nil {
			return err
		}
	}
	f := m.allocFrame()
	f.Meta = p.Meta
	f.Page = p
	f.LastUse = now
	f.Dirty = true
	m.frames[p.ID] = f
	m.policy.OnAdmit(f, now, ctx)
	return nil
}
