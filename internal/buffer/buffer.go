// Package buffer implements the buffer manager in front of a page store:
// the component whose replacement policy the paper studies.
//
// The package is organized as one core engine plus three orthogonal,
// stackable layers:
//
//   - Engine — the unlocked, single-threaded core that owns the entire
//     request path: frame arena lifecycle, hit/miss accounting,
//     read-before-evict ordering, pin counts, dirty tracking, policy
//     callbacks, and the only code that emits observability events,
//     shadow metadata and request-scoped tracing spans.
//   - LockedEngine — a mutex around an Engine, with lock-contention and
//     lock-wait profiling (Lock).
//   - Router — a page-hash sharding layer over locked engines, with
//     per-shard policy instances, shard-tagged events and exact stats
//     merging (NewRouter).
//   - AsyncPool — an asynchronous-I/O layer: per-shard singleflight
//     read coalescing and a bounded background write-back queue
//     (Async).
//
// Compositions are described by a Composition spec (ParseComposition /
// Composition.Build); the historical Manager, SyncManager, ShardedPool
// and AsyncShardedPool names remain as thin constructors over this
// stack. See DESIGN.md, "Engine layering".
//
// A page request is a hit (served from memory, no physical I/O) or a
// miss (one physical read through the store, possibly preceded by an
// eviction chosen by the replacement Policy). Requests carry an
// AccessContext with the current query ID: the paper (§2.2) treats two
// accesses as correlated exactly when they belong to the same query,
// which the LRU-K policy needs.
//
// The replacement policies themselves (LRU, LRU-T, LRU-P, LRU-K, the
// spatial strategies, SLRU and the adaptable spatial buffer) live in
// package core; they plug in through the Policy interface.
package buffer

import (
	"errors"

	"repro/internal/core/intrusive"
	"repro/internal/page"
)

// ErrAllPinned is returned when a miss cannot evict because every frame is
// pinned.
var ErrAllPinned = errors.New("buffer: all frames pinned")

// AccessContext describes one page request. QueryID identifies the query
// on whose behalf the request is made; the paper defines two accesses to
// be correlated iff they share a query (§2.2).
type AccessContext struct {
	QueryID uint64
}

// Frame is one buffer slot: a cached page, its descriptor, and the
// bookkeeping the engine and policy need.
//
// Beyond the engine-owned fields, a frame embeds the intrusive words the
// replacement policies link it with: list hooks, a heap slot, a scratch
// tag, a cached criterion and a recency stamp. Exactly one policy owns a
// frame per residence (OnAdmit to OnEvict), so the words are shared
// across policies without conflict; the arena scrubs them on every
// recycle. See DESIGN.md, "Frame lifecycle and memory layout".
type Frame struct {
	Meta page.Meta
	Page *page.Page

	// LastUse is the logical time (engine clock) of the most recent
	// request for this frame. The engine updates it after OnHit returns,
	// so policies observe the previous value during the callback and
	// receive the new value as the callback's now argument.
	LastUse uint64

	// Dirty marks the page for write-back on eviction.
	Dirty bool

	pins int

	// arena is 1+slot index in the owning Arena, 0 for frames constructed
	// outside an arena.
	arena int32

	// Links are the intrusive list hooks of the owning policy's recency /
	// FIFO / ring order (LRU, FIFO, LRU-T/P, LRU-K residency, SLRU, ASB,
	// CLOCK).
	Links intrusive.Hooks[*Frame]

	// Slot is the frame's position in the owning policy's min-heap
	// (Spatial), maintained by the heap's move callback; -1 when absent.
	Slot int32

	// Tag is small per-policy scratch: the ASB region (main/overflow), the
	// CLOCK reference bit, a PriorityLRU class, or an LRU-K history-record
	// index.
	Tag uint32

	// Crit caches the owning policy's spatial criterion value for the
	// page, so victim scans and ASB adaptation votes never recompute MBR
	// geometry.
	Crit float64

	// Stamp is a policy-owned recency shadow of LastUse (Spatial updates
	// it in OnHit, before the engine bumps LastUse).
	Stamp uint64

	// aux is policy-private per-frame state for policies outside this
	// package that need more than the embedded words. The standard
	// policies no longer use it; it remains for extension policies (and
	// the list-backed reference implementations the equivalence tests
	// keep).
	aux any
}

// Pinned reports whether the frame is currently pinned and therefore not
// evictable.
func (f *Frame) Pinned() bool { return f.pins > 0 }

// ArenaIndex returns the frame's slot in its engine's arena, or -1 for
// frames constructed outside an arena (hand-made test frames).
func (f *Frame) ArenaIndex() int32 { return f.arena - 1 }

// Aux returns the policy-private state attached to the frame.
func (f *Frame) Aux() any { return f.aux }

// SetAux attaches policy-private state to the frame.
func (f *Frame) SetAux(v any) { f.aux = v }

// Policy decides which frame to evict when the buffer is full.
//
// The engine guarantees: OnAdmit is called exactly once per residence of a
// page; OnHit only for admitted frames; Victim only when at least one frame
// exists; OnEvict exactly once for the frame most recently returned by
// Victim. Victim must never return a pinned frame (return nil instead,
// which the engine surfaces as ErrAllPinned).
type Policy interface {
	// Name returns the policy's display name (e.g. "LRU", "ASB").
	Name() string
	// OnAdmit is invoked when f enters the buffer at logical time now.
	OnAdmit(f *Frame, now uint64, ctx AccessContext)
	// OnHit is invoked when a request finds f in the buffer. f.LastUse
	// still holds the previous access time; the engine sets it to now
	// after the callback returns.
	OnHit(f *Frame, now uint64, ctx AccessContext)
	// Victim selects the frame to evict, or nil if every frame is pinned.
	// ctx is the access on whose behalf the eviction happens; LRU-K uses
	// it to exclude pages whose last reference is correlated with the
	// current access (paper §2.2, third case).
	Victim(ctx AccessContext) *Frame
	// OnEvict is invoked after the engine removed f from the buffer.
	OnEvict(f *Frame)
	// Reset discards all policy state (the buffer was cleared).
	Reset()
}

// Updater is an optional Policy extension for policies that cache
// page-derived state (e.g. spatial criteria): OnUpdate is invoked instead
// of OnHit when a resident page's content changes via Put.
type Updater interface {
	OnUpdate(f *Frame, now uint64, ctx AccessContext)
}

// Stats are the logical access counters of an Engine. DiskReads equals
// Misses minus Coalesced: every non-coalesced miss costs exactly one
// physical read.
type Stats struct {
	Requests  uint64
	Hits      uint64
	Misses    uint64
	Evictions uint64
	// Puts counts write-path requests (Engine.Put); they are not part
	// of Requests/Hits/Misses, which describe the read path.
	Puts uint64
	// WriteBacks counts dirty pages handed to the store on eviction or
	// Flush. With a background write-back queue attached this counts the
	// logical write-back decisions; the physical store writes can be
	// fewer when several write-backs of the same page coalesce.
	WriteBacks uint64
	// Coalesced counts misses that were served without their own
	// physical read: either by sharing another request's in-flight read
	// (singleflight) or from a page still waiting in the write-back
	// queue. Always a subset of Misses; zero on synchronous pools, so
	// Misses-Coalesced equals the physical read count.
	Coalesced uint64
}

// Add accumulates o into s, field by field. It is the merge operation
// behind Router.Stats: counters are additive, so the merge of the
// per-shard snapshots equals the counters of the whole run.
func (s *Stats) Add(o Stats) {
	s.Requests += o.Requests
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.Puts += o.Puts
	s.WriteBacks += o.WriteBacks
	s.Coalesced += o.Coalesced
}

// DiskReads returns the number of physical reads caused through the
// buffer — the paper's cost metric for read-only workloads. Coalesced
// misses shared another request's read (or a queued write-back), so
// they cost no read of their own.
func (s Stats) DiskReads() uint64 { return s.Misses - s.Coalesced }

// DiskIO returns physical reads plus write-backs — the cost metric for
// update workloads.
func (s Stats) DiskIO() uint64 { return s.DiskReads() + s.WriteBacks }

// HitRatio returns Hits/Requests, or 0 for an unused buffer.
func (s Stats) HitRatio() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Requests)
}
