package buffer

import (
	"container/list"
	"errors"
	"testing"

	"repro/internal/geom"
	"repro/internal/page"
	"repro/internal/storage"
)

// testPolicy is a minimal FIFO policy for exercising manager mechanics.
type testPolicy struct {
	order   *list.List
	admits  int
	hits    int
	evicts  int
	lastCtx AccessContext
}

func newTestPolicy() *testPolicy { return &testPolicy{order: list.New()} }

func (p *testPolicy) Name() string { return "test-fifo" }

func (p *testPolicy) OnAdmit(f *Frame, now uint64, ctx AccessContext) {
	p.admits++
	p.lastCtx = ctx
	f.SetAux(p.order.PushBack(f))
}

func (p *testPolicy) OnHit(f *Frame, now uint64, ctx AccessContext) {
	p.hits++
	p.lastCtx = ctx
}

func (p *testPolicy) Victim(ctx AccessContext) *Frame {
	for e := p.order.Front(); e != nil; e = e.Next() {
		if f := e.Value.(*Frame); !f.Pinned() {
			return f
		}
	}
	return nil
}

func (p *testPolicy) OnEvict(f *Frame) {
	p.evicts++
	p.order.Remove(f.Aux().(*list.Element))
}

func (p *testPolicy) Reset() { p.order.Init() }

// newStore creates a MemStore with n single-entry pages (IDs 1..n).
func newStore(t testing.TB, n int) *storage.MemStore {
	t.Helper()
	s := storage.NewMemStore()
	for i := 0; i < n; i++ {
		id := s.Allocate()
		p := page.New(id, page.TypeData, 0, 1)
		p.Append(page.Entry{MBR: geom.NewRect(0, 0, float64(i+1), 1), ObjID: uint64(i)})
		p.Recompute()
		if err := s.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	s.ResetStats()
	return s
}

func TestNewManagerValidation(t *testing.T) {
	s := newStore(t, 1)
	if _, err := NewManager(s, newTestPolicy(), 0); err == nil {
		t.Error("capacity 0 should fail")
	}
	if _, err := NewManager(nil, newTestPolicy(), 1); err == nil {
		t.Error("nil store should fail")
	}
	if _, err := NewManager(s, nil, 1); err == nil {
		t.Error("nil policy should fail")
	}
}

func TestHitMissAccounting(t *testing.T) {
	s := newStore(t, 5)
	pol := newTestPolicy()
	m, err := NewManager(s, pol, 3)
	if err != nil {
		t.Fatal(err)
	}
	ctx := AccessContext{QueryID: 1}

	// Three misses fill the buffer.
	for id := page.ID(1); id <= 3; id++ {
		if _, err := m.Get(id, ctx); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if st.Requests != 3 || st.Misses != 3 || st.Hits != 0 || st.Evictions != 0 {
		t.Errorf("after fill: %+v", st)
	}
	if m.Len() != 3 {
		t.Errorf("Len = %d, want 3", m.Len())
	}
	// Re-requesting resident pages: all hits, no physical reads.
	before := s.Stats().Reads
	for id := page.ID(1); id <= 3; id++ {
		if _, err := m.Get(id, ctx); err != nil {
			t.Fatal(err)
		}
	}
	st = m.Stats()
	if st.Hits != 3 || st.Misses != 3 {
		t.Errorf("after hits: %+v", st)
	}
	if s.Stats().Reads != before {
		t.Error("hits caused physical reads")
	}
	// A fourth page evicts the FIFO-oldest (page 1).
	if _, err := m.Get(4, ctx); err != nil {
		t.Fatal(err)
	}
	if m.Contains(1) {
		t.Error("page 1 should have been evicted")
	}
	if !m.Contains(2) || !m.Contains(3) || !m.Contains(4) {
		t.Error("pages 2,3,4 should be resident")
	}
	st = m.Stats()
	if st.Evictions != 1 || st.DiskReads() != 4 {
		t.Errorf("after eviction: %+v", st)
	}
	if pol.admits != 4 || pol.hits != 3 || pol.evicts != 1 {
		t.Errorf("policy callbacks: admits=%d hits=%d evicts=%d", pol.admits, pol.hits, pol.evicts)
	}
}

func TestLastUseUpdatedAfterOnHit(t *testing.T) {
	s := newStore(t, 2)
	var sawOld bool
	pol := &hookPolicy{testPolicy: newTestPolicy()}
	pol.onHit = func(f *Frame, now uint64) {
		// During OnHit, LastUse must still be the previous access time.
		sawOld = f.LastUse < now
	}
	m, err := NewManager(s, pol, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx := AccessContext{}
	if _, err := m.Get(1, ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get(1, ctx); err != nil {
		t.Fatal(err)
	}
	if !sawOld {
		t.Error("OnHit observed already-updated LastUse")
	}
}

// hookPolicy wraps testPolicy with an OnHit hook.
type hookPolicy struct {
	*testPolicy
	onHit func(f *Frame, now uint64)
}

func (p *hookPolicy) OnHit(f *Frame, now uint64, ctx AccessContext) {
	if p.onHit != nil {
		p.onHit(f, now)
	}
	p.testPolicy.OnHit(f, now, ctx)
}

func TestPinPreventsEviction(t *testing.T) {
	s := newStore(t, 3)
	m, err := NewManager(s, newTestPolicy(), 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx := AccessContext{}
	if _, err := m.Fix(1, ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get(2, ctx); err != nil {
		t.Fatal(err)
	}
	// Page 1 is pinned; admitting page 3 must evict page 2.
	if _, err := m.Get(3, ctx); err != nil {
		t.Fatal(err)
	}
	if !m.Contains(1) || m.Contains(2) || !m.Contains(3) {
		t.Errorf("resident: %v", m.ResidentIDs())
	}
	if err := m.Unfix(1); err != nil {
		t.Fatal(err)
	}
	// Unfix errors.
	if err := m.Unfix(1); err == nil {
		t.Error("double unfix should fail")
	}
	if err := m.Unfix(99); err == nil {
		t.Error("unfix of non-resident page should fail")
	}
}

func TestAllPinned(t *testing.T) {
	s := newStore(t, 3)
	m, err := NewManager(s, newTestPolicy(), 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx := AccessContext{}
	if _, err := m.Fix(1, ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Fix(2, ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get(3, ctx); !errors.Is(err, ErrAllPinned) {
		t.Errorf("err = %v, want ErrAllPinned", err)
	}
}

func TestDirtyWriteBackOnEviction(t *testing.T) {
	s := newStore(t, 3)
	m, err := NewManager(s, newTestPolicy(), 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := AccessContext{}
	if _, err := m.Get(1, ctx); err != nil {
		t.Fatal(err)
	}
	if err := m.MarkDirty(1); err != nil {
		t.Fatal(err)
	}
	if err := m.MarkDirty(2); err == nil {
		t.Error("marking non-resident page dirty should fail")
	}
	w0 := s.Stats().Writes
	if _, err := m.Get(2, ctx); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Writes - w0; got != 1 {
		t.Errorf("write-backs = %d, want 1", got)
	}
	st := m.Stats()
	if st.WriteBacks != 1 {
		t.Errorf("Stats.WriteBacks = %d, want 1", st.WriteBacks)
	}
	if st.DiskIO() != st.DiskReads()+1 {
		t.Errorf("DiskIO = %d, want DiskReads+1 = %d", st.DiskIO(), st.DiskReads()+1)
	}
}

func TestFlush(t *testing.T) {
	s := newStore(t, 2)
	m, err := NewManager(s, newTestPolicy(), 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx := AccessContext{}
	if _, err := m.Get(1, ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get(2, ctx); err != nil {
		t.Fatal(err)
	}
	if err := m.MarkDirty(1); err != nil {
		t.Fatal(err)
	}
	w0 := s.Stats().Writes
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Writes - w0; got != 1 {
		t.Errorf("flush writes = %d, want 1", got)
	}
	// Flushing again writes nothing (dirty bit cleared).
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Writes - w0; got != 1 {
		t.Errorf("second flush wrote %d extra", got-1)
	}
}

func TestClear(t *testing.T) {
	s := newStore(t, 4)
	pol := newTestPolicy()
	m, err := NewManager(s, pol, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx := AccessContext{}
	for id := page.ID(1); id <= 4; id++ {
		if _, err := m.Get(id, ctx); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Clear(); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 0 {
		t.Errorf("Len after clear = %d", m.Len())
	}
	if st := m.Stats(); st != (Stats{}) {
		t.Errorf("stats after clear = %+v", st)
	}
	if pol.order.Len() != 0 {
		t.Error("policy not reset")
	}
	// The buffer is usable after Clear.
	if _, err := m.Get(1, ctx); err != nil {
		t.Fatal(err)
	}
	if m.Stats().Misses != 1 {
		t.Error("post-clear request should be a cold miss")
	}
}

func TestGetUnknownPage(t *testing.T) {
	s := newStore(t, 1)
	m, err := NewManager(s, newTestPolicy(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get(42, AccessContext{}); !errors.Is(err, storage.ErrPageNotFound) {
		t.Errorf("err = %v, want ErrPageNotFound", err)
	}
}

func TestHitRatio(t *testing.T) {
	var st Stats
	if st.HitRatio() != 0 {
		t.Error("empty stats hit ratio should be 0")
	}
	st = Stats{Requests: 10, Hits: 4, Misses: 6}
	if got := st.HitRatio(); got != 0.4 {
		t.Errorf("HitRatio = %g, want 0.4", got)
	}
	// All hits and all misses are exact, not approximate.
	if got := (Stats{Requests: 7, Hits: 7}).HitRatio(); got != 1 {
		t.Errorf("all-hits ratio = %g, want 1", got)
	}
	if got := (Stats{Requests: 7, Misses: 7}).HitRatio(); got != 0 {
		t.Errorf("all-misses ratio = %g, want 0", got)
	}
}

func TestStatsDiskCounters(t *testing.T) {
	var st Stats
	if st.DiskReads() != 0 || st.DiskIO() != 0 {
		t.Errorf("zero stats: DiskReads=%d DiskIO=%d", st.DiskReads(), st.DiskIO())
	}
	// Read-only workload: IO equals reads equals misses.
	st = Stats{Requests: 10, Hits: 4, Misses: 6}
	if st.DiskReads() != 6 || st.DiskIO() != 6 {
		t.Errorf("read-only: DiskReads=%d DiskIO=%d, want 6/6", st.DiskReads(), st.DiskIO())
	}
	// Update workload: write-backs count toward IO but not reads.
	st = Stats{Requests: 10, Hits: 4, Misses: 6, WriteBacks: 3}
	if st.DiskReads() != 6 {
		t.Errorf("DiskReads = %d, want 6 (write-backs are not reads)", st.DiskReads())
	}
	if st.DiskIO() != 9 {
		t.Errorf("DiskIO = %d, want 9 (misses + write-backs)", st.DiskIO())
	}
	// Pure write-back (e.g. only Flush activity): IO without reads.
	st = Stats{WriteBacks: 2}
	if st.DiskReads() != 0 || st.DiskIO() != 2 {
		t.Errorf("flush-only: DiskReads=%d DiskIO=%d, want 0/2", st.DiskReads(), st.DiskIO())
	}
}

func TestCapacityOneBuffer(t *testing.T) {
	s := newStore(t, 3)
	m, err := NewManager(s, newTestPolicy(), 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := AccessContext{}
	for round := 0; round < 3; round++ {
		for id := page.ID(1); id <= 3; id++ {
			if _, err := m.Get(id, ctx); err != nil {
				t.Fatal(err)
			}
			if m.Len() != 1 {
				t.Fatalf("Len = %d, want 1", m.Len())
			}
		}
	}
	// Cycling through 3 pages with 1 frame: every access misses.
	if st := m.Stats(); st.Hits != 0 || st.Misses != 9 {
		t.Errorf("stats = %+v", st)
	}
}
