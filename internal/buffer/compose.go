package buffer

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/storage"
)

// Layout names the layer stack of a pool composition.
type Layout string

// The four layer stacks a Composition can build. Each adds one layer
// over the previous: bare is a lone Engine, locked adds the mutex
// layer, sharded adds the page-hash router over locked engines, async
// adds singleflight miss I/O and background write-back over the router.
const (
	LayoutBare    Layout = "bare"
	LayoutLocked  Layout = "locked"
	LayoutSharded Layout = "sharded"
	LayoutAsync   Layout = "async"
)

// Composition describes a pool as a layer stack plus its parameters —
// the single construction path behind the -pool flag of cmd/bufserve
// and cmd/spatialbench and the matrix tests. The zero value is not
// valid; start from ParseComposition or set Layout explicitly.
type Composition struct {
	// Layout selects the layer stack.
	Layout Layout
	// Shards is the shard count for the sharded and async layouts; ≤ 0
	// means one shard per available CPU (GOMAXPROCS). Ignored (and
	// rejected by ParseComposition) for bare and locked layouts.
	Shards int
	// WritebackWorkers and WritebackQueue tune the async layout's
	// background write-back (see AsyncConfig); zero selects the
	// defaults. Rejected by ParseComposition for other layouts.
	WritebackWorkers int
	WritebackQueue   int
}

// ParseComposition parses a pool composition spec of the form
//
//	layout[,key=value]...
//
// where layout is one of "bare", "locked", "sharded" or "async" and the
// keys are "shards" (sharded/async only), "wbworkers" and "wbqueue"
// (async only). Examples: "locked", "sharded,shards=4",
// "async,shards=8,wbworkers=2,wbqueue=256". Layout and keys are
// case-insensitive; "shards=0" means one shard per CPU.
func ParseComposition(spec string) (Composition, error) {
	parts := strings.Split(spec, ",")
	var c Composition
	switch l := Layout(strings.ToLower(strings.TrimSpace(parts[0]))); l {
	case LayoutBare, LayoutLocked, LayoutSharded, LayoutAsync:
		c.Layout = l
	case "":
		return Composition{}, fmt.Errorf("buffer: empty pool composition spec")
	default:
		return Composition{}, fmt.Errorf("buffer: unknown pool layout %q (want bare, locked, sharded or async)", parts[0])
	}
	for _, part := range parts[1:] {
		key, val, ok := strings.Cut(part, "=")
		key = strings.ToLower(strings.TrimSpace(key))
		if !ok {
			return Composition{}, fmt.Errorf("buffer: pool composition parameter %q: want key=value", part)
		}
		n, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil || n < 0 {
			return Composition{}, fmt.Errorf("buffer: pool composition parameter %q: want a non-negative integer", part)
		}
		switch key {
		case "shards":
			if c.Layout != LayoutSharded && c.Layout != LayoutAsync {
				return Composition{}, fmt.Errorf("buffer: shards= applies to sharded and async layouts, not %q", c.Layout)
			}
			c.Shards = n
		case "wbworkers":
			if c.Layout != LayoutAsync {
				return Composition{}, fmt.Errorf("buffer: wbworkers= applies to the async layout, not %q", c.Layout)
			}
			c.WritebackWorkers = n
		case "wbqueue":
			if c.Layout != LayoutAsync {
				return Composition{}, fmt.Errorf("buffer: wbqueue= applies to the async layout, not %q", c.Layout)
			}
			c.WritebackQueue = n
		default:
			return Composition{}, fmt.Errorf("buffer: unknown pool composition parameter %q", key)
		}
	}
	return c, nil
}

// String renders the composition in ParseComposition's grammar,
// omitting parameters left at their defaults.
func (c Composition) String() string {
	var b strings.Builder
	b.WriteString(string(c.Layout))
	if (c.Layout == LayoutSharded || c.Layout == LayoutAsync) && c.Shards > 0 {
		fmt.Fprintf(&b, ",shards=%d", c.Shards)
	}
	if c.Layout == LayoutAsync {
		if c.WritebackWorkers > 0 {
			fmt.Fprintf(&b, ",wbworkers=%d", c.WritebackWorkers)
		}
		if c.WritebackQueue > 0 {
			fmt.Fprintf(&b, ",wbqueue=%d", c.WritebackQueue)
		}
	}
	return b.String()
}

// Build constructs the described pool of the given total capacity (in
// frames) over the store, with policy instances from the factory (one
// for bare/locked, one per shard for sharded/async). The concrete type
// behind the returned Pool is *Engine, *LockedEngine, *Router or
// *AsyncPool according to the layout; async pools implement
// interface{ Close() error } and should be closed to stop their writer
// goroutines (Router does too, as a flush, so callers can close any
// composition uniformly).
func (c Composition) Build(store storage.Store, factory PolicyFactory, capacity int) (Pool, error) {
	switch c.Layout {
	case LayoutBare, LayoutLocked:
		if factory == nil {
			return nil, fmt.Errorf("buffer: nil policy factory")
		}
		pol := factory(capacity)
		if pol == nil {
			return nil, fmt.Errorf("buffer: policy factory returned nil")
		}
		e, err := NewEngine(store, pol, capacity)
		if err != nil {
			return nil, err
		}
		if c.Layout == LayoutBare {
			return e, nil
		}
		return Lock(e), nil
	case LayoutSharded, LayoutAsync:
		shards := c.Shards
		if shards <= 0 {
			shards = runtime.GOMAXPROCS(0)
		}
		r, err := NewRouter(store, factory, capacity, shards)
		if err != nil {
			return nil, err
		}
		if c.Layout == LayoutSharded {
			return r, nil
		}
		return Async(r, AsyncConfig{
			WritebackWorkers: c.WritebackWorkers,
			WritebackQueue:   c.WritebackQueue,
		}), nil
	default:
		return nil, fmt.Errorf("buffer: unknown pool layout %q", c.Layout)
	}
}
