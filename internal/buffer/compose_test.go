package buffer

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/page"
)

func TestParseComposition(t *testing.T) {
	cases := []struct {
		spec string
		want Composition
	}{
		{"bare", Composition{Layout: LayoutBare}},
		{"locked", Composition{Layout: LayoutLocked}},
		{"sharded", Composition{Layout: LayoutSharded}},
		{"sharded,shards=4", Composition{Layout: LayoutSharded, Shards: 4}},
		{"async", Composition{Layout: LayoutAsync}},
		{"async,shards=8,wbworkers=2,wbqueue=256", Composition{Layout: LayoutAsync, Shards: 8, WritebackWorkers: 2, WritebackQueue: 256}},
		{" Async , Shards=2 ", Composition{Layout: LayoutAsync, Shards: 2}},
		{"sharded,shards=0", Composition{Layout: LayoutSharded}},
	}
	for _, c := range cases {
		got, err := ParseComposition(c.spec)
		if err != nil {
			t.Errorf("ParseComposition(%q): %v", c.spec, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseComposition(%q) = %+v, want %+v", c.spec, got, c.want)
		}
	}

	bad := []string{
		"",
		"turbo",
		"bare,shards=2",
		"locked,shards=2",
		"sharded,wbworkers=2",
		"sharded,shards",
		"sharded,shards=-1",
		"sharded,shards=two",
		"async,wbunknown=1",
	}
	for _, spec := range bad {
		if got, err := ParseComposition(spec); err == nil {
			t.Errorf("ParseComposition(%q) = %+v, want error", spec, got)
		}
	}
}

func TestCompositionStringRoundTrip(t *testing.T) {
	for _, spec := range []string{
		"bare", "locked", "sharded", "sharded,shards=4",
		"async", "async,shards=8", "async,shards=8,wbworkers=2,wbqueue=256",
	} {
		c, err := ParseComposition(spec)
		if err != nil {
			t.Fatalf("ParseComposition(%q): %v", spec, err)
		}
		if c.String() != spec {
			t.Errorf("ParseComposition(%q).String() = %q", spec, c.String())
		}
		again, err := ParseComposition(c.String())
		if err != nil || again != c {
			t.Errorf("round trip of %q: %+v, %v", spec, again, err)
		}
	}
}

// testFactoryFIFO adapts testPolicy to PolicyFactory for composed pools.
func testFactoryFIFO(int) Policy { return newTestPolicy() }

func TestCompositionBuildTypes(t *testing.T) {
	cases := []struct {
		spec string
		want string
	}{
		{"bare", "*buffer.Engine"},
		{"locked", "*buffer.LockedEngine"},
		{"sharded,shards=2", "*buffer.Router"},
		{"async,shards=2", "*buffer.AsyncPool"},
	}
	for _, c := range cases {
		comp, err := ParseComposition(c.spec)
		if err != nil {
			t.Fatal(err)
		}
		pool, err := comp.Build(newStore(t, 16), testFactoryFIFO, 8)
		if err != nil {
			t.Fatalf("Build(%q): %v", c.spec, err)
		}
		if got := reflect.TypeOf(pool).String(); got != c.want {
			t.Errorf("Build(%q) built %s, want %s", c.spec, got, c.want)
		}
		if cl, ok := pool.(interface{ Close() error }); ok {
			if err := cl.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Defaulted shard count: one per CPU, clamped by capacity.
	comp := Composition{Layout: LayoutSharded}
	pool, err := comp.Build(newStore(t, 16), testFactoryFIFO, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s := pool.(*Router).Shards(); s < 1 || s > 4 {
		t.Errorf("defaulted shard count %d outside [1, capacity/2]", s)
	}
}

// matrixOp is one step of the mixed read/write reference workload the
// equivalence matrix replays.
type matrixOp struct {
	kind  byte // 'g'et, 'f'ix+unfix, 'p'ut, 'd'irty (get+markdirty)
	id    page.ID
	query uint64
}

// matrixWorkload builds a deterministic mixed workload over numPages
// pages: hot-set gets, pins, puts of new versions and dirtying — every
// request-path operation the engine owns.
func matrixWorkload(numPages, n int) []matrixOp {
	ops := make([]matrixOp, 0, n)
	h := uint64(12345)
	next := func(mod int) int {
		h ^= h << 13
		h ^= h >> 7
		h ^= h << 17
		return int(h % uint64(mod))
	}
	for i := 0; i < n; i++ {
		var op matrixOp
		op.query = uint64(i / 7)
		if next(5) < 3 {
			op.id = page.ID(next(8) + 1) // hot subset
		} else {
			op.id = page.ID(next(numPages) + 1)
		}
		switch next(10) {
		case 0:
			op.kind = 'f'
		case 1:
			op.kind = 'p'
		case 2:
			op.kind = 'd'
		default:
			op.kind = 'g'
		}
		ops = append(ops, op)
	}
	return ops
}

// applyOp replays one workload step; Puts synthesize a page version the
// way the update experiments do.
func applyOp(t *testing.T, p Pool, op matrixOp) {
	t.Helper()
	ctx := AccessContext{QueryID: op.query}
	switch op.kind {
	case 'g':
		if _, err := p.Get(op.id, ctx); err != nil {
			t.Fatalf("get %d: %v", op.id, err)
		}
	case 'f':
		if _, err := p.Fix(op.id, ctx); err != nil {
			t.Fatalf("fix %d: %v", op.id, err)
		}
		if err := p.Unfix(op.id); err != nil {
			t.Fatalf("unfix %d: %v", op.id, err)
		}
	case 'p':
		np := page.New(op.id, page.TypeData, 0, 4)
		if err := p.Put(np, ctx); err != nil {
			t.Fatalf("put %d: %v", op.id, err)
		}
	case 'd':
		if _, err := p.Get(op.id, ctx); err != nil {
			t.Fatalf("get %d: %v", op.id, err)
		}
		if err := p.MarkDirty(op.id); err != nil {
			t.Fatalf("markdirty %d: %v", op.id, err)
		}
	}
}

// TestCompositionMatrixEquivalence is the layering acceptance test:
// every composition that shares the bare engine's routing (locked,
// sharded at one shard, async at one shard) must replay a mixed
// single-threaded workload stat-for-stat, event-for-event and
// residency-identical to the bare engine, and the async layer must not
// change sharded routing either (sharded(N) ≡ async(N)). Determinism
// holds because the replay is single-threaded: no coalescing, no
// contention, write-back drained at the barriers.
func TestCompositionMatrixEquivalence(t *testing.T) {
	const numPages, capacity = 60, 12
	ops := matrixWorkload(numPages, 4000)

	type replay struct {
		stats    Stats
		resident []page.ID
		events   []obs.RequestEvent
	}
	run := func(t *testing.T, spec string) replay {
		t.Helper()
		comp, err := ParseComposition(spec)
		if err != nil {
			t.Fatal(err)
		}
		pool, err := comp.Build(newStore(t, numPages), testFactoryFIFO, capacity)
		if err != nil {
			t.Fatal(err)
		}
		rec := &recordingSink{}
		pool.SetSink(rec)
		for _, op := range ops {
			applyOp(t, pool, op)
		}
		st := pool.Stats()
		var ids []page.ID
		switch p := pool.(type) {
		case *Engine:
			ids = p.ResidentIDs()
		case *LockedEngine:
			ids = p.ResidentIDs()
		case *Router:
			ids = p.ResidentIDs()
		case *AsyncPool:
			ids = p.ResidentIDs()
		}
		sortIDs(ids)
		if cl, ok := pool.(interface{ Close() error }); ok {
			if err := cl.Close(); err != nil {
				t.Fatal(err)
			}
		}
		return replay{stats: st, resident: ids, events: rec.requests}
	}

	// The async layer's write-back queue has one documented divergence
	// on dirty workloads: a queue-served miss is flagged Coalesced and
	// re-admits the page still dirty, so WriteBacks counts one logical
	// decision per queue round-trip where the synchronous path wrote
	// once. normalize strips exactly those two fields; everything else
	// (requests, hits, misses, evictions, puts, residency, event order,
	// event Meta) must match bit-for-bit.
	normalize := func(r replay) replay {
		r.stats.WriteBacks = 0
		r.stats.Coalesced = 0
		evs := make([]obs.RequestEvent, len(r.events))
		for i, ev := range r.events {
			ev.Coalesced = false
			evs[i] = ev
		}
		r.events = evs
		return r
	}
	compare := func(t *testing.T, name string, got, want replay) {
		t.Helper()
		if got.stats != want.stats {
			t.Errorf("stats diverged:\n%s %+v\nwant %+v", name, got.stats, want.stats)
		}
		if !reflect.DeepEqual(got.resident, want.resident) {
			t.Errorf("resident set diverged:\n%s %v\nwant %v", name, got.resident, want.resident)
		}
		if len(got.events) != len(want.events) {
			t.Fatalf("event count diverged: %s %d, want %d", name, len(got.events), len(want.events))
		}
		for i := range got.events {
			if got.events[i] != want.events[i] {
				t.Fatalf("event %d diverged:\n%s %+v\nwant %+v", i, name, got.events[i], want.events[i])
			}
		}
	}

	ref := run(t, "bare")
	if ref.stats.Requests == 0 || ref.stats.Puts == 0 || ref.stats.Evictions == 0 {
		t.Fatalf("reference workload too tame: %+v", ref.stats)
	}
	for _, spec := range []string{"locked", "sharded,shards=1"} {
		t.Run(spec, func(t *testing.T) {
			compare(t, spec, run(t, spec), ref)
		})
	}
	t.Run("async,shards=1", func(t *testing.T) {
		compare(t, "async,shards=1", normalize(run(t, "async,shards=1")), normalize(ref))
	})

	t.Run("sharded(3)≡async(3)", func(t *testing.T) {
		sh := normalize(run(t, "sharded,shards=3"))
		as := normalize(run(t, "async,shards=3"))
		compare(t, "async,shards=3", as, sh)
	})

	// On a read-only workload the async layer has nothing to queue, so
	// the equivalence is unconditional — the full seed contract.
	readOnly := ops[:0:0]
	for _, op := range ops {
		if op.kind == 'p' || op.kind == 'd' {
			op.kind = 'g'
		}
		readOnly = append(readOnly, op)
	}
	ops = readOnly
	t.Run("read-only async,shards=1", func(t *testing.T) {
		compare(t, "async,shards=1", run(t, "async,shards=1"), run(t, "bare"))
	})
}

func sortIDs(ids []page.ID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// TestCompositionConcurrentSmoke hammers every concurrency-safe
// composition from several goroutines; under -race this checks the
// layer stack's serialization (lock layer, router fan-out, async flight
// table) with no request lost.
func TestCompositionConcurrentSmoke(t *testing.T) {
	const numPages, capacity, workers, perWorker = 60, 12, 4, 800
	for _, spec := range []string{"locked", "sharded,shards=4", "async,shards=4", "async,shards=4,wbworkers=1,wbqueue=4"} {
		t.Run(spec, func(t *testing.T) {
			comp, err := ParseComposition(spec)
			if err != nil {
				t.Fatal(err)
			}
			pool, err := comp.Build(newStore(t, numPages), testFactoryFIFO, capacity)
			if err != nil {
				t.Fatal(err)
			}
			done := make(chan error, workers)
			for w := 0; w < workers; w++ {
				go func(w int) {
					for _, op := range matrixWorkload(numPages, perWorker) {
						ctx := AccessContext{QueryID: uint64(w)<<32 | op.query}
						var err error
						switch op.kind {
						case 'p':
							err = pool.Put(page.New(op.id, page.TypeData, 0, 4), ctx)
						default:
							_, err = pool.Get(op.id, ctx)
						}
						if err != nil {
							done <- err
							return
						}
					}
					done <- nil
				}(w)
			}
			for w := 0; w < workers; w++ {
				if err := <-done; err != nil {
					t.Fatal(err)
				}
			}
			st := pool.Stats()
			if st.Requests+st.Puts != workers*perWorker {
				t.Errorf("requests %d + puts %d != %d issued", st.Requests, st.Puts, workers*perWorker)
			}
			if st.Hits+st.Misses != st.Requests {
				t.Errorf("stats inconsistent: %+v", st)
			}
			if pool.Len() > capacity {
				t.Errorf("capacity exceeded: %d > %d", pool.Len(), capacity)
			}
			if cl, ok := pool.(interface{ Close() error }); ok {
				if err := cl.Close(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestComposedHitPathZeroAllocs extends the engine's zero-alloc gate to
// every composition: with the default no-op sink, a buffer hit through
// the full layer stack (lock, router, async flight check) must not
// allocate.
func TestComposedHitPathZeroAllocs(t *testing.T) {
	for _, spec := range []string{"bare", "locked", "sharded,shards=2", "async,shards=2"} {
		t.Run(spec, func(t *testing.T) {
			comp, err := ParseComposition(spec)
			if err != nil {
				t.Fatal(err)
			}
			pool, err := comp.Build(newStore(t, 8), testFactoryFIFO, 8)
			if err != nil {
				t.Fatal(err)
			}
			ctx := AccessContext{QueryID: 1}
			for id := page.ID(1); id <= 4; id++ { // warm: admit the pages
				if _, err := pool.Get(id, ctx); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(1000, func() {
				for id := page.ID(1); id <= 4; id++ {
					if _, err := pool.Get(id, ctx); err != nil {
						t.Fatal(err)
					}
				}
			})
			if allocs != 0 {
				t.Errorf("hit path allocates %.1f objects per 4 requests with the no-op sink, want 0", allocs)
			}
			if cl, ok := pool.(interface{ Close() error }); ok {
				if err := cl.Close(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestDeprecatedConstructorsDelegate pins the compatibility contract of
// the historical names: they must build the same layer stack the
// composition specs do.
func TestDeprecatedConstructorsDelegate(t *testing.T) {
	m, err := NewManager(newStore(t, 8), newTestPolicy(), 4)
	if err != nil {
		t.Fatal(err)
	}
	var _ *Engine = m // Manager IS the engine

	sm := NewSyncManager(m)
	var _ *LockedEngine = sm // SyncManager IS the locking layer
	if sm.Engine() != m {
		t.Error("NewSyncManager did not wrap the given engine")
	}

	sp, err := NewShardedPool(newStore(t, 8), testFactoryFIFO, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Async() {
		t.Error("NewShardedPool built an async pool")
	}
	if sp.Router == nil || sp.Shards() != 2 {
		t.Errorf("NewShardedPool routing: %d shards", sp.Shards())
	}

	ap, err := NewAsyncShardedPool(newStore(t, 8), testFactoryFIFO, 8, 2, AsyncConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer ap.Close()
	if !ap.Async() {
		t.Error("NewAsyncShardedPool built a synchronous pool")
	}
	if ap.Writeback().QueueCap == 0 {
		t.Error("NewAsyncShardedPool has no write-back queue")
	}
	if got := strings.TrimSpace(reflect.TypeOf(ap).String()); got != "*buffer.ShardedPool" {
		t.Errorf("NewAsyncShardedPool built %s", got)
	}
}
