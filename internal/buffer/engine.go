package buffer

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/tracing"
	"repro/internal/page"
	"repro/internal/storage"
)

// Engine is the core of every pool composition: the unlocked,
// single-threaded owner of the entire request path — frame arena
// lifecycle, hit/miss accounting, read-before-evict ordering, pin
// counts, dirty tracking and policy callbacks. It is also the only code
// in the package that emits request-path observability events (and the
// shadow page metadata they carry) and starts request-scoped tracing
// spans; the layers above add concurrency, never semantics.
//
// An Engine on its own is not safe for concurrent use — that is the
// locking layer's job (Lock / LockedEngine). The sharding layer
// (NewRouter) routes page IDs across many locked engines, and the
// async-I/O layer (Async) switches each engine's miss path to
// singleflight reads outside the latch plus background write-back.
//
// Manager is the historical name of the bare engine; the experiment
// harness runs one engine per goroutine, exactly as the paper's
// single-threaded evaluation does.
type Engine struct {
	store    storage.Store
	policy   Policy
	capacity int

	// io is the store the request path actually reads and writes: the raw
	// store normally, or a storage.Traced wrapper around it while a tracer
	// is attached (so physical I/O shows up as child spans).
	io storage.Store

	frames map[page.ID]*Frame
	arena  *Arena
	clock  uint64
	stats  Stats

	// sink receives observability events; never nil (NopSink by
	// default), so the hot path emits unconditionally and stays
	// allocation-free when unobserved.
	sink obs.Sink
	// timer is non-nil only when sink implements obs.LatencyRecorder;
	// then each request is bracketed with monotonic-clock readings and
	// the elapsed nanoseconds published. Latency-blind sinks (including
	// NopSink) keep the hot path free of clock reads.
	timer obs.LatencyRecorder

	// tracer samples request-scoped span traces; nil when tracing is
	// disabled (the request path then pays a single pointer test). shard
	// is the pool-shard index stamped on every span this engine records.
	tracer *tracing.Tracer
	shard  int
	// slot hands the current request's Active trace to the policy and the
	// traced store; it is read and written only under the engine's
	// serialization (its latch in concurrent compositions).
	slot tracing.Slot
	// pendingLockWait is the latch wait of the request about to run,
	// deposited by the enclosing locking layer after it acquired the
	// latch and consumed (and cleared) by the next traced request.
	pendingLockWait int64

	// latch is the lock serializing this engine, owned by the locking
	// layer (a no-op for bare engines). The engine itself never acquires
	// it around whole requests — callers do; the async miss path drops
	// and re-acquires it around physical reads.
	latch sync.Locker

	// flight, when non-nil, switches the miss path to the asynchronous
	// protocol: one entry per page whose physical read is currently in
	// progress outside the latch, shared by every concurrent miss for
	// that page. Nil on synchronous engines.
	flight map[page.ID]*inflight

	// wb, when non-nil, receives dirty evicted pages for background
	// write-back instead of the synchronous under-latch store write.
	wb writebackEnqueuer
}

// nopLocker is the latch of a bare (single-threaded) engine.
type nopLocker struct{}

func (nopLocker) Lock()   {}
func (nopLocker) Unlock() {}

// NewEngine creates a bare core engine of the given capacity (in
// frames, ≥ 1) over store, managed by policy. Wrap it with Lock for
// concurrent use, or build a full composition with Composition.Build.
func NewEngine(store storage.Store, policy Policy, capacity int) (*Engine, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("buffer: capacity %d, need ≥ 1", capacity)
	}
	if store == nil || policy == nil {
		return nil, errors.New("buffer: nil store or policy")
	}
	return &Engine{
		store:    store,
		policy:   policy,
		capacity: capacity,
		io:       store,
		frames:   make(map[page.ID]*Frame, capacity),
		arena:    NewArena(capacity),
		sink:     obs.NopSink{},
		latch:    nopLocker{},
	}, nil
}

// Manager is the historical name of the bare core engine — the
// single-threaded pool the paper's experiments use. It is kept as an
// alias so existing constructors, type switches and tests keep working;
// new code should speak of Engine and the layer constructors.
type Manager = Engine

// NewManager creates a bare single-threaded buffer engine; it is the
// historical spelling of NewEngine.
func NewManager(store storage.Store, policy Policy, capacity int) (*Manager, error) {
	return NewEngine(store, policy, capacity)
}

// enableAsync switches the engine's miss path to the asynchronous
// protocol: physical reads run outside the latch with singleflight
// coalescing, and dirty victims drain through wb. Called by the async
// layer at composition time, before the engine serves requests.
func (e *Engine) enableAsync(wb writebackEnqueuer) {
	e.flight = make(map[page.ID]*inflight)
	e.wb = wb
}

// setLatch installs the serializing lock of the enclosing locking
// layer. Only the async miss path ever acquires it (to drop it around
// physical reads); requests as a whole are locked by the layer itself.
func (e *Engine) setLatch(l sync.Locker) { e.latch = l }

// SetSink attaches an observability sink to the engine and, if the
// policy implements obs.SinkSetter, to the policy as well — one call
// instruments the whole stack. A nil sink detaches (back to NopSink).
// The engine emits Request events; instrumented policies emit
// Eviction, OverflowPromotion and Adapt events.
func (e *Engine) SetSink(s obs.Sink) {
	if s == nil {
		s = obs.NopSink{}
	}
	e.sink = s
	e.timer, _ = s.(obs.LatencyRecorder)
	if ss, ok := e.policy.(obs.SinkSetter); ok {
		ss.SetSink(s)
	}
}

// SetTracer attaches a request-scoped span tracer to the engine, to its
// store (via a storage.Traced wrapper, so physical I/O appears as child
// spans) and, if the policy implements tracing.SlotSetter, to the policy
// (so victim selections and ASB adaptations appear as child spans) —
// like SetSink, one call instruments the whole stack. shard is the pool
// shard this engine serves (0 for an unsharded engine); it is stamped
// on every span and selects the tracer's trace ring. A nil tracer
// detaches everything.
func (e *Engine) SetTracer(t *tracing.Tracer, shard int) {
	e.tracer = t
	e.shard = shard
	e.pendingLockWait = 0
	if t != nil {
		e.io = storage.Traced(e.store, &e.slot)
	} else {
		e.io = e.store
		e.slot.SetActive(nil)
	}
	if ss, ok := e.policy.(tracing.SlotSetter); ok {
		if t != nil {
			ss.SetTraceSlot(&e.slot)
		} else {
			ss.SetTraceSlot(nil)
		}
	}
}

// Tracer returns the attached tracer, or nil when tracing is disabled.
func (e *Engine) Tracer() *tracing.Tracer { return e.tracer }

// depositLockWait records the latch wait of the request about to run;
// the next traced request attaches it to its root span. Called by the
// locking layer after acquiring the latch.
func (e *Engine) depositLockWait(ns int64) { e.pendingLockWait = ns }

// Capacity returns the buffer capacity in frames.
func (e *Engine) Capacity() int { return e.capacity }

// Len returns the number of resident pages.
func (e *Engine) Len() int { return len(e.frames) }

// Contains reports whether the page is resident (without counting a
// request or touching policy state).
func (e *Engine) Contains(id page.ID) bool {
	_, ok := e.frames[id]
	return ok
}

// Policy returns the replacement policy driving this engine.
func (e *Engine) Policy() Policy { return e.policy }

// Stats returns the logical access counters.
func (e *Engine) Stats() Stats { return e.stats }

// Get requests the page without pinning it. The returned page must be
// treated as read-only and may be evicted by any later request.
func (e *Engine) Get(id page.ID, ctx AccessContext) (*page.Page, error) {
	return e.request(tracing.KindGet, id, ctx, false)
}

// Fix requests the page and pins its frame; the caller must Unfix it.
// Pinned frames are never evicted.
func (e *Engine) Fix(id page.ID, ctx AccessContext) (*page.Page, error) {
	return e.request(tracing.KindFix, id, ctx, true)
}

// beginRequest starts the root tracing span of one request-path
// operation, consuming the deposited latch wait. It is the single site
// in the package that starts request spans; it returns nil when tracing
// is off or the request was not sampled.
func (e *Engine) beginRequest(kind tracing.SpanKind, id page.ID, query uint64) *tracing.Active {
	if e.tracer == nil {
		return nil
	}
	wait := e.pendingLockWait
	e.pendingLockWait = 0
	return e.tracer.StartRequest(kind, id, query, e.shard, wait)
}

// request implements the read-path protocol for Get (pin=false) and Fix
// (pin=true), timing the request when the sink asked for latencies and
// tracing it when a tracer sampled it.
func (e *Engine) request(kind tracing.SpanKind, id page.ID, ctx AccessContext, pin bool) (*page.Page, error) {
	if a := e.beginRequest(kind, id, ctx.QueryID); a != nil {
		e.slot.SetActive(a)
		pg, hit, err := e.timedServe(id, ctx, pin)
		e.slot.SetActive(nil)
		a.Finish(hit, err != nil)
		return pg, err
	}
	pg, _, err := e.timedServe(id, ctx, pin)
	return pg, err
}

// timedServe brackets serve with latency timing when the sink asked for
// it.
func (e *Engine) timedServe(id page.ID, ctx AccessContext, pin bool) (*page.Page, bool, error) {
	if e.timer == nil {
		return e.serve(id, ctx, pin)
	}
	start := time.Now()
	pg, hit, err := e.serve(id, ctx, pin)
	e.timer.RecordLatency(time.Since(start).Nanoseconds())
	return pg, hit, err
}

// serve is the untimed hit/miss protocol, reporting whether the request
// hit. Synchronous engines (no flight table) run the seed sequence —
// count, read, evict, admit — entirely under the caller's latch;
// engines switched to the async protocol by the async layer coalesce
// concurrent misses and read outside the latch. Both modes are entered
// and left with the latch held.
func (e *Engine) serve(id page.ID, ctx AccessContext, pin bool) (*page.Page, bool, error) {
	if e.flight == nil {
		return e.serveSync(id, ctx, pin)
	}
	return e.serveAsync(id, ctx, pin)
}

// serveSync is the synchronous request path: any physical read happens
// in place, under the caller's serialization. Read before evicting: a
// failed read must not discard a perfectly good cached page (or count
// an eviction) for a request that errored.
func (e *Engine) serveSync(id page.ID, ctx AccessContext, pin bool) (*page.Page, bool, error) {
	if f, ok := e.frames[id]; ok {
		e.hit(f, ctx)
		if pin {
			f.pins++
		}
		return f.Page, true, nil
	}
	now := e.miss(id, ctx, false)
	p, err := e.io.Read(id)
	if err != nil {
		// The miss was counted, so its event must still flow — with a
		// zero Meta, since no page materialized.
		e.emitMiss(id, ctx, false, page.Meta{})
		return nil, false, err
	}
	// Emit after the successful read, so the event carries the page's
	// Meta (shadow caches replay spatial criteria from it), and before
	// admission, so Request still precedes any Eviction it causes.
	e.emitMiss(id, ctx, false, p.Meta)
	f, err := e.admit(p, now, ctx)
	if err != nil {
		return nil, false, err
	}
	if pin {
		f.pins++
	}
	return f.Page, false, nil
}

// serveAsync is the non-blocking miss protocol. It is entered and left
// with the latch held. Under the latch it checks, in order: the
// resident frames (hit), the flight table (coalesce onto an in-progress
// read), and the write-back queue (read-your-writes: a queued dirty
// page is re-admitted without I/O). Only when all three miss does it
// become the leader: it registers an inflight entry, releases the
// latch, reads the store, and re-acquires the latch to publish the
// result to any waiters and admit the page.
//
// counted flips when the request has been accounted (exactly one
// Request event per call); the loop only repeats for Fix waiters, whose
// pin requires a resident frame and who therefore retry after the
// leader's publication until they can pin (or become leaders
// themselves).
func (e *Engine) serveAsync(id page.ID, ctx AccessContext, pin bool) (*page.Page, bool, error) {
	// The engine's Active slot carries the trace to the policy and the
	// traced store while the latch is held; it must be parked (cleared
	// before every unlock) because other requests use the engine — and
	// the slot — while we wait or read, and restored after every
	// re-acquisition.
	a := e.slot.Active()
	counted := false
	for {
		if a != nil {
			e.slot.SetActive(a)
		}

		if fr := e.frames[id]; fr != nil {
			hit := false
			if !counted {
				e.hit(fr, ctx)
				hit = true
			}
			if pin {
				fr.pins++
			}
			return fr.Page, hit, nil
		}

		if fl, ok := e.flight[id]; ok {
			// Another request is reading this page right now: count a
			// coalesced miss and wait for its result outside the latch. The
			// event is emitted here, under the latch, with a zero Meta — the
			// waiter never observes the page while holding the latch, and
			// deferring emission past the unlock would interleave it with
			// other requests' events (documented accuracy caveat of the
			// shadow-cache contract).
			if !counted {
				e.miss(id, ctx, true)
				e.emitMiss(id, ctx, true, page.Meta{})
				counted = true
			}
			if a != nil {
				e.slot.SetActive(nil)
			}
			e.latch.Unlock()

			widx := int32(-1)
			if a != nil {
				widx = a.Start(tracing.KindIOWait)
			}
			<-fl.done
			if a != nil {
				sp := a.At(widx)
				sp.Page = id
				sp.Hit = true // coalesced: shared another request's read
				a.End(widx)
			}
			if fl.err != nil {
				e.latch.Lock()
				return nil, false, fl.err
			}
			if !pin {
				// Get needs only the bytes; the leader admitted (or
				// resolved) the page. Re-acquire the latch only to restore
				// the caller's locking invariant.
				e.latch.Lock()
				return fl.page, false, nil
			}
			// Fix must pin a resident frame; retry under the latch (the
			// frame may already be evicted again, in which case the loop
			// coalesces or leads a fresh read — without recounting).
			e.latch.Lock()
			continue
		}

		if pg, ok := e.takeQueued(id); ok {
			// The page sits in the write-back queue: the store still holds
			// stale bytes, so the queued version is re-admitted directly —
			// no I/O — and stays dirty (its canceled write must eventually
			// happen via a later eviction or Flush).
			var now uint64
			if !counted {
				now = e.miss(id, ctx, true)
				e.emitMiss(id, ctx, true, pg.Meta)
				counted = true
			} else {
				now = e.tick()
			}
			fr, err := e.admit(pg, now, ctx)
			if err != nil {
				// Admission failed (all frames pinned): the dirty page must
				// not be lost — put its write back in motion.
				if !e.wb.enqueue(pg) {
					if werr := e.store.Write(pg); werr != nil {
						err = errors.Join(err, werr)
					}
				}
				return nil, false, err
			}
			fr.Dirty = true
			if pin {
				fr.pins++
			}
			return fr.Page, false, nil
		}

		// Leader: register the read and perform it outside the latch. The
		// miss is counted now, but its event is emitted at publish time
		// (under the re-acquired latch, before admission) so it can carry
		// the Meta of the page the request actually resolved to.
		var now uint64
		emitPending := !counted
		if !counted {
			now = e.miss(id, ctx, false)
			counted = true
		} else {
			now = e.tick()
		}
		fl := &inflight{done: make(chan struct{})}
		e.flight[id] = fl
		if a != nil {
			e.slot.SetActive(nil)
		}
		e.latch.Unlock()

		ridx := int32(-1)
		if a != nil {
			ridx = a.Start(tracing.KindStoreRead)
		}
		rpg, rerr := e.store.Read(id)
		if a != nil {
			sp := a.At(ridx)
			sp.Page = id
			sp.Err = rerr != nil
			if rpg != nil {
				sp.Bytes = int32(storage.PageBytes(rpg))
			}
			a.End(ridx)
		}

		e.latch.Lock()
		if a != nil {
			e.slot.SetActive(a)
		}
		published := rpg
		var fr *Frame
		var aerr error
		if rerr != nil {
			// The counted miss still emits exactly one event; no page
			// materialized, so its Meta stays zero.
			if emitPending {
				e.emitMiss(id, ctx, false, page.Meta{})
			}
		} else {
			if fr = e.frames[id]; fr != nil {
				// A Put raced the page in while we read: its version is
				// newer — serve it and discard the read.
				published = fr.Page
				if emitPending {
					e.emitMiss(id, ctx, false, fr.Meta)
				}
			} else if pg, ok := e.takeQueued(id); ok {
				// Re-admitted dirty (by a Put) and evicted again while we
				// read: the queued version is newer than our read.
				published = pg
				if emitPending {
					e.emitMiss(id, ctx, false, pg.Meta)
				}
				fr, aerr = e.admit(pg, now, ctx)
				if fr != nil {
					fr.Dirty = true
				} else if !e.wb.enqueue(pg) {
					if werr := e.store.Write(pg); werr != nil {
						aerr = errors.Join(aerr, werr)
					}
				}
			} else {
				if emitPending {
					e.emitMiss(id, ctx, false, rpg.Meta)
				}
				fr, aerr = e.admit(rpg, now, ctx)
			}
		}
		// Publish: fields first, then unregister, then close — all under
		// the latch, so the close happens-before any waiter's field read
		// and a failed read leaves no residue for later misses. Waiters
		// get the resolved bytes even when only admission failed
		// (ErrAllPinned is the leader's error, not theirs).
		fl.page, fl.err = published, rerr
		delete(e.flight, id)
		close(fl.done)
		if rerr != nil {
			return nil, false, rerr
		}
		if aerr != nil {
			return nil, false, aerr
		}
		if pin {
			fr.pins++
		}
		return fr.Page, false, nil
	}
}

// takeQueued cancels and returns the write-back queue's pending version
// of id, if a queue is attached and holds one.
func (e *Engine) takeQueued(id page.ID) (*page.Page, bool) {
	if e.wb == nil {
		return nil, false
	}
	return e.wb.take(id)
}

// inflightLen returns the occupancy of the flight table (0 on
// synchronous engines). Must run under the engine's serialization.
func (e *Engine) inflightLen() int { return len(e.flight) }

// hit accounts one read request served by the resident frame f: clock
// tick, hit counters, sink event, policy OnHit, LastUse update. Must
// run under the engine's serialization.
func (e *Engine) hit(f *Frame, ctx AccessContext) {
	e.clock++
	now := e.clock
	e.stats.Requests++
	e.stats.Hits++
	e.emitRequest(obs.RequestEvent{Page: f.Meta.ID, QueryID: ctx.QueryID, Hit: true, Meta: f.Meta})
	e.policy.OnHit(f, now, ctx)
	f.LastUse = now
}

// miss accounts one read request that missed and returns the request's
// logical time, at which the page should later be admitted. coalesced
// marks misses that will share another request's physical read instead
// of performing their own. Counting is split from event emission
// (emitMiss) so the miss paths can attach the read page's Meta to the
// event once the read resolved. Must run under the engine's
// serialization.
func (e *Engine) miss(id page.ID, ctx AccessContext, coalesced bool) uint64 {
	_ = id
	e.clock++
	e.stats.Requests++
	e.stats.Misses++
	if coalesced {
		e.stats.Coalesced++
	}
	return e.clock
}

// emitMiss publishes the Request event of a miss counted by miss,
// exactly once per counted miss. meta is the descriptor of the page the
// miss resolved to, or the zero Meta when none materialized (failed
// reads, coalesced waiters). Must run under the engine's serialization.
func (e *Engine) emitMiss(id page.ID, ctx AccessContext, coalesced bool, meta page.Meta) {
	e.emitRequest(obs.RequestEvent{Page: id, QueryID: ctx.QueryID, Hit: false, Coalesced: coalesced, Meta: meta})
}

// emitRequest publishes one request event — the single site in the
// package that emits request-path observability events (and, through
// the event's Meta, the metadata the shadow-cache profiler replays).
func (e *Engine) emitRequest(ev obs.RequestEvent) {
	e.sink.Request(ev)
}

// tick advances the logical clock for a request that was already
// accounted (a coalesced waiter retrying as a fresh reader). Must run
// under the engine's serialization.
func (e *Engine) tick() uint64 {
	e.clock++
	return e.clock
}

// admit installs the freshly read page at logical time now, evicting
// first when the buffer is full. Must run under the engine's
// serialization; now must come from miss/tick.
func (e *Engine) admit(p *page.Page, now uint64, ctx AccessContext) (*Frame, error) {
	if len(e.frames) >= e.capacity {
		if err := e.evictOne(ctx); err != nil {
			return nil, err
		}
	}
	f := e.allocFrame()
	f.Meta = p.Meta
	f.Page = p
	f.LastUse = now
	e.frames[p.ID] = f
	e.policy.OnAdmit(f, now, ctx)
	return f, nil
}

// allocFrame takes a scrubbed frame from the arena. The capacity check in
// the admit paths guarantees a free frame (residents ≤ capacity = arena
// size); the heap fallback only exists so an invariant bug degrades to an
// allocation instead of a crash.
func (e *Engine) allocFrame() *Frame {
	if f := e.arena.Alloc(); f != nil {
		return f
	}
	return &Frame{}
}

// writebackEnqueuer is the hook a background write-back queue installs
// on an engine (via setWriteback): enqueue hands over a dirty evicted
// page and reports whether the queue accepted it. It is called under
// the latch, so it must never block; a false return (queue full or
// closed) makes the engine fall back to a synchronous write — the
// queue-full backpressure path. take cancels (and returns) the pending
// entry for a page, so a newer version entering the buffer supersedes a
// queued older one before its stale write can land.
type writebackEnqueuer interface {
	enqueue(p *page.Page) bool
	take(id page.ID) (*page.Page, bool)
}

// setWriteback attaches (or, with nil, detaches) a background
// write-back queue: dirty victims are enqueued instead of written
// synchronously under the latch. enableAsync additionally switches the
// miss path; setWriteback alone keeps misses synchronous.
func (e *Engine) setWriteback(wb writebackEnqueuer) { e.wb = wb }

// evictOne asks the policy for a victim, writes it back if dirty (or
// hands it to the background write-back queue when one is attached),
// and removes it.
func (e *Engine) evictOne(ctx AccessContext) error {
	v := e.policy.Victim(ctx)
	if v == nil {
		return ErrAllPinned
	}
	if v.Pinned() {
		return fmt.Errorf("buffer: policy %s returned pinned victim %d", e.policy.Name(), v.Meta.ID)
	}
	if _, ok := e.frames[v.Meta.ID]; !ok {
		return fmt.Errorf("buffer: policy %s returned non-resident victim %d", e.policy.Name(), v.Meta.ID)
	}
	if v.Dirty {
		if e.wb != nil && e.wb.enqueue(v.Page) {
			// Queued: a background writer will perform the physical
			// write; until then misses on this page are served from the
			// queue (read-your-writes), never from the stale store.
		} else if err := e.io.Write(v.Page); err != nil {
			return fmt.Errorf("buffer: write-back of page %d: %w", v.Meta.ID, err)
		}
		e.stats.WriteBacks++
	}
	delete(e.frames, v.Meta.ID)
	e.stats.Evictions++
	e.policy.OnEvict(v)
	// The policy has unlinked the frame and nothing above holds a *Frame
	// (callers only ever see *page.Page), so the slot recycles to the
	// free-list for the admission that triggered this eviction.
	e.arena.Free(v)
	return nil
}

// Unfix releases one pin on the page. Like Get/Put it routes through
// the tracing plumbing: sampled unfixes record a root span (Hit set
// when the page was resident), so pin-leak debugging can line pins and
// unpins up in one trace timeline.
func (e *Engine) Unfix(id page.ID) error {
	if a := e.beginRequest(tracing.KindUnfix, id, 0); a != nil {
		resident := e.Contains(id)
		err := e.unfix(id)
		a.Finish(resident, err != nil)
		return err
	}
	return e.unfix(id)
}

// unfix is the untraced pin release.
func (e *Engine) unfix(id page.ID) error {
	f, ok := e.frames[id]
	if !ok {
		return fmt.Errorf("buffer: unfix of non-resident page %d", id)
	}
	if f.pins == 0 {
		return fmt.Errorf("buffer: unfix of unpinned page %d", id)
	}
	f.pins--
	return nil
}

// MarkDirty flags a resident page for write-back on eviction or Flush.
// Sampled calls record a root span like Get/Put, so the dirtying of a
// page is visible in the same trace timeline as its later write-back.
func (e *Engine) MarkDirty(id page.ID) error {
	if a := e.beginRequest(tracing.KindMarkDirty, id, 0); a != nil {
		resident := e.Contains(id)
		err := e.markDirty(id)
		a.Finish(resident, err != nil)
		return err
	}
	return e.markDirty(id)
}

// markDirty is the untraced dirty flagging.
func (e *Engine) markDirty(id page.ID) error {
	f, ok := e.frames[id]
	if !ok {
		return fmt.Errorf("buffer: mark dirty of non-resident page %d", id)
	}
	f.Dirty = true
	return nil
}

// Put installs a new version of a page in the buffer and marks it dirty;
// it is the write path for update workloads. A non-resident page is
// admitted without a physical read (the caller provides the content); a
// resident page is replaced in place. Dirty pages are written back on
// eviction or Flush. Like reads, Puts are timed when the sink implements
// obs.LatencyRecorder. Put never reads the store, so it runs entirely
// under the latch in every composition.
func (e *Engine) Put(p *page.Page, ctx AccessContext) error {
	if e.tracer != nil && p != nil {
		if a := e.beginRequest(tracing.KindPut, p.ID, ctx.QueryID); a != nil {
			e.slot.SetActive(a)
			resident := e.Contains(p.ID)
			err := e.timedPut(p, ctx)
			e.slot.SetActive(nil)
			// A Put "hits" when it replaced a resident page in place.
			a.Finish(resident, err != nil)
			return err
		}
	}
	return e.timedPut(p, ctx)
}

// timedPut brackets put with latency timing when the sink asked for it.
func (e *Engine) timedPut(p *page.Page, ctx AccessContext) error {
	if e.timer == nil {
		return e.put(p, ctx)
	}
	start := time.Now()
	err := e.put(p, ctx)
	e.timer.RecordLatency(time.Since(start).Nanoseconds())
	return err
}

// put is the untimed write path.
func (e *Engine) put(p *page.Page, ctx AccessContext) error {
	if p == nil || p.ID == page.InvalidID {
		return errors.New("buffer: put of invalid page")
	}
	e.clock++
	now := e.clock
	e.stats.Puts++

	if f, ok := e.frames[p.ID]; ok {
		f.Page = p
		f.Meta = p.Meta
		f.Dirty = true
		if u, ok := e.policy.(Updater); ok {
			u.OnUpdate(f, now, ctx)
		} else {
			e.policy.OnHit(f, now, ctx)
		}
		f.LastUse = now
		return nil
	}

	if e.wb != nil {
		// A queued write-back of an older version is superseded by this
		// content; cancel it so the stale write can never land after ours.
		e.wb.take(p.ID)
	}
	if len(e.frames) >= e.capacity {
		if err := e.evictOne(ctx); err != nil {
			return err
		}
	}
	f := e.allocFrame()
	f.Meta = p.Meta
	f.Page = p
	f.LastUse = now
	f.Dirty = true
	e.frames[p.ID] = f
	e.policy.OnAdmit(f, now, ctx)
	return nil
}

// Flush writes back all dirty resident pages without evicting them.
// Flushes are rare and expensive, so a tracer records every one (no
// sampling), with one store.Write child span per dirty page.
func (e *Engine) Flush() error {
	if a := e.tracer.StartOp(tracing.KindFlush, e.shard); a != nil {
		e.slot.SetActive(a)
		err := e.flush()
		e.slot.SetActive(nil)
		a.Finish(false, err != nil)
		return err
	}
	return e.flush()
}

// flush is the untraced write-back loop.
func (e *Engine) flush() error {
	for _, f := range e.frames {
		if !f.Dirty {
			continue
		}
		if err := e.io.Write(f.Page); err != nil {
			return fmt.Errorf("buffer: flush page %d: %w", f.Meta.ID, err)
		}
		e.stats.WriteBacks++
		f.Dirty = false
	}
	return nil
}

// Clear evicts everything (writing back dirty pages), resets the policy
// and zeroes the statistics. The paper clears the buffer before each query
// set "in order to increase the comparability of the results" (§3).
func (e *Engine) Clear() error {
	if err := e.Flush(); err != nil {
		return err
	}
	clear(e.frames)
	// Reset the policy while the frame links are still intact (its Clear
	// walks them), then scrub and refill the arena.
	e.policy.Reset()
	e.arena.Reset()
	e.clock = 0
	e.stats = Stats{}
	return nil
}

// ResidentIDs returns the IDs of all resident pages, for tests and
// introspection. Order is unspecified.
func (e *Engine) ResidentIDs() []page.ID {
	ids := make([]page.ID, 0, len(e.frames))
	for id := range e.frames {
		ids = append(ids, id)
	}
	return ids
}
