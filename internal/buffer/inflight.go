package buffer

import "repro/internal/page"

// inflight is one in-progress physical read, shared by every concurrent
// miss for the same page on the same shard (per-shard singleflight).
//
// The first miss (the leader) registers the entry in its shard's flight
// table under the shard lock, performs the store read outside the lock,
// then re-acquires the lock to publish: it fills page/err, removes the
// entry from the table and closes done — in that order, all under the
// lock, so the channel close happens-before any waiter's read of the
// fields. Later misses (waiters) find the entry, are counted as
// coalesced misses, and block on done outside the lock.
//
// The error path leaves no residue: a failed read publishes err, and
// because the entry is already unregistered, the next miss for the page
// starts a fresh read instead of inheriting the failure.
type inflight struct {
	done chan struct{}
	page *page.Page
	err  error
}
