package buffer

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/tracing"
	"repro/internal/page"
)

// LockedEngine is the locking layer: a mutex around one Engine, so that
// multiple goroutines can share one buffer (e.g. concurrent read-only
// queries against the same tree and buffer). The experiment harness
// instead runs one bare engine per goroutine — replays are independent —
// but applications embedding the library typically want a shared buffer.
//
// The layer serializes whole requests; it trades concurrency for the
// strict accounting the policies rely on (policy callbacks observe a
// consistent buffer state). It owns the lock-instrumentation
// invariants: contention profiling and per-request lock-wait
// measurement happen here, never in the engine. The mutex is also
// installed as the engine's latch, so an engine switched to the
// asynchronous miss protocol drops exactly this lock around its
// physical reads.
type LockedEngine struct {
	mu sync.Mutex
	e  *Engine

	// shard is the index this engine reports under to the contention
	// profiler and the tracer: 0 for a standalone locked engine, the
	// routing index when owned by a Router.
	shard int

	// contention, when set, profiles acquisitions of mu under shard;
	// traceWait additionally feeds the measured wait into the root span
	// of traced requests. Both are read before taking mu, hence atomic.
	contention atomic.Pointer[tracing.Contention]
	traceWait  atomic.Bool
}

// Lock wraps an engine with the locking layer. The engine must not be
// used directly afterwards — the wrapper owns its serialization.
func Lock(e *Engine) *LockedEngine {
	le := &LockedEngine{e: e}
	e.setLatch(&le.mu)
	return le
}

// lockForShard is Lock plus the shard index the engine reports under;
// used by the sharding layer.
func lockForShard(e *Engine, shard int) *LockedEngine {
	le := Lock(e)
	le.shard = shard
	le.e.shard = shard
	return le
}

// Engine returns the wrapped core engine. Callers must hold no
// references that outlive the wrapper's serialization: only accessors
// documented as concurrency-safe may be used while the pool serves.
func (l *LockedEngine) Engine() *Engine { return l.e }

// lockRequest acquires the mutex for a request, measuring the wait when
// a contention profiler or tracer wants it and depositing it with the
// engine (whose next traced root span attaches it). The common case
// (neither attached) is two atomic loads plus the plain Lock.
func (l *LockedEngine) lockRequest() {
	c := l.contention.Load()
	traced := l.traceWait.Load()
	if c == nil && !traced {
		l.mu.Lock()
		return
	}
	if c != nil {
		c.BeginWait(l.shard)
	}
	start := time.Now()
	l.mu.Lock()
	wait := time.Since(start).Nanoseconds()
	if c != nil {
		c.EndWait(l.shard, wait)
	}
	if traced {
		l.e.depositLockWait(wait)
	}
}

// Get implements Pool (and the Reader contract of rtree.Reader).
func (l *LockedEngine) Get(id page.ID, ctx AccessContext) (*page.Page, error) {
	l.lockRequest()
	defer l.mu.Unlock()
	return l.e.Get(id, ctx)
}

// Put installs a new page version (see Engine.Put).
func (l *LockedEngine) Put(p *page.Page, ctx AccessContext) error {
	l.lockRequest()
	defer l.mu.Unlock()
	return l.e.Put(p, ctx)
}

// Fix pins a page (see Engine.Fix).
func (l *LockedEngine) Fix(id page.ID, ctx AccessContext) (*page.Page, error) {
	l.lockRequest()
	defer l.mu.Unlock()
	return l.e.Fix(id, ctx)
}

// Unfix releases a pin (see Engine.Unfix). Like the other request
// methods it routes through lockRequest, so contention profiling and
// traced root spans cover pin releases too.
func (l *LockedEngine) Unfix(id page.ID) error {
	l.lockRequest()
	defer l.mu.Unlock()
	return l.e.Unfix(id)
}

// MarkDirty flags a resident page for write-back (see Engine.MarkDirty),
// routed through lockRequest like every other request method.
func (l *LockedEngine) MarkDirty(id page.ID) error {
	l.lockRequest()
	defer l.mu.Unlock()
	return l.e.MarkDirty(id)
}

// Contains reports whether the page is resident (see Engine.Contains).
func (l *LockedEngine) Contains(id page.ID) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.e.Contains(id)
}

// Flush writes back all dirty pages (see Engine.Flush).
func (l *LockedEngine) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.e.Flush()
}

// Clear resets the buffer (see Engine.Clear).
func (l *LockedEngine) Clear() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.e.Clear()
}

// Stats returns a snapshot of the counters.
func (l *LockedEngine) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.e.Stats()
}

// Len returns the number of resident pages.
func (l *LockedEngine) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.e.Len()
}

// Capacity returns the buffer capacity in frames.
func (l *LockedEngine) Capacity() int { return l.e.Capacity() }

// Policy returns the replacement-policy instance. The policy is driven
// under the mutex, so while the pool is serving, only accessors
// documented as concurrency-safe (e.g. core.ASB's atomic gauge mirrors)
// may be called on it.
func (l *LockedEngine) Policy() Policy { return l.e.Policy() }

// ResidentIDs returns the IDs of all resident pages (see
// Engine.ResidentIDs).
func (l *LockedEngine) ResidentIDs() []page.ID {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.e.ResidentIDs()
}

// inflightLen returns the occupancy of the engine's flight table.
func (l *LockedEngine) inflightLen() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.e.inflightLen()
}

// SetSink attaches an observability sink (see Engine.SetSink). Events
// are emitted under the layer's mutex, so any sink works here — but a
// concurrency-safe aggregator like obs.Counters keeps critical sections
// short.
func (l *LockedEngine) SetSink(sink obs.Sink) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.e.SetSink(sink)
}

// SetTracer attaches a request-scoped span tracer to the wrapped engine
// (see Engine.SetTracer); the engine records under this layer's shard
// index (0 unless owned by a Router). While a tracer is attached, each
// request's mutex wait is measured and lands in its root span's
// LockWait. A nil tracer detaches.
func (l *LockedEngine) SetTracer(t *tracing.Tracer) {
	l.mu.Lock()
	l.e.SetTracer(t, l.shard)
	l.mu.Unlock()
	l.traceWait.Store(t != nil)
}

// EnableContention attaches a lock-contention profiler; a standalone
// locked engine reports as shard 0 (the profiler should be built with
// ≥ 1 shard). Pass nil to stop profiling.
func (l *LockedEngine) EnableContention(c *tracing.Contention) {
	l.contention.Store(c)
}
