package buffer

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/page"
	"repro/internal/storage"
)

// The miss-I/O benchmark models the workload the async miss path is
// for: a store with real read latency and a reference mix that misses
// at least half the time, so the cost under measurement is physical
// I/O, not bookkeeping. Uniform access over missNumPages with
// missCapacity frames yields a ~25% hit ratio — comfortably inside the
// miss-heavy regime.
const (
	missNumPages = benchNumPages
	missCapacity = benchCapacity
	missShards   = 4
	// missReadDelay stands in for device latency; it dominates the
	// in-memory bookkeeping by orders of magnitude, as on real storage.
	missReadDelay = 100 * time.Microsecond
)

// delayStore adds a fixed latency to every Read, simulating a page
// fetch from a storage device. Safe for concurrent use when the base
// store is.
type delayStore struct {
	storage.Store
	delay time.Duration
}

func (s *delayStore) Read(id page.ID) (*page.Page, error) {
	time.Sleep(s.delay)
	return s.Store.Read(id)
}

// driveMissPool issues ops uniform-random Gets from workers goroutines
// — no hot set, so the pool misses on most requests.
func driveMissPool(tb testing.TB, pool Pool, workers int, ops int64) {
	var next atomic.Int64
	var wg sync.WaitGroup
	var failed atomic.Bool
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for {
				i := next.Add(1)
				if i > ops {
					return
				}
				id := page.ID(rng.Intn(missNumPages) + 1)
				if _, err := pool.Get(id, AccessContext{QueryID: uint64(i) / 4}); err != nil {
					failed.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if failed.Load() {
		tb.Fatal("pool request failed during miss benchmark")
	}
}

// missPools builds the two contenders over fresh slow stores: a
// synchronous ShardedPool (physical reads under the shard lock) and an
// async one (reads outside the lock, singleflight coalescing).
func missPools(tb testing.TB) (syncPool, asyncPool *ShardedPool) {
	mk := func() storage.Store {
		return &delayStore{Store: newStore(tb, missNumPages), delay: missReadDelay}
	}
	sp, err := NewShardedPool(mk(), testFactory, missCapacity, missShards)
	if err != nil {
		tb.Fatal(err)
	}
	ap, err := NewAsyncShardedPool(mk(), testFactory, missCapacity, missShards, AsyncConfig{})
	if err != nil {
		tb.Fatal(err)
	}
	return sp, ap
}

// BenchmarkPoolMissIO compares the under-lock and the non-blocking miss
// path on a miss-heavy workload over a slow store. With reads held
// under the shard lock, concurrent misses hashing to one shard
// serialize on its latency; with the async path they overlap (and
// same-page misses collapse into one read), so throughput should scale
// with workers rather than with shards.
func BenchmarkPoolMissIO(b *testing.B) {
	for _, workers := range []int{4, 16} {
		syncPool, asyncPool := missPools(b)
		defer asyncPool.Close()
		for _, tc := range []struct {
			name string
			pool Pool
		}{
			{"LockedMiss", syncPool},
			{"AsyncMiss", asyncPool},
		} {
			b.Run(fmt.Sprintf("%s/workers=%d", tc.name, workers), func(b *testing.B) {
				b.ReportAllocs()
				driveMissPool(b, tc.pool, workers, int64(b.N))
			})
		}
	}
}

// missResult is one row of BENCH_missio.json.
type missResult struct {
	Pool      string  `json:"pool"`
	Workers   int     `json:"workers"`
	Ops       int64   `json:"ops"`
	NsPerOp   float64 `json:"ns_per_op"`
	OpsPerSec float64 `json:"ops_per_sec"`
	HitRatio  float64 `json:"hit_ratio"`
	Coalesced uint64  `json:"coalesced_reads"`
}

// TestWriteBenchMissIOJSON self-times the locked-vs-async miss-path
// matrix on the slow store and writes it as JSON to the path in
// BENCH_MISSIO_JSON — the machine-readable artifact CI archives.
// Without the variable the test is a no-op, so regular runs stay fast.
func TestWriteBenchMissIOJSON(t *testing.T) {
	path := os.Getenv("BENCH_MISSIO_JSON")
	if path == "" {
		t.Skip("BENCH_MISSIO_JSON not set")
	}
	const ops = 20_000
	var results []missResult
	for _, workers := range []int{4, 16} {
		syncPool, asyncPool := missPools(t)
		for _, tc := range []struct {
			name string
			pool *ShardedPool
		}{
			{"LockedMiss", syncPool},
			{"AsyncMiss", asyncPool},
		} {
			// One untimed pass warms the resident sets; the workload stays
			// miss-heavy regardless (uniform access, 4× the capacity).
			driveMissPool(t, tc.pool, workers, ops/4)
			start := time.Now()
			driveMissPool(t, tc.pool, workers, ops)
			elapsed := time.Since(start)
			st := tc.pool.Stats()
			results = append(results, missResult{
				Pool:      tc.name,
				Workers:   workers,
				Ops:       ops,
				NsPerOp:   float64(elapsed.Nanoseconds()) / float64(ops),
				OpsPerSec: float64(ops) / elapsed.Seconds(),
				HitRatio:  st.HitRatio(),
				Coalesced: st.Coalesced,
			})
		}
		if err := asyncPool.Close(); err != nil {
			t.Fatal(err)
		}
	}
	out := struct {
		Benchmark  string       `json:"benchmark"`
		GOOS       string       `json:"goos"`
		GOARCH     string       `json:"goarch"`
		GOMAXPROCS int          `json:"gomaxprocs"`
		ReadDelay  string       `json:"read_delay"`
		Shards     int          `json:"shards"`
		Results    []missResult `json:"results"`
	}{
		Benchmark:  "PoolMissIO",
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		ReadDelay:  missReadDelay.String(),
		Shards:     missShards,
		Results:    results,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %d results to %s", len(results), path)
}
