package buffer

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/page"
)

// recordingSink tallies events for assertions.
type recordingSink struct {
	obs.NopSink
	requests  []obs.RequestEvent
	evictions []obs.EvictionEvent
}

func (r *recordingSink) Request(e obs.RequestEvent)   { r.requests = append(r.requests, e) }
func (r *recordingSink) Eviction(e obs.EvictionEvent) { r.evictions = append(r.evictions, e) }

// sinkAwarePolicy is a testPolicy that also accepts a sink and emits an
// Eviction event per eviction, like the instrumented core policies.
type sinkAwarePolicy struct {
	testPolicy
	obs.Target
}

func (p *sinkAwarePolicy) OnEvict(f *Frame) {
	p.testPolicy.OnEvict(f)
	p.Sink().Eviction(obs.EvictionEvent{Page: f.Meta.ID, Reason: "test", LRURank: -1})
}

func TestManagerEmitsRequestEvents(t *testing.T) {
	s := newStore(t, 4)
	m, err := NewManager(s, newTestPolicy(), 2)
	if err != nil {
		t.Fatal(err)
	}
	rec := &recordingSink{}
	m.SetSink(rec)

	get := func(id page.ID, q uint64) {
		t.Helper()
		if _, err := m.Get(id, AccessContext{QueryID: q}); err != nil {
			t.Fatal(err)
		}
	}
	get(1, 7) // miss
	get(1, 8) // hit
	get(2, 8) // miss
	get(3, 9) // miss + eviction

	// Every event — hit or miss — carries the page's Meta, so shadow
	// caches can replay spatial criteria from the stream alone.
	metaOf := func(id page.ID) page.Meta {
		t.Helper()
		p, err := s.Read(id)
		if err != nil {
			t.Fatal(err)
		}
		return p.Meta
	}
	want := []obs.RequestEvent{
		{Page: 1, QueryID: 7, Hit: false, Meta: metaOf(1)},
		{Page: 1, QueryID: 8, Hit: true, Meta: metaOf(1)},
		{Page: 2, QueryID: 8, Hit: false, Meta: metaOf(2)},
		{Page: 3, QueryID: 9, Hit: false, Meta: metaOf(3)},
	}
	if len(rec.requests) != len(want) {
		t.Fatalf("recorded %d request events, want %d", len(rec.requests), len(want))
	}
	for i, e := range rec.requests {
		if e != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, e, want[i])
		}
	}

	// Event stream and Stats must agree.
	st := m.Stats()
	hits := 0
	for _, e := range rec.requests {
		if e.Hit {
			hits++
		}
	}
	if uint64(len(rec.requests)) != st.Requests || uint64(hits) != st.Hits {
		t.Errorf("events (%d req, %d hits) disagree with stats %+v", len(rec.requests), hits, st)
	}
}

func TestSetSinkForwardsToPolicy(t *testing.T) {
	s := newStore(t, 4)
	pol := &sinkAwarePolicy{testPolicy: *newTestPolicy()}
	m, err := NewManager(s, pol, 1)
	if err != nil {
		t.Fatal(err)
	}
	rec := &recordingSink{}
	m.SetSink(rec)

	for id := page.ID(1); id <= 3; id++ {
		if _, err := m.Get(id, AccessContext{}); err != nil {
			t.Fatal(err)
		}
	}
	if len(rec.evictions) != 2 {
		t.Fatalf("policy emitted %d evictions through the forwarded sink, want 2", len(rec.evictions))
	}
	if rec.evictions[0].Page != 1 || rec.evictions[1].Page != 2 {
		t.Errorf("eviction pages = %+v", rec.evictions)
	}

	// Detaching falls back to the no-op sink on both layers.
	m.SetSink(nil)
	if _, err := m.Get(4, AccessContext{}); err != nil {
		t.Fatal(err)
	}
	if len(rec.requests) != 3 || len(rec.evictions) != 2 {
		t.Error("detached sink still received events")
	}
}

func TestSyncManagerSetSink(t *testing.T) {
	s := newStore(t, 2)
	m, err := NewManager(s, newTestPolicy(), 2)
	if err != nil {
		t.Fatal(err)
	}
	sm := NewSyncManager(m)
	var counters obs.Counters
	sm.SetSink(&counters)
	if _, err := sm.Get(1, AccessContext{}); err != nil {
		t.Fatal(err)
	}
	if _, err := sm.Get(1, AccessContext{}); err != nil {
		t.Fatal(err)
	}
	snap := counters.Snapshot()
	if snap.Requests != 2 || snap.Hits != 1 || snap.Misses != 1 {
		t.Errorf("counters = %+v", snap)
	}
}

// TestManagerTimesRequestsForLatencySinks asserts the timing points:
// when (and only when) the attached sink implements obs.LatencyRecorder,
// every read and write request publishes a latency sample.
func TestManagerTimesRequestsForLatencySinks(t *testing.T) {
	s := newStore(t, 4)
	m, err := NewManager(s, newTestPolicy(), 2)
	if err != nil {
		t.Fatal(err)
	}
	var h obs.Histogram
	m.SetSink(&h)

	for _, id := range []page.ID{1, 1, 2} {
		if _, err := m.Get(id, AccessContext{}); err != nil {
			t.Fatal(err)
		}
	}
	p, err := s.Read(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Put(p, AccessContext{}); err != nil {
		t.Fatal(err)
	}
	if got := h.Count(); got != 4 {
		t.Errorf("latency samples = %d, want 4 (3 gets + 1 put)", got)
	}

	// Detaching stops the clock reads.
	m.SetSink(nil)
	if _, err := m.Get(1, AccessContext{}); err != nil {
		t.Fatal(err)
	}
	if got := h.Count(); got != 4 {
		t.Errorf("latency samples after detach = %d, want 4", got)
	}
}

// TestRequestHitPathZeroAllocs is the acceptance gate of the
// observability layer: with the default no-op sink, a buffer hit must
// not allocate at all — attaching the event stream may cost nothing
// when it is not used.
func TestRequestHitPathZeroAllocs(t *testing.T) {
	s := newStore(t, 1)
	m, err := NewManager(s, newTestPolicy(), 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := AccessContext{QueryID: 1}
	if _, err := m.Get(1, ctx); err != nil { // warm: admit the page
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := m.Get(1, ctx); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("hit path allocates %.1f objects per request with the no-op sink, want 0", allocs)
	}
}

// BenchmarkManagerGetHit measures the hit path with and without a
// counting sink attached; run with -benchmem to see the 0 allocs/op.
func BenchmarkManagerGetHit(b *testing.B) {
	for _, cfg := range []struct {
		name string
		sink obs.Sink
	}{
		{"nop-sink", nil},
		{"counters-sink", &obs.Counters{}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			s := newStore(b, 1)
			m, err := NewManager(s, newTestPolicy(), 1)
			if err != nil {
				b.Fatal(err)
			}
			if cfg.sink != nil {
				m.SetSink(cfg.sink)
			}
			ctx := AccessContext{QueryID: 1}
			if _, err := m.Get(1, ctx); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Get(1, ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
