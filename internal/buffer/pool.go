package buffer

import (
	"repro/internal/obs"
	"repro/internal/page"
)

// Pool is the buffer abstraction every consumer programs against: the
// read path (Get/Fix/Unfix), the write path (Put/MarkDirty/Flush), the
// lifecycle (Clear), and introspection (Stats/Len/SetSink). One engine
// and three stackable layers cover the concurrency spectrum:
//
//   - Engine — the bare single-threaded core the paper's experiments
//     use; fastest when one goroutine owns the buffer.
//   - LockedEngine (Lock) — one mutex around an Engine; strict global
//     accounting shared by many goroutines, throughput limited by the
//     single lock.
//   - Router (NewRouter) — page.ID-hashed shards, each an independent
//     locked engine with its own policy instance; scales with cores at
//     the cost of partitioned (per-shard) policy state.
//   - AsyncPool (Async) — a router whose engines read outside the shard
//     lock (singleflight-coalesced) and write back dirty victims in the
//     background; for miss-heavy workloads on slow stores.
//
// Composition.Build constructs any of the four from a spec string.
// rtree queries, the trace replayer and the serving commands all accept
// a Pool, so swapping the concurrency model is a constructor change, not
// a call-site change.
type Pool interface {
	// Get requests the page without pinning it (read path).
	Get(id page.ID, ctx AccessContext) (*page.Page, error)
	// Put installs a new page version and marks it dirty (write path).
	Put(p *page.Page, ctx AccessContext) error
	// Fix requests the page and pins its frame; the caller must Unfix.
	Fix(id page.ID, ctx AccessContext) (*page.Page, error)
	// Unfix releases one pin on the page.
	Unfix(id page.ID) error
	// MarkDirty flags a resident page for write-back.
	MarkDirty(id page.ID) error
	// Flush writes back all dirty resident pages without evicting them.
	Flush() error
	// Clear evicts everything, resets policy state and zeroes the stats.
	Clear() error
	// Stats returns a snapshot of the logical access counters. For
	// sharded implementations this is the merge of the per-shard
	// counters (Stats.Add).
	Stats() Stats
	// Len returns the number of resident pages.
	Len() int
	// SetSink attaches an observability sink to the pool and its
	// policies (nil detaches). Sinks attached to concurrent pools must
	// be safe for concurrent use.
	SetSink(s obs.Sink)
}

// PolicyFactory constructs a fresh replacement policy sized for a buffer
// of the given capacity (in frames). Policies with capacity-relative
// parameters (SLRU's candidate set, ASB's overflow buffer) derive them
// from the argument, so a sharded pool that calls the factory once per
// shard with the shard's capacity gets correctly scaled per-shard
// instances. core.Factory.New is of this type.
type PolicyFactory func(capacity int) Policy

// Compile-time interface checks: the engine, every layer stack, and the
// historical combined type implement Pool.
var (
	_ Pool = (*Engine)(nil)
	_ Pool = (*LockedEngine)(nil)
	_ Pool = (*Router)(nil)
	_ Pool = (*AsyncPool)(nil)
	_ Pool = (*ShardedPool)(nil)
)
