package buffer

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/page"
)

// benchNumPages and benchCapacity shape the benchmark workload: a hot
// set that mostly fits and a cold tail that forces steady eviction
// traffic — the serving profile bufserve replays.
const (
	benchNumPages = 512
	benchCapacity = 128
	benchHotPages = 64
)

// benchPageID mixes a hot subset (3 of 4 accesses) with a uniform tail.
func benchPageID(rng *rand.Rand) page.ID {
	if rng.Intn(4) < 3 {
		return page.ID(rng.Intn(benchHotPages) + 1)
	}
	return page.ID(rng.Intn(benchNumPages) + 1)
}

// drivePool issues ops requests against the pool from the given number
// of goroutines, sharing the work through an atomic cursor.
func drivePool(tb testing.TB, pool Pool, workers int, ops int64) {
	var next atomic.Int64
	var wg sync.WaitGroup
	var failed atomic.Bool
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for {
				i := next.Add(1)
				if i > ops {
					return
				}
				if _, err := pool.Get(benchPageID(rng), AccessContext{QueryID: uint64(i) / 4}); err != nil {
					failed.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if failed.Load() {
		tb.Fatal("pool request failed during benchmark")
	}
}

// benchPools builds the two contenders over fresh stores: a SyncManager
// (one global mutex) and a ShardedPool with the given shard count.
func benchPools(tb testing.TB, shards int) (sync_ Pool, sharded Pool) {
	m, err := NewManager(newStore(tb, benchNumPages), newTestPolicy(), benchCapacity)
	if err != nil {
		tb.Fatal(err)
	}
	sp, err := NewShardedPool(newStore(tb, benchNumPages), testFactory, benchCapacity, shards)
	if err != nil {
		tb.Fatal(err)
	}
	return NewSyncManager(m), sp
}

// BenchmarkPoolParallel compares SyncManager (global mutex) against
// ShardedPool (page-hashed per-shard mutexes) under 1, 4 and 8 request
// goroutines. The gap is latch contention only — same store, same
// policy type, same reference mix — so on multi-core hardware the
// sharded pool pulls ahead as workers grow, while at 1 worker the two
// should be within noise of each other.
func BenchmarkPoolParallel(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		syncPool, shardedPool := benchPools(b, 8)
		for _, tc := range []struct {
			name string
			pool Pool
		}{
			{"SyncManager", syncPool},
			{"ShardedPool", shardedPool},
		} {
			b.Run(fmt.Sprintf("%s/workers=%d", tc.name, workers), func(b *testing.B) {
				b.ReportAllocs()
				drivePool(b, tc.pool, workers, int64(b.N))
			})
		}
	}
}

// benchResult is one row of BENCH_pool.json.
type benchResult struct {
	Pool      string  `json:"pool"`
	Workers   int     `json:"workers"`
	Ops       int64   `json:"ops"`
	NsPerOp   float64 `json:"ns_per_op"`
	OpsPerSec float64 `json:"ops_per_sec"`
}

// TestWriteBenchPoolJSON self-times the SyncManager-vs-ShardedPool
// matrix and writes it as JSON to the path in BENCH_POOL_JSON — the
// machine-readable artifact CI archives. Without the variable the test
// is a no-op, so regular runs stay fast.
func TestWriteBenchPoolJSON(t *testing.T) {
	path := os.Getenv("BENCH_POOL_JSON")
	if path == "" {
		t.Skip("BENCH_POOL_JSON not set")
	}
	const ops = 300_000
	var results []benchResult
	for _, workers := range []int{1, 4, 8} {
		syncPool, shardedPool := benchPools(t, 8)
		for _, tc := range []struct {
			name string
			pool Pool
		}{
			{"SyncManager", syncPool},
			{"ShardedPool", shardedPool},
		} {
			// One untimed pass warms the resident sets so the timed pass
			// measures steady-state serving, not cold misses.
			drivePool(t, tc.pool, workers, ops/4)
			start := time.Now()
			drivePool(t, tc.pool, workers, ops)
			elapsed := time.Since(start)
			results = append(results, benchResult{
				Pool:      tc.name,
				Workers:   workers,
				Ops:       ops,
				NsPerOp:   float64(elapsed.Nanoseconds()) / float64(ops),
				OpsPerSec: float64(ops) / elapsed.Seconds(),
			})
		}
	}
	out := struct {
		Benchmark  string        `json:"benchmark"`
		GOOS       string        `json:"goos"`
		GOARCH     string        `json:"goarch"`
		GOMAXPROCS int           `json:"gomaxprocs"`
		Results    []benchResult `json:"results"`
	}{
		Benchmark:  "PoolParallel",
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Results:    results,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %d results to %s", len(results), path)
}
