package buffer

import (
	"container/list"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/page"
	"repro/internal/storage"
)

// refModel is an executable specification of an LRU buffer: a plain list
// of resident IDs, most recent first.
type refModel struct {
	capacity int
	order    []page.ID
}

// access simulates one request, returning whether it hit.
func (m *refModel) access(id page.ID) bool {
	for i, r := range m.order {
		if r == id {
			copy(m.order[1:i+1], m.order[:i])
			m.order[0] = id
			return true
		}
	}
	m.order = append([]page.ID{id}, m.order...)
	if len(m.order) > m.capacity {
		m.order = m.order[:m.capacity]
	}
	return false
}

// lruPolicy is a minimal LRU implementation local to this test (the real
// policies live in package core, which buffer cannot import).
type lruPolicy struct{ order *list.List }

func newLRUPolicy() *lruPolicy { return &lruPolicy{order: list.New()} }

func (p *lruPolicy) Name() string { return "lru" }
func (p *lruPolicy) OnAdmit(f *Frame, now uint64, ctx AccessContext) {
	f.SetAux(p.order.PushFront(f))
}
func (p *lruPolicy) OnHit(f *Frame, now uint64, ctx AccessContext) {
	p.order.MoveToFront(f.Aux().(*list.Element))
}
func (p *lruPolicy) Victim(ctx AccessContext) *Frame {
	for e := p.order.Back(); e != nil; e = e.Prev() {
		if f := e.Value.(*Frame); !f.Pinned() {
			return f
		}
	}
	return nil
}
func (p *lruPolicy) OnEvict(f *Frame) {
	p.order.Remove(f.Aux().(*list.Element))
}
func (p *lruPolicy) Reset() { p.order.Init() }

// workload is a quick-generatable access sequence over a small ID space.
type workload struct {
	Capacity uint8
	IDs      []uint8
}

// Generate implements quick.Generator.
func (workload) Generate(r *rand.Rand, size int) reflect.Value {
	w := workload{
		Capacity: uint8(r.Intn(12) + 1),
		IDs:      make([]uint8, r.Intn(400)),
	}
	for i := range w.IDs {
		w.IDs[i] = uint8(r.Intn(24))
	}
	return reflect.ValueOf(w)
}

// TestQuickManagerMatchesLRUModel: for arbitrary access sequences, the
// manager with an LRU policy produces exactly the hit/miss sequence and
// final residency of the executable LRU specification.
func TestQuickManagerMatchesLRUModel(t *testing.T) {
	f := func(w workload) bool {
		store := newQuickStore(24)
		m, err := NewManager(store, newLRUPolicy(), int(w.Capacity))
		if err != nil {
			return false
		}
		model := &refModel{capacity: int(w.Capacity)}
		for _, raw := range w.IDs {
			id := page.ID(raw%24) + 1
			wantHit := model.access(id)
			before := m.Stats().Hits
			if _, err := m.Get(id, AccessContext{}); err != nil {
				return false
			}
			gotHit := m.Stats().Hits > before
			if gotHit != wantHit {
				return false
			}
		}
		// Final resident sets match.
		if m.Len() != len(model.order) {
			return false
		}
		for _, id := range model.order {
			if !m.Contains(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// newQuickStore builds a store with n trivial pages.
func newQuickStore(n int) *quickStoreT {
	return &quickStoreT{n: n}
}

// quickStoreT is a minimal synthetic store: page i exists for 1 ≤ i ≤ n.
type quickStoreT struct {
	n     int
	reads uint64
}

func (s *quickStoreT) Allocate() page.ID { s.n++; return page.ID(s.n) }
func (s *quickStoreT) Write(p *page.Page) error {
	return nil
}
func (s *quickStoreT) Read(id page.ID) (*page.Page, error) {
	s.reads++
	p := page.New(id, page.TypeData, 0, 0)
	p.Recompute()
	return p, nil
}
func (s *quickStoreT) NumPages() int        { return s.n }
func (s *quickStoreT) Stats() storage.Stats { return storage.Stats{Reads: s.reads} }
func (s *quickStoreT) ResetStats()          { s.reads = 0 }
func (s *quickStoreT) Close() error         { return nil }
