package buffer

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/obs/tracing"
	"repro/internal/page"
	"repro/internal/storage"
)

// Router is the sharding layer: it partitions a buffer across N
// independent locked engines, each with its own replacement-policy
// instance behind its own mutex. Requests hash page.ID to a shard, so
// goroutines touching different shards never contend — the standard
// escape from the single global lock of a LockedEngine on multi-core
// serving workloads.
//
// Semantics relative to one big engine:
//
//   - Capacity is split across the shards (as evenly as page counts
//     allow), and each policy instance is constructed by the
//     PolicyFactory with its shard's capacity, so capacity-relative
//     parameters (SLRU candidate sets, ASB overflow sizing) scale down
//     per shard. ASB's self-tuning c adapts independently per shard:
//     each shard sees an unbiased hash-sample of the reference stream,
//     so the per-shard signals of §4.2 estimate the same workload
//     property the global signal would.
//   - Replacement decisions are local to a shard. A single-shard router
//     (Shards() == 1) is behaviourally identical to a locked engine —
//     the equivalence the tests pin down; with more shards the resident
//     set partitions, which can change miss counts slightly (the classic
//     partitioned-LRU approximation).
//   - Stats() merges the per-shard counters with Stats.Add; the sums are
//     exact because each counter is owned by exactly one shard.
//
// A Router is safe for concurrent use by any number of goroutines.
// Sinks attached via SetSink receive the merged event stream of all
// shards (each event tagged with its shard index via obs.TagShard) and
// must therefore be safe for concurrent use. The layer owns exactly the
// routing invariants: hashing, capacity splitting, per-shard fan-out of
// sinks/tracers/profilers, and stats merging — the request path itself
// stays in the engines.
type Router struct {
	shards   []*LockedEngine
	capacity int

	// store is the shared page store all shards read and write; kept for
	// the async layer, which hands it to the write-back queue.
	store storage.Store
}

// NewRouter builds a sharded pool of the given total capacity (in
// frames) over the store, with one policy instance per shard
// constructed by the factory. shards is clamped to [1, capacity/2] so
// every shard owns at least two frames (the minimum any standard policy
// accepts); pass shards = 1 for a drop-in, lock-per-request equivalent
// of a LockedEngine. The store is shared by all shards and must be safe
// for concurrent use.
func NewRouter(store storage.Store, factory PolicyFactory, capacity, shards int) (*Router, error) {
	if store == nil || factory == nil {
		return nil, errors.New("buffer: nil store or policy factory")
	}
	if capacity < 1 {
		return nil, fmt.Errorf("buffer: capacity %d, need ≥ 1", capacity)
	}
	if shards < 1 {
		shards = 1
	}
	if max := capacity / 2; shards > max {
		shards = max
		if shards < 1 {
			shards = 1
		}
	}
	r := &Router{shards: make([]*LockedEngine, shards), capacity: capacity, store: store}
	base, extra := capacity/shards, capacity%shards
	for i := range r.shards {
		shardCap := base
		if i < extra {
			shardCap++
		}
		pol := factory(shardCap)
		if pol == nil {
			return nil, fmt.Errorf("buffer: policy factory returned nil for shard %d", i)
		}
		e, err := NewEngine(store, pol, shardCap)
		if err != nil {
			return nil, fmt.Errorf("buffer: shard %d: %w", i, err)
		}
		r.shards[i] = lockForShard(e, i)
	}
	return r, nil
}

// shardIndex routes a page ID to its shard index. The murmur3 finalizer
// mixes the (often dense, sequential) page IDs so neighbouring tree
// nodes spread across shards instead of piling onto one.
func (r *Router) shardIndex(id page.ID) int {
	h := uint64(id)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return int(h % uint64(len(r.shards)))
}

// shardFor routes a page ID to its shard.
func (r *Router) shardFor(id page.ID) *LockedEngine {
	return r.shards[r.shardIndex(id)]
}

// Shards returns the number of shards (≥ 1; may be lower than requested
// at construction when the capacity could not feed that many shards).
func (r *Router) Shards() int { return len(r.shards) }

// Capacity returns the total buffer capacity in frames (the sum of the
// shard capacities).
func (r *Router) Capacity() int { return r.capacity }

// ShardCapacity returns the capacity of shard i in frames.
func (r *Router) ShardCapacity(i int) int { return r.shards[i].Capacity() }

// ShardPolicy returns shard i's replacement-policy instance. The policy
// is driven under the shard's mutex, so while the pool is serving, only
// accessors documented as concurrency-safe (e.g. core.ASB's atomic
// gauge mirrors) may be called on it.
func (r *Router) ShardPolicy(i int) Policy { return r.shards[i].Policy() }

// ShardLen returns the number of pages resident in shard i.
func (r *Router) ShardLen(i int) int { return r.shards[i].Len() }

// ShardStats returns a snapshot of shard i's counters.
func (r *Router) ShardStats(i int) Stats { return r.shards[i].Stats() }

// Get implements Pool (and rtree.Reader): the request is served by the
// page's shard.
func (r *Router) Get(id page.ID, ctx AccessContext) (*page.Page, error) {
	return r.shardFor(id).Get(id, ctx)
}

// Put implements Pool: the write path of the page's shard. Put never
// reads the store (the caller provides the content), so it runs under
// the shard lock in every composition; a dirty victim it evicts is
// still queued for background write-back when the async layer is
// stacked on top.
func (r *Router) Put(pg *page.Page, ctx AccessContext) error {
	if pg == nil || pg.ID == page.InvalidID {
		return errors.New("buffer: put of invalid page")
	}
	return r.shardFor(pg.ID).Put(pg, ctx)
}

// Fix implements Pool: pins the page in its shard.
func (r *Router) Fix(id page.ID, ctx AccessContext) (*page.Page, error) {
	return r.shardFor(id).Fix(id, ctx)
}

// Unfix implements Pool.
func (r *Router) Unfix(id page.ID) error {
	return r.shardFor(id).Unfix(id)
}

// MarkDirty implements Pool.
func (r *Router) MarkDirty(id page.ID) error {
	return r.shardFor(id).MarkDirty(id)
}

// Contains reports whether the page is resident in its shard, without
// counting a request.
func (r *Router) Contains(id page.ID) bool {
	return r.shardFor(id).Contains(id)
}

// Flush writes back all dirty resident pages, shard by shard.
func (r *Router) Flush() error {
	for i, sh := range r.shards {
		if err := sh.Flush(); err != nil {
			return fmt.Errorf("buffer: flush shard %d: %w", i, err)
		}
	}
	return nil
}

// Close flushes the pool. It exists so every composition exposes the
// same shutdown call; only the async layer has goroutines to stop.
func (r *Router) Close() error { return r.Flush() }

// Clear evicts everything, resets every shard's policy and zeroes all
// counters. Shards are cleared one at a time; concurrent requests
// against not-yet-cleared shards proceed normally, so quiesce the pool
// first when a globally cold start matters.
func (r *Router) Clear() error {
	for i, sh := range r.shards {
		if err := sh.Clear(); err != nil {
			return fmt.Errorf("buffer: clear shard %d: %w", i, err)
		}
	}
	return nil
}

// Stats returns the merge (Stats.Add) of the per-shard counters. Under
// concurrent load the shards are snapshotted one after another, so the
// merged values are per-shard consistent but not a single instant in
// global time — the usual multi-counter scrape contract.
func (r *Router) Stats() Stats {
	var total Stats
	for _, sh := range r.shards {
		total.Add(sh.Stats())
	}
	return total
}

// Len returns the total number of resident pages across all shards.
func (r *Router) Len() int {
	n := 0
	for _, sh := range r.shards {
		n += sh.Len()
	}
	return n
}

// ResidentIDs returns the IDs of all resident pages across all shards,
// sorted (the per-shard order is unspecified, so sorting makes the
// result deterministic for tests and diffing).
func (r *Router) ResidentIDs() []page.ID {
	var ids []page.ID
	for _, sh := range r.shards {
		ids = append(ids, sh.ResidentIDs()...)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// InflightReads returns the number of physical reads currently in
// progress outside the shard locks — the summed occupancy of the
// per-shard singleflight tables. Always 0 without the async layer,
// whose reads run under the shard lock. The shards are counted one
// after another, so under churn the sum is an instantaneous estimate,
// not an atomic snapshot — the usual multi-counter scrape contract.
func (r *Router) InflightReads() int {
	n := 0
	for _, sh := range r.shards {
		n += sh.inflightLen()
	}
	return n
}

// SetSink attaches one observability sink to every shard, wrapped with
// obs.TagShard so each event carries its shard index; Engine.SetSink
// forwards the tagged sink to each shard's policy, so the whole sharded
// stack emits into s. The sink receives events from all shards
// concurrently and must be safe for concurrent use (obs.Counters, the
// live service sink and the async ring are). A nil sink detaches.
func (r *Router) SetSink(s obs.Sink) {
	for i, sh := range r.shards {
		sh.SetSink(obs.TagShard(s, i))
	}
}

// SetTracer attaches one request-scoped span tracer to every shard (see
// Engine.SetTracer); each shard records under its own index, into its
// own trace ring, so spans carry the shard the page hashed to. While a
// tracer is attached, each request's shard-lock wait is measured and
// lands in its root span's LockWait. The tracer must have been built
// with at least Shards() rings. A nil tracer detaches.
func (r *Router) SetTracer(t *tracing.Tracer) {
	for _, sh := range r.shards {
		sh.SetTracer(t)
	}
}

// EnableContention attaches a shard-contention profiler: every request's
// lock acquisition reports its wait time and queue position under its
// shard index. The profiler must have been built with at least Shards()
// shards. Pass nil to stop profiling.
func (r *Router) EnableContention(c *tracing.Contention) {
	for _, sh := range r.shards {
		sh.EnableContention(c)
	}
}
