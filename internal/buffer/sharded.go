package buffer

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/tracing"
	"repro/internal/page"
	"repro/internal/storage"
)

// ShardedPool partitions a buffer across N independent shards, each an
// unexported Manager with its own replacement-policy instance behind its
// own mutex. Requests hash page.ID to a shard, so goroutines touching
// different shards never contend — the standard escape from the single
// global lock of SyncManager on multi-core serving workloads.
//
// Semantics relative to one big Manager:
//
//   - Capacity is split across the shards (as evenly as page counts
//     allow), and each policy instance is constructed by the
//     PolicyFactory with its shard's capacity, so capacity-relative
//     parameters (SLRU candidate sets, ASB overflow sizing) scale down
//     per shard. ASB's self-tuning c adapts independently per shard:
//     each shard sees an unbiased hash-sample of the reference stream,
//     so the per-shard signals of §4.2 estimate the same workload
//     property the global signal would.
//   - Replacement decisions are local to a shard. A single-shard pool
//     (Shards() == 1) is behaviourally identical to a bare Manager —
//     the equivalence the tests pin down; with more shards the resident
//     set partitions, which can change miss counts slightly (the classic
//     partitioned-LRU approximation).
//   - Stats() merges the per-shard counters with Stats.Add; the sums are
//     exact because each counter is owned by exactly one shard.
//
// A ShardedPool is safe for concurrent use by any number of goroutines.
// Sinks attached via SetSink receive the merged event stream of all
// shards (each event tagged with its shard index via obs.TagShard) and
// must therefore be safe for concurrent use, exactly as with
// SyncManager.
//
// A pool built by NewAsyncShardedPool additionally runs the miss path
// asynchronously: the shard lock protects only in-memory state, the
// physical read happens outside it (with per-shard singleflight
// coalescing of concurrent misses for the same page), and dirty evicted
// pages drain through a bounded background write-back queue. See the
// "I/O concurrency contract" section of DESIGN.md for the protocol.
type ShardedPool struct {
	shards   []*poolShard
	capacity int

	// contention, when set, profiles every shard-lock acquisition of the
	// request path (Get/Put/Fix); traceWait additionally deposits the
	// measured wait with the shard's manager so it lands in the root span
	// of traced requests. Both are read before taking a shard lock, hence
	// atomic; when neither is set the request path pays two atomic loads.
	contention atomic.Pointer[tracing.Contention]
	traceWait  atomic.Bool

	// async marks a pool built by NewAsyncShardedPool. store is the
	// shared page store the async miss path reads directly (outside any
	// shard lock); wb is the background write-back queue every shard's
	// manager enqueues dirty victims into. All three are set once at
	// construction and never change.
	async bool
	store storage.Store
	wb    *writeback
}

// poolShard is one partition: a Manager guarded by its own mutex. The
// shards are separately heap-allocated, so two shards' hot mutexes never
// share a cache line through this struct.
type poolShard struct {
	mu sync.Mutex
	m  *Manager
	// flight is the shard's singleflight table: one entry per page whose
	// physical read is currently in progress outside the lock. Nil on
	// synchronous pools; guarded by mu on async ones.
	flight map[page.ID]*inflight
}

// NewShardedPool builds a pool of the given total capacity (in frames)
// over the store, with one policy instance per shard constructed by the
// factory. shards is clamped to [1, capacity/2] so every shard owns at
// least two frames (the minimum any standard policy accepts); pass
// shards = 1 for a drop-in, lock-per-request equivalent of SyncManager.
// The store is shared by all shards and must be safe for concurrent use.
func NewShardedPool(store storage.Store, factory PolicyFactory, capacity, shards int) (*ShardedPool, error) {
	if store == nil || factory == nil {
		return nil, errors.New("buffer: nil store or policy factory")
	}
	if capacity < 1 {
		return nil, fmt.Errorf("buffer: capacity %d, need ≥ 1", capacity)
	}
	if shards < 1 {
		shards = 1
	}
	if max := capacity / 2; shards > max {
		shards = max
		if shards < 1 {
			shards = 1
		}
	}
	p := &ShardedPool{shards: make([]*poolShard, shards), capacity: capacity}
	base, extra := capacity/shards, capacity%shards
	for i := range p.shards {
		shardCap := base
		if i < extra {
			shardCap++
		}
		pol := factory(shardCap)
		if pol == nil {
			return nil, fmt.Errorf("buffer: policy factory returned nil for shard %d", i)
		}
		m, err := NewManager(store, pol, shardCap)
		if err != nil {
			return nil, fmt.Errorf("buffer: shard %d: %w", i, err)
		}
		p.shards[i] = &poolShard{m: m}
	}
	return p, nil
}

// DefaultWritebackWorkers is the number of background writer goroutines
// used when AsyncConfig leaves it zero.
const DefaultWritebackWorkers = 2

// AsyncConfig tunes the asynchronous I/O machinery of a pool built by
// NewAsyncShardedPool. The zero value selects the defaults.
type AsyncConfig struct {
	// WritebackWorkers is the number of background goroutines writing
	// dirty evicted pages to the store (default DefaultWritebackWorkers).
	WritebackWorkers int
	// WritebackQueue is the write-back queue capacity in pages (default
	// DefaultWritebackQueue). When the queue is full, evictions fall back
	// to a synchronous under-lock write — the backpressure path.
	WritebackQueue int
}

// NewAsyncShardedPool builds a ShardedPool whose miss path performs
// physical reads outside the shard lock: concurrent misses for the same
// page coalesce into one read (per-shard singleflight) and dirty
// evicted pages are written back by background workers instead of under
// the lock. Semantics relative to the synchronous pool:
//
//   - Logical counters (Stats) are identical for single-threaded
//     read-only workloads; under concurrency, coalesced misses are
//     additionally counted in Stats.Coalesced, so DiskReads stays the
//     physical read count.
//   - Dirty write-backs are asynchronous. Flush, Clear and Close drain
//     the queue before returning; until then the pool itself serves the
//     queued versions on a miss (read-your-writes), never the stale
//     store.
//
// Call Close when done with the pool to stop the writer goroutines; an
// un-Closed pool leaks them but is otherwise harmless (they idle on an
// empty queue).
func NewAsyncShardedPool(store storage.Store, factory PolicyFactory, capacity, shards int, cfg AsyncConfig) (*ShardedPool, error) {
	p, err := NewShardedPool(store, factory, capacity, shards)
	if err != nil {
		return nil, err
	}
	workers := cfg.WritebackWorkers
	if workers < 1 {
		workers = DefaultWritebackWorkers
	}
	queueCap := cfg.WritebackQueue
	if queueCap < 1 {
		queueCap = DefaultWritebackQueue
	}
	p.async = true
	p.store = store
	p.wb = newWriteback(store, workers, queueCap)
	for _, sh := range p.shards {
		sh.flight = make(map[page.ID]*inflight)
		sh.m.setWriteback(p.wb)
	}
	return p, nil
}

// Async reports whether the pool runs the asynchronous miss path.
func (p *ShardedPool) Async() bool { return p.async }

// Writeback returns a snapshot of the background write-back queue
// counters; the zero snapshot for synchronous pools.
func (p *ShardedPool) Writeback() WritebackMetrics {
	if p.wb == nil {
		return WritebackMetrics{}
	}
	return p.wb.metrics()
}

// InflightReads returns the number of physical reads currently in
// progress outside the shard locks — the summed occupancy of the
// per-shard singleflight tables. Always 0 on synchronous pools, whose
// reads run under the shard lock. The shards are counted one after
// another, so under churn the sum is an instantaneous estimate, not an
// atomic snapshot — the usual multi-counter scrape contract.
func (p *ShardedPool) InflightReads() int {
	if !p.async {
		return 0
	}
	n := 0
	for _, sh := range p.shards {
		sh.mu.Lock()
		n += len(sh.flight)
		sh.mu.Unlock()
	}
	return n
}

// shardIndex routes a page ID to its shard index. The murmur3 finalizer
// mixes the (often dense, sequential) page IDs so neighbouring tree
// nodes spread across shards instead of piling onto one.
func (p *ShardedPool) shardIndex(id page.ID) int {
	h := uint64(id)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return int(h % uint64(len(p.shards)))
}

// shardFor routes a page ID to its shard.
func (p *ShardedPool) shardFor(id page.ID) *poolShard {
	return p.shards[p.shardIndex(id)]
}

// lockShard acquires shard i's lock for a request, measuring the wait
// (0 when neither a contention profiler nor a tracer wants it). The
// synchronous request paths deposit the wait with the shard's manager
// for its root span; the async path attaches it to its own root span.
func (p *ShardedPool) lockShard(i int) (*poolShard, int64) {
	sh := p.shards[i]
	c := p.contention.Load()
	traced := p.traceWait.Load()
	if c == nil && !traced {
		sh.mu.Lock()
		return sh, 0
	}
	if c != nil {
		c.BeginWait(i)
	}
	start := time.Now()
	sh.mu.Lock()
	wait := time.Since(start).Nanoseconds()
	if c != nil {
		c.EndWait(i, wait)
	}
	return sh, wait
}

// Shards returns the number of shards (≥ 1; may be lower than requested
// at construction when the capacity could not feed that many shards).
func (p *ShardedPool) Shards() int { return len(p.shards) }

// Capacity returns the total buffer capacity in frames (the sum of the
// shard capacities).
func (p *ShardedPool) Capacity() int { return p.capacity }

// ShardCapacity returns the capacity of shard i in frames.
func (p *ShardedPool) ShardCapacity(i int) int { return p.shards[i].m.Capacity() }

// ShardPolicy returns shard i's replacement-policy instance. The policy
// is driven under the shard's mutex, so while the pool is serving, only
// accessors documented as concurrency-safe (e.g. core.ASB's atomic
// gauge mirrors) may be called on it.
func (p *ShardedPool) ShardPolicy(i int) Policy { return p.shards[i].m.Policy() }

// ShardLen returns the number of pages resident in shard i.
func (p *ShardedPool) ShardLen(i int) int {
	sh := p.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.m.Len()
}

// ShardStats returns a snapshot of shard i's counters.
func (p *ShardedPool) ShardStats(i int) Stats {
	sh := p.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.m.Stats()
}

// Get implements Pool (and rtree.Reader): the request is served by the
// page's shard. On a synchronous pool the whole request (including any
// physical read) runs under the shard's lock; on an async pool only the
// in-memory bookkeeping does.
func (p *ShardedPool) Get(id page.ID, ctx AccessContext) (*page.Page, error) {
	if p.async {
		return p.asyncRequest(tracing.KindGet, id, ctx, false)
	}
	sh, wait := p.lockShard(p.shardIndex(id))
	defer sh.mu.Unlock()
	sh.m.depositLockWait(wait)
	return sh.m.Get(id, ctx)
}

// Put implements Pool: the write path of the page's shard. Put never
// reads the store (the caller provides the content), so it runs under
// the shard lock on async pools too; a dirty victim it evicts is still
// queued for background write-back.
func (p *ShardedPool) Put(pg *page.Page, ctx AccessContext) error {
	if pg == nil || pg.ID == page.InvalidID {
		return errors.New("buffer: put of invalid page")
	}
	sh, wait := p.lockShard(p.shardIndex(pg.ID))
	defer sh.mu.Unlock()
	sh.m.depositLockWait(wait)
	return sh.m.Put(pg, ctx)
}

// Fix implements Pool: pins the page in its shard.
func (p *ShardedPool) Fix(id page.ID, ctx AccessContext) (*page.Page, error) {
	if p.async {
		return p.asyncRequest(tracing.KindFix, id, ctx, true)
	}
	sh, wait := p.lockShard(p.shardIndex(id))
	defer sh.mu.Unlock()
	sh.m.depositLockWait(wait)
	return sh.m.Fix(id, ctx)
}

// Unfix implements Pool.
func (p *ShardedPool) Unfix(id page.ID) error {
	sh, wait := p.lockShard(p.shardIndex(id))
	defer sh.mu.Unlock()
	sh.m.depositLockWait(wait)
	return sh.m.Unfix(id)
}

// MarkDirty implements Pool.
func (p *ShardedPool) MarkDirty(id page.ID) error {
	sh, wait := p.lockShard(p.shardIndex(id))
	defer sh.mu.Unlock()
	sh.m.depositLockWait(wait)
	return sh.m.MarkDirty(id)
}

// asyncRequest serves a Get (pin=false) or Fix (pin=true) on an async
// pool, timing the request when the sink asked for latencies and
// tracing it when the tracer sampled it. Latency brackets the work
// after lock acquisition, matching the synchronous path's timing scope.
func (p *ShardedPool) asyncRequest(kind tracing.SpanKind, id page.ID, ctx AccessContext, pin bool) (*page.Page, error) {
	i := p.shardIndex(id)
	sh, wait := p.lockShard(i)

	timer := sh.m.latencyTimer()
	var start time.Time
	if timer != nil {
		start = time.Now()
	}
	var a *tracing.Active
	if t := sh.m.Tracer(); t != nil {
		a = t.StartRequest(kind, id, ctx.QueryID, i, wait)
	}

	pg, hit, err := p.asyncServe(sh, a, id, ctx, pin)

	if timer != nil {
		timer.RecordLatency(time.Since(start).Nanoseconds())
	}
	a.Finish(hit, err != nil)
	return pg, err
}

// asyncServe is the non-blocking miss protocol. It is entered with
// sh.mu held and always returns with it released. Under the lock it
// checks, in order: the resident frames (hit), the shard's singleflight
// table (coalesce onto an in-progress read), and the write-back queue
// (read-your-writes: a queued dirty page is re-admitted without I/O).
// Only when all three miss does it become the leader: it registers an
// inflight entry, releases the lock, reads the store, and re-acquires
// the lock to publish the result to any waiters and admit the page.
//
// counted flips when the request has been accounted (exactly one
// Request event per call); the loop only repeats for Fix waiters, whose
// pin requires a resident frame and who therefore retry after the
// leader's publication until they can pin (or become leaders
// themselves).
func (p *ShardedPool) asyncServe(sh *poolShard, a *tracing.Active, id page.ID, ctx AccessContext, pin bool) (*page.Page, bool, error) {
	m := sh.m
	counted := false
	for {
		// The shard's Active slot carries the trace to the policy and the
		// traced store while we hold the lock; it must be parked (and
		// cleared before every unlock) because other requests use the
		// shard — and the slot — while we wait or read.
		if a != nil {
			m.slot.SetActive(a)
		}

		if fr := m.frame(id); fr != nil {
			hit := false
			if !counted {
				m.hitLocked(fr, ctx)
				hit = true
			}
			if pin {
				fr.pins++
			}
			res := fr.Page
			if a != nil {
				m.slot.SetActive(nil)
			}
			sh.mu.Unlock()
			return res, hit, nil
		}

		if fl, ok := sh.flight[id]; ok {
			// Another request is reading this page right now: count a
			// coalesced miss and wait for its result outside the lock. The
			// event is emitted here, under the lock, with a zero Meta — the
			// waiter never observes the page while holding the lock, and
			// deferring emission past the unlock would interleave it with
			// other requests' events (documented accuracy caveat of the
			// shadow-cache contract).
			if !counted {
				m.missLocked(id, ctx, true)
				m.emitMiss(id, ctx, true, page.Meta{})
				counted = true
			}
			if a != nil {
				m.slot.SetActive(nil)
			}
			sh.mu.Unlock()

			widx := int32(-1)
			if a != nil {
				widx = a.Start(tracing.KindIOWait)
			}
			<-fl.done
			if a != nil {
				sp := a.At(widx)
				sp.Page = id
				sp.Hit = true // coalesced: shared another request's read
				a.End(widx)
			}
			if fl.err != nil {
				return nil, false, fl.err
			}
			if !pin {
				// Get needs only the bytes; the leader admitted (or
				// resolved) the page, no re-lock required.
				return fl.page, false, nil
			}
			// Fix must pin a resident frame; retry under the lock (the
			// frame may already be evicted again, in which case the loop
			// coalesces or leads a fresh read — without recounting).
			sh.mu.Lock()
			continue
		}

		if pg, ok := p.wb.take(id); ok {
			// The page sits in the write-back queue: the store still holds
			// stale bytes, so the queued version is re-admitted directly —
			// no I/O — and stays dirty (its canceled write must eventually
			// happen via a later eviction or Flush).
			var now uint64
			if !counted {
				now = m.missLocked(id, ctx, true)
				m.emitMiss(id, ctx, true, pg.Meta)
				counted = true
			} else {
				now = m.tickLocked()
			}
			fr, err := m.admitLocked(pg, now, ctx)
			if a != nil {
				m.slot.SetActive(nil)
			}
			if err != nil {
				// Admission failed (all frames pinned): the dirty page must
				// not be lost — put its write back in motion.
				if !p.wb.enqueue(pg) {
					if werr := p.store.Write(pg); werr != nil {
						err = errors.Join(err, werr)
					}
				}
				sh.mu.Unlock()
				return nil, false, err
			}
			fr.Dirty = true
			if pin {
				fr.pins++
			}
			res := fr.Page
			sh.mu.Unlock()
			return res, false, nil
		}

		// Leader: register the read and perform it outside the lock. The
		// miss is counted now, but its event is emitted at publish time
		// (under the re-lock, before admission) so it can carry the Meta of
		// the page the request actually resolved to.
		var now uint64
		emitPending := !counted
		if !counted {
			now = m.missLocked(id, ctx, false)
			counted = true
		} else {
			now = m.tickLocked()
		}
		fl := &inflight{done: make(chan struct{})}
		sh.flight[id] = fl
		if a != nil {
			m.slot.SetActive(nil)
		}
		sh.mu.Unlock()

		ridx := int32(-1)
		if a != nil {
			ridx = a.Start(tracing.KindStoreRead)
		}
		rpg, rerr := p.store.Read(id)
		if a != nil {
			sp := a.At(ridx)
			sp.Page = id
			sp.Err = rerr != nil
			if rpg != nil {
				sp.Bytes = int32(storage.PageBytes(rpg))
			}
			a.End(ridx)
		}

		sh.mu.Lock()
		if a != nil {
			m.slot.SetActive(a)
		}
		published := rpg
		var fr *Frame
		var aerr error
		if rerr != nil {
			// The counted miss still emits exactly one event; no page
			// materialized, so its Meta stays zero.
			if emitPending {
				m.emitMiss(id, ctx, false, page.Meta{})
			}
		} else {
			if fr = m.frame(id); fr != nil {
				// A Put raced the page in while we read: its version is
				// newer — serve it and discard the read.
				published = fr.Page
				if emitPending {
					m.emitMiss(id, ctx, false, fr.Meta)
				}
			} else if pg, ok := p.wb.take(id); ok {
				// Re-admitted dirty (by a Put) and evicted again while we
				// read: the queued version is newer than our read.
				published = pg
				if emitPending {
					m.emitMiss(id, ctx, false, pg.Meta)
				}
				fr, aerr = m.admitLocked(pg, now, ctx)
				if fr != nil {
					fr.Dirty = true
				} else if !p.wb.enqueue(pg) {
					if werr := p.store.Write(pg); werr != nil {
						aerr = errors.Join(aerr, werr)
					}
				}
			} else {
				if emitPending {
					m.emitMiss(id, ctx, false, rpg.Meta)
				}
				fr, aerr = m.admitLocked(rpg, now, ctx)
			}
		}
		// Publish: fields first, then unregister, then close — all under
		// the lock, so the close happens-before any waiter's field read
		// and a failed read leaves no residue for later misses. Waiters
		// get the resolved bytes even when only admission failed
		// (ErrAllPinned is the leader's error, not theirs).
		fl.page, fl.err = published, rerr
		delete(sh.flight, id)
		close(fl.done)
		if a != nil {
			m.slot.SetActive(nil)
		}
		if rerr != nil || aerr != nil {
			sh.mu.Unlock()
			if rerr != nil {
				return nil, false, rerr
			}
			return nil, false, aerr
		}
		if pin {
			fr.pins++
		}
		res := fr.Page
		sh.mu.Unlock()
		return res, false, nil
	}
}

// Contains reports whether the page is resident in its shard, without
// counting a request.
func (p *ShardedPool) Contains(id page.ID) bool {
	sh := p.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.m.Contains(id)
}

// Flush writes back all dirty resident pages, shard by shard. On an
// async pool it first drains the background write-back queue, so when
// Flush returns every write-back decided before the call is durable.
// The drain comes first deliberately: queued pages are never resident
// (re-admission cancels their queued write), so the two write sets are
// disjoint, and draining first means no background writer is still
// running behind the per-shard flushes.
func (p *ShardedPool) Flush() error {
	if p.wb != nil {
		if err := p.wb.drain(); err != nil {
			return fmt.Errorf("buffer: write-back drain: %w", err)
		}
	}
	for i, sh := range p.shards {
		sh.mu.Lock()
		err := sh.m.Flush()
		sh.mu.Unlock()
		if err != nil {
			return fmt.Errorf("buffer: flush shard %d: %w", i, err)
		}
	}
	return nil
}

// Close flushes the pool (draining the write-back queue) and stops the
// background writer goroutines. The pool remains usable afterwards —
// with the queue closed, dirty evictions fall back to synchronous
// writes. Synchronous pools treat Close as Flush.
func (p *ShardedPool) Close() error {
	err := p.Flush()
	if p.wb != nil {
		if cerr := p.wb.close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// Clear evicts everything, resets every shard's policy and zeroes all
// counters. Shards are cleared one at a time; concurrent requests
// against not-yet-cleared shards proceed normally, so quiesce the pool
// first when a globally cold start matters.
func (p *ShardedPool) Clear() error {
	if p.wb != nil {
		// Write queued pages out before the reset, and clear the sticky
		// write error either way — Clear zeroes all accounting.
		err := p.wb.drain()
		p.wb.resetErr()
		if err != nil {
			return fmt.Errorf("buffer: write-back drain: %w", err)
		}
	}
	for i, sh := range p.shards {
		sh.mu.Lock()
		err := sh.m.Clear()
		sh.mu.Unlock()
		if err != nil {
			return fmt.Errorf("buffer: clear shard %d: %w", i, err)
		}
	}
	return nil
}

// Stats returns the merge (Stats.Add) of the per-shard counters. Under
// concurrent load the shards are snapshotted one after another, so the
// merged values are per-shard consistent but not a single instant in
// global time — the usual multi-counter scrape contract.
func (p *ShardedPool) Stats() Stats {
	var total Stats
	for _, sh := range p.shards {
		sh.mu.Lock()
		s := sh.m.Stats()
		sh.mu.Unlock()
		total.Add(s)
	}
	return total
}

// Len returns the total number of resident pages across all shards.
func (p *ShardedPool) Len() int {
	n := 0
	for _, sh := range p.shards {
		sh.mu.Lock()
		n += sh.m.Len()
		sh.mu.Unlock()
	}
	return n
}

// ResidentIDs returns the IDs of all resident pages across all shards,
// sorted (the per-shard order is unspecified, so sorting makes the
// result deterministic for tests and diffing).
func (p *ShardedPool) ResidentIDs() []page.ID {
	var ids []page.ID
	for _, sh := range p.shards {
		sh.mu.Lock()
		ids = append(ids, sh.m.ResidentIDs()...)
		sh.mu.Unlock()
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// SetSink attaches one observability sink to every shard, wrapped with
// obs.TagShard so each event carries its shard index; Manager.SetSink
// forwards the tagged sink to each shard's policy, so the whole sharded
// stack emits into s. The sink receives events from all shards
// concurrently and must be safe for concurrent use (obs.Counters, the
// live service sink and the async ring are). A nil sink detaches.
func (p *ShardedPool) SetSink(s obs.Sink) {
	for i, sh := range p.shards {
		sh.mu.Lock()
		sh.m.SetSink(obs.TagShard(s, i))
		sh.mu.Unlock()
	}
}

// SetTracer attaches one request-scoped span tracer to every shard (see
// Manager.SetTracer); each shard records under its own index, into its
// own trace ring, so spans carry the shard the page hashed to. While a
// tracer is attached, each request's shard-lock wait is measured and
// lands in its root span's LockWait. The tracer must have been built
// with at least Shards() rings. A nil tracer detaches.
func (p *ShardedPool) SetTracer(t *tracing.Tracer) {
	for i, sh := range p.shards {
		sh.mu.Lock()
		sh.m.SetTracer(t, i)
		sh.mu.Unlock()
	}
	if p.wb != nil {
		p.wb.setTracer(t)
	}
	p.traceWait.Store(t != nil)
}

// EnableContention attaches a shard-contention profiler: every request's
// lock acquisition reports its wait time and queue position under its
// shard index. The profiler must have been built with at least Shards()
// shards. Pass nil to stop profiling.
func (p *ShardedPool) EnableContention(c *tracing.Contention) {
	p.contention.Store(c)
}
