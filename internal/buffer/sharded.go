package buffer

import (
	"repro/internal/obs/tracing"
	"repro/internal/storage"
)

// ShardedPool is the historical combined sharded pool: a Router,
// optionally with the async-I/O layer stacked on top (the pre-layering
// API folded both into one type switched by a constructor flag). It is
// kept so existing constructors, type switches and tests keep working;
// new code should build a Router (NewRouter), stack Async on it, or use
// a Composition spec.
type ShardedPool struct {
	*Router
	// a is the async layer, nil on synchronous pools. The barrier
	// operations below dispatch through it so write-back draining keeps
	// working for pools built by NewAsyncShardedPool.
	a *AsyncPool
}

// NewShardedPool builds a synchronous sharded pool: a Router of locked
// engines (see NewRouter for the capacity-split and clamping rules).
//
// Deprecated: use NewRouter, or build the composition with
// Composition.Build.
func NewShardedPool(store storage.Store, factory PolicyFactory, capacity, shards int) (*ShardedPool, error) {
	r, err := NewRouter(store, factory, capacity, shards)
	if err != nil {
		return nil, err
	}
	return &ShardedPool{Router: r}, nil
}

// NewAsyncShardedPool builds a sharded pool with the asynchronous-I/O
// layer: physical reads outside the shard lock with singleflight
// coalescing, dirty evictions through a bounded background write-back
// queue (see Async). Call Close when done to stop the writer
// goroutines.
//
// Deprecated: use Async over NewRouter, or build the composition with
// Composition.Build.
func NewAsyncShardedPool(store storage.Store, factory PolicyFactory, capacity, shards int, cfg AsyncConfig) (*ShardedPool, error) {
	r, err := NewRouter(store, factory, capacity, shards)
	if err != nil {
		return nil, err
	}
	a := Async(r, cfg)
	return &ShardedPool{Router: r, a: a}, nil
}

// Async reports whether the pool runs the asynchronous miss path.
func (p *ShardedPool) Async() bool { return p.a != nil }

// Writeback returns a snapshot of the background write-back queue
// counters; the zero snapshot for synchronous pools.
func (p *ShardedPool) Writeback() WritebackMetrics {
	if p.a == nil {
		return WritebackMetrics{}
	}
	return p.a.Writeback()
}

// Flush writes back all dirty resident pages, draining the background
// write-back queue first on async pools.
func (p *ShardedPool) Flush() error {
	if p.a != nil {
		return p.a.Flush()
	}
	return p.Router.Flush()
}

// Close flushes the pool and, on async pools, stops the background
// writer goroutines. Synchronous pools treat Close as Flush.
func (p *ShardedPool) Close() error {
	if p.a != nil {
		return p.a.Close()
	}
	return p.Router.Close()
}

// Clear evicts everything, resets every shard's policy and zeroes all
// counters, draining the write-back queue first on async pools.
func (p *ShardedPool) Clear() error {
	if p.a != nil {
		return p.a.Clear()
	}
	return p.Router.Clear()
}

// SetTracer attaches a tracer to every shard and, on async pools, to
// the background write-back workers. A nil tracer detaches.
func (p *ShardedPool) SetTracer(t *tracing.Tracer) {
	if p.a != nil {
		p.a.SetTracer(t)
		return
	}
	p.Router.SetTracer(t)
}
