package buffer

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/tracing"
	"repro/internal/page"
	"repro/internal/storage"
)

// ShardedPool partitions a buffer across N independent shards, each an
// unexported Manager with its own replacement-policy instance behind its
// own mutex. Requests hash page.ID to a shard, so goroutines touching
// different shards never contend — the standard escape from the single
// global lock of SyncManager on multi-core serving workloads.
//
// Semantics relative to one big Manager:
//
//   - Capacity is split across the shards (as evenly as page counts
//     allow), and each policy instance is constructed by the
//     PolicyFactory with its shard's capacity, so capacity-relative
//     parameters (SLRU candidate sets, ASB overflow sizing) scale down
//     per shard. ASB's self-tuning c adapts independently per shard:
//     each shard sees an unbiased hash-sample of the reference stream,
//     so the per-shard signals of §4.2 estimate the same workload
//     property the global signal would.
//   - Replacement decisions are local to a shard. A single-shard pool
//     (Shards() == 1) is behaviourally identical to a bare Manager —
//     the equivalence the tests pin down; with more shards the resident
//     set partitions, which can change miss counts slightly (the classic
//     partitioned-LRU approximation).
//   - Stats() merges the per-shard counters with Stats.Add; the sums are
//     exact because each counter is owned by exactly one shard.
//
// A ShardedPool is safe for concurrent use by any number of goroutines.
// Sinks attached via SetSink receive the merged event stream of all
// shards (each event tagged with its shard index via obs.TagShard) and
// must therefore be safe for concurrent use, exactly as with
// SyncManager.
type ShardedPool struct {
	shards   []*poolShard
	capacity int

	// contention, when set, profiles every shard-lock acquisition of the
	// request path (Get/Put/Fix); traceWait additionally deposits the
	// measured wait with the shard's manager so it lands in the root span
	// of traced requests. Both are read before taking a shard lock, hence
	// atomic; when neither is set the request path pays two atomic loads.
	contention atomic.Pointer[tracing.Contention]
	traceWait  atomic.Bool
}

// poolShard is one partition: a Manager guarded by its own mutex. The
// shards are separately heap-allocated, so two shards' hot mutexes never
// share a cache line through this struct.
type poolShard struct {
	mu sync.Mutex
	m  *Manager
}

// NewShardedPool builds a pool of the given total capacity (in frames)
// over the store, with one policy instance per shard constructed by the
// factory. shards is clamped to [1, capacity/2] so every shard owns at
// least two frames (the minimum any standard policy accepts); pass
// shards = 1 for a drop-in, lock-per-request equivalent of SyncManager.
// The store is shared by all shards and must be safe for concurrent use.
func NewShardedPool(store storage.Store, factory PolicyFactory, capacity, shards int) (*ShardedPool, error) {
	if store == nil || factory == nil {
		return nil, errors.New("buffer: nil store or policy factory")
	}
	if capacity < 1 {
		return nil, fmt.Errorf("buffer: capacity %d, need ≥ 1", capacity)
	}
	if shards < 1 {
		shards = 1
	}
	if max := capacity / 2; shards > max {
		shards = max
		if shards < 1 {
			shards = 1
		}
	}
	p := &ShardedPool{shards: make([]*poolShard, shards), capacity: capacity}
	base, extra := capacity/shards, capacity%shards
	for i := range p.shards {
		shardCap := base
		if i < extra {
			shardCap++
		}
		pol := factory(shardCap)
		if pol == nil {
			return nil, fmt.Errorf("buffer: policy factory returned nil for shard %d", i)
		}
		m, err := NewManager(store, pol, shardCap)
		if err != nil {
			return nil, fmt.Errorf("buffer: shard %d: %w", i, err)
		}
		p.shards[i] = &poolShard{m: m}
	}
	return p, nil
}

// shardIndex routes a page ID to its shard index. The murmur3 finalizer
// mixes the (often dense, sequential) page IDs so neighbouring tree
// nodes spread across shards instead of piling onto one.
func (p *ShardedPool) shardIndex(id page.ID) int {
	h := uint64(id)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return int(h % uint64(len(p.shards)))
}

// shardFor routes a page ID to its shard.
func (p *ShardedPool) shardFor(id page.ID) *poolShard {
	return p.shards[p.shardIndex(id)]
}

// lockShard acquires shard i's lock for a request, measuring the wait
// when a contention profiler or tracer wants it.
func (p *ShardedPool) lockShard(i int) *poolShard {
	sh := p.shards[i]
	c := p.contention.Load()
	traced := p.traceWait.Load()
	if c == nil && !traced {
		sh.mu.Lock()
		return sh
	}
	if c != nil {
		c.BeginWait(i)
	}
	start := time.Now()
	sh.mu.Lock()
	wait := time.Since(start).Nanoseconds()
	if c != nil {
		c.EndWait(i, wait)
	}
	if traced {
		sh.m.depositLockWait(wait)
	}
	return sh
}

// Shards returns the number of shards (≥ 1; may be lower than requested
// at construction when the capacity could not feed that many shards).
func (p *ShardedPool) Shards() int { return len(p.shards) }

// Capacity returns the total buffer capacity in frames (the sum of the
// shard capacities).
func (p *ShardedPool) Capacity() int { return p.capacity }

// ShardCapacity returns the capacity of shard i in frames.
func (p *ShardedPool) ShardCapacity(i int) int { return p.shards[i].m.Capacity() }

// ShardPolicy returns shard i's replacement-policy instance. The policy
// is driven under the shard's mutex, so while the pool is serving, only
// accessors documented as concurrency-safe (e.g. core.ASB's atomic
// gauge mirrors) may be called on it.
func (p *ShardedPool) ShardPolicy(i int) Policy { return p.shards[i].m.Policy() }

// ShardLen returns the number of pages resident in shard i.
func (p *ShardedPool) ShardLen(i int) int {
	sh := p.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.m.Len()
}

// ShardStats returns a snapshot of shard i's counters.
func (p *ShardedPool) ShardStats(i int) Stats {
	sh := p.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.m.Stats()
}

// Get implements Pool (and rtree.Reader): the request is served by the
// page's shard under that shard's lock only.
func (p *ShardedPool) Get(id page.ID, ctx AccessContext) (*page.Page, error) {
	sh := p.lockShard(p.shardIndex(id))
	defer sh.mu.Unlock()
	return sh.m.Get(id, ctx)
}

// Put implements Pool: the write path of the page's shard.
func (p *ShardedPool) Put(pg *page.Page, ctx AccessContext) error {
	if pg == nil || pg.ID == page.InvalidID {
		return errors.New("buffer: put of invalid page")
	}
	sh := p.lockShard(p.shardIndex(pg.ID))
	defer sh.mu.Unlock()
	return sh.m.Put(pg, ctx)
}

// Fix implements Pool: pins the page in its shard.
func (p *ShardedPool) Fix(id page.ID, ctx AccessContext) (*page.Page, error) {
	sh := p.lockShard(p.shardIndex(id))
	defer sh.mu.Unlock()
	return sh.m.Fix(id, ctx)
}

// Unfix implements Pool.
func (p *ShardedPool) Unfix(id page.ID) error {
	sh := p.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.m.Unfix(id)
}

// MarkDirty implements Pool.
func (p *ShardedPool) MarkDirty(id page.ID) error {
	sh := p.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.m.MarkDirty(id)
}

// Contains reports whether the page is resident in its shard, without
// counting a request.
func (p *ShardedPool) Contains(id page.ID) bool {
	sh := p.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.m.Contains(id)
}

// Flush writes back all dirty resident pages, shard by shard.
func (p *ShardedPool) Flush() error {
	for i, sh := range p.shards {
		sh.mu.Lock()
		err := sh.m.Flush()
		sh.mu.Unlock()
		if err != nil {
			return fmt.Errorf("buffer: flush shard %d: %w", i, err)
		}
	}
	return nil
}

// Clear evicts everything, resets every shard's policy and zeroes all
// counters. Shards are cleared one at a time; concurrent requests
// against not-yet-cleared shards proceed normally, so quiesce the pool
// first when a globally cold start matters.
func (p *ShardedPool) Clear() error {
	for i, sh := range p.shards {
		sh.mu.Lock()
		err := sh.m.Clear()
		sh.mu.Unlock()
		if err != nil {
			return fmt.Errorf("buffer: clear shard %d: %w", i, err)
		}
	}
	return nil
}

// Stats returns the merge (Stats.Add) of the per-shard counters. Under
// concurrent load the shards are snapshotted one after another, so the
// merged values are per-shard consistent but not a single instant in
// global time — the usual multi-counter scrape contract.
func (p *ShardedPool) Stats() Stats {
	var total Stats
	for _, sh := range p.shards {
		sh.mu.Lock()
		s := sh.m.Stats()
		sh.mu.Unlock()
		total.Add(s)
	}
	return total
}

// Len returns the total number of resident pages across all shards.
func (p *ShardedPool) Len() int {
	n := 0
	for _, sh := range p.shards {
		sh.mu.Lock()
		n += sh.m.Len()
		sh.mu.Unlock()
	}
	return n
}

// ResidentIDs returns the IDs of all resident pages across all shards,
// sorted (the per-shard order is unspecified, so sorting makes the
// result deterministic for tests and diffing).
func (p *ShardedPool) ResidentIDs() []page.ID {
	var ids []page.ID
	for _, sh := range p.shards {
		sh.mu.Lock()
		ids = append(ids, sh.m.ResidentIDs()...)
		sh.mu.Unlock()
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// SetSink attaches one observability sink to every shard, wrapped with
// obs.TagShard so each event carries its shard index; Manager.SetSink
// forwards the tagged sink to each shard's policy, so the whole sharded
// stack emits into s. The sink receives events from all shards
// concurrently and must be safe for concurrent use (obs.Counters, the
// live service sink and the async ring are). A nil sink detaches.
func (p *ShardedPool) SetSink(s obs.Sink) {
	for i, sh := range p.shards {
		sh.mu.Lock()
		sh.m.SetSink(obs.TagShard(s, i))
		sh.mu.Unlock()
	}
}

// SetTracer attaches one request-scoped span tracer to every shard (see
// Manager.SetTracer); each shard records under its own index, into its
// own trace ring, so spans carry the shard the page hashed to. While a
// tracer is attached, each request's shard-lock wait is measured and
// lands in its root span's LockWait. The tracer must have been built
// with at least Shards() rings. A nil tracer detaches.
func (p *ShardedPool) SetTracer(t *tracing.Tracer) {
	for i, sh := range p.shards {
		sh.mu.Lock()
		sh.m.SetTracer(t, i)
		sh.mu.Unlock()
	}
	p.traceWait.Store(t != nil)
}

// EnableContention attaches a shard-contention profiler: every request's
// lock acquisition reports its wait time and queue position under its
// shard index. The profiler must have been built with at least Shards()
// shards. Pass nil to stop profiling.
func (p *ShardedPool) EnableContention(c *tracing.Contention) {
	p.contention.Store(c)
}
