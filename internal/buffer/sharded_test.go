package buffer

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/page"
	"repro/internal/storage"
)

// testFactory builds a fresh testPolicy per shard.
func testFactory(int) Policy { return newTestPolicy() }

// randomStats returns a Stats with a random value in every counter
// field. Reflection, not a literal: a field added to Stats is exercised
// here automatically, so the Add/merge property test below cannot
// silently skip it (as a hand-written literal once did for Coalesced).
func randomStats(rng *rand.Rand) Stats {
	var s Stats
	v := reflect.ValueOf(&s).Elem()
	for i := 0; i < v.NumField(); i++ {
		v.Field(i).SetUint(rng.Uint64() >> 40)
	}
	return s
}

// TestStatsFieldSet pins the exact counter set of Stats. Extending
// Stats is fine — but this failing reminds you to extend Add, the
// JSONL/Counters exporters and the merge tests along with it.
func TestStatsFieldSet(t *testing.T) {
	want := []string{"Requests", "Hits", "Misses", "Evictions", "Puts", "WriteBacks", "Coalesced"}
	typ := reflect.TypeOf(Stats{})
	var got []string
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		if f.Type.Kind() != reflect.Uint64 {
			t.Errorf("Stats.%s is %s, want uint64 (Add sums every field)", f.Name, f.Type)
		}
		got = append(got, f.Name)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Stats fields = %v, want %v — update Add and the observability exporters", got, want)
	}
}

// TestStatsAddProperty checks the algebra ShardedPool.Stats relies on:
// Add is the componentwise sum, merging per-shard snapshots in any
// order yields the same total, and the merged value survives a JSON
// round-trip unchanged.
func TestStatsAddProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		parts := make([]Stats, 1+rng.Intn(8))
		for i := range parts {
			parts[i] = randomStats(rng)
		}

		var merged Stats
		for _, p := range parts {
			merged.Add(p)
		}
		var want Stats
		wv := reflect.ValueOf(&want).Elem()
		for _, p := range parts {
			pv := reflect.ValueOf(p)
			for i := 0; i < wv.NumField(); i++ {
				wv.Field(i).SetUint(wv.Field(i).Uint() + pv.Field(i).Uint())
			}
		}
		if merged != want {
			t.Fatalf("Add mismatch: got %+v, want %+v", merged, want)
		}

		// Merge order is irrelevant (commutative + associative).
		var reversed Stats
		for i := len(parts) - 1; i >= 0; i-- {
			reversed.Add(parts[i])
		}
		if reversed != merged {
			t.Fatalf("Add not order-independent: %+v vs %+v", reversed, merged)
		}

		data, err := json.Marshal(merged)
		if err != nil {
			t.Fatal(err)
		}
		var back Stats
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if back != merged {
			t.Fatalf("JSON round-trip changed stats: got %+v, want %+v", back, merged)
		}
	}
}

// TestShardedPoolSingleShardEquivalence replays a recorded reference
// string through a ShardedPool with one shard and through a bare
// Manager with the same policy type: identical Stats and identical
// resident sets, access for access.
func TestShardedPoolSingleShardEquivalence(t *testing.T) {
	const numPages, capacity = 40, 7
	rng := rand.New(rand.NewSource(11))

	s1 := newStore(t, numPages)
	s2 := newStore(t, numPages)
	m, err := NewManager(s1, newTestPolicy(), capacity)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := NewShardedPool(s2, testFactory, capacity, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Shards() != 1 {
		t.Fatalf("Shards() = %d, want 1", sp.Shards())
	}

	for i := 0; i < 3000; i++ {
		id := page.ID(rng.Intn(numPages) + 1)
		ctx := AccessContext{QueryID: uint64(i / 5)}
		if _, err := m.Get(id, ctx); err != nil {
			t.Fatal(err)
		}
		if _, err := sp.Get(id, ctx); err != nil {
			t.Fatal(err)
		}
		if m.Contains(id) != sp.Contains(id) {
			t.Fatalf("residency diverged at access %d (page %d)", i, id)
		}
	}
	if m.Stats() != sp.Stats() {
		t.Fatalf("stats diverged:\nmanager %+v\nsharded %+v", m.Stats(), sp.Stats())
	}
	want := m.ResidentIDs()
	got := sp.ResidentIDs()
	wantSet := make(map[page.ID]bool, len(want))
	for _, id := range want {
		wantSet[id] = true
	}
	if len(got) != len(want) {
		t.Fatalf("resident count: got %d, want %d", len(got), len(want))
	}
	for _, id := range got {
		if !wantSet[id] {
			t.Fatalf("resident sets differ: sharded holds %d, manager does not", id)
		}
	}

	// Clear is equivalent too: both cold again.
	if err := m.Clear(); err != nil {
		t.Fatal(err)
	}
	if err := sp.Clear(); err != nil {
		t.Fatal(err)
	}
	if m.Stats() != sp.Stats() || sp.Len() != 0 {
		t.Fatalf("post-clear state diverged: %+v vs %+v (len %d)", m.Stats(), sp.Stats(), sp.Len())
	}
}

// TestShardedPoolShardStatsMerge drives a multi-shard pool and checks
// that Stats() equals the merge of the per-shard snapshots and the
// whole-run expectations (every request accounted exactly once).
func TestShardedPoolShardStatsMerge(t *testing.T) {
	const numPages, capacity, shards, ops = 60, 16, 4, 5000
	s := newStore(t, numPages)
	sp, err := NewShardedPool(s, testFactory, capacity, shards)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Shards() != shards {
		t.Fatalf("Shards() = %d, want %d", sp.Shards(), shards)
	}
	capSum := 0
	for i := 0; i < sp.Shards(); i++ {
		if sp.ShardCapacity(i) < 1 {
			t.Fatalf("shard %d has capacity %d", i, sp.ShardCapacity(i))
		}
		capSum += sp.ShardCapacity(i)
	}
	if capSum != capacity || sp.Capacity() != capacity {
		t.Fatalf("capacity split: shards sum to %d, Capacity() = %d, want %d", capSum, sp.Capacity(), capacity)
	}

	rng := rand.New(rand.NewSource(13))
	for i := 0; i < ops; i++ {
		id := page.ID(rng.Intn(numPages) + 1)
		if _, err := sp.Get(id, AccessContext{QueryID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}

	var merged Stats
	lenSum := 0
	for i := 0; i < sp.Shards(); i++ {
		merged.Add(sp.ShardStats(i))
		lenSum += sp.ShardLen(i)
	}
	if total := sp.Stats(); total != merged {
		t.Fatalf("Stats() %+v != merged per-shard %+v", total, merged)
	}
	if merged.Requests != ops {
		t.Fatalf("requests = %d, want %d", merged.Requests, ops)
	}
	if merged.Hits+merged.Misses != merged.Requests {
		t.Fatalf("hits+misses != requests: %+v", merged)
	}
	if lenSum != sp.Len() || sp.Len() > capacity {
		t.Fatalf("Len() = %d, per-shard sum %d, capacity %d", sp.Len(), lenSum, capacity)
	}
	if got := s.Stats().Reads; got != merged.Misses {
		t.Fatalf("physical reads %d != misses %d", got, merged.Misses)
	}
	if len(sp.ResidentIDs()) != sp.Len() {
		t.Fatalf("ResidentIDs length %d != Len %d", len(sp.ResidentIDs()), sp.Len())
	}
}

// TestShardedPoolWritePath exercises Put/MarkDirty/Flush/Fix/Unfix
// through the shard routing.
func TestShardedPoolWritePath(t *testing.T) {
	const numPages = 12
	s := newStore(t, numPages)
	sp, err := NewShardedPool(s, testFactory, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	ctx := AccessContext{QueryID: 1}

	// Put a fresh version of every page (admitting without reads), then
	// flush: every put page is dirty and must be written back exactly
	// once — either when shard pressure evicts it or by the Flush.
	writesBefore := s.Stats().Writes
	for id := page.ID(1); id <= 6; id++ {
		p, err := s.Read(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := sp.Put(p, ctx); err != nil {
			t.Fatal(err)
		}
	}
	st := sp.Stats()
	if st.Puts != 6 {
		t.Fatalf("puts = %d, want 6", st.Puts)
	}
	if err := sp.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Writes - writesBefore; got != 6 {
		t.Fatalf("puts+flush wrote %d pages, want 6", got)
	}
	if st := sp.Stats(); st.WriteBacks != 6 {
		t.Fatalf("WriteBacks = %d, want 6", st.WriteBacks)
	}

	// Pin one page, evict pressure elsewhere leaves it resident.
	if _, err := sp.Fix(1, ctx); err != nil {
		t.Fatal(err)
	}
	if err := sp.MarkDirty(1); err != nil {
		t.Fatal(err)
	}
	if err := sp.Unfix(1); err != nil {
		t.Fatal(err)
	}
	if err := sp.Unfix(1); err == nil {
		t.Fatal("double unfix should fail")
	}
	if err := sp.MarkDirty(99); err == nil {
		t.Fatal("marking non-resident page dirty should fail")
	}
	if err := sp.Put(nil, ctx); err == nil {
		t.Fatal("put of nil page should fail")
	}
}

// TestShardedPoolClamping covers the constructor edge cases: shard
// counts are clamped so every shard owns at least two frames, and
// invalid inputs error.
func TestShardedPoolClamping(t *testing.T) {
	s := newStore(t, 4)
	sp, err := NewShardedPool(s, testFactory, 5, 64)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Shards() != 2 {
		t.Errorf("Shards() = %d, want 2 (clamped to capacity/2)", sp.Shards())
	}
	sp, err = NewShardedPool(s, testFactory, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Shards() != 1 {
		t.Errorf("Shards() = %d, want 1", sp.Shards())
	}
	if _, err := NewShardedPool(nil, testFactory, 4, 2); err == nil {
		t.Error("nil store should fail")
	}
	if _, err := NewShardedPool(s, nil, 4, 2); err == nil {
		t.Error("nil factory should fail")
	}
	if _, err := NewShardedPool(s, testFactory, 0, 2); err == nil {
		t.Error("zero capacity should fail")
	}
	if _, err := NewShardedPool(s, func(int) Policy { return nil }, 4, 2); err == nil {
		t.Error("nil-returning factory should fail")
	}
}

// TestShardedPoolConcurrent hammers one pool from many goroutines; the
// race detector checks the locking, the final accounting checks that no
// request was lost or double-counted.
func TestShardedPoolConcurrent(t *testing.T) {
	const numPages, capacity, shards, workers, perWorker = 64, 16, 4, 8, 2000
	s := newStore(t, numPages)
	sp, err := NewShardedPool(s, testFactory, capacity, shards)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 100))
			for i := 0; i < perWorker; i++ {
				id := page.ID(rng.Intn(numPages) + 1)
				if _, err := sp.Get(id, AccessContext{QueryID: uint64(w)<<32 | uint64(i)}); err != nil {
					errs <- fmt.Errorf("worker %d: %w", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := sp.Stats()
	if st.Requests != workers*perWorker {
		t.Fatalf("requests = %d, want %d", st.Requests, workers*perWorker)
	}
	if st.Hits+st.Misses != st.Requests {
		t.Fatalf("hits+misses != requests: %+v", st)
	}
	if sp.Len() > capacity {
		t.Fatalf("capacity exceeded: %d > %d", sp.Len(), capacity)
	}
	if got := s.Stats().Reads; got != st.Misses {
		t.Fatalf("physical reads %d != misses %d", got, st.Misses)
	}
}

// failingStore wraps a store and fails reads of chosen pages — the
// fixture for the miss-path ordering regression test.
type failingStore struct {
	storage.Store
	failRead map[page.ID]bool
}

var errInjectedRead = errors.New("injected read failure")

func (f *failingStore) Read(id page.ID) (*page.Page, error) {
	if f.failRead[id] {
		return nil, errInjectedRead
	}
	return f.Store.Read(id)
}

// TestMissReadFailureKeepsResidentPages is the regression test for the
// miss-path ordering bug: the victim used to be evicted before
// store.Read, so a failed read discarded a good cached page and counted
// an eviction for a request that errored. Now the read happens first.
func TestMissReadFailureKeepsResidentPages(t *testing.T) {
	base := newStore(t, 5)
	fs := &failingStore{Store: base, failRead: map[page.ID]bool{4: true}}
	m, err := NewManager(fs, newTestPolicy(), 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx := AccessContext{QueryID: 1}

	// Fill the buffer.
	for id := page.ID(1); id <= 2; id++ {
		if _, err := m.Get(id, ctx); err != nil {
			t.Fatal(err)
		}
	}

	// A miss whose physical read fails must not evict anything.
	if _, err := m.Get(4, ctx); !errors.Is(err, errInjectedRead) {
		t.Fatalf("err = %v, want injected read failure", err)
	}
	if !m.Contains(1) || !m.Contains(2) {
		t.Fatalf("failed read evicted a cached page; resident: %v", m.ResidentIDs())
	}
	st := m.Stats()
	if st.Evictions != 0 {
		t.Fatalf("failed read counted %d evictions, want 0", st.Evictions)
	}
	// The failed request still counts as a miss (it was not a hit), and
	// both cached pages still hit afterwards without physical reads.
	if st.Misses != 3 {
		t.Fatalf("misses = %d, want 3", st.Misses)
	}
	readsBefore := base.Stats().Reads
	for id := page.ID(1); id <= 2; id++ {
		if _, err := m.Get(id, ctx); err != nil {
			t.Fatal(err)
		}
	}
	if got := base.Stats().Reads; got != readsBefore {
		t.Fatalf("post-failure hits caused %d physical reads", got-readsBefore)
	}

	// The same contract holds through a sharded pool (the path every
	// concurrent consumer takes).
	fsp := &failingStore{Store: newStore(t, 5), failRead: map[page.ID]bool{4: true}}
	sp, err := NewShardedPool(fsp, testFactory, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for id := page.ID(1); id <= 2; id++ {
		if _, err := sp.Get(id, ctx); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sp.Get(4, ctx); !errors.Is(err, errInjectedRead) {
		t.Fatalf("sharded err = %v, want injected read failure", err)
	}
	if sp.Stats().Evictions != 0 || !sp.Contains(1) || !sp.Contains(2) {
		t.Fatalf("sharded pool evicted on failed read: %+v, resident %v", sp.Stats(), sp.ResidentIDs())
	}
}

// TestShardedPoolDeterministicRouting pins down that shard routing is a
// pure function of the page ID (replays and live execution agree on
// placement).
func TestShardedPoolDeterministicRouting(t *testing.T) {
	s := newStore(t, 32)
	sp1, err := NewShardedPool(s, testFactory, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	sp2, err := NewShardedPool(newStore(t, 32), testFactory, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx := AccessContext{}
	for id := page.ID(1); id <= 32; id++ {
		if _, err := sp1.Get(id, ctx); err != nil {
			t.Fatal(err)
		}
		if _, err := sp2.Get(id, ctx); err != nil {
			t.Fatal(err)
		}
	}
	var a, b []int
	for i := 0; i < 4; i++ {
		a = append(a, sp1.ShardLen(i))
		b = append(b, sp2.ShardLen(i))
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("routing not deterministic: %v vs %v", a, b)
	}
}
