package buffer

// SyncManager is the historical name of the locking layer. It is kept
// as an alias so existing type switches and embedders keep working; new
// code should use LockedEngine / Lock.
type SyncManager = LockedEngine

// NewSyncManager wraps an existing engine with the locking layer. The
// wrapped engine must not be used directly afterwards.
//
// Deprecated: use Lock, or build the composition with
// Composition.Build.
func NewSyncManager(m *Manager) *SyncManager {
	return Lock(m)
}
