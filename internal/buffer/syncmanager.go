package buffer

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/tracing"
	"repro/internal/page"
)

// SyncManager wraps a Manager with a mutex so that multiple goroutines
// can share one buffer (e.g. concurrent read-only queries against the
// same tree and buffer). The experiment harness instead runs one manager
// per goroutine — replays are independent — but applications embedding
// the library typically want a single shared buffer.
//
// The wrapper serializes whole requests; it trades concurrency for the
// strict accounting the policies rely on (policy callbacks observe a
// consistent buffer state).
type SyncManager struct {
	mu sync.Mutex
	m  *Manager

	// contention, when set, profiles acquisitions of mu as shard 0;
	// traceWait additionally feeds the measured wait into the root span
	// of traced requests. Both are read before taking mu, hence atomic.
	contention atomic.Pointer[tracing.Contention]
	traceWait  atomic.Bool
}

// NewSyncManager wraps an existing manager. The wrapped manager must not
// be used directly afterwards.
func NewSyncManager(m *Manager) *SyncManager {
	return &SyncManager{m: m}
}

// lockRequest acquires the mutex for a request, measuring the wait when
// a contention profiler or tracer wants it. The common case (neither
// attached) is two atomic loads plus the plain Lock.
func (s *SyncManager) lockRequest() {
	c := s.contention.Load()
	traced := s.traceWait.Load()
	if c == nil && !traced {
		s.mu.Lock()
		return
	}
	if c != nil {
		c.BeginWait(0)
	}
	start := time.Now()
	s.mu.Lock()
	wait := time.Since(start).Nanoseconds()
	if c != nil {
		c.EndWait(0, wait)
	}
	if traced {
		s.m.depositLockWait(wait)
	}
}

// Get implements the Reader contract of rtree.Reader.
func (s *SyncManager) Get(id page.ID, ctx AccessContext) (*page.Page, error) {
	s.lockRequest()
	defer s.mu.Unlock()
	return s.m.Get(id, ctx)
}

// Put installs a new page version (see Manager.Put).
func (s *SyncManager) Put(p *page.Page, ctx AccessContext) error {
	s.lockRequest()
	defer s.mu.Unlock()
	return s.m.Put(p, ctx)
}

// Fix pins a page (see Manager.Fix).
func (s *SyncManager) Fix(id page.ID, ctx AccessContext) (*page.Page, error) {
	s.lockRequest()
	defer s.mu.Unlock()
	return s.m.Fix(id, ctx)
}

// Unfix releases a pin (see Manager.Unfix). Like the other request
// methods it routes through lockRequest, so contention profiling and
// traced root spans cover pin releases too.
func (s *SyncManager) Unfix(id page.ID) error {
	s.lockRequest()
	defer s.mu.Unlock()
	return s.m.Unfix(id)
}

// MarkDirty flags a resident page for write-back (see Manager.MarkDirty),
// routed through lockRequest like every other request method.
func (s *SyncManager) MarkDirty(id page.ID) error {
	s.lockRequest()
	defer s.mu.Unlock()
	return s.m.MarkDirty(id)
}

// Contains reports whether the page is resident (see Manager.Contains).
func (s *SyncManager) Contains(id page.ID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.Contains(id)
}

// Flush writes back all dirty pages (see Manager.Flush).
func (s *SyncManager) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.Flush()
}

// Clear resets the buffer (see Manager.Clear).
func (s *SyncManager) Clear() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.Clear()
}

// Stats returns a snapshot of the counters.
func (s *SyncManager) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.Stats()
}

// Len returns the number of resident pages.
func (s *SyncManager) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.Len()
}

// SetSink attaches an observability sink (see Manager.SetSink). Events
// are emitted under the wrapper's mutex, so any sink works here — but a
// concurrency-safe aggregator like obs.Counters keeps critical sections
// short.
func (s *SyncManager) SetSink(sink obs.Sink) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m.SetSink(sink)
}

// SetTracer attaches a request-scoped span tracer to the wrapped manager
// (see Manager.SetTracer); the SyncManager records as shard 0. While a
// tracer is attached, each request's mutex wait is measured and lands in
// its root span's LockWait. A nil tracer detaches.
func (s *SyncManager) SetTracer(t *tracing.Tracer) {
	s.mu.Lock()
	s.m.SetTracer(t, 0)
	s.mu.Unlock()
	s.traceWait.Store(t != nil)
}

// EnableContention attaches a lock-contention profiler; the single mutex
// reports as shard 0 (the profiler should be built with ≥ 1 shard). Pass
// nil to stop profiling.
func (s *SyncManager) EnableContention(c *tracing.Contention) {
	s.contention.Store(c)
}
