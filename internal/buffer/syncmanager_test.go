package buffer

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/page"
)

func TestSyncManagerConcurrentGets(t *testing.T) {
	s := newStore(t, 64)
	m, err := NewManager(s, newTestPolicy(), 16)
	if err != nil {
		t.Fatal(err)
	}
	sm := NewSyncManager(m)

	const goroutines = 8
	const perG = 800
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perG; i++ {
				id := page.ID(rng.Intn(64) + 1)
				if _, err := sm.Get(id, AccessContext{QueryID: uint64(seed)}); err != nil {
					errs <- err
					return
				}
			}
		}(int64(g + 1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := sm.Stats()
	if st.Requests != goroutines*perG {
		t.Errorf("requests = %d, want %d", st.Requests, goroutines*perG)
	}
	if st.Hits+st.Misses != st.Requests {
		t.Errorf("inconsistent stats: %+v", st)
	}
	if sm.Len() > 16 {
		t.Errorf("capacity exceeded: %d", sm.Len())
	}
	if s.Stats().Reads != st.Misses {
		t.Errorf("physical reads %d != misses %d", s.Stats().Reads, st.Misses)
	}
}

func TestSyncManagerMixedOps(t *testing.T) {
	s := newStore(t, 32)
	m, err := NewManager(s, newTestPolicy(), 8)
	if err != nil {
		t.Fatal(err)
	}
	sm := NewSyncManager(m)
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 300; i++ {
				id := page.ID(rng.Intn(32) + 1)
				switch rng.Intn(4) {
				case 0:
					p := page.New(id, page.TypeData, 0, 0)
					p.Recompute()
					if err := sm.Put(p, AccessContext{}); err != nil {
						errs <- err
						return
					}
				case 1:
					if _, err := sm.Fix(id, AccessContext{}); err != nil {
						errs <- err
						return
					}
					if err := sm.Unfix(id); err != nil {
						errs <- err
						return
					}
				default:
					if _, err := sm.Get(id, AccessContext{}); err != nil {
						errs <- err
						return
					}
				}
			}
		}(int64(g + 11))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := sm.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := sm.Clear(); err != nil {
		t.Fatal(err)
	}
	if sm.Len() != 0 {
		t.Errorf("len after clear = %d", sm.Len())
	}
}
