package buffer

import (
	"sync"
	"testing"

	"repro/internal/obs/tracing"
	"repro/internal/page"
)

// TestManagerTracedRequest checks that a sampled Get produces a root span
// with the request payload and, on a miss, a store.Read child span from
// the traced store wrapper.
func TestManagerTracedRequest(t *testing.T) {
	s := newStore(t, 4)
	m, err := NewManager(s, newTestPolicy(), 2)
	if err != nil {
		t.Fatal(err)
	}
	tr := tracing.NewTracer(1, 1, 16)
	m.SetTracer(tr, 0)

	ctx := AccessContext{QueryID: 9}
	if _, err := m.Get(1, ctx); err != nil { // miss
		t.Fatal(err)
	}
	if _, err := m.Get(1, ctx); err != nil { // hit
		t.Fatal(err)
	}

	traces := tr.Traces(0)
	if len(traces) != 2 {
		t.Fatalf("got %d traces, want 2", len(traces))
	}
	miss, hit := traces[0], traces[1]
	if len(miss) != 2 {
		t.Fatalf("miss trace has %d spans, want root+store.Read: %+v", len(miss), miss)
	}
	root := miss[0]
	if root.Kind != tracing.KindGet || root.Hit || root.Page != 1 || root.QueryID != 9 {
		t.Fatalf("bad miss root: %+v", root)
	}
	rd := miss[1]
	if rd.Kind != tracing.KindStoreRead || rd.Parent != 0 || rd.Page != 1 || rd.Bytes <= 0 {
		t.Fatalf("bad store.Read child: %+v", rd)
	}
	if len(hit) != 1 || !hit[0].Hit {
		t.Fatalf("bad hit trace: %+v", hit)
	}
}

// TestManagerTracedWriteBack checks that dirty evictions and Flush record
// store.Write child spans, and that Flush is traced unconditionally.
func TestManagerTracedWriteBack(t *testing.T) {
	s := newStore(t, 4)
	m, err := NewManager(s, newTestPolicy(), 1)
	if err != nil {
		t.Fatal(err)
	}
	tr := tracing.NewTracer(1, 1, 16)
	m.SetTracer(tr, 0)

	ctx := AccessContext{}
	if _, err := m.Get(1, ctx); err != nil {
		t.Fatal(err)
	}
	if err := m.MarkDirty(1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get(2, ctx); err != nil { // evicts dirty page 1
		t.Fatal(err)
	}
	if err := m.MarkDirty(2); err != nil {
		t.Fatal(err)
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}

	traces := tr.Traces(0)
	if len(traces) != 5 {
		t.Fatalf("got %d traces, want 5 (2 gets + 2 markdirties + flush)", len(traces))
	}
	md := traces[1]
	if md[0].Kind != tracing.KindMarkDirty || !md[0].Hit || md[0].Page != 1 {
		t.Fatalf("bad markdirty root: %+v", md[0])
	}
	evict := traces[2]
	var wrote bool
	for _, sp := range evict {
		if sp.Kind == tracing.KindStoreWrite && sp.Page == 1 {
			wrote = true
		}
	}
	if !wrote {
		t.Fatalf("eviction trace lacks write-back span: %+v", evict)
	}
	flush := traces[4]
	if flush[0].Kind != tracing.KindFlush {
		t.Fatalf("bad flush root: %+v", flush[0])
	}
	if len(flush) != 2 || flush[1].Kind != tracing.KindStoreWrite || flush[1].Page != 2 {
		t.Fatalf("bad flush children: %+v", flush)
	}
}

// TestManagerDetachTracer checks that SetTracer(nil, 0) restores the
// untraced store and stops recording.
func TestManagerDetachTracer(t *testing.T) {
	s := newStore(t, 4)
	m, err := NewManager(s, newTestPolicy(), 2)
	if err != nil {
		t.Fatal(err)
	}
	tr := tracing.NewTracer(1, 1, 16)
	m.SetTracer(tr, 0)
	m.SetTracer(nil, 0)
	if _, err := m.Get(1, AccessContext{}); err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Traces(0)); got != 0 {
		t.Fatalf("detached tracer recorded %d traces", got)
	}
	if m.Tracer() != nil {
		t.Fatal("Tracer() non-nil after detach")
	}
}

// TestTracingDisabledHitAllocFree pins the zero-cost contract: with no
// tracer attached the hit path allocates nothing, and with a tracer
// attached an unsampled hit allocates nothing either.
func TestTracingDisabledHitAllocFree(t *testing.T) {
	s := newStore(t, 2)
	m, err := NewManager(s, newTestPolicy(), 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx := AccessContext{}
	if _, err := m.Get(1, ctx); err != nil {
		t.Fatal(err)
	}

	if allocs := testing.AllocsPerRun(500, func() {
		if _, err := m.Get(1, ctx); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("untraced hit allocates %.1f/op, want 0", allocs)
	}

	// Huge sampling interval: every request goes down the unsampled path.
	m.SetTracer(tracing.NewTracer(1<<40, 1, 8), 0)
	if allocs := testing.AllocsPerRun(500, func() {
		if _, err := m.Get(1, ctx); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("unsampled hit allocates %.1f/op, want 0", allocs)
	}
}

// TestShardedPoolTracing checks that every shard stamps its own index on
// its spans and records into its own ring, and that lock waits land in
// root spans.
func TestShardedPoolTracing(t *testing.T) {
	const shards = 4
	s := newStore(t, 64)
	pool, err := NewShardedPool(s, func(capacity int) Policy { return newTestPolicy() }, 32, shards)
	if err != nil {
		t.Fatal(err)
	}
	tr := tracing.NewTracer(1, pool.Shards(), 64)
	pool.SetTracer(tr)
	c := tracing.NewContention(pool.Shards())
	pool.EnableContention(c)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := page.ID(1 + (g*50+i)%64)
				if _, err := pool.Get(id, AccessContext{QueryID: uint64(g)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	seen := map[int32]bool{}
	for _, trc := range tr.Traces(0) {
		shard := trc[0].Shard
		seen[shard] = true
		for _, sp := range trc {
			if sp.Shard != shard {
				t.Fatalf("span shard %d != root shard %d", sp.Shard, shard)
			}
		}
		if shard < 0 || int(shard) >= shards {
			t.Fatalf("shard index %d out of range", shard)
		}
	}
	if len(seen) < 2 {
		t.Fatalf("only %d shards recorded traces; want several", len(seen))
	}
	var acq uint64
	for i := 0; i < c.Shards(); i++ {
		acq += c.Acquisitions(i)
	}
	if acq != 200 {
		t.Fatalf("profiler counted %d acquisitions, want 200", acq)
	}
}

// TestSyncManagerTracing checks the single-mutex wrapper: spans carry
// shard 0 and the contention profiler counts every request acquisition.
func TestSyncManagerTracing(t *testing.T) {
	s := newStore(t, 8)
	m, err := NewManager(s, newTestPolicy(), 4)
	if err != nil {
		t.Fatal(err)
	}
	sm := NewSyncManager(m)
	tr := tracing.NewTracer(1, 1, 32)
	sm.SetTracer(tr)
	c := tracing.NewContention(1)
	sm.EnableContention(c)

	for i := 0; i < 10; i++ {
		if _, err := sm.Get(page.ID(1+i%8), AccessContext{}); err != nil {
			t.Fatal(err)
		}
	}
	traces := tr.Traces(0)
	if len(traces) != 10 {
		t.Fatalf("got %d traces, want 10", len(traces))
	}
	for _, trc := range traces {
		if trc[0].Shard != 0 {
			t.Fatalf("SyncManager span on shard %d", trc[0].Shard)
		}
	}
	if c.Acquisitions(0) != 10 {
		t.Fatalf("profiler counted %d acquisitions, want 10", c.Acquisitions(0))
	}
	sm.SetTracer(nil)
	sm.EnableContention(nil)
	if _, err := sm.Get(1, AccessContext{}); err != nil {
		t.Fatal(err)
	}
	if c.Acquisitions(0) != 10 {
		t.Fatal("profiler still counting after detach")
	}
}
