package buffer

import (
	"sync"
	"sync/atomic"

	"repro/internal/obs/tracing"
	"repro/internal/page"
	"repro/internal/storage"
)

// DefaultWritebackQueue is the write-back queue capacity (in pages) used
// when AsyncConfig leaves it zero.
const DefaultWritebackQueue = 1024

// writeback is the background write-back machinery of an async pool:
// dirty evicted pages are enqueued under the shard lock (never
// blocking — a full queue falls back to a synchronous write, which is
// the backpressure path) and written to the store by a fixed set of
// writer goroutines.
//
// Invariants:
//
//   - pending holds the newest unwritten version of every queued page;
//     a page is in pending from enqueue until its write completed (or
//     until take cancels it because the page was re-admitted).
//   - Re-enqueueing a page that is already pending replaces the entry
//     in place (gen bump) without a second queue slot: consecutive
//     write-backs of a hot dirty page coalesce into one physical write.
//   - A miss for a pending page must be served from pending (take),
//     never from the store — the store still holds stale bytes.
//   - drain returns only when pending is empty and no write is in
//     flight, so Flush/Clear/Close get a true durability barrier.
//
// Write errors are sticky: the first one is kept and returned by
// drain/close (the erroring page is dropped after being counted, so a
// broken store cannot wedge the queue).
type writeback struct {
	store storage.Store
	// tracer, when non-nil, records one sampled root span per physical
	// background write (KindWriteback), so Perfetto timelines show the
	// write landing after the eviction that queued it.
	tracer atomic.Pointer[tracing.Tracer]

	mu       sync.Mutex
	cond     *sync.Cond
	pending  map[page.ID]*wbEntry
	inFlight int
	closed   bool
	err      error
	queue    chan page.ID
	wg       sync.WaitGroup

	workers   int
	queued    atomic.Uint64
	written   atomic.Uint64
	coalesced atomic.Uint64
	canceled  atomic.Uint64
	fallbacks atomic.Uint64
	errors    atomic.Uint64
}

// wbEntry is one pending page: the newest version and a generation
// counter bumped on every in-place replacement, so a writer can detect
// that a newer version arrived while it was writing the previous one.
type wbEntry struct {
	page *page.Page
	gen  uint64
}

// newWriteback starts workers writer goroutines over a queue of
// queueCap page slots.
func newWriteback(store storage.Store, workers, queueCap int) *writeback {
	if workers < 1 {
		workers = 1
	}
	if queueCap < 1 {
		queueCap = DefaultWritebackQueue
	}
	w := &writeback{
		store:   store,
		pending: make(map[page.ID]*wbEntry),
		queue:   make(chan page.ID, queueCap),
		workers: workers,
	}
	w.cond = sync.NewCond(&w.mu)
	w.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go w.worker()
	}
	return w
}

// setTracer attaches (nil detaches) the span tracer the writers record
// KindWriteback spans into.
func (w *writeback) setTracer(t *tracing.Tracer) { w.tracer.Store(t) }

// enqueue implements writebackEnqueuer. Called under a shard lock, so
// it must never block: a full or closed queue returns false and the
// caller writes synchronously (backpressure).
func (w *writeback) enqueue(p *page.Page) bool {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return false
	}
	if e, ok := w.pending[p.ID]; ok {
		// Already queued (or mid-write): replace in place. The writer
		// re-checks the generation after its write and redoes it.
		e.page = p
		e.gen++
		w.mu.Unlock()
		w.coalesced.Add(1)
		return true
	}
	select {
	case w.queue <- p.ID:
	default:
		w.mu.Unlock()
		w.fallbacks.Add(1)
		return false
	}
	w.pending[p.ID] = &wbEntry{page: p, gen: 1}
	w.mu.Unlock()
	w.queued.Add(1)
	return true
}

// take removes and returns the pending version of id, if any — the
// read-your-writes path of the miss protocol: a miss on a page whose
// write-back has not landed yet must get the queued bytes, not the
// stale store, and re-admitting the page as dirty cancels the queued
// write (the next eviction or flush writes the newer version).
func (w *writeback) take(id page.ID) (*page.Page, bool) {
	w.mu.Lock()
	e, ok := w.pending[id]
	if !ok {
		w.mu.Unlock()
		return nil, false
	}
	delete(w.pending, id)
	if len(w.pending) == 0 && w.inFlight == 0 {
		w.cond.Broadcast()
	}
	w.mu.Unlock()
	w.canceled.Add(1)
	return e.page, true
}

// worker drains the queue until close.
func (w *writeback) worker() {
	defer w.wg.Done()
	for id := range w.queue {
		w.write(id)
	}
}

// write performs the physical write for one dequeued page ID, redoing
// it as long as newer versions keep arriving mid-write.
func (w *writeback) write(id page.ID) {
	w.mu.Lock()
	e, ok := w.pending[id]
	if !ok {
		// Canceled by take between enqueue and dequeue.
		w.mu.Unlock()
		return
	}
	w.inFlight++
	for {
		p, gen := e.page, e.gen
		w.mu.Unlock()

		var err error
		if a := w.tracer.Load().StartRequest(tracing.KindWriteback, p.ID, 0, 0, 0); a != nil {
			idx := a.Start(tracing.KindStoreWrite)
			err = w.store.Write(p)
			sp := a.At(idx)
			sp.Page = p.ID
			sp.Err = err != nil
			sp.Bytes = int32(storage.PageBytes(p))
			a.End(idx)
			a.Finish(false, err != nil)
		} else {
			err = w.store.Write(p)
		}
		if err != nil {
			w.errors.Add(1)
		} else {
			w.written.Add(1)
		}

		w.mu.Lock()
		if err != nil && w.err == nil {
			w.err = err
		}
		if cur, ok := w.pending[id]; ok && cur == e {
			if cur.gen != gen {
				// A newer version was enqueued while we were writing the
				// previous one: write again so the store ends newest.
				continue
			}
			delete(w.pending, id)
		}
		break
	}
	w.inFlight--
	if len(w.pending) == 0 && w.inFlight == 0 {
		w.cond.Broadcast()
	}
	w.mu.Unlock()
}

// drain blocks until every queued page has been written (or canceled by
// take) and no write is in flight, then returns the sticky error.
// Must not be called while holding a shard lock.
func (w *writeback) drain() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for len(w.pending) > 0 || w.inFlight > 0 {
		w.cond.Wait()
	}
	return w.err
}

// resetErr clears the sticky write error (Pool.Clear zeroes all
// accounting, including this).
func (w *writeback) resetErr() {
	w.mu.Lock()
	w.err = nil
	w.mu.Unlock()
}

// close drains the queue, stops the writer goroutines and returns the
// sticky error. After close, enqueue returns false, so the owning pool
// degrades to synchronous write-back instead of breaking.
func (w *writeback) close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return w.err
	}
	w.closed = true
	w.mu.Unlock()

	err := w.drain()
	close(w.queue)
	w.wg.Wait()
	return err
}

// WritebackMetrics is a snapshot of the write-back queue counters, for
// gauges and tests. Counter fields are cumulative over the queue's
// lifetime (they survive Clear, like the contention profiler).
type WritebackMetrics struct {
	// Workers is the number of background writer goroutines.
	Workers int
	// QueueCap and Depth are the queue capacity and its current fill.
	QueueCap, Depth int
	// Pending is the number of pages currently awaiting (or undergoing)
	// their physical write.
	Pending int
	// Queued counts pages accepted into the queue; Written counts
	// completed physical writes; Coalesced counts re-enqueues that
	// replaced a pending entry in place; Canceled counts queued writes
	// canceled because the page was re-admitted dirty; Fallbacks counts
	// evictions written synchronously because the queue was full;
	// Errors counts failed physical writes.
	Queued, Written, Coalesced, Canceled, Fallbacks, Errors uint64
}

// metrics returns a point-in-time snapshot of the queue counters.
func (w *writeback) metrics() WritebackMetrics {
	w.mu.Lock()
	pending := len(w.pending)
	w.mu.Unlock()
	return WritebackMetrics{
		Workers:   w.workers,
		QueueCap:  cap(w.queue),
		Depth:     len(w.queue),
		Pending:   pending,
		Queued:    w.queued.Load(),
		Written:   w.written.Load(),
		Coalesced: w.coalesced.Load(),
		Canceled:  w.canceled.Load(),
		Fallbacks: w.fallbacks.Load(),
		Errors:    w.errors.Load(),
	}
}
