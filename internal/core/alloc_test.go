package core_test

// Allocation regression gate for the intrusive frame-table substrate:
// after warmup, serving requests — hits, misses with eviction, and
// writes — must perform ZERO heap allocations per operation for every
// standard policy. Frames recycle through the manager's arena, policy
// structures ride the frames' embedded link words, and LRU-K's history
// lives in flat slabs, so nothing on the request path escapes to the
// heap. CI runs TestPolicyZeroAlloc without -race (the race detector's
// instrumentation allocates, so the test skips itself under it).
//
// BenchmarkPolicyOpsReference is the old-implementation twin of
// BenchmarkPolicyOps; benchstat over the pair quantifies the refactor
// (see BENCH_policycore.json, written by TestWriteBenchPolicyCoreJSON).

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/page"
)

// allocFactories is the gate's policy set: the standard registry plus
// FIFO, each paired with its reference twin by name in refFactories.
func allocFactories() []core.Factory {
	return append(core.StandardFactories(),
		core.Factory{Name: "FIFO", New: func(int) buffer.Policy { return core.NewFIFO() }})
}

// TestPolicyZeroAlloc pins the tentpole invariant: steady-state
// Get/Put/victim-select allocates nothing, for every standard policy.
func TestPolicyZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	const (
		capacity = 64
		numPages = 256
		traceLen = 4096
	)
	seq, specs := benchAccesses(numPages, traceLen)
	for _, f := range allocFactories() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			store := buildStore(t, specs)
			m := mustManager(t, store, f.New(capacity), capacity)
			// Pre-read every page once so measured Puts reuse these
			// pointers; Clone during measurement would be a false positive.
			puts := make([]*page.Page, numPages+1)
			for id := 1; id <= numPages; id++ {
				p, err := store.Read(page.ID(id))
				if err != nil {
					t.Fatal(err)
				}
				puts[id] = p.Clone()
			}
			step := func(i int) {
				a := seq[i%len(seq)]
				ctx := buffer.AccessContext{QueryID: a.query}
				if i%16 == 7 {
					if err := m.Put(puts[int(a.id)], ctx); err != nil {
						t.Fatal(err)
					}
					return
				}
				if _, err := m.Get(a.id, ctx); err != nil {
					t.Fatal(err)
				}
			}
			// Warmup: fill the buffer, grow LRU-K's history slabs and every
			// map to its steady-state size, populate the arena free-list.
			for i := 0; i < traceLen; i++ {
				step(i)
			}
			pos := 0
			avg := testing.AllocsPerRun(50, func() {
				for i := 0; i < 64; i++ {
					step(pos)
					pos++
				}
			})
			if avg != 0 {
				t.Errorf("%s: %.2f allocs per 64 steady-state requests, want 0", f.Name, avg)
			}
		})
	}
}

// BenchmarkPolicyOpsReference is BenchmarkPolicyOps run against the
// preserved old-style (container/list-era) policy implementations, kept
// so benchstat can compare the intrusive substrate against its baseline:
//
//	go test -bench 'PolicyOps$' -benchmem ./internal/core/ > new.txt
//	go test -bench PolicyOpsReference -benchmem ./internal/core/ > old.txt
func BenchmarkPolicyOpsReference(b *testing.B) {
	const numPages = 2048
	seq, specs := benchAccesses(numPages, 1<<16)
	for _, f := range core.StandardFactories() {
		ref, ok := refFactories(256)[f.Name]
		if !ok {
			b.Fatalf("no reference implementation for %q", f.Name)
		}
		b.Run(f.Name, func(b *testing.B) {
			s := buildStoreB(b, specs)
			m, err := buffer.NewManager(s, ref, 256)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a := seq[i%len(seq)]
				if _, err := m.Get(a.id, buffer.AccessContext{QueryID: a.query}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// policyCoreResult is one row of BENCH_policycore.json: the same policy
// and trace measured on the old (reference) and new (intrusive)
// implementations, with per-op time and allocation counts.
type policyCoreResult struct {
	Policy      string  `json:"policy"`
	OldNsPerOp  float64 `json:"old_ns_per_op"`
	NewNsPerOp  float64 `json:"new_ns_per_op"`
	OldAllocsOp float64 `json:"old_allocs_per_op"`
	NewAllocsOp float64 `json:"new_allocs_per_op"`
	Speedup     float64 `json:"speedup"`
}

// measurePolicy replays ops requests and returns ns/op and allocs/op
// (steady state: one warmup pass runs untimed).
func measurePolicy(t *testing.T, pol buffer.Policy, seq []access, specs []pageSpec, ops int) (float64, float64) {
	t.Helper()
	store := buildStore(t, specs)
	m := mustManager(t, store, pol, 256)
	run := func(n int) {
		for i := 0; i < n; i++ {
			a := seq[i%len(seq)]
			if _, err := m.Get(a.id, buffer.AccessContext{QueryID: a.query}); err != nil {
				t.Fatal(err)
			}
		}
	}
	run(ops / 4)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	run(ops)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	allocs := float64(after.Mallocs-before.Mallocs) / float64(ops)
	return float64(elapsed.Nanoseconds()) / float64(ops), allocs
}

// TestWriteBenchPolicyCoreJSON measures the old-vs-new policy matrix and
// writes BENCH_policycore.json to the path in BENCH_POLICYCORE_JSON —
// the before/after record of the intrusive-substrate refactor.
func TestWriteBenchPolicyCoreJSON(t *testing.T) {
	path := os.Getenv("BENCH_POLICYCORE_JSON")
	if path == "" {
		t.Skip("BENCH_POLICYCORE_JSON not set")
	}
	const (
		numPages = 2048
		ops      = 200_000
	)
	seq, specs := benchAccesses(numPages, 1<<16)
	var results []policyCoreResult
	for _, f := range core.StandardFactories() {
		ref, ok := refFactories(256)[f.Name]
		if !ok {
			t.Fatalf("no reference implementation for %q", f.Name)
		}
		oldNs, oldAllocs := measurePolicy(t, ref, seq, specs, ops)
		newNs, newAllocs := measurePolicy(t, f.New(256), seq, specs, ops)
		results = append(results, policyCoreResult{
			Policy:      f.Name,
			OldNsPerOp:  oldNs,
			NewNsPerOp:  newNs,
			OldAllocsOp: oldAllocs,
			NewAllocsOp: newAllocs,
			Speedup:     oldNs / newNs,
		})
		fmt.Printf("%-10s old %7.1f ns/op %6.3f allocs/op   new %7.1f ns/op %6.3f allocs/op\n",
			f.Name, oldNs, oldAllocs, newNs, newAllocs)
	}
	out := struct {
		Benchmark  string             `json:"benchmark"`
		GOOS       string             `json:"goos"`
		GOARCH     string             `json:"goarch"`
		GOMAXPROCS int                `json:"gomaxprocs"`
		Capacity   int                `json:"capacity"`
		NumPages   int                `json:"num_pages"`
		Ops        int                `json:"ops"`
		Results    []policyCoreResult `json:"results"`
	}{
		Benchmark:  "PolicyOps old (container/list era) vs new (intrusive substrate)",
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Capacity:   256,
		NumPages:   numPages,
		Ops:        ops,
		Results:    results,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %d results to %s", len(results), path)
}
