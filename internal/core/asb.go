package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/buffer"
	"repro/internal/core/intrusive"
	"repro/internal/obs"
	"repro/internal/obs/tracing"
	"repro/internal/page"
)

// ASBOptions parameterize the adaptable spatial buffer. The defaults are
// the paper's settings (§4.3): an overflow buffer of 20% of the complete
// buffer, an initial candidate set of 25% of the remaining (main) part,
// adapted in steps of 1% of the main part.
type ASBOptions struct {
	// Criterion is the spatial criterion; the paper uses A.
	Criterion page.Criterion
	// OverflowFrac is the fraction of the total buffer reserved for the
	// FIFO overflow buffer.
	OverflowFrac float64
	// InitialCandFrac is the initial candidate-set size as a fraction of
	// the main part.
	InitialCandFrac float64
	// StepFrac is the adaptation step as a fraction of the main part.
	StepFrac float64
	// FreezeCand pins the candidate-set size to its initial value: the
	// §4.2 signal is still computed and emitted as OverflowPromotion
	// events, but never acted on. Diagnostic — used by ASBProbe to
	// inspect the signal distribution under a controlled candidate size.
	FreezeCand bool
}

// DefaultASBOptions returns the paper's parameter settings.
func DefaultASBOptions() ASBOptions {
	return ASBOptions{
		Criterion:       page.CritA,
		OverflowFrac:    0.20,
		InitialCandFrac: 0.25,
		StepFrac:        0.01,
	}
}

// Frame.Tag values marking which ASB region a frame lives in.
const (
	asbMain uint32 = iota
	asbOver
)

// ASB is the adaptable spatial buffer (paper §4.2), the self-tuning
// combination of LRU and a spatial page-replacement strategy:
//
//   - The buffer is split into a main part and a FIFO overflow buffer.
//   - The main part is an SLRU: victims are chosen spatially from the
//     candidate set of the `cand` least recently used pages — but instead
//     of leaving memory they are demoted into the overflow buffer.
//   - Real evictions take the overflow buffer's FIFO head.
//   - When a request hits the overflow buffer, the page is promoted back
//     into the main part, and the candidate-set size adapts: among the
//     other overflow pages, count those with a better (larger) spatial
//     criterion than the promoted page and those with a better (more
//     recent) LRU criterion. More better-spatial pages means the spatial
//     strategy misjudged the page LRU would have kept — shrink the
//     candidate set toward LRU; more better-LRU pages means grow it
//     toward the spatial strategy; equal counts leave it unchanged.
//
// Both parts together never exceed the buffer capacity, so — unlike
// LRU-K — ASB needs no state for pages that have left the buffer.
//
// Both regions are intrusive lists over the frames' embedded link words;
// a frame's region lives in Frame.Tag and its criterion is cached in
// Frame.Crit at admission, so candidate scans and the §4.2 adaptation
// votes never recompute MBR geometry and never allocate.
//
// ASB emits observability events when a sink is attached (via
// buffer.Manager.SetSink or directly through SetSink): an
// OverflowPromotion per overflow hit carrying the §4.2 signal, an Adapt
// per adaptation event (the Fig. 14 series), and an Eviction per page
// leaving the buffer.
type ASB struct {
	obs.Target
	tracing.SlotTarget

	crit     page.Criterion
	mainCap  int
	overCap  int
	initCand int
	step     int
	freeze   bool

	cand int // current candidate-set size, in [1, mainCap]

	// main is the SLRU part, front = most recently used.
	main intrusive.List[*buffer.Frame]
	// over is the overflow FIFO, front = oldest (next FIFO victim).
	over intrusive.List[*buffer.Frame]

	// lastRank is the LRU rank of the frame most recently returned by
	// Victim, consumed by the Eviction event in OnEvict; -1 when unknown.
	lastRank int

	adaptations uint64

	// gCand/gOver mirror cand and over.Len() atomically so that a
	// metrics scraper can read the live gauges without taking the
	// engine lock that serializes the policy callbacks.
	gCand atomic.Int64
	gOver atomic.Int64
}

// NewASB returns an adaptable spatial buffer for a buffer of the given
// total capacity (in frames). Zero-valued option fields take the paper's
// defaults.
func NewASB(capacity int, opts ASBOptions) *ASB {
	if capacity < 2 {
		panic(fmt.Sprintf("core: ASB needs capacity ≥ 2, got %d", capacity))
	}
	def := DefaultASBOptions()
	if opts.OverflowFrac <= 0 {
		opts.OverflowFrac = def.OverflowFrac
	}
	if opts.InitialCandFrac <= 0 {
		opts.InitialCandFrac = def.InitialCandFrac
	}
	if opts.StepFrac <= 0 {
		opts.StepFrac = def.StepFrac
	}
	overCap := int(opts.OverflowFrac*float64(capacity) + 0.5)
	if overCap < 1 {
		overCap = 1
	}
	if overCap > capacity-1 {
		overCap = capacity - 1
	}
	mainCap := capacity - overCap
	a := &ASB{
		crit:     opts.Criterion,
		mainCap:  mainCap,
		overCap:  overCap,
		initCand: clamp(int(opts.InitialCandFrac*float64(mainCap)+0.5), 1, mainCap),
		step:     clamp(int(opts.StepFrac*float64(mainCap)+0.5), 1, mainCap),
		freeze:   opts.FreezeCand,
		main:     intrusive.NewList(frameHooks),
		over:     intrusive.NewList(frameHooks),
		lastRank: -1,
	}
	a.cand = a.initCand
	a.publishGauges()
	return a
}

// publishGauges refreshes the atomic gauge mirrors; called at the end of
// every callback that can change the candidate size or the overflow
// occupancy.
func (p *ASB) publishGauges() {
	p.gCand.Store(int64(p.cand))
	p.gOver.Store(int64(p.over.Len()))
}

// LiveCandidateSize returns the current candidate-set size from the
// atomic gauge mirror; unlike CandidateSize it is safe to call from a
// scrape goroutine while another goroutine drives the buffer.
func (p *ASB) LiveCandidateSize() int { return int(p.gCand.Load()) }

// LiveOverflowLen returns the current overflow-buffer occupancy from the
// atomic gauge mirror (see LiveCandidateSize).
func (p *ASB) LiveOverflowLen() int { return int(p.gOver.Load()) }

// clamp bounds v to [lo, hi].
func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Name implements buffer.Policy.
func (p *ASB) Name() string { return "ASB" }

// CandidateSize returns the current (adapted) candidate-set size.
func (p *ASB) CandidateSize() int { return p.cand }

// MainCapacity returns the capacity of the main part in frames.
func (p *ASB) MainCapacity() int { return p.mainCap }

// OverflowCapacity returns the capacity of the overflow buffer in frames.
func (p *ASB) OverflowCapacity() int { return p.overCap }

// OverflowLen returns the number of pages currently in the overflow
// buffer.
func (p *ASB) OverflowLen() int { return p.over.Len() }

// Adaptations returns how many overflow hits adjusted the candidate size.
func (p *ASB) Adaptations() uint64 { return p.adaptations }

// OnAdmit implements buffer.Policy: new pages enter the main part at the
// MRU position; if the main part exceeds its share, its SLRU victim is
// demoted into the overflow buffer.
func (p *ASB) OnAdmit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	f.Crit = p.crit.Value(f.Meta)
	f.Tag = asbMain
	p.main.PushFront(f)
	p.rebalance()
	p.publishGauges()
}

// OnHit implements buffer.Policy. A hit in the main part refreshes
// recency. A hit in the overflow buffer adapts the candidate-set size
// (§4.2, cases 1–3) and promotes the page back into the main part.
func (p *ASB) OnHit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	if f.Tag != asbOver {
		p.main.MoveToFront(f)
		return
	}
	p.adapt(f)
	p.over.Remove(f)
	f.Tag = asbMain
	p.main.PushFront(f)
	p.rebalance()
	p.publishGauges()
}

// adapt applies the self-tuning rule on an overflow hit. f.LastUse still
// holds the promoted page's previous access time (the manager updates it
// after OnHit), so the LRU comparison sees the state that led to the
// demotion. The raw signal is emitted as an OverflowPromotion event and
// the resulting size as an Adapt event; with FreezeCand the signal is
// emitted but not acted on.
func (p *ASB) adapt(f *buffer.Frame) {
	act := p.TraceSlot().Active()
	var span int32
	if act != nil {
		span = act.Start(tracing.KindAdapt)
	}
	oldC := p.cand
	betterSpatial, betterLRU := 0, 0
	defer func() {
		if act != nil {
			sp := act.At(span)
			sp.Page = f.Meta.ID
			sp.OldC, sp.NewC = int32(oldC), int32(p.cand)
			sp.BetterSpatial, sp.BetterLRU = int32(betterSpatial), int32(betterLRU)
			act.End(span)
		}
	}()
	for q := p.over.Front(); q != nil; q = p.over.Next(q) {
		if q == f {
			continue
		}
		if q.Crit > f.Crit {
			betterSpatial++
		}
		if q.LastUse > f.LastUse {
			betterLRU++
		}
	}
	p.Sink().OverflowPromotion(obs.OverflowPromotionEvent{
		Page:          f.Meta.ID,
		BetterSpatial: betterSpatial,
		BetterLRU:     betterLRU,
	})
	if p.freeze {
		p.adaptations++
		return
	}
	// The overflow population is not a neutral sample: every page in it
	// was *selected* for a small spatial criterion by the main part's
	// victim choice, which deflates the better-spatial count relative to
	// the better-LRU count. Growing the candidate set therefore requires
	// a margin (a quarter of the overflow occupancy); shrinking is taken
	// at face value. This keeps the adaptation of §4.2 stable on
	// workloads hostile to the spatial strategy — see DESIGN.md §5.
	margin := p.over.Len() / 4
	if margin < 1 {
		margin = 1
	}
	switch {
	case betterSpatial > betterLRU:
		// The spatial strategy would have kept many pages ahead of the
		// page that was actually re-requested: LRU judged better. Shrink
		// twice as fast as growing: robustness (never losing badly to
		// LRU) is the design goal, and the deflated better-spatial count
		// means each shrink signal is strong evidence.
		p.cand = clamp(p.cand-2*p.step, 1, p.mainCap)
	case betterLRU > betterSpatial+margin:
		// LRU would have kept clearly more pages ahead of the
		// re-requested page: the spatial strategy judged better.
		p.cand = clamp(p.cand+p.step, 1, p.mainCap)
	}
	p.adaptations++
	// One Adapt event per adaptation event, even when the size is
	// unchanged: the paper counts overflow hits as adaptation events, and
	// Fig. 14 plots one sample per event.
	p.Sink().Adapt(obs.AdaptEvent{OldC: oldC, NewC: p.cand})
}

// rebalance demotes main-part SLRU victims into the overflow buffer until
// the main part is within its share. Pinned pages are never demoted.
func (p *ASB) rebalance() {
	for p.main.Len() > p.mainCap {
		v, _, _ := p.mainVictim()
		if v == nil {
			return // everything pinned; tolerate a temporarily oversized main part
		}
		p.main.Remove(v)
		v.Tag = asbOver
		p.over.PushBack(v)
	}
}

// mainVictim selects the SLRU victim of the main part: the unpinned page
// with the smallest spatial criterion among the cand least recently used;
// scanning from the LRU end keeps ties on the older page. The second
// return value is the victim's rank from the LRU end (0 = least recently
// used), or -1 if there is no victim; the third is the largest (worst,
// i.e. best-to-keep) criterion among the scanned unpinned candidates, the
// value the victim "won" against in trace spans.
func (p *ASB) mainVictim() (*buffer.Frame, int, float64) {
	var best *buffer.Frame
	var bestCrit, worstCrit float64
	bestRank := -1
	seen := 0
	for f := p.main.Back(); f != nil; f = p.main.Prev(f) {
		seen++
		if !f.Pinned() {
			c := f.Crit
			if best == nil || c < bestCrit {
				best, bestCrit, bestRank = f, c, seen-1
			}
			if c > worstCrit {
				worstCrit = c
			}
		}
		if seen >= p.cand && best != nil {
			break
		}
	}
	return best, bestRank, worstCrit
}

// Victim implements buffer.Policy: the FIFO head of the overflow buffer.
// If the overflow buffer is empty (or fully pinned) the main part's SLRU
// victim is evicted directly. On sampled requests the selection is
// recorded as a victim-select span carrying the deciding criterion
// values.
func (p *ASB) Victim(ctx buffer.AccessContext) *buffer.Frame {
	act := p.TraceSlot().Active()
	var span int32
	if act != nil {
		span = act.Start(tracing.KindVictim)
	}
	var v *buffer.Frame
	reason := obs.ReasonASBOverflow
	var worst float64
	rank := 0
	for f := p.over.Front(); f != nil; f = p.over.Next(f) {
		if !f.Pinned() {
			v = f
			break
		}
		rank++
	}
	if v == nil {
		v, rank, worst = p.mainVictim()
		reason = obs.ReasonASBMain
	}
	p.lastRank = rank
	if act != nil {
		sp := act.At(span)
		sp.Reason = reason
		sp.CritKind = p.crit.String()
		sp.Rank = int32(rank)
		sp.CritLose = worst
		sp.Slot = -1
		if v != nil {
			sp.Page = v.Meta.ID
			sp.CritWin = v.Crit
			sp.Slot = v.ArenaIndex()
		} else {
			sp.Err = true // every frame pinned
		}
		act.End(span)
	}
	return v
}

// OnEvict implements buffer.Policy.
func (p *ASB) OnEvict(f *buffer.Frame) {
	reason := obs.ReasonASBMain
	if f.Tag == asbOver {
		p.over.Remove(f)
		reason = obs.ReasonASBOverflow
	} else {
		p.main.Remove(f)
	}
	p.Sink().Eviction(obs.EvictionEvent{
		Page:      f.Meta.ID,
		Reason:    reason,
		Criterion: f.Crit,
		LRURank:   p.lastRank,
	})
	p.lastRank = -1
	p.publishGauges()
}

// Reset implements buffer.Policy: both parts are cleared and the
// candidate-set size returns to its initial value.
func (p *ASB) Reset() {
	p.main.Clear()
	p.over.Clear()
	p.cand = p.initCand
	p.adaptations = 0
	p.lastRank = -1
	p.publishGauges()
}

// OnUpdate implements buffer.Updater: the cached criterion is refreshed
// and the page treated as used. A write to an overflow page promotes it
// back to the main part WITHOUT adapting the candidate size — §4.2's
// adaptation signal is defined for re-*references*, and an update is not
// evidence about which read strategy judged the page correctly.
func (p *ASB) OnUpdate(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	f.Crit = p.crit.Value(f.Meta)
	if f.Tag != asbOver {
		p.main.MoveToFront(f)
		return
	}
	p.over.Remove(f)
	f.Tag = asbMain
	p.main.PushFront(f)
	p.rebalance()
	p.publishGauges()
}
