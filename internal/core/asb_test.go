package core_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/page"
)

func TestASBPanicsOnTinyCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewASB(1) should panic")
		}
	}()
	core.NewASB(1, core.DefaultASBOptions())
}

func TestASBDefaultSizing(t *testing.T) {
	// Paper §4.3: overflow 20% of the buffer, initial candidate 25% of
	// the remaining part, steps of 1% of the remaining part.
	p := core.NewASB(1000, core.DefaultASBOptions())
	if p.OverflowCapacity() != 200 {
		t.Errorf("overflow = %d, want 200", p.OverflowCapacity())
	}
	if p.MainCapacity() != 800 {
		t.Errorf("main = %d, want 800", p.MainCapacity())
	}
	if p.CandidateSize() != 200 {
		t.Errorf("initial candidate = %d, want 200 (25%% of 800)", p.CandidateSize())
	}
	if p.Name() != "ASB" {
		t.Errorf("name = %q", p.Name())
	}
}

func TestASBSmallCapacitySizing(t *testing.T) {
	// Even tiny buffers get a non-empty overflow part and a valid
	// candidate size.
	for capacity := 2; capacity <= 12; capacity++ {
		p := core.NewASB(capacity, core.DefaultASBOptions())
		if p.OverflowCapacity() < 1 {
			t.Errorf("cap %d: overflow %d", capacity, p.OverflowCapacity())
		}
		if p.MainCapacity() < 1 {
			t.Errorf("cap %d: main %d", capacity, p.MainCapacity())
		}
		if p.MainCapacity()+p.OverflowCapacity() != capacity {
			t.Errorf("cap %d: parts do not sum", capacity)
		}
		if c := p.CandidateSize(); c < 1 || c > p.MainCapacity() {
			t.Errorf("cap %d: candidate %d outside [1,%d]", capacity, c, p.MainCapacity())
		}
	}
}

// asbFrame builds a frame with a single square entry of the given area,
// admitted at time now.
func asbFrame(id page.ID, area float64, now uint64) *buffer.Frame {
	p := page.New(id, page.TypeData, 0, 1)
	side := math.Sqrt(area)
	p.Append(page.Entry{MBR: geom.NewRect(0, 0, side, side)})
	p.Recompute()
	return &buffer.Frame{Meta: p.Meta, Page: p, LastUse: now}
}

// driveASB admits frames with areas[i] at times 1..n and returns the
// policy plus the frames (1-indexed by page ID).
func driveASB(capacity int, areas []float64, opts core.ASBOptions) (*core.ASB, []*buffer.Frame) {
	p := core.NewASB(capacity, opts)
	frames := make([]*buffer.Frame, len(areas)+1)
	for i, a := range areas {
		f := asbFrame(page.ID(i+1), a, uint64(i+1))
		frames[i+1] = f
		p.OnAdmit(f, uint64(i+1), buffer.AccessContext{QueryID: uint64(i + 1)})
	}
	return p, frames
}

// The direct-drive adaptation tests use capacity 10 → main 8, overflow 2,
// candidate 2, step 1. Admitting ten pages demotes two into the overflow
// buffer: at admit #9 the candidate set is {page1, page2} and at admit #10
// it is {page1 or page3, ...}, so the page areas below choose the
// demotion order deliberately.

func TestASBAdaptIncreasesTowardSpatial(t *testing.T) {
	// Capacity 15 → main 12, overflow 3, candidate 3. The three demoted
	// pages are page2 (area 3), page3 (area 4) and page1 (area 5).
	// Re-request page1: both other overflow pages are more recently used
	// (better LRU) and spatially worse — LRU misjudged the re-referenced
	// page by a clear margin, so the candidate set must GROW (toward the
	// spatial strategy).
	areas := []float64{5, 3, 4, 10, 10, 10, 10, 10, 10, 10, 10, 10, 10, 10, 10}
	p, frames := driveASB(15, areas, core.DefaultASBOptions())
	if p.OverflowLen() != 3 {
		t.Fatalf("overflow = %d, want 3", p.OverflowLen())
	}
	before := p.CandidateSize()
	p.OnHit(frames[1], 16, buffer.AccessContext{QueryID: 16})
	if got := p.CandidateSize(); got != before+1 {
		t.Errorf("candidate = %d, want %d (increase)", got, before+1)
	}
	if p.Adaptations() != 1 {
		t.Errorf("adaptations = %d, want 1", p.Adaptations())
	}
}

func TestASBAdaptIncreaseRequiresMargin(t *testing.T) {
	// With only one other overflow page, a 1-page better-LRU majority is
	// within the sampling-bias margin: the candidate size must NOT grow.
	areas := []float64{5, 3, 10, 10, 10, 10, 10, 10, 10, 10}
	p, frames := driveASB(10, areas, core.DefaultASBOptions())
	if p.OverflowLen() != 2 {
		t.Fatalf("overflow = %d, want 2", p.OverflowLen())
	}
	before := p.CandidateSize()
	p.OnHit(frames[1], 11, buffer.AccessContext{QueryID: 11})
	if got := p.CandidateSize(); got != before {
		t.Errorf("candidate = %d, want %d (within margin, unchanged)", got, before)
	}
	if p.Adaptations() != 1 {
		t.Errorf("adaptations = %d, want 1 (event still recorded)", p.Adaptations())
	}
}

func TestASBAdaptDecreasesTowardLRU(t *testing.T) {
	// Re-request page2 instead: it was demoted *because of* its small
	// area while page1 (better spatial criterion, older use) stayed
	// spatially preferred. The spatial strategy misjudged the
	// re-referenced page, so the candidate set must SHRINK (toward LRU).
	// Shrinking moves at TWICE the base step (robustness bias, see
	// DESIGN.md §5a); here 2·step from 2 clamps at the floor of 1.
	areas := []float64{5, 3, 10, 10, 10, 10, 10, 10, 10, 10}
	p, frames := driveASB(10, areas, core.DefaultASBOptions())
	p.OnHit(frames[2], 11, buffer.AccessContext{QueryID: 11})
	if got := p.CandidateSize(); got != 1 {
		t.Errorf("candidate = %d, want 1 (2·step decrease, clamped)", got)
	}
}

func TestASBAdaptBalancedKeepsSize(t *testing.T) {
	// Overflow: page1 (area 5, older), page2 (area 7, newer). Hitting
	// page1 sees one better-spatial page and one better-LRU page → equal
	// counts → candidate size unchanged (§4.2 case 3).
	areas := []float64{5, 7, 10, 10, 10, 10, 10, 10, 10, 10}
	p, frames := driveASB(10, areas, core.DefaultASBOptions())
	if p.OverflowLen() != 2 {
		t.Fatalf("overflow = %d, want 2", p.OverflowLen())
	}
	before := p.CandidateSize()
	p.OnHit(frames[1], 11, buffer.AccessContext{QueryID: 11})
	if got := p.CandidateSize(); got != before {
		t.Errorf("candidate = %d, want %d (unchanged)", got, before)
	}
	if p.Adaptations() != 1 {
		t.Error("balanced case still counts as an adaptation event")
	}
}

func TestASBCandidateClamped(t *testing.T) {
	// Repeated shrink signals must never push the candidate size below 1.
	opts := core.DefaultASBOptions()
	opts.StepFrac = 1.0 // one step spans the whole main part
	areas := []float64{5, 3, 10, 10, 10, 10, 10, 10, 10, 10}
	p, frames := driveASB(10, areas, opts)
	for i := 0; i < 5; i++ {
		p.OnHit(frames[2], uint64(20+i), buffer.AccessContext{QueryID: uint64(20 + i)})
		if c := p.CandidateSize(); c < 1 || c > p.MainCapacity() {
			t.Fatalf("candidate %d out of range", c)
		}
		// Push it back out so the next hit adapts again.
		p.OnEvict(frames[2])
		p.OnAdmit(frames[2], uint64(30+i), buffer.AccessContext{QueryID: uint64(30 + i)})
	}
}

func TestASBAdaptEvents(t *testing.T) {
	// An overflow hit emits one OverflowPromotion (the §4.2 signal) and
	// one Adapt event through the attached sink.
	rec := obs.NewTrajectoryRecorder()
	var counters obs.Counters
	areas := []float64{5, 3, 10, 10, 10, 10, 10, 10, 10, 10}
	p, frames := driveASB(10, areas, core.DefaultASBOptions())
	p.SetSink(obs.Tee(rec, &counters))
	p.OnHit(frames[1], 11, buffer.AccessContext{QueryID: 11})
	if rec.Len() != 1 || rec.Cand[0] != p.CandidateSize() {
		t.Errorf("recorder saw %v, candidate = %d", rec.Cand, p.CandidateSize())
	}
	s := counters.Snapshot()
	if s.Promotions != 1 || s.Adaptations != 1 {
		t.Errorf("counters = %+v, want 1 promotion and 1 adaptation", s)
	}
	if s.Candidate != uint64(p.CandidateSize()) {
		t.Errorf("counter candidate = %d, policy = %d", s.Candidate, p.CandidateSize())
	}
}

func TestASBFreezeCandPinsSize(t *testing.T) {
	// FreezeCand: the signal is still emitted but the candidate size
	// never moves.
	opts := core.DefaultASBOptions()
	opts.FreezeCand = true
	var counters obs.Counters
	areas := []float64{5, 3, 10, 10, 10, 10, 10, 10, 10, 10}
	p, frames := driveASB(10, areas, opts)
	p.SetSink(&counters)
	before := p.CandidateSize()
	p.OnHit(frames[1], 11, buffer.AccessContext{QueryID: 11})
	if p.CandidateSize() != before {
		t.Errorf("frozen candidate moved: %d → %d", before, p.CandidateSize())
	}
	s := counters.Snapshot()
	if s.Promotions != 1 {
		t.Errorf("promotions = %d, want 1 (signal still emitted)", s.Promotions)
	}
	if s.Adaptations != 0 {
		t.Errorf("adaptations = %d, want 0 (frozen)", s.Adaptations)
	}
	if p.Adaptations() != 1 {
		t.Errorf("Adaptations() = %d, want 1 (overflow hits still counted)", p.Adaptations())
	}
}

func TestASBVictimIsOverflowFIFOHead(t *testing.T) {
	areas := []float64{5, 3, 10, 10, 10, 10, 10, 10, 10, 10}
	p, frames := driveASB(10, areas, core.DefaultASBOptions())
	// Overflow FIFO: page2 (demoted first), page1. Victim = page2.
	v := p.Victim(buffer.AccessContext{})
	if v != frames[2] {
		t.Errorf("victim = page %d, want 2", v.Meta.ID)
	}
	p.OnEvict(v)
	if v2 := p.Victim(buffer.AccessContext{}); v2 != frames[1] {
		t.Errorf("second victim = page %d, want 1", v2.Meta.ID)
	}
}

func TestASBVictimFallsBackToMainWhenOverflowEmpty(t *testing.T) {
	// Before any demotion the overflow buffer is empty; eviction must
	// still work (SLRU victim from the main part).
	areas := []float64{5, 3, 10}
	p, _ := driveASB(10, areas, core.DefaultASBOptions())
	if p.OverflowLen() != 0 {
		t.Fatalf("overflow = %d, want 0", p.OverflowLen())
	}
	v := p.Victim(buffer.AccessContext{})
	if v == nil {
		t.Fatal("victim = nil")
	}
	// Candidate set is 2 (LRU end = pages 1,2); the smaller area wins.
	if v.Meta.ID != 2 {
		t.Errorf("victim = page %d, want 2", v.Meta.ID)
	}
}

func TestASBMainHitRefreshesRecency(t *testing.T) {
	// A hit in the main part must not adapt and must refresh LRU order.
	areas := []float64{5, 3, 10, 10}
	p, frames := driveASB(10, areas, core.DefaultASBOptions())
	before := p.CandidateSize()
	p.OnHit(frames[1], 20, buffer.AccessContext{QueryID: 20})
	frames[1].LastUse = 20
	if p.CandidateSize() != before || p.Adaptations() != 0 {
		t.Error("main-part hit must not adapt")
	}
	// Page 1 is now MRU; the demotion candidate set is {2,3} → page 2.
	if v := p.Victim(buffer.AccessContext{}); v.Meta.ID != 2 {
		t.Errorf("victim = page %d, want 2", v.Meta.ID)
	}
}

func TestASBReset(t *testing.T) {
	areas := []float64{5, 3, 10, 10, 10, 10, 10, 10, 10, 10}
	p, frames := driveASB(10, areas, core.DefaultASBOptions())
	p.OnHit(frames[1], 11, buffer.AccessContext{QueryID: 11}) // adapts
	p.Reset()
	if p.CandidateSize() != 2 {
		t.Errorf("candidate after reset = %d, want initial 2", p.CandidateSize())
	}
	if p.OverflowLen() != 0 || p.Adaptations() != 0 {
		t.Error("reset left state behind")
	}
}

func TestASBManagerIntegrationInvariants(t *testing.T) {
	// Random churn through a real manager: sizes stay within bounds, the
	// buffer never exceeds capacity, and overflow hits are buffer hits
	// (they cost no physical read).
	rng := rand.New(rand.NewSource(77))
	const numPages = 60
	specs := make([]pageSpec, numPages)
	for i := range specs {
		specs[i] = dataPage(float64(rng.Intn(200) + 1))
	}
	s := buildStore(t, specs)
	pol := core.NewASB(10, core.DefaultASBOptions())
	m := mustManager(t, s, pol, 10)

	for i := 0; i < 5000; i++ {
		id := page.ID(rng.Intn(numPages) + 1)
		if _, err := m.Get(id, buffer.AccessContext{QueryID: uint64(i / 3)}); err != nil {
			t.Fatal(err)
		}
		if m.Len() > 10 {
			t.Fatalf("buffer overflow: %d frames", m.Len())
		}
		if p := pol.OverflowLen(); p > pol.OverflowCapacity() {
			t.Fatalf("overflow part overflow: %d > %d", p, pol.OverflowCapacity())
		}
		if c := pol.CandidateSize(); c < 1 || c > pol.MainCapacity() {
			t.Fatalf("candidate size %d out of range", c)
		}
	}
	st := m.Stats()
	if st.Hits+st.Misses != st.Requests {
		t.Errorf("stats inconsistent: %+v", st)
	}
	// Physical reads equal logical misses: overflow hits cost nothing.
	if got := s.Stats().Reads; got != st.Misses {
		t.Errorf("physical reads %d != misses %d", got, st.Misses)
	}
	if pol.Adaptations() == 0 {
		t.Error("expected at least one adaptation under churn")
	}
}

func TestASBMatchesSLRUWithoutOverflowHits(t *testing.T) {
	// When every page is requested exactly once (no overflow hits, no
	// adaptation), ASB evicts in demotion order, which for a scan
	// workload is the same set of misses as any policy: all of them.
	s := buildStore(t, uniformPages(30, 1))
	var seq []access
	for i := 1; i <= 30; i++ {
		seq = append(seq, q(page.ID(i), uint64(i)))
	}
	misses := run(t, s, core.NewASB(10, core.DefaultASBOptions()), 10, seq)
	if len(misses) != 30 {
		t.Errorf("misses = %d, want 30", len(misses))
	}
}

func TestASBLiveGauges(t *testing.T) {
	// The atomic gauge mirrors must track cand and the overflow
	// occupancy through admissions, demotions, overflow hits and Reset.
	s := buildStore(t, uniformPages(40, 1))
	pol := core.NewASB(10, core.DefaultASBOptions())
	if got, want := pol.LiveCandidateSize(), pol.CandidateSize(); got != want {
		t.Fatalf("initial live candidate = %d, want %d", got, want)
	}
	if pol.LiveOverflowLen() != 0 {
		t.Fatalf("initial live overflow = %d, want 0", pol.LiveOverflowLen())
	}
	m, err := buffer.NewManager(s, pol, 10)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		id := page.ID(rng.Intn(40) + 1)
		if _, err := m.Get(id, buffer.AccessContext{QueryID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
		if got, want := pol.LiveCandidateSize(), pol.CandidateSize(); got != want {
			t.Fatalf("step %d: live candidate %d != %d", i, got, want)
		}
		if got, want := pol.LiveOverflowLen(), pol.OverflowLen(); got != want {
			t.Fatalf("step %d: live overflow %d != %d", i, got, want)
		}
	}
	if pol.LiveOverflowLen() == 0 {
		t.Error("expected a populated overflow buffer under churn")
	}
	pol.Reset()
	if pol.LiveOverflowLen() != 0 || pol.LiveCandidateSize() != pol.CandidateSize() {
		t.Errorf("after Reset: live gauges %d/%d", pol.LiveCandidateSize(), pol.LiveOverflowLen())
	}
}
