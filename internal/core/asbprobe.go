package core

import (
	"repro/internal/obs"
	"repro/internal/page"
)

// ASBProbe is a diagnostic ASB variant with a FIXED candidate size that
// records the raw §4.2 adaptation signals instead of acting on them. It
// is used by calibration tooling to inspect the signal distribution
// under a controlled candidate size.
//
// The probe is built on the observability layer rather than as a policy
// fork: the underlying ASB runs with FreezeCand (signals computed and
// emitted, candidate size pinned) and the probe subscribes to its
// OverflowPromotion events.
type ASBProbe struct {
	*ASB
	rec *signalRecorder
}

// signalRecorder tallies the adaptation signals from the event stream.
type signalRecorder struct {
	obs.NopSink
	up, down, eq int
	// diffs records betterLRU − betterSpatial per overflow hit.
	diffs []int
}

// OverflowPromotion implements obs.Sink.
func (r *signalRecorder) OverflowPromotion(e obs.OverflowPromotionEvent) {
	switch {
	case e.BetterSpatial > e.BetterLRU:
		r.down++
	case e.BetterLRU > e.BetterSpatial:
		r.up++
	default:
		r.eq++
	}
	r.diffs = append(r.diffs, e.BetterLRU-e.BetterSpatial)
}

// NewASBProbe builds a probe with the candidate set pinned to candFrac of
// the main part.
func NewASBProbe(capacity int, crit page.Criterion, candFrac float64) *ASBProbe {
	opts := DefaultASBOptions()
	opts.Criterion = crit
	opts.InitialCandFrac = candFrac
	opts.FreezeCand = true
	p := &ASBProbe{ASB: NewASB(capacity, opts), rec: &signalRecorder{}}
	p.ASB.SetSink(p.rec)
	return p
}

// SetSink implements obs.SinkSetter: an externally attached sink (e.g.
// via buffer.Manager.SetSink) observes the ASB's events alongside the
// probe's own recorder.
func (p *ASBProbe) SetSink(s obs.Sink) {
	p.ASB.SetSink(obs.Tee(p.rec, s))
}

// Signals returns the recorded (grow, shrink, equal) event counts.
func (p *ASBProbe) Signals() (up, down, eq int) { return p.rec.up, p.rec.down, p.rec.eq }

// Diffs returns betterLRU − betterSpatial per overflow hit, in event
// order.
func (p *ASBProbe) Diffs() []int { return p.rec.diffs }
