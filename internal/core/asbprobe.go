package core

import (
	"repro/internal/buffer"
	"repro/internal/page"
)

// ASBProbe is a diagnostic ASB variant with a FIXED candidate size that
// records the raw adaptation signals instead of acting on them. It is used
// by calibration tooling to inspect the §4.2 signal distribution under a
// controlled candidate size.
type ASBProbe struct {
	*ASB
	up, down, eq int
	// Diffs records betterLRU − betterSpatial per overflow hit.
	Diffs []int
}

// NewASBProbe builds a probe with the candidate set pinned to candFrac of
// the main part.
func NewASBProbe(capacity int, crit page.Criterion, candFrac float64) *ASBProbe {
	p := &ASBProbe{}
	opts := DefaultASBOptions()
	opts.Criterion = crit
	opts.InitialCandFrac = candFrac
	opts.OnAdapt = func(int) {}
	p.ASB = NewASB(capacity, opts)
	return p
}

// OnHit intercepts overflow hits to record the raw signal, then restores
// the pinned candidate size.
func (p *ASBProbe) OnHit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	aux := f.Aux().(*asbAux)
	pinned := p.cand
	wasOver := aux.inOver
	if wasOver {
		betterSpatial, betterLRU := 0, 0
		for e := p.over.Front(); e != nil; e = e.Next() {
			q := e.Value.(*buffer.Frame)
			if q == f {
				continue
			}
			if q.Aux().(*asbAux).crit > aux.crit {
				betterSpatial++
			}
			if q.LastUse > f.LastUse {
				betterLRU++
			}
		}
		switch {
		case betterSpatial > betterLRU:
			p.down++
		case betterLRU > betterSpatial:
			p.up++
		default:
			p.eq++
		}
		p.Diffs = append(p.Diffs, betterLRU-betterSpatial)
	}
	p.ASB.OnHit(f, now, ctx)
	p.cand = pinned
}

// Signals returns the recorded (grow, shrink, equal) event counts.
func (p *ASBProbe) Signals() (up, down, eq int) { return p.up, p.down, p.eq }
