package core_test

import (
	"testing"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/page"
)

// driveProbe admits frames through an ASBProbe exactly as driveASB does
// for a plain ASB.
func driveProbe(capacity int, areas []float64, candFrac float64) (*core.ASBProbe, []*buffer.Frame) {
	p := core.NewASBProbe(capacity, page.CritA, candFrac)
	frames := make([]*buffer.Frame, len(areas)+1)
	for i, a := range areas {
		f := asbFrame(page.ID(i+1), a, uint64(i+1))
		frames[i+1] = f
		p.OnAdmit(f, uint64(i+1), buffer.AccessContext{QueryID: uint64(i + 1)})
	}
	return p, frames
}

func TestASBProbeRecordsSignalsWithoutAdapting(t *testing.T) {
	areas := []float64{5, 3, 10, 10, 10, 10, 10, 10, 10, 10}
	p, frames := driveProbe(10, areas, 0.25)
	pinned := p.CandidateSize()

	// Overflow hit: pages 1 (area 5) and 2 (area 3) were demoted earlier.
	// Hitting page 1 computes the §4.2 signal against the other overflow
	// pages; the probe must record exactly one event and keep the
	// candidate size pinned regardless of the signal's direction.
	p.OnHit(frames[1], 11, buffer.AccessContext{QueryID: 11})
	if p.CandidateSize() != pinned {
		t.Errorf("probe candidate moved: %d → %d", pinned, p.CandidateSize())
	}
	up, down, eq := p.Signals()
	if up+down+eq != 1 {
		t.Errorf("signals = (%d,%d,%d), want exactly one event", up, down, eq)
	}
	if diffs := p.Diffs(); len(diffs) != 1 {
		t.Errorf("diffs = %v, want one entry", diffs)
	}

	// Drive a second overflow hit after re-demoting the page.
	p.OnEvict(frames[1])
	p.OnAdmit(frames[1], 12, buffer.AccessContext{QueryID: 12})
	p.OnHit(frames[2], 13, buffer.AccessContext{QueryID: 13})
	up, down, eq = p.Signals()
	if up+down+eq != 2 {
		t.Errorf("signals = (%d,%d,%d) after second hit, want 2 events", up, down, eq)
	}
	if p.CandidateSize() != pinned {
		t.Errorf("probe candidate moved after second hit: %d", p.CandidateSize())
	}
}

func TestASBProbeExternalSinkObservesEvents(t *testing.T) {
	// Attaching an external sink (as buffer.Manager.SetSink would) must
	// not disconnect the probe's own recorder.
	areas := []float64{5, 3, 10, 10, 10, 10, 10, 10, 10, 10}
	p, frames := driveProbe(10, areas, 0.25)
	var counters obs.Counters
	p.SetSink(&counters)
	p.OnHit(frames[1], 11, buffer.AccessContext{QueryID: 11})
	if got := counters.Snapshot().Promotions; got != 1 {
		t.Errorf("external sink promotions = %d, want 1", got)
	}
	up, down, eq := p.Signals()
	if up+down+eq != 1 {
		t.Errorf("probe recorder lost the event: (%d,%d,%d)", up, down, eq)
	}
}
