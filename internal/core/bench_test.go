package core_test

import (
	"math/rand"
	"testing"

	"repro/internal/buffer"
	"repro/internal/core"
)

// benchAccesses builds a skewed synthetic reference string over pages of
// mixed areas.
func benchAccesses(numPages, n int) ([]access, []pageSpec) {
	rng := rand.New(rand.NewSource(1))
	specs := make([]pageSpec, numPages)
	for i := range specs {
		specs[i] = dataPage(float64(rng.Intn(500) + 1))
	}
	seq := make([]access, n)
	for i := range seq {
		var id int
		if rng.Intn(2) == 0 {
			id = rng.Intn(numPages/10) + 1 // hot subset
		} else {
			id = rng.Intn(numPages) + 1
		}
		seq[i] = q(pageID(id), uint64(i/4))
	}
	return seq, specs
}

// BenchmarkPolicyOps measures per-request overhead of each policy at a
// 256-frame buffer on a skewed reference string.
func BenchmarkPolicyOps(b *testing.B) {
	const numPages = 2048
	seq, specs := benchAccesses(numPages, 1<<16)
	for _, f := range core.StandardFactories() {
		f := f
		b.Run(f.Name, func(b *testing.B) {
			s := buildStoreB(b, specs)
			m, err := buffer.NewManager(s, f.New(256), 256)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a := seq[i%len(seq)]
				if _, err := m.Get(a.id, buffer.AccessContext{QueryID: a.query}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
