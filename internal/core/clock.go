package core

import (
	"container/ring"

	"repro/internal/buffer"
)

// Clock is the classic second-chance (CLOCK) approximation of LRU: frames
// sit on a circular list with a reference bit; the hand sweeps, clearing
// bits, and evicts the first frame whose bit is already clear. It is the
// policy most disk-based DBMS actually ship and serves as an additional
// baseline beyond the paper's set.
type Clock struct {
	hand *ring.Ring // current clock hand; nil when empty
	size int
}

// clockAux is the per-frame state of a Clock policy.
type clockAux struct {
	node *ring.Ring
	ref  bool
}

// NewClock returns a CLOCK policy.
func NewClock() *Clock { return &Clock{} }

// Name implements buffer.Policy.
func (p *Clock) Name() string { return "CLOCK" }

// OnAdmit implements buffer.Policy: the frame is inserted behind the hand
// with its reference bit CLEAR — the bit is earned by a re-reference, so
// one-shot pages are evicted on the first sweep (the second-chance
// variant that approximates LRU most closely).
func (p *Clock) OnAdmit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	n := ring.New(1)
	n.Value = f
	f.SetAux(&clockAux{node: n, ref: false})
	if p.hand == nil {
		p.hand = n
	} else {
		p.hand.Prev().Link(n)
	}
	p.size++
}

// OnHit implements buffer.Policy: set the reference bit.
func (p *Clock) OnHit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	f.Aux().(*clockAux).ref = true
}

// Victim implements buffer.Policy: sweep, clearing reference bits, until
// an unpinned frame with a clear bit is found.
func (p *Clock) Victim(ctx buffer.AccessContext) *buffer.Frame {
	if p.hand == nil {
		return nil
	}
	// Two full sweeps suffice: the first clears bits, the second must
	// find a victim unless everything is pinned.
	for i := 0; i < 2*p.size; i++ {
		f := p.hand.Value.(*buffer.Frame)
		aux := f.Aux().(*clockAux)
		if !f.Pinned() && !aux.ref {
			return f
		}
		if !f.Pinned() {
			aux.ref = false
		}
		p.hand = p.hand.Next()
	}
	return nil
}

// OnEvict implements buffer.Policy.
func (p *Clock) OnEvict(f *buffer.Frame) {
	aux := f.Aux().(*clockAux)
	if p.size == 1 {
		p.hand = nil
	} else {
		if p.hand == aux.node {
			p.hand = p.hand.Next()
		}
		aux.node.Prev().Unlink(1)
	}
	p.size--
	f.SetAux(nil)
}

// Reset implements buffer.Policy.
func (p *Clock) Reset() {
	p.hand = nil
	p.size = 0
}

// PinLevels is the buffer of Leutenegger & Lopez (ICDE 1998), which the
// paper cites as the special case its LRU-P generalizes: pages at tree
// level ≥ MinLevel are pinned in the buffer (never evicted as long as an
// alternative exists); the rest is plain LRU.
type PinLevels struct {
	// MinLevel is the lowest tree level that is pinned (e.g. 1 pins all
	// directory levels of an R-tree).
	MinLevel int
	lru      *LRU
}

// NewPinLevels returns a policy pinning pages at level ≥ minLevel.
func NewPinLevels(minLevel int) *PinLevels {
	return &PinLevels{MinLevel: minLevel, lru: NewLRU()}
}

// Name implements buffer.Policy.
func (p *PinLevels) Name() string { return "PIN" }

// OnAdmit implements buffer.Policy.
func (p *PinLevels) OnAdmit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	p.lru.OnAdmit(f, now, ctx)
}

// OnHit implements buffer.Policy.
func (p *PinLevels) OnHit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	p.lru.OnHit(f, now, ctx)
}

// pinned reports whether the frame belongs to a pinned level.
func (p *PinLevels) pinnedLevel(f *buffer.Frame) bool {
	return f.Meta.Level >= p.MinLevel
}

// Victim implements buffer.Policy: the LRU frame among non-pinned levels;
// if only pinned-level frames remain, the LRU of those (the buffer must
// stay functional).
func (p *PinLevels) Victim(ctx buffer.AccessContext) *buffer.Frame {
	var fallback *buffer.Frame
	for e := p.lru.order.Back(); e != nil; e = e.Prev() {
		f := e.Value.(*buffer.Frame)
		if f.Pinned() {
			continue
		}
		if !p.pinnedLevel(f) {
			return f
		}
		if fallback == nil {
			fallback = f
		}
	}
	return fallback
}

// OnEvict implements buffer.Policy.
func (p *PinLevels) OnEvict(f *buffer.Frame) { p.lru.OnEvict(f) }

// Reset implements buffer.Policy.
func (p *PinLevels) Reset() { p.lru.Reset() }
