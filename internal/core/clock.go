package core

import (
	"repro/internal/buffer"
	"repro/internal/core/intrusive"
)

// Clock is the classic second-chance (CLOCK) approximation of LRU: frames
// sit on a circular list with a reference bit; the hand sweeps, clearing
// bits, and evicts the first frame whose bit is already clear. It is the
// policy most disk-based DBMS actually ship and serves as an additional
// baseline beyond the paper's set.
//
// The ring is the intrusive list closed logically: the hand is a frame
// pointer and advancing past the list tail wraps to its head. The
// reference bit lives in Frame.Tag, so admission, hits and sweeps
// allocate nothing.
type Clock struct {
	// ring holds the frames in hand order; traversal wraps front↔back.
	ring intrusive.List[*buffer.Frame]
	// hand is the current clock hand; nil when the ring is empty.
	hand *buffer.Frame
}

// NewClock returns a CLOCK policy.
func NewClock() *Clock { return &Clock{ring: intrusive.NewList(frameHooks)} }

// Name implements buffer.Policy.
func (p *Clock) Name() string { return "CLOCK" }

// next advances one position around the ring, wrapping at the end.
func (p *Clock) next(f *buffer.Frame) *buffer.Frame {
	if n := p.ring.Next(f); n != nil {
		return n
	}
	return p.ring.Front()
}

// OnAdmit implements buffer.Policy: the frame is inserted behind the hand
// with its reference bit CLEAR — the bit is earned by a re-reference, so
// one-shot pages are evicted on the first sweep (the second-chance
// variant that approximates LRU most closely).
func (p *Clock) OnAdmit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	f.Tag = 0
	if p.hand == nil {
		p.ring.PushBack(f)
		p.hand = f
		return
	}
	// InsertBefore the hand = behind it in sweep order (the hand reaches
	// the newcomer last).
	p.ring.InsertBefore(f, p.hand)
}

// OnHit implements buffer.Policy: set the reference bit.
func (p *Clock) OnHit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	f.Tag = 1
}

// Victim implements buffer.Policy: sweep, clearing reference bits, until
// an unpinned frame with a clear bit is found.
func (p *Clock) Victim(ctx buffer.AccessContext) *buffer.Frame {
	if p.hand == nil {
		return nil
	}
	// Two full sweeps suffice: the first clears bits, the second must
	// find a victim unless everything is pinned.
	for i := 0; i < 2*p.ring.Len(); i++ {
		f := p.hand
		if !f.Pinned() {
			if f.Tag == 0 {
				return f
			}
			f.Tag = 0
		}
		p.hand = p.next(f)
	}
	return nil
}

// OnEvict implements buffer.Policy.
func (p *Clock) OnEvict(f *buffer.Frame) {
	if p.ring.Len() == 1 {
		p.hand = nil
	} else if p.hand == f {
		p.hand = p.next(f)
	}
	p.ring.Remove(f)
}

// Reset implements buffer.Policy.
func (p *Clock) Reset() {
	p.ring.Clear()
	p.hand = nil
}

// PinLevels is the buffer of Leutenegger & Lopez (ICDE 1998), which the
// paper cites as the special case its LRU-P generalizes: pages at tree
// level ≥ MinLevel are pinned in the buffer (never evicted as long as an
// alternative exists); the rest is plain LRU.
type PinLevels struct {
	// MinLevel is the lowest tree level that is pinned (e.g. 1 pins all
	// directory levels of an R-tree).
	MinLevel int
	lru      *LRU
}

// NewPinLevels returns a policy pinning pages at level ≥ minLevel.
func NewPinLevels(minLevel int) *PinLevels {
	return &PinLevels{MinLevel: minLevel, lru: NewLRU()}
}

// Name implements buffer.Policy.
func (p *PinLevels) Name() string { return "PIN" }

// OnAdmit implements buffer.Policy.
func (p *PinLevels) OnAdmit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	p.lru.OnAdmit(f, now, ctx)
}

// OnHit implements buffer.Policy.
func (p *PinLevels) OnHit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	p.lru.OnHit(f, now, ctx)
}

// pinned reports whether the frame belongs to a pinned level.
func (p *PinLevels) pinnedLevel(f *buffer.Frame) bool {
	return f.Meta.Level >= p.MinLevel
}

// Victim implements buffer.Policy: the LRU frame among non-pinned levels;
// if only pinned-level frames remain, the LRU of those (the buffer must
// stay functional).
func (p *PinLevels) Victim(ctx buffer.AccessContext) *buffer.Frame {
	var fallback *buffer.Frame
	for f := p.lru.order.Back(); f != nil; f = p.lru.order.Prev(f) {
		if f.Pinned() {
			continue
		}
		if !p.pinnedLevel(f) {
			return f
		}
		if fallback == nil {
			fallback = f
		}
	}
	return fallback
}

// OnEvict implements buffer.Policy.
func (p *PinLevels) OnEvict(f *buffer.Frame) { p.lru.OnEvict(f) }

// Reset implements buffer.Policy.
func (p *PinLevels) Reset() { p.lru.Reset() }
