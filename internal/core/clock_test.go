package core_test

import (
	"math/rand"
	"testing"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/page"
)

func TestClockSecondChance(t *testing.T) {
	// Pages 1,2 admitted; page 1 hit (ref bit set). Admitting page 3
	// sweeps: page 1 gets its second chance (bit cleared), page 2 is
	// evicted.
	s := buildStore(t, uniformPages(3, 1))
	m := mustManager(t, s, core.NewClock(), 2)
	runOn(t, m, seqOf(1, 2))
	runOn(t, m, []access{q(1, 5)})
	runOn(t, m, []access{q(3, 6)})
	if m.Contains(2) || !resident(m, 1, 3) {
		t.Errorf("resident = %v, want [1 3]", m.ResidentIDs())
	}
}

func TestClockDegradesToFIFOWithoutHits(t *testing.T) {
	// Without hits, CLOCK evicts in admission order.
	s := buildStore(t, uniformPages(4, 1))
	m := mustManager(t, s, core.NewClock(), 2)
	misses := runOn(t, m, seqOf(1, 2, 3, 4))
	if len(misses) != 4 {
		t.Fatalf("misses = %v", misses)
	}
	if !resident(m, 3, 4) {
		t.Errorf("resident = %v, want [3 4]", m.ResidentIDs())
	}
}

func TestClockApproximatesLRU(t *testing.T) {
	// On a random workload CLOCK should land within a reasonable factor
	// of LRU's miss count (it is its approximation).
	rng := rand.New(rand.NewSource(51))
	specs := uniformPages(60, 1)
	var seq []access
	for i := 0; i < 4000; i++ {
		id := page.ID(rng.Intn(20) + 1)
		if rng.Intn(3) == 0 {
			id = page.ID(rng.Intn(60) + 1)
		}
		seq = append(seq, q(id, uint64(i)))
	}
	sA := buildStore(t, specs)
	sB := buildStore(t, specs)
	lru := len(run(t, sA, core.NewLRU(), 10, seq))
	clk := len(run(t, sB, core.NewClock(), 10, seq))
	if float64(clk) > 1.25*float64(lru) || float64(clk) < 0.75*float64(lru) {
		t.Errorf("CLOCK misses %d far from LRU %d", clk, lru)
	}
}

func TestClockChurnStaysConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	s := buildStore(t, uniformPages(50, 1))
	m := mustManager(t, s, core.NewClock(), 7)
	for i := 0; i < 5000; i++ {
		id := page.ID(rng.Intn(50) + 1)
		if _, err := m.Get(id, buffer.AccessContext{QueryID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
		if m.Len() > 7 {
			t.Fatalf("overflow at step %d", i)
		}
	}
	if err := m.Clear(); err != nil {
		t.Fatal(err)
	}
	if misses := runOn(t, m, seqOf(1, 2)); len(misses) != 2 {
		t.Error("post-reset should cold-miss")
	}
}

func TestClockAllPinned(t *testing.T) {
	s := buildStore(t, uniformPages(3, 1))
	m := mustManager(t, s, core.NewClock(), 2)
	ctx := buffer.AccessContext{}
	if _, err := m.Fix(1, ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Fix(2, ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get(3, ctx); err == nil {
		t.Error("all-pinned should fail")
	}
}

func TestPinLevelsKeepsDirectory(t *testing.T) {
	// Levels: page1 root (2), page2 mid (1), pages 3-5 leaves (0).
	specs := []pageSpec{
		{typ: page.TypeDirectory, level: 2, area: 1},
		{typ: page.TypeDirectory, level: 1, area: 1},
		dataPage(1), dataPage(1), dataPage(1),
	}
	s := buildStore(t, specs)
	m := mustManager(t, s, core.NewPinLevels(1), 3)
	runOn(t, m, seqOf(1, 2)) // directory in, oldest
	runOn(t, m, seqOf(3, 4, 5))
	// Leaves churn; directory pages stay pinned despite being older.
	if !resident(m, 1, 2) {
		t.Errorf("directory evicted: %v", m.ResidentIDs())
	}
}

func TestPinLevelsFallbackWhenOnlyPinnedRemain(t *testing.T) {
	// A buffer full of pinned-level pages must still evict.
	specs := []pageSpec{
		{typ: page.TypeDirectory, level: 1, area: 1},
		{typ: page.TypeDirectory, level: 1, area: 1},
		{typ: page.TypeDirectory, level: 1, area: 1},
	}
	s := buildStore(t, specs)
	m := mustManager(t, s, core.NewPinLevels(1), 2)
	misses := runOn(t, m, seqOf(1, 2, 3))
	if len(misses) != 3 || m.Len() != 2 {
		t.Errorf("misses %v, len %d", misses, m.Len())
	}
	if core.NewPinLevels(1).Name() != "PIN" {
		t.Error("name")
	}
}
