package core_test

import (
	"math/rand"
	"testing"

	"repro/internal/buffer"
	"repro/internal/page"
)

// TestPolicyConformance replays a long random reference string through
// every standard policy and checks the contracts all of them share:
// capacity is respected, hits+misses = requests, a resident page is always
// a hit, physical reads equal misses, and Clear returns to a cold state.
func TestPolicyConformance(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const numPages = 80
	specs := make([]pageSpec, numPages)
	for i := range specs {
		typ := page.TypeData
		level := 0
		switch i % 10 {
		case 0:
			typ, level = page.TypeDirectory, 1+i%3
		case 1:
			typ = page.TypeObject
		}
		specs[i] = pageSpec{typ: typ, level: level, area: float64(rng.Intn(500) + 1)}
	}

	// One shared reference string with mixed locality: hot set + scans.
	var seq []access
	queryID := uint64(0)
	for i := 0; i < 4000; i++ {
		if i%7 == 0 {
			queryID++
		}
		var id page.ID
		switch {
		case i%5 < 3: // hot subset
			id = page.ID(rng.Intn(12) + 1)
		default:
			id = page.ID(rng.Intn(numPages) + 1)
		}
		seq = append(seq, access{id: id, query: queryID})
	}

	for _, capacity := range []int{3, 10, 33} {
		for _, pol := range allStandardPolicies(capacity) {
			t.Run(pol.Name()+"/cap="+itoa(capacity), func(t *testing.T) {
				s := buildStore(t, specs)
				m := mustManager(t, s, pol, capacity)
				for _, a := range seq {
					wasResident := m.Contains(a.id)
					hitsBefore := m.Stats().Hits
					if _, err := m.Get(a.id, buffer.AccessContext{QueryID: a.query}); err != nil {
						t.Fatalf("get %d: %v", a.id, err)
					}
					if wasResident && m.Stats().Hits != hitsBefore+1 {
						t.Fatalf("resident page %d did not hit", a.id)
					}
					if !wasResident && m.Stats().Hits != hitsBefore {
						t.Fatalf("non-resident page %d counted as hit", a.id)
					}
					if m.Len() > capacity {
						t.Fatalf("capacity exceeded: %d > %d", m.Len(), capacity)
					}
				}
				st := m.Stats()
				if st.Hits+st.Misses != st.Requests {
					t.Errorf("stats inconsistent: %+v", st)
				}
				if got := s.Stats().Reads; got != st.Misses {
					t.Errorf("physical reads %d != misses %d", got, st.Misses)
				}
				if st.Requests != uint64(len(seq)) {
					t.Errorf("requests = %d, want %d", st.Requests, len(seq))
				}

				// After Clear, the first access misses again.
				if err := m.Clear(); err != nil {
					t.Fatal(err)
				}
				if _, err := m.Get(1, buffer.AccessContext{QueryID: 1}); err != nil {
					t.Fatal(err)
				}
				if m.Stats().Misses != 1 {
					t.Error("post-clear access should cold-miss")
				}
			})
		}
	}
}

// TestPoliciesDifferOnSkewedWorkload sanity-checks that the policies are
// not accidentally identical: on a workload with spatial skew, at least
// two of them must produce different miss counts.
func TestPoliciesDifferOnSkewedWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	specs := make([]pageSpec, 40)
	for i := range specs {
		specs[i] = dataPage(float64((i%8)*50 + 1))
	}
	var seq []access
	for i := 0; i < 2000; i++ {
		seq = append(seq, access{id: page.ID(rng.Intn(40) + 1), query: uint64(i / 4)})
	}
	counts := make(map[int][]string)
	for _, pol := range allStandardPolicies(8) {
		s := buildStore(t, specs)
		misses := run(t, s, pol, 8, seq)
		counts[len(misses)] = append(counts[len(misses)], pol.Name())
	}
	if len(counts) < 2 {
		t.Errorf("all policies produced identical miss counts: %v", counts)
	}
}

// itoa avoids importing strconv in several test files.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
