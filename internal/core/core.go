// Package core implements the page-replacement strategies studied and
// proposed in Brinkhoff, "A Robust and Self-Tuning Page-Replacement
// Strategy for Spatial Database Systems" (EDBT 2002):
//
//   - LRU and FIFO — classic baselines;
//   - LRU-T and LRU-P — type- and priority-based LRU variants (§2.1);
//   - LRU-K — the history-based algorithm of O'Neil, O'Neil and Weikum,
//     with query-correlated reference handling (§2.2);
//   - the five spatial strategies A, EA, M, EM, EO, which evict the page
//     with the smallest spatial criterion (§2.3);
//   - SLRU — the static combination that draws a candidate set with LRU
//     and picks the victim spatially (§4.1);
//   - ASB — the adaptable spatial buffer, the paper's headline: SLRU whose
//     candidate-set size self-tunes through a FIFO overflow buffer (§4.2).
//
// All policies implement buffer.Policy; Factories enumerates constructors
// for the experiment harness.
package core

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/buffer"
	"repro/internal/page"
)

// PolicyFactory constructs a fresh policy sized for a buffer of the
// given capacity (in frames). It is buffer.PolicyFactory re-exported
// under the registry that populates it: every Factory.New is one, and
// buffer.NewRouter calls it once per shard with the shard's
// capacity so each shard gets a correctly scaled policy instance.
type PolicyFactory = buffer.PolicyFactory

// Factory constructs a fresh policy sized for a buffer of the given
// capacity (in frames). Policies with capacity-relative parameters (SLRU's
// candidate set, ASB's overflow buffer) derive them here.
type Factory struct {
	// Name of the produced policy, e.g. "LRU-2" or "ASB".
	Name string
	// New builds a policy instance for a buffer of capacity frames.
	New PolicyFactory
}

// StandardFactories returns the policies compared in the paper's
// evaluation, keyed by the names used in its figures.
func StandardFactories() []Factory {
	return []Factory{
		{Name: "LRU", New: func(int) buffer.Policy { return NewLRU() }},
		{Name: "LRU-T", New: func(int) buffer.Policy { return NewLRUT() }},
		{Name: "LRU-P", New: func(int) buffer.Policy { return NewLRUP() }},
		{Name: "LRU-2", New: func(int) buffer.Policy { return NewLRUK(2) }},
		{Name: "LRU-3", New: func(int) buffer.Policy { return NewLRUK(3) }},
		{Name: "LRU-5", New: func(int) buffer.Policy { return NewLRUK(5) }},
		{Name: "A", New: func(int) buffer.Policy { return NewSpatial(page.CritA) }},
		{Name: "EA", New: func(int) buffer.Policy { return NewSpatial(page.CritEA) }},
		{Name: "M", New: func(int) buffer.Policy { return NewSpatial(page.CritM) }},
		{Name: "EM", New: func(int) buffer.Policy { return NewSpatial(page.CritEM) }},
		{Name: "EO", New: func(int) buffer.Policy { return NewSpatial(page.CritEO) }},
		{Name: "SLRU 50%", New: func(c int) buffer.Policy { return NewSLRU(page.CritA, fracOf(c, 0.50)) }},
		{Name: "SLRU 25%", New: func(c int) buffer.Policy { return NewSLRU(page.CritA, fracOf(c, 0.25)) }},
		{Name: "ASB", New: func(c int) buffer.Policy { return NewASB(c, DefaultASBOptions()) }},
		{Name: "CLOCK", New: func(int) buffer.Policy { return NewClock() }},
		{Name: "PIN", New: func(int) buffer.Policy { return NewPinLevels(1) }},
	}
}

// factoryIndex is the memoized name → Factory map behind FactoryByName:
// the standard registry plus extra baselines (FIFO) that are resolvable
// by name without appearing in the paper's figure set. Factories are
// stateless constructors, so one shared map serves every caller.
var factoryIndex = sync.OnceValue(func() map[string]Factory {
	idx := make(map[string]Factory)
	for _, f := range StandardFactories() {
		idx[f.Name] = f
	}
	idx["FIFO"] = Factory{Name: "FIFO", New: func(int) buffer.Policy { return NewFIFO() }}
	return idx
})

// FactoryByName returns the factory with the given name. Beyond the
// fixed registry names it accepts parameterized specs of the form
// NAME:PARAM[:PARAM...] — see ParseSpec for the grammar.
func FactoryByName(name string) (Factory, error) {
	if f, ok := factoryIndex()[name]; ok {
		return f, nil
	}
	if strings.ContainsRune(name, ':') {
		return ParseSpec(name)
	}
	return Factory{}, fmt.Errorf("core: unknown policy %q (standard names, FIFO, or a spec like %q, %q, %q)",
		name, "LRU-K:4", "SLRU:EA:0.25", "ASB:A:0.2")
}

// Resolver maps a standard policy name to its PolicyFactory — the
// name-to-constructor hook consumers that must stay decoupled from this
// registry (obs/shadow's Bank) accept as a function value.
func Resolver(name string) (PolicyFactory, error) {
	f, err := FactoryByName(name)
	if err != nil {
		return nil, err
	}
	return f.New, nil
}

// fracOf returns round(frac·n), at least 1.
func fracOf(n int, frac float64) int {
	v := int(frac*float64(n) + 0.5)
	if v < 1 {
		v = 1
	}
	return v
}
