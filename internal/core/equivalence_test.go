package core_test

// Property test for the intrusive-substrate refactor: every standard
// policy, rebuilt on the intrusive frame words, must be step-for-step
// indistinguishable from its old container/list-era implementation
// (preserved in refpolicy_test.go). Random traces with mixed Get / Put /
// Fix–Unfix traffic replay through both; after EVERY access the hit/miss
// outcome and the exact resident set must match, which subsumes
// comparing eviction sequences (any divergent victim changes the
// resident set at the access that evicted it).

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/page"
	"repro/internal/storage"
)

// equivPages builds a diverse spec set: directory and data pages of the
// SAM at several levels plus object pages, with varied areas so every
// criterion discriminates. Kept under the LRU-K retention floor (64) so
// the bounded history of the new LRUK never reclaims a record the
// unbounded reference would have kept.
func equivPages(rng *rand.Rand, n int) []pageSpec {
	specs := make([]pageSpec, n)
	for i := range specs {
		area := float64(rng.Intn(900) + 1)
		switch rng.Intn(4) {
		case 0:
			specs[i] = pageSpec{typ: page.TypeDirectory, level: 1 + rng.Intn(2), area: area}
		case 1:
			specs[i] = pageSpec{typ: page.TypeObject, level: 0, area: area}
		default:
			specs[i] = pageSpec{typ: page.TypeData, level: 0, area: area}
		}
	}
	return specs
}

// step drives one trace operation against a manager and reports whether
// it missed. fixed tracks the manager's currently pinned IDs.
func equivStep(t *testing.T, m *buffer.Manager, s *storage.MemStore, op, opArg int,
	id page.ID, ctx buffer.AccessContext, fixed map[page.ID]bool) bool {
	t.Helper()
	before := m.Stats().Misses
	switch op {
	case 0: // Get
		if _, err := m.Get(id, ctx); err != nil {
			t.Fatalf("get %d: %v", id, err)
		}
	case 1: // Put (re-install the stored content, exercising OnUpdate)
		p, err := s.Read(id)
		if err != nil {
			t.Fatalf("read %d: %v", id, err)
		}
		if err := m.Put(p.Clone(), ctx); err != nil {
			t.Fatalf("put %d: %v", id, err)
		}
	case 2: // Fix, remembered for a later Unfix
		if _, err := m.Fix(id, ctx); err != nil {
			t.Fatalf("fix %d: %v", id, err)
		}
		fixed[id] = true
	case 3: // Unfix one previously fixed page (opArg selects it)
		ids := make([]page.ID, 0, len(fixed))
		for fid := range fixed {
			ids = append(ids, fid)
		}
		if len(ids) == 0 {
			return false
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		fid := ids[opArg%len(ids)]
		if err := m.Unfix(fid); err != nil {
			t.Fatalf("unfix %d: %v", fid, err)
		}
		delete(fixed, fid)
	case 4: // Clear (cold restart, exercising Reset and arena recycling)
		if err := m.Clear(); err != nil {
			t.Fatalf("clear: %v", err)
		}
		clear(fixed)
	}
	return m.Stats().Misses > before
}

func sortedResident(m *buffer.Manager) []page.ID {
	ids := m.ResidentIDs()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// TestIntrusiveMatchesReference replays random traces through each
// standard policy (plus FIFO) and its preserved old-style reference
// implementation, on managers over the same store, asserting identical
// behavior at every step.
func TestIntrusiveMatchesReference(t *testing.T) {
	const (
		numPages = 60
		traceLen = 3000
	)
	for _, capacity := range []int{4, 9, 16} {
		refs := refFactories(capacity)
		for _, fac := range append(core.StandardFactories(),
			core.Factory{Name: "FIFO", New: func(int) buffer.Policy { return core.NewFIFO() }}) {
			ref, ok := refs[fac.Name]
			if !ok {
				t.Fatalf("no reference implementation for %q", fac.Name)
			}
			t.Run(fmt.Sprintf("%s/cap%d", fac.Name, capacity), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(capacity)*1000 + int64(len(fac.Name))))
				store := buildStore(t, equivPages(rng, numPages))
				mNew := mustManager(t, store, fac.New(capacity), capacity)
				mRef := mustManager(t, store, ref, capacity)
				fixedNew := map[page.ID]bool{}
				fixedRef := map[page.ID]bool{}

				query := uint64(1)
				for i := 0; i < traceLen; i++ {
					if rng.Intn(4) == 0 {
						query++
					}
					// Skewed page choice: half the traffic on a hot eighth.
					var id page.ID
					if rng.Intn(2) == 0 {
						id = page.ID(1 + rng.Intn(numPages/8))
					} else {
						id = page.ID(1 + rng.Intn(numPages))
					}
					// Mostly reads; occasional writes, pins and clears. Cap
					// concurrent pins below capacity so eviction stays possible.
					op := 0
					switch r := rng.Intn(100); {
					case r < 70:
						op = 0
					case r < 80:
						op = 1
					case r < 87:
						op = 2
						if len(fixedNew) >= capacity/2 || fixedNew[id] {
							op = 0
						}
					case r < 94:
						op = 3
					default:
						if rng.Intn(8) == 0 {
							op = 4 // rare full Clear
						}
					}
					opArg := rng.Int()
					ctx := buffer.AccessContext{QueryID: query}
					missNew := equivStep(t, mNew, store, op, opArg, id, ctx, fixedNew)
					missRef := equivStep(t, mRef, store, op, opArg, id, ctx, fixedRef)
					if missNew != missRef {
						t.Fatalf("step %d (op %d page %d): intrusive miss=%v, reference miss=%v",
							i, op, id, missNew, missRef)
					}
					gotIDs, wantIDs := sortedResident(mNew), sortedResident(mRef)
					if !idsEqual(gotIDs, wantIDs) {
						t.Fatalf("step %d (op %d page %d): resident sets diverged\nintrusive: %v\nreference: %v",
							i, op, id, gotIDs, wantIDs)
					}
				}
				sNew, sRef := mNew.Stats(), mRef.Stats()
				if sNew != sRef {
					t.Fatalf("final stats diverged: intrusive %+v, reference %+v", sNew, sRef)
				}
			})
		}
	}
}
