package core_test

import (
	"fmt"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/page"
	"repro/internal/storage"
)

// ExampleNewASB shows the adaptable spatial buffer in front of a page
// store: requests carry a query ID, misses cost physical reads, and the
// candidate-set size is introspectable.
func ExampleNewASB() {
	store := storage.NewMemStore()
	for i := 0; i < 20; i++ {
		id := store.Allocate()
		p := page.New(id, page.TypeData, 0, 1)
		p.Append(page.Entry{MBR: geom.NewRect(0, 0, float64(i+1), 1), ObjID: uint64(i)})
		p.Recompute()
		if err := store.Write(p); err != nil {
			panic(err)
		}
	}

	policy := core.NewASB(10, core.DefaultASBOptions())
	buf, err := buffer.NewManager(store, policy, 10)
	if err != nil {
		panic(err)
	}
	for q := uint64(1); q <= 5; q++ {
		for id := page.ID(1); id <= 12; id++ {
			if _, err := buf.Get(id, buffer.AccessContext{QueryID: q}); err != nil {
				panic(err)
			}
		}
	}
	st := buf.Stats()
	fmt.Printf("requests=%d disk accesses=%d\n", st.Requests, st.DiskReads())
	fmt.Printf("main part=%d overflow=%d\n", policy.MainCapacity(), policy.OverflowCapacity())
	// Output:
	// requests=60 disk accesses=56
	// main part=8 overflow=2
}

// ExampleNewSpatial demonstrates the paper's pure spatial strategy A: the
// page with the smallest MBR area is evicted first, regardless of
// recency.
func ExampleNewSpatial() {
	store := storage.NewMemStore()
	areas := []float64{100, 1, 50}
	for i, a := range areas {
		id := store.Allocate()
		p := page.New(id, page.TypeData, 0, 1)
		p.Append(page.Entry{MBR: geom.NewRect(0, 0, a, 1), ObjID: uint64(i)})
		p.Recompute()
		if err := store.Write(p); err != nil {
			panic(err)
		}
	}
	buf, err := buffer.NewManager(store, core.NewSpatial(page.CritA), 2)
	if err != nil {
		panic(err)
	}
	ctx := buffer.AccessContext{QueryID: 1}
	buf.Get(1, ctx) // area 100
	buf.Get(2, ctx) // area 1 — most recent, but smallest
	buf.Get(3, ctx) // evicts page 2, not page 1
	fmt.Println("page 1 resident:", buf.Contains(1))
	fmt.Println("page 2 resident:", buf.Contains(2))
	// Output:
	// page 1 resident: true
	// page 2 resident: false
}
