// Package intrusive provides the allocation-free container primitives the
// replacement policies are built on: a doubly-linked list whose link words
// live inside the elements (so membership costs no container node) and an
// indexed min-heap that reports element positions through a callback (so
// decrease-key and removal need no boxing and no position map).
//
// "Intrusive" means the element type carries its own bookkeeping: a frame
// embeds one Hooks value and the policy that owns the frame threads it onto
// its list through an accessor function. Compared to container/list this
// removes the per-element heap allocation and one pointer indirection per
// traversal step; compared to container/heap it removes the interface{}
// boxing of Push/Pop. Both structures are generic and dependency-free so
// the buffer layer can embed them without an import cycle.
//
// Ownership rule: an element may be on at most one list (or in one heap) at
// a time, because it has exactly one set of link words. The policies uphold
// this by construction — a frame belongs to exactly one policy structure
// per residence.
package intrusive

// Hooks is the pair of intrusive link words an element embeds to become
// linkable. The zero value means "not on any list".
type Hooks[E comparable] struct {
	prev, next E
	member     bool
}

// List is an intrusive doubly-linked list of elements of type E (typically
// a pointer type). hooks resolves an element to its embedded link words;
// it must be pure and total. The zero List is not ready for use — build
// one with NewList.
type List[E comparable] struct {
	hooks      func(E) *Hooks[E]
	head, tail E
	n          int
	zero       E // the "no element" sentinel (nil for pointer types)
}

// NewList returns an empty list using hooks to reach each element's link
// words.
func NewList[E comparable](hooks func(E) *Hooks[E]) List[E] {
	return List[E]{hooks: hooks}
}

// Len returns the number of elements on the list.
func (l *List[E]) Len() int { return l.n }

// Front returns the first element, or the zero E when the list is empty.
func (l *List[E]) Front() E { return l.head }

// Back returns the last element, or the zero E when the list is empty.
func (l *List[E]) Back() E { return l.tail }

// Next returns the element after e, or the zero E at the back.
func (l *List[E]) Next(e E) E { return l.hooks(e).next }

// Prev returns the element before e, or the zero E at the front.
func (l *List[E]) Prev(e E) E { return l.hooks(e).prev }

// Contains reports whether e is currently linked on a list. With the
// one-list-per-element ownership rule, that list is this one.
func (l *List[E]) Contains(e E) bool { return l.hooks(e).member }

// PushFront links e at the front. e must not be on a list.
func (l *List[E]) PushFront(e E) {
	h := l.hooks(e)
	if h.member {
		panic("intrusive: PushFront of an element already on a list")
	}
	h.member = true
	h.prev = l.zero
	h.next = l.head
	if l.head != l.zero {
		l.hooks(l.head).prev = e
	} else {
		l.tail = e
	}
	l.head = e
	l.n++
}

// PushBack links e at the back. e must not be on a list.
func (l *List[E]) PushBack(e E) {
	h := l.hooks(e)
	if h.member {
		panic("intrusive: PushBack of an element already on a list")
	}
	h.member = true
	h.next = l.zero
	h.prev = l.tail
	if l.tail != l.zero {
		l.hooks(l.tail).next = e
	} else {
		l.head = e
	}
	l.tail = e
	l.n++
}

// InsertBefore links e immediately before mark, which must be on the list.
// e must not be on a list.
func (l *List[E]) InsertBefore(e, mark E) {
	if mark == l.head {
		l.PushFront(e)
		return
	}
	h := l.hooks(e)
	if h.member {
		panic("intrusive: InsertBefore of an element already on a list")
	}
	mh := l.hooks(mark)
	h.member = true
	h.prev = mh.prev
	h.next = mark
	l.hooks(mh.prev).next = e
	mh.prev = e
	l.n++
}

// Remove unlinks e, which must be on the list.
func (l *List[E]) Remove(e E) {
	h := l.hooks(e)
	if !h.member {
		panic("intrusive: Remove of an element not on a list")
	}
	if h.prev != l.zero {
		l.hooks(h.prev).next = h.next
	} else {
		l.head = h.next
	}
	if h.next != l.zero {
		l.hooks(h.next).prev = h.prev
	} else {
		l.tail = h.prev
	}
	h.prev, h.next = l.zero, l.zero
	h.member = false
	l.n--
}

// MoveToFront relinks e (already on the list) to the front.
func (l *List[E]) MoveToFront(e E) {
	if e == l.head {
		return
	}
	l.Remove(e)
	l.PushFront(e)
}

// MoveToBack relinks e (already on the list) to the back.
func (l *List[E]) MoveToBack(e E) {
	if e == l.tail {
		return
	}
	l.Remove(e)
	l.PushBack(e)
}

// Clear unlinks every element, resetting their link words, and empties the
// list. O(n).
func (l *List[E]) Clear() {
	for e := l.head; e != l.zero; {
		h := l.hooks(e)
		next := h.next
		h.prev, h.next = l.zero, l.zero
		h.member = false
		e = next
	}
	l.head, l.tail = l.zero, l.zero
	l.n = 0
}

// Heap is an indexed binary min-heap over elements of type E. less orders
// the elements; move reports every position change (including the initial
// placement on Push and -1 on removal), so an element can cache its own
// index for O(log n) Fix and Remove without a position map. The element
// slice is retained across Clear, so a heap that has reached its working
// size never allocates again. The zero Heap is not ready for use — build
// one with NewHeap.
type Heap[E any] struct {
	less  func(a, b E) bool
	move  func(e E, i int32)
	elems []E
}

// NewHeap returns an empty heap with the given order and position callback.
func NewHeap[E any](less func(a, b E) bool, move func(e E, i int32)) Heap[E] {
	return Heap[E]{less: less, move: move}
}

// Len returns the number of elements in the heap.
func (h *Heap[E]) Len() int { return len(h.elems) }

// Min returns the minimum element. The heap must be non-empty.
func (h *Heap[E]) Min() E { return h.elems[0] }

// At returns the element at heap index i (for iteration; order beyond
// index 0 is unspecified).
func (h *Heap[E]) At(i int32) E { return h.elems[i] }

// Push inserts e.
func (h *Heap[E]) Push(e E) {
	h.elems = append(h.elems, e)
	h.up(len(h.elems) - 1)
}

// Fix restores the heap order after the element at index i changed its
// key.
func (h *Heap[E]) Fix(i int32) {
	if !h.down(int(i)) {
		h.up(int(i))
	}
}

// Remove deletes and returns the element at index i; its final move
// callback reports index -1.
func (h *Heap[E]) Remove(i int32) E {
	n := len(h.elems) - 1
	e := h.elems[i]
	last := h.elems[n]
	var zero E
	h.elems[n] = zero
	h.elems = h.elems[:n]
	if int(i) != n {
		h.set(int(i), last)
		if !h.down(int(i)) {
			h.up(int(i))
		}
	}
	h.move(e, -1)
	return e
}

// Clear empties the heap, reporting index -1 for every element. The
// backing slice is kept for reuse.
func (h *Heap[E]) Clear() {
	var zero E
	for i, e := range h.elems {
		h.move(e, -1)
		h.elems[i] = zero
	}
	h.elems = h.elems[:0]
}

// set places e at index i and reports the position.
func (h *Heap[E]) set(i int, e E) {
	h.elems[i] = e
	h.move(e, int32(i))
}

// up sifts the element at index j toward the root.
func (h *Heap[E]) up(j int) {
	e := h.elems[j]
	for j > 0 {
		parent := (j - 1) / 2
		if !h.less(e, h.elems[parent]) {
			break
		}
		h.set(j, h.elems[parent])
		j = parent
	}
	h.set(j, e)
}

// down sifts the element at index j toward the leaves, reporting whether
// it moved.
func (h *Heap[E]) down(j int) bool {
	e := h.elems[j]
	n := len(h.elems)
	start := j
	for {
		left := 2*j + 1
		if left >= n {
			break
		}
		m := left
		if right := left + 1; right < n && h.less(h.elems[right], h.elems[left]) {
			m = right
		}
		if !h.less(h.elems[m], e) {
			break
		}
		h.set(j, h.elems[m])
		j = m
	}
	h.set(j, e)
	return j > start
}
