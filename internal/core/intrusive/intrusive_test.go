package intrusive_test

import (
	"container/heap"
	"container/list"
	"math/rand"
	"testing"

	"repro/internal/core/intrusive"
)

// node is a test element embedding its link words plus a heap index slot.
type node struct {
	val   int
	hooks intrusive.Hooks[*node]
	slot  int32
}

func nodeHooks(n *node) *intrusive.Hooks[*node] { return &n.hooks }

func ids(l *intrusive.List[*node]) []int {
	var out []int
	for e := l.Front(); e != nil; e = l.Next(e) {
		out = append(out, e.val)
	}
	return out
}

func idsBack(l *intrusive.List[*node]) []int {
	var out []int
	for e := l.Back(); e != nil; e = l.Prev(e) {
		out = append(out, e.val)
	}
	return out
}

func eq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestListBasicOps(t *testing.T) {
	l := intrusive.NewList(nodeHooks)
	ns := []*node{{val: 1}, {val: 2}, {val: 3}, {val: 4}}

	l.PushFront(ns[0]) // [1]
	l.PushBack(ns[1])  // [1 2]
	l.PushFront(ns[2]) // [3 1 2]
	if got := ids(&l); !eq(got, []int{3, 1, 2}) {
		t.Fatalf("after pushes: %v", got)
	}
	if got := idsBack(&l); !eq(got, []int{2, 1, 3}) {
		t.Fatalf("backward walk: %v", got)
	}
	if l.Len() != 3 {
		t.Fatalf("len = %d", l.Len())
	}

	l.InsertBefore(ns[3], ns[1]) // [3 1 4 2]
	if got := ids(&l); !eq(got, []int{3, 1, 4, 2}) {
		t.Fatalf("after InsertBefore: %v", got)
	}

	l.MoveToFront(ns[1]) // [2 3 1 4]
	l.MoveToBack(ns[2])  // [2 1 4 3]
	if got := ids(&l); !eq(got, []int{2, 1, 4, 3}) {
		t.Fatalf("after moves: %v", got)
	}

	l.Remove(ns[3]) // [2 1 3]
	if l.Contains(ns[3]) {
		t.Fatal("removed element still Contains")
	}
	if got := ids(&l); !eq(got, []int{2, 1, 3}) {
		t.Fatalf("after remove: %v", got)
	}

	l.Clear()
	if l.Len() != 0 || l.Front() != nil || l.Back() != nil {
		t.Fatal("Clear left residue")
	}
	for _, n := range ns {
		if l.Contains(n) {
			t.Fatalf("node %d still marked member after Clear", n.val)
		}
	}
	// Cleared elements are immediately reusable.
	l.PushBack(ns[0])
	if got := ids(&l); !eq(got, []int{1}) {
		t.Fatalf("reuse after Clear: %v", got)
	}
}

func TestListEdgeCases(t *testing.T) {
	l := intrusive.NewList(nodeHooks)
	a, b := &node{val: 1}, &node{val: 2}

	// Single-element front/back identity and removal.
	l.PushBack(a)
	if l.Front() != a || l.Back() != a {
		t.Fatal("single element not both front and back")
	}
	l.MoveToFront(a)
	l.MoveToBack(a)
	l.Remove(a)
	if l.Len() != 0 {
		t.Fatal("remove of only element")
	}

	// InsertBefore the head degrades to PushFront.
	l.PushBack(a)
	l.InsertBefore(b, a)
	if got := ids(&l); !eq(got, []int{2, 1}) {
		t.Fatalf("InsertBefore head: %v", got)
	}
}

func TestListPanicsOnMisuse(t *testing.T) {
	l := intrusive.NewList(nodeHooks)
	a := &node{val: 1}
	l.PushBack(a)

	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("double PushBack", func() { l.PushBack(a) })
	mustPanic("double PushFront", func() { l.PushFront(a) })
	b := &node{val: 2}
	mustPanic("Remove of non-member", func() { l.Remove(b) })
}

// TestListMatchesContainerList drives the intrusive list and
// container/list through the same random operation sequence and compares
// contents after every step.
func TestListMatchesContainerList(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	il := intrusive.NewList(nodeHooks)
	cl := list.New()
	elems := map[*node]*list.Element{}
	var members []*node
	next := 0

	pick := func() *node { return members[rng.Intn(len(members))] }
	for step := 0; step < 4000; step++ {
		switch op := rng.Intn(6); {
		case op == 0 || len(members) == 0:
			n := &node{val: next}
			next++
			if rng.Intn(2) == 0 {
				il.PushFront(n)
				elems[n] = cl.PushFront(n.val)
			} else {
				il.PushBack(n)
				elems[n] = cl.PushBack(n.val)
			}
			members = append(members, n)
		case op == 1:
			n := pick()
			il.MoveToFront(n)
			cl.MoveToFront(elems[n])
		case op == 2:
			n := pick()
			il.MoveToBack(n)
			cl.MoveToBack(elems[n])
		case op == 3:
			i := rng.Intn(len(members))
			n := members[i]
			il.Remove(n)
			cl.Remove(elems[n])
			delete(elems, n)
			members = append(members[:i], members[i+1:]...)
		case op == 4:
			n := &node{val: next}
			next++
			mark := pick()
			il.InsertBefore(n, mark)
			elems[n] = cl.InsertBefore(n.val, elems[mark])
			members = append(members, n)
		default:
			// Walk both directions and compare.
			var want []int
			for e := cl.Front(); e != nil; e = e.Next() {
				want = append(want, e.Value.(int))
			}
			if got := ids(&il); !eq(got, want) {
				t.Fatalf("step %d: forward %v != %v", step, got, want)
			}
		}
		if il.Len() != cl.Len() {
			t.Fatalf("step %d: len %d != %d", step, il.Len(), cl.Len())
		}
	}
	var want []int
	for e := cl.Front(); e != nil; e = e.Next() {
		want = append(want, e.Value.(int))
	}
	if got := ids(&il); !eq(got, want) {
		t.Fatalf("final: %v != %v", got, want)
	}
}

// refHeap is a container/heap reference for the randomized heap test.
type refHeap []*node

func (h refHeap) Len() int           { return len(h) }
func (h refHeap) Less(i, j int) bool { return h[i].val < h[j].val }
func (h refHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)        { *h = append(*h, x.(*node)) }
func (h *refHeap) Pop() any          { n := (*h)[len(*h)-1]; *h = (*h)[:len(*h)-1]; return n }

func TestHeapMatchesContainerHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ih := intrusive.NewHeap(
		func(a, b *node) bool { return a.val < b.val },
		func(n *node, i int32) { n.slot = i },
	)
	var rh refHeap
	var members []*node

	for step := 0; step < 4000; step++ {
		switch op := rng.Intn(4); {
		case op == 0 || len(members) == 0:
			n := &node{val: rng.Intn(1 << 20), slot: -1}
			ih.Push(n)
			heap.Push(&rh, n)
			members = append(members, n)
		case op == 1:
			// Decrease/increase key of a random element, Fix via its
			// cached slot.
			n := members[rng.Intn(len(members))]
			n.val = rng.Intn(1 << 20)
			ih.Fix(n.slot)
			for i, m := range rh {
				if m == n {
					heap.Fix(&rh, i)
					break
				}
			}
		case op == 2:
			i := rng.Intn(len(members))
			n := members[i]
			got := ih.Remove(n.slot)
			if got != n {
				t.Fatalf("step %d: Remove returned %v want %v", step, got.val, n.val)
			}
			if n.slot != -1 {
				t.Fatalf("step %d: removed element slot = %d", step, n.slot)
			}
			for j, m := range rh {
				if m == n {
					heap.Remove(&rh, j)
					break
				}
			}
			members = append(members[:i], members[i+1:]...)
		default:
			if ih.Len() == 0 {
				continue
			}
			if ih.Min().val != rh[0].val {
				t.Fatalf("step %d: min %d != %d", step, ih.Min().val, rh[0].val)
			}
		}
		if ih.Len() != len(rh) {
			t.Fatalf("step %d: len %d != %d", step, ih.Len(), len(rh))
		}
		// Every member's cached slot must point back at itself.
		for i := int32(0); int(i) < ih.Len(); i++ {
			if ih.At(i).slot != i {
				t.Fatalf("step %d: element at %d caches slot %d", step, i, ih.At(i).slot)
			}
		}
	}

	// Drain both; the ascending pop order must match exactly (values may
	// repeat, so compare values, not identities).
	for ih.Len() > 0 {
		a := ih.Remove(0)
		b := heap.Pop(&rh).(*node)
		if a.val != b.val {
			t.Fatalf("drain: %d != %d", a.val, b.val)
		}
	}
}

func TestHeapClearKeepsCapacityAndResetsSlots(t *testing.T) {
	ih := intrusive.NewHeap(
		func(a, b *node) bool { return a.val < b.val },
		func(n *node, i int32) { n.slot = i },
	)
	ns := []*node{{val: 3}, {val: 1}, {val: 2}}
	for _, n := range ns {
		ih.Push(n)
	}
	ih.Clear()
	if ih.Len() != 0 {
		t.Fatalf("len after Clear = %d", ih.Len())
	}
	for _, n := range ns {
		if n.slot != -1 {
			t.Fatalf("node %d slot after Clear = %d", n.val, n.slot)
		}
	}
	ih.Push(ns[0])
	if ih.Min() != ns[0] || ns[0].slot != 0 {
		t.Fatal("heap unusable after Clear")
	}
}
