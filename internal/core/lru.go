package core

import (
	"container/list"

	"repro/internal/buffer"
)

// LRU is the least-recently-used baseline policy: the victim is the
// unpinned page that has not been accessed for the longest time.
type LRU struct {
	// order holds *buffer.Frame values, front = most recently used.
	order *list.List
}

// NewLRU returns an LRU policy.
func NewLRU() *LRU {
	return &LRU{order: list.New()}
}

// Name implements buffer.Policy.
func (p *LRU) Name() string { return "LRU" }

// OnAdmit implements buffer.Policy.
func (p *LRU) OnAdmit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	f.SetAux(p.order.PushFront(f))
}

// OnHit implements buffer.Policy.
func (p *LRU) OnHit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	p.order.MoveToFront(f.Aux().(*list.Element))
}

// Victim implements buffer.Policy: the least recently used unpinned frame.
func (p *LRU) Victim(ctx buffer.AccessContext) *buffer.Frame {
	for e := p.order.Back(); e != nil; e = e.Prev() {
		if f := e.Value.(*buffer.Frame); !f.Pinned() {
			return f
		}
	}
	return nil
}

// OnEvict implements buffer.Policy.
func (p *LRU) OnEvict(f *buffer.Frame) {
	p.order.Remove(f.Aux().(*list.Element))
	f.SetAux(nil)
}

// Reset implements buffer.Policy.
func (p *LRU) Reset() { p.order.Init() }

// FIFO evicts pages in admission order regardless of later hits. It is
// used as the eviction rule of the ASB overflow buffer and available as a
// standalone baseline.
type FIFO struct {
	// order holds *buffer.Frame values, front = oldest admission.
	order *list.List
}

// NewFIFO returns a FIFO policy.
func NewFIFO() *FIFO {
	return &FIFO{order: list.New()}
}

// Name implements buffer.Policy.
func (p *FIFO) Name() string { return "FIFO" }

// OnAdmit implements buffer.Policy.
func (p *FIFO) OnAdmit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	f.SetAux(p.order.PushBack(f))
}

// OnHit implements buffer.Policy: hits do not reorder a FIFO.
func (p *FIFO) OnHit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {}

// Victim implements buffer.Policy: the oldest unpinned admission.
func (p *FIFO) Victim(ctx buffer.AccessContext) *buffer.Frame {
	for e := p.order.Front(); e != nil; e = e.Next() {
		if f := e.Value.(*buffer.Frame); !f.Pinned() {
			return f
		}
	}
	return nil
}

// OnEvict implements buffer.Policy.
func (p *FIFO) OnEvict(f *buffer.Frame) {
	p.order.Remove(f.Aux().(*list.Element))
	f.SetAux(nil)
}

// Reset implements buffer.Policy.
func (p *FIFO) Reset() { p.order.Init() }
