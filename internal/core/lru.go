package core

import (
	"repro/internal/buffer"
	"repro/internal/core/intrusive"
	"repro/internal/obs"
)

// frameHooks resolves the intrusive link words embedded in a frame — the
// accessor every policy list in this package shares. A frame is on at
// most one policy list at a time (one policy owns it per residence), so
// one set of hooks suffices for all of them.
func frameHooks(f *buffer.Frame) *intrusive.Hooks[*buffer.Frame] { return &f.Links }

// LRU is the least-recently-used baseline policy: the victim is the
// unpinned page that has not been accessed for the longest time. Frames
// are threaded onto an intrusive recency list through their embedded link
// words, so admission, hits and eviction allocate nothing.
type LRU struct {
	obs.Target

	// order is the recency list, front = most recently used.
	order intrusive.List[*buffer.Frame]
	// lastRank is the LRU rank of the frame most recently returned by
	// Victim (> 0 only when pinned frames were skipped).
	lastRank int
}

// NewLRU returns an LRU policy.
func NewLRU() *LRU {
	return &LRU{order: intrusive.NewList(frameHooks), lastRank: -1}
}

// Name implements buffer.Policy.
func (p *LRU) Name() string { return "LRU" }

// OnAdmit implements buffer.Policy.
func (p *LRU) OnAdmit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	p.order.PushFront(f)
}

// OnHit implements buffer.Policy.
func (p *LRU) OnHit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	p.order.MoveToFront(f)
}

// Victim implements buffer.Policy: the least recently used unpinned frame.
func (p *LRU) Victim(ctx buffer.AccessContext) *buffer.Frame {
	rank := 0
	for f := p.order.Back(); f != nil; f = p.order.Prev(f) {
		if !f.Pinned() {
			p.lastRank = rank
			return f
		}
		rank++
	}
	return nil
}

// OnEvict implements buffer.Policy.
func (p *LRU) OnEvict(f *buffer.Frame) {
	p.order.Remove(f)
	p.Sink().Eviction(obs.EvictionEvent{
		Page:    f.Meta.ID,
		Reason:  obs.ReasonLRU,
		LRURank: p.lastRank,
	})
	p.lastRank = -1
}

// Reset implements buffer.Policy.
func (p *LRU) Reset() {
	p.order.Clear()
	p.lastRank = -1
}

// FIFO evicts pages in admission order regardless of later hits. It is
// used as the eviction rule of the ASB overflow buffer and available as a
// standalone baseline.
type FIFO struct {
	obs.Target

	// order is the admission queue, front = oldest admission.
	order intrusive.List[*buffer.Frame]
	// lastRank is the admission-order rank of the frame most recently
	// returned by Victim (0 = oldest admission).
	lastRank int
}

// NewFIFO returns a FIFO policy.
func NewFIFO() *FIFO {
	return &FIFO{order: intrusive.NewList(frameHooks), lastRank: -1}
}

// Name implements buffer.Policy.
func (p *FIFO) Name() string { return "FIFO" }

// OnAdmit implements buffer.Policy.
func (p *FIFO) OnAdmit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	p.order.PushBack(f)
}

// OnHit implements buffer.Policy: hits do not reorder a FIFO.
func (p *FIFO) OnHit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {}

// Victim implements buffer.Policy: the oldest unpinned admission.
func (p *FIFO) Victim(ctx buffer.AccessContext) *buffer.Frame {
	rank := 0
	for f := p.order.Front(); f != nil; f = p.order.Next(f) {
		if !f.Pinned() {
			p.lastRank = rank
			return f
		}
		rank++
	}
	return nil
}

// OnEvict implements buffer.Policy.
func (p *FIFO) OnEvict(f *buffer.Frame) {
	p.order.Remove(f)
	p.Sink().Eviction(obs.EvictionEvent{
		Page:    f.Meta.ID,
		Reason:  obs.ReasonFIFO,
		LRURank: p.lastRank,
	})
	p.lastRank = -1
}

// Reset implements buffer.Policy.
func (p *FIFO) Reset() {
	p.order.Clear()
	p.lastRank = -1
}
