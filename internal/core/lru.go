package core

import (
	"container/list"

	"repro/internal/buffer"
	"repro/internal/obs"
)

// LRU is the least-recently-used baseline policy: the victim is the
// unpinned page that has not been accessed for the longest time.
type LRU struct {
	obs.Target

	// order holds *buffer.Frame values, front = most recently used.
	order *list.List
	// lastRank is the LRU rank of the frame most recently returned by
	// Victim (> 0 only when pinned frames were skipped).
	lastRank int
}

// NewLRU returns an LRU policy.
func NewLRU() *LRU {
	return &LRU{order: list.New(), lastRank: -1}
}

// Name implements buffer.Policy.
func (p *LRU) Name() string { return "LRU" }

// OnAdmit implements buffer.Policy.
func (p *LRU) OnAdmit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	f.SetAux(p.order.PushFront(f))
}

// OnHit implements buffer.Policy.
func (p *LRU) OnHit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	p.order.MoveToFront(f.Aux().(*list.Element))
}

// Victim implements buffer.Policy: the least recently used unpinned frame.
func (p *LRU) Victim(ctx buffer.AccessContext) *buffer.Frame {
	rank := 0
	for e := p.order.Back(); e != nil; e = e.Prev() {
		if f := e.Value.(*buffer.Frame); !f.Pinned() {
			p.lastRank = rank
			return f
		}
		rank++
	}
	return nil
}

// OnEvict implements buffer.Policy.
func (p *LRU) OnEvict(f *buffer.Frame) {
	p.order.Remove(f.Aux().(*list.Element))
	p.Sink().Eviction(obs.EvictionEvent{
		Page:    f.Meta.ID,
		Reason:  obs.ReasonLRU,
		LRURank: p.lastRank,
	})
	p.lastRank = -1
	f.SetAux(nil)
}

// Reset implements buffer.Policy.
func (p *LRU) Reset() {
	p.order.Init()
	p.lastRank = -1
}

// FIFO evicts pages in admission order regardless of later hits. It is
// used as the eviction rule of the ASB overflow buffer and available as a
// standalone baseline.
type FIFO struct {
	obs.Target

	// order holds *buffer.Frame values, front = oldest admission.
	order *list.List
	// lastRank is the admission-order rank of the frame most recently
	// returned by Victim (0 = oldest admission).
	lastRank int
}

// NewFIFO returns a FIFO policy.
func NewFIFO() *FIFO {
	return &FIFO{order: list.New(), lastRank: -1}
}

// Name implements buffer.Policy.
func (p *FIFO) Name() string { return "FIFO" }

// OnAdmit implements buffer.Policy.
func (p *FIFO) OnAdmit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	f.SetAux(p.order.PushBack(f))
}

// OnHit implements buffer.Policy: hits do not reorder a FIFO.
func (p *FIFO) OnHit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {}

// Victim implements buffer.Policy: the oldest unpinned admission.
func (p *FIFO) Victim(ctx buffer.AccessContext) *buffer.Frame {
	rank := 0
	for e := p.order.Front(); e != nil; e = e.Next() {
		if f := e.Value.(*buffer.Frame); !f.Pinned() {
			p.lastRank = rank
			return f
		}
		rank++
	}
	return nil
}

// OnEvict implements buffer.Policy.
func (p *FIFO) OnEvict(f *buffer.Frame) {
	p.order.Remove(f.Aux().(*list.Element))
	p.Sink().Eviction(obs.EvictionEvent{
		Page:    f.Meta.ID,
		Reason:  obs.ReasonFIFO,
		LRURank: p.lastRank,
	})
	p.lastRank = -1
	f.SetAux(nil)
}

// Reset implements buffer.Policy.
func (p *FIFO) Reset() {
	p.order.Init()
	p.lastRank = -1
}
