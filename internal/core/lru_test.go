package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/page"
)

func TestLRUEvictionOrder(t *testing.T) {
	s := buildStore(t, uniformPages(4, 1))
	// Capacity 2: request 1,2 then 3 → evict 1; then 1 → evict 2.
	misses := run(t, s, core.NewLRU(), 2, seqOf(1, 2, 3, 1))
	want := []page.ID{1, 2, 3, 1}
	if !idsEqual(misses, want) {
		t.Errorf("misses = %v, want %v", misses, want)
	}
}

func TestLRUHitRefreshesRecency(t *testing.T) {
	s := buildStore(t, uniformPages(3, 1))
	// 1,2 fill; hit 1; request 3 must evict 2 (LRU), not 1.
	m := mustManager(t, s, core.NewLRU(), 2)
	runOn(t, m, seqOf(1, 2))
	runOn(t, m, []access{q(1, 3)}) // hit on 1
	runOn(t, m, []access{q(3, 4)})
	if !resident(m, 1, 3) || m.Contains(2) {
		t.Errorf("resident = %v, want [1 3]", m.ResidentIDs())
	}
}

func TestLRUSequentialFlooding(t *testing.T) {
	// The classic LRU weakness: cyclic access to capacity+1 pages misses
	// every time. This anchors the baseline the paper improves on.
	s := buildStore(t, uniformPages(4, 1))
	var seq []access
	for round := 0; round < 5; round++ {
		for id := page.ID(1); id <= 4; id++ {
			seq = append(seq, q(id, uint64(len(seq)+1)))
		}
	}
	misses := run(t, s, core.NewLRU(), 3, seq)
	if len(misses) != len(seq) {
		t.Errorf("misses = %d, want %d (every access)", len(misses), len(seq))
	}
}

func TestFIFOIgnoresHits(t *testing.T) {
	s := buildStore(t, uniformPages(3, 1))
	m := mustManager(t, s, core.NewFIFO(), 2)
	runOn(t, m, seqOf(1, 2))
	// Hit page 1 repeatedly; FIFO still evicts 1 first.
	runOn(t, m, []access{q(1, 10), q(1, 11)})
	runOn(t, m, []access{q(3, 12)})
	if m.Contains(1) || !resident(m, 2, 3) {
		t.Errorf("resident = %v, want [2 3]", m.ResidentIDs())
	}
}

func TestLRUNames(t *testing.T) {
	if core.NewLRU().Name() != "LRU" {
		t.Error("LRU name")
	}
	if core.NewFIFO().Name() != "FIFO" {
		t.Error("FIFO name")
	}
}

func TestLRUReset(t *testing.T) {
	s := buildStore(t, uniformPages(3, 1))
	m := mustManager(t, s, core.NewLRU(), 2)
	runOn(t, m, seqOf(1, 2))
	if err := m.Clear(); err != nil {
		t.Fatal(err)
	}
	// After clear, the same sequence behaves as from cold.
	misses := runOn(t, m, seqOf(1, 2, 3, 1))
	want := []page.ID{1, 2, 3, 1}
	if !idsEqual(misses, want) {
		t.Errorf("misses after reset = %v, want %v", misses, want)
	}
}
