package core

import (
	"fmt"

	"repro/internal/buffer"
	"repro/internal/obs"
	"repro/internal/page"
)

// LRUK is the LRU-K page-replacement algorithm of O'Neil, O'Neil and
// Weikum, as described in §2.2 of the paper. For every page p it records
// HIST(p), the time stamps of the K most recent uncorrelated references;
// the victim is the unpinned page with the oldest HIST(q,K) among pages
// whose last reference is not correlated with the current access.
//
// Two accesses are correlated iff they belong to the same query. The
// history survives eviction — the paper's "essential disadvantage": the
// number of retained records grows with the number of distinct pages ever
// buffered, not with the buffer size. HistRecords and HistBytes expose
// this cost for the memory comparison against ASB in the evaluation.
type LRUK struct {
	obs.Target

	k        int
	resident map[*buffer.Frame]struct{}
	hist     map[page.ID]*histRec
}

// histRec is the retained reference history of one page.
type histRec struct {
	// times[0] is HIST(p,1), the most recent uncorrelated reference;
	// times[k-1] is HIST(p,K). Zero means "no such reference yet".
	times []uint64
	// lastQuery is the query that made the most recent reference, used
	// to detect correlated accesses.
	lastQuery uint64
}

// NewLRUK returns an LRU-K policy. K must be ≥ 1; LRU-1 degenerates to
// LRU with correlated-reference collapsing.
func NewLRUK(k int) *LRUK {
	if k < 1 {
		panic(fmt.Sprintf("core: LRU-K needs K ≥ 1, got %d", k))
	}
	return &LRUK{
		k:        k,
		resident: make(map[*buffer.Frame]struct{}),
		hist:     make(map[page.ID]*histRec),
	}
}

// Name implements buffer.Policy.
func (p *LRUK) Name() string { return fmt.Sprintf("LRU-%d", p.k) }

// K returns the history depth.
func (p *LRUK) K() int { return p.k }

// touch records a reference to the page at time now by query q,
// collapsing correlated references (paper §2.2, cases 1 and 2).
func (p *LRUK) touch(id page.ID, now, q uint64) {
	rec := p.hist[id]
	if rec == nil {
		rec = &histRec{times: make([]uint64, p.k)}
		p.hist[id] = rec
	} else if rec.lastQuery == q {
		// Correlated with the most recent reference: replace HIST(p,1).
		rec.times[0] = now
		return
	}
	// Uncorrelated: shift the history and insert the new HIST(p,1).
	copy(rec.times[1:], rec.times)
	rec.times[0] = now
	rec.lastQuery = q
}

// OnAdmit implements buffer.Policy.
func (p *LRUK) OnAdmit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	p.resident[f] = struct{}{}
	p.touch(f.Meta.ID, now, ctx.QueryID)
}

// OnHit implements buffer.Policy.
func (p *LRUK) OnHit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	p.touch(f.Meta.ID, now, ctx.QueryID)
}

// Victim implements buffer.Policy. Among unpinned pages whose most recent
// reference is not correlated with the current access, it picks the one
// with the oldest HIST(q,K); pages with fewer than K recorded references
// rank oldest (HIST(q,K) = 0). Ties break on the older HIST(q,1). If every
// page is correlated with the current query, the restriction is dropped
// (otherwise a buffer smaller than one query's working set could never
// evict) — one of the "special cases" footnote 2 of the paper leaves open.
func (p *LRUK) Victim(ctx buffer.AccessContext) *buffer.Frame {
	v := p.victim(ctx, true)
	if v == nil {
		v = p.victim(ctx, false)
	}
	return v
}

func (p *LRUK) victim(ctx buffer.AccessContext, excludeCorrelated bool) *buffer.Frame {
	var best *buffer.Frame
	var bestK, best1 uint64
	for f := range p.resident {
		if f.Pinned() {
			continue
		}
		rec := p.hist[f.Meta.ID]
		if excludeCorrelated && rec.lastQuery == ctx.QueryID {
			continue
		}
		hk := rec.times[p.k-1]
		h1 := rec.times[0]
		if best == nil || hk < bestK || (hk == bestK && h1 < best1) ||
			(hk == bestK && h1 == best1 && f.Meta.ID < best.Meta.ID) {
			best, bestK, best1 = f, hk, h1
		}
	}
	return best
}

// OnEvict implements buffer.Policy. The history record is retained. The
// Eviction event's Criterion is the victim's HIST(q,K) — the backward
// K-distance the policy ranked it by; LRURank is -1 (history order, not
// recency order).
func (p *LRUK) OnEvict(f *buffer.Frame) {
	delete(p.resident, f)
	var histK float64
	if rec := p.hist[f.Meta.ID]; rec != nil {
		histK = float64(rec.times[p.k-1])
	}
	p.Sink().Eviction(obs.EvictionEvent{
		Page:      f.Meta.ID,
		Reason:    obs.ReasonLRUK,
		Criterion: histK,
		LRURank:   -1,
	})
}

// Reset implements buffer.Policy: it clears residency AND the retained
// histories (a cleared buffer starts cold, as in the paper's experiments).
func (p *LRUK) Reset() {
	p.resident = make(map[*buffer.Frame]struct{})
	p.hist = make(map[page.ID]*histRec)
}

// HistRecords returns the number of retained history records — the count
// of distinct pages ever buffered since the last Reset.
func (p *LRUK) HistRecords() int { return len(p.hist) }

// HistBytes estimates the memory held by the retained histories: per
// record K time stamps, the correlation query ID and the map key.
func (p *LRUK) HistBytes() int {
	const perRecordOverhead = 8 /* key */ + 8 /* lastQuery */ + 24 /* slice header */
	return len(p.hist) * (perRecordOverhead + 8*p.k)
}
