package core

import (
	"fmt"

	"repro/internal/buffer"
	"repro/internal/core/intrusive"
	"repro/internal/obs"
	"repro/internal/page"
)

// LRUK is the LRU-K page-replacement algorithm of O'Neil, O'Neil and
// Weikum, as described in §2.2 of the paper. For every page p it records
// HIST(p), the time stamps of the K most recent uncorrelated references;
// the victim is the unpinned page with the oldest HIST(q,K) among pages
// whose last reference is not correlated with the current access.
//
// Two accesses are correlated iff they belong to the same query. The
// history survives eviction — the paper's "essential disadvantage": the
// number of retained records grows with the number of distinct pages ever
// buffered, not with the buffer size. Following the Retained Information
// Period of the original LRU-K paper, retention is bounded: once the
// record table reaches RetentionBound() (a multiple of the peak resident
// set), the history of the longest-unrefreshed non-resident page is
// recycled instead of growing the table, so long replays stop growing
// memory monotonically. HistRecords and HistBytes expose the retained
// cost for the memory comparison against ASB in the evaluation.
//
// Layout: histories live in a flat record table plus one contiguous
// time-stamp slab (K stamps per record); resident frames carry their
// record index in Frame.Tag and are threaded onto an intrusive residency
// list. Steady-state touches and victim scans allocate nothing.
type LRUK struct {
	obs.Target

	k        int
	resident intrusive.List[*buffer.Frame]

	// hist maps a page to its record index in recs.
	hist map[page.ID]int32
	// recs[i] describes one retained history; its K time stamps are
	// times[i*k : (i+1)*k].
	recs  []histRec
	times []uint64
	// hand is the sweep position of the retention reclaim.
	hand int
	// peak is the high-water mark of the resident set, the base of the
	// retention bound.
	peak int
}

// histRec is the retained reference history of one page.
type histRec struct {
	// id is the page this record describes (the reverse of the hist map,
	// needed by the reclaim sweep).
	id page.ID
	// lastQuery is the query that made the most recent reference, used
	// to detect correlated accesses.
	lastQuery uint64
	// resident marks records whose page is currently buffered; those are
	// never reclaimed.
	resident bool
}

// lrukMinRetention is the retention-bound floor: tables smaller than this
// never reclaim, so short traces keep their full history (and the
// paper-scale unit tests see the unbounded behavior).
const lrukMinRetention = 64

// lrukRetentionFactor scales the peak resident set into the retention
// bound — the Retained Information Period expressed in records instead of
// time: histories survive roughly that many times longer than a
// residence.
const lrukRetentionFactor = 16

// NewLRUK returns an LRU-K policy. K must be ≥ 1; LRU-1 degenerates to
// LRU with correlated-reference collapsing.
func NewLRUK(k int) *LRUK {
	if k < 1 {
		panic(fmt.Sprintf("core: LRU-K needs K ≥ 1, got %d", k))
	}
	return &LRUK{
		k:        k,
		resident: intrusive.NewList(frameHooks),
		hist:     make(map[page.ID]int32),
	}
}

// Name implements buffer.Policy.
func (p *LRUK) Name() string { return fmt.Sprintf("LRU-%d", p.k) }

// K returns the history depth.
func (p *LRUK) K() int { return p.k }

// RetentionBound returns the maximum number of history records retained
// before the oldest non-resident history is recycled.
func (p *LRUK) RetentionBound() int {
	b := lrukRetentionFactor * p.peak
	if b < lrukMinRetention {
		b = lrukMinRetention
	}
	return b
}

// timesOf returns record ri's K time stamps: times[0] is HIST(p,1), the
// most recent uncorrelated reference; times[k-1] is HIST(p,K). Zero means
// "no such reference yet".
func (p *LRUK) timesOf(ri int32) []uint64 {
	o := int(ri) * p.k
	return p.times[o : o+p.k : o+p.k]
}

// record returns the record index for id, creating (or reclaiming) one if
// the page has no retained history.
func (p *LRUK) record(id page.ID) int32 {
	if ri, ok := p.hist[id]; ok {
		return ri
	}
	ri := p.allocRec()
	p.recs[ri] = histRec{id: id}
	t := p.timesOf(ri)
	for i := range t {
		t[i] = 0
	}
	p.hist[id] = ri
	return ri
}

// allocRec returns a free record slot: growing the table while it is
// under the retention bound, otherwise recycling the first non-resident
// record the sweep hand finds (approximately the longest-unrefreshed
// retained history, since records are created and refreshed in table
// order only on first touch).
func (p *LRUK) allocRec() int32 {
	if len(p.recs) < p.RetentionBound() {
		p.recs = append(p.recs, histRec{})
		for i := 0; i < p.k; i++ {
			p.times = append(p.times, 0)
		}
		return int32(len(p.recs) - 1)
	}
	for range p.recs {
		p.hand++
		if p.hand >= len(p.recs) {
			p.hand = 0
		}
		if !p.recs[p.hand].resident {
			delete(p.hist, p.recs[p.hand].id)
			return int32(p.hand)
		}
	}
	// Every record resident: the bound (≥ factor × peak residents) makes
	// this unreachable, but grow rather than fail if it ever happens.
	p.recs = append(p.recs, histRec{})
	for i := 0; i < p.k; i++ {
		p.times = append(p.times, 0)
	}
	return int32(len(p.recs) - 1)
}

// touch records a reference to record ri at time now by query q,
// collapsing correlated references (paper §2.2, cases 1 and 2).
func (p *LRUK) touch(ri int32, now, q uint64) {
	rec := &p.recs[ri]
	t := p.timesOf(ri)
	if rec.lastQuery == q && t[0] != 0 {
		// Correlated with the most recent reference: replace HIST(p,1).
		t[0] = now
		return
	}
	// Uncorrelated: shift the history and insert the new HIST(p,1).
	copy(t[1:], t)
	t[0] = now
	rec.lastQuery = q
}

// OnAdmit implements buffer.Policy.
func (p *LRUK) OnAdmit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	ri := p.record(f.Meta.ID)
	p.recs[ri].resident = true
	f.Tag = uint32(ri)
	p.resident.PushFront(f)
	if n := p.resident.Len(); n > p.peak {
		p.peak = n
	}
	p.touch(ri, now, ctx.QueryID)
}

// OnHit implements buffer.Policy. The frame's Tag already names its
// history record, so a hit touches the flat table without a map lookup.
func (p *LRUK) OnHit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	p.touch(int32(f.Tag), now, ctx.QueryID)
}

// Victim implements buffer.Policy. Among unpinned pages whose most recent
// reference is not correlated with the current access, it picks the one
// with the oldest HIST(q,K); pages with fewer than K recorded references
// rank oldest (HIST(q,K) = 0). Ties break on the older HIST(q,1). If every
// page is correlated with the current query, the restriction is dropped
// (otherwise a buffer smaller than one query's working set could never
// evict) — one of the "special cases" footnote 2 of the paper leaves open.
func (p *LRUK) Victim(ctx buffer.AccessContext) *buffer.Frame {
	v := p.victim(ctx, true)
	if v == nil {
		v = p.victim(ctx, false)
	}
	return v
}

func (p *LRUK) victim(ctx buffer.AccessContext, excludeCorrelated bool) *buffer.Frame {
	var best *buffer.Frame
	var bestK, best1 uint64
	for f := p.resident.Front(); f != nil; f = p.resident.Next(f) {
		if f.Pinned() {
			continue
		}
		ri := int32(f.Tag)
		if excludeCorrelated && p.recs[ri].lastQuery == ctx.QueryID {
			continue
		}
		t := p.timesOf(ri)
		hk := t[p.k-1]
		h1 := t[0]
		if best == nil || hk < bestK || (hk == bestK && h1 < best1) ||
			(hk == bestK && h1 == best1 && f.Meta.ID < best.Meta.ID) {
			best, bestK, best1 = f, hk, h1
		}
	}
	return best
}

// OnEvict implements buffer.Policy. The history record is retained (until
// the retention bound recycles it). The Eviction event's Criterion is the
// victim's HIST(q,K) — the backward K-distance the policy ranked it by;
// LRURank is -1 (history order, not recency order).
func (p *LRUK) OnEvict(f *buffer.Frame) {
	p.resident.Remove(f)
	ri := int32(f.Tag)
	p.recs[ri].resident = false
	p.Sink().Eviction(obs.EvictionEvent{
		Page:      f.Meta.ID,
		Reason:    obs.ReasonLRUK,
		Criterion: float64(p.timesOf(ri)[p.k-1]),
		LRURank:   -1,
	})
}

// Reset implements buffer.Policy: it clears residency AND the retained
// histories (a cleared buffer starts cold, as in the paper's
// experiments). The map and the record/stamp slabs are reused, not
// reallocated, so a Clear in a replay loop costs no garbage.
func (p *LRUK) Reset() {
	p.resident.Clear()
	clear(p.hist)
	p.recs = p.recs[:0]
	p.times = p.times[:0]
	p.hand = 0
	p.peak = 0
}

// HistRecords returns the number of retained history records — the count
// of distinct pages ever buffered since the last Reset, capped by the
// retention bound.
func (p *LRUK) HistRecords() int { return len(p.hist) }

// HistBytes estimates the memory held by the retained histories: per
// record K time stamps, the record header (page ID, correlation query,
// residency) and the map entry.
func (p *LRUK) HistBytes() int {
	const perRecordOverhead = 8 /* map key */ + 4 /* map value */ + 24 /* record */
	return len(p.hist) * (perRecordOverhead + 8*p.k)
}
