package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/page"
)

func TestLRUKPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewLRUK(0) should panic")
		}
	}()
	core.NewLRUK(0)
}

func TestLRUKName(t *testing.T) {
	if got := core.NewLRUK(2).Name(); got != "LRU-2" {
		t.Errorf("name = %q", got)
	}
	if core.NewLRUK(2).K() != 2 {
		t.Error("K() = ?")
	}
}

func TestLRU2PrefersFrequentlyReusedPages(t *testing.T) {
	// The defining LRU-K behaviour: a page referenced twice (by distinct
	// queries) beats a page referenced once, even if the once-referenced
	// page is more recent.
	s := buildStore(t, uniformPages(3, 1))
	m := mustManager(t, s, core.NewLRUK(2), 2)
	// Page 1: referenced by queries 1 and 3 → two uncorrelated refs.
	// Page 2: referenced by query 2 only → HIST(2,2) = 0.
	runOn(t, m, []access{q(1, 1), q(2, 2), q(1, 3)})
	// Miss on page 3 (query 4): victim must be page 2 (oldest HIST(·,2)),
	// not page 1, although page 2 was referenced after page 1's first ref.
	runOn(t, m, []access{q(3, 4)})
	if m.Contains(2) || !resident(m, 1, 3) {
		t.Errorf("resident = %v, want [1 3]", m.ResidentIDs())
	}
}

func TestLRUKCorrelatedReferencesCollapse(t *testing.T) {
	// Repeated references within one query are correlated: they must not
	// push a second timestamp into HIST. Page 1 referenced 5× by query 1
	// still has only one uncorrelated reference, so it loses to page 2
	// referenced by queries 2 and 3.
	s := buildStore(t, uniformPages(3, 1))
	m := mustManager(t, s, core.NewLRUK(2), 2)
	runOn(t, m, []access{
		q(1, 1), q(1, 1), q(1, 1), q(1, 1), q(1, 1),
		q(2, 2), q(2, 3),
	})
	runOn(t, m, []access{q(3, 4)})
	if m.Contains(1) || !resident(m, 2, 3) {
		t.Errorf("resident = %v, want [2 3]", m.ResidentIDs())
	}
}

func TestLRUKExcludesCurrentQueryPages(t *testing.T) {
	// The victim must not be a page whose last reference is correlated
	// with the current access (paper §2.2 case 3). Both pages have
	// incomplete histories (HIST(·,2) = 0), so the tie-break favours the
	// older HIST(·,1): page 2 (t=1) over page 1 (t=2). But the fault on
	// page 3 comes from query 5 — the query that last referenced page 2 —
	// so page 2 is excluded and page 1 must be evicted instead.
	s := buildStore(t, uniformPages(3, 1))
	m := mustManager(t, s, core.NewLRUK(2), 2)
	runOn(t, m, []access{q(2, 5), q(1, 9)})
	runOn(t, m, []access{q(3, 5)})
	if m.Contains(1) || !resident(m, 2, 3) {
		t.Errorf("resident = %v, want [2 3]", m.ResidentIDs())
	}
}

func TestLRUKFallbackWhenAllCorrelated(t *testing.T) {
	// If every resident page was last referenced by the current query,
	// the exclusion rule would deadlock; the implementation must fall
	// back to evicting something.
	s := buildStore(t, uniformPages(3, 1))
	m := mustManager(t, s, core.NewLRUK(2), 2)
	runOn(t, m, []access{q(1, 7), q(2, 7), q(3, 7)})
	if m.Len() != 2 {
		t.Errorf("Len = %d, want 2", m.Len())
	}
}

func TestLRUKHistorySurvivesEviction(t *testing.T) {
	// A page's references before eviction must still count after it is
	// reloaded. Trace (capacity 2, K=2):
	//   q(1,1) q(1,2)          → {1}, HIST(1) = [2,1]
	//   q(2,3)                 → {1,2}, HIST(2) = [3,·]
	//   q(3,4)                 → evicts 2 (HIST(2,2)=0 < HIST(1,2)=1)
	//   q(1,5)                 → hit, HIST(1) = [5,2]
	//   q(2,6)                 → RELOAD of 2; retained history makes
	//                            HIST(2) = [6,3]; evicts 3 (HIST=0)
	//   q(4,7)                 → victim: HIST(1,2)=2 < HIST(2,2)=3,
	//                            so page 1 goes — only possible because
	//                            page 2 kept its pre-eviction reference.
	s := buildStore(t, uniformPages(4, 1))
	pol := core.NewLRUK(2)
	m := mustManager(t, s, pol, 2)
	runOn(t, m, []access{q(1, 1), q(1, 2), q(2, 3), q(3, 4), q(1, 5), q(2, 6), q(4, 7)})
	if m.Contains(1) || !resident(m, 2, 4) {
		t.Errorf("resident = %v, want [2 4]", m.ResidentIDs())
	}
	if pol.HistRecords() != 4 {
		t.Errorf("HistRecords = %d, want 4 (histories retained)", pol.HistRecords())
	}
	if pol.HistBytes() <= 0 {
		t.Error("HistBytes should be positive")
	}
}

func TestLRUKHistoryGrowsBeyondBufferSize(t *testing.T) {
	// The paper's criticism: LRU-K memory grows with the number of pages
	// ever buffered, not the buffer size.
	n := 50
	s := buildStore(t, uniformPages(n, 1))
	pol := core.NewLRUK(2)
	m := mustManager(t, s, pol, 4)
	var seq []access
	for i := 1; i <= n; i++ {
		seq = append(seq, q(page.ID(i), uint64(i)))
	}
	runOn(t, m, seq)
	if pol.HistRecords() != n {
		t.Errorf("HistRecords = %d, want %d", pol.HistRecords(), n)
	}
	if m.Len() != 4 {
		t.Errorf("Len = %d, want 4", m.Len())
	}
}

func TestLRUKResetDropsHistory(t *testing.T) {
	s := buildStore(t, uniformPages(3, 1))
	pol := core.NewLRUK(2)
	m := mustManager(t, s, pol, 2)
	runOn(t, m, seqOf(1, 2, 3))
	if err := m.Clear(); err != nil {
		t.Fatal(err)
	}
	if pol.HistRecords() != 0 {
		t.Errorf("HistRecords after reset = %d", pol.HistRecords())
	}
}

func TestLRU1BehavesLikeLRUOnUncorrelatedAccesses(t *testing.T) {
	// With K=1 and every access its own query, LRU-1's HIST(p,1) is the
	// last-access time, so eviction order matches LRU.
	specs := uniformPages(6, 1)
	seq := seqOf(1, 2, 3, 1, 4, 5, 2, 6, 1, 3, 4, 6, 5, 2, 1)
	sA := buildStore(t, specs)
	sB := buildStore(t, specs)
	missA := run(t, sA, core.NewLRU(), 3, seq)
	missB := run(t, sB, core.NewLRUK(1), 3, seq)
	if !idsEqual(missA, missB) {
		t.Errorf("LRU misses %v != LRU-1 misses %v", missA, missB)
	}
}
