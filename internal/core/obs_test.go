package core_test

import (
	"testing"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/page"
)

// TestSteadyStateEvictionAllocsUnchangedBySink drives instrumented
// policies through a manager in steady state (every request a miss +
// eviction, the worst case for event volume). Policies may allocate aux
// records per admission, so the assertion is relative: attaching the
// no-op sink must not change the allocation count per request.
func TestSteadyStateEvictionAllocsUnchangedBySink(t *testing.T) {
	specs := make([]pageSpec, 8)
	for i := range specs {
		specs[i] = dataPage(float64(i + 1))
	}
	mk := map[string]func() buffer.Policy{
		"LRU":     func() buffer.Policy { return core.NewLRU() },
		"FIFO":    func() buffer.Policy { return core.NewFIFO() },
		"LRU-P":   func() buffer.Policy { return core.NewLRUP() },
		"SLRU":    func() buffer.Policy { return core.NewSLRU(page.CritA, 2) },
		"ASB":     func() buffer.Policy { return core.NewASB(4, core.DefaultASBOptions()) },
		"LRU-2":   func() buffer.Policy { return core.NewLRUK(2) },
		"spatial": func() buffer.Policy { return core.NewSpatial(page.CritA) },
	}
	for name, newPolicy := range mk {
		t.Run(name, func(t *testing.T) {
			measure := func(sink obs.Sink) float64 {
				s := buildStore(t, specs)
				m, err := buffer.NewManager(s, newPolicy(), 4)
				if err != nil {
					t.Fatal(err)
				}
				if sink != nil {
					m.SetSink(sink)
				}
				// Warm up so every further access cycles miss+evict.
				next := 0
				get := func() {
					id := page.ID(next%8 + 1)
					next++
					if _, err := m.Get(id, buffer.AccessContext{QueryID: uint64(next)}); err != nil {
						t.Fatal(err)
					}
				}
				for i := 0; i < 16; i++ {
					get()
				}
				return testing.AllocsPerRun(500, get)
			}
			base := measure(nil)
			nop := measure(obs.NopSink{})
			if nop != base {
				t.Errorf("no-op sink changes allocations: %.2f → %.2f per request", base, nop)
			}
		})
	}
}

// TestInstrumentedPoliciesEmitEvictionEvents replays a miss-heavy access
// pattern and checks every instrumented policy reports its evictions
// with its own reason tag.
func TestInstrumentedPoliciesEmitEvictionEvents(t *testing.T) {
	specs := make([]pageSpec, 8)
	for i := range specs {
		specs[i] = dataPage(float64(i + 1))
	}
	cases := []struct {
		name   string
		policy buffer.Policy
		reason string
	}{
		{"LRU", core.NewLRU(), obs.ReasonLRU},
		{"FIFO", core.NewFIFO(), obs.ReasonFIFO},
		{"LRU-P", core.NewLRUP(), obs.ReasonPriority},
		{"SLRU", core.NewSLRU(page.CritA, 2), obs.ReasonSLRU},
		{"spatial", core.NewSpatial(page.CritA), obs.ReasonSpatial},
		{"LRU-2", core.NewLRUK(2), obs.ReasonLRUK},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := buildStore(t, specs)
			m, err := buffer.NewManager(s, tc.policy, 4)
			if err != nil {
				t.Fatal(err)
			}
			rec := &evictionRecorder{}
			m.SetSink(rec)
			for i := 0; i < 16; i++ {
				if _, err := m.Get(page.ID(i%8+1), buffer.AccessContext{QueryID: uint64(i)}); err != nil {
					t.Fatal(err)
				}
			}
			if len(rec.events) == 0 {
				t.Fatal("no eviction events emitted")
			}
			if uint64(len(rec.events)) != m.Stats().Evictions {
				t.Errorf("%d events for %d evictions", len(rec.events), m.Stats().Evictions)
			}
			for _, e := range rec.events {
				if e.Reason != tc.reason {
					t.Fatalf("reason = %q, want %q", e.Reason, tc.reason)
				}
			}
		})
	}
}

// TestASBEvictionReasons checks ASB distinguishes overflow-FIFO
// evictions from direct main-part evictions.
func TestASBEvictionReasons(t *testing.T) {
	specs := make([]pageSpec, 12)
	for i := range specs {
		specs[i] = dataPage(float64(i + 1))
	}
	s := buildStore(t, specs)
	m, err := buffer.NewManager(s, core.NewASB(6, core.DefaultASBOptions()), 6)
	if err != nil {
		t.Fatal(err)
	}
	rec := &evictionRecorder{}
	m.SetSink(rec)
	for i := 0; i < 24; i++ {
		if _, err := m.Get(page.ID(i%12+1), buffer.AccessContext{QueryID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if len(rec.events) == 0 {
		t.Fatal("no eviction events")
	}
	for _, e := range rec.events {
		if e.Reason != obs.ReasonASBOverflow && e.Reason != obs.ReasonASBMain {
			t.Fatalf("unexpected reason %q", e.Reason)
		}
		if e.Reason == obs.ReasonASBOverflow && e.LRURank < 0 {
			t.Errorf("overflow eviction without FIFO rank: %+v", e)
		}
	}
}

type evictionRecorder struct {
	obs.NopSink
	events []obs.EvictionEvent
}

func (r *evictionRecorder) Eviction(e obs.EvictionEvent) { r.events = append(r.events, e) }
