package core

import (
	"container/list"
	"sort"

	"repro/internal/buffer"
	"repro/internal/obs"
	"repro/internal/page"
)

// PriorityFunc assigns a replacement priority to a page: the higher the
// priority, the longer the page should stay in the buffer (paper §2.1).
type PriorityFunc func(m page.Meta) int

// TypePriority is the LRU-T assignment: object pages are dropped first,
// then data pages; directory pages stay longest.
func TypePriority(m page.Meta) int {
	switch m.Type {
	case page.TypeObject:
		return 0
	case page.TypeData:
		return 1
	default:
		return 2
	}
}

// LevelPriority is the LRU-P assignment: object pages have priority 0 and
// the priority of a SAM page grows with its height in the tree, so the
// root has the highest priority — a generalization of pinning the top
// levels of the index (Leutenegger & Lopez).
func LevelPriority(m page.Meta) int {
	if m.Type == page.TypeObject {
		return 0
	}
	return 1 + m.Level
}

// PriorityLRU keeps one LRU chain per priority class and always evicts
// from the lowest-priority non-empty class. With TypePriority it is the
// paper's LRU-T, with LevelPriority its LRU-P.
type PriorityLRU struct {
	obs.Target

	name string
	prio PriorityFunc
	// classes maps priority → LRU list of *buffer.Frame (front = MRU).
	classes map[int]*list.List
	// lastRank is the victim's LRU rank within its priority class at
	// selection time.
	lastRank int
}

// prioAux is the per-frame state of a PriorityLRU.
type prioAux struct {
	class int
	elem  *list.Element
}

// NewLRUT returns the type-based LRU policy (paper §2.1).
func NewLRUT() *PriorityLRU {
	return NewPriorityLRU("LRU-T", TypePriority)
}

// NewLRUP returns the priority-based (tree-level) LRU policy (paper §2.1).
func NewLRUP() *PriorityLRU {
	return NewPriorityLRU("LRU-P", LevelPriority)
}

// NewPriorityLRU returns an LRU policy stratified by the given priority
// function.
func NewPriorityLRU(name string, prio PriorityFunc) *PriorityLRU {
	return &PriorityLRU{name: name, prio: prio, classes: make(map[int]*list.List), lastRank: -1}
}

// Name implements buffer.Policy.
func (p *PriorityLRU) Name() string { return p.name }

// OnAdmit implements buffer.Policy.
func (p *PriorityLRU) OnAdmit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	class := p.prio(f.Meta)
	l := p.classes[class]
	if l == nil {
		l = list.New()
		p.classes[class] = l
	}
	f.SetAux(&prioAux{class: class, elem: l.PushFront(f)})
}

// OnHit implements buffer.Policy.
func (p *PriorityLRU) OnHit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	aux := f.Aux().(*prioAux)
	p.classes[aux.class].MoveToFront(aux.elem)
}

// Victim implements buffer.Policy: the LRU frame of the lowest-priority
// class containing an unpinned frame.
func (p *PriorityLRU) Victim(ctx buffer.AccessContext) *buffer.Frame {
	classes := make([]int, 0, len(p.classes))
	for c, l := range p.classes {
		if l.Len() > 0 {
			classes = append(classes, c)
		}
	}
	sort.Ints(classes)
	for _, c := range classes {
		rank := 0
		for e := p.classes[c].Back(); e != nil; e = e.Prev() {
			if f := e.Value.(*buffer.Frame); !f.Pinned() {
				p.lastRank = rank
				return f
			}
			rank++
		}
	}
	return nil
}

// OnEvict implements buffer.Policy.
func (p *PriorityLRU) OnEvict(f *buffer.Frame) {
	aux := f.Aux().(*prioAux)
	p.classes[aux.class].Remove(aux.elem)
	p.Sink().Eviction(obs.EvictionEvent{
		Page:      f.Meta.ID,
		Reason:    obs.ReasonPriority,
		Criterion: float64(aux.class),
		LRURank:   p.lastRank,
	})
	p.lastRank = -1
	f.SetAux(nil)
}

// Reset implements buffer.Policy.
func (p *PriorityLRU) Reset() {
	p.classes = make(map[int]*list.List)
	p.lastRank = -1
}
