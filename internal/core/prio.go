package core

import (
	"sort"

	"repro/internal/buffer"
	"repro/internal/core/intrusive"
	"repro/internal/obs"
	"repro/internal/page"
)

// PriorityFunc assigns a replacement priority to a page: the higher the
// priority, the longer the page should stay in the buffer (paper §2.1).
type PriorityFunc func(m page.Meta) int

// TypePriority is the LRU-T assignment: object pages are dropped first,
// then data pages; directory pages stay longest.
func TypePriority(m page.Meta) int {
	switch m.Type {
	case page.TypeObject:
		return 0
	case page.TypeData:
		return 1
	default:
		return 2
	}
}

// LevelPriority is the LRU-P assignment: object pages have priority 0 and
// the priority of a SAM page grows with its height in the tree, so the
// root has the highest priority — a generalization of pinning the top
// levels of the index (Leutenegger & Lopez).
func LevelPriority(m page.Meta) int {
	if m.Type == page.TypeObject {
		return 0
	}
	return 1 + m.Level
}

// PriorityLRU keeps one LRU chain per priority class and always evicts
// from the lowest-priority non-empty class. With TypePriority it is the
// paper's LRU-T, with LevelPriority its LRU-P.
//
// Each class chain is an intrusive list; a frame's class is stashed in
// Frame.Tag so eviction finds its chain without recomputing the priority.
// The set of class IDs is maintained sorted as classes appear (a handful
// of cold-path insertions for any real priority function), so victim
// selection iterates ascending without sorting — the per-call
// allocate-and-sort of the naive implementation is gone from the
// steady-state path.
type PriorityLRU struct {
	obs.Target

	name string
	prio PriorityFunc
	// classes maps priority → LRU chain (front = MRU). Chains persist
	// across Reset so steady-state replays reuse them.
	classes map[int]*intrusive.List[*buffer.Frame]
	// classIDs is the sorted key set of classes.
	classIDs []int
	// lastRank is the victim's LRU rank within its priority class at
	// selection time.
	lastRank int
}

// NewLRUT returns the type-based LRU policy (paper §2.1).
func NewLRUT() *PriorityLRU {
	return NewPriorityLRU("LRU-T", TypePriority)
}

// NewLRUP returns the priority-based (tree-level) LRU policy (paper §2.1).
func NewLRUP() *PriorityLRU {
	return NewPriorityLRU("LRU-P", LevelPriority)
}

// NewPriorityLRU returns an LRU policy stratified by the given priority
// function.
func NewPriorityLRU(name string, prio PriorityFunc) *PriorityLRU {
	return &PriorityLRU{
		name:     name,
		prio:     prio,
		classes:  make(map[int]*intrusive.List[*buffer.Frame]),
		lastRank: -1,
	}
}

// Name implements buffer.Policy.
func (p *PriorityLRU) Name() string { return p.name }

// class returns the chain for the given priority, creating it (and
// inserting the ID into the sorted key set) on first sight.
func (p *PriorityLRU) class(c int) *intrusive.List[*buffer.Frame] {
	if l, ok := p.classes[c]; ok {
		return l
	}
	l := new(intrusive.List[*buffer.Frame])
	*l = intrusive.NewList(frameHooks)
	p.classes[c] = l
	i := sort.SearchInts(p.classIDs, c)
	p.classIDs = append(p.classIDs, 0)
	copy(p.classIDs[i+1:], p.classIDs[i:])
	p.classIDs[i] = c
	return l
}

// OnAdmit implements buffer.Policy.
func (p *PriorityLRU) OnAdmit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	c := p.prio(f.Meta)
	f.Tag = uint32(int32(c)) // sign-preserving for negative custom priorities
	p.class(c).PushFront(f)
}

// OnHit implements buffer.Policy.
func (p *PriorityLRU) OnHit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	p.classes[int(int32(f.Tag))].MoveToFront(f)
}

// Victim implements buffer.Policy: the LRU frame of the lowest-priority
// class containing an unpinned frame.
func (p *PriorityLRU) Victim(ctx buffer.AccessContext) *buffer.Frame {
	for _, c := range p.classIDs {
		rank := 0
		l := p.classes[c]
		for f := l.Back(); f != nil; f = l.Prev(f) {
			if !f.Pinned() {
				p.lastRank = rank
				return f
			}
			rank++
		}
	}
	return nil
}

// OnEvict implements buffer.Policy.
func (p *PriorityLRU) OnEvict(f *buffer.Frame) {
	class := int(int32(f.Tag))
	p.classes[class].Remove(f)
	p.Sink().Eviction(obs.EvictionEvent{
		Page:      f.Meta.ID,
		Reason:    obs.ReasonPriority,
		Criterion: float64(class),
		LRURank:   p.lastRank,
	})
	p.lastRank = -1
}

// Reset implements buffer.Policy: the chains are emptied but the class
// map and sorted key set are kept for reuse.
func (p *PriorityLRU) Reset() {
	for _, l := range p.classes {
		l.Clear()
	}
	p.lastRank = -1
}
