package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/page"
)

func TestTypePriority(t *testing.T) {
	tests := []struct {
		typ  page.Type
		want int
	}{
		{page.TypeObject, 0},
		{page.TypeData, 1},
		{page.TypeDirectory, 2},
	}
	for _, tt := range tests {
		if got := core.TypePriority(page.Meta{Type: tt.typ}); got != tt.want {
			t.Errorf("TypePriority(%v) = %d, want %d", tt.typ, got, tt.want)
		}
	}
}

func TestLevelPriority(t *testing.T) {
	if got := core.LevelPriority(page.Meta{Type: page.TypeObject, Level: 5}); got != 0 {
		t.Errorf("object priority = %d, want 0", got)
	}
	if got := core.LevelPriority(page.Meta{Type: page.TypeData, Level: 0}); got != 1 {
		t.Errorf("data priority = %d, want 1", got)
	}
	if got := core.LevelPriority(page.Meta{Type: page.TypeDirectory, Level: 3}); got != 4 {
		t.Errorf("level-3 directory priority = %d, want 4", got)
	}
}

func TestLRUTDropsObjectPagesFirst(t *testing.T) {
	// Pages: 1=directory, 2=data, 3=object, 4=data.
	s := buildStore(t, []pageSpec{
		{typ: page.TypeDirectory, level: 1, area: 1},
		{typ: page.TypeData, level: 0, area: 1},
		{typ: page.TypeObject, level: 0, area: 1},
		{typ: page.TypeData, level: 0, area: 1},
	})
	m := mustManager(t, s, core.NewLRUT(), 3)
	runOn(t, m, seqOf(1, 2, 3))
	// Object page 3 was used most recently, but must be evicted first.
	runOn(t, m, []access{q(4, 9)})
	if m.Contains(3) || !resident(m, 1, 2, 4) {
		t.Errorf("resident = %v, want [1 2 4]", m.ResidentIDs())
	}
}

func TestLRUTKeepsDirectoryLongest(t *testing.T) {
	// 1=directory accessed first, 2,3,4=data; capacity 2.
	s := buildStore(t, []pageSpec{
		{typ: page.TypeDirectory, level: 1, area: 1},
		dataPage(1), dataPage(1), dataPage(1),
	})
	m := mustManager(t, s, core.NewLRUT(), 2)
	runOn(t, m, seqOf(1, 2, 3, 4))
	// Data pages churn among themselves; the directory page stays.
	if !m.Contains(1) {
		t.Errorf("directory page evicted; resident = %v", m.ResidentIDs())
	}
}

func TestLRUPEvictsLowestLevelFirst(t *testing.T) {
	// Levels: 1→root (2), 2→mid (1), 3,4→leaf (0). Capacity 3.
	s := buildStore(t, []pageSpec{
		{typ: page.TypeDirectory, level: 2, area: 1},
		{typ: page.TypeDirectory, level: 1, area: 1},
		{typ: page.TypeData, level: 0, area: 1},
		{typ: page.TypeData, level: 0, area: 1},
	})
	m := mustManager(t, s, core.NewLRUP(), 3)
	runOn(t, m, seqOf(3, 1, 2)) // leaf requested first = least recent
	// Admitting page 4 must evict page 3 (lowest level) even though the
	// recency order alone would also pick 3 here; so re-touch 3 first.
	runOn(t, m, []access{q(3, 8)}) // 3 is now the most recently used
	runOn(t, m, []access{q(4, 9)})
	if m.Contains(3) {
		t.Errorf("leaf page 3 should be evicted despite recent use; resident = %v", m.ResidentIDs())
	}
	if !resident(m, 1, 2, 4) {
		t.Errorf("resident = %v, want [1 2 4]", m.ResidentIDs())
	}
}

func TestLRUPUsesLRUWithinLevel(t *testing.T) {
	s := buildStore(t, []pageSpec{
		dataPage(1), dataPage(1), dataPage(1),
	})
	m := mustManager(t, s, core.NewLRUP(), 2)
	runOn(t, m, seqOf(1, 2))
	runOn(t, m, []access{q(1, 5)}) // 1 more recent than 2
	runOn(t, m, []access{q(3, 6)})
	if m.Contains(2) || !resident(m, 1, 3) {
		t.Errorf("resident = %v, want [1 3]", m.ResidentIDs())
	}
}

func TestPriorityLRUNames(t *testing.T) {
	if core.NewLRUT().Name() != "LRU-T" {
		t.Error("LRU-T name")
	}
	if core.NewLRUP().Name() != "LRU-P" {
		t.Error("LRU-P name")
	}
}

func TestPriorityLRUReset(t *testing.T) {
	s := buildStore(t, []pageSpec{
		{typ: page.TypeDirectory, level: 1, area: 1},
		dataPage(1), dataPage(1),
	})
	m := mustManager(t, s, core.NewLRUP(), 2)
	runOn(t, m, seqOf(1, 2, 3))
	if err := m.Clear(); err != nil {
		t.Fatal(err)
	}
	misses := runOn(t, m, seqOf(1, 2))
	if len(misses) != 2 {
		t.Errorf("cold misses after reset = %d, want 2", len(misses))
	}
}
