//go:build !race

package core_test

// raceEnabled reports whether the race detector instruments this build.
// The zero-allocation assertions only hold without instrumentation.
const raceEnabled = false
