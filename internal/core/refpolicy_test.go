package core_test

// This file preserves the pre-intrusive ("old style") implementations of
// every standard policy — container/list, container/ring, container/heap
// and per-frame aux boxes — as executable oracles. They are the
// implementations the intrusive rewrites replaced; the property test in
// equivalence_test.go replays random traces through both and asserts
// identical miss and eviction sequences, so any behavioral drift the
// refactor introduced shows up as a counterexample trace.
//
// The reference policies use only the exported buffer API (Frame.Aux /
// SetAux carry their per-frame state), emit Eviction events through
// obs.Target like the real ones, and deliberately allocate per
// operation — they are correctness baselines, not performance ones.

import (
	"container/heap"
	"container/list"
	"container/ring"
	"sort"

	"repro/internal/buffer"
	"repro/internal/obs"
	"repro/internal/page"
)

// ---------------------------------------------------------------- LRU --

type refLRU struct {
	obs.Target
	order    *list.List
	lastRank int
}

func newRefLRU() *refLRU { return &refLRU{order: list.New(), lastRank: -1} }

func (p *refLRU) Name() string { return "LRU" }

func (p *refLRU) OnAdmit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	f.SetAux(p.order.PushFront(f))
}

func (p *refLRU) OnHit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	p.order.MoveToFront(f.Aux().(*list.Element))
}

func (p *refLRU) Victim(ctx buffer.AccessContext) *buffer.Frame {
	rank := 0
	for e := p.order.Back(); e != nil; e = e.Prev() {
		if f := e.Value.(*buffer.Frame); !f.Pinned() {
			p.lastRank = rank
			return f
		}
		rank++
	}
	return nil
}

func (p *refLRU) OnEvict(f *buffer.Frame) {
	p.order.Remove(f.Aux().(*list.Element))
	p.Sink().Eviction(obs.EvictionEvent{Page: f.Meta.ID, Reason: obs.ReasonLRU, LRURank: p.lastRank})
	p.lastRank = -1
	f.SetAux(nil)
}

func (p *refLRU) Reset() {
	p.order.Init()
	p.lastRank = -1
}

// --------------------------------------------------------------- FIFO --

type refFIFO struct {
	obs.Target
	order    *list.List
	lastRank int
}

func newRefFIFO() *refFIFO { return &refFIFO{order: list.New(), lastRank: -1} }

func (p *refFIFO) Name() string { return "FIFO" }

func (p *refFIFO) OnAdmit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	f.SetAux(p.order.PushBack(f))
}

func (p *refFIFO) OnHit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {}

func (p *refFIFO) Victim(ctx buffer.AccessContext) *buffer.Frame {
	rank := 0
	for e := p.order.Front(); e != nil; e = e.Next() {
		if f := e.Value.(*buffer.Frame); !f.Pinned() {
			p.lastRank = rank
			return f
		}
		rank++
	}
	return nil
}

func (p *refFIFO) OnEvict(f *buffer.Frame) {
	p.order.Remove(f.Aux().(*list.Element))
	p.Sink().Eviction(obs.EvictionEvent{Page: f.Meta.ID, Reason: obs.ReasonFIFO, LRURank: p.lastRank})
	p.lastRank = -1
	f.SetAux(nil)
}

func (p *refFIFO) Reset() {
	p.order.Init()
	p.lastRank = -1
}

// ------------------------------------------------------- priority LRU --

type refPriorityLRU struct {
	obs.Target
	name     string
	prio     func(page.Meta) int
	classes  map[int]*list.List
	lastRank int
}

type refPrioAux struct {
	class int
	elem  *list.Element
}

func newRefPriorityLRU(name string, prio func(page.Meta) int) *refPriorityLRU {
	return &refPriorityLRU{name: name, prio: prio, classes: make(map[int]*list.List), lastRank: -1}
}

func (p *refPriorityLRU) Name() string { return p.name }

func (p *refPriorityLRU) OnAdmit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	class := p.prio(f.Meta)
	l := p.classes[class]
	if l == nil {
		l = list.New()
		p.classes[class] = l
	}
	f.SetAux(&refPrioAux{class: class, elem: l.PushFront(f)})
}

func (p *refPriorityLRU) OnHit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	aux := f.Aux().(*refPrioAux)
	p.classes[aux.class].MoveToFront(aux.elem)
}

func (p *refPriorityLRU) Victim(ctx buffer.AccessContext) *buffer.Frame {
	classes := make([]int, 0, len(p.classes))
	for c, l := range p.classes {
		if l.Len() > 0 {
			classes = append(classes, c)
		}
	}
	sort.Ints(classes)
	for _, c := range classes {
		rank := 0
		for e := p.classes[c].Back(); e != nil; e = e.Prev() {
			if f := e.Value.(*buffer.Frame); !f.Pinned() {
				p.lastRank = rank
				return f
			}
			rank++
		}
	}
	return nil
}

func (p *refPriorityLRU) OnEvict(f *buffer.Frame) {
	aux := f.Aux().(*refPrioAux)
	p.classes[aux.class].Remove(aux.elem)
	p.Sink().Eviction(obs.EvictionEvent{
		Page: f.Meta.ID, Reason: obs.ReasonPriority,
		Criterion: float64(aux.class), LRURank: p.lastRank,
	})
	p.lastRank = -1
	f.SetAux(nil)
}

func (p *refPriorityLRU) Reset() {
	p.classes = make(map[int]*list.List)
	p.lastRank = -1
}

// -------------------------------------------------------------- LRU-K --

type refLRUK struct {
	obs.Target
	k        int
	resident map[*buffer.Frame]struct{}
	hist     map[page.ID]*refHistRec
}

type refHistRec struct {
	times     []uint64
	lastQuery uint64
}

func newRefLRUK(k int) *refLRUK {
	return &refLRUK{
		k:        k,
		resident: make(map[*buffer.Frame]struct{}),
		hist:     make(map[page.ID]*refHistRec),
	}
}

func (p *refLRUK) Name() string { return "LRU-K" }

func (p *refLRUK) touch(id page.ID, now, q uint64) {
	rec := p.hist[id]
	if rec == nil {
		rec = &refHistRec{times: make([]uint64, p.k)}
		p.hist[id] = rec
	} else if rec.lastQuery == q {
		rec.times[0] = now
		return
	}
	copy(rec.times[1:], rec.times)
	rec.times[0] = now
	rec.lastQuery = q
}

func (p *refLRUK) OnAdmit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	p.resident[f] = struct{}{}
	p.touch(f.Meta.ID, now, ctx.QueryID)
}

func (p *refLRUK) OnHit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	p.touch(f.Meta.ID, now, ctx.QueryID)
}

func (p *refLRUK) Victim(ctx buffer.AccessContext) *buffer.Frame {
	v := p.victim(ctx, true)
	if v == nil {
		v = p.victim(ctx, false)
	}
	return v
}

func (p *refLRUK) victim(ctx buffer.AccessContext, excludeCorrelated bool) *buffer.Frame {
	var best *buffer.Frame
	var bestK, best1 uint64
	for f := range p.resident {
		if f.Pinned() {
			continue
		}
		rec := p.hist[f.Meta.ID]
		if excludeCorrelated && rec.lastQuery == ctx.QueryID {
			continue
		}
		hk := rec.times[p.k-1]
		h1 := rec.times[0]
		if best == nil || hk < bestK || (hk == bestK && h1 < best1) ||
			(hk == bestK && h1 == best1 && f.Meta.ID < best.Meta.ID) {
			best, bestK, best1 = f, hk, h1
		}
	}
	return best
}

func (p *refLRUK) OnEvict(f *buffer.Frame) {
	delete(p.resident, f)
	var histK float64
	if rec := p.hist[f.Meta.ID]; rec != nil {
		histK = float64(rec.times[p.k-1])
	}
	p.Sink().Eviction(obs.EvictionEvent{
		Page: f.Meta.ID, Reason: obs.ReasonLRUK, Criterion: histK, LRURank: -1,
	})
}

func (p *refLRUK) Reset() {
	p.resident = make(map[*buffer.Frame]struct{})
	p.hist = make(map[page.ID]*refHistRec)
}

// ------------------------------------------------------------ spatial --

type refSpatial struct {
	obs.Target
	crit page.Criterion
	h    refSpatialHeap
}

type refSpatialAux struct {
	idx  int
	crit float64
	use  uint64
}

func newRefSpatial(crit page.Criterion) *refSpatial { return &refSpatial{crit: crit} }

func (p *refSpatial) Name() string { return p.crit.String() }

func (p *refSpatial) OnAdmit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	f.SetAux(&refSpatialAux{crit: p.crit.Value(f.Meta), use: now})
	heap.Push(&p.h, f)
}

func (p *refSpatial) OnHit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	aux := f.Aux().(*refSpatialAux)
	aux.use = now
	heap.Fix(&p.h, aux.idx)
}

func (p *refSpatial) Victim(ctx buffer.AccessContext) *buffer.Frame {
	var parked []*buffer.Frame
	var victim *buffer.Frame
	for p.h.Len() > 0 {
		f := p.h.frames[0]
		if !f.Pinned() {
			victim = f
			break
		}
		parked = append(parked, heap.Pop(&p.h).(*buffer.Frame))
	}
	for _, f := range parked {
		heap.Push(&p.h, f)
	}
	return victim
}

func (p *refSpatial) OnEvict(f *buffer.Frame) {
	aux := f.Aux().(*refSpatialAux)
	if aux.idx >= 0 {
		heap.Remove(&p.h, aux.idx)
	}
	p.Sink().Eviction(obs.EvictionEvent{
		Page: f.Meta.ID, Reason: obs.ReasonSpatial, Criterion: aux.crit, LRURank: -1,
	})
	f.SetAux(nil)
}

func (p *refSpatial) Reset() { p.h.frames = nil }

func (p *refSpatial) OnUpdate(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	aux := f.Aux().(*refSpatialAux)
	aux.crit = p.crit.Value(f.Meta)
	aux.use = now
	heap.Fix(&p.h, aux.idx)
}

type refSpatialHeap struct {
	frames []*buffer.Frame
}

func (h *refSpatialHeap) Len() int { return len(h.frames) }

func (h *refSpatialHeap) Less(i, j int) bool {
	a := h.frames[i].Aux().(*refSpatialAux)
	b := h.frames[j].Aux().(*refSpatialAux)
	if a.crit != b.crit {
		return a.crit < b.crit
	}
	return a.use < b.use
}

func (h *refSpatialHeap) Swap(i, j int) {
	h.frames[i], h.frames[j] = h.frames[j], h.frames[i]
	h.frames[i].Aux().(*refSpatialAux).idx = i
	h.frames[j].Aux().(*refSpatialAux).idx = j
}

func (h *refSpatialHeap) Push(x any) {
	f := x.(*buffer.Frame)
	f.Aux().(*refSpatialAux).idx = len(h.frames)
	h.frames = append(h.frames, f)
}

func (h *refSpatialHeap) Pop() any {
	n := len(h.frames)
	f := h.frames[n-1]
	h.frames[n-1] = nil
	h.frames = h.frames[:n-1]
	f.Aux().(*refSpatialAux).idx = -1
	return f
}

// --------------------------------------------------------------- SLRU --

type refSLRU struct {
	obs.Target
	crit     page.Criterion
	candSize int
	order    *list.List
	lastRank int
}

type refSLRUAux struct {
	elem *list.Element
	crit float64
}

func newRefSLRU(crit page.Criterion, candSize int) *refSLRU {
	return &refSLRU{crit: crit, candSize: candSize, order: list.New(), lastRank: -1}
}

func (p *refSLRU) Name() string { return "SLRU" }

func (p *refSLRU) OnAdmit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	f.SetAux(&refSLRUAux{elem: p.order.PushFront(f), crit: p.crit.Value(f.Meta)})
}

func (p *refSLRU) OnHit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	p.order.MoveToFront(f.Aux().(*refSLRUAux).elem)
}

func (p *refSLRU) Victim(ctx buffer.AccessContext) *buffer.Frame {
	var best *buffer.Frame
	var bestCrit float64
	seen := 0
	p.lastRank = -1
	for e := p.order.Back(); e != nil; e = e.Prev() {
		f := e.Value.(*buffer.Frame)
		seen++
		if !f.Pinned() {
			c := f.Aux().(*refSLRUAux).crit
			if best == nil || c < bestCrit {
				best, bestCrit = f, c
				p.lastRank = seen - 1
			}
		}
		if seen >= p.candSize && best != nil {
			break
		}
	}
	return best
}

func (p *refSLRU) OnEvict(f *buffer.Frame) {
	aux := f.Aux().(*refSLRUAux)
	p.order.Remove(aux.elem)
	p.Sink().Eviction(obs.EvictionEvent{
		Page: f.Meta.ID, Reason: obs.ReasonSLRU, Criterion: aux.crit, LRURank: p.lastRank,
	})
	p.lastRank = -1
	f.SetAux(nil)
}

func (p *refSLRU) Reset() {
	p.order.Init()
	p.lastRank = -1
}

func (p *refSLRU) OnUpdate(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	aux := f.Aux().(*refSLRUAux)
	aux.crit = p.crit.Value(f.Meta)
	p.order.MoveToFront(aux.elem)
}

// ---------------------------------------------------------------- ASB --

type refASB struct {
	obs.Target
	crit     page.Criterion
	mainCap  int
	initCand int
	step     int
	cand     int
	main     *list.List
	over     *list.List
	lastRank int
}

type refASBAux struct {
	elem   *list.Element
	crit   float64
	inOver bool
}

func refClamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// newRefASB mirrors core.NewASB's sizing arithmetic with the paper's
// default options.
func newRefASB(capacity int) *refASB {
	overCap := int(0.20*float64(capacity) + 0.5)
	if overCap < 1 {
		overCap = 1
	}
	if overCap > capacity-1 {
		overCap = capacity - 1
	}
	mainCap := capacity - overCap
	a := &refASB{
		crit:     page.CritA,
		mainCap:  mainCap,
		initCand: refClamp(int(0.25*float64(mainCap)+0.5), 1, mainCap),
		step:     refClamp(int(0.01*float64(mainCap)+0.5), 1, mainCap),
		main:     list.New(),
		over:     list.New(),
		lastRank: -1,
	}
	a.cand = a.initCand
	return a
}

func (p *refASB) Name() string { return "ASB" }

func (p *refASB) OnAdmit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	aux := &refASBAux{crit: p.crit.Value(f.Meta)}
	f.SetAux(aux)
	aux.elem = p.main.PushFront(f)
	p.rebalance()
}

func (p *refASB) OnHit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	aux := f.Aux().(*refASBAux)
	if !aux.inOver {
		p.main.MoveToFront(aux.elem)
		return
	}
	p.adapt(f, aux)
	p.over.Remove(aux.elem)
	aux.inOver = false
	aux.elem = p.main.PushFront(f)
	p.rebalance()
}

func (p *refASB) adapt(f *buffer.Frame, aux *refASBAux) {
	betterSpatial, betterLRU := 0, 0
	for e := p.over.Front(); e != nil; e = e.Next() {
		q := e.Value.(*buffer.Frame)
		if q == f {
			continue
		}
		if q.Aux().(*refASBAux).crit > aux.crit {
			betterSpatial++
		}
		if q.LastUse > f.LastUse {
			betterLRU++
		}
	}
	margin := p.over.Len() / 4
	if margin < 1 {
		margin = 1
	}
	switch {
	case betterSpatial > betterLRU:
		p.cand = refClamp(p.cand-2*p.step, 1, p.mainCap)
	case betterLRU > betterSpatial+margin:
		p.cand = refClamp(p.cand+p.step, 1, p.mainCap)
	}
}

func (p *refASB) rebalance() {
	for p.main.Len() > p.mainCap {
		v, _ := p.mainVictim()
		if v == nil {
			return
		}
		aux := v.Aux().(*refASBAux)
		p.main.Remove(aux.elem)
		aux.inOver = true
		aux.elem = p.over.PushBack(v)
	}
}

func (p *refASB) mainVictim() (*buffer.Frame, int) {
	var best *buffer.Frame
	var bestCrit float64
	bestRank := -1
	seen := 0
	for e := p.main.Back(); e != nil; e = e.Prev() {
		f := e.Value.(*buffer.Frame)
		seen++
		if !f.Pinned() {
			c := f.Aux().(*refASBAux).crit
			if best == nil || c < bestCrit {
				best, bestCrit, bestRank = f, c, seen-1
			}
		}
		if seen >= p.cand && best != nil {
			break
		}
	}
	return best, bestRank
}

func (p *refASB) Victim(ctx buffer.AccessContext) *buffer.Frame {
	var v *buffer.Frame
	rank := 0
	for e := p.over.Front(); e != nil; e = e.Next() {
		if f := e.Value.(*buffer.Frame); !f.Pinned() {
			v = f
			break
		}
		rank++
	}
	if v == nil {
		v, rank = p.mainVictim()
	}
	p.lastRank = rank
	return v
}

func (p *refASB) OnEvict(f *buffer.Frame) {
	aux := f.Aux().(*refASBAux)
	reason := obs.ReasonASBMain
	if aux.inOver {
		p.over.Remove(aux.elem)
		reason = obs.ReasonASBOverflow
	} else {
		p.main.Remove(aux.elem)
	}
	p.Sink().Eviction(obs.EvictionEvent{
		Page: f.Meta.ID, Reason: reason, Criterion: aux.crit, LRURank: p.lastRank,
	})
	p.lastRank = -1
	f.SetAux(nil)
}

func (p *refASB) Reset() {
	p.main.Init()
	p.over.Init()
	p.cand = p.initCand
	p.lastRank = -1
}

func (p *refASB) OnUpdate(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	aux := f.Aux().(*refASBAux)
	aux.crit = p.crit.Value(f.Meta)
	if !aux.inOver {
		p.main.MoveToFront(aux.elem)
		return
	}
	p.over.Remove(aux.elem)
	aux.inOver = false
	aux.elem = p.main.PushFront(f)
	p.rebalance()
}

// -------------------------------------------------------------- CLOCK --

type refClock struct {
	hand *ring.Ring
	size int
}

type refClockAux struct {
	node *ring.Ring
	ref  bool
}

func newRefClock() *refClock { return &refClock{} }

func (p *refClock) Name() string { return "CLOCK" }

func (p *refClock) OnAdmit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	n := ring.New(1)
	n.Value = f
	f.SetAux(&refClockAux{node: n})
	if p.hand == nil {
		p.hand = n
	} else {
		p.hand.Prev().Link(n)
	}
	p.size++
}

func (p *refClock) OnHit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	f.Aux().(*refClockAux).ref = true
}

func (p *refClock) Victim(ctx buffer.AccessContext) *buffer.Frame {
	if p.hand == nil {
		return nil
	}
	for i := 0; i < 2*p.size; i++ {
		f := p.hand.Value.(*buffer.Frame)
		aux := f.Aux().(*refClockAux)
		if !f.Pinned() && !aux.ref {
			return f
		}
		if !f.Pinned() {
			aux.ref = false
		}
		p.hand = p.hand.Next()
	}
	return nil
}

func (p *refClock) OnEvict(f *buffer.Frame) {
	aux := f.Aux().(*refClockAux)
	if p.size == 1 {
		p.hand = nil
	} else {
		if p.hand == aux.node {
			p.hand = p.hand.Next()
		}
		aux.node.Prev().Unlink(1)
	}
	p.size--
	f.SetAux(nil)
}

func (p *refClock) Reset() {
	p.hand = nil
	p.size = 0
}

// ---------------------------------------------------------------- PIN --

type refPinLevels struct {
	minLevel int
	lru      *refLRU
}

func newRefPinLevels(minLevel int) *refPinLevels {
	return &refPinLevels{minLevel: minLevel, lru: newRefLRU()}
}

func (p *refPinLevels) Name() string { return "PIN" }

func (p *refPinLevels) OnAdmit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	p.lru.OnAdmit(f, now, ctx)
}

func (p *refPinLevels) OnHit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	p.lru.OnHit(f, now, ctx)
}

func (p *refPinLevels) Victim(ctx buffer.AccessContext) *buffer.Frame {
	var fallback *buffer.Frame
	for e := p.lru.order.Back(); e != nil; e = e.Prev() {
		f := e.Value.(*buffer.Frame)
		if f.Pinned() {
			continue
		}
		if f.Meta.Level < p.minLevel {
			return f
		}
		if fallback == nil {
			fallback = f
		}
	}
	return fallback
}

func (p *refPinLevels) OnEvict(f *buffer.Frame) { p.lru.OnEvict(f) }

func (p *refPinLevels) Reset() { p.lru.Reset() }

// refFactories pairs every standard factory name with its old-style
// reference constructor; the capacity-relative parameters repeat the
// registry's arithmetic (fracOf = round, min 1).
func refFactories(capacity int) map[string]buffer.Policy {
	frac := func(f float64) int {
		v := int(f*float64(capacity) + 0.5)
		if v < 1 {
			v = 1
		}
		return v
	}
	typePrio := func(m page.Meta) int {
		switch m.Type {
		case page.TypeObject:
			return 0
		case page.TypeData:
			return 1
		default:
			return 2
		}
	}
	levelPrio := func(m page.Meta) int {
		if m.Type == page.TypeObject {
			return 0
		}
		return 1 + m.Level
	}
	return map[string]buffer.Policy{
		"LRU":      newRefLRU(),
		"FIFO":     newRefFIFO(),
		"LRU-T":    newRefPriorityLRU("LRU-T", typePrio),
		"LRU-P":    newRefPriorityLRU("LRU-P", levelPrio),
		"LRU-2":    newRefLRUK(2),
		"LRU-3":    newRefLRUK(3),
		"LRU-5":    newRefLRUK(5),
		"A":        newRefSpatial(page.CritA),
		"EA":       newRefSpatial(page.CritEA),
		"M":        newRefSpatial(page.CritM),
		"EM":       newRefSpatial(page.CritEM),
		"EO":       newRefSpatial(page.CritEO),
		"SLRU 50%": newRefSLRU(page.CritA, frac(0.50)),
		"SLRU 25%": newRefSLRU(page.CritA, frac(0.25)),
		"ASB":      newRefASB(capacity),
		"CLOCK":    newRefClock(),
		"PIN":      newRefPinLevels(1),
	}
}
