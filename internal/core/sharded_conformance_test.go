package core_test

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/page"
	"repro/internal/storage"
)

// shardableFactories returns every standard policy factory plus FIFO, as
// factories (the sharding layer needs one instance per shard).
func shardableFactories() []core.Factory {
	fs := core.StandardFactories()
	fs = append(fs, core.Factory{Name: "FIFO", New: func(int) buffer.Policy { return core.NewFIFO() }})
	return fs
}

// conformanceSeq builds the mixed-locality reference string shared by the
// composition conformance tests.
func conformanceSeq(numPages, n int, seed int64) []access {
	rng := rand.New(rand.NewSource(seed))
	var seq []access
	queryID := uint64(0)
	for i := 0; i < n; i++ {
		if i%7 == 0 {
			queryID++
		}
		var id page.ID
		switch {
		case i%5 < 3: // hot subset
			id = page.ID(rng.Intn(12) + 1)
		default:
			id = page.ID(rng.Intn(numPages) + 1)
		}
		seq = append(seq, access{id: id, query: queryID})
	}
	return seq
}

// conformanceSpecs mirrors the page mix of TestPolicyConformance.
func conformanceSpecs(numPages int, seed int64) []pageSpec {
	rng := rand.New(rand.NewSource(seed))
	specs := make([]pageSpec, numPages)
	for i := range specs {
		typ := page.TypeData
		level := 0
		switch i % 10 {
		case 0:
			typ, level = page.TypeDirectory, 1+i%3
		case 1:
			typ = page.TypeObject
		}
		specs[i] = pageSpec{typ: typ, level: level, area: float64(rng.Intn(500) + 1)}
	}
	return specs
}

// buildComposition parses the spec and builds the pool over a fresh
// store, failing the test on any error.
func buildComposition(t *testing.T, spec string, s *storage.MemStore, f core.Factory, capacity int) buffer.Pool {
	t.Helper()
	comp, err := buffer.ParseComposition(spec)
	if err != nil {
		t.Fatal(err)
	}
	p, err := comp.Build(s, f.New, capacity)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// closePool closes compositions that hold background resources (the
// async layer's write-back workers); the others have no Close.
func closePool(t *testing.T, p buffer.Pool) {
	t.Helper()
	if c, ok := p.(interface{ Close() error }); ok {
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

type containsPool interface {
	buffer.Pool
	Contains(id page.ID) bool
	ResidentIDs() []page.ID
}

// TestShardedPoolConformance runs every standard policy inside the
// multi-shard compositions — sharded and async — against the invariants
// of the single-manager conformance suite: capacity respected, resident
// pages always hit, hits+misses = requests, physical reads = misses
// (single-threaded and read-only, so the async layer coalesces nothing),
// Clear cold-starts.
func TestShardedPoolConformance(t *testing.T) {
	const numPages = 80
	specs := conformanceSpecs(numPages, 31)
	seq := conformanceSeq(numPages, 4000, 31)

	for _, spec := range []string{
		"sharded,shards=2", "sharded,shards=4",
		"async,shards=2", "async,shards=4",
	} {
		for _, f := range shardableFactories() {
			f := f
			capacity := 16
			t.Run(f.Name+"/"+spec, func(t *testing.T) {
				s := buildStore(t, specs)
				p := buildComposition(t, spec, s, f, capacity).(containsPool)
				defer closePool(t, p)
				for _, a := range seq {
					wasResident := p.Contains(a.id)
					hitsBefore := p.Stats().Hits
					if _, err := p.Get(a.id, buffer.AccessContext{QueryID: a.query}); err != nil {
						t.Fatalf("get %d: %v", a.id, err)
					}
					if wasResident && p.Stats().Hits != hitsBefore+1 {
						t.Fatalf("resident page %d did not hit", a.id)
					}
					if !wasResident && p.Stats().Hits != hitsBefore {
						t.Fatalf("non-resident page %d counted as hit", a.id)
					}
					if p.Len() > capacity {
						t.Fatalf("capacity exceeded: %d > %d", p.Len(), capacity)
					}
				}
				st := p.Stats()
				if st.Hits+st.Misses != st.Requests {
					t.Errorf("stats inconsistent: %+v", st)
				}
				if got := s.Stats().Reads; got != st.Misses {
					t.Errorf("physical reads %d != misses %d", got, st.Misses)
				}
				if st.Requests != uint64(len(seq)) {
					t.Errorf("requests = %d, want %d", st.Requests, len(seq))
				}

				// After Clear, the first access misses again.
				if err := p.Clear(); err != nil {
					t.Fatal(err)
				}
				if _, err := p.Get(1, buffer.AccessContext{QueryID: 1}); err != nil {
					t.Fatal(err)
				}
				if p.Stats().Misses != 1 {
					t.Error("post-clear access should cold-miss")
				}
			})
		}
	}
}

// TestShardedPoolSingleShardMatchesManager replays the conformance
// reference string through every composition that must route like one
// big buffer — locked, single-shard sharded, single-shard async — and a
// bare engine, for every standard policy: the stats and the resident
// set must be identical access for access. This is the
// behavioural-equivalence guarantee the layer stack documents.
func TestShardedPoolSingleShardMatchesManager(t *testing.T) {
	const numPages, capacity = 80, 16
	specs := conformanceSpecs(numPages, 31)
	seq := conformanceSeq(numPages, 3000, 37)

	for _, spec := range []string{"locked", "sharded,shards=1", "async,shards=1"} {
		for _, f := range shardableFactories() {
			f := f
			t.Run(f.Name+"/"+spec, func(t *testing.T) {
				sm := buildStore(t, specs)
				m := mustManager(t, sm, f.New(capacity), capacity)
				sp := buildComposition(t, spec, buildStore(t, specs), f, capacity).(containsPool)
				defer closePool(t, sp)
				for i, a := range seq {
					ctx := buffer.AccessContext{QueryID: a.query}
					if _, err := m.Get(a.id, ctx); err != nil {
						t.Fatal(err)
					}
					if _, err := sp.Get(a.id, ctx); err != nil {
						t.Fatal(err)
					}
					if m.Contains(a.id) != sp.Contains(a.id) {
						t.Fatalf("residency diverged at access %d (page %d)", i, a.id)
					}
					if m.Stats() != sp.Stats() {
						t.Fatalf("stats diverged at access %d:\nengine      %+v\ncomposition %+v",
							i, m.Stats(), sp.Stats())
					}
				}
				wantSet := make(map[page.ID]bool)
				for _, id := range m.ResidentIDs() {
					wantSet[id] = true
				}
				got := sp.ResidentIDs()
				if len(got) != len(wantSet) {
					t.Fatalf("resident count: composition %d, engine %d", len(got), len(wantSet))
				}
				for _, id := range got {
					if !wantSet[id] {
						t.Fatalf("resident sets differ on page %d", id)
					}
				}
			})
		}
	}
}

// TestShardedPoolConcurrentPolicies drives every standard policy inside
// the concurrent compositions from several goroutines at once. Run under
// -race this checks that the locking layer fully serializes policy
// state per shard; the final accounting checks no request was lost.
func TestShardedPoolConcurrentPolicies(t *testing.T) {
	const numPages, capacity, workers, perWorker = 80, 16, 4, 1500
	specs := conformanceSpecs(numPages, 31)

	for _, spec := range []string{"locked", "sharded,shards=4", "async,shards=4"} {
		for _, f := range shardableFactories() {
			f := f
			t.Run(f.Name+"/"+spec, func(t *testing.T) {
				s := buildStore(t, specs)
				p := buildComposition(t, spec, s, f, capacity)
				defer closePool(t, p)
				var wg sync.WaitGroup
				errs := make(chan error, workers)
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						seq := conformanceSeq(numPages, perWorker, int64(w)+100)
						for _, a := range seq {
							// Distinct query-ID ranges per worker keep intra-query
							// correlation (LRU-K) meaningful under concurrency.
							ctx := buffer.AccessContext{QueryID: uint64(w)<<32 | a.query}
							if _, err := p.Get(a.id, ctx); err != nil {
								errs <- err
								return
							}
						}
					}(w)
				}
				wg.Wait()
				close(errs)
				for err := range errs {
					t.Fatal(err)
				}
				st := p.Stats()
				if st.Requests != workers*perWorker {
					t.Fatalf("requests = %d, want %d", st.Requests, workers*perWorker)
				}
				if st.Hits+st.Misses != st.Requests {
					t.Fatalf("stats inconsistent: %+v", st)
				}
				if p.Len() > capacity {
					t.Fatalf("capacity exceeded: %d > %d", p.Len(), capacity)
				}
			})
		}
	}
}
