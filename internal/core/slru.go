package core

import (
	"fmt"

	"repro/internal/buffer"
	"repro/internal/core/intrusive"
	"repro/internal/obs"
	"repro/internal/obs/tracing"
	"repro/internal/page"
)

// SLRU is the static combination of LRU and a spatial strategy (paper
// §4.1): LRU computes a candidate set — the candSize least recently used
// pages — and the spatial criterion picks the victim from it (minimum
// criterion, LRU tie-break). candSize interpolates between pure LRU
// (candSize = 1) and the pure spatial policy (candSize = buffer size).
//
// Frames ride the intrusive recency list through their embedded link
// words; the criterion is cached in Frame.Crit at admission, so the
// candidate scan reads one float per inspected frame and nothing on the
// request path allocates.
type SLRU struct {
	obs.Target
	tracing.SlotTarget

	crit     page.Criterion
	candSize int
	// order is the recency list, front = most recently used.
	order intrusive.List[*buffer.Frame]
	// lastRank is the LRU rank of the frame most recently returned by
	// Victim, consumed by the Eviction event in OnEvict.
	lastRank int
}

// NewSLRU returns an SLRU policy with a fixed candidate-set size of
// candSize frames (≥ 1).
func NewSLRU(crit page.Criterion, candSize int) *SLRU {
	if candSize < 1 {
		panic(fmt.Sprintf("core: SLRU candidate size must be ≥ 1, got %d", candSize))
	}
	return &SLRU{crit: crit, candSize: candSize, order: intrusive.NewList(frameHooks), lastRank: -1}
}

// Name implements buffer.Policy.
func (p *SLRU) Name() string { return fmt.Sprintf("SLRU(%s,%d)", p.crit, p.candSize) }

// CandidateSize returns the fixed candidate-set size.
func (p *SLRU) CandidateSize() int { return p.candSize }

// OnAdmit implements buffer.Policy.
func (p *SLRU) OnAdmit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	f.Crit = p.crit.Value(f.Meta)
	p.order.PushFront(f)
}

// OnHit implements buffer.Policy.
func (p *SLRU) OnHit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	p.order.MoveToFront(f)
}

// Victim implements buffer.Policy: the minimum-criterion unpinned frame
// among the candSize least recently used; scanning from the LRU end keeps
// ties on the older page. If the candidate set holds no unpinned frame the
// scan continues past it (degrading to LRU) rather than failing.
func (p *SLRU) Victim(ctx buffer.AccessContext) *buffer.Frame {
	act := p.TraceSlot().Active()
	var span int32
	if act != nil {
		span = act.Start(tracing.KindVictim)
	}
	var best *buffer.Frame
	var bestCrit, worstCrit float64
	seen := 0
	p.lastRank = -1
	for f := p.order.Back(); f != nil; f = p.order.Prev(f) {
		seen++
		if !f.Pinned() {
			c := f.Crit
			if best == nil || c < bestCrit {
				best, bestCrit = f, c
				p.lastRank = seen - 1
			}
			if c > worstCrit {
				worstCrit = c
			}
		}
		if seen >= p.candSize && best != nil {
			break
		}
	}
	if act != nil {
		sp := act.At(span)
		sp.Reason = obs.ReasonSLRU
		sp.CritKind = p.crit.String()
		sp.Rank = int32(p.lastRank)
		sp.CritLose = worstCrit
		sp.Slot = -1
		if best != nil {
			sp.Page = best.Meta.ID
			sp.CritWin = bestCrit
			sp.Slot = best.ArenaIndex()
		} else {
			sp.Err = true // every frame pinned
		}
		act.End(span)
	}
	return best
}

// OnEvict implements buffer.Policy.
func (p *SLRU) OnEvict(f *buffer.Frame) {
	p.order.Remove(f)
	p.Sink().Eviction(obs.EvictionEvent{
		Page:      f.Meta.ID,
		Reason:    obs.ReasonSLRU,
		Criterion: f.Crit,
		LRURank:   p.lastRank,
	})
	p.lastRank = -1
}

// Reset implements buffer.Policy.
func (p *SLRU) Reset() {
	p.order.Clear()
	p.lastRank = -1
}

// OnUpdate implements buffer.Updater: refresh the cached criterion and
// the recency position.
func (p *SLRU) OnUpdate(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	f.Crit = p.crit.Value(f.Meta)
	p.order.MoveToFront(f)
}
