package core

import (
	"container/list"
	"fmt"

	"repro/internal/buffer"
	"repro/internal/obs"
	"repro/internal/obs/tracing"
	"repro/internal/page"
)

// SLRU is the static combination of LRU and a spatial strategy (paper
// §4.1): LRU computes a candidate set — the candSize least recently used
// pages — and the spatial criterion picks the victim from it (minimum
// criterion, LRU tie-break). candSize interpolates between pure LRU
// (candSize = 1) and the pure spatial policy (candSize = buffer size).
type SLRU struct {
	obs.Target
	tracing.SlotTarget

	crit     page.Criterion
	candSize int
	// order holds *buffer.Frame values, front = most recently used.
	order *list.List
	// lastRank is the LRU rank of the frame most recently returned by
	// Victim, consumed by the Eviction event in OnEvict.
	lastRank int
}

// slruAux is the per-frame state of an SLRU policy.
type slruAux struct {
	elem *list.Element
	crit float64
}

// NewSLRU returns an SLRU policy with a fixed candidate-set size of
// candSize frames (≥ 1).
func NewSLRU(crit page.Criterion, candSize int) *SLRU {
	if candSize < 1 {
		panic(fmt.Sprintf("core: SLRU candidate size must be ≥ 1, got %d", candSize))
	}
	return &SLRU{crit: crit, candSize: candSize, order: list.New(), lastRank: -1}
}

// Name implements buffer.Policy.
func (p *SLRU) Name() string { return fmt.Sprintf("SLRU(%s,%d)", p.crit, p.candSize) }

// CandidateSize returns the fixed candidate-set size.
func (p *SLRU) CandidateSize() int { return p.candSize }

// OnAdmit implements buffer.Policy.
func (p *SLRU) OnAdmit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	f.SetAux(&slruAux{elem: p.order.PushFront(f), crit: p.crit.Value(f.Meta)})
}

// OnHit implements buffer.Policy.
func (p *SLRU) OnHit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	p.order.MoveToFront(f.Aux().(*slruAux).elem)
}

// Victim implements buffer.Policy: the minimum-criterion unpinned frame
// among the candSize least recently used; scanning from the LRU end keeps
// ties on the older page. If the candidate set holds no unpinned frame the
// scan continues past it (degrading to LRU) rather than failing.
func (p *SLRU) Victim(ctx buffer.AccessContext) *buffer.Frame {
	act := p.TraceSlot().Active()
	var span int32
	if act != nil {
		span = act.Start(tracing.KindVictim)
	}
	var best *buffer.Frame
	var bestCrit, worstCrit float64
	seen := 0
	p.lastRank = -1
	for e := p.order.Back(); e != nil; e = e.Prev() {
		f := e.Value.(*buffer.Frame)
		seen++
		if !f.Pinned() {
			c := f.Aux().(*slruAux).crit
			if best == nil || c < bestCrit {
				best, bestCrit = f, c
				p.lastRank = seen - 1
			}
			if c > worstCrit {
				worstCrit = c
			}
		}
		if seen >= p.candSize && best != nil {
			break
		}
	}
	if act != nil {
		sp := act.At(span)
		sp.Reason = obs.ReasonSLRU
		sp.CritKind = p.crit.String()
		sp.Rank = int32(p.lastRank)
		sp.CritLose = worstCrit
		if best != nil {
			sp.Page = best.Meta.ID
			sp.CritWin = bestCrit
		} else {
			sp.Err = true // every frame pinned
		}
		act.End(span)
	}
	return best
}

// OnEvict implements buffer.Policy.
func (p *SLRU) OnEvict(f *buffer.Frame) {
	aux := f.Aux().(*slruAux)
	p.order.Remove(aux.elem)
	p.Sink().Eviction(obs.EvictionEvent{
		Page:      f.Meta.ID,
		Reason:    obs.ReasonSLRU,
		Criterion: aux.crit,
		LRURank:   p.lastRank,
	})
	p.lastRank = -1
	f.SetAux(nil)
}

// Reset implements buffer.Policy.
func (p *SLRU) Reset() {
	p.order.Init()
	p.lastRank = -1
}

// OnUpdate implements buffer.Updater: refresh the cached criterion and
// the recency position.
func (p *SLRU) OnUpdate(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	aux := f.Aux().(*slruAux)
	aux.crit = p.crit.Value(f.Meta)
	p.order.MoveToFront(aux.elem)
}
