package core_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/page"
)

func TestSLRUPanicsOnBadCandidate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSLRU with candidate 0 should panic")
		}
	}()
	core.NewSLRU(page.CritA, 0)
}

func TestSLRUName(t *testing.T) {
	p := core.NewSLRU(page.CritA, 7)
	if p.Name() != "SLRU(A,7)" {
		t.Errorf("name = %q", p.Name())
	}
	if p.CandidateSize() != 7 {
		t.Errorf("CandidateSize = %d", p.CandidateSize())
	}
}

func TestSLRUCandidateOneIsLRU(t *testing.T) {
	// With a candidate set of 1 the spatial criterion has no choice:
	// behaviour must equal pure LRU on any sequence.
	rng := rand.New(rand.NewSource(21))
	specs := make([]pageSpec, 20)
	for i := range specs {
		specs[i] = dataPage(float64(rng.Intn(50) + 1))
	}
	var seq []access
	for i := 0; i < 800; i++ {
		seq = append(seq, q(page.ID(rng.Intn(20)+1), uint64(i)))
	}
	sA := buildStore(t, specs)
	sB := buildStore(t, specs)
	missLRU := run(t, sA, core.NewLRU(), 5, seq)
	missSLRU := run(t, sB, core.NewSLRU(page.CritA, 1), 5, seq)
	if !idsEqual(missLRU, missSLRU) {
		t.Errorf("SLRU(1) diverged from LRU: %d vs %d misses", len(missSLRU), len(missLRU))
	}
}

func TestSLRUCandidateFullIsSpatial(t *testing.T) {
	// With the candidate set spanning the whole buffer, behaviour must
	// equal the pure spatial policy (assuming distinct criterion values).
	rng := rand.New(rand.NewSource(22))
	specs := make([]pageSpec, 20)
	for i := range specs {
		specs[i] = dataPage(float64(i+1) * 3) // distinct areas
	}
	var seq []access
	for i := 0; i < 800; i++ {
		seq = append(seq, q(page.ID(rng.Intn(20)+1), uint64(i)))
	}
	sA := buildStore(t, specs)
	sB := buildStore(t, specs)
	missSpatial := run(t, sA, core.NewSpatial(page.CritA), 5, seq)
	missSLRU := run(t, sB, core.NewSLRU(page.CritA, 5), 5, seq)
	if !idsEqual(missSpatial, missSLRU) {
		t.Errorf("SLRU(cap) diverged from spatial: %d vs %d misses",
			len(missSLRU), len(missSpatial))
	}
}

func TestSLRUVictimInsideCandidateSet(t *testing.T) {
	// Buffer of 4, candidate 2: the two most recently used pages are
	// protected even when they have tiny areas.
	s := buildStore(t, []pageSpec{
		dataPage(100), dataPage(50), dataPage(1), dataPage(2), dataPage(75),
	})
	m := mustManager(t, s, core.NewSLRU(page.CritA, 2), 4)
	// LRU order after this: [3 4] recent, [1 2] old → candidates {1,2};
	// victim is 2 (area 50 < 100) despite pages 3,4 having areas 1,2.
	runOn(t, m, seqOf(1, 2, 3, 4))
	runOn(t, m, []access{q(5, 9)})
	if m.Contains(2) || !resident(m, 1, 3, 4, 5) {
		t.Errorf("resident = %v, want [1 3 4 5]", m.ResidentIDs())
	}
}

func TestSLRUTieKeepsOlder(t *testing.T) {
	// Equal areas in the candidate set: evict the least recently used.
	s := buildStore(t, uniformPages(4, 7))
	m := mustManager(t, s, core.NewSLRU(page.CritA, 3), 3)
	runOn(t, m, seqOf(1, 2, 3))
	runOn(t, m, []access{q(4, 9)})
	if m.Contains(1) || !resident(m, 2, 3, 4) {
		t.Errorf("resident = %v, want [2 3 4]", m.ResidentIDs())
	}
}

func TestSLRUReset(t *testing.T) {
	s := buildStore(t, uniformPages(3, 1))
	m := mustManager(t, s, core.NewSLRU(page.CritA, 2), 2)
	runOn(t, m, seqOf(1, 2, 3))
	if err := m.Clear(); err != nil {
		t.Fatal(err)
	}
	misses := runOn(t, m, seqOf(1, 2))
	if len(misses) != 2 {
		t.Errorf("cold misses = %d, want 2", len(misses))
	}
}
