package core

import (
	"repro/internal/buffer"
	"repro/internal/core/intrusive"
	"repro/internal/obs"
	"repro/internal/obs/tracing"
	"repro/internal/page"
)

// Spatial is a pure spatial page-replacement policy (paper §2.3): the
// victim is the unpinned page with the smallest spatial criterion
// (area, entry areas, margin, entry margins or entry overlap); among pages
// of equal criterion the least recently used is dropped, exactly the
// two-step selection rule of the paper.
//
// The criterion of a page never changes while it is resident (pages are
// read-only during queries), so frames live in an intrusive indexed
// min-heap ordered by (criterion, last use): the criterion is cached in
// Frame.Crit, the recency shadow in Frame.Stamp and the heap position in
// Frame.Slot, so hits only need a heap fix for the recency component,
// eviction is O(log n), and no step allocates.
type Spatial struct {
	obs.Target
	tracing.SlotTarget

	crit page.Criterion
	h    intrusive.Heap[*buffer.Frame]
	// parked is reusable scratch for pinned frames popped aside during
	// victim selection.
	parked []*buffer.Frame
}

// spatialLess orders frames by (criterion, last use) ascending — the
// paper's two-step selection rule as one comparator.
func spatialLess(a, b *buffer.Frame) bool {
	if a.Crit != b.Crit {
		return a.Crit < b.Crit
	}
	return a.Stamp < b.Stamp
}

// frameMove caches a frame's heap position in its Slot word.
func frameMove(f *buffer.Frame, i int32) { f.Slot = i }

// NewSpatial returns the spatial policy for the given criterion; paper
// names: A, EA, M, EM, EO.
func NewSpatial(crit page.Criterion) *Spatial {
	return &Spatial{crit: crit, h: intrusive.NewHeap(spatialLess, frameMove)}
}

// Name implements buffer.Policy: the paper's abbreviation of the
// criterion.
func (p *Spatial) Name() string { return p.crit.String() }

// Criterion returns the spatial criterion this policy ranks by.
func (p *Spatial) Criterion() page.Criterion { return p.crit }

// OnAdmit implements buffer.Policy.
func (p *Spatial) OnAdmit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	f.Crit = p.crit.Value(f.Meta)
	f.Stamp = now
	p.h.Push(f)
}

// OnHit implements buffer.Policy: only the LRU tie-break component
// changes.
func (p *Spatial) OnHit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	f.Stamp = now
	p.h.Fix(f.Slot)
}

// Victim implements buffer.Policy: the minimum-criterion unpinned frame,
// ties broken by least recent use.
func (p *Spatial) Victim(ctx buffer.AccessContext) *buffer.Frame {
	act := p.TraceSlot().Active()
	var span int32
	if act != nil {
		span = act.Start(tracing.KindVictim)
	}
	// Pop pinned frames aside, take the first unpinned, push the pinned
	// ones back. Pins are rare and shallow in this workload.
	parked := p.parked[:0]
	var victim *buffer.Frame
	for p.h.Len() > 0 {
		f := p.h.Min()
		if !f.Pinned() {
			victim = f
			break
		}
		parked = append(parked, p.h.Remove(0))
	}
	for _, f := range parked {
		p.h.Push(f)
	}
	p.parked = parked[:0]
	if act != nil {
		sp := act.At(span)
		sp.Reason = obs.ReasonSpatial
		sp.CritKind = p.crit.String()
		sp.Rank = -1 // the heap tracks recency only as a tie-break
		sp.Slot = -1
		if victim != nil {
			sp.Page = victim.Meta.ID
			sp.CritWin = victim.Crit
			sp.Slot = victim.ArenaIndex()
		} else {
			sp.Err = true // every frame pinned
		}
		act.End(span)
	}
	return victim
}

// OnEvict implements buffer.Policy. The Eviction event carries the
// spatial criterion value; LRURank is -1 (the heap tracks recency only
// as a tie-break, not as a rank).
func (p *Spatial) OnEvict(f *buffer.Frame) {
	crit := f.Crit
	if f.Slot >= 0 {
		p.h.Remove(f.Slot)
	}
	p.Sink().Eviction(obs.EvictionEvent{
		Page:      f.Meta.ID,
		Reason:    obs.ReasonSpatial,
		Criterion: crit,
		LRURank:   -1,
	})
}

// Reset implements buffer.Policy. The heap's backing slice is kept, so a
// cleared policy refills without reallocating.
func (p *Spatial) Reset() { p.h.Clear() }

// Len returns the number of tracked frames (for tests).
func (p *Spatial) Len() int { return p.h.Len() }

// OnUpdate implements buffer.Updater: the page content changed, so the
// cached criterion is recomputed and the heap reordered.
func (p *Spatial) OnUpdate(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	f.Crit = p.crit.Value(f.Meta)
	f.Stamp = now
	p.h.Fix(f.Slot)
}
