package core

import (
	"container/heap"
	"fmt"

	"repro/internal/buffer"
	"repro/internal/obs"
	"repro/internal/obs/tracing"
	"repro/internal/page"
)

// Spatial is a pure spatial page-replacement policy (paper §2.3): the
// victim is the unpinned page with the smallest spatial criterion
// (area, entry areas, margin, entry margins or entry overlap); among pages
// of equal criterion the least recently used is dropped, exactly the
// two-step selection rule of the paper.
//
// The criterion of a page never changes while it is resident (pages are
// read-only during queries), so frames live in an indexed min-heap ordered
// by (criterion, last use); hits only need a heap fix for the recency
// component and eviction is O(log n).
type Spatial struct {
	obs.Target
	tracing.SlotTarget

	crit page.Criterion
	h    spatialHeap
}

// spatialAux is the per-frame state of a Spatial policy.
type spatialAux struct {
	idx  int     // position in the heap, -1 if absent
	crit float64 // cached criterion value
	use  uint64  // recency shadow of Frame.LastUse, updated in OnHit
}

// NewSpatial returns the spatial policy for the given criterion; paper
// names: A, EA, M, EM, EO.
func NewSpatial(crit page.Criterion) *Spatial {
	return &Spatial{crit: crit}
}

// Name implements buffer.Policy: the paper's abbreviation of the
// criterion.
func (p *Spatial) Name() string { return p.crit.String() }

// Criterion returns the spatial criterion this policy ranks by.
func (p *Spatial) Criterion() page.Criterion { return p.crit }

// OnAdmit implements buffer.Policy.
func (p *Spatial) OnAdmit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	aux := &spatialAux{crit: p.crit.Value(f.Meta), use: now}
	f.SetAux(aux)
	heap.Push(&p.h, f)
}

// OnHit implements buffer.Policy: only the LRU tie-break component
// changes.
func (p *Spatial) OnHit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	aux := f.Aux().(*spatialAux)
	aux.use = now
	heap.Fix(&p.h, aux.idx)
}

// Victim implements buffer.Policy: the minimum-criterion unpinned frame,
// ties broken by least recent use.
func (p *Spatial) Victim(ctx buffer.AccessContext) *buffer.Frame {
	act := p.TraceSlot().Active()
	var span int32
	if act != nil {
		span = act.Start(tracing.KindVictim)
	}
	// Pop pinned frames aside, take the first unpinned, push the pinned
	// ones back. Pins are rare and shallow in this workload.
	var parked []*buffer.Frame
	var victim *buffer.Frame
	for p.h.Len() > 0 {
		f := p.h.frames[0]
		if !f.Pinned() {
			victim = f
			break
		}
		parked = append(parked, heap.Pop(&p.h).(*buffer.Frame))
	}
	for _, f := range parked {
		heap.Push(&p.h, f)
	}
	if act != nil {
		sp := act.At(span)
		sp.Reason = obs.ReasonSpatial
		sp.CritKind = p.crit.String()
		sp.Rank = -1 // the heap tracks recency only as a tie-break
		if victim != nil {
			sp.Page = victim.Meta.ID
			sp.CritWin = victim.Aux().(*spatialAux).crit
		} else {
			sp.Err = true // every frame pinned
		}
		act.End(span)
	}
	return victim
}

// OnEvict implements buffer.Policy. The Eviction event carries the
// spatial criterion value; LRURank is -1 (the heap tracks recency only
// as a tie-break, not as a rank).
func (p *Spatial) OnEvict(f *buffer.Frame) {
	aux := f.Aux().(*spatialAux)
	if aux.idx >= 0 {
		heap.Remove(&p.h, aux.idx)
	}
	p.Sink().Eviction(obs.EvictionEvent{
		Page:      f.Meta.ID,
		Reason:    obs.ReasonSpatial,
		Criterion: aux.crit,
		LRURank:   -1,
	})
	f.SetAux(nil)
}

// Reset implements buffer.Policy.
func (p *Spatial) Reset() { p.h.frames = nil }

// Len returns the number of tracked frames (for tests).
func (p *Spatial) Len() int { return p.h.Len() }

// checkAux panics with a descriptive message if a frame lacks spatial aux
// state; only used in heap internals where corruption means a bug.
func checkAux(f *buffer.Frame) *spatialAux {
	aux, ok := f.Aux().(*spatialAux)
	if !ok {
		panic(fmt.Sprintf("core: frame %d has no spatial state", f.Meta.ID))
	}
	return aux
}

// spatialHeap is an indexed min-heap of frames ordered by
// (criterion, last use).
type spatialHeap struct {
	frames []*buffer.Frame
}

func (h *spatialHeap) Len() int { return len(h.frames) }

func (h *spatialHeap) Less(i, j int) bool {
	a, b := checkAux(h.frames[i]), checkAux(h.frames[j])
	if a.crit != b.crit {
		return a.crit < b.crit
	}
	return a.use < b.use
}

func (h *spatialHeap) Swap(i, j int) {
	h.frames[i], h.frames[j] = h.frames[j], h.frames[i]
	checkAux(h.frames[i]).idx = i
	checkAux(h.frames[j]).idx = j
}

func (h *spatialHeap) Push(x any) {
	f := x.(*buffer.Frame)
	checkAux(f).idx = len(h.frames)
	h.frames = append(h.frames, f)
}

func (h *spatialHeap) Pop() any {
	n := len(h.frames)
	f := h.frames[n-1]
	h.frames[n-1] = nil
	h.frames = h.frames[:n-1]
	checkAux(f).idx = -1
	return f
}

// OnUpdate implements buffer.Updater: the page content changed, so the
// cached criterion is recomputed and the heap reordered.
func (p *Spatial) OnUpdate(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	aux := f.Aux().(*spatialAux)
	aux.crit = p.crit.Value(f.Meta)
	aux.use = now
	heap.Fix(&p.h, aux.idx)
}
