package core_test

import (
	"math/rand"
	"testing"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/page"
	"repro/internal/storage"
)

func TestSpatialNamesAndCriterion(t *testing.T) {
	for _, c := range page.Criteria() {
		p := core.NewSpatial(c)
		if p.Name() != c.String() {
			t.Errorf("name = %q, want %q", p.Name(), c.String())
		}
		if p.Criterion() != c {
			t.Errorf("criterion = %v", p.Criterion())
		}
	}
}

func TestSpatialEvictsSmallestArea(t *testing.T) {
	// Pages with areas 9, 1, 4: the area-1 page must go first even if it
	// is the most recently used.
	s := buildStore(t, []pageSpec{dataPage(9), dataPage(1), dataPage(4), dataPage(25)})
	m := mustManager(t, s, core.NewSpatial(page.CritA), 3)
	runOn(t, m, seqOf(1, 2, 3))
	runOn(t, m, []access{q(2, 7)}) // touch the small page — recency must not save it
	runOn(t, m, []access{q(4, 8)})
	if m.Contains(2) || !resident(m, 1, 3, 4) {
		t.Errorf("resident = %v, want [1 3 4]", m.ResidentIDs())
	}
}

func TestSpatialLRUTieBreak(t *testing.T) {
	// Equal criterion everywhere → pure LRU behaviour (paper §2.3 step 2).
	specs := uniformPages(5, 4)
	seq := seqOf(1, 2, 3, 1, 4, 2, 5, 1, 3)
	sA := buildStore(t, specs)
	sB := buildStore(t, specs)
	missLRU := run(t, sA, core.NewLRU(), 3, seq)
	missSpatial := run(t, sB, core.NewSpatial(page.CritA), 3, seq)
	if !idsEqual(missLRU, missSpatial) {
		t.Errorf("spatial with equal criteria %v != LRU %v", missSpatial, missLRU)
	}
}

func TestSpatialKeepsLargePageForever(t *testing.T) {
	// One huge page and many small churning pages: the huge page must
	// never be evicted by the A policy.
	specs := []pageSpec{dataPage(1e6)}
	specs = append(specs, uniformPages(10, 1)...)
	s := buildStore(t, specs)
	m := mustManager(t, s, core.NewSpatial(page.CritA), 3)
	runOn(t, m, seqOf(1)) // huge page in
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		id := page.ID(rng.Intn(10) + 2)
		runOn(t, m, []access{q(id, uint64(i+2))})
		if !m.Contains(1) {
			t.Fatalf("huge page evicted at step %d", i)
		}
	}
}

func TestSpatialCriteriaDiffer(t *testing.T) {
	// Build pages where criterion EO orders differently from A: page 1 has
	// a large MBR but disjoint entries (EO=0); page 2 has a small MBR but
	// overlapping entries (EO>0).
	s := storage.NewMemStore()
	p1 := page.New(s.Allocate(), page.TypeData, 0, 2)
	p1.Append(page.Entry{MBR: rect(0, 0, 10, 10)})
	p1.Append(page.Entry{MBR: rect(90, 90, 100, 100)})
	p1.Recompute()
	p2 := page.New(s.Allocate(), page.TypeData, 0, 2)
	p2.Append(page.Entry{MBR: rect(0, 0, 2, 2)})
	p2.Append(page.Entry{MBR: rect(1, 1, 3, 3)})
	p2.Recompute()
	p3 := page.New(s.Allocate(), page.TypeData, 0, 1)
	p3.Append(page.Entry{MBR: rect(0, 0, 5, 5)})
	p3.Recompute()
	for _, p := range []*page.Page{p1, p2, p3} {
		if err := s.Write(p); err != nil {
			t.Fatal(err)
		}
	}

	// Under A: page 2 (area 9) loses to page 1 (area 10000).
	mA := mustManager(t, s, core.NewSpatial(page.CritA), 2)
	runOn(t, mA, seqOf(1, 2))
	runOn(t, mA, []access{q(3, 5)})
	if mA.Contains(2) || !resident(mA, 1, 3) {
		t.Errorf("A: resident = %v, want [1 3]", mA.ResidentIDs())
	}

	// Under EO: page 1 (overlap 0) loses to page 2 (overlap 1).
	mEO := mustManager(t, s, core.NewSpatial(page.CritEO), 2)
	runOn(t, mEO, seqOf(1, 2))
	runOn(t, mEO, []access{q(3, 5)})
	if mEO.Contains(1) || !resident(mEO, 2, 3) {
		t.Errorf("EO: resident = %v, want [2 3]", mEO.ResidentIDs())
	}
}

func TestSpatialSkipsPinnedVictim(t *testing.T) {
	s := buildStore(t, []pageSpec{dataPage(1), dataPage(9), dataPage(4)})
	m := mustManager(t, s, core.NewSpatial(page.CritA), 2)
	// Pin the smallest page; the next-smallest must be evicted instead.
	if _, err := m.Fix(1, buffer.AccessContext{QueryID: 1}); err != nil {
		t.Fatal(err)
	}
	runOn(t, m, []access{q(2, 2)})
	runOn(t, m, []access{q(3, 3)})
	if !m.Contains(1) || m.Contains(2) || !m.Contains(3) {
		t.Errorf("resident = %v, want [1 3]", m.ResidentIDs())
	}
	if err := m.Unfix(1); err != nil {
		t.Fatal(err)
	}
}

func TestSpatialHeapConsistencyUnderChurn(t *testing.T) {
	// Property test: after a long random access sequence, the policy's
	// internal heap tracks exactly the resident set and every eviction
	// still succeeds.
	rng := rand.New(rand.NewSource(99))
	specs := make([]pageSpec, 40)
	for i := range specs {
		specs[i] = dataPage(float64(rng.Intn(100) + 1))
	}
	s := buildStore(t, specs)
	pol := core.NewSpatial(page.CritEA)
	m := mustManager(t, s, pol, 7)
	for i := 0; i < 3000; i++ {
		id := page.ID(rng.Intn(40) + 1)
		runOn(t, m, []access{q(id, uint64(i/4))})
		if pol.Len() != m.Len() {
			t.Fatalf("heap size %d != resident %d at step %d", pol.Len(), m.Len(), i)
		}
		if m.Len() > 7 {
			t.Fatalf("buffer overflowed: %d", m.Len())
		}
	}
}

func TestSpatialReset(t *testing.T) {
	s := buildStore(t, uniformPages(3, 1))
	pol := core.NewSpatial(page.CritA)
	m := mustManager(t, s, pol, 2)
	runOn(t, m, seqOf(1, 2, 3))
	if err := m.Clear(); err != nil {
		t.Fatal(err)
	}
	if pol.Len() != 0 {
		t.Errorf("heap not cleared: %d", pol.Len())
	}
	misses := runOn(t, m, seqOf(1, 2))
	if len(misses) != 2 {
		t.Errorf("cold misses = %d, want 2", len(misses))
	}
}
