package core

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/buffer"
	"repro/internal/page"
)

// ParseSpec resolves a parameterized policy spec to a Factory. A spec is
// a colon-separated list whose head names the policy family
// (case-insensitive) and whose tail supplies parameters:
//
//	LRU-K:<k>                              history depth k ≥ 1, e.g. LRU-K:4
//	SLRU:<crit>:<size>                     spatial criterion (A, EA, M, EM, EO)
//	                                       and candidate-set size: values < 1
//	                                       are a fraction of the buffer
//	                                       capacity ("SLRU:EA:0.25"), values
//	                                       ≥ 1 an absolute frame count
//	                                       ("SLRU:A:12")
//	SPATIAL:<crit>                         pure spatial policy, e.g. SPATIAL:EM
//	ASB:<crit>[:<over>[:<cand>[:<step>]]]  criterion plus optional overflow,
//	                                       initial-candidate and step
//	                                       fractions, e.g. ASB:A:0.2:0.25:0.01
//	PIN:<minLevel>                         pin tree levels ≥ minLevel
//
// The returned Factory keeps the original spec string as its Name, so
// result files and metrics label the run with the exact configuration.
func ParseSpec(spec string) (Factory, error) {
	parts := strings.Split(spec, ":")
	head := strings.ToUpper(strings.TrimSpace(parts[0]))
	args := parts[1:]
	bad := func(format string, a ...any) (Factory, error) {
		return Factory{}, fmt.Errorf("core: bad policy spec %q: %s", spec, fmt.Sprintf(format, a...))
	}
	switch head {
	case "LRU-K":
		if len(args) != 1 {
			return bad("want LRU-K:<k>")
		}
		k, err := strconv.Atoi(args[0])
		if err != nil || k < 1 {
			return bad("k must be an integer ≥ 1, got %q", args[0])
		}
		return Factory{Name: spec, New: func(int) buffer.Policy { return NewLRUK(k) }}, nil

	case "SLRU":
		if len(args) != 2 {
			return bad("want SLRU:<crit>:<size>")
		}
		crit, err := page.ParseCriterion(args[0])
		if err != nil {
			return bad("%v", err)
		}
		size, err := strconv.ParseFloat(args[1], 64)
		if err != nil || size <= 0 {
			return bad("size must be a positive number, got %q", args[1])
		}
		return Factory{Name: spec, New: func(c int) buffer.Policy {
			if size < 1 {
				return NewSLRU(crit, fracOf(c, size))
			}
			return NewSLRU(crit, int(size))
		}}, nil

	case "SPATIAL":
		if len(args) != 1 {
			return bad("want SPATIAL:<crit>")
		}
		crit, err := page.ParseCriterion(args[0])
		if err != nil {
			return bad("%v", err)
		}
		return Factory{Name: spec, New: func(int) buffer.Policy { return NewSpatial(crit) }}, nil

	case "ASB":
		if len(args) < 1 || len(args) > 4 {
			return bad("want ASB:<crit>[:<overflowFrac>[:<initCandFrac>[:<stepFrac>]]]")
		}
		crit, err := page.ParseCriterion(args[0])
		if err != nil {
			return bad("%v", err)
		}
		opts := DefaultASBOptions()
		opts.Criterion = crit
		fracs := []*float64{&opts.OverflowFrac, &opts.InitialCandFrac, &opts.StepFrac}
		names := []string{"overflow", "initial-candidate", "step"}
		for i, a := range args[1:] {
			v, err := strconv.ParseFloat(a, 64)
			if err != nil || v <= 0 || v >= 1 {
				return bad("%s fraction must be in (0, 1), got %q", names[i], a)
			}
			*fracs[i] = v
		}
		return Factory{Name: spec, New: func(c int) buffer.Policy { return NewASB(c, opts) }}, nil

	case "PIN":
		if len(args) != 1 {
			return bad("want PIN:<minLevel>")
		}
		lvl, err := strconv.Atoi(args[0])
		if err != nil || lvl < 0 {
			return bad("minLevel must be an integer ≥ 0, got %q", args[0])
		}
		return Factory{Name: spec, New: func(int) buffer.Policy { return NewPinLevels(lvl) }}, nil
	}
	return bad("unknown policy family %q (want LRU-K, SLRU, SPATIAL, ASB or PIN)", parts[0])
}
