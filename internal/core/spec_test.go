package core_test

import (
	"testing"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/page"
)

// TestFactoryByNameRegistry covers the memoized fixed-name lookups.
func TestFactoryByNameRegistry(t *testing.T) {
	for _, f := range core.StandardFactories() {
		got, err := core.FactoryByName(f.Name)
		if err != nil {
			t.Fatalf("FactoryByName(%q): %v", f.Name, err)
		}
		if got.Name != f.Name {
			t.Fatalf("FactoryByName(%q) returned %q", f.Name, got.Name)
		}
		if got.New(64).Name() != f.New(64).Name() {
			t.Fatalf("factory %q built policy %q, want %q", f.Name, got.New(64).Name(), f.New(64).Name())
		}
	}
	// FIFO is resolvable by name without being part of the paper's set.
	if f, err := core.FactoryByName("FIFO"); err != nil || f.New(8).Name() != "FIFO" {
		t.Fatalf("FactoryByName(FIFO) = %v, %v", f, err)
	}
	if _, err := core.FactoryByName("nonsense"); err == nil {
		t.Fatal("FactoryByName(nonsense) should fail")
	}
	if _, err := core.Resolver("LRU"); err != nil {
		t.Fatalf("Resolver(LRU): %v", err)
	}
}

// TestParseSpec covers the parameterized spec grammar end to end: each
// valid spec builds a policy whose observable parameters match, and each
// malformed spec is rejected.
func TestParseSpec(t *testing.T) {
	t.Run("LRU-K", func(t *testing.T) {
		f, err := core.FactoryByName("LRU-K:4")
		if err != nil {
			t.Fatal(err)
		}
		if f.Name != "LRU-K:4" {
			t.Fatalf("spec name = %q", f.Name)
		}
		if k := f.New(64).(*core.LRUK).K(); k != 4 {
			t.Fatalf("K = %d, want 4", k)
		}
	})
	t.Run("SLRU fraction", func(t *testing.T) {
		f, err := core.FactoryByName("SLRU:EA:0.25")
		if err != nil {
			t.Fatal(err)
		}
		p := f.New(64).(*core.SLRU)
		if p.CandidateSize() != 16 {
			t.Fatalf("candidate size = %d, want 16 (0.25 of 64)", p.CandidateSize())
		}
	})
	t.Run("SLRU absolute", func(t *testing.T) {
		f, err := core.FactoryByName("SLRU:A:12")
		if err != nil {
			t.Fatal(err)
		}
		if cs := f.New(64).(*core.SLRU).CandidateSize(); cs != 12 {
			t.Fatalf("candidate size = %d, want 12", cs)
		}
	})
	t.Run("SPATIAL", func(t *testing.T) {
		f, err := core.FactoryByName("SPATIAL:em")
		if err != nil {
			t.Fatal(err)
		}
		if c := f.New(8).(*core.Spatial).Criterion(); c != page.CritEM {
			t.Fatalf("criterion = %v, want EM", c)
		}
	})
	t.Run("ASB", func(t *testing.T) {
		f, err := core.FactoryByName("ASB:M:0.5")
		if err != nil {
			t.Fatal(err)
		}
		p := f.New(64).(*core.ASB)
		if p.OverflowCapacity() != 32 {
			t.Fatalf("overflow capacity = %d, want 32 (0.5 of 64)", p.OverflowCapacity())
		}
	})
	t.Run("PIN", func(t *testing.T) {
		f, err := core.FactoryByName("PIN:2")
		if err != nil {
			t.Fatal(err)
		}
		if lvl := f.New(8).(*core.PinLevels).MinLevel; lvl != 2 {
			t.Fatalf("MinLevel = %d, want 2", lvl)
		}
	})
	for _, bad := range []string{
		"LRU-K:0", "LRU-K:x", "LRU-K:", "LRU-K:2:3",
		"SLRU:A", "SLRU:Q:0.5", "SLRU:A:0", "SLRU:A:-1",
		"SPATIAL:", "SPATIAL:XX",
		"ASB:", "ASB:A:1.5", "ASB:A:0.2:0.25:0.01:9",
		"PIN:-1", "PIN:x",
		"WOMBAT:3",
	} {
		if _, err := core.FactoryByName(bad); err == nil {
			t.Errorf("FactoryByName(%q) should fail", bad)
		}
	}
}

// TestSpecEquivalence checks a parameterized spec builds the same policy
// the fixed registry name does: "LRU-K:2" must replay exactly like
// "LRU-2", and "SLRU:A:0.25" like "SLRU 25%".
func TestSpecEquivalence(t *testing.T) {
	for _, tc := range []struct{ spec, std string }{
		{"LRU-K:2", "LRU-2"},
		{"SLRU:A:0.25", "SLRU 25%"},
		{"SPATIAL:A", "A"},
		{"ASB:A:0.2:0.25:0.01", "ASB"},
		{"PIN:1", "PIN"},
	} {
		const capacity = 8
		specF, err := core.FactoryByName(tc.spec)
		if err != nil {
			t.Fatal(err)
		}
		stdF, err := core.FactoryByName(tc.std)
		if err != nil {
			t.Fatal(err)
		}
		seq, specs := benchAccesses(48, 2000)
		store1 := buildStore(t, specs)
		store2 := buildStore(t, specs)
		m1 := mustManager(t, store1, specF.New(capacity), capacity)
		m2 := mustManager(t, store2, stdF.New(capacity), capacity)
		miss1 := runOn(t, m1, seq)
		miss2 := runOn(t, m2, seq)
		if !idsEqual(miss1, miss2) {
			t.Errorf("%q and %q diverged: %d vs %d misses", tc.spec, tc.std, len(miss1), len(miss2))
		}
	}
}

// TestParseCriterion covers the page-level criterion parser the spec
// grammar builds on.
func TestParseCriterion(t *testing.T) {
	for _, c := range page.Criteria() {
		got, err := page.ParseCriterion(c.String())
		if err != nil || got != c {
			t.Errorf("ParseCriterion(%q) = %v, %v", c.String(), got, err)
		}
		got, err = page.ParseCriterion(string([]byte{c.String()[0] | 0x20}) + c.String()[1:])
		if err != nil || got != c {
			t.Errorf("ParseCriterion lowercase %q failed: %v, %v", c.String(), got, err)
		}
	}
	if _, err := page.ParseCriterion("ZZ"); err == nil {
		t.Error("ParseCriterion(ZZ) should fail")
	}
}

var _ buffer.Policy = (*core.LRUK)(nil) // spec casts rely on concrete types staying exported
