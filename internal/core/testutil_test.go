package core_test

import (
	"math"
	"testing"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/page"
	"repro/internal/storage"
)

// rect abbreviates geom.NewRect in tests.
func rect(x1, y1, x2, y2 float64) geom.Rect {
	return geom.NewRect(x1, y1, x2, y2)
}

// pageSpec describes a test page to synthesize.
type pageSpec struct {
	typ   page.Type
	level int
	area  float64 // page MBR area (single square entry)
}

// dataPage returns a spec for a data page of the given MBR area.
func dataPage(area float64) pageSpec {
	return pageSpec{typ: page.TypeData, level: 0, area: area}
}

// buildStore writes one page per spec; page IDs are 1..len(specs) in spec
// order.
func buildStore(t *testing.T, specs []pageSpec) *storage.MemStore {
	t.Helper()
	s := storage.NewMemStore()
	for _, spec := range specs {
		id := s.Allocate()
		p := page.New(id, spec.typ, spec.level, 1)
		side := math.Sqrt(spec.area)
		p.Append(page.Entry{MBR: geom.NewRect(0, 0, side, side), ObjID: uint64(id)})
		p.Recompute()
		if err := s.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	s.ResetStats()
	return s
}

// access is one step of a scripted request sequence.
type access struct {
	id    page.ID
	query uint64
}

// q tags a page request with a query ID.
func q(id page.ID, query uint64) access { return access{id: id, query: query} }

// run replays the accesses against a fresh manager and returns the page
// IDs that missed, in order.
func run(t *testing.T, s storage.Store, pol buffer.Policy, capacity int, seq []access) []page.ID {
	t.Helper()
	m, err := buffer.NewManager(s, pol, capacity)
	if err != nil {
		t.Fatal(err)
	}
	return runOn(t, m, seq)
}

// runOn replays the accesses on an existing manager, returning miss IDs.
func runOn(t *testing.T, m *buffer.Manager, seq []access) []page.ID {
	t.Helper()
	var misses []page.ID
	for _, a := range seq {
		before := m.Stats().Misses
		if _, err := m.Get(a.id, buffer.AccessContext{QueryID: a.query}); err != nil {
			t.Fatalf("get %d: %v", a.id, err)
		}
		if m.Stats().Misses > before {
			misses = append(misses, a.id)
		}
	}
	return misses
}

// idsEqual compares two ID slices.
func idsEqual(a, b []page.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// seqOf builds an access sequence where every request is its own query.
func seqOf(ids ...page.ID) []access {
	seq := make([]access, len(ids))
	for i, id := range ids {
		seq[i] = access{id: id, query: uint64(i + 1)}
	}
	return seq
}

// resident returns whether every given ID is resident in m.
func resident(m *buffer.Manager, ids ...page.ID) bool {
	for _, id := range ids {
		if !m.Contains(id) {
			return false
		}
	}
	return true
}

// mustManager builds a manager or fails the test.
func mustManager(t *testing.T, s storage.Store, pol buffer.Policy, capacity int) *buffer.Manager {
	t.Helper()
	m, err := buffer.NewManager(s, pol, capacity)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// uniformPages returns n data-page specs all with the same area.
func uniformPages(n int, area float64) []pageSpec {
	specs := make([]pageSpec, n)
	for i := range specs {
		specs[i] = dataPage(area)
	}
	return specs
}

// factoryNames returns the names of the standard factories, for
// cross-policy conformance tests.
func allStandardPolicies(capacity int) []buffer.Policy {
	var pols []buffer.Policy
	for _, f := range core.StandardFactories() {
		pols = append(pols, f.New(capacity))
	}
	pols = append(pols, core.NewFIFO())
	return pols
}

// pageID converts for benchmark helpers.
func pageID(i int) page.ID { return page.ID(i) }

// buildStoreB is buildStore for benchmarks.
func buildStoreB(b *testing.B, specs []pageSpec) *storage.MemStore {
	b.Helper()
	s := storage.NewMemStore()
	for _, spec := range specs {
		id := s.Allocate()
		p := page.New(id, spec.typ, spec.level, 1)
		side := math.Sqrt(spec.area)
		p.Append(page.Entry{MBR: geom.NewRect(0, 0, side, side), ObjID: uint64(id)})
		p.Recompute()
		if err := s.Write(p); err != nil {
			b.Fatal(err)
		}
	}
	s.ResetStats()
	return s
}
