package core_test

import (
	"math"
	"testing"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/obs/tracing"
	"repro/internal/page"
	"repro/internal/storage"
)

// tracedStack builds a MemStore of n single-entry pages with distinct
// areas and an ASB-managed buffer with an every-request tracer attached.
func tracedStack(t *testing.T, n, capacity int) (*buffer.Manager, *tracing.Tracer) {
	t.Helper()
	s := storage.NewMemStore()
	for i := 0; i < n; i++ {
		id := s.Allocate()
		p := page.New(id, page.TypeData, 0, 1)
		side := math.Sqrt(float64(i + 1))
		p.Append(page.Entry{MBR: geom.NewRect(0, 0, side, side), ObjID: uint64(i)})
		p.Recompute()
		if err := s.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	m, err := buffer.NewManager(s, core.NewASB(capacity, core.DefaultASBOptions()), capacity)
	if err != nil {
		t.Fatal(err)
	}
	tr := tracing.NewTracer(1, 1, 256)
	m.SetTracer(tr, 0)
	return m, tr
}

// TestASBTracedEndToEnd drives a full miss-and-evict workload through
// Manager + ASB + MemStore and checks the acceptance shape of the
// resulting traces: a Get root span with a victim-select child carrying
// ASB criterion values and a store.Read child carrying byte counts.
func TestASBTracedEndToEnd(t *testing.T) {
	const pages, capacity = 32, 8
	m, tr := tracedStack(t, pages, capacity)

	for i := 0; i < 2; i++ { // second pass evicts on every miss
		for id := page.ID(1); id <= pages; id++ {
			if _, err := m.Get(id, buffer.AccessContext{QueryID: uint64(i)}); err != nil {
				t.Fatal(err)
			}
		}
	}

	var sawVictim, sawRead bool
	for _, trc := range tr.Traces(0) {
		if trc[0].Kind != tracing.KindGet {
			t.Fatalf("root span is %v, want Get", trc[0].Kind)
		}
		for _, sp := range trc[1:] {
			switch sp.Kind {
			case tracing.KindVictim:
				sawVictim = true
				if sp.Parent != 0 {
					t.Fatalf("victim span not nested under root: %+v", sp)
				}
				if sp.CritKind != "A" {
					t.Fatalf("victim criterion kind %q, want A", sp.CritKind)
				}
				if sp.Reason == "" || sp.Page == page.InvalidID {
					t.Fatalf("victim span missing payload: %+v", sp)
				}
			case tracing.KindStoreRead:
				sawRead = true
				if sp.Parent != 0 || sp.Bytes <= 0 || sp.Page == page.InvalidID {
					t.Fatalf("bad store.Read span: %+v", sp)
				}
			}
		}
	}
	if !sawVictim || !sawRead {
		t.Fatalf("trace lacks victim-select (%v) or store.Read (%v) spans", sawVictim, sawRead)
	}
}

// TestASBTracedAdapt provokes overflow hits and checks the asb-adapt
// spans carry the candidate-size transition and the §4.2 signal.
func TestASBTracedAdapt(t *testing.T) {
	const pages, capacity = 40, 10
	m, tr := tracedStack(t, pages, capacity)
	asb := m.Policy().(*core.ASB)

	// Work on a resident-sized set: the first round fills the buffer
	// (demoting the SLRU victims into the overflow part), later rounds
	// hit everything — including the overflow pages, which triggers
	// adaptation on promotion.
	for round := 0; round < 6; round++ {
		for id := page.ID(1); id <= capacity; id++ {
			if _, err := m.Get(id, buffer.AccessContext{QueryID: uint64(round)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if asb.Adaptations() == 0 {
		t.Fatal("workload produced no overflow hits; test is vacuous")
	}

	var adapts int
	for _, trc := range tr.Traces(0) {
		for _, sp := range trc {
			if sp.Kind != tracing.KindAdapt {
				continue
			}
			adapts++
			if sp.Parent != 0 {
				t.Fatalf("adapt span not nested under root: %+v", sp)
			}
			if sp.OldC < 1 || sp.NewC < 1 {
				t.Fatalf("adapt span missing candidate sizes: %+v", sp)
			}
			if sp.Page == page.InvalidID {
				t.Fatalf("adapt span missing page: %+v", sp)
			}
		}
	}
	// The ring holds the newest 256 traces; at least the recent
	// adaptations must be visible.
	if adapts == 0 {
		t.Fatal("no asb-adapt spans recorded despite adaptations")
	}
}

// TestSLRUAndSpatialVictimSpans checks the other instrumented policies
// emit victim-select spans with their criterion payloads.
func TestSLRUAndSpatialVictimSpans(t *testing.T) {
	for _, tc := range []struct {
		name   string
		policy buffer.Policy
	}{
		{"SLRU", core.NewSLRU(page.CritA, 3)},
		{"Spatial", core.NewSpatial(page.CritA)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := storage.NewMemStore()
			for i := 0; i < 12; i++ {
				id := s.Allocate()
				p := page.New(id, page.TypeData, 0, 1)
				side := math.Sqrt(float64(i + 1))
				p.Append(page.Entry{MBR: geom.NewRect(0, 0, side, side)})
				p.Recompute()
				if err := s.Write(p); err != nil {
					t.Fatal(err)
				}
			}
			m, err := buffer.NewManager(s, tc.policy, 4)
			if err != nil {
				t.Fatal(err)
			}
			tr := tracing.NewTracer(1, 1, 64)
			m.SetTracer(tr, 0)
			for id := page.ID(1); id <= 12; id++ {
				if _, err := m.Get(id, buffer.AccessContext{}); err != nil {
					t.Fatal(err)
				}
			}
			var victims int
			for _, trc := range tr.Traces(0) {
				for _, sp := range trc {
					if sp.Kind != tracing.KindVictim {
						continue
					}
					victims++
					if sp.CritKind != "A" || sp.Reason == "" || sp.Page == page.InvalidID {
						t.Fatalf("victim span missing payload: %+v", sp)
					}
					if tc.name == "SLRU" && sp.CritWin > sp.CritLose {
						// SLRU scans a candidate set, so the winner's
						// criterion is ≤ the worst scanned one.
						t.Fatalf("winning criterion %v larger than losing %v", sp.CritWin, sp.CritLose)
					}
					if tc.name == "Spatial" && sp.Rank != -1 {
						t.Fatalf("spatial victim rank %d, want -1", sp.Rank)
					}
				}
			}
			if victims == 0 {
				t.Fatal("no victim-select spans recorded")
			}
		})
	}
}
