// Package dataset generates the synthetic spatial databases standing in
// for the paper's proprietary inputs (USGS GNIS features for database 1, a
// commercial world atlas for database 2, and the USGS places file used to
// derive the similar/intensified query distributions).
//
// The replacement policies under study only observe page geometry (MBRs,
// areas, margins, overlaps) and reference sequences, so the substitution
// must preserve the *distributional* properties the paper's effects rest
// on:
//
//   - database 1 ("US mainland"): strongly clustered, non-uniform density
//     spread across most of the data space — dense regions yield small
//     page MBRs, sparse regions large ones, and an x-flipped query still
//     mostly lands on populated territory;
//   - database 2 ("world atlas"): occupied continents covering a minority
//     of the space with large empty oceans, x-asymmetric, so an x-flipped
//     query usually lands in empty space and is answered from the root;
//   - places: locations correlated with the object clusters, with
//     Zipf-like populations concentrated in the dense clusters, so that
//     √population-weighted sampling intensifies load on small-page
//     regions.
//
// All generators are deterministic in their seed.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geom"
)

// Object is a spatial object to be indexed: an ID plus its MBR.
type Object struct {
	ID  uint64
	MBR geom.Rect
}

// Place is a named-place record: a location with a population, the basis
// of the similar and intensified query distributions.
type Place struct {
	Loc        geom.Point
	Population int
}

// Cluster is one Gaussian population centre of a synthetic database.
type Cluster struct {
	Center geom.Point
	StdX   float64
	StdY   float64
	// Weight is the relative share of objects drawn from this cluster.
	Weight float64
}

// Generator describes a synthetic spatial database: a data space, a set of
// clusters, and object-shape parameters.
type Generator struct {
	// Name identifies the database ("us-mainland", "world-atlas").
	Name string
	// Space is the data space; all objects fall inside it.
	Space geom.Rect
	// Land, if non-empty, restricts background objects and places to
	// these regions (the "continents" of database 2).
	Land []geom.Rect
	// Clusters are the population centres.
	Clusters []Cluster
	// BackgroundFrac is the share of objects drawn uniformly from the
	// land (or the whole space if Land is empty) instead of a cluster.
	BackgroundFrac float64
	// OceanFrac is the share of objects drawn uniformly over the WHOLE
	// space, ignoring Land — islands, shipping routes and other sparse
	// off-continent features of an atlas. They make the pages covering
	// the "ocean" few and huge, which is what poisons a pure spatial
	// buffer under the independent query distribution.
	OceanFrac float64
	// PointFrac is the share of objects that are points; the rest are
	// rectangles with exponentially distributed extents.
	PointFrac float64
	// MeanExtent is the mean rectangle extent (per axis).
	MeanExtent float64

	totalWeight float64
}

// USMainland returns the generator standing in for the paper's primary
// database (USGS GNIS features of the US mainland): clusters spread over
// nearly the whole space with varied density, plus uniform background.
func USMainland(seed int64) *Generator {
	rng := rand.New(rand.NewSource(seed))
	space := geom.NewRect(0, 0, 1000, 500)
	g := &Generator{
		Name:           "us-mainland",
		Space:          space,
		BackgroundFrac: 0.12,
		PointFrac:      0.65,
		MeanExtent:     0.8,
	}
	// 24 mirror pairs of metropolitan clusters (48 total). Pairing a
	// cluster with a slightly perturbed partner at the x-mirrored
	// position models the rough east/west-coast symmetry of the US: the
	// paper's independent distribution (x-flipped queries) then still
	// "meets the mainland" in populated areas, as reported for DB1.
	// Weights follow a Zipf-like profile and the heaviest clusters are
	// spatially tight, giving the density contrast that makes hot-region
	// pages small ("areas of intensified interest", §3.5.3).
	const numPairs = 24
	for i := 0; i < numPairs; i++ {
		spread := 1.0 + 3.0*float64(i)/numPairs // later clusters are looser
		base := Cluster{
			Center: geom.Point{
				X: 30 + rng.Float64()*940,
				Y: 30 + rng.Float64()*440,
			},
			StdX:   (2.5 + rng.Float64()*4) * spread,
			StdY:   (2 + rng.Float64()*3.5) * spread,
			Weight: 1 / math.Pow(float64(2*i+1), 1.1),
		}
		mirror := Cluster{
			Center: geom.Point{
				X: space.MinX + space.MaxX - base.Center.X,
				Y: clampF(base.Center.Y+rng.NormFloat64()*3, 30, 470),
			},
			StdX:   base.StdX * (0.8 + rng.Float64()*0.6),
			StdY:   base.StdY * (0.8 + rng.Float64()*0.6),
			Weight: 1 / math.Pow(float64(2*i+2), 1.1),
		}
		g.Clusters = append(g.Clusters, base, mirror)
	}
	g.finish()
	return g
}

// clampF bounds v to [lo, hi].
func clampF(v, lo, hi float64) float64 {
	return math.Max(lo, math.Min(hi, v))
}

// WorldAtlas returns the generator standing in for the paper's second
// database (line and area features of a world atlas): continent-shaped
// land regions covering a minority of the space, placed x-asymmetrically
// so that mirroring a land point usually produces an ocean point.
func WorldAtlas(seed int64) *Generator {
	rng := rand.New(rand.NewSource(seed))
	space := geom.NewRect(0, 0, 1000, 500)
	g := &Generator{
		Name:           "world-atlas",
		Space:          space,
		BackgroundFrac: 0.18,
		OceanFrac:      0.10,
		PointFrac:      0.30, // atlas data is mostly lines and polygons
		MeanExtent:     1.2,
		// Five "continents", ~28% of the space, x-asymmetric: the
		// x-mirrored images of these boxes overlap the boxes themselves
		// only marginally.
		Land: []geom.Rect{
			geom.NewRect(20, 230, 170, 470),  // "north-west"
			geom.NewRect(120, 30, 260, 200),  // "south-west"
			geom.NewRect(430, 180, 560, 460), // "central north"
			geom.NewRect(470, 20, 580, 150),  // "central south"
			geom.NewRect(610, 250, 830, 470), // "east"
		},
	}
	// Several clusters per continent, Zipf weights, tight top clusters.
	rank := 1
	for _, land := range g.Land {
		for j := 0; j < 6; j++ {
			spread := 1.0 + 2.5*float64(rank)/30
			c := Cluster{
				Center: geom.Point{
					X: land.MinX + rng.Float64()*land.Width(),
					Y: land.MinY + rng.Float64()*land.Height(),
				},
				StdX:   (2.5 + rng.Float64()*4) * spread,
				StdY:   (2 + rng.Float64()*3.5) * spread,
				Weight: 1 / math.Pow(float64(rank), 1.1),
			}
			g.Clusters = append(g.Clusters, c)
			rank++
		}
	}
	// The x-mirrored positions of the two heaviest clusters get dense
	// "destination" clusters of their own (with a small land patch, like
	// longitude-flipped Chinese coordinates landing in the western US):
	// the independent query distribution then concentrates on dense
	// small-page regions while most other flipped queries hit ocean —
	// the combination behind the paper's DB2 IND result.
	for i := 0; i < 2 && i < len(g.Clusters); i++ {
		src := g.Clusters[i]
		mx := space.MinX + space.MaxX - src.Center.X
		my := src.Center.Y
		patch := geom.RectFromCenter(geom.Point{X: mx, Y: my}, 60, 60).Intersection(space)
		g.Land = append(g.Land, patch)
		g.Clusters = append(g.Clusters, Cluster{
			Center: geom.Point{X: mx, Y: my},
			StdX:   2 + rng.Float64()*1.5,
			StdY:   1.5 + rng.Float64()*1.5,
			Weight: 1 / math.Pow(float64(6+2*i), 1.1),
		})
	}
	g.finish()
	return g
}

// finish precomputes derived state.
func (g *Generator) finish() {
	g.totalWeight = 0
	for _, c := range g.Clusters {
		g.totalWeight += c.Weight
	}
}

// pickCluster samples a cluster index proportionally to weight.
func (g *Generator) pickCluster(rng *rand.Rand) int {
	x := rng.Float64() * g.totalWeight
	for i, c := range g.Clusters {
		x -= c.Weight
		if x <= 0 {
			return i
		}
	}
	return len(g.Clusters) - 1
}

// landAt reports whether p lies on land (always true without Land
// regions).
func (g *Generator) landAt(p geom.Point) bool {
	if len(g.Land) == 0 {
		return true
	}
	for _, l := range g.Land {
		if l.ContainsPoint(p) {
			return true
		}
	}
	return false
}

// samplePoint draws an object location: from a weighted cluster, or
// uniformly from the land with probability BackgroundFrac.
func (g *Generator) samplePoint(rng *rand.Rand) geom.Point {
	u := rng.Float64()
	if u < g.OceanFrac {
		return geom.Point{
			X: g.Space.MinX + rng.Float64()*g.Space.Width(),
			Y: g.Space.MinY + rng.Float64()*g.Space.Height(),
		}
	}
	if u < g.OceanFrac+g.BackgroundFrac {
		return g.sampleUniformLand(rng)
	}
	c := g.Clusters[g.pickCluster(rng)]
	for tries := 0; tries < 64; tries++ {
		p := geom.Point{
			X: c.Center.X + rng.NormFloat64()*c.StdX,
			Y: c.Center.Y + rng.NormFloat64()*c.StdY,
		}
		if g.Space.ContainsPoint(p) {
			return p
		}
	}
	return c.Center
}

// sampleUniformLand draws a uniform point on land.
func (g *Generator) sampleUniformLand(rng *rand.Rand) geom.Point {
	if len(g.Land) == 0 {
		return geom.Point{
			X: g.Space.MinX + rng.Float64()*g.Space.Width(),
			Y: g.Space.MinY + rng.Float64()*g.Space.Height(),
		}
	}
	// Pick a land region by area, then a uniform point inside it.
	total := 0.0
	for _, l := range g.Land {
		total += l.Area()
	}
	x := rng.Float64() * total
	region := g.Land[len(g.Land)-1]
	for _, l := range g.Land {
		x -= l.Area()
		if x <= 0 {
			region = l
			break
		}
	}
	return geom.Point{
		X: region.MinX + rng.Float64()*region.Width(),
		Y: region.MinY + rng.Float64()*region.Height(),
	}
}

// Objects generates n objects. Object IDs are 1..n.
func (g *Generator) Objects(seed int64, n int) []Object {
	rng := rand.New(rand.NewSource(seed))
	objs := make([]Object, n)
	for i := range objs {
		p := g.samplePoint(rng)
		var r geom.Rect
		if rng.Float64() < g.PointFrac {
			r = geom.RectFromPoint(p)
		} else {
			w := rng.ExpFloat64() * g.MeanExtent
			h := rng.ExpFloat64() * g.MeanExtent
			r = geom.RectFromCenter(p, w, h).Intersection(g.Space)
			if r.IsEmpty() {
				r = geom.RectFromPoint(p)
			}
		}
		objs[i] = Object{ID: uint64(i + 1), MBR: r}
	}
	return objs
}

// Places generates n place records. Locations follow the cluster layout
// (with a small uniform share); populations are Pareto-distributed and
// scaled by the weight of the cluster a place belongs to, so big places
// concentrate in dense regions.
func (g *Generator) Places(seed int64, n int) []Place {
	rng := rand.New(rand.NewSource(seed))
	places := make([]Place, n)
	maxW := 0.0
	for _, c := range g.Clusters {
		if c.Weight > maxW {
			maxW = c.Weight
		}
	}
	for i := range places {
		var loc geom.Point
		weight := 0.3 // background places are small
		if rng.Float64() < 0.12 {
			loc = g.sampleUniformLand(rng)
		} else {
			ci := g.pickCluster(rng)
			c := g.Clusters[ci]
			for tries := 0; ; tries++ {
				loc = geom.Point{
					X: c.Center.X + rng.NormFloat64()*c.StdX,
					Y: c.Center.Y + rng.NormFloat64()*c.StdY,
				}
				if g.Space.ContainsPoint(loc) || tries >= 64 {
					break
				}
			}
			if !g.Space.ContainsPoint(loc) {
				loc = c.Center
			}
			weight = c.Weight / maxW
		}
		// Pareto tail scaled by the squared cluster weight: big cities
		// concentrate in the densest clusters, so the intensified
		// distribution (∝ √population) hits small-page regions hardest.
		u := rng.Float64()
		if u < 1e-6 {
			u = 1e-6
		}
		pop := int(10_000_000 * weight * weight / u)
		if pop > 20_000_000 {
			pop = 20_000_000
		}
		if pop < 10 {
			pop = 10
		}
		places[i] = Place{Loc: loc, Population: pop}
	}
	return places
}

// Validate checks generator sanity (used by tests and the CLI).
func (g *Generator) Validate() error {
	if g.Space.IsEmpty() || !g.Space.Valid() {
		return fmt.Errorf("dataset %s: invalid space", g.Name)
	}
	if len(g.Clusters) == 0 {
		return fmt.Errorf("dataset %s: no clusters", g.Name)
	}
	for i, c := range g.Clusters {
		if !g.Space.ContainsPoint(c.Center) {
			return fmt.Errorf("dataset %s: cluster %d centre outside space", g.Name, i)
		}
		if c.Weight <= 0 || c.StdX <= 0 || c.StdY <= 0 {
			return fmt.Errorf("dataset %s: cluster %d has non-positive parameters", g.Name, i)
		}
	}
	for i, l := range g.Land {
		if !g.Space.Contains(l) {
			return fmt.Errorf("dataset %s: land region %d outside space", g.Name, i)
		}
	}
	return nil
}

// ShapedObject pairs an indexable object (ID + MBR) with its exact
// polyline representation, for the object-page/filter-refine layer.
type ShapedObject struct {
	Object
	Shape geom.Polyline
}

// ShapedObjects generates n objects with exact representations: point
// objects become single-vertex polylines; extended objects become random
// walks of 2–9 vertices inside their extent. Object MBRs are derived from
// the shapes, so indexing the Object part and refining against Shape is
// consistent. IDs are 1..n.
func (g *Generator) ShapedObjects(seed int64, n int) []ShapedObject {
	rng := rand.New(rand.NewSource(seed))
	out := make([]ShapedObject, n)
	for i := range out {
		p := g.samplePoint(rng)
		var shape geom.Polyline
		if rng.Float64() < g.PointFrac {
			shape = geom.Polyline{p}
		} else {
			w := rng.ExpFloat64() * g.MeanExtent * 2
			h := rng.ExpFloat64() * g.MeanExtent * 2
			verts := 2 + rng.Intn(8)
			shape = make(geom.Polyline, verts)
			for v := range shape {
				shape[v] = geom.Point{
					X: clampF(p.X+(rng.Float64()-0.5)*w, g.Space.MinX, g.Space.MaxX),
					Y: clampF(p.Y+(rng.Float64()-0.5)*h, g.Space.MinY, g.Space.MaxY),
				}
			}
		}
		out[i] = ShapedObject{
			Object: Object{ID: uint64(i + 1), MBR: shape.MBR()},
			Shape:  shape,
		}
	}
	return out
}
