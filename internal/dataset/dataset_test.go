package dataset

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func TestGeneratorsValidate(t *testing.T) {
	for _, g := range []*Generator{USMainland(1), WorldAtlas(1)} {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", g.Name, err)
		}
	}
}

func TestObjectsDeterministic(t *testing.T) {
	g := USMainland(7)
	a := g.Objects(42, 500)
	b := g.Objects(42, 500)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("object %d differs between runs with same seed", i)
		}
	}
	c := g.Objects(43, 500)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical objects")
	}
}

func TestObjectsInsideSpaceWithDenseIDs(t *testing.T) {
	for _, g := range []*Generator{USMainland(3), WorldAtlas(3)} {
		objs := g.Objects(5, 2000)
		if len(objs) != 2000 {
			t.Fatalf("%s: %d objects", g.Name, len(objs))
		}
		for i, o := range objs {
			if o.ID != uint64(i+1) {
				t.Fatalf("%s: object %d has ID %d", g.Name, i, o.ID)
			}
			if !o.MBR.Valid() {
				t.Fatalf("%s: object %d has invalid MBR %v", g.Name, o.ID, o.MBR)
			}
			if !g.Space.Contains(o.MBR) {
				t.Fatalf("%s: object %d MBR %v outside space", g.Name, o.ID, o.MBR)
			}
		}
	}
}

func TestObjectsMixPointsAndRects(t *testing.T) {
	g := USMainland(11)
	objs := g.Objects(13, 3000)
	points, rects := 0, 0
	for _, o := range objs {
		if o.MBR.Area() == 0 && o.MBR.Width() == 0 && o.MBR.Height() == 0 {
			points++
		} else {
			rects++
		}
	}
	// PointFrac 0.65 ± noise (rect generation can degenerate to points).
	frac := float64(points) / float64(len(objs))
	if frac < 0.55 || frac > 0.85 {
		t.Errorf("point fraction = %.2f, expected around 0.65", frac)
	}
	if rects == 0 {
		t.Error("no extended objects generated")
	}
}

func TestUSMainlandClusteredDensity(t *testing.T) {
	// The density contrast the spatial policies depend on: a tight box
	// around the heaviest cluster must hold far more objects per unit
	// area than the space as a whole.
	g := USMainland(1)
	objs := g.Objects(2, 30000)
	top := g.Clusters[0]
	box := geom.RectFromCenter(top.Center, 4*top.StdX, 4*top.StdY)
	in := 0
	for _, o := range objs {
		if box.ContainsPoint(o.MBR.Center()) {
			in++
		}
	}
	clusterDensity := float64(in) / box.Area()
	globalDensity := float64(len(objs)) / g.Space.Area()
	if clusterDensity < 5*globalDensity {
		t.Errorf("top-cluster density %.4f not ≫ global %.4f", clusterDensity, globalDensity)
	}
}

func TestUSMainlandMirrorSymmetry(t *testing.T) {
	// The cluster layout must be roughly x-mirror symmetric (the DB1
	// property that keeps the independent distribution on populated
	// ground): for every cluster, some cluster lies near its mirror
	// position.
	g := USMainland(1)
	space := g.Space
	for i, c := range g.Clusters {
		mx := space.MinX + space.MaxX - c.Center.X
		best := math.Inf(1)
		for j, d := range g.Clusters {
			if i == j {
				continue
			}
			dx := d.Center.X - mx
			dy := d.Center.Y - c.Center.Y
			if dist := math.Hypot(dx, dy); dist < best {
				best = dist
			}
		}
		if best > 60 {
			t.Errorf("cluster %d has no mirror partner within 60 units (nearest %.1f)", i, best)
		}
	}
}

func TestWorldAtlasLandProperties(t *testing.T) {
	g := WorldAtlas(1)
	// Land covers a minority of the space.
	landArea := 0.0
	for _, l := range g.Land {
		landArea += l.Area()
	}
	if frac := landArea / g.Space.Area(); frac > 0.45 {
		t.Errorf("land fraction = %.2f, want a minority", frac)
	}
	// Most objects are on land, but some (OceanFrac) are not.
	objs := g.Objects(9, 20000)
	onLand := 0
	for _, o := range objs {
		if g.landAt(o.MBR.Center()) {
			onLand++
		}
	}
	frac := float64(onLand) / float64(len(objs))
	if frac < 0.80 {
		t.Errorf("on-land fraction = %.2f, want ≥ 0.80", frac)
	}
	if frac > 0.999 {
		t.Error("no ocean features generated despite OceanFrac > 0")
	}
}

func TestWorldAtlasFlipHitsOcean(t *testing.T) {
	// The DB2-defining property: x-flipping a land point should usually
	// produce an off-land point (the paper: "most query points meet
	// water").
	g := WorldAtlas(1)
	places := g.Places(3, 4000)
	ocean := 0
	for _, p := range places {
		flipped := geom.Point{X: g.Space.MinX + g.Space.MaxX - p.Loc.X, Y: p.Loc.Y}
		if !g.landAt(flipped) {
			ocean++
		}
	}
	frac := float64(ocean) / float64(len(places))
	if frac < 0.4 {
		t.Errorf("flipped-to-ocean fraction = %.2f, want ≥ 0.4", frac)
	}
	if frac > 0.98 {
		t.Errorf("flipped-to-ocean fraction = %.2f: no land destinations at all", frac)
	}
}

func TestPlaces(t *testing.T) {
	for _, g := range []*Generator{USMainland(5), WorldAtlas(5)} {
		places := g.Places(21, 3000)
		if len(places) != 3000 {
			t.Fatalf("%s: %d places", g.Name, len(places))
		}
		maxPop := 0
		for i, p := range places {
			if !g.Space.ContainsPoint(p.Loc) {
				t.Fatalf("%s: place %d outside space", g.Name, i)
			}
			if p.Population < 10 {
				t.Fatalf("%s: place %d population %d < 10", g.Name, i, p.Population)
			}
			if p.Population > maxPop {
				maxPop = p.Population
			}
		}
		// A heavy tail must exist (big cities).
		if maxPop < 100_000 {
			t.Errorf("%s: max population %d, expected a heavy tail", g.Name, maxPop)
		}
		// Determinism.
		again := g.Places(21, 3000)
		for i := range places {
			if places[i] != again[i] {
				t.Fatalf("%s: place %d differs between runs", g.Name, i)
			}
		}
	}
}

func TestPlacesPopulationCorrelatesWithClusterWeight(t *testing.T) {
	// Big places must concentrate near heavy clusters: the mean
	// population of places close to the top-3 clusters should exceed the
	// global mean.
	g := USMainland(1)
	places := g.Places(8, 8000)
	var topSum, topN, allSum float64
	for _, p := range places {
		allSum += float64(p.Population)
		for _, c := range g.Clusters[:3] {
			if math.Hypot(p.Loc.X-c.Center.X, p.Loc.Y-c.Center.Y) < 5*c.StdX {
				topSum += float64(p.Population)
				topN++
				break
			}
		}
	}
	if topN == 0 {
		t.Fatal("no places near top clusters")
	}
	topMean := topSum / topN
	allMean := allSum / float64(len(places))
	if topMean < 2*allMean {
		t.Errorf("top-cluster mean population %.0f not ≫ global mean %.0f", topMean, allMean)
	}
}

func TestValidateErrors(t *testing.T) {
	g := USMainland(1)
	bad := *g
	bad.Clusters = nil
	if bad.Validate() == nil {
		t.Error("no clusters should fail validation")
	}
	bad = *g
	bad.Clusters = append([]Cluster(nil), g.Clusters...)
	bad.Clusters[0].Weight = -1
	if bad.Validate() == nil {
		t.Error("negative weight should fail validation")
	}
	bad = *g
	bad.Space = geom.EmptyRect()
	if bad.Validate() == nil {
		t.Error("empty space should fail validation")
	}
	w := WorldAtlas(1)
	badW := *w
	badW.Land = append([]geom.Rect(nil), w.Land...)
	badW.Land[0] = geom.NewRect(-100, -100, -50, -50)
	if badW.Validate() == nil {
		t.Error("land outside space should fail validation")
	}
}
