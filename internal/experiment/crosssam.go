package experiment

import (
	"fmt"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/page"
	"repro/internal/quadtree"
	"repro/internal/queryset"
	"repro/internal/rtree"
	"repro/internal/storage"
	"repro/internal/zbtree"
)

// samRunner abstracts one spatial access method for the cross-SAM
// extension experiment: build an index over objects, then run a window
// query through a Reader.
type samRunner struct {
	name   string
	pages  func() int
	search func(rd rtree.Reader, ctx buffer.AccessContext, w geom.Rect) error
	store  *storage.MemStore
}

// FigCrossSAM is an extension beyond the paper: the same window workload
// and the same replacement policies on all three access-method families
// §2.3 names — R*-tree, z-order B-tree and quadtree. Cells are gains over
// LRU per (SAM, policy).
func FigCrossSAM(opts Options, seed int64) ([]*Table, error) {
	db, err := Get(1, opts)
	if err != nil {
		return nil, err
	}
	gen := db.Generator
	objs := db.Objects
	space := gen.Space

	var sams []*samRunner

	// R*-tree (reuse the database's tree and store).
	{
		st := db.Stats
		sams = append(sams, &samRunner{
			name:  "R*-tree",
			pages: func() int { return st.TotalPages() },
			search: func(rd rtree.Reader, ctx buffer.AccessContext, w geom.Rect) error {
				return db.Tree.Search(rd, ctx, w, func(page.Entry) bool { return true })
			},
			store: db.Store,
		})
	}
	// z-order B-tree.
	{
		store := storage.NewMemStore()
		zt, err := zbtree.New(store, space, zbtree.DefaultParams())
		if err != nil {
			return nil, err
		}
		for _, o := range objs {
			if err := zt.Insert(o.ID, o.MBR); err != nil {
				return nil, err
			}
		}
		if err := zt.FinalizeStats(); err != nil {
			return nil, err
		}
		st, err := zt.Stats()
		if err != nil {
			return nil, err
		}
		store.ResetStats()
		sams = append(sams, &samRunner{
			name:  "z-B-tree",
			pages: func() int { return st.TotalPages() },
			search: func(rd rtree.Reader, ctx buffer.AccessContext, w geom.Rect) error {
				return zt.WindowQuery(rd, ctx, w, func(page.Entry) bool { return true })
			},
			store: store,
		})
	}
	// Quadtree.
	{
		store := storage.NewMemStore()
		qt, err := quadtree.New(store, space, quadtree.DefaultParams())
		if err != nil {
			return nil, err
		}
		for _, o := range objs {
			if err := qt.Insert(o.ID, o.MBR); err != nil {
				return nil, err
			}
		}
		if err := qt.FinalizeStats(); err != nil {
			return nil, err
		}
		st, err := qt.Stats()
		if err != nil {
			return nil, err
		}
		store.ResetStats()
		sams = append(sams, &samRunner{
			name:  "quadtree",
			pages: func() int { return st.Pages },
			search: func(rd rtree.Reader, ctx buffer.AccessContext, w geom.Rect) error {
				return qt.Search(rd, ctx, w, func(page.Entry) bool { return true })
			},
			store: store,
		})
	}

	policies := []string{"LRU-2", "A", "ASB", "CLOCK"}
	qs := queryset.UniformWindows(space, 2500, 100, seed+31)

	rows := make([]string, len(sams))
	t := NewTable("crosssam", "policies across access methods, DB1, U-W-100, buffer 4.7%",
		"gain vs LRU [%]", rowsOf(sams, rows), policies)
	for _, sam := range sams {
		frames := int(LargestFrac * float64(sam.pages()))
		if frames < 2 {
			frames = 2
		}
		run := func(pol buffer.Policy) (uint64, error) {
			m, err := buffer.NewManager(sam.store, pol, frames)
			if err != nil {
				return 0, err
			}
			for _, q := range qs.Queries {
				if err := sam.search(m, buffer.AccessContext{QueryID: q.ID}, q.Rect); err != nil {
					return 0, err
				}
			}
			return m.Stats().DiskReads(), nil
		}
		lru, err := run(core.NewLRU())
		if err != nil {
			return nil, fmt.Errorf("experiment: crosssam %s: %w", sam.name, err)
		}
		for _, pn := range policies {
			f, err := core.FactoryByName(pn)
			if err != nil {
				return nil, err
			}
			io, err := run(f.New(frames))
			if err != nil {
				return nil, fmt.Errorf("experiment: crosssam %s/%s: %w", sam.name, pn, err)
			}
			if err := t.Set(sam.name, pn, (float64(lru)/float64(io)-1)*100); err != nil {
				return nil, err
			}
		}
	}
	return []*Table{t}, nil
}

// rowsOf extracts the SAM names.
func rowsOf(sams []*samRunner, rows []string) []string {
	for i, s := range sams {
		rows[i] = s.name
	}
	return rows
}

// FigUpdates renders the update-workload extension (future-work item 2)
// as a table of total I/O (reads + write-backs) relative to LRU.
func FigUpdates(opts Options, seed int64) ([]*Table, error) {
	objects := opts.Objects
	if objects <= 0 {
		objects = 24_000
	}
	policies := []string{"LRU", "LRU-2", "A", "ASB", "CLOCK", "PIN"}
	factories, err := factoriesByName(policies...)
	if err != nil {
		return nil, err
	}
	mix := DefaultUpdateMix()
	t := NewTable("updates", "update workload (60% queries / 25% inserts / 15% deletes), DB1, buffer 3%",
		"gain vs LRU [%] (reads+write-backs)", policies, []string{"gain", "reads", "write-backs"})
	results, err := RunUpdateWorkload(1, objects, 0.03, factories, mix, seed)
	if err != nil {
		return nil, err
	}
	var lruIO uint64
	for _, r := range results {
		if r.Policy == "LRU" {
			lruIO = r.IO
		}
	}
	for _, r := range results {
		gain := 0.0
		if r.IO > 0 {
			gain = (float64(lruIO)/float64(r.IO) - 1) * 100
		}
		if err := t.Set(r.Policy, "gain", gain); err != nil {
			return nil, err
		}
		if err := t.Set(r.Policy, "reads", float64(r.Reads)); err != nil {
			return nil, err
		}
		if err := t.Set(r.Policy, "write-backs", float64(r.WriteBacks)); err != nil {
			return nil, err
		}
	}
	return []*Table{t}, nil
}
