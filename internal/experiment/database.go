// Package experiment reproduces the paper's evaluation: it builds the two
// synthetic databases, derives the query sets of §3.1, runs them across
// replacement policies and buffer sizes, and renders every figure of the
// paper (Figs. 4–9, 12–14) as tables of relative performance gains.
package experiment

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/queryset"
	"repro/internal/rtree"
	"repro/internal/storage"
	"repro/internal/trace"
)

// Options configure database construction.
type Options struct {
	// Objects is the number of spatial objects (0 = the default scale for
	// the database, chosen so experiments run in seconds on a laptop; the
	// paper-scale values are 1,641,079 for DB1 and 572,694 for DB2).
	Objects int
	// Places is the number of place records for the S/INT/IND query sets
	// (0 = Objects/12).
	Places int
	// Seed drives all generation. The default 1 reproduces the shipped
	// EXPERIMENTS.md numbers.
	Seed int64
}

// DefaultObjects are the default object counts per database number.
var DefaultObjects = map[int]int{1: 160_000, 2: 96_000}

// PaperObjects are the object counts of the paper's databases.
var PaperObjects = map[int]int{1: 1_641_079, 2: 572_694}

// Database is a fully built experimental database: the generator, the
// objects, the R*-tree over a memory store, and the places file.
type Database struct {
	Number    int
	Name      string
	Generator *dataset.Generator
	Objects   []dataset.Object
	Places    []dataset.Place
	Tree      *rtree.Tree
	Store     *storage.MemStore
	Stats     rtree.TreeStats

	traceMu sync.Mutex
	traces  map[string]*trace.Trace
}

// Space returns the data space.
func (db *Database) Space() geom.Rect { return db.Generator.Space }

// Build constructs database 1 or 2 with the paper's tree parameters
// (fan-outs 51/42), finalizing page statistics for the spatial criteria.
func Build(number int, opts Options) (*Database, error) {
	var gen *dataset.Generator
	switch number {
	case 1:
		gen = dataset.USMainland(opts.Seed + 100)
	case 2:
		gen = dataset.WorldAtlas(opts.Seed + 200)
	default:
		return nil, fmt.Errorf("experiment: unknown database %d", number)
	}
	n := opts.Objects
	if n <= 0 {
		n = DefaultObjects[number]
	}
	nPlaces := opts.Places
	if nPlaces <= 0 {
		nPlaces = n / 40
		if nPlaces < 600 {
			nPlaces = 600
		}
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}

	objs := gen.Objects(seed+1, n)
	places := gen.Places(seed+2, nPlaces)

	store := storage.NewMemStore()
	tree, err := rtree.New(store, rtree.DefaultParams())
	if err != nil {
		return nil, err
	}
	for _, o := range objs {
		if err := tree.Insert(o.ID, o.MBR); err != nil {
			return nil, fmt.Errorf("experiment: build db%d: %w", number, err)
		}
	}
	if err := tree.FinalizeStats(); err != nil {
		return nil, err
	}
	st, err := tree.Stats()
	if err != nil {
		return nil, err
	}
	store.ResetStats()
	return &Database{
		traces:    make(map[string]*trace.Trace),
		Number:    number,
		Name:      fmt.Sprintf("DB%d", number),
		Generator: gen,
		Objects:   objs,
		Places:    places,
		Tree:      tree,
		Store:     store,
		Stats:     st,
	}, nil
}

// dbCache memoizes default-scale databases within one process (figures
// and benchmarks share them).
var dbCache sync.Map // key string -> *Database or error

// Get returns the memoized default-scale database, building it on first
// use.
func Get(number int, opts Options) (*Database, error) {
	key := fmt.Sprintf("%d/%d/%d/%d", number, opts.Objects, opts.Places, opts.Seed)
	if v, ok := dbCache.Load(key); ok {
		if db, ok := v.(*Database); ok {
			return db, nil
		}
		return nil, v.(error)
	}
	db, err := Build(number, opts)
	if err != nil {
		dbCache.Store(key, err)
		return nil, err
	}
	dbCache.Store(key, db)
	return db, nil
}

// BufferFracs are the paper's relative buffer sizes (0.3% to 4.7% of the
// database's page count).
var BufferFracs = []float64{0.003, 0.006, 0.012, 0.024, 0.047}

// LargestFrac is the biggest buffer used, which calibrates query-set
// sizes.
const LargestFrac = 0.047

// Frames converts a relative buffer size to frames for this database
// (at least 2 so every policy, including ASB, is constructible).
func (db *Database) Frames(frac float64) int {
	f := int(frac * float64(db.Stats.TotalPages()))
	if f < 2 {
		f = 2
	}
	return f
}

// QuerySet materializes the named query set. Names follow the paper: U-P,
// U-W-33, U-W-100, U-W-333, U-W-1000, ID-P, ID-W, S-P, S-W-ex, INT-P,
// INT-W-ex, IND-P, IND-W-ex. n is the query count; n ≤ 0 picks the
// calibrated default (see QueryCount).
func (db *Database) QuerySet(name string, n int, seed int64) (queryset.Set, error) {
	if n <= 0 {
		var err error
		n, err = db.QueryCount(name, seed)
		if err != nil {
			return queryset.Set{}, err
		}
	}
	return db.rawQuerySet(name, n, seed)
}

// rawQuerySet builds a query set of exactly n queries.
func (db *Database) rawQuerySet(name string, n int, seed int64) (queryset.Set, error) {
	space := db.Space()
	switch {
	case name == "U-P":
		return queryset.Uniform(space, n, seed+10), nil
	case name == "ID-P":
		return queryset.Identical(db.Objects, n, seed+11), nil
	case name == "ID-W":
		return queryset.IdenticalWindows(db.Objects, n, seed+12), nil
	case name == "S-P":
		return queryset.Similar(db.Places, n, seed+13), nil
	case name == "INT-P":
		return queryset.Intensified(db.Places, n, seed+14), nil
	case name == "IND-P":
		return queryset.Independent(db.Places, space, n, seed+15), nil
	}
	var ex int
	switch {
	case strings.HasPrefix(name, "U-W-"):
		if _, err := fmt.Sscanf(name, "U-W-%d", &ex); err == nil {
			return queryset.UniformWindows(space, n, ex, seed+16), nil
		}
	case strings.HasPrefix(name, "S-W-"):
		if _, err := fmt.Sscanf(name, "S-W-%d", &ex); err == nil {
			return queryset.SimilarWindows(db.Places, space, n, ex, seed+17), nil
		}
	case strings.HasPrefix(name, "INT-W-"):
		if _, err := fmt.Sscanf(name, "INT-W-%d", &ex); err == nil {
			return queryset.IntensifiedWindows(db.Places, space, n, ex, seed+18), nil
		}
	case strings.HasPrefix(name, "IND-W-"):
		if _, err := fmt.Sscanf(name, "IND-W-%d", &ex); err == nil {
			return queryset.IndependentWindows(db.Places, space, n, ex, seed+19), nil
		}
	}
	return queryset.Set{}, fmt.Errorf("experiment: unknown query set %q", name)
}

// QueryCount calibrates the number of queries for a set following the
// paper's rule: enough queries that the physical accesses are roughly 10
// to 20 times the largest buffer. It probes with a small sample to
// estimate page references per query, then targets ≈30× the largest
// buffer in references (references upper-bound accesses; for small
// buffers the two converge).
func (db *Database) QueryCount(name string, seed int64) (int, error) {
	const probeQueries = 48
	probe, err := db.rawQuerySet(name, probeQueries, seed)
	if err != nil {
		return 0, err
	}
	refs, err := countRefs(db.Tree, probe)
	if err != nil {
		return 0, err
	}
	perQuery := float64(refs) / probeQueries
	if perQuery < 1 {
		perQuery = 1
	}
	target := 30 * LargestFrac * float64(db.Stats.TotalPages())
	n := int(target / perQuery)
	if n < 300 {
		n = 300
	}
	if n > 30_000 {
		n = 30_000
	}
	return n, nil
}

// Trace returns the (cached) page-reference trace of the named query set
// with its calibrated size. Traces are policy-independent, so one
// recording serves every replay.
func (db *Database) Trace(name string, seed int64) (*trace.Trace, error) {
	key := fmt.Sprintf("%s/%d", name, seed)
	db.traceMu.Lock()
	defer db.traceMu.Unlock()
	if tr, ok := db.traces[key]; ok {
		return tr, nil
	}
	qs, err := db.QuerySet(name, 0, seed)
	if err != nil {
		return nil, err
	}
	tr, err := trace.Record(db.Tree, qs)
	if err != nil {
		return nil, err
	}
	db.traces[key] = tr
	return tr, nil
}
