package experiment

import (
	"strings"
	"testing"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// tinyOpts builds fast test databases (seconds, not minutes).
var tinyOpts = Options{Objects: 6000, Places: 400, Seed: 1}

func tinyDB(t *testing.T, n int) *Database {
	t.Helper()
	db, err := Get(n, tinyOpts)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestBuildDatabases(t *testing.T) {
	for _, n := range []int{1, 2} {
		db := tinyDB(t, n)
		if db.Stats.NumObjects != tinyOpts.Objects {
			t.Errorf("DB%d: %d objects", n, db.Stats.NumObjects)
		}
		if db.Stats.Height < 2 {
			t.Errorf("DB%d: height %d", n, db.Stats.Height)
		}
		// Paper fan-outs give a directory share of roughly 2–4%.
		if f := db.Stats.DirFraction(); f < 0.005 || f > 0.08 {
			t.Errorf("DB%d: directory fraction %.3f", n, f)
		}
		if err := db.Tree.Validate(); err != nil {
			t.Errorf("DB%d: %v", n, err)
		}
		if len(db.Places) != 600 { // floor of the places calibration
			t.Logf("DB%d: %d places", n, len(db.Places))
		}
	}
	if _, err := Build(3, tinyOpts); err == nil {
		t.Error("unknown database number should fail")
	}
}

func TestGetMemoizes(t *testing.T) {
	a := tinyDB(t, 1)
	b := tinyDB(t, 1)
	if a != b {
		t.Error("Get should memoize database builds")
	}
}

func TestFrames(t *testing.T) {
	db := tinyDB(t, 1)
	if f := db.Frames(0.047); f != int(0.047*float64(db.Stats.TotalPages())) {
		t.Errorf("Frames(4.7%%) = %d", f)
	}
	if f := db.Frames(0.0000001); f != 2 {
		t.Errorf("tiny fraction should clamp to 2, got %d", f)
	}
}

func TestQuerySetNames(t *testing.T) {
	db := tinyDB(t, 1)
	names := []string{
		"U-P", "U-W-33", "U-W-100", "U-W-333", "U-W-1000",
		"ID-P", "ID-W", "S-P", "S-W-33", "INT-P", "INT-W-100",
		"IND-P", "IND-W-1000",
	}
	for _, name := range names {
		qs, err := db.QuerySet(name, 50, 1)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if qs.Name != name {
			t.Errorf("set name %q != requested %q", qs.Name, name)
		}
		if qs.Len() != 50 {
			t.Errorf("%s: %d queries", name, qs.Len())
		}
	}
	if _, err := db.QuerySet("NOPE", 10, 1); err == nil {
		t.Error("unknown set should fail")
	}
	if _, err := db.QuerySet("U-W-x", 10, 1); err == nil {
		t.Error("malformed set should fail")
	}
}

func TestQueryCountCalibration(t *testing.T) {
	db := tinyDB(t, 1)
	n, err := db.QueryCount("U-P", 1)
	if err != nil {
		t.Fatal(err)
	}
	if n < 300 || n > 30000 {
		t.Errorf("calibrated count %d out of range", n)
	}
	// Large windows need fewer queries than points for the same budget.
	nw, err := db.QueryCount("U-W-33", 1)
	if err != nil {
		t.Fatal(err)
	}
	if nw > n {
		t.Errorf("window count %d > point count %d", nw, n)
	}
}

func TestRunAndGains(t *testing.T) {
	db := tinyDB(t, 1)
	factories, err := factoriesByName("LRU", "A", "LRU-2")
	if err != nil {
		t.Fatal(err)
	}
	sw, err := Run(db, []string{"U-P", "INT-P"}, factories, []float64{0.01, 0.047}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, set := range []string{"U-P", "INT-P"} {
		if sw.Refs[set] == 0 {
			t.Errorf("%s: no refs", set)
		}
		for _, frac := range []float64{0.01, 0.047} {
			lru := sw.Accesses[Cell{Set: set, Policy: "LRU", Frac: frac}]
			if lru == 0 {
				t.Fatalf("%s: no LRU accesses", set)
			}
			if _, err := sw.Gain(set, "A", frac); err != nil {
				t.Errorf("Gain: %v", err)
			}
			rel, err := sw.Relative(set, "LRU-2", "A", frac)
			if err != nil {
				t.Errorf("Relative: %v", err)
			}
			if rel <= 0 {
				t.Errorf("relative accesses %.1f%% should be positive", rel)
			}
		}
	}
	// A beats LRU on uniform queries even on the tiny database (the
	// paper's most robust effect).
	g, err := sw.Gain("U-P", "A", 0.047)
	if err != nil {
		t.Fatal(err)
	}
	if g <= 0 {
		t.Errorf("A gain on U-P = %.3f, expected positive", g)
	}
	// Errors for unknown cells.
	if _, err := sw.Gain("U-P", "A", 0.5); err == nil {
		t.Error("missing frac should fail")
	}
	if _, err := sw.Gain("U-P", "NOPE", 0.01); err == nil {
		t.Error("missing policy should fail")
	}
	if _, err := sw.Relative("U-P", "A", "NOPE", 0.01); err == nil {
		t.Error("missing base should fail")
	}
}

func TestTraceCache(t *testing.T) {
	db := tinyDB(t, 1)
	a, err := db.Trace("U-P", 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := db.Trace("U-P", 1)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("trace not cached")
	}
	c, err := db.Trace("U-P", 2)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different seeds must not share a cached trace")
	}
}

func TestRunAdaptation(t *testing.T) {
	db := tinyDB(t, 1)
	at, err := RunAdaptation(db, 0.047, 1)
	if err != nil {
		t.Fatal(err)
	}
	if at.Initial < 1 || at.MainCap < at.Initial {
		t.Errorf("initial %d / mainCap %d", at.Initial, at.MainCap)
	}
	if at.PhaseEnds[0] <= 0 || at.PhaseEnds[1] <= at.PhaseEnds[0] || at.PhaseEnds[2] <= at.PhaseEnds[1] {
		t.Errorf("phase ends %v not increasing", at.PhaseEnds)
	}
	for i, s := range at.Sizes {
		if s < 1 || s > at.MainCap {
			t.Fatalf("size %d out of range at event %d", s, i)
		}
	}
	for p := 0; p < 3; p++ {
		avg := at.PhaseAverage(p)
		if avg < 1 || avg > float64(at.MainCap) {
			t.Errorf("phase %d average %.1f out of range", p, avg)
		}
	}
}

func TestHistMemory(t *testing.T) {
	db := tinyDB(t, 1)
	records, frames, err := HistMemory(db, "U-P", 0.047, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The LRU-K drawback: retained histories exceed the buffer size.
	if records <= frames {
		t.Errorf("hist records %d ≤ frames %d; expected growth beyond buffer", records, frames)
	}
}

func TestTableRenderAndCSV(t *testing.T) {
	tab := NewTable("t1", "demo", "gain [%]", []string{"r1", "r2"}, []string{"c1", "c2"})
	if err := tab.Set("r1", "c2", 12.5); err != nil {
		t.Fatal(err)
	}
	if err := tab.Set("zz", "c1", 1); err == nil {
		t.Error("unknown row should fail")
	}
	v, err := tab.Get("r1", "c2")
	if err != nil || v != 12.5 {
		t.Errorf("Get = %v, %v", v, err)
	}
	if _, err := tab.Get("r1", "zz"); err == nil {
		t.Error("unknown col should fail")
	}
	text := tab.Render()
	if !strings.Contains(text, "t1") || !strings.Contains(text, "+12.5") {
		t.Errorf("render missing content:\n%s", text)
	}
	csv := tab.CSV()
	if !strings.Contains(csv, "row,c1,c2") || !strings.Contains(csv, "r1,0.0000,12.5000") {
		t.Errorf("csv malformed:\n%s", csv)
	}
}

func TestFigureRegistry(t *testing.T) {
	figs := Figures()
	want := []string{"4", "5", "6", "7", "8", "9", "12", "13", "14", "lrut", "crosssam", "updates"}
	for _, id := range want {
		if figs[id] == nil {
			t.Errorf("figure %q missing", id)
		}
	}
	ids := FigureIDs()
	if len(ids) != len(figs) {
		t.Errorf("FigureIDs returned %d of %d", len(ids), len(figs))
	}
	// Numeric order first, names after.
	if ids[0] != "4" || ids[len(ids)-1] != "updates" {
		t.Errorf("order: %v", ids)
	}
}

// TestFiguresSmoke runs every figure end-to-end on the tiny databases.
// Values are not asserted (the tiny scale distorts magnitudes); structure
// is.
func TestFiguresSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("figure smoke test is slow")
	}
	for _, id := range FigureIDs() {
		fn := Figures()[id]
		tables, err := fn(tinyOpts, 1)
		if err != nil {
			t.Fatalf("figure %s: %v", id, err)
		}
		if len(tables) == 0 {
			t.Fatalf("figure %s produced no tables", id)
		}
		for _, tab := range tables {
			if tab.ID == "" || len(tab.Rows) == 0 || len(tab.Cols) == 0 {
				t.Errorf("figure %s: malformed table %+v", id, tab)
			}
			if len(tab.Cells) != len(tab.Rows) {
				t.Errorf("figure %s: cells/rows mismatch", id)
			}
			_ = tab.Render()
			_ = tab.CSV()
		}
	}
}

func TestFactoriesByNameError(t *testing.T) {
	if _, err := factoriesByName("LRU", "NOPE"); err == nil {
		t.Error("unknown factory should fail")
	}
	if _, err := core.FactoryByName("ASB"); err != nil {
		t.Errorf("ASB factory missing: %v", err)
	}
}

func TestRunUpdateWorkload(t *testing.T) {
	factories, err := factoriesByName("LRU", "A", "ASB")
	if err != nil {
		t.Fatal(err)
	}
	mix := UpdateMix{Ops: 600, QueryFrac: 0.6, InsertFrac: 0.25, WindowExt: 100}
	results, err := RunUpdateWorkload(1, 5000, 0.03, factories, mix, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	for _, r := range results {
		if r.Reads == 0 {
			t.Errorf("%s: no reads", r.Policy)
		}
		if r.WriteBacks == 0 {
			t.Errorf("%s: no write-backs despite updates", r.Policy)
		}
		if r.IO != r.Reads+r.WriteBacks {
			t.Errorf("%s: IO %d != %d + %d", r.Policy, r.IO, r.Reads, r.WriteBacks)
		}
	}
	if _, err := RunUpdateWorkload(9, 100, 0.03, factories, mix, 1); err == nil {
		t.Error("unknown database should fail")
	}
}

// TestBufferedMutationsKeepTreeValid routes inserts and deletes through a
// buffer (write path included) and validates the tree afterwards.
func TestBufferedMutationsKeepTreeValid(t *testing.T) {
	gen := dataset.USMainland(1)
	objs := gen.Objects(3, 3000)
	store := storage.NewMemStore()
	tree, err := rtree.New(store, rtree.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range objs[:2000] {
		if err := tree.Insert(o.ID, o.MBR); err != nil {
			t.Fatal(err)
		}
	}
	f, err := core.FactoryByName("ASB")
	if err != nil {
		t.Fatal(err)
	}
	m, err := buffer.NewManager(store, f.New(64), 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.UseBuffer(m, buffer.AccessContext{QueryID: 1}); err != nil {
		t.Fatal(err)
	}
	for i, o := range objs[2000:] {
		if err := tree.UseBufferContext(buffer.AccessContext{QueryID: uint64(i + 2)}); err != nil {
			t.Fatal(err)
		}
		if err := tree.Insert(o.ID, o.MBR); err != nil {
			t.Fatal(err)
		}
	}
	for _, o := range objs[:500] {
		found, err := tree.Delete(o.ID, o.MBR)
		if err != nil || !found {
			t.Fatalf("delete %d: %v %v", o.ID, found, err)
		}
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	tree.UnbufferedIO()
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if tree.NumObjects() != 2500 {
		t.Errorf("NumObjects = %d, want 2500", tree.NumObjects())
	}
	if m.Stats().Puts == 0 || m.Stats().WriteBacks == 0 {
		t.Errorf("expected write-path traffic: %+v", m.Stats())
	}
}

// TestRunDeterministicUnderParallelism: the parallel sweep must produce
// bit-identical results across runs (replays share only the immutable
// store and trace).
func TestRunDeterministicUnderParallelism(t *testing.T) {
	db := tinyDB(t, 1)
	factories, err := factoriesByName("LRU", "A", "ASB", "LRU-2", "CLOCK")
	if err != nil {
		t.Fatal(err)
	}
	sets := []string{"U-P", "INT-P", "S-W-33"}
	fracs := []float64{0.006, 0.047}
	a, err := Run(db, sets, factories, fracs, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(db, sets, factories, fracs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Accesses) != len(b.Accesses) {
		t.Fatalf("cell counts differ: %d vs %d", len(a.Accesses), len(b.Accesses))
	}
	for cell, av := range a.Accesses {
		if bv := b.Accesses[cell]; av != bv {
			t.Errorf("%+v: %d vs %d", cell, av, bv)
		}
	}
}
