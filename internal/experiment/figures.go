package experiment

import (
	"fmt"
	"sort"
)

// Query-set groups used by the paper's figures.
var (
	// UniformSets are U-P and the window sets from small to large windows.
	UniformSets = []string{"U-P", "U-W-1000", "U-W-333", "U-W-100", "U-W-33"}
	// IdenticalSimilarSets cover §3.5.2.
	IdenticalSimilarSets = []string{"ID-P", "ID-W", "S-P", "S-W-1000", "S-W-333", "S-W-100", "S-W-33"}
	// IndependentSets cover the flipped distribution of §3.5.3.
	IndependentSets = []string{"IND-P", "IND-W-1000", "IND-W-333", "IND-W-100", "IND-W-33"}
	// IntensifiedSets cover the √population-weighted distribution.
	IntensifiedSets = []string{"INT-P", "INT-W-1000", "INT-W-333", "INT-W-100", "INT-W-33"}
	// RepresentativeSets is the cross-family selection used where the
	// paper plots one bar group per distribution family.
	RepresentativeSets = []string{
		"U-P", "U-W-333", "U-W-33",
		"ID-P", "ID-W",
		"S-P", "S-W-33",
		"INT-P", "INT-W-33",
		"IND-P", "IND-W-33",
	}
)

// fracLabel formats a buffer fraction as in the paper ("0.3%").
func fracLabel(frac float64) string {
	return fmt.Sprintf("%.1f%%", frac*100)
}

// FigureFunc computes the tables reproducing one figure of the paper.
type FigureFunc func(opts Options, seed int64) ([]*Table, error)

// Figures maps figure identifiers ("4".."9", "12".."14", "lrut") to their
// reproduction functions.
func Figures() map[string]FigureFunc {
	return map[string]FigureFunc{
		"4":    Fig4,
		"5":    Fig5,
		"6":    Fig6,
		"7":    Fig7,
		"8":    Fig8,
		"9":    Fig9,
		"12":   Fig12,
		"13":   Fig13,
		"14":   Fig14,
		"lrut": FigLRUT,
		// Extensions beyond the paper:
		"crosssam": FigCrossSAM,
		"updates":  FigUpdates,
	}
}

// FigureIDs returns the figure identifiers in display order.
func FigureIDs() []string {
	ids := make([]string, 0)
	for id := range Figures() {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		// Numeric first, then names.
		a, b := ids[i], ids[j]
		an, aerr := atoiSafe(a)
		bn, berr := atoiSafe(b)
		switch {
		case aerr == nil && berr == nil:
			return an < bn
		case aerr == nil:
			return true
		case berr == nil:
			return false
		default:
			return a < b
		}
	})
	return ids
}

func atoiSafe(s string) (int, error) {
	var v int
	_, err := fmt.Sscanf(s, "%d", &v)
	return v, err
}

// gainTable runs a sweep and renders one gain-vs-LRU table per
// (db, frac) with rows = sets and cols = policies.
func gainTable(db *Database, id, title string, sets, policies []string, frac float64, seed int64) (*Table, error) {
	factories, err := factoriesByName(append([]string{"LRU"}, policies...)...)
	if err != nil {
		return nil, err
	}
	sw, err := Run(db, sets, factories, []float64{frac}, seed)
	if err != nil {
		return nil, err
	}
	t := NewTable(id, title, "gain vs LRU [%]", sets, policies)
	for _, set := range sets {
		for _, pol := range policies {
			g, err := sw.Gain(set, pol, frac)
			if err != nil {
				return nil, err
			}
			if err := t.Set(set, pol, g*100); err != nil {
				return nil, err
			}
		}
	}
	return t, nil
}

// Fig4 reproduces Figure 4: the gain of LRU-P over LRU for the uniform
// and intensified query sets on both databases, across all buffer sizes.
func Fig4(opts Options, seed int64) ([]*Table, error) {
	var tables []*Table
	groups := []struct {
		label string
		sets  []string
	}{
		{"uniform", UniformSets},
		{"intensified", IntensifiedSets},
	}
	factories, err := factoriesByName("LRU", "LRU-P")
	if err != nil {
		return nil, err
	}
	for _, dbn := range []int{1, 2} {
		db, err := Get(dbn, opts)
		if err != nil {
			return nil, err
		}
		for _, g := range groups {
			sw, err := Run(db, g.sets, factories, BufferFracs, seed)
			if err != nil {
				return nil, err
			}
			cols := make([]string, len(BufferFracs))
			for i, f := range BufferFracs {
				cols[i] = fracLabel(f)
			}
			t := NewTable(
				fmt.Sprintf("fig4-db%d-%s", dbn, g.label),
				fmt.Sprintf("LRU-P vs LRU, %s distribution, %s", g.label, db.Name),
				"gain vs LRU [%]", g.sets, cols)
			for _, set := range g.sets {
				for i, f := range BufferFracs {
					gain, err := sw.Gain(set, "LRU-P", f)
					if err != nil {
						return nil, err
					}
					if err := t.Set(set, cols[i], gain*100); err != nil {
						return nil, err
					}
				}
			}
			tables = append(tables, t)
		}
	}
	return tables, nil
}

// Fig5 reproduces Figure 5: LRU-K (K = 2, 3, 5) against LRU on the
// primary database across all distribution families.
func Fig5(opts Options, seed int64) ([]*Table, error) {
	db, err := Get(1, opts)
	if err != nil {
		return nil, err
	}
	policies := []string{"LRU-2", "LRU-3", "LRU-5"}
	var tables []*Table
	for _, frac := range []float64{0.006, 0.047} {
		t, err := gainTable(db,
			fmt.Sprintf("fig5-%s", fracLabel(frac)),
			fmt.Sprintf("LRU-K vs LRU, DB1, buffer %s", fracLabel(frac)),
			RepresentativeSets, policies, frac, seed)
		if err != nil {
			return nil, err
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig6 reproduces Figure 6: the five spatial strategies relative to A
// (accesses of A = 100%) on the primary database.
func Fig6(opts Options, seed int64) ([]*Table, error) {
	db, err := Get(1, opts)
	if err != nil {
		return nil, err
	}
	policies := []string{"A", "EA", "M", "EM", "EO"}
	factories, err := factoriesByName(policies...)
	if err != nil {
		return nil, err
	}
	var tables []*Table
	for _, frac := range []float64{0.003, 0.047} {
		sw, err := Run(db, RepresentativeSets, factories, []float64{frac}, seed)
		if err != nil {
			return nil, err
		}
		t := NewTable(
			fmt.Sprintf("fig6-%s", fracLabel(frac)),
			fmt.Sprintf("spatial strategies relative to A, DB1, buffer %s", fracLabel(frac)),
			"% of A accesses", RepresentativeSets, policies)
		for _, set := range RepresentativeSets {
			for _, pol := range policies {
				rel, err := sw.Relative(set, pol, "A", frac)
				if err != nil {
					return nil, err
				}
				if err := t.Set(set, pol, rel); err != nil {
					return nil, err
				}
			}
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// comparisonFigure renders the §3.5 comparison (LRU-P, A, LRU-2 vs LRU)
// for one group of query sets on both databases at 0.6% and 4.7%.
func comparisonFigure(figID string, sets []string, opts Options, seed int64) ([]*Table, error) {
	policies := []string{"LRU-P", "A", "LRU-2"}
	var tables []*Table
	for _, dbn := range []int{1, 2} {
		db, err := Get(dbn, opts)
		if err != nil {
			return nil, err
		}
		for _, frac := range []float64{0.006, 0.047} {
			t, err := gainTable(db,
				fmt.Sprintf("%s-db%d-%s", figID, dbn, fracLabel(frac)),
				fmt.Sprintf("LRU-P / A / LRU-2 vs LRU, %s, buffer %s", db.Name, fracLabel(frac)),
				sets, policies, frac, seed)
			if err != nil {
				return nil, err
			}
			tables = append(tables, t)
		}
	}
	return tables, nil
}

// Fig7 reproduces Figure 7: the uniform distribution comparison.
func Fig7(opts Options, seed int64) ([]*Table, error) {
	return comparisonFigure("fig7", UniformSets, opts, seed)
}

// Fig8 reproduces Figure 8: identical and similar distributions.
func Fig8(opts Options, seed int64) ([]*Table, error) {
	return comparisonFigure("fig8", IdenticalSimilarSets, opts, seed)
}

// Fig9 reproduces Figure 9: independent and intensified distributions.
func Fig9(opts Options, seed int64) ([]*Table, error) {
	return comparisonFigure("fig9", append(append([]string{}, IndependentSets...), IntensifiedSets...), opts, seed)
}

// Fig12 reproduces Figure 12: SLRU with static candidate sets of 50% and
// 25% against the pure spatial strategy A.
func Fig12(opts Options, seed int64) ([]*Table, error) {
	db, err := Get(1, opts)
	if err != nil {
		return nil, err
	}
	policies := []string{"A", "SLRU 50%", "SLRU 25%"}
	var tables []*Table
	for _, frac := range []float64{0.006, 0.047} {
		t, err := gainTable(db,
			fmt.Sprintf("fig12-%s", fracLabel(frac)),
			fmt.Sprintf("static candidate sets, DB1, buffer %s", fracLabel(frac)),
			RepresentativeSets, policies, frac, seed)
		if err != nil {
			return nil, err
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig13 reproduces Figure 13 — the headline comparison: A, SLRU 25%, ASB
// and LRU-2 against LRU on both databases.
func Fig13(opts Options, seed int64) ([]*Table, error) {
	policies := []string{"A", "SLRU 25%", "ASB", "LRU-2"}
	var tables []*Table
	for _, dbn := range []int{1, 2} {
		db, err := Get(dbn, opts)
		if err != nil {
			return nil, err
		}
		for _, frac := range []float64{0.006, 0.047} {
			t, err := gainTable(db,
				fmt.Sprintf("fig13-db%d-%s", dbn, fracLabel(frac)),
				fmt.Sprintf("A / SLRU / ASB / LRU-2 vs LRU, %s, buffer %s", db.Name, fracLabel(frac)),
				RepresentativeSets, policies, frac, seed)
			if err != nil {
				return nil, err
			}
			tables = append(tables, t)
		}
	}
	return tables, nil
}

// Fig14 reproduces Figure 14: the candidate-set size of the ASB over the
// concatenated INT-W-33 + U-W-33 + S-W-33 workload. The table reports the
// per-phase average candidate size; the full trajectory is available via
// RunAdaptation.
func Fig14(opts Options, seed int64) ([]*Table, error) {
	db, err := Get(1, opts)
	if err != nil {
		return nil, err
	}
	at, err := RunAdaptation(db, LargestFrac, seed)
	if err != nil {
		return nil, err
	}
	rows := []string{"initial", "phase 1 (INT-W-33)", "phase 2 (U-W-33)", "phase 3 (S-W-33)"}
	t := NewTable("fig14", "ASB candidate-set size over the mixed workload, DB1",
		"avg candidate size [frames]", rows, []string{"candidate size", "of main part [%]"})
	set := func(row string, v float64) {
		_ = t.Set(row, "candidate size", v)
		_ = t.Set(row, "of main part [%]", v/float64(at.MainCap)*100)
	}
	set("initial", float64(at.Initial))
	for p := 0; p < 3; p++ {
		set(rows[p+1], at.PhaseAverage(p))
	}
	return []*Table{t}, nil
}

// FigLRUT reproduces the §3.2 observation: LRU-P beats LRU-T for small
// buffers and matches it for large ones.
func FigLRUT(opts Options, seed int64) ([]*Table, error) {
	db, err := Get(1, opts)
	if err != nil {
		return nil, err
	}
	policies := []string{"LRU-T", "LRU-P"}
	var tables []*Table
	for _, frac := range []float64{0.003, 0.047} {
		t, err := gainTable(db,
			fmt.Sprintf("lrut-%s", fracLabel(frac)),
			fmt.Sprintf("LRU-T vs LRU-P, DB1, buffer %s", fracLabel(frac)),
			RepresentativeSets, policies, frac, seed)
		if err != nil {
			return nil, err
		}
		tables = append(tables, t)
	}
	return tables, nil
}
