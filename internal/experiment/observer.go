package experiment

import (
	"sync"

	"repro/internal/obs"
	"repro/internal/obs/tracing"
)

// The process-wide experiment observer: an optional sink that every
// replay started by this package additionally feeds. It exists so a
// live metrics service (internal/obs/live) can watch a benchmark run
// without threading a sink through every call site.
var (
	observerMu sync.RWMutex
	observer   obs.Sink
)

// SetObserver installs (or, with nil, removes) the process-wide
// observer. Replays run in parallel worker goroutines, so the sink must
// be concurrency-safe (obs.Counters, live.Service.Sink and
// live.AsyncSink are; obs.JSONLSink is not — wrap it in an AsyncSink).
// Takes effect for replays started after the call.
func SetObserver(s obs.Sink) {
	observerMu.Lock()
	observer = s
	observerMu.Unlock()
}

// currentObserver returns the installed observer, or nil.
func currentObserver() obs.Sink {
	observerMu.RLock()
	defer observerMu.RUnlock()
	return observer
}

// The process-wide experiment tracer, the span-level sibling of the
// observer: replays started while it is installed attach it to their
// buffer managers, so sampled references produce request-scoped span
// trees (victim selections, ASB adaptations, physical I/O).
var (
	tracerMu sync.RWMutex
	tracer   *tracing.Tracer
)

// SetTracer installs (or, with nil, removes) the process-wide tracer.
// A tracing.Tracer is safe for the parallel replay workers (sampling and
// publication are atomic; each worker's manager owns its own traces).
// Takes effect for replays started after the call.
func SetTracer(t *tracing.Tracer) {
	tracerMu.Lock()
	tracer = t
	tracerMu.Unlock()
}

// currentTracer returns the installed tracer, or nil.
func currentTracer() *tracing.Tracer {
	tracerMu.RLock()
	defer tracerMu.RUnlock()
	return tracer
}
