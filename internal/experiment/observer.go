package experiment

import (
	"sync"

	"repro/internal/obs"
)

// The process-wide experiment observer: an optional sink that every
// replay started by this package additionally feeds. It exists so a
// live metrics service (internal/obs/live) can watch a benchmark run
// without threading a sink through every call site.
var (
	observerMu sync.RWMutex
	observer   obs.Sink
)

// SetObserver installs (or, with nil, removes) the process-wide
// observer. Replays run in parallel worker goroutines, so the sink must
// be concurrency-safe (obs.Counters, live.Service.Sink and
// live.AsyncSink are; obs.JSONLSink is not — wrap it in an AsyncSink).
// Takes effect for replays started after the call.
func SetObserver(s obs.Sink) {
	observerMu.Lock()
	observer = s
	observerMu.Unlock()
}

// currentObserver returns the installed observer, or nil.
func currentObserver() obs.Sink {
	observerMu.RLock()
	defer observerMu.RUnlock()
	return observer
}
