package experiment

import (
	"testing"

	"repro/internal/obs"
)

// TestObserverSeesRunAndAdaptation checks that an installed process-wide
// observer receives the events of both the parallel sweep and the
// adaptation run, and that removing it restores unobserved replays.
func TestObserverSeesRunAndAdaptation(t *testing.T) {
	db := tinyDB(t, 1)
	factories, err := factoriesByName("LRU", "ASB")
	if err != nil {
		t.Fatal(err)
	}

	var c obs.Counters
	SetObserver(&c)
	defer SetObserver(nil)

	sw, err := Run(db, []string{"U-P"}, factories, []float64{0.047}, 1)
	if err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot()
	// Both replays feed the same observer: two policies over one trace.
	if want := uint64(2 * sw.Refs["U-P"]); snap.Requests != want {
		t.Errorf("observer saw %d requests, want %d", snap.Requests, want)
	}
	if snap.Evictions == 0 {
		t.Error("observer saw no evictions")
	}

	// RunAdaptation tees the observer with its trajectory recorder; the
	// recorder must keep working and the observer must see the Adapts.
	before := c.Snapshot().Adaptations
	at, err := RunAdaptation(db, LargestFrac, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(at.Sizes) == 0 {
		t.Fatal("adaptation trace empty")
	}
	if got := c.Snapshot().Adaptations - before; got != uint64(len(at.Sizes)) {
		t.Errorf("observer saw %d adaptations, recorder saw %d", got, len(at.Sizes))
	}

	SetObserver(nil)
	prev := c.Snapshot().Requests
	if _, err := Run(db, []string{"U-P"}, factories[:1], []float64{0.047}, 1); err != nil {
		t.Fatal(err)
	}
	if got := c.Snapshot().Requests; got != prev {
		t.Errorf("detached observer still saw events (%d -> %d)", prev, got)
	}
}
