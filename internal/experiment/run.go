package experiment

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/queryset"
	"repro/internal/rtree"
	"repro/internal/trace"
)

// countRefs counts the page references of a query set (used to calibrate
// query-set sizes).
func countRefs(t *rtree.Tree, qs queryset.Set) (int, error) {
	tr, err := trace.Record(t, qs)
	if err != nil {
		return 0, err
	}
	return tr.Len(), nil
}

// Cell identifies one measurement: a query set run under a policy with a
// relative buffer size.
type Cell struct {
	Set    string
	Policy string
	Frac   float64
}

// Sweep holds the disk-access counts of a policy × buffer-size ×
// query-set sweep over one database.
type Sweep struct {
	DB       *Database
	Accesses map[Cell]uint64
	Refs     map[string]int // references per query set (policy-independent)
}

// Run records one trace per query set and replays it through every
// (policy, buffer size) combination. Query sets are resolved by name with
// calibrated sizes; seed controls query generation. Replays are
// independent of each other (each gets its own buffer manager and policy
// instance over the shared, thread-safe page store), so they run in
// parallel across the available CPUs.
func Run(db *Database, setNames []string, factories []core.Factory, fracs []float64, seed int64) (*Sweep, error) {
	sw := &Sweep{
		DB:       db,
		Accesses: make(map[Cell]uint64),
		Refs:     make(map[string]int),
	}
	type job struct {
		tr     *trace.Trace
		cell   Cell
		frames int
		f      core.Factory
	}
	var jobs []job
	for _, name := range setNames {
		tr, err := db.Trace(name, seed)
		if err != nil {
			return nil, err
		}
		sw.Refs[name] = tr.Len()
		for _, frac := range fracs {
			frames := db.Frames(frac)
			for _, f := range factories {
				jobs = append(jobs, job{
					tr:     tr,
					cell:   Cell{Set: name, Policy: f.Name, Frac: frac},
					frames: frames,
					f:      f,
				})
			}
		}
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}
	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
		next     atomic.Int64
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				j := jobs[i]
				var stats buffer.Stats
				var err error
				o, tc := currentObserver(), currentTracer()
				if o != nil || tc != nil {
					stats, err = trace.ReplayTraced(j.tr, db.Store, j.f.New(j.frames), j.frames, o, tc)
				} else {
					stats, err = trace.Replay(j.tr, db.Store, j.f.New(j.frames), j.frames)
				}
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = fmt.Errorf("experiment: %s/%s/%.3f: %w",
						j.cell.Set, j.cell.Policy, j.cell.Frac, err)
				}
				sw.Accesses[j.cell] = stats.DiskReads()
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return sw, nil
}

// Gain returns the paper's relative performance gain of a policy over LRU
// for one cell: |accesses(LRU)| / |accesses(policy)| − 1. The sweep must
// include the "LRU" policy.
func (s *Sweep) Gain(set, policy string, frac float64) (float64, error) {
	lru, ok := s.Accesses[Cell{Set: set, Policy: "LRU", Frac: frac}]
	if !ok {
		return 0, fmt.Errorf("experiment: no LRU baseline for %s at %.3f", set, frac)
	}
	pol, ok := s.Accesses[Cell{Set: set, Policy: policy, Frac: frac}]
	if !ok {
		return 0, fmt.Errorf("experiment: no measurement for %s/%s at %.3f", set, policy, frac)
	}
	if pol == 0 {
		return 0, nil
	}
	return float64(lru)/float64(pol) - 1, nil
}

// Relative returns accesses(policy) / accesses(base) × 100% for one cell
// (the metric of Fig. 6, where base is the spatial strategy A).
func (s *Sweep) Relative(set, policy, base string, frac float64) (float64, error) {
	b, ok := s.Accesses[Cell{Set: set, Policy: base, Frac: frac}]
	if !ok {
		return 0, fmt.Errorf("experiment: no base %s for %s at %.3f", base, set, frac)
	}
	p, ok := s.Accesses[Cell{Set: set, Policy: policy, Frac: frac}]
	if !ok {
		return 0, fmt.Errorf("experiment: no measurement for %s/%s at %.3f", set, policy, frac)
	}
	if b == 0 {
		return 0, nil
	}
	return float64(p) / float64(b) * 100, nil
}

// factoriesByName resolves policy names to standard factories.
func factoriesByName(names ...string) ([]core.Factory, error) {
	out := make([]core.Factory, 0, len(names))
	for _, n := range names {
		f, err := core.FactoryByName(n)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// AdaptationTrace runs the Fig. 14 experiment: the concatenated mixed
// workload (INT-W-33, U-W-33, S-W-33) through an ASB buffer, recording the
// candidate-set size after every adaptation event, plus the boundaries
// between the three phases in reference counts.
type AdaptationTrace struct {
	// Sizes[i] is the candidate-set size after the i-th overflow hit.
	Sizes []int
	// RefAt[i] is the reference index at which the i-th adaptation
	// happened.
	RefAt []int
	// PhaseEnds are the reference indices where the INT, U and S phases
	// end.
	PhaseEnds [3]int
	// Initial is the starting candidate size; MainCap its upper bound.
	Initial, MainCap int
	// Frames is the buffer capacity used.
	Frames int
}

// PhaseAverage returns the average candidate size during phase p (0=INT,
// 1=U, 2=S).
func (a *AdaptationTrace) PhaseAverage(p int) float64 {
	start := 0
	if p > 0 {
		start = a.PhaseEnds[p-1]
	}
	end := a.PhaseEnds[p]
	sum, cnt := 0, 0
	for i, at := range a.RefAt {
		if at >= start && at < end {
			sum += a.Sizes[i]
			cnt++
		}
	}
	if cnt == 0 {
		return float64(a.Initial)
	}
	return float64(sum) / float64(cnt)
}

// RunAdaptation executes the mixed workload of Fig. 14.
func RunAdaptation(db *Database, frac float64, seed int64) (*AdaptationTrace, error) {
	names := []string{"INT-W-33", "U-W-33", "S-W-33"}
	var traces []*trace.Trace
	for _, n := range names {
		tr, err := db.Trace(n, seed)
		if err != nil {
			return nil, err
		}
		traces = append(traces, tr)
	}

	frames := db.Frames(frac)
	out := &AdaptationTrace{Frames: frames}
	pol := core.NewASB(frames, core.DefaultASBOptions())
	out.Initial = pol.CandidateSize()
	out.MainCap = pol.MainCapacity()

	m, err := buffer.NewManager(db.Store, pol, frames)
	if err != nil {
		return nil, err
	}
	if tc := currentTracer(); tc != nil {
		m.SetTracer(tc, 0)
	}
	// The rest of the run programs against the Pool interface — the
	// harness measures policies, not a concrete pool flavour.
	var pool buffer.Pool = m
	// The candidate-set trajectory is captured from the event stream: the
	// recorder counts Request events for the reference index and samples
	// the size at every Adapt event.
	rec := obs.NewTrajectoryRecorder()
	if o := currentObserver(); o != nil {
		pool.SetSink(obs.Tee(rec, o))
	} else {
		pool.SetSink(rec)
	}
	// One continuous run over the three phases (no clearing in between:
	// the point is to watch the buffer adapt to the changing profile).
	queryOffset := uint64(0)
	for pi, tr := range traces {
		maxQ := uint64(0)
		for _, ref := range tr.Refs {
			if _, err := pool.Get(ref.Page, buffer.AccessContext{QueryID: queryOffset + ref.Query}); err != nil {
				return nil, err
			}
			if ref.Query > maxQ {
				maxQ = ref.Query
			}
		}
		queryOffset += maxQ
		out.PhaseEnds[pi] = rec.Refs()
	}
	out.RefAt = rec.Ref
	out.Sizes = rec.Cand
	return out, nil
}

// HistMemory reports the LRU-K memory drawback for a query set: the
// number of retained history records after replaying it, versus the
// buffer capacity (paper §2.2 and §4.3: ASB needs no state for pages that
// left the buffer).
func HistMemory(db *Database, setName string, frac float64, k int, seed int64) (histRecords, frames int, err error) {
	tr, err := db.Trace(setName, seed)
	if err != nil {
		return 0, 0, err
	}
	frames = db.Frames(frac)
	pol := core.NewLRUK(k)
	if _, err := trace.Replay(tr, db.Store, pol, frames); err != nil {
		return 0, 0, err
	}
	return pol.HistRecords(), frames, nil
}
