package experiment

import (
	"testing"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/page"
	"repro/internal/trace"
)

// residentLister is the introspection surface every pool composition
// exposes for the equivalence checks.
type residentLister interface {
	ResidentIDs() []page.ID
}

// TestShardedReplayEquivalence replays a recorded reference string of a
// real query set through every composition that routes like a bare
// engine — locked, single-shard sharded, single-shard async — and
// through the bare engine itself: the layer stack must not change a
// single counter. This is the end-to-end version of the unit-level
// equivalence tests — same database build, same trace cache, same
// policies as the experiments (the replay is read-only, so the async
// equivalence is unconditional).
func TestShardedReplayEquivalence(t *testing.T) {
	db := tinyDB(t, 1)
	tr, err := db.Trace("U-P", 1)
	if err != nil {
		t.Fatal(err)
	}
	frames := db.Frames(0.01)

	for _, name := range []string{"LRU", "SLRU 50%", "ASB"} {
		f, err := core.FactoryByName(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			m, err := buffer.NewEngine(db.Store, f.New(frames), frames)
			if err != nil {
				t.Fatal(err)
			}
			want, err := trace.ReplayOn(tr, m)
			if err != nil {
				t.Fatal(err)
			}
			wantSet := make(map[page.ID]bool)
			for _, id := range m.ResidentIDs() {
				wantSet[id] = true
			}

			for _, spec := range []string{"locked", "sharded,shards=1", "async,shards=1"} {
				comp, err := buffer.ParseComposition(spec)
				if err != nil {
					t.Fatal(err)
				}
				pool, err := comp.Build(db.Store, f.New, frames)
				if err != nil {
					t.Fatal(err)
				}
				got, err := trace.ReplayOn(tr, pool)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Errorf("%s: stats diverged:\nbare engine %+v\ncomposition %+v", spec, want, got)
				}
				resident := pool.(residentLister).ResidentIDs()
				if len(resident) != len(wantSet) {
					t.Fatalf("%s: resident count %d, bare engine %d", spec, len(resident), len(wantSet))
				}
				for _, id := range resident {
					if !wantSet[id] {
						t.Errorf("%s: resident sets differ on page %d", spec, id)
					}
				}
				if c, ok := pool.(interface{ Close() error }); ok {
					if err := c.Close(); err != nil {
						t.Fatal(err)
					}
				}
			}
		})
	}
}

// TestShardedReplayPartitioned replays the same trace through
// multi-shard compositions: counters must stay internally consistent
// (every reference accounted once) even though the partitioned resident
// set can legitimately change the hit count relative to one big buffer,
// and the sharded and async layouts must agree with each other (same
// routing, read-only replay).
func TestShardedReplayPartitioned(t *testing.T) {
	db := tinyDB(t, 1)
	tr, err := db.Trace("U-P", 1)
	if err != nil {
		t.Fatal(err)
	}
	frames := db.Frames(0.01)
	f, err := core.FactoryByName("ASB")
	if err != nil {
		t.Fatal(err)
	}

	stats := make(map[string]buffer.Stats)
	for _, spec := range []string{"sharded,shards=4", "async,shards=4"} {
		comp, err := buffer.ParseComposition(spec)
		if err != nil {
			t.Fatal(err)
		}
		pool, err := comp.Build(db.Store, f.New, frames)
		if err != nil {
			t.Fatal(err)
		}
		st, err := trace.ReplayOn(tr, pool)
		if err != nil {
			t.Fatal(err)
		}
		if st.Requests != uint64(tr.Len()) {
			t.Errorf("%s: requests = %d, want %d", spec, st.Requests, tr.Len())
		}
		if st.Hits+st.Misses != st.Requests {
			t.Errorf("%s: stats inconsistent: %+v", spec, st)
		}
		sh := pool.(interface {
			Shards() int
			ShardStats(i int) buffer.Stats
		})
		var merged buffer.Stats
		for i := 0; i < sh.Shards(); i++ {
			merged.Add(sh.ShardStats(i))
		}
		if merged != st {
			t.Errorf("%s: per-shard merge %+v != Stats() %+v", spec, merged, st)
		}
		if pool.Len() > frames {
			t.Errorf("%s: capacity exceeded: %d > %d", spec, pool.Len(), frames)
		}
		if c, ok := pool.(interface{ Close() error }); ok {
			if err := c.Close(); err != nil {
				t.Fatal(err)
			}
		}
		stats[spec] = st
	}
	if stats["sharded,shards=4"] != stats["async,shards=4"] {
		t.Errorf("sharded vs async diverged on a read-only replay:\nsharded %+v\nasync   %+v",
			stats["sharded,shards=4"], stats["async,shards=4"])
	}
}
