package experiment

import (
	"testing"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/trace"
)

// TestShardedReplayEquivalence replays a recorded reference string of a
// real query set through a single-shard ShardedPool and through a bare
// Manager: the pool interface must not change a single counter. This is
// the end-to-end version of the unit-level equivalence tests — same
// database build, same trace cache, same policies as the experiments.
func TestShardedReplayEquivalence(t *testing.T) {
	db := tinyDB(t, 1)
	tr, err := db.Trace("U-P", 1)
	if err != nil {
		t.Fatal(err)
	}
	frames := db.Frames(0.01)

	for _, name := range []string{"LRU", "SLRU 50%", "ASB"} {
		f, err := core.FactoryByName(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			m, err := buffer.NewManager(db.Store, f.New(frames), frames)
			if err != nil {
				t.Fatal(err)
			}
			want, err := trace.ReplayOn(tr, m)
			if err != nil {
				t.Fatal(err)
			}

			sp, err := buffer.NewShardedPool(db.Store, f.New, frames, 1)
			if err != nil {
				t.Fatal(err)
			}
			got, err := trace.ReplayOn(tr, sp)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("stats diverged:\nmanager %+v\nsharded %+v", want, got)
			}

			wantSet := make(map[int64]bool)
			for _, id := range m.ResidentIDs() {
				wantSet[int64(id)] = true
			}
			resident := sp.ResidentIDs()
			if len(resident) != len(wantSet) {
				t.Fatalf("resident count: sharded %d, manager %d", len(resident), len(wantSet))
			}
			for _, id := range resident {
				if !wantSet[int64(id)] {
					t.Errorf("resident sets differ on page %d", id)
				}
			}
		})
	}
}

// TestShardedReplayPartitioned replays the same trace through a
// multi-shard pool: counters must stay internally consistent (every
// reference accounted once) even though the partitioned resident set can
// legitimately change the hit count relative to one big buffer.
func TestShardedReplayPartitioned(t *testing.T) {
	db := tinyDB(t, 1)
	tr, err := db.Trace("U-P", 1)
	if err != nil {
		t.Fatal(err)
	}
	frames := db.Frames(0.01)
	f, err := core.FactoryByName("ASB")
	if err != nil {
		t.Fatal(err)
	}
	sp, err := buffer.NewShardedPool(db.Store, f.New, frames, 4)
	if err != nil {
		t.Fatal(err)
	}
	st, err := trace.ReplayOn(tr, sp)
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != uint64(tr.Len()) {
		t.Errorf("requests = %d, want %d", st.Requests, tr.Len())
	}
	if st.Hits+st.Misses != st.Requests {
		t.Errorf("stats inconsistent: %+v", st)
	}
	var merged buffer.Stats
	for i := 0; i < sp.Shards(); i++ {
		merged.Add(sp.ShardStats(i))
	}
	if merged != st {
		t.Errorf("per-shard merge %+v != Stats() %+v", merged, st)
	}
	if sp.Len() > frames {
		t.Errorf("capacity exceeded: %d > %d", sp.Len(), frames)
	}
}
