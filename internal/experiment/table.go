package experiment

import (
	"fmt"
	"strings"
)

// Table is one rendered experiment result: rows of query sets (or phases)
// against columns of policies/buffer sizes, with numeric cells.
type Table struct {
	// ID is a stable identifier like "fig7-db1-4.7%".
	ID string
	// Title describes the table for humans.
	Title string
	// Unit names the cell metric ("gain vs LRU [%]", "% of A accesses").
	Unit string
	Rows []string
	Cols []string
	// Cells[r][c] is the value for Rows[r] × Cols[c].
	Cells [][]float64
}

// NewTable allocates a table with zeroed cells.
func NewTable(id, title, unit string, rows, cols []string) *Table {
	cells := make([][]float64, len(rows))
	for i := range cells {
		cells[i] = make([]float64, len(cols))
	}
	return &Table{ID: id, Title: title, Unit: unit, Rows: rows, Cols: cols, Cells: cells}
}

// Set stores a value by row and column label.
func (t *Table) Set(row, col string, v float64) error {
	ri, ci := -1, -1
	for i, r := range t.Rows {
		if r == row {
			ri = i
			break
		}
	}
	for i, c := range t.Cols {
		if c == col {
			ci = i
			break
		}
	}
	if ri < 0 || ci < 0 {
		return fmt.Errorf("experiment: table %s has no cell (%q, %q)", t.ID, row, col)
	}
	t.Cells[ri][ci] = v
	return nil
}

// Get returns a cell by labels.
func (t *Table) Get(row, col string) (float64, error) {
	for ri, r := range t.Rows {
		if r != row {
			continue
		}
		for ci, c := range t.Cols {
			if c == col {
				return t.Cells[ri][ci], nil
			}
		}
	}
	return 0, fmt.Errorf("experiment: table %s has no cell (%q, %q)", t.ID, row, col)
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s [%s]\n", t.ID, t.Title, t.Unit)
	widths := make([]int, len(t.Cols)+1)
	widths[0] = len("query set")
	for _, r := range t.Rows {
		if len(r) > widths[0] {
			widths[0] = len(r)
		}
	}
	cells := make([][]string, len(t.Rows))
	for ri := range t.Rows {
		cells[ri] = make([]string, len(t.Cols))
		for ci := range t.Cols {
			cells[ri][ci] = fmt.Sprintf("%+.1f", t.Cells[ri][ci])
		}
	}
	for ci, c := range t.Cols {
		widths[ci+1] = len(c)
		for ri := range t.Rows {
			if len(cells[ri][ci]) > widths[ci+1] {
				widths[ci+1] = len(cells[ri][ci])
			}
		}
	}
	fmt.Fprintf(&b, "%-*s", widths[0], "query set")
	for ci, c := range t.Cols {
		fmt.Fprintf(&b, "  %*s", widths[ci+1], c)
	}
	b.WriteByte('\n')
	for ri, r := range t.Rows {
		fmt.Fprintf(&b, "%-*s", widths[0], r)
		for ci := range t.Cols {
			fmt.Fprintf(&b, "  %*s", widths[ci+1], cells[ri][ci])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV formats the table as comma-separated values with a header row.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString("row")
	for _, c := range t.Cols {
		b.WriteByte(',')
		b.WriteString(c)
	}
	b.WriteByte('\n')
	for ri, r := range t.Rows {
		b.WriteString(r)
		for ci := range t.Cols {
			fmt.Fprintf(&b, ",%.4f", t.Cells[ri][ci])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
