package experiment

import (
	"fmt"
	"math/rand"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/page"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// UpdateMix describes an update workload: a deterministic interleaving of
// window queries, insertions of new objects and deletions of existing
// ones, all running through one buffer (the paper's future-work item 2:
// "to study the influence of the strategies on updates").
type UpdateMix struct {
	// Ops is the total number of operations.
	Ops int
	// QueryFrac, InsertFrac and the remainder (deletes) partition Ops.
	QueryFrac  float64
	InsertFrac float64
	// WindowExt is the reciprocal window extension for queries.
	WindowExt int
}

// DefaultUpdateMix returns a read-mostly OLTP-ish mix.
func DefaultUpdateMix() UpdateMix {
	return UpdateMix{Ops: 4000, QueryFrac: 0.6, InsertFrac: 0.25, WindowExt: 100}
}

// UpdateResult is the cost of one policy under the update workload.
type UpdateResult struct {
	Policy     string
	Reads      uint64 // physical reads (buffer misses)
	WriteBacks uint64 // dirty pages written back
	IO         uint64 // Reads + WriteBacks
}

// RunUpdateWorkload executes the mix against database dbNum rebuilt
// freshly per policy (mutations change the tree, so policies cannot share
// one instance), with all tree I/O — queries *and* updates — routed
// through a buffer of the given relative size. Results come back in
// factory order.
func RunUpdateWorkload(dbNum, objects int, frac float64, factories []core.Factory, mix UpdateMix, seed int64) ([]UpdateResult, error) {
	if objects <= 0 {
		objects = 24_000
	}
	var gen *dataset.Generator
	switch dbNum {
	case 1:
		gen = dataset.USMainland(seed + 100)
	case 2:
		gen = dataset.WorldAtlas(seed + 200)
	default:
		return nil, fmt.Errorf("experiment: unknown database %d", dbNum)
	}

	var out []UpdateResult
	for _, f := range factories {
		res, err := runUpdateOnce(gen, objects, frac, f, mix, seed)
		if err != nil {
			return nil, fmt.Errorf("experiment: update workload with %s: %w", f.Name, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// runUpdateOnce builds a fresh tree and runs the mix under one policy.
func runUpdateOnce(gen *dataset.Generator, objects int, frac float64, f core.Factory, mix UpdateMix, seed int64) (UpdateResult, error) {
	objs := gen.Objects(seed+1, objects)
	store := storage.NewMemStore()
	tree, err := rtree.New(store, rtree.DefaultParams())
	if err != nil {
		return UpdateResult{}, err
	}
	for _, o := range objs {
		if err := tree.Insert(o.ID, o.MBR); err != nil {
			return UpdateResult{}, err
		}
	}
	st, err := tree.Stats()
	if err != nil {
		return UpdateResult{}, err
	}
	store.ResetStats()

	frames := int(frac * float64(st.TotalPages()))
	if frames < 2 {
		frames = 2
	}
	m, err := buffer.NewManager(store, f.New(frames), frames)
	if err != nil {
		return UpdateResult{}, err
	}
	if err := tree.UseBuffer(m, buffer.AccessContext{QueryID: 1}); err != nil {
		return UpdateResult{}, err
	}
	defer tree.UnbufferedIO()

	// Deterministic operation stream: the same seed yields the same ops
	// for every policy.
	rng := rand.New(rand.NewSource(seed + 7))
	live := append([]dataset.Object(nil), objs...)
	nextID := uint64(objects + 1)
	space := gen.Space

	for op := 1; op <= mix.Ops; op++ {
		ctx := buffer.AccessContext{QueryID: uint64(op)}
		if err := tree.UseBufferContext(ctx); err != nil {
			return UpdateResult{}, err
		}
		r := rng.Float64()
		switch {
		case r < mix.QueryFrac:
			c := geom.Point{
				X: space.MinX + rng.Float64()*space.Width(),
				Y: space.MinY + rng.Float64()*space.Height(),
			}
			w := geom.RectFromCenter(c,
				space.Width()/float64(mix.WindowExt),
				space.Height()/float64(mix.WindowExt)).Intersection(space)
			if w.IsEmpty() {
				continue
			}
			err := tree.Search(m, ctx, w, func(page.Entry) bool { return true })
			if err != nil {
				return UpdateResult{}, err
			}
		case r < mix.QueryFrac+mix.InsertFrac:
			o := gen.Objects(seed+int64(op)*13, 1)[0]
			o.ID = nextID
			nextID++
			if err := tree.Insert(o.ID, o.MBR); err != nil {
				return UpdateResult{}, err
			}
			live = append(live, o)
		default:
			if len(live) == 0 {
				continue
			}
			i := rng.Intn(len(live))
			o := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			found, err := tree.Delete(o.ID, o.MBR)
			if err != nil {
				return UpdateResult{}, err
			}
			if !found {
				return UpdateResult{}, fmt.Errorf("live object %d not found", o.ID)
			}
		}
	}
	if err := m.Flush(); err != nil {
		return UpdateResult{}, err
	}
	bs := m.Stats()
	return UpdateResult{
		Policy:     f.Name,
		Reads:      bs.DiskReads(),
		WriteBacks: bs.WriteBacks,
		IO:         bs.DiskIO(),
	}, nil
}
