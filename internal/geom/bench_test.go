package geom

import (
	"math/rand"
	"testing"
)

func benchRects(n int) []Rect {
	rng := rand.New(rand.NewSource(1))
	rs := make([]Rect, n)
	for i := range rs {
		rs[i] = randRect(rng)
	}
	return rs
}

func BenchmarkUnion(b *testing.B) {
	rs := benchRects(1024)
	b.ResetTimer()
	acc := EmptyRect()
	for i := 0; i < b.N; i++ {
		acc = acc.Union(rs[i%len(rs)])
	}
	_ = acc
}

func BenchmarkOverlapArea(b *testing.B) {
	rs := benchRects(1024)
	b.ResetTimer()
	var sum float64
	for i := 0; i < b.N; i++ {
		sum += rs[i%len(rs)].OverlapArea(rs[(i+1)%len(rs)])
	}
	_ = sum
}

func BenchmarkEnlargement(b *testing.B) {
	rs := benchRects(1024)
	b.ResetTimer()
	var sum float64
	for i := 0; i < b.N; i++ {
		sum += rs[i%len(rs)].Enlargement(rs[(i+7)%len(rs)])
	}
	_ = sum
}

func BenchmarkMinDist(b *testing.B) {
	rs := benchRects(1024)
	p := Point{X: 3, Y: -4}
	b.ResetTimer()
	var sum float64
	for i := 0; i < b.N; i++ {
		sum += rs[i%len(rs)].MinDist(p)
	}
	_ = sum
}
