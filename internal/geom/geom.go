// Package geom provides the two-dimensional geometric primitives used
// throughout the spatial database: points and axis-aligned rectangles
// (minimum bounding rectangles, MBRs).
//
// The spatial page-replacement strategies of Brinkhoff (EDBT 2002) rank
// buffer pages by geometric properties of their content — area, margin
// (perimeter) and pairwise overlap of entry MBRs — all of which are defined
// here. The same primitives back the R*-tree substrate.
//
// Rectangles are closed intervals [MinX,MaxX] × [MinY,MaxY]. A rectangle
// with MinX > MaxX or MinY > MaxY is "empty"; the canonical empty rectangle
// is returned by EmptyRect and is the identity element of Union.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the two-dimensional data space.
type Point struct {
	X, Y float64
}

// Rect is an axis-aligned rectangle (an MBR). The zero value is the
// degenerate rectangle covering only the origin; use EmptyRect for the
// identity element of Union.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// EmptyRect returns the canonical empty rectangle: the identity of Union
// and a rectangle that intersects nothing, contains nothing and has zero
// area and margin.
func EmptyRect() Rect {
	return Rect{
		MinX: math.Inf(1), MinY: math.Inf(1),
		MaxX: math.Inf(-1), MaxY: math.Inf(-1),
	}
}

// NewRect returns the rectangle spanning the two corner points in either
// order.
func NewRect(x1, y1, x2, y2 float64) Rect {
	return Rect{
		MinX: math.Min(x1, x2), MinY: math.Min(y1, y2),
		MaxX: math.Max(x1, x2), MaxY: math.Max(y1, y2),
	}
}

// RectFromPoint returns the degenerate rectangle covering exactly p.
func RectFromPoint(p Point) Rect {
	return Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y}
}

// RectFromCenter returns the rectangle of the given width and height
// centred on c. Negative extents are treated as zero.
func RectFromCenter(c Point, width, height float64) Rect {
	w := math.Max(width, 0) / 2
	h := math.Max(height, 0) / 2
	return Rect{MinX: c.X - w, MinY: c.Y - h, MaxX: c.X + w, MaxY: c.Y + h}
}

// IsEmpty reports whether r is empty (covers no point).
func (r Rect) IsEmpty() bool {
	return r.MinX > r.MaxX || r.MinY > r.MaxY
}

// Width returns the extent of r along the x-axis, or 0 if r is empty.
func (r Rect) Width() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.MaxX - r.MinX
}

// Height returns the extent of r along the y-axis, or 0 if r is empty.
func (r Rect) Height() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.MaxY - r.MinY
}

// Area returns the area of r. Degenerate rectangles (points, segments)
// have area 0, as do empty rectangles.
func (r Rect) Area() float64 {
	return r.Width() * r.Height()
}

// Margin returns the perimeter of r (twice the sum of its extents), the
// criterion of the M and EM replacement strategies and of the R*-tree
// split algorithm. Empty rectangles have margin 0.
func (r Rect) Margin() float64 {
	return 2 * (r.Width() + r.Height())
}

// Center returns the midpoint of r. The centre of an empty rectangle is
// the origin.
func (r Rect) Center() Point {
	if r.IsEmpty() {
		return Point{}
	}
	return Point{X: (r.MinX + r.MaxX) / 2, Y: (r.MinY + r.MaxY) / 2}
}

// Union returns the smallest rectangle covering both r and s. EmptyRect is
// the identity element.
func (r Rect) Union(s Rect) Rect {
	if r.IsEmpty() {
		return s
	}
	if s.IsEmpty() {
		return r
	}
	return Rect{
		MinX: math.Min(r.MinX, s.MinX), MinY: math.Min(r.MinY, s.MinY),
		MaxX: math.Max(r.MaxX, s.MaxX), MaxY: math.Max(r.MaxY, s.MaxY),
	}
}

// UnionPoint returns the smallest rectangle covering r and p.
func (r Rect) UnionPoint(p Point) Rect {
	return r.Union(RectFromPoint(p))
}

// Intersects reports whether r and s share at least one point. Touching
// boundaries count as intersecting (rectangles are closed).
func (r Rect) Intersects(s Rect) bool {
	if r.IsEmpty() || s.IsEmpty() {
		return false
	}
	return r.MinX <= s.MaxX && s.MinX <= r.MaxX &&
		r.MinY <= s.MaxY && s.MinY <= r.MaxY
}

// Intersection returns the common part of r and s, or an empty rectangle
// if they do not intersect.
func (r Rect) Intersection(s Rect) Rect {
	if !r.Intersects(s) {
		return EmptyRect()
	}
	return Rect{
		MinX: math.Max(r.MinX, s.MinX), MinY: math.Max(r.MinY, s.MinY),
		MaxX: math.Min(r.MaxX, s.MaxX), MaxY: math.Min(r.MaxY, s.MaxY),
	}
}

// OverlapArea returns the area of the intersection of r and s; 0 if they
// do not overlap (or touch only on a boundary).
func (r Rect) OverlapArea(s Rect) float64 {
	return r.Intersection(s).Area()
}

// Contains reports whether s lies completely inside r. Every non-empty
// rectangle contains the empty rectangle.
func (r Rect) Contains(s Rect) bool {
	if r.IsEmpty() {
		return false
	}
	if s.IsEmpty() {
		return true
	}
	return r.MinX <= s.MinX && s.MaxX <= r.MaxX &&
		r.MinY <= s.MinY && s.MaxY <= r.MaxY
}

// ContainsPoint reports whether p lies inside or on the boundary of r.
func (r Rect) ContainsPoint(p Point) bool {
	if r.IsEmpty() {
		return false
	}
	return r.MinX <= p.X && p.X <= r.MaxX && r.MinY <= p.Y && p.Y <= r.MaxY
}

// Enlargement returns the growth in area needed for r to also cover s:
// area(r ∪ s) − area(r). It is the ChooseSubtree criterion of the R-tree
// family.
func (r Rect) Enlargement(s Rect) float64 {
	return r.Union(s).Area() - r.Area()
}

// MinDist returns the minimum Euclidean distance from p to any point of r,
// 0 if p lies inside r. It is the standard lower bound used by best-first
// nearest-neighbour search on R-trees.
func (r Rect) MinDist(p Point) float64 {
	if r.IsEmpty() {
		return math.Inf(1)
	}
	dx := math.Max(0, math.Max(r.MinX-p.X, p.X-r.MaxX))
	dy := math.Max(0, math.Max(r.MinY-p.Y, p.Y-r.MaxY))
	return math.Hypot(dx, dy)
}

// Equal reports whether r and s describe the same point set. All empty
// rectangles are equal to each other.
func (r Rect) Equal(s Rect) bool {
	if r.IsEmpty() || s.IsEmpty() {
		return r.IsEmpty() && s.IsEmpty()
	}
	return r == s
}

// Valid reports whether all coordinates of r are finite and ordered.
// Empty rectangles are not valid.
func (r Rect) Valid() bool {
	for _, v := range []float64{r.MinX, r.MinY, r.MaxX, r.MaxY} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return !r.IsEmpty()
}

// FlipX mirrors r along the vertical centre line of space: the construction
// of the paper's "independent" query distribution (IND-*), where an object
// in the west of the map queries the east and vice versa.
func (r Rect) FlipX(space Rect) Rect {
	if r.IsEmpty() {
		return r
	}
	return Rect{
		MinX: space.MinX + space.MaxX - r.MaxX,
		MinY: r.MinY,
		MaxX: space.MinX + space.MaxX - r.MinX,
		MaxY: r.MaxY,
	}
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	if r.IsEmpty() {
		return "Rect(empty)"
	}
	return fmt.Sprintf("Rect(%g,%g — %g,%g)", r.MinX, r.MinY, r.MaxX, r.MaxY)
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%g, %g)", p.X, p.Y)
}

// MBR returns the minimum bounding rectangle of the given rectangles.
// MBR of no rectangles is the empty rectangle.
func MBR(rects ...Rect) Rect {
	out := EmptyRect()
	for _, r := range rects {
		out = out.Union(r)
	}
	return out
}
