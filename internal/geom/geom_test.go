package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmptyRect(t *testing.T) {
	e := EmptyRect()
	if !e.IsEmpty() {
		t.Fatal("EmptyRect should be empty")
	}
	if e.Area() != 0 {
		t.Errorf("empty area = %g, want 0", e.Area())
	}
	if e.Margin() != 0 {
		t.Errorf("empty margin = %g, want 0", e.Margin())
	}
	if e.Width() != 0 || e.Height() != 0 {
		t.Errorf("empty extents = %g×%g, want 0×0", e.Width(), e.Height())
	}
	if e.Valid() {
		t.Error("empty rect should not be valid")
	}
	if e.String() != "Rect(empty)" {
		t.Errorf("String() = %q", e.String())
	}
}

func TestNewRectNormalizes(t *testing.T) {
	r := NewRect(5, 7, 1, 2)
	want := Rect{MinX: 1, MinY: 2, MaxX: 5, MaxY: 7}
	if r != want {
		t.Errorf("NewRect = %v, want %v", r, want)
	}
}

func TestRectFromPoint(t *testing.T) {
	p := Point{X: 3, Y: -4}
	r := RectFromPoint(p)
	if r.Area() != 0 {
		t.Errorf("point rect area = %g, want 0", r.Area())
	}
	if !r.ContainsPoint(p) {
		t.Error("point rect should contain its point")
	}
	if r.IsEmpty() {
		t.Error("point rect should not be empty")
	}
}

func TestRectFromCenter(t *testing.T) {
	r := RectFromCenter(Point{X: 10, Y: 20}, 4, 6)
	want := Rect{MinX: 8, MinY: 17, MaxX: 12, MaxY: 23}
	if r != want {
		t.Errorf("RectFromCenter = %v, want %v", r, want)
	}
	if got := r.Center(); got != (Point{X: 10, Y: 20}) {
		t.Errorf("Center = %v", got)
	}
	// Negative extents clamp to a point.
	p := RectFromCenter(Point{X: 1, Y: 1}, -5, -5)
	if p.Area() != 0 || p.IsEmpty() {
		t.Errorf("negative-extent rect = %v", p)
	}
}

func TestAreaMargin(t *testing.T) {
	tests := []struct {
		name         string
		r            Rect
		area, margin float64
	}{
		{"unit", NewRect(0, 0, 1, 1), 1, 4},
		{"wide", NewRect(0, 0, 10, 2), 20, 24},
		{"point", RectFromPoint(Point{X: 5, Y: 5}), 0, 0},
		{"segment", NewRect(0, 0, 3, 0), 0, 6},
		{"negative coords", NewRect(-2, -3, 2, 3), 24, 20},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.r.Area(); got != tt.area {
				t.Errorf("Area = %g, want %g", got, tt.area)
			}
			if got := tt.r.Margin(); got != tt.margin {
				t.Errorf("Margin = %g, want %g", got, tt.margin)
			}
		})
	}
}

func TestUnion(t *testing.T) {
	a := NewRect(0, 0, 1, 1)
	b := NewRect(2, 2, 3, 3)
	u := a.Union(b)
	want := NewRect(0, 0, 3, 3)
	if u != want {
		t.Errorf("Union = %v, want %v", u, want)
	}
	if got := a.Union(EmptyRect()); got != a {
		t.Errorf("Union with empty = %v, want %v", got, a)
	}
	if got := EmptyRect().Union(b); got != b {
		t.Errorf("empty Union b = %v, want %v", got, b)
	}
	if got := a.UnionPoint(Point{X: -1, Y: 5}); got != NewRect(-1, 0, 1, 5) {
		t.Errorf("UnionPoint = %v", got)
	}
}

func TestIntersection(t *testing.T) {
	tests := []struct {
		name       string
		a, b       Rect
		intersects bool
		area       float64
	}{
		{"overlap", NewRect(0, 0, 2, 2), NewRect(1, 1, 3, 3), true, 1},
		{"disjoint", NewRect(0, 0, 1, 1), NewRect(2, 2, 3, 3), false, 0},
		{"touching edge", NewRect(0, 0, 1, 1), NewRect(1, 0, 2, 1), true, 0},
		{"touching corner", NewRect(0, 0, 1, 1), NewRect(1, 1, 2, 2), true, 0},
		{"contained", NewRect(0, 0, 10, 10), NewRect(2, 2, 4, 4), true, 4},
		{"identical", NewRect(0, 0, 2, 3), NewRect(0, 0, 2, 3), true, 6},
		{"empty operand", NewRect(0, 0, 1, 1), EmptyRect(), false, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Intersects(tt.b); got != tt.intersects {
				t.Errorf("Intersects = %v, want %v", got, tt.intersects)
			}
			if got := tt.b.Intersects(tt.a); got != tt.intersects {
				t.Errorf("Intersects not symmetric")
			}
			if got := tt.a.OverlapArea(tt.b); got != tt.area {
				t.Errorf("OverlapArea = %g, want %g", got, tt.area)
			}
			inter := tt.a.Intersection(tt.b)
			if tt.intersects && inter.IsEmpty() {
				t.Error("Intersection empty despite Intersects")
			}
			if !tt.intersects && !inter.IsEmpty() {
				t.Errorf("Intersection = %v despite disjoint", inter)
			}
		})
	}
}

func TestContains(t *testing.T) {
	outer := NewRect(0, 0, 10, 10)
	if !outer.Contains(NewRect(1, 1, 9, 9)) {
		t.Error("should contain inner rect")
	}
	if !outer.Contains(outer) {
		t.Error("should contain itself")
	}
	if outer.Contains(NewRect(5, 5, 11, 9)) {
		t.Error("should not contain overflowing rect")
	}
	if !outer.Contains(EmptyRect()) {
		t.Error("non-empty should contain empty")
	}
	if EmptyRect().Contains(outer) {
		t.Error("empty contains nothing")
	}
	if !outer.ContainsPoint(Point{X: 0, Y: 10}) {
		t.Error("boundary point should be contained")
	}
	if outer.ContainsPoint(Point{X: -0.1, Y: 5}) {
		t.Error("outside point should not be contained")
	}
	if EmptyRect().ContainsPoint(Point{}) {
		t.Error("empty rect contains no point")
	}
}

func TestEnlargement(t *testing.T) {
	r := NewRect(0, 0, 2, 2)
	if got := r.Enlargement(NewRect(1, 1, 2, 2)); got != 0 {
		t.Errorf("Enlargement of contained = %g, want 0", got)
	}
	// Union with (0,0)-(4,2) has area 8, r has area 4.
	if got := r.Enlargement(NewRect(2, 0, 4, 2)); got != 4 {
		t.Errorf("Enlargement = %g, want 4", got)
	}
}

func TestMinDist(t *testing.T) {
	r := NewRect(0, 0, 2, 2)
	tests := []struct {
		p    Point
		want float64
	}{
		{Point{X: 1, Y: 1}, 0},   // inside
		{Point{X: 2, Y: 2}, 0},   // corner
		{Point{X: 5, Y: 1}, 3},   // right of
		{Point{X: 1, Y: -2}, 2},  // below
		{Point{X: 5, Y: 6}, 5},   // diagonal 3-4-5
		{Point{X: -3, Y: -4}, 5}, // diagonal other side
		{Point{X: -1, Y: 1}, 1},  // left of
	}
	for _, tt := range tests {
		if got := r.MinDist(tt.p); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("MinDist(%v) = %g, want %g", tt.p, got, tt.want)
		}
	}
	if !math.IsInf(EmptyRect().MinDist(Point{}), 1) {
		t.Error("MinDist to empty should be +Inf")
	}
}

func TestFlipX(t *testing.T) {
	space := NewRect(0, 0, 100, 50)
	r := NewRect(10, 5, 20, 15)
	f := r.FlipX(space)
	want := NewRect(80, 5, 90, 15)
	if f != want {
		t.Errorf("FlipX = %v, want %v", f, want)
	}
	// Double flip is the identity.
	if got := f.FlipX(space); got != r {
		t.Errorf("double FlipX = %v, want %v", got, r)
	}
	// Width and area preserved.
	if f.Area() != r.Area() || f.Width() != r.Width() {
		t.Error("FlipX should preserve area and width")
	}
	if !EmptyRect().FlipX(space).IsEmpty() {
		t.Error("FlipX of empty should stay empty")
	}
}

func TestMBR(t *testing.T) {
	if !MBR().IsEmpty() {
		t.Error("MBR of nothing should be empty")
	}
	got := MBR(NewRect(0, 0, 1, 1), NewRect(5, -2, 6, 0), EmptyRect())
	want := NewRect(0, -2, 6, 1)
	if got != want {
		t.Errorf("MBR = %v, want %v", got, want)
	}
}

func TestEqual(t *testing.T) {
	a := NewRect(0, 0, 1, 1)
	if !a.Equal(a) {
		t.Error("rect should equal itself")
	}
	if a.Equal(NewRect(0, 0, 1, 2)) {
		t.Error("different rects should not be equal")
	}
	e1 := EmptyRect()
	e2 := Rect{MinX: 5, MinY: 5, MaxX: 0, MaxY: 0}
	if !e1.Equal(e2) {
		t.Error("all empty rects should be equal")
	}
	if a.Equal(e1) || e1.Equal(a) {
		t.Error("empty and non-empty should differ")
	}
}

func TestValid(t *testing.T) {
	if !NewRect(0, 0, 1, 1).Valid() {
		t.Error("normal rect should be valid")
	}
	if (Rect{MinX: math.NaN()}).Valid() {
		t.Error("NaN rect should be invalid")
	}
	if EmptyRect().Valid() {
		t.Error("empty (infinite) rect should be invalid")
	}
}

// randRect generates a random non-empty rectangle inside [-100,100]².
func randRect(rng *rand.Rand) Rect {
	x1 := rng.Float64()*200 - 100
	y1 := rng.Float64()*200 - 100
	return NewRect(x1, y1, x1+rng.Float64()*50, y1+rng.Float64()*50)
}

func TestPropertyUnionCommutativeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		a, b, c := randRect(rng), randRect(rng), randRect(rng)
		if a.Union(b) != b.Union(a) {
			t.Fatalf("union not commutative: %v %v", a, b)
		}
		if a.Union(b).Union(c) != a.Union(b.Union(c)) {
			t.Fatalf("union not associative: %v %v %v", a, b, c)
		}
		u := a.Union(b)
		if !u.Contains(a) || !u.Contains(b) {
			t.Fatalf("union does not contain operands: %v %v", a, b)
		}
		if u.Area() < a.Area() || u.Area() < b.Area() {
			t.Fatalf("union area shrank")
		}
	}
}

func TestPropertyIntersectionContained(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		a, b := randRect(rng), randRect(rng)
		inter := a.Intersection(b)
		if inter.IsEmpty() {
			if a.Intersects(b) {
				t.Fatalf("Intersects true but Intersection empty: %v %v", a, b)
			}
			continue
		}
		if !a.Contains(inter) || !b.Contains(inter) {
			t.Fatalf("intersection not contained in operands")
		}
		if inter.Area() > a.Area()+1e-9 || inter.Area() > b.Area()+1e-9 {
			t.Fatalf("intersection area exceeds operand")
		}
		if got := a.OverlapArea(b); got != inter.Area() {
			t.Fatalf("OverlapArea mismatch: %g vs %g", got, inter.Area())
		}
	}
}

func TestPropertyEnlargementNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		a, b := randRect(rng), randRect(rng)
		if a.Enlargement(b) < 0 {
			t.Fatalf("negative enlargement for %v %v", a, b)
		}
	}
}

func TestQuickFlipXInvolution(t *testing.T) {
	space := NewRect(-1000, -1000, 1000, 1000)
	f := func(x1, y1, w, h float64) bool {
		w = math.Mod(math.Abs(w), 100)
		h = math.Mod(math.Abs(h), 100)
		x1 = math.Mod(x1, 500)
		y1 = math.Mod(y1, 500)
		if math.IsNaN(x1 + y1 + w + h) {
			return true
		}
		r := NewRect(x1, y1, x1+w, y1+h)
		ff := r.FlipX(space).FlipX(space)
		const eps = 1e-9
		return math.Abs(ff.MinX-r.MinX) < eps && math.Abs(ff.MaxX-r.MaxX) < eps &&
			ff.MinY == r.MinY && ff.MaxY == r.MaxY
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickMinDistZeroInside(t *testing.T) {
	f := func(cx, cy float64) bool {
		cx = math.Mod(cx, 10)
		cy = math.Mod(cy, 10)
		if math.IsNaN(cx + cy) {
			return true
		}
		r := NewRect(-10, -10, 10, 10)
		return r.MinDist(Point{X: cx, Y: cy}) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
