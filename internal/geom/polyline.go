package geom

import "math"

// Polyline is an exact object representation: a connected sequence of
// vertices. The paper's storage architecture (Brinkhoff et al., SSD 1993)
// keeps such exact representations on separate object pages; queries
// first filter on MBRs in the spatial access method and then refine
// against the exact geometry fetched from those pages.
type Polyline []Point

// MBR returns the bounding rectangle of the polyline (empty for no
// vertices).
func (p Polyline) MBR() Rect {
	out := EmptyRect()
	for _, v := range p {
		out = out.UnionPoint(v)
	}
	return out
}

// NumSegments returns the number of line segments.
func (p Polyline) NumSegments() int {
	if len(p) < 2 {
		return 0
	}
	return len(p) - 1
}

// Segment returns the endpoints of segment i.
func (p Polyline) Segment(i int) (Point, Point) {
	return p[i], p[i+1]
}

// Length returns the total Euclidean length.
func (p Polyline) Length() float64 {
	total := 0.0
	for i := 0; i < p.NumSegments(); i++ {
		a, b := p.Segment(i)
		total += math.Hypot(b.X-a.X, b.Y-a.Y)
	}
	return total
}

// IntersectsRect reports whether any part of the polyline lies inside or
// crosses the rectangle — the refinement predicate of a window query. A
// single-vertex polyline intersects iff the vertex is inside.
func (p Polyline) IntersectsRect(r Rect) bool {
	if r.IsEmpty() || len(p) == 0 {
		return false
	}
	if len(p) == 1 {
		return r.ContainsPoint(p[0])
	}
	for i := 0; i < p.NumSegments(); i++ {
		a, b := p.Segment(i)
		if segmentIntersectsRect(a, b, r) {
			return true
		}
	}
	return false
}

// segmentIntersectsRect reports whether segment ab intersects the closed
// rectangle r, via the Cohen–Sutherland style slab clipping test.
func segmentIntersectsRect(a, b Point, r Rect) bool {
	// Trivial accept.
	if r.ContainsPoint(a) || r.ContainsPoint(b) {
		return true
	}
	// Clip the parametric segment a + t(b−a), t ∈ [0,1], against the
	// four slabs; a non-empty parameter interval means intersection.
	t0, t1 := 0.0, 1.0
	dx, dy := b.X-a.X, b.Y-a.Y
	clip := func(p, q float64) bool {
		// Clip against p·t ≤ q.
		if p == 0 {
			return q >= 0
		}
		t := q / p
		if p < 0 {
			if t > t1 {
				return false
			}
			if t > t0 {
				t0 = t
			}
		} else {
			if t < t0 {
				return false
			}
			if t < t1 {
				t1 = t
			}
		}
		return true
	}
	if !clip(-dx, a.X-r.MinX) {
		return false
	}
	if !clip(dx, r.MaxX-a.X) {
		return false
	}
	if !clip(-dy, a.Y-r.MinY) {
		return false
	}
	if !clip(dy, r.MaxY-a.Y) {
		return false
	}
	return t0 <= t1
}

// Clone returns a copy of the polyline.
func (p Polyline) Clone() Polyline {
	out := make(Polyline, len(p))
	copy(out, p)
	return out
}
