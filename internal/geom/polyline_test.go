package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestPolylineMBR(t *testing.T) {
	if !(Polyline{}).MBR().IsEmpty() {
		t.Error("empty polyline should have empty MBR")
	}
	p := Polyline{{X: 1, Y: 2}, {X: -3, Y: 5}, {X: 2, Y: 0}}
	want := NewRect(-3, 0, 2, 5)
	if got := p.MBR(); got != want {
		t.Errorf("MBR = %v, want %v", got, want)
	}
}

func TestPolylineSegmentsAndLength(t *testing.T) {
	p := Polyline{{X: 0, Y: 0}, {X: 3, Y: 4}, {X: 3, Y: 10}}
	if p.NumSegments() != 2 {
		t.Errorf("NumSegments = %d", p.NumSegments())
	}
	if got := p.Length(); math.Abs(got-11) > 1e-12 {
		t.Errorf("Length = %g, want 11", got)
	}
	a, b := p.Segment(1)
	if a != (Point{X: 3, Y: 4}) || b != (Point{X: 3, Y: 10}) {
		t.Errorf("Segment(1) = %v, %v", a, b)
	}
	if (Polyline{{X: 1, Y: 1}}).NumSegments() != 0 {
		t.Error("single vertex has no segments")
	}
	if (Polyline{{X: 1, Y: 1}}).Length() != 0 {
		t.Error("single vertex has zero length")
	}
}

func TestPolylineIntersectsRect(t *testing.T) {
	r := NewRect(0, 0, 10, 10)
	tests := []struct {
		name string
		p    Polyline
		want bool
	}{
		{"empty", Polyline{}, false},
		{"vertex inside", Polyline{{X: 5, Y: 5}}, true},
		{"vertex outside", Polyline{{X: 15, Y: 5}}, false},
		{"segment inside", Polyline{{X: 1, Y: 1}, {X: 2, Y: 2}}, true},
		{"segment crossing", Polyline{{X: -5, Y: 5}, {X: 15, Y: 5}}, true},
		{"segment crossing corner region", Polyline{{X: -1, Y: 5}, {X: 5, Y: -1}}, true},
		{"segment outside", Polyline{{X: -5, Y: -5}, {X: -1, Y: -1}}, false},
		{"segment passing by", Polyline{{X: -5, Y: 12}, {X: 15, Y: 12}}, false},
		{"diagonal clipping corner", Polyline{{X: 11, Y: 5}, {X: 5, Y: 11}}, true},
		{"diagonal missing corner", Polyline{{X: 11, Y: 10.5}, {X: 10.5, Y: 11}}, false},
		{"touching edge", Polyline{{X: -5, Y: 10}, {X: 15, Y: 10}}, true},
		{"endpoint on boundary", Polyline{{X: 10, Y: 10}, {X: 20, Y: 20}}, true},
		{"multi-segment detour", Polyline{{X: -5, Y: -5}, {X: -5, Y: 15}, {X: 5, Y: 5}}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.IntersectsRect(r); got != tt.want {
				t.Errorf("IntersectsRect = %v, want %v", got, tt.want)
			}
		})
	}
	if (Polyline{{X: 1, Y: 1}, {X: 2, Y: 2}}).IntersectsRect(EmptyRect()) {
		t.Error("nothing intersects the empty rect")
	}
}

// TestPolylineIntersectsRectMatchesSampling cross-checks the clipping
// test against dense point sampling along random segments.
func TestPolylineIntersectsRectMatchesSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	r := NewRect(20, 20, 60, 50)
	for trial := 0; trial < 2000; trial++ {
		a := Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		b := Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		p := Polyline{a, b}
		got := p.IntersectsRect(r)
		// Sample densely; sampling can only under-approximate, so a
		// sampled hit with got=false is a definite bug, while got=true
		// with no sampled hit is verified with a finer scan.
		hit := false
		const steps = 400
		for i := 0; i <= steps; i++ {
			tt := float64(i) / steps
			q := Point{X: a.X + tt*(b.X-a.X), Y: a.Y + tt*(b.Y-a.Y)}
			if r.ContainsPoint(q) {
				hit = true
				break
			}
		}
		if hit && !got {
			t.Fatalf("segment %v-%v: sampling hit but IntersectsRect false", a, b)
		}
		if got && !hit {
			// Tangential contact can slip through coarse sampling; a
			// near-miss within 0.3 of the boundary is acceptable.
			d := math.Min(
				math.Min(segPointDist(a, b, Point{X: r.MinX, Y: r.MinY}), segPointDist(a, b, Point{X: r.MaxX, Y: r.MinY})),
				math.Min(segPointDist(a, b, Point{X: r.MinX, Y: r.MaxY}), segPointDist(a, b, Point{X: r.MaxX, Y: r.MaxY})),
			)
			if d > 0.3 {
				t.Fatalf("segment %v-%v: IntersectsRect true but sampling found nothing (corner dist %g)", a, b, d)
			}
		}
	}
}

// segPointDist returns the distance from point q to segment ab.
func segPointDist(a, b, q Point) float64 {
	dx, dy := b.X-a.X, b.Y-a.Y
	l2 := dx*dx + dy*dy
	if l2 == 0 {
		return math.Hypot(q.X-a.X, q.Y-a.Y)
	}
	t := ((q.X-a.X)*dx + (q.Y-a.Y)*dy) / l2
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	return math.Hypot(q.X-(a.X+t*dx), q.Y-(a.Y+t*dy))
}

func TestPolylineClone(t *testing.T) {
	p := Polyline{{X: 1, Y: 1}, {X: 2, Y: 2}}
	c := p.Clone()
	c[0].X = 99
	if p[0].X != 1 {
		t.Error("clone mutation leaked")
	}
}
