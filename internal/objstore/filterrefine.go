package objstore

import (
	"repro/internal/buffer"
	"repro/internal/geom"
	"repro/internal/page"
	"repro/internal/rtree"
)

// FilterRefineResult summarizes one two-step window query.
type FilterRefineResult struct {
	// Candidates is the number of objects the filter step (SAM) produced.
	Candidates int
	// Hits is the number of candidates whose exact representation
	// intersects the window.
	Hits int
	// FalseDrops is Candidates − Hits: MBR matches whose exact geometry
	// misses the window.
	FalseDrops int
}

// FilterRefine executes the paper's two-step window query: the R*-tree
// filters candidates by MBR (reading index pages through treeRd), then
// each candidate's exact representation is checked against the window
// (reading object pages through objRd). The two readers are typically
// two *separate* buffers, exactly as in the paper's setup ("the pages of
// the spatial objects are stored in separate files and buffers").
//
// shapes optionally supplies exact polylines for a precise refinement
// test; without it the refinement uses the stored segment MBRs.
func FilterRefine(
	t *rtree.Tree, treeRd rtree.Reader,
	objs *Store, objRd rtree.Reader,
	shapes map[uint64]geom.Polyline,
	ctx buffer.AccessContext, window geom.Rect,
	fn func(objID uint64) bool,
) (FilterRefineResult, error) {
	var res FilterRefineResult
	var ferr error
	err := t.Search(treeRd, ctx, window, func(e page.Entry) bool {
		res.Candidates++
		hit, err := objs.Refine(objRd, ctx, e.ObjID, window, shapes[e.ObjID])
		if err != nil {
			ferr = err
			return false
		}
		if !hit {
			res.FalseDrops++
			return true
		}
		res.Hits++
		if fn != nil {
			return fn(e.ObjID)
		}
		return true
	})
	if ferr != nil {
		return res, ferr
	}
	return res, err
}
