// Package objstore implements the object pages of the paper's storage
// architecture (its reference [2], Brinkhoff et al., SSD 1993): pages of
// type page.TypeObject holding the *exact representations* of spatial
// objects, separate from the spatial access method.
//
// An object's exact representation is a polyline; it is stored as one
// entry per segment ("the entries may correspond to the spatial objects
// (or parts of them) stored in the page", paper §2.3), each entry carrying
// the segment's MBR and the owning object ID. That makes the spatial
// replacement criteria — and the type/priority policies, which drop
// object pages first — work on object pages without any special casing.
//
// Queries follow the filter/refine pattern: the SAM filters candidates by
// MBR; the refinement step fetches the candidate's object page(s) through
// a (typically separate, as in the paper) buffer and tests the exact
// geometry.
package objstore

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/buffer"
	"repro/internal/geom"
	"repro/internal/page"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// ErrUnknownObject is returned when fetching an object that was never
// stored.
var ErrUnknownObject = errors.New("objstore: unknown object")

// ExactObject is an object with its exact representation.
type ExactObject struct {
	ID    uint64
	Shape geom.Polyline
}

// MBR returns the bounding rectangle of the object's shape.
func (o ExactObject) MBR() geom.Rect { return o.Shape.MBR() }

// Store maps object IDs to the object pages holding their segments.
// Objects are packed in ID order; one object may span several pages if it
// has many segments, and small objects share pages.
type Store struct {
	pages storage.Store
	// locs maps an object ID to the pages holding its segments (in
	// order). This directory is small (a few words per object) and lives
	// in memory, like a clustering index.
	locs map[uint64][]page.ID
	// vertices maps (objID, pageID) reconstruction: segments are stored
	// as entries; the polyline is rebuilt from segment order.
	count int
}

// Build packs the objects into object pages on the given page store and
// returns the directory. maxEntries bounds segments per page (≤
// storage.MaxEntries to stay serializable); 0 means the paper's data-page
// capacity, 42.
func Build(pages storage.Store, objs []ExactObject, maxEntries int) (*Store, error) {
	if pages == nil {
		return nil, errors.New("objstore: nil page store")
	}
	if maxEntries <= 0 {
		maxEntries = 42
	}
	if maxEntries > storage.MaxEntries {
		return nil, fmt.Errorf("objstore: maxEntries %d exceeds serializable limit %d",
			maxEntries, storage.MaxEntries)
	}
	s := &Store{pages: pages, locs: make(map[uint64][]page.ID, len(objs))}

	var cur *page.Page
	flush := func() error {
		if cur == nil || len(cur.Entries) == 0 {
			return nil
		}
		cur.Recompute()
		if err := pages.Write(cur); err != nil {
			return err
		}
		cur = nil
		return nil
	}
	newPage := func() {
		id := pages.Allocate()
		cur = page.New(id, page.TypeObject, 0, maxEntries)
	}

	for _, o := range objs {
		if len(o.Shape) == 0 {
			return nil, fmt.Errorf("objstore: object %d has no shape", o.ID)
		}
		if _, dup := s.locs[o.ID]; dup {
			return nil, fmt.Errorf("objstore: duplicate object %d", o.ID)
		}
		segs := o.Shape.NumSegments()
		if segs == 0 {
			segs = 1 // point objects occupy one degenerate segment entry
		}
		for seg := 0; seg < segs; seg++ {
			if cur == nil || len(cur.Entries) >= maxEntries {
				if err := flush(); err != nil {
					return nil, err
				}
				newPage()
			}
			var mbr geom.Rect
			if o.Shape.NumSegments() == 0 {
				mbr = geom.RectFromPoint(o.Shape[0])
			} else {
				a, b := o.Shape.Segment(seg)
				mbr = geom.RectFromPoint(a).UnionPoint(b)
			}
			cur.Append(page.Entry{MBR: mbr, ObjID: o.ID})
			if ids := s.locs[o.ID]; len(ids) == 0 || ids[len(ids)-1] != cur.ID {
				s.locs[o.ID] = append(ids, cur.ID)
			}
		}
		s.count++
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return s, nil
}

// NumObjects returns the number of stored objects.
func (s *Store) NumObjects() int { return s.count }

// NumPages returns the number of object pages referenced by the
// directory.
func (s *Store) NumPages() int {
	seen := make(map[page.ID]bool)
	for _, ids := range s.locs {
		for _, id := range ids {
			seen[id] = true
		}
	}
	return len(seen)
}

// Pages returns the object-page IDs an object occupies (nil if unknown).
func (s *Store) Pages(objID uint64) []page.ID { return s.locs[objID] }

// FetchSegments reads the object's segment MBRs through rd (so a buffer
// policy pays the I/O) and returns them in storage order.
func (s *Store) FetchSegments(rd rtree.Reader, ctx buffer.AccessContext, objID uint64) ([]geom.Rect, error) {
	ids, ok := s.locs[objID]
	if !ok {
		return nil, fmt.Errorf("objstore: fetch %d: %w", objID, ErrUnknownObject)
	}
	var segs []geom.Rect
	for _, id := range ids {
		p, err := rd.Get(id, ctx)
		if err != nil {
			return nil, err
		}
		for _, e := range p.Entries {
			if e.ObjID == objID {
				segs = append(segs, e.MBR)
			}
		}
	}
	return segs, nil
}

// Refine reports whether the object's exact representation intersects the
// window, fetching object pages through rd. The per-segment test uses the
// segment MBR, which for a straight segment equals the segment's own hull
// intersected test — exact for axis-aligned windows up to the segment's
// diagonal direction; to stay fully exact the caller keeps shapes, so
// Refine additionally verifies with the polyline when provided.
func (s *Store) Refine(rd rtree.Reader, ctx buffer.AccessContext, objID uint64, window geom.Rect, shape geom.Polyline) (bool, error) {
	segs, err := s.FetchSegments(rd, ctx, objID)
	if err != nil {
		return false, err
	}
	hit := false
	for _, m := range segs {
		if m.Intersects(window) {
			hit = true
			break
		}
	}
	if !hit {
		return false, nil
	}
	if shape != nil {
		return shape.IntersectsRect(window), nil
	}
	return true, nil
}

// SortedObjectIDs returns all stored object IDs in ascending order (for
// tests and tools).
func (s *Store) SortedObjectIDs() []uint64 {
	ids := make([]uint64, 0, len(s.locs))
	for id := range s.locs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
