package objstore

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/page"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// buildObjects returns n shaped objects over the US-mainland generator.
func buildObjects(t testing.TB, n int) []dataset.ShapedObject {
	t.Helper()
	return dataset.USMainland(1).ShapedObjects(2, n)
}

// toExact converts shaped objects for the store builder.
func toExact(shaped []dataset.ShapedObject) []ExactObject {
	out := make([]ExactObject, len(shaped))
	for i, s := range shaped {
		out[i] = ExactObject{ID: s.ID, Shape: s.Shape}
	}
	return out
}

func TestBuildAndFetch(t *testing.T) {
	shaped := buildObjects(t, 500)
	pages := storage.NewMemStore()
	st, err := Build(pages, toExact(shaped), 16)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumObjects() != 500 {
		t.Errorf("NumObjects = %d", st.NumObjects())
	}
	if st.NumPages() == 0 || st.NumPages() != pages.NumPages() {
		t.Errorf("NumPages = %d, store has %d", st.NumPages(), pages.NumPages())
	}
	rd := rtree.StoreReader{Store: pages}
	for _, s := range shaped {
		segs, err := st.FetchSegments(rd, buffer.AccessContext{}, s.ID)
		if err != nil {
			t.Fatalf("fetch %d: %v", s.ID, err)
		}
		wantSegs := s.Shape.NumSegments()
		if wantSegs == 0 {
			wantSegs = 1
		}
		if len(segs) != wantSegs {
			t.Fatalf("object %d: %d segments, want %d", s.ID, len(segs), wantSegs)
		}
		// Union of segment MBRs is the object MBR.
		if got := geom.MBR(segs...); !got.Equal(s.MBR) {
			t.Fatalf("object %d: segment union %v != MBR %v", s.ID, got, s.MBR)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	pages := storage.NewMemStore()
	if _, err := Build(nil, nil, 0); err == nil {
		t.Error("nil store should fail")
	}
	if _, err := Build(pages, []ExactObject{{ID: 1}}, 0); err == nil {
		t.Error("shapeless object should fail")
	}
	if _, err := Build(pages, []ExactObject{
		{ID: 1, Shape: geom.Polyline{{X: 1, Y: 1}}},
		{ID: 1, Shape: geom.Polyline{{X: 2, Y: 2}}},
	}, 0); err == nil {
		t.Error("duplicate ID should fail")
	}
	if _, err := Build(pages, nil, storage.MaxEntries+1); err == nil {
		t.Error("oversized maxEntries should fail")
	}
}

func TestFetchUnknownObject(t *testing.T) {
	pages := storage.NewMemStore()
	st, err := Build(pages, toExact(buildObjects(t, 5)), 0)
	if err != nil {
		t.Fatal(err)
	}
	rd := rtree.StoreReader{Store: pages}
	if _, err := st.FetchSegments(rd, buffer.AccessContext{}, 999); !errors.Is(err, ErrUnknownObject) {
		t.Errorf("err = %v, want ErrUnknownObject", err)
	}
}

func TestObjectPagesHaveObjectType(t *testing.T) {
	pages := storage.NewMemStore()
	st, err := Build(pages, toExact(buildObjects(t, 200)), 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, objID := range st.SortedObjectIDs() {
		for _, pid := range st.Pages(objID) {
			p, err := pages.Read(pid)
			if err != nil {
				t.Fatal(err)
			}
			if p.Type != page.TypeObject {
				t.Fatalf("page %d has type %v, want object", pid, p.Type)
			}
			if p.MBR.IsEmpty() || p.NumEntries == 0 {
				t.Fatalf("page %d has no derived stats", pid)
			}
		}
	}
}

func TestLargeObjectSpansPages(t *testing.T) {
	// 30 segments with maxEntries 8 → at least 4 pages.
	shape := make(geom.Polyline, 31)
	rng := rand.New(rand.NewSource(3))
	for i := range shape {
		shape[i] = geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
	}
	pages := storage.NewMemStore()
	st, err := Build(pages, []ExactObject{{ID: 7, Shape: shape}}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(st.Pages(7)); got < 4 {
		t.Errorf("object spans %d pages, want ≥ 4", got)
	}
	rd := rtree.StoreReader{Store: pages}
	segs, err := st.FetchSegments(rd, buffer.AccessContext{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 30 {
		t.Errorf("fetched %d segments, want 30", len(segs))
	}
}

// buildFilterRefine sets up a tree + object store over the same shaped
// objects.
func buildFilterRefine(t testing.TB, n int) (*rtree.Tree, *Store, *storage.MemStore, *storage.MemStore, map[uint64]geom.Polyline, []dataset.ShapedObject) {
	shaped := buildObjects(t, n)
	treeStore := storage.NewMemStore()
	tree, err := rtree.New(treeStore, rtree.Params{
		MaxDirEntries: 16, MaxDataEntries: 12, MinFillFrac: 0.4, ReinsertFrac: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	shapes := make(map[uint64]geom.Polyline, n)
	for _, s := range shaped {
		if err := tree.Insert(s.ID, s.MBR); err != nil {
			t.Fatal(err)
		}
		shapes[s.ID] = s.Shape
	}
	objPages := storage.NewMemStore()
	objs, err := Build(objPages, toExact(shaped), 0)
	if err != nil {
		t.Fatal(err)
	}
	return tree, objs, treeStore, objPages, shapes, shaped
}

func TestFilterRefineMatchesBruteForce(t *testing.T) {
	tree, objs, treeStore, objPages, shapes, shaped := buildFilterRefine(t, 3000)
	treeRd := rtree.StoreReader{Store: treeStore}
	objRd := rtree.StoreReader{Store: objPages}
	rng := rand.New(rand.NewSource(9))
	space := dataset.USMainland(1).Space
	for trial := 0; trial < 60; trial++ {
		c := geom.Point{
			X: space.MinX + rng.Float64()*space.Width(),
			Y: space.MinY + rng.Float64()*space.Height(),
		}
		w := geom.RectFromCenter(c, rng.Float64()*40, rng.Float64()*30).Intersection(space)
		if w.IsEmpty() {
			continue
		}
		got := map[uint64]bool{}
		res, err := FilterRefine(tree, treeRd, objs, objRd, shapes,
			buffer.AccessContext{QueryID: uint64(trial + 1)}, w,
			func(id uint64) bool { got[id] = true; return true })
		if err != nil {
			t.Fatal(err)
		}
		wantHits := 0
		for _, s := range shaped {
			exact := s.Shape.IntersectsRect(w)
			if exact {
				wantHits++
				if !got[s.ID] {
					t.Fatalf("trial %d: object %d missing (exact hit)", trial, s.ID)
				}
			} else if got[s.ID] {
				t.Fatalf("trial %d: object %d reported but exact geometry misses", trial, s.ID)
			}
		}
		if res.Hits != wantHits {
			t.Fatalf("trial %d: Hits = %d, want %d", trial, res.Hits, wantHits)
		}
		if res.Candidates != res.Hits+res.FalseDrops {
			t.Fatalf("trial %d: inconsistent result %+v", trial, res)
		}
		if res.Candidates < res.Hits {
			t.Fatalf("trial %d: fewer candidates than hits", trial)
		}
	}
}

func TestFilterRefineProducesFalseDrops(t *testing.T) {
	// Deterministic false-drop scenario: an L-shaped polyline whose MBR
	// covers the unit square [0,10]² but whose geometry hugs the left and
	// bottom edges. A window in the empty top-right corner passes the MBR
	// filter and must be dropped by the refinement.
	l := geom.Polyline{{X: 0, Y: 10}, {X: 0, Y: 0}, {X: 10, Y: 0}}
	treeStore := storage.NewMemStore()
	tree, err := rtree.New(treeStore, rtree.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Insert(1, l.MBR()); err != nil {
		t.Fatal(err)
	}
	objPages := storage.NewMemStore()
	objs, err := Build(objPages, []ExactObject{{ID: 1, Shape: l}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	shapes := map[uint64]geom.Polyline{1: l}
	treeRd := rtree.StoreReader{Store: treeStore}
	objRd := rtree.StoreReader{Store: objPages}

	window := geom.NewRect(6, 6, 9, 9) // inside the MBR, off the shape
	res, err := FilterRefine(tree, treeRd, objs, objRd, shapes,
		buffer.AccessContext{QueryID: 1}, window, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Candidates != 1 || res.Hits != 0 || res.FalseDrops != 1 {
		t.Errorf("corner window: %+v, want 1 candidate dropped", res)
	}

	// A window on the shape is a hit.
	res, err = FilterRefine(tree, treeRd, objs, objRd, shapes,
		buffer.AccessContext{QueryID: 2}, geom.NewRect(-1, -1, 1, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hits != 1 || res.FalseDrops != 0 {
		t.Errorf("edge window: %+v, want 1 hit", res)
	}
}

func TestRefinementThroughSeparateBuffers(t *testing.T) {
	// The paper's setup: tree pages and object pages in separate buffers.
	// Both must record traffic, and object-page traffic must respect the
	// buffer abstraction (reads == misses).
	tree, objs, treeStore, objPages, shapes, _ := buildFilterRefine(t, 2000)
	treeBuf, err := buffer.NewManager(treeStore, core.NewLRU(), 32)
	if err != nil {
		t.Fatal(err)
	}
	objBuf, err := buffer.NewManager(objPages, core.NewLRUT(), 32)
	if err != nil {
		t.Fatal(err)
	}
	objPages.ResetStats()
	rng := rand.New(rand.NewSource(11))
	space := dataset.USMainland(1).Space
	for trial := 0; trial < 50; trial++ {
		c := geom.Point{
			X: space.MinX + rng.Float64()*space.Width(),
			Y: space.MinY + rng.Float64()*space.Height(),
		}
		w := geom.RectFromCenter(c, 25, 20).Intersection(space)
		if w.IsEmpty() {
			continue
		}
		if _, err := FilterRefine(tree, treeBuf, objs, objBuf, shapes,
			buffer.AccessContext{QueryID: uint64(trial + 1)}, w, nil); err != nil {
			t.Fatal(err)
		}
	}
	ts := treeBuf.Stats()
	os := objBuf.Stats()
	if ts.Requests == 0 || os.Requests == 0 {
		t.Fatalf("both buffers must see traffic: tree %+v, obj %+v", ts, os)
	}
	if objPages.Stats().Reads != os.Misses {
		t.Errorf("object-page physical reads %d != misses %d", objPages.Stats().Reads, os.Misses)
	}
}
