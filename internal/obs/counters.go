package obs

import (
	"encoding/json"
	"strconv"
	"sync/atomic"
)

// Eviction-reason counter slots. The reasons are a closed set of
// constants (see obs.go); unknown strings share the trailing "other"
// slot so a misbehaving policy cannot grow the counter set unboundedly.
const (
	reasonSlotLRU = iota
	reasonSlotFIFO
	reasonSlotPriority
	reasonSlotSLRU
	reasonSlotSpatial
	reasonSlotLRUK
	reasonSlotASBOverflow
	reasonSlotASBMain
	reasonSlotOther
	numReasonSlots
)

// reasonSlotNames are the exposition labels, indexed by slot.
var reasonSlotNames = [numReasonSlots]string{
	ReasonLRU, ReasonFIFO, ReasonPriority, ReasonSLRU,
	ReasonSpatial, ReasonLRUK, ReasonASBOverflow, ReasonASBMain,
	"other",
}

// reasonSlot maps an eviction reason to its counter slot.
func reasonSlot(r string) int {
	switch r {
	case ReasonLRU:
		return reasonSlotLRU
	case ReasonFIFO:
		return reasonSlotFIFO
	case ReasonPriority:
		return reasonSlotPriority
	case ReasonSLRU:
		return reasonSlotSLRU
	case ReasonSpatial:
		return reasonSlotSpatial
	case ReasonLRUK:
		return reasonSlotLRUK
	case ReasonASBOverflow:
		return reasonSlotASBOverflow
	case ReasonASBMain:
		return reasonSlotASBMain
	}
	return reasonSlotOther
}

// Counters is a concurrency-safe event aggregator: plain atomic
// counters, cheap enough to leave attached in production. It implements
// Sink and may be shared by several producers (e.g. one Counters behind
// a buffer.LockedEngine serving many goroutines, or one per shard summed
// at scrape time). Its Snapshot is the single source of truth for both
// the expvar-style JSON (String, /vars) and the Prometheus exposition
// (/metrics): everything either exporter publishes about the event
// stream lives here.
type Counters struct {
	requests    atomic.Uint64
	hits        atomic.Uint64
	misses      atomic.Uint64
	coalesced   atomic.Uint64
	evictions   atomic.Uint64
	promotions  atomic.Uint64
	adaptations atomic.Uint64
	// candLast is the most recent ASB candidate-set size observed via
	// Adapt events (0 until the first event).
	candLast atomic.Uint64

	// byReason counts evictions per reason slot.
	byReason [numReasonSlots]atomic.Uint64
	// Adapt events split by direction of the candidate-size change.
	adaptGrow   atomic.Uint64
	adaptShrink atomic.Uint64
	adaptHold   atomic.Uint64
	// dropped counts events an async sink discarded under backpressure
	// (fed by live.AsyncSink through AddDropped).
	dropped atomic.Uint64
}

// Request implements Sink.
func (c *Counters) Request(e RequestEvent) {
	c.requests.Add(1)
	if e.Hit {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
		if e.Coalesced {
			c.coalesced.Add(1)
		}
	}
}

// Eviction implements Sink.
func (c *Counters) Eviction(e EvictionEvent) {
	c.evictions.Add(1)
	c.byReason[reasonSlot(e.Reason)].Add(1)
}

// OverflowPromotion implements Sink.
func (c *Counters) OverflowPromotion(OverflowPromotionEvent) { c.promotions.Add(1) }

// Adapt implements Sink.
func (c *Counters) Adapt(e AdaptEvent) {
	c.adaptations.Add(1)
	c.candLast.Store(uint64(e.NewC))
	switch {
	case e.NewC > e.OldC:
		c.adaptGrow.Add(1)
	case e.NewC < e.OldC:
		c.adaptShrink.Add(1)
	default:
		c.adaptHold.Add(1)
	}
}

// AddDropped records n events discarded before reaching this aggregator
// (ring-sink backpressure). Exposed so the drop count appears in the
// same snapshot as the counts it qualifies.
func (c *Counters) AddDropped(n uint64) { c.dropped.Add(n) }

// EvictionsByReason holds per-reason eviction counts, indexed by the
// reason slots above. The array (not a map) keeps Snapshot comparable
// and allocation-free to copy.
type EvictionsByReason [numReasonSlots]uint64

// Each calls f for every reason with a nonzero count, in the fixed slot
// order — the deterministic iteration both exporters rely on.
func (e EvictionsByReason) Each(f func(reason string, count uint64)) {
	for i, n := range e {
		if n > 0 {
			f(reasonSlotNames[i], n)
		}
	}
}

// MarshalJSON renders the nonzero counts as an object keyed by reason,
// in slot order.
func (e EvictionsByReason) MarshalJSON() ([]byte, error) {
	buf := []byte{'{'}
	first := true
	e.Each(func(reason string, count uint64) {
		if !first {
			buf = append(buf, ',')
		}
		first = false
		buf = strconv.AppendQuote(buf, reason)
		buf = append(buf, ':')
		buf = strconv.AppendUint(buf, count, 10)
	})
	return append(buf, '}'), nil
}

// UnmarshalJSON reverses MarshalJSON so snapshots round-trip through
// JSON (e.g. a /vars consumer decoding into Snapshot). Unknown reasons
// land in the "other" slot.
func (e *EvictionsByReason) UnmarshalJSON(data []byte) error {
	var m map[string]uint64
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	*e = EvictionsByReason{}
	for reason, count := range m {
		e[reasonSlot(reason)] += count
	}
	return nil
}

// Snapshot is a point-in-time copy of the counters, JSON-marshalable in
// the expvar style. It stays a comparable value type.
type Snapshot struct {
	Requests    uint64 `json:"requests"`
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Coalesced   uint64 `json:"coalesced_reads"`
	Evictions   uint64 `json:"evictions"`
	Promotions  uint64 `json:"overflow_promotions"`
	Adaptations uint64 `json:"adaptations"`
	Candidate   uint64 `json:"candidate_size"`

	ByReason    EvictionsByReason `json:"evictions_by_reason"`
	AdaptGrow   uint64            `json:"adapt_grow"`
	AdaptShrink uint64            `json:"adapt_shrink"`
	AdaptHold   uint64            `json:"adapt_hold"`
	Dropped     uint64            `json:"dropped_events"`
}

// HitRatio returns Hits/Requests, or 0 for an unused buffer.
func (s Snapshot) HitRatio() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Requests)
}

// Snapshot returns a point-in-time copy of the counters. Under
// concurrent producers the fields are individually, not mutually,
// consistent — the usual expvar contract.
func (c *Counters) Snapshot() Snapshot {
	s := Snapshot{
		Requests:    c.requests.Load(),
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Coalesced:   c.coalesced.Load(),
		Evictions:   c.evictions.Load(),
		Promotions:  c.promotions.Load(),
		Adaptations: c.adaptations.Load(),
		Candidate:   c.candLast.Load(),
		AdaptGrow:   c.adaptGrow.Load(),
		AdaptShrink: c.adaptShrink.Load(),
		AdaptHold:   c.adaptHold.Load(),
		Dropped:     c.dropped.Load(),
	}
	for i := range c.byReason {
		s.ByReason[i] = c.byReason[i].Load()
	}
	return s
}

// String renders the snapshot as a single JSON object (expvar.Var
// compatible), so a Counters can be published with expvar.Publish. The
// fields match /vars and /metrics exactly — one source of truth.
func (c *Counters) String() string {
	s := c.Snapshot()
	b, err := json.Marshal(struct {
		Snapshot
		HitRatio float64 `json:"hit_ratio"`
	}{s, s.HitRatio()})
	if err != nil {
		// Snapshot contains only integers and a fixed-size array; Marshal
		// cannot fail. Keep the expvar contract anyway.
		return "{}"
	}
	return string(b)
}
