package obs

import (
	"fmt"
	"sync/atomic"
)

// Counters is a concurrency-safe event aggregator: plain atomic
// counters, cheap enough to leave attached in production. It implements
// Sink and may be shared by several producers (e.g. one Counters behind
// a buffer.SyncManager serving many goroutines, or one per shard summed
// at scrape time).
type Counters struct {
	requests    atomic.Uint64
	hits        atomic.Uint64
	misses      atomic.Uint64
	evictions   atomic.Uint64
	promotions  atomic.Uint64
	adaptations atomic.Uint64
	// candLast is the most recent ASB candidate-set size observed via
	// Adapt events (0 until the first event).
	candLast atomic.Uint64
}

// Request implements Sink.
func (c *Counters) Request(e RequestEvent) {
	c.requests.Add(1)
	if e.Hit {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
}

// Eviction implements Sink.
func (c *Counters) Eviction(EvictionEvent) { c.evictions.Add(1) }

// OverflowPromotion implements Sink.
func (c *Counters) OverflowPromotion(OverflowPromotionEvent) { c.promotions.Add(1) }

// Adapt implements Sink.
func (c *Counters) Adapt(e AdaptEvent) {
	c.adaptations.Add(1)
	c.candLast.Store(uint64(e.NewC))
}

// Snapshot is a point-in-time copy of the counters, JSON-marshalable in
// the expvar style.
type Snapshot struct {
	Requests    uint64 `json:"requests"`
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Evictions   uint64 `json:"evictions"`
	Promotions  uint64 `json:"overflow_promotions"`
	Adaptations uint64 `json:"adaptations"`
	Candidate   uint64 `json:"candidate_size"`
}

// HitRatio returns Hits/Requests, or 0 for an unused buffer.
func (s Snapshot) HitRatio() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Requests)
}

// Snapshot returns a point-in-time copy of the counters. Under
// concurrent producers the fields are individually, not mutually,
// consistent — the usual expvar contract.
func (c *Counters) Snapshot() Snapshot {
	return Snapshot{
		Requests:    c.requests.Load(),
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Evictions:   c.evictions.Load(),
		Promotions:  c.promotions.Load(),
		Adaptations: c.adaptations.Load(),
		Candidate:   c.candLast.Load(),
	}
}

// String renders the snapshot as a single JSON object (expvar.Var
// compatible), so a Counters can be published with expvar.Publish.
func (c *Counters) String() string {
	s := c.Snapshot()
	return fmt.Sprintf(
		`{"requests": %d, "hits": %d, "misses": %d, "evictions": %d, "overflow_promotions": %d, "adaptations": %d, "candidate_size": %d, "hit_ratio": %.6f}`,
		s.Requests, s.Hits, s.Misses, s.Evictions, s.Promotions, s.Adaptations, s.Candidate, s.HitRatio())
}
