package obs

import (
	"encoding/json"
	"reflect"
	"testing"
)

// TestCountersSnapshotPopulatesEveryField feeds one event of each kind
// (including the PR-5 additions: coalesced misses, ring drops) and
// checks by reflection that no Snapshot field stays zero — a field
// added to Snapshot but never wired to an event or accumulator fails
// here.
func TestCountersSnapshotPopulatesEveryField(t *testing.T) {
	var c Counters
	c.Request(RequestEvent{Page: 1, Hit: true})
	c.Request(RequestEvent{Page: 2, Hit: false, Coalesced: true})
	c.Eviction(EvictionEvent{Page: 3, Reason: ReasonSLRU, Criterion: 0.5})
	c.OverflowPromotion(OverflowPromotionEvent{Page: 4})
	c.Adapt(AdaptEvent{OldC: 1, NewC: 2})
	c.Adapt(AdaptEvent{OldC: 2, NewC: 1})
	c.Adapt(AdaptEvent{OldC: 1, NewC: 1})
	c.AddDropped(5)

	snap := c.Snapshot()
	v := reflect.ValueOf(snap)
	for i := 0; i < v.NumField(); i++ {
		name := v.Type().Field(i).Name
		switch f := v.Field(i); f.Kind() {
		case reflect.Uint64:
			if f.Uint() == 0 {
				t.Errorf("Snapshot.%s = 0 after an event mix covering every kind", name)
			}
		case reflect.Array: // ByReason
			nonzero := false
			for j := 0; j < f.Len(); j++ {
				nonzero = nonzero || f.Index(j).Uint() != 0
			}
			if !nonzero {
				t.Errorf("Snapshot.%s has no nonzero slot", name)
			}
		default:
			t.Errorf("Snapshot.%s has unexpected kind %s — extend this test", name, f.Kind())
		}
	}
}

// TestSnapshotJSONRoundTripAllFields fills every Snapshot field with a
// distinct value by reflection and asserts the JSON round-trip is the
// identity — so a field added without a (working) JSON tag, or an
// EvictionsByReason marshal regression, cannot slip through.
func TestSnapshotJSONRoundTripAllFields(t *testing.T) {
	var snap Snapshot
	v := reflect.ValueOf(&snap).Elem()
	for i := 0; i < v.NumField(); i++ {
		switch f := v.Field(i); f.Kind() {
		case reflect.Uint64:
			f.SetUint(uint64(1000 + i))
		case reflect.Array:
			// Every reason slot nonzero: MarshalJSON omits zero counts,
			// so a zero slot would not round-trip observably.
			for j := 0; j < f.Len(); j++ {
				f.Index(j).SetUint(uint64(j + 1))
			}
		default:
			t.Fatalf("Snapshot.%s has unexpected kind %s — extend this test", v.Type().Field(i).Name, f.Kind())
		}
	}

	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != snap {
		t.Errorf("JSON round-trip changed the snapshot:\n got %+v\nwant %+v", back, snap)
	}

	// Every field must map to its own top-level key (no duplicate or
	// missing json tags).
	var keys map[string]json.RawMessage
	if err := json.Unmarshal(data, &keys); err != nil {
		t.Fatal(err)
	}
	if len(keys) != v.NumField() {
		t.Errorf("marshaled snapshot has %d keys, want %d (one per field): %v", len(keys), v.NumField(), keys)
	}
}
