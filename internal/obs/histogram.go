package obs

import (
	"math/bits"
	"sync/atomic"
)

// Histogram is a lock-free log-linear histogram for non-negative int64
// values (request latencies in nanoseconds, fixed-point criterion
// values). Recording is one atomic add per value plus count/sum upkeep —
// cheap enough to sit on the request hot path of a live buffer — and
// snapshots are mergeable, so per-shard histograms can be summed at
// scrape time.
//
// Bucketing follows the HDR scheme: values below histSub land in exact
// unit buckets; above that, each power-of-two octave is split into
// histSub linear sub-buckets, bounding the relative quantile error by
// 1/histSub (12.5%). The bucket layout is fixed at compile time, so two
// snapshots are always structurally compatible.
//
// Histogram implements LatencyRecorder (RecordLatency == Observe), so it
// can be attached wherever the buffer manager publishes request timings,
// and (via the embedded NopSink) satisfies Sink, so a latency-only
// histogram can ride in a Tee next to event-consuming sinks. The zero
// value is ready to use.
type Histogram struct {
	NopSink

	count   atomic.Uint64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Uint64
}

const (
	// histSubBits is log2 of the sub-buckets per octave.
	histSubBits = 3
	histSub     = 1 << histSubBits
	// histBuckets covers all of int64: histSub exact unit buckets plus
	// histSub sub-buckets for each octave from histSubBits to 62.
	histBuckets = (63-histSubBits)*histSub + histSub
)

// histBucketIndex maps a non-negative value to its bucket.
func histBucketIndex(v int64) int {
	if v < histSub {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1
	sub := int((uint64(v) >> (exp - histSubBits)) & (histSub - 1))
	return (exp-histSubBits+1)*histSub + sub
}

// histBucketLow returns the smallest value mapping to bucket idx.
func histBucketLow(idx int) int64 {
	if idx < histSub {
		return int64(idx)
	}
	exp := histSubBits + idx/histSub - 1
	sub := int64(idx % histSub)
	return int64(1)<<exp + sub<<(exp-histSubBits)
}

// histBucketHigh returns the largest value mapping to bucket idx.
func histBucketHigh(idx int) int64 {
	if idx < histSub {
		return int64(idx)
	}
	exp := histSubBits + idx/histSub - 1
	return histBucketLow(idx) + int64(1)<<(exp-histSubBits) - 1
}

// Observe records one value. Negative values are clamped to 0.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[histBucketIndex(v)].Add(1)
}

// RecordLatency implements LatencyRecorder.
func (h *Histogram) RecordLatency(nanos int64) { h.Observe(nanos) }

// Count returns the number of recorded values.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Snapshot returns a point-in-time copy of the histogram. Under
// concurrent writers the copy is per-bucket, not mutually, consistent
// (the expvar contract); quantiles computed from it are approximate by
// at most the in-flight writes.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		s.counts[i] = h.buckets[i].Load()
	}
	return s
}

// HistSnapshot is an immutable copy of a Histogram, safe to read from
// any goroutine and to merge with other snapshots.
type HistSnapshot struct {
	Count  uint64
	Sum    int64
	counts [histBuckets]uint64
}

// Merge returns the element-wise sum of two snapshots.
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	out := s
	out.Count += o.Count
	out.Sum += o.Sum
	for i, c := range o.counts {
		out.counts[i] += c
	}
	return out
}

// Mean returns the mean recorded value, or 0 for an empty snapshot.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an estimate of the q-quantile (q in [0,1]) of the
// recorded values, interpolating linearly within the matched bucket.
// Returns 0 for an empty snapshot.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(s.Count)
	if target < 1 {
		target = 1
	}
	cum := uint64(0)
	for i, c := range s.counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= target {
			low, high := histBucketLow(i), histBucketHigh(i)
			frac := (target - float64(cum)) / float64(c)
			return float64(low) + frac*float64(high-low)
		}
		cum += c
	}
	// Unreachable unless the snapshot is torn; fall back to the largest
	// occupied bucket's upper edge.
	for i := histBuckets - 1; i >= 0; i-- {
		if s.counts[i] > 0 {
			return float64(histBucketHigh(i))
		}
	}
	return 0
}

// CountAtMost returns how many recorded values are certainly ≤ v: the
// total count of buckets whose upper edge does not exceed v. Values in
// the bucket straddling v are excluded, so cumulative counts derived
// from a bound ladder stay monotone (the Prometheus histogram contract).
func (s HistSnapshot) CountAtMost(v int64) uint64 {
	if v < 0 {
		return 0
	}
	cum := uint64(0)
	for i, c := range s.counts {
		if c == 0 {
			continue
		}
		if histBucketHigh(i) > v {
			break
		}
		cum += c
	}
	return cum
}

// Max returns the upper edge of the highest occupied bucket (an upper
// bound on the largest recorded value), or 0 for an empty snapshot.
func (s HistSnapshot) Max() int64 {
	for i := histBuckets - 1; i >= 0; i-- {
		if s.counts[i] > 0 {
			return histBucketHigh(i)
		}
	}
	return 0
}
