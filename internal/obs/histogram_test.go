package obs

import (
	"math"
	"sync"
	"testing"
)

func TestHistBucketLayout(t *testing.T) {
	// Buckets must tile the value space contiguously: every value maps to
	// a bucket whose [low, high] range contains it, and consecutive
	// buckets touch.
	for idx := 0; idx < histBuckets; idx++ {
		low, high := histBucketLow(idx), histBucketHigh(idx)
		if low > high {
			t.Fatalf("bucket %d: low %d > high %d", idx, low, high)
		}
		if got := histBucketIndex(low); got != idx {
			t.Fatalf("bucket %d: low %d maps to bucket %d", idx, low, got)
		}
		if got := histBucketIndex(high); got != idx {
			t.Fatalf("bucket %d: high %d maps to bucket %d", idx, high, got)
		}
		if idx > 0 && histBucketHigh(idx-1)+1 != low {
			t.Fatalf("gap between bucket %d (high %d) and %d (low %d)",
				idx-1, histBucketHigh(idx-1), idx, low)
		}
	}
	if got := histBucketIndex(math.MaxInt64); got != histBuckets-1 {
		t.Errorf("MaxInt64 maps to bucket %d, want %d", got, histBuckets-1)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 1000 values 1..1000: quantiles are known up to the 12.5% bucket
	// resolution.
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 1000 || s.Sum != 500500 {
		t.Fatalf("count/sum = %d/%d", s.Count, s.Sum)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.5, 500}, {0.95, 950}, {0.99, 990}, {1.0, 1000},
	} {
		got := s.Quantile(tc.q)
		if got < tc.want*0.85 || got > tc.want*1.15 {
			t.Errorf("q%.2f = %.0f, want within 15%% of %.0f", tc.q, got, tc.want)
		}
	}
	if s.Mean() < 480 || s.Mean() > 520 {
		t.Errorf("mean = %f, want ≈500.5", s.Mean())
	}
	if max := s.Max(); max < 1000 {
		t.Errorf("max = %d, want ≥ 1000", max)
	}

	// CountAtMost is monotone and bracketed by the true CDF at bucket
	// edges.
	prev := uint64(0)
	for _, v := range []int64{0, 1, 10, 100, 500, 1000, 1 << 20} {
		c := s.CountAtMost(v)
		if c < prev {
			t.Fatalf("CountAtMost(%d) = %d < previous %d (not monotone)", v, c, prev)
		}
		if c > 1000 {
			t.Fatalf("CountAtMost(%d) = %d > count", v, c)
		}
		prev = c
	}
	if s.CountAtMost(1<<20) != 1000 {
		t.Errorf("CountAtMost above max = %d, want 1000", s.CountAtMost(1<<20))
	}
}

func TestHistogramEmptyAndNegative(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Quantile(0.5) != 0 || s.Mean() != 0 || s.Max() != 0 {
		t.Error("empty snapshot should report zeros")
	}
	h.Observe(-5) // clamped to 0
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Errorf("negative observation quantile = %f, want 0", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for v := int64(0); v < 100; v++ {
		a.Observe(v)
		b.Observe(v + 100)
	}
	m := a.Snapshot().Merge(b.Snapshot())
	if m.Count != 200 {
		t.Fatalf("merged count = %d", m.Count)
	}
	if q := m.Quantile(0.5); q < 80 || q > 120 {
		t.Errorf("merged median = %f, want ≈100", q)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const goroutines, per = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(g*per + i))
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*per {
		t.Errorf("count = %d, want %d", s.Count, goroutines*per)
	}
	total := s.CountAtMost(math.MaxInt64)
	if total != goroutines*per {
		t.Errorf("bucket sum = %d, want %d", total, goroutines*per)
	}
}

func TestHistogramImplementsLatencyRecorder(t *testing.T) {
	var h Histogram
	var lr LatencyRecorder = &h
	lr.RecordLatency(42)
	if h.Count() != 1 {
		t.Error("RecordLatency did not observe")
	}
}
