package obs

import (
	"bufio"
	"io"
	"strconv"
)

// JSONLSink serializes every event as one JSON object per line, for
// post-hoc analysis with standard tooling (jq, pandas). Lines are
// hand-assembled with strconv — the event structs are flat and fixed, so
// reflection buys nothing — and buffered; call Flush (or Close) before
// reading the output. Not safe for concurrent use.
//
// Line formats (field order is fixed):
//
//	{"t":"req","page":12,"q":3,"hit":true}
//	{"t":"evict","page":9,"reason":"slru","crit":0.01250,"rank":4}
//	{"t":"promote","page":7,"bs":2,"bl":5}
//	{"t":"adapt","old":12,"new":13}
//	{"t":"mark","label":"phase 2"}
//
// Misses that shared another request's physical read (singleflight or
// write-back-queue hits on an async pool) carry `,"coalesced":true`
// after the hit field; the field is omitted otherwise. Events from a
// sharded pool additionally carry `,"shard":N` before the closing
// brace; shard 0 (which includes every unsharded pool) is omitted, so
// single-pool streams keep the exact format above.
type JSONLSink struct {
	w   *bufio.Writer
	c   io.Closer // non-nil if the sink owns the underlying writer
	buf []byte
	err error
}

// NewJSONLSink returns a sink writing to w. The caller owns w; call
// Flush before using its contents.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: bufio.NewWriterSize(w, 1<<16), buf: make([]byte, 0, 128)}
}

// NewJSONLSinkCloser is NewJSONLSink for writers the sink should close
// (files): Close flushes and closes.
func NewJSONLSinkCloser(wc io.WriteCloser) *JSONLSink {
	s := NewJSONLSink(wc)
	s.c = wc
	return s
}

// Err returns the first write error, if any. Event methods cannot return
// errors (the Sink interface is hot-path); errors are sticky and
// surfaced here and by Flush/Close.
func (s *JSONLSink) Err() error { return s.err }

// Flush writes buffered lines through to the underlying writer.
func (s *JSONLSink) Flush() error {
	if s.err != nil {
		return s.err
	}
	s.err = s.w.Flush()
	return s.err
}

// Close flushes and, if the sink owns the writer, closes it.
func (s *JSONLSink) Close() error {
	err := s.Flush()
	if s.c != nil {
		if cerr := s.c.Close(); err == nil {
			err = cerr
		}
		s.c = nil
	}
	return err
}

// appendShard appends the optional shard field (omitted at zero).
func appendShard(b []byte, shard int) []byte {
	if shard == 0 {
		return b
	}
	b = append(b, `,"shard":`...)
	return strconv.AppendInt(b, int64(shard), 10)
}

// emit writes one completed line from s.buf.
func (s *JSONLSink) emit() {
	if s.err != nil {
		return
	}
	s.buf = append(s.buf, '\n')
	_, s.err = s.w.Write(s.buf)
}

// Request implements Sink.
func (s *JSONLSink) Request(e RequestEvent) {
	b := s.buf[:0]
	b = append(b, `{"t":"req","page":`...)
	b = strconv.AppendUint(b, uint64(e.Page), 10)
	b = append(b, `,"q":`...)
	b = strconv.AppendUint(b, e.QueryID, 10)
	b = append(b, `,"hit":`...)
	b = strconv.AppendBool(b, e.Hit)
	if e.Coalesced {
		b = append(b, `,"coalesced":true`...)
	}
	b = appendShard(b, e.Shard)
	b = append(b, '}')
	s.buf = b
	s.emit()
}

// Eviction implements Sink.
func (s *JSONLSink) Eviction(e EvictionEvent) {
	b := s.buf[:0]
	b = append(b, `{"t":"evict","page":`...)
	b = strconv.AppendUint(b, uint64(e.Page), 10)
	b = append(b, `,"reason":"`...)
	b = append(b, e.Reason...)
	b = append(b, `","crit":`...)
	b = strconv.AppendFloat(b, e.Criterion, 'g', -1, 64)
	b = append(b, `,"rank":`...)
	b = strconv.AppendInt(b, int64(e.LRURank), 10)
	b = appendShard(b, e.Shard)
	b = append(b, '}')
	s.buf = b
	s.emit()
}

// OverflowPromotion implements Sink.
func (s *JSONLSink) OverflowPromotion(e OverflowPromotionEvent) {
	b := s.buf[:0]
	b = append(b, `{"t":"promote","page":`...)
	b = strconv.AppendUint(b, uint64(e.Page), 10)
	b = append(b, `,"bs":`...)
	b = strconv.AppendInt(b, int64(e.BetterSpatial), 10)
	b = append(b, `,"bl":`...)
	b = strconv.AppendInt(b, int64(e.BetterLRU), 10)
	b = appendShard(b, e.Shard)
	b = append(b, '}')
	s.buf = b
	s.emit()
}

// Adapt implements Sink.
func (s *JSONLSink) Adapt(e AdaptEvent) {
	b := s.buf[:0]
	b = append(b, `{"t":"adapt","old":`...)
	b = strconv.AppendInt(b, int64(e.OldC), 10)
	b = append(b, `,"new":`...)
	b = strconv.AppendInt(b, int64(e.NewC), 10)
	b = appendShard(b, e.Shard)
	b = append(b, '}')
	s.buf = b
	s.emit()
}

// Mark writes an out-of-band marker line (e.g. a run or phase boundary),
// so one stream can carry several labeled runs. The label is escaped.
// Mark flushes the buffered writer: combination boundaries are rare and
// load-bearing, so a reader tailing a live events file observes them
// (and everything before them) promptly instead of waiting for the 64 KiB
// buffer to fill.
func (s *JSONLSink) Mark(label string) {
	b := s.buf[:0]
	b = append(b, `{"t":"mark","label":`...)
	b = strconv.AppendQuote(b, label)
	b = append(b, '}')
	s.buf = b
	s.emit()
	if s.err == nil {
		s.err = s.w.Flush()
	}
}
