package live

import (
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/page"
)

// composeCollector records everything the drainer delivers. It is only
// ever touched by the AsyncSink's drainer goroutine, so plain fields
// suffice — that single-consumer guarantee is part of what this test
// exercises under -race.
type composeCollector struct {
	reqs   []obs.RequestEvent
	evicts []obs.EvictionEvent
}

func (c *composeCollector) Request(e obs.RequestEvent)                   { c.reqs = append(c.reqs, e) }
func (c *composeCollector) Eviction(e obs.EvictionEvent)                 { c.evicts = append(c.evicts, e) }
func (c *composeCollector) OverflowPromotion(obs.OverflowPromotionEvent) {}
func (c *composeCollector) Adapt(obs.AdaptEvent)                         {}

// TestComposedSinkShardsAndSampling drives the production composition
// TagShard(SamplingSink(AsyncSink(collector))) from one goroutine per
// shard and asserts two invariants survive concurrent emit:
//
//   - exact sampling: the shared SamplingSink's atomic counter admits
//     exactly 1 in every of the offered Request events, regardless of
//     how the emitting goroutines interleave;
//   - tag integrity: every delivered event carries the shard index of
//     the goroutine that emitted it (checked against the query ID each
//     goroutine encodes), i.e. tags are stamped per-wrapper, never
//     smeared across shards.
//
// Evictions bypass sampling by design, so all of them must arrive.
func TestComposedSinkShardsAndSampling(t *testing.T) {
	const (
		shards    = 8
		perShard  = 4000
		every     = 16
		evictions = 25
	)
	col := &composeCollector{}
	// Ring sized for the whole emission: this test asserts exact counts,
	// so drops must be impossible, not merely unlikely.
	async := NewAsyncSink(col, shards*(perShard+evictions), nil)
	sampled := obs.NewSamplingSink(async, every)

	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		tagged := obs.TagShard(sampled, s)
		wg.Add(1)
		go func(s int, sink obs.Sink) {
			defer wg.Done()
			for i := 0; i < perShard; i++ {
				sink.Request(obs.RequestEvent{
					Page:    page.ID(i),
					QueryID: uint64(s), // encode the emitter for tag checks
					Hit:     i%2 == 0,
				})
			}
			for i := 0; i < evictions; i++ {
				sink.Eviction(obs.EvictionEvent{Page: page.ID(i), Reason: "test"})
			}
		}(s, tagged)
	}
	wg.Wait()
	if err := async.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	offered := uint64(shards * perShard)
	if seen := sampled.(*obs.SamplingSink).Seen(); seen != offered {
		t.Errorf("sampler saw %d requests, want %d", seen, offered)
	}
	if want := int(offered) / every; len(col.reqs) != want {
		t.Errorf("delivered %d sampled requests, want exactly %d", len(col.reqs), want)
	}
	if want := shards * evictions; len(col.evicts) != want {
		t.Errorf("delivered %d evictions, want %d (evictions bypass sampling)", len(col.evicts), want)
	}
	for _, e := range col.reqs {
		if uint64(e.Shard) != e.QueryID {
			t.Fatalf("request tagged shard=%d but emitted by shard %d", e.Shard, e.QueryID)
		}
	}
	perShardEvicts := make(map[int]int)
	for _, e := range col.evicts {
		perShardEvicts[e.Shard]++
	}
	for s := 0; s < shards; s++ {
		if perShardEvicts[s] != evictions {
			t.Errorf("shard %d delivered %d evictions, want %d", s, perShardEvicts[s], evictions)
		}
	}
	if async.Dropped() != 0 {
		t.Errorf("ring dropped %d events despite full-size capacity", async.Dropped())
	}
}
