package live

import (
	"strconv"

	"repro/internal/obs/tracing"
)

// AddContentionGauges registers shard-labeled lock-contention gauges fed
// by a tracing.Contention profiler (attach the profiler to the pool with
// Router.EnableContention or LockedEngine.EnableContention). Each
// shard exposes its cumulative lock-wait time, the instantaneous queue
// depth on its lock, and its completed acquisitions — the aggregate view
// of the per-request LockWait field of trace spans, answering "which
// shard is the hot one" without sampling.
func (s *Service) AddContentionGauges(c *tracing.Contention) {
	for i := 0; i < c.Shards(); i++ {
		labels := `shard="` + strconv.Itoa(i) + `"`
		s.AddLabeledGauge("spatialbuf_shard_lock_wait_seconds_total", labels,
			"Cumulative shard-lock wait time of buffer requests.",
			func() float64 { return float64(c.WaitNanos(i)) / 1e9 })
		s.AddLabeledGauge("spatialbuf_shard_lock_waiters", labels,
			"Goroutines currently acquiring (queue depth of) the shard lock.",
			func() float64 { return float64(c.Waiters(i)) })
		s.AddLabeledGauge("spatialbuf_shard_lock_acquisitions_total", labels,
			"Completed shard-lock acquisitions on the buffer request path.",
			func() float64 { return float64(c.Acquisitions(i)) })
	}
}

// AddTracerGauges registers the tracer's sampling throughput: how many
// requests were offered to the sampler (spans recorded = seen divided by
// the sampling interval, steady-state).
func (s *Service) AddTracerGauges(t *tracing.Tracer) {
	s.AddGauge("spatialbuf_trace_requests_seen_total",
		"Buffer requests offered to the trace sampler.",
		func() float64 { return float64(t.Seen()) })
	s.AddGauge("spatialbuf_trace_sample_interval",
		"Trace sampling interval (1 = every request).",
		func() float64 { return float64(t.SampleEvery()) })
}

// AddAsyncSinkGauges registers the health gauges of an AsyncSink ring:
// delivered and dropped event counts plus the instantaneous ring depth
// and its capacity. A depth pinned near capacity (or a growing dropped
// count) means the drain side — usually a JSONL writer — cannot keep up
// with the event rate.
func (s *Service) AddAsyncSinkGauges(a *AsyncSink) {
	s.AddGauge("spatialbuf_async_delivered_events_total",
		"Events the async ring sink delivered downstream.",
		func() float64 { return float64(a.Delivered()) })
	s.AddGauge("spatialbuf_async_dropped_events_total",
		"Events the async ring sink dropped because the ring was full.",
		func() float64 { return float64(a.Dropped()) })
	s.AddGauge("spatialbuf_async_ring_depth_events",
		"Events currently queued in the async ring.",
		func() float64 { return float64(a.Depth()) })
	s.AddGauge("spatialbuf_async_ring_capacity_events",
		"Capacity of the async ring.",
		func() float64 { return float64(a.Capacity()) })
}
