// Package live turns the offline event stream of package obs into a
// serving-grade metrics layer: an asynchronous bounded sink that
// decouples event consumers from the request path, and an HTTP service
// exposing Prometheus metrics, an expvar-style JSON snapshot, a health
// probe, an SSE stream of ASB adaptation events and a minimal dashboard.
//
// The overhead contract extends the one in package obs: with NopSink the
// hot path stays allocation-free; with an AsyncSink in front of an
// expensive consumer (JSONL encoding, network export) the hot path pays
// one non-blocking buffered-channel send per event — O(1), never waiting
// on I/O — and saturation is surfaced as an explicit drop count instead
// of backpressure.
package live

import (
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// eventKind discriminates the ring's event union.
type eventKind uint8

const (
	kindRequest eventKind = iota
	kindEviction
	kindPromotion
	kindAdapt
	numKinds
)

// ringEvent is the fixed-size union carried by the ring. Carrying the
// event structs by value keeps the producer side allocation-free.
type ringEvent struct {
	kind  eventKind
	req   obs.RequestEvent
	evict obs.EvictionEvent
	prom  obs.OverflowPromotionEvent
	adapt obs.AdaptEvent
}

// AsyncSink is a fixed-capacity multi-producer, single-consumer ring
// between event producers (the buffer manager and its policy, possibly
// many goroutines behind a LockedEngine) and one downstream sink drained
// by a dedicated goroutine. Producers never block: when the ring is
// full, the event is dropped and counted. The downstream sink is only
// ever touched by the drainer goroutine, so single-goroutine sinks
// (JSONLSink, WindowTracker) become safe behind an AsyncSink.
//
// Close drains the ring, stops the goroutine and flushes/closes the
// downstream sink if it supports it. Producers must stop emitting before
// Close is called (detach the sink from the manager first); events
// emitted after Close are dropped and counted, not delivered.
type AsyncSink struct {
	ch   chan ringEvent
	down obs.Sink

	closed    atomic.Bool
	quit      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
	closeErr  error

	delivered atomic.Uint64
	dropped   atomic.Uint64
	byKind    [numKinds]atomic.Uint64

	// dropHook, when set, is invoked with 1 for every dropped event —
	// typically obs.(*Counters).AddDropped, so the drop count appears in
	// the same snapshot as the counters it qualifies.
	dropHook func(n uint64)
}

// DefaultRingCapacity is the AsyncSink capacity used when the caller
// passes capacity ≤ 0: large enough to ride out multi-millisecond
// downstream stalls at millions of events per second, small enough to
// bound memory to a few MiB.
const DefaultRingCapacity = 16384

// NewAsyncSink starts the drainer goroutine over a ring of the given
// capacity (≤ 0 selects DefaultRingCapacity) in front of down. dropHook
// may be nil; see AsyncSink.
func NewAsyncSink(down obs.Sink, capacity int, dropHook func(n uint64)) *AsyncSink {
	if down == nil {
		down = obs.NopSink{}
	}
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	s := &AsyncSink{
		ch:       make(chan ringEvent, capacity),
		down:     down,
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
		dropHook: dropHook,
	}
	go s.drain()
	return s
}

// drain dispatches ring events to the downstream sink until Close, then
// empties what is left in the ring.
func (s *AsyncSink) drain() {
	defer close(s.done)
	for {
		select {
		case e := <-s.ch:
			s.dispatch(e)
		case <-s.quit:
			for {
				select {
				case e := <-s.ch:
					s.dispatch(e)
				default:
					return
				}
			}
		}
	}
}

func (s *AsyncSink) dispatch(e ringEvent) {
	switch e.kind {
	case kindRequest:
		s.down.Request(e.req)
	case kindEviction:
		s.down.Eviction(e.evict)
	case kindPromotion:
		s.down.OverflowPromotion(e.prom)
	case kindAdapt:
		s.down.Adapt(e.adapt)
	}
	s.delivered.Add(1)
}

// send enqueues without blocking, counting a drop when the ring is full
// or the sink closed.
func (s *AsyncSink) send(e ringEvent) {
	if s.closed.Load() {
		s.drop(e.kind)
		return
	}
	select {
	case s.ch <- e:
	default:
		s.drop(e.kind)
	}
}

func (s *AsyncSink) drop(k eventKind) {
	s.dropped.Add(1)
	s.byKind[k].Add(1)
	if s.dropHook != nil {
		s.dropHook(1)
	}
}

// Request implements obs.Sink.
func (s *AsyncSink) Request(e obs.RequestEvent) {
	s.send(ringEvent{kind: kindRequest, req: e})
}

// Eviction implements obs.Sink.
func (s *AsyncSink) Eviction(e obs.EvictionEvent) {
	s.send(ringEvent{kind: kindEviction, evict: e})
}

// OverflowPromotion implements obs.Sink.
func (s *AsyncSink) OverflowPromotion(e obs.OverflowPromotionEvent) {
	s.send(ringEvent{kind: kindPromotion, prom: e})
}

// Adapt implements obs.Sink.
func (s *AsyncSink) Adapt(e obs.AdaptEvent) {
	s.send(ringEvent{kind: kindAdapt, adapt: e})
}

// Delivered returns how many events reached the downstream sink.
func (s *AsyncSink) Delivered() uint64 { return s.delivered.Load() }

// Dropped returns how many events were discarded because the ring was
// full (or the sink closed).
func (s *AsyncSink) Dropped() uint64 { return s.dropped.Load() }

// DroppedRequests returns the Request-event share of Dropped — the count
// that matters for interpreting sampled capture files.
func (s *AsyncSink) DroppedRequests() uint64 { return s.byKind[kindRequest].Load() }

// Depth returns the number of events currently queued in the ring — the
// instantaneous backlog the drainer has yet to deliver. A depth pinned
// near Capacity means the downstream sink cannot keep up.
func (s *AsyncSink) Depth() int { return len(s.ch) }

// Capacity returns the ring capacity in events.
func (s *AsyncSink) Capacity() int { return cap(s.ch) }

// Close drains remaining events, stops the drainer and flushes (and, if
// owned, closes) the downstream sink. Idempotent; returns the first
// downstream finalization error. Producers must be detached first.
func (s *AsyncSink) Close() error {
	s.closeOnce.Do(func() {
		s.closed.Store(true)
		close(s.quit)
		<-s.done
		switch d := s.down.(type) {
		case interface{ Close() error }:
			s.closeErr = d.Close()
		case interface{ Flush() error }:
			s.closeErr = d.Flush()
		}
	})
	return s.closeErr
}
