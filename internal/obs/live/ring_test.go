package live_test

import (
	"sync"
	"testing"
	"time"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/obs/live"
	"repro/internal/page"
	"repro/internal/storage"
)

// newStore creates a MemStore with n single-entry pages (IDs 1..n).
func newStore(t testing.TB, n int) *storage.MemStore {
	t.Helper()
	s := storage.NewMemStore()
	for i := 0; i < n; i++ {
		id := s.Allocate()
		p := page.New(id, page.TypeData, 0, 1)
		p.Append(page.Entry{MBR: geom.NewRect(0, 0, float64(i+1), 1), ObjID: uint64(i)})
		p.Recompute()
		if err := s.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	s.ResetStats()
	return s
}

func TestAsyncSinkDeliversInOrder(t *testing.T) {
	var down obs.Counters
	s := live.NewAsyncSink(&down, 128, nil)
	for i := 0; i < 50; i++ {
		s.Request(obs.RequestEvent{Page: page.ID(i + 1), Hit: i%2 == 0})
	}
	s.Eviction(obs.EvictionEvent{Page: 1, Reason: obs.ReasonLRU})
	s.Adapt(obs.AdaptEvent{OldC: 3, NewC: 4})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	snap := down.Snapshot()
	if snap.Requests != 50 || snap.Hits != 25 || snap.Evictions != 1 || snap.Adaptations != 1 {
		t.Errorf("downstream snapshot = %+v", snap)
	}
	if s.Dropped() != 0 {
		t.Errorf("dropped = %d, want 0 (ring larger than burst)", s.Dropped())
	}
	if s.Delivered() != 52 {
		t.Errorf("delivered = %d, want 52", s.Delivered())
	}
	// Close is idempotent and events after Close are counted as drops.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s.Request(obs.RequestEvent{Page: 99})
	if s.Dropped() != 1 || s.DroppedRequests() != 1 {
		t.Errorf("post-close drops = %d/%d, want 1/1", s.Dropped(), s.DroppedRequests())
	}
}

// slowSink stalls on every event, forcing ring saturation.
type slowSink struct {
	obs.NopSink
	delay time.Duration
	seen  int
}

func (s *slowSink) Request(obs.RequestEvent) {
	time.Sleep(s.delay)
	s.seen++
}

func TestAsyncSinkDropAccountingUnderSaturation(t *testing.T) {
	down := &slowSink{delay: time.Millisecond}
	var hooked uint64
	var hookMu sync.Mutex
	s := live.NewAsyncSink(down, 4, func(n uint64) {
		hookMu.Lock()
		hooked += n
		hookMu.Unlock()
	})
	const emitted = 400
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < emitted/4; i++ {
				s.Request(obs.RequestEvent{Page: 1})
			}
		}()
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Dropped() == 0 {
		t.Error("expected drops with a 4-slot ring and a 1ms/event consumer")
	}
	if got := s.Delivered() + s.Dropped(); got != emitted {
		t.Errorf("delivered %d + dropped %d = %d, want %d (exact accounting)",
			s.Delivered(), s.Dropped(), got, emitted)
	}
	if uint64(down.seen) != s.Delivered() {
		t.Errorf("downstream saw %d, sink says delivered %d", down.seen, s.Delivered())
	}
	hookMu.Lock()
	defer hookMu.Unlock()
	if hooked != s.Dropped() {
		t.Errorf("drop hook counted %d, sink counted %d", hooked, s.Dropped())
	}
}

// TestSyncManagerWithAsyncRingSink is the satellite race test: several
// goroutines drive one SyncManager with the ring sink attached (run
// under -race in CI). With a ring at least as large as the event volume
// there must be no drops and the downstream counters must agree exactly
// with the manager's stats.
func TestSyncManagerWithAsyncRingSink(t *testing.T) {
	const pages, frames = 64, 16
	const goroutines, perG = 8, 2000

	store := newStore(t, pages)
	pol := core.NewASB(frames, core.DefaultASBOptions())
	m, err := buffer.NewEngine(store, pol, frames)
	if err != nil {
		t.Fatal(err)
	}
	sm := buffer.Lock(m)

	var down obs.Counters
	// Capacity comfortably above the worst-case event volume (each
	// request can emit a request + eviction + promotion + adapt event).
	s := live.NewAsyncSink(&down, 4*goroutines*perG, nil)
	var direct obs.Counters // exact, synchronous control
	sm.SetSink(obs.Tee(&direct, s))

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				id := page.ID((g*7+i*13)%pages + 1)
				if _, err := sm.Get(id, buffer.AccessContext{QueryID: uint64(g)<<32 | uint64(i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	sm.SetSink(nil) // detach producers before Close, per the contract
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	if s.Dropped() != 0 {
		t.Errorf("dropped = %d, want 0 at this rate and capacity", s.Dropped())
	}
	stats := sm.Stats()
	snap := down.Snapshot()
	if snap.Requests != stats.Requests || snap.Hits != stats.Hits || snap.Misses != stats.Misses {
		t.Errorf("async counters %+v disagree with stats %+v", snap, stats)
	}
	if snap != direct.Snapshot() {
		t.Errorf("async snapshot %+v != synchronous control %+v", snap, direct.Snapshot())
	}
	if snap.Evictions != stats.Evictions {
		t.Errorf("evictions: async %d, stats %d", snap.Evictions, stats.Evictions)
	}
}
