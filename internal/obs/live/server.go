package live

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"repro/internal/obs"
	"repro/internal/obs/shadow"
)

// critScale converts the float64 spatial criterion into the fixed-point
// int64 domain of obs.Histogram (nano-units, matching the precision the
// JSONL export carries).
const critScale = 1e9

// ASBGauges is the slice of core.ASB the live layer reads for gauges:
// the atomic mirrors of the candidate-set size and overflow occupancy
// plus the static part capacities. Defined here (not in core) so the
// live layer stays policy-agnostic — any adaptive policy exposing these
// becomes scrapeable.
type ASBGauges interface {
	LiveCandidateSize() int
	LiveOverflowLen() int
	OverflowCapacity() int
	MainCapacity() int
}

// Gauge is a named instantaneous value scraped at request time. Value
// must be safe to call from any goroutine. Labels is an optional
// Prometheus label set rendered inside the braces (e.g. `shard="3"`);
// several gauges may share a Name with distinct Labels, forming one
// labeled metric family (the per-shard gauges of a sharded pool).
type Gauge struct {
	Name   string
	Labels string
	Help   string
	Value  func() float64
}

// key is the registry identity: one gauge per (name, label set).
func (g Gauge) key() string {
	if g.Labels == "" {
		return g.Name
	}
	return g.Name + "{" + g.Labels + "}"
}

// Service aggregates the live metrics of one buffer stack — exact
// counters, a request-latency histogram, an eviction-criterion histogram
// and an Adapt-event broadcaster — and serves them over HTTP:
//
//	/metrics       Prometheus text exposition format
//	/vars          expvar-style JSON snapshot (same numbers as /metrics)
//	/healthz       liveness probe
//	/events/ctraj  server-sent events: live ASB candidate-size trajectory
//	/events/shadow server-sent events: shadow-cache what-if snapshots
//	/              minimal self-contained HTML dashboard
//
// Attach Sink() to a manager (or tee it with capture sinks); the sink is
// concurrency-safe and implements obs.LatencyRecorder, so the manager
// times requests into the latency histogram.
type Service struct {
	Counters  *obs.Counters
	Latency   *obs.Histogram
	Criterion *obs.Histogram
	Traj      *Broadcaster

	mu         sync.Mutex
	gauges     []Gauge
	named      map[string]bool
	shadowBank *shadow.Bank
}

// NewService returns a Service with fresh aggregators.
func NewService() *Service {
	return &Service{
		Counters:  &obs.Counters{},
		Latency:   &obs.Histogram{},
		Criterion: &obs.Histogram{},
		Traj:      NewBroadcaster(),
		named:     make(map[string]bool),
	}
}

// serviceSink fans events into the service's aggregators. A value type:
// attaching it costs one interface allocation once, never per event.
type serviceSink struct{ s *Service }

func (ss serviceSink) Request(e obs.RequestEvent) {
	ss.s.Counters.Request(e)
	ss.s.Traj.Request(e)
}

func (ss serviceSink) Eviction(e obs.EvictionEvent) {
	ss.s.Counters.Eviction(e)
	ss.s.Criterion.Observe(int64(e.Criterion*critScale + 0.5))
}

func (ss serviceSink) OverflowPromotion(e obs.OverflowPromotionEvent) {
	ss.s.Counters.OverflowPromotion(e)
}

func (ss serviceSink) Adapt(e obs.AdaptEvent) {
	ss.s.Counters.Adapt(e)
	ss.s.Traj.Adapt(e)
}

// RecordLatency implements obs.LatencyRecorder.
func (ss serviceSink) RecordLatency(nanos int64) { ss.s.Latency.Observe(nanos) }

// Sink returns the concurrency-safe sink feeding this service.
func (s *Service) Sink() obs.Sink { return serviceSink{s} }

// AddGauge registers an instantaneous value for /metrics and /vars.
// Registering a name twice replaces the earlier gauge.
func (s *Service) AddGauge(name, help string, value func() float64) {
	s.AddLabeledGauge(name, "", help, value)
}

// AddLabeledGauge registers a gauge carrying a Prometheus label set
// (e.g. `shard="0"`). Gauges sharing a name but differing in labels
// coexist as one metric family; registering the same (name, labels)
// pair twice replaces the earlier gauge.
func (s *Service) AddLabeledGauge(name, labels, help string, value func() float64) {
	g := Gauge{Name: name, Labels: labels, Help: help, Value: value}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.named[g.key()] {
		for i := range s.gauges {
			if s.gauges[i].key() == g.key() {
				s.gauges[i] = g
				return
			}
		}
	}
	s.named[g.key()] = true
	s.gauges = append(s.gauges, g)
}

// summedASB aggregates the gauges of several per-shard adaptive policy
// instances by summation: the total candidate frames, overflow pages
// and part capacities across the pool. Summing is the right merge for
// all four gauges because each underlying value counts frames owned by
// exactly one shard.
type summedASB []ASBGauges

func (a summedASB) LiveCandidateSize() (n int) {
	for _, p := range a {
		n += p.LiveCandidateSize()
	}
	return n
}

func (a summedASB) LiveOverflowLen() (n int) {
	for _, p := range a {
		n += p.LiveOverflowLen()
	}
	return n
}

func (a summedASB) OverflowCapacity() (n int) {
	for _, p := range a {
		n += p.OverflowCapacity()
	}
	return n
}

func (a summedASB) MainCapacity() (n int) {
	for _, p := range a {
		n += p.MainCapacity()
	}
	return n
}

// SumASBGauges merges the gauges of several per-shard adaptive policy
// instances into one pool-level ASBGauges by summing each value; pass
// the result to AddASBGauges so a sharded pool exposes the same
// aggregate metric names a single ASB does.
func SumASBGauges(parts ...ASBGauges) ASBGauges { return summedASB(parts) }

// AddShardASBGauges registers shard-labeled gauges for one shard's
// adaptive policy: the live candidate size and overflow occupancy under
// shard-qualified metric names (`spatialbuf_shard_asb_*{shard="i"}`),
// so dashboards can watch the per-shard c trajectories diverge.
func (s *Service) AddShardASBGauges(shard int, p ASBGauges) {
	labels := `shard="` + strconv.Itoa(shard) + `"`
	s.AddLabeledGauge("spatialbuf_shard_asb_candidate_size", labels,
		"Per-shard ASB candidate-set size c.",
		func() float64 { return float64(p.LiveCandidateSize()) })
	s.AddLabeledGauge("spatialbuf_shard_asb_overflow_pages", labels,
		"Per-shard pages in the ASB overflow buffer.",
		func() float64 { return float64(p.LiveOverflowLen()) })
}

// AddASBGauges registers the standard gauge set of an adaptable spatial
// buffer (candidate size, overflow occupancy and capacities).
func (s *Service) AddASBGauges(p ASBGauges) {
	s.AddGauge("spatialbuf_asb_candidate_size", "Current ASB candidate-set size c.",
		func() float64 { return float64(p.LiveCandidateSize()) })
	s.AddGauge("spatialbuf_asb_overflow_pages", "Pages currently in the ASB overflow buffer.",
		func() float64 { return float64(p.LiveOverflowLen()) })
	s.AddGauge("spatialbuf_asb_overflow_capacity_pages", "Capacity of the ASB overflow buffer.",
		func() float64 { return float64(p.OverflowCapacity()) })
	s.AddGauge("spatialbuf_asb_main_capacity_pages", "Capacity of the ASB main part.",
		func() float64 { return float64(p.MainCapacity()) })
}

// gaugeSample is one scraped gauge value.
type gaugeSample struct {
	Name, Labels, Help string
	Value              float64
}

// Key returns the exposition identity (name plus label set).
func (g gaugeSample) Key() string {
	if g.Labels == "" {
		return g.Name
	}
	return g.Name + "{" + g.Labels + "}"
}

// gaugeSnapshot copies the registered gauges under the lock and samples
// their values outside it. Gauges sharing a name are grouped adjacently
// (first-registration order within and across groups), as the
// Prometheus exposition format requires for labeled families.
func (s *Service) gaugeSnapshot() []gaugeSample {
	s.mu.Lock()
	gs := make([]Gauge, len(s.gauges))
	copy(gs, s.gauges)
	s.mu.Unlock()
	byName := make(map[string][]Gauge, len(gs))
	var order []string
	for _, g := range gs {
		if _, seen := byName[g.Name]; !seen {
			order = append(order, g.Name)
		}
		byName[g.Name] = append(byName[g.Name], g)
	}
	out := make([]gaugeSample, 0, len(gs))
	for _, name := range order {
		for _, g := range byName[name] {
			out = append(out, gaugeSample{Name: g.Name, Labels: g.Labels, Help: g.Help, Value: g.Value()})
		}
	}
	return out
}

func (s *Service) hasGauge(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.named[name]
}

// Handler returns the HTTP handler serving all endpoints.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/vars", s.handleVars)
	mux.HandleFunc("/healthz", handleHealthz)
	mux.HandleFunc("/events/ctraj", s.handleCTraj)
	mux.HandleFunc("/events/shadow", s.handleShadow)
	mux.HandleFunc("/", s.handleDashboard)
	return mux
}

func handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// latencyBounds is the ladder of Prometheus histogram upper bounds, in
// nanoseconds (exposed in seconds). Spans cache hits (~100ns) through
// multi-second stalls.
var latencyBounds = []int64{
	250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000,
	100_000, 250_000, 500_000, 1_000_000, 2_500_000, 10_000_000,
	100_000_000, 1_000_000_000,
}

// quantiles reported for summaries.
var summaryQs = []float64{0.5, 0.9, 0.95, 0.99}

func (s *Service) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	c := s.Counters.Snapshot()
	lat := s.Latency.Snapshot()
	crit := s.Criterion.Snapshot()

	var b []byte
	metric := func(name, help, typ string) {
		b = append(b, "# HELP "...)
		b = append(b, name...)
		b = append(b, ' ')
		b = append(b, help...)
		b = append(b, "\n# TYPE "...)
		b = append(b, name...)
		b = append(b, ' ')
		b = append(b, typ...)
		b = append(b, '\n')
	}
	sample := func(name, labels string, v float64) {
		b = append(b, name...)
		if labels != "" {
			b = append(b, '{')
			b = append(b, labels...)
			b = append(b, '}')
		}
		b = append(b, ' ')
		b = strconv.AppendFloat(b, v, 'g', -1, 64)
		b = append(b, '\n')
	}
	count := func(name, labels string, v uint64) { sample(name, labels, float64(v)) }

	metric("spatialbuf_requests_total", "Read-path buffer requests.", "counter")
	count("spatialbuf_requests_total", "", c.Requests)
	metric("spatialbuf_hits_total", "Buffer hits.", "counter")
	count("spatialbuf_hits_total", "", c.Hits)
	metric("spatialbuf_misses_total", "Buffer misses (physical reads).", "counter")
	count("spatialbuf_misses_total", "", c.Misses)
	metric("spatialbuf_coalesced_reads_total", "Misses served without their own physical read (singleflight or write-back queue).", "counter")
	count("spatialbuf_coalesced_reads_total", "", c.Coalesced)
	metric("spatialbuf_hit_ratio", "Cumulative hit ratio.", "gauge")
	sample("spatialbuf_hit_ratio", "", c.HitRatio())

	metric("spatialbuf_evictions_total", "Pages evicted, by policy reason.", "counter")
	c.ByReason.Each(func(reason string, n uint64) {
		count("spatialbuf_evictions_total", `reason="`+reason+`"`, n)
	})
	metric("spatialbuf_overflow_promotions_total", "ASB overflow hits promoted back to the main part.", "counter")
	count("spatialbuf_overflow_promotions_total", "", c.Promotions)
	metric("spatialbuf_adaptations_total", "ASB adaptation events, by direction of the candidate-size change.", "counter")
	count("spatialbuf_adaptations_total", `direction="grow"`, c.AdaptGrow)
	count("spatialbuf_adaptations_total", `direction="shrink"`, c.AdaptShrink)
	count("spatialbuf_adaptations_total", `direction="hold"`, c.AdaptHold)
	metric("spatialbuf_events_dropped_total", "Observability events dropped by the async ring sink.", "counter")
	count("spatialbuf_events_dropped_total", "", c.Dropped)
	if !s.hasGauge("spatialbuf_asb_candidate_size") {
		metric("spatialbuf_asb_candidate_size", "ASB candidate-set size after the most recent adaptation event.", "gauge")
		count("spatialbuf_asb_candidate_size", "", c.Candidate)
	}

	metric("spatialbuf_request_latency_seconds", "Per-request buffer latency.", "histogram")
	for _, bound := range latencyBounds {
		sample("spatialbuf_request_latency_seconds_bucket",
			`le="`+strconv.FormatFloat(float64(bound)/1e9, 'g', -1, 64)+`"`,
			float64(lat.CountAtMost(bound)))
	}
	count("spatialbuf_request_latency_seconds_bucket", `le="+Inf"`, lat.Count)
	sample("spatialbuf_request_latency_seconds_sum", "", float64(lat.Sum)/1e9)
	count("spatialbuf_request_latency_seconds_count", "", lat.Count)

	metric("spatialbuf_request_latency_quantile_seconds", "Request-latency quantiles estimated from the log-bucketed histogram.", "gauge")
	for _, q := range summaryQs {
		sample("spatialbuf_request_latency_quantile_seconds",
			`quantile="`+strconv.FormatFloat(q, 'g', -1, 64)+`"`, lat.Quantile(q)/1e9)
	}

	metric("spatialbuf_eviction_criterion", "Spatial criterion of evicted pages.", "summary")
	for _, q := range summaryQs {
		sample("spatialbuf_eviction_criterion",
			`quantile="`+strconv.FormatFloat(q, 'g', -1, 64)+`"`, crit.Quantile(q)/critScale)
	}
	sample("spatialbuf_eviction_criterion_sum", "", float64(crit.Sum)/critScale)
	count("spatialbuf_eviction_criterion_count", "", crit.Count)

	lastName := ""
	for _, g := range s.gaugeSnapshot() {
		if g.Name != lastName {
			metric(g.Name, g.Help, "gauge")
			lastName = g.Name
		}
		sample(g.Name, g.Labels, g.Value)
	}
	w.Write(b)
}

// varsPayload is the /vars JSON document.
type varsPayload struct {
	Counters obs.Snapshot       `json:"counters"`
	HitRatio float64            `json:"hit_ratio"`
	Latency  histVars           `json:"latency_ns"`
	Crit     histVars           `json:"eviction_criterion"`
	Gauges   map[string]float64 `json:"gauges"`
}

type histVars struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

func histVarsOf(s obs.HistSnapshot, scale float64) histVars {
	return histVars{
		Count: s.Count,
		Mean:  s.Mean() / scale,
		P50:   s.Quantile(0.5) / scale,
		P90:   s.Quantile(0.9) / scale,
		P95:   s.Quantile(0.95) / scale,
		P99:   s.Quantile(0.99) / scale,
	}
}

func (s *Service) handleVars(w http.ResponseWriter, _ *http.Request) {
	c := s.Counters.Snapshot()
	p := varsPayload{
		Counters: c,
		HitRatio: c.HitRatio(),
		Latency:  histVarsOf(s.Latency.Snapshot(), 1),
		Crit:     histVarsOf(s.Criterion.Snapshot(), critScale),
		Gauges:   make(map[string]float64),
	}
	for _, g := range s.gaugeSnapshot() {
		p.Gauges[g.Key()] = g.Value
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(p)
}

// handleCTraj streams Adapt events as server-sent events, one JSON
// sample per event, until the client disconnects.
func (s *Service) handleCTraj(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	fmt.Fprintf(w, "retry: 2000\n\n")
	fl.Flush()

	ch, cancel := s.Traj.Subscribe(256)
	defer cancel()
	for {
		select {
		case sample, ok := <-ch:
			if !ok {
				return
			}
			data, err := json.Marshal(sample)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "data: %s\n\n", data); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Service) handleDashboard(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, dashboardHTML)
}

// dashboardHTML is the self-contained live dashboard: it polls /vars for
// the counter table and follows /events/ctraj for the candidate-size
// sparkline. No external assets, so it works on an air-gapped bench box.
const dashboardHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>spatial-buffer live</title>
<style>
body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem; color: #222; }
h1 { font-size: 1.2rem; } h2 { font-size: 1rem; margin-top: 1.5rem; }
table { border-collapse: collapse; }
td, th { padding: .15rem .8rem .15rem 0; text-align: left; font-variant-numeric: tabular-nums; }
svg { border: 1px solid #ccc; background: #fafafa; }
code { background: #f0f0f0; padding: 0 .3em; }
#drops { color: #b00; }
</style>
</head>
<body>
<h1>spatial-buffer live metrics</h1>
<p>Endpoints: <code>/metrics</code> (Prometheus), <code>/vars</code> (JSON), <code>/healthz</code>, <code>/events/ctraj</code> (SSE), <code>/events/shadow</code> (SSE).</p>
<h2>Counters</h2>
<table id="counters"></table>
<h2>Request latency</h2>
<table id="latency"></table>
<h2>ASB candidate-size trajectory (live)</h2>
<svg id="ctraj" width="640" height="160" viewBox="0 0 640 160" preserveAspectRatio="none"></svg>
<p id="ctrajinfo">waiting for adaptation events…</p>
<h2>Shadow caches (what-if policies &amp; miss-ratio curve)</h2>
<table id="shadows"><tr><td>waiting for shadow samples…</td></tr></table>
<p id="shadowinfo"></p>
<script>
const fmt = (v) => typeof v === "number" && !Number.isInteger(v) ? v.toPrecision(5) : v;
function renderTable(el, obj) {
  el.innerHTML = Object.entries(obj)
    .map(([k, v]) => "<tr><th>" + k + "</th><td>" +
      (typeof v === "object" && v !== null ? JSON.stringify(v) : fmt(v)) + "</td></tr>")
    .join("");
}
async function poll() {
  try {
    const r = await fetch("/vars");
    const v = await r.json();
    renderTable(document.getElementById("counters"),
      Object.assign({}, v.counters, {hit_ratio: v.hit_ratio}, v.gauges));
    renderTable(document.getElementById("latency"), v.latency_ns);
  } catch (e) { /* server restarting; keep polling */ }
}
setInterval(poll, 1000); poll();

const pts = [];
const es = new EventSource("/events/ctraj");
es.onmessage = (m) => {
  const s = JSON.parse(m.data);
  pts.push(s);
  if (pts.length > 640) pts.shift();
  const ys = pts.map(p => p.new);
  const max = Math.max(...ys, 1);
  const path = ys.map((y, i) =>
    (i ? "L" : "M") + (i * 640 / Math.max(pts.length - 1, 1)).toFixed(1) +
    " " + (150 - 140 * y / max).toFixed(1)).join(" ");
  document.getElementById("ctraj").innerHTML =
    '<path d="' + path + '" fill="none" stroke="#06c" stroke-width="1.5"/>';
  document.getElementById("ctrajinfo").textContent =
    "c = " + s.new + " after " + s.ref + " requests (" + pts.length + " samples shown, max " + max + ")";
};

const shadowEs = new EventSource("/events/shadow");
shadowEs.onerror = () => {
  // 404 (shadow profiling disabled) or server restart: stop retrying
  // only when the panel never received data.
  if (!document.getElementById("shadowinfo").textContent) {
    document.getElementById("shadows").innerHTML =
      "<tr><td>shadow profiling disabled</td></tr>";
    shadowEs.close();
  }
};
shadowEs.onmessage = (m) => {
  const s = JSON.parse(m.data);
  const rows = s.shadows.map(c =>
    "<tr><td>" + c.policy + "</td><td>" + c.capacity + "</td><td>" +
    c.hit_ratio.toPrecision(4) + "</td><td>" + c.window_hit_ratio.toPrecision(4) +
    "</td><td>" + c.hits + "</td><td>" + c.misses + "</td></tr>").join("");
  document.getElementById("shadows").innerHTML =
    "<tr><th>policy</th><th>frames</th><th>hit ratio</th><th>window</th><th>hits</th><th>misses</th></tr>" + rows;
  document.getElementById("shadowinfo").textContent =
    "regret " + s.regret.toPrecision(4) + " (real hit ratio " +
    s.real_hit_ratio.toPrecision(4) + " over " + s.real_requests + " observed requests)";
};
</script>
</body>
</html>
`
