package live_test

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/live"
)

// feedService pushes a small, known event mix through the service sink.
func feedService(t *testing.T, svc *live.Service) {
	t.Helper()
	sink := svc.Sink()
	lr, ok := sink.(obs.LatencyRecorder)
	if !ok {
		t.Fatal("service sink must implement obs.LatencyRecorder")
	}
	for i := 0; i < 10; i++ {
		sink.Request(obs.RequestEvent{Page: 1, Hit: i%2 == 0})
		lr.RecordLatency(int64(1000 * (i + 1)))
	}
	sink.Eviction(obs.EvictionEvent{Page: 2, Reason: obs.ReasonSLRU, Criterion: 0.25})
	sink.Eviction(obs.EvictionEvent{Page: 3, Reason: obs.ReasonASBOverflow, Criterion: 0.75})
	sink.OverflowPromotion(obs.OverflowPromotionEvent{Page: 4})
	sink.Adapt(obs.AdaptEvent{OldC: 3, NewC: 4})
}

func TestMetricsEndpoint(t *testing.T) {
	svc := live.NewService()
	feedService(t, svc)
	svc.AddGauge("spatialbuf_resident_pages", "Frames in use.", func() float64 { return 7 })

	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	for _, want := range []string{
		"spatialbuf_requests_total 10",
		"spatialbuf_hits_total 5",
		"spatialbuf_hit_ratio 0.5",
		`spatialbuf_evictions_total{reason="slru"} 1`,
		`spatialbuf_evictions_total{reason="asb-overflow"} 1`,
		"spatialbuf_overflow_promotions_total 1",
		`spatialbuf_adaptations_total{direction="grow"} 1`,
		"spatialbuf_events_dropped_total 0",
		"spatialbuf_asb_candidate_size 4",
		`spatialbuf_request_latency_seconds_bucket{le="+Inf"} 10`,
		"spatialbuf_request_latency_seconds_count 10",
		`spatialbuf_request_latency_quantile_seconds{quantile="0.5"}`,
		`spatialbuf_eviction_criterion{quantile="0.99"}`,
		"spatialbuf_eviction_criterion_count 2",
		"spatialbuf_resident_pages 7",
		"# TYPE spatialbuf_request_latency_seconds histogram",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Every exposed sample must have a HELP and TYPE header, and the
	// latency histogram buckets must be cumulative (monotone in le).
	var prev float64
	var buckets int
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, "spatialbuf_request_latency_seconds_bucket{le=") {
			continue
		}
		v, err := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
		if err != nil {
			t.Fatalf("unparseable bucket line %q: %v", line, err)
		}
		if v < prev {
			t.Errorf("bucket counts not monotone at %q (prev %g)", line, prev)
		}
		prev = v
		buckets++
	}
	if buckets < 10 {
		t.Errorf("only %d latency buckets exposed", buckets)
	}
	for _, name := range []string{"spatialbuf_requests_total", "spatialbuf_evictions_total", "spatialbuf_resident_pages"} {
		if !strings.Contains(body, "# HELP "+name+" ") || !strings.Contains(body, "# TYPE "+name+" ") {
			t.Errorf("missing HELP/TYPE for %s", name)
		}
	}
}

func TestMetricsPrefersLiveASBGauge(t *testing.T) {
	svc := live.NewService()
	feedService(t, svc)
	svc.AddASBGauges(stubASB{cand: 9, over: 2, overCap: 5, mainCap: 20})

	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	body := get(t, ts.URL+"/metrics")

	// The live gauge (9) wins over the counters-derived value (4), and
	// the series must not be emitted twice.
	if !strings.Contains(body, "spatialbuf_asb_candidate_size 9") {
		t.Error("live candidate gauge not exposed")
	}
	if strings.Contains(body, "spatialbuf_asb_candidate_size 4") {
		t.Error("counters-derived candidate gauge duplicates the live one")
	}
	if n := strings.Count(body, "# TYPE spatialbuf_asb_candidate_size gauge"); n != 1 {
		t.Errorf("candidate_size TYPE emitted %d times", n)
	}
	for _, want := range []string{
		"spatialbuf_asb_overflow_pages 2",
		"spatialbuf_asb_overflow_capacity_pages 5",
		"spatialbuf_asb_main_capacity_pages 20",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

type stubASB struct{ cand, over, overCap, mainCap int }

func (s stubASB) LiveCandidateSize() int { return s.cand }
func (s stubASB) LiveOverflowLen() int   { return s.over }
func (s stubASB) OverflowCapacity() int  { return s.overCap }
func (s stubASB) MainCapacity() int      { return s.mainCap }

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	return string(raw)
}

func TestVarsAndHealthz(t *testing.T) {
	svc := live.NewService()
	feedService(t, svc)
	svc.AddGauge("spatialbuf_resident_pages", "Frames in use.", func() float64 { return 7 })

	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	if body := get(t, ts.URL+"/healthz"); strings.TrimSpace(body) != "ok" {
		t.Errorf("/healthz body = %q", body)
	}

	var v struct {
		Counters obs.Snapshot `json:"counters"`
		HitRatio float64      `json:"hit_ratio"`
		Latency  struct {
			Count uint64  `json:"count"`
			P50   float64 `json:"p50"`
			P99   float64 `json:"p99"`
		} `json:"latency_ns"`
		Gauges map[string]float64 `json:"gauges"`
	}
	if err := json.Unmarshal([]byte(get(t, ts.URL+"/vars")), &v); err != nil {
		t.Fatalf("/vars is not valid JSON: %v", err)
	}
	if v.Counters.Requests != 10 || v.Counters.Hits != 5 {
		t.Errorf("counters = %+v", v.Counters)
	}
	if v.HitRatio != 0.5 {
		t.Errorf("hit_ratio = %g", v.HitRatio)
	}
	if v.Latency.Count != 10 || v.Latency.P50 <= 0 || v.Latency.P99 < v.Latency.P50 {
		t.Errorf("latency vars = %+v", v.Latency)
	}
	if v.Gauges["spatialbuf_resident_pages"] != 7 {
		t.Errorf("gauges = %v", v.Gauges)
	}
}

func TestDashboardServed(t *testing.T) {
	svc := live.NewService()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	body := get(t, ts.URL+"/")
	if !strings.Contains(body, "<title>spatial-buffer live</title>") ||
		!strings.Contains(body, "/events/ctraj") {
		t.Error("dashboard HTML incomplete")
	}
	resp, err := http.Get(ts.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path status = %d, want 404", resp.StatusCode)
	}
}

func TestCTrajSSEStreamsAdaptEvents(t *testing.T) {
	svc := live.NewService()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/events/ctraj")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}

	// Wait until the handler has subscribed, then emit events.
	deadline := time.Now().Add(5 * time.Second)
	for svc.Traj.Subscribers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("SSE handler never subscribed")
		}
		time.Sleep(time.Millisecond)
	}
	sink := svc.Sink()
	for i := 0; i < 3; i++ {
		sink.Request(obs.RequestEvent{Page: 1})
	}
	sink.Adapt(obs.AdaptEvent{OldC: 3, NewC: 5})

	scanner := bufio.NewScanner(resp.Body)
	var sample live.CTrajSample
	for scanner.Scan() {
		line := scanner.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &sample); err != nil {
			t.Fatalf("bad SSE payload %q: %v", line, err)
		}
		break
	}
	if err := scanner.Err(); err != nil {
		t.Fatal(err)
	}
	want := live.CTrajSample{Ref: 3, OldC: 3, NewC: 5}
	if sample != want {
		t.Errorf("SSE sample = %+v, want %+v", sample, want)
	}
}

func TestAddGaugeReplaces(t *testing.T) {
	svc := live.NewService()
	svc.AddGauge("g", "first", func() float64 { return 1 })
	svc.AddGauge("g", "second", func() float64 { return 2 })

	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	body := get(t, ts.URL+"/metrics")
	if !strings.Contains(body, "# HELP g second") || !strings.Contains(body, "\ng 2\n") {
		t.Error("re-registered gauge did not replace the original")
	}
	if strings.Contains(body, "\ng 1\n") {
		t.Error("stale gauge value still exposed")
	}
}
