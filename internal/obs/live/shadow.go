package live

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs/shadow"
)

// AddShadowGauges registers the shadow-cache profiler's metric families
// and enables the /events/shadow SSE stream. Per shadow cache (labeled
// policy + simulated capacity):
//
//	spatialbuf_shadow_hit_ratio         cumulative hit ratio
//	spatialbuf_shadow_window_hit_ratio  last completed rolling window
//	spatialbuf_shadow_hits_total        cumulative hits
//	spatialbuf_shadow_misses_total      cumulative misses
//
// plus the unlabeled pool-level pair:
//
//	spatialbuf_shadow_regret          real hit ratio − best shadow's
//	spatialbuf_shadow_requests_total  events observed by the bank
//
// All values read atomics; scraping never touches the bank's mutex.
func (s *Service) AddShadowGauges(b *shadow.Bank) {
	for _, c := range b.Shadows() {
		c := c
		labels := `policy="` + c.PolicyName() + `",capacity="` + strconv.Itoa(c.Capacity()) + `"`
		s.AddLabeledGauge("spatialbuf_shadow_hit_ratio", labels,
			"Cumulative hit ratio of a shadow (ghost) cache simulating an alternative configuration.",
			func() float64 { return c.HitRatio() })
		s.AddLabeledGauge("spatialbuf_shadow_window_hit_ratio", labels,
			"Hit ratio of the shadow cache's last completed rolling window.",
			func() float64 { return c.WindowHitRatio() })
		s.AddLabeledGauge("spatialbuf_shadow_hits_total", labels,
			"Cumulative shadow-cache hits.",
			func() float64 { return float64(c.Hits()) })
		s.AddLabeledGauge("spatialbuf_shadow_misses_total", labels,
			"Cumulative shadow-cache misses.",
			func() float64 { return float64(c.Misses()) })
	}
	s.AddGauge("spatialbuf_shadow_regret",
		"Real policy's hit ratio minus the best same-capacity shadow's; negative means a simulated configuration is winning.",
		func() float64 { return b.Regret() })
	s.AddGauge("spatialbuf_shadow_requests_total",
		"Request events observed by the shadow bank (after any sampling).",
		func() float64 { return float64(b.RealRequests()) })
	s.mu.Lock()
	s.shadowBank = b
	s.mu.Unlock()
}

// shadowBank returns the registered bank, nil when shadowing is off.
func (s *Service) getShadowBank() *shadow.Bank {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shadowBank
}

// shadowSample is one /events/shadow SSE payload: the regret headline
// plus every shadow's snapshot, in the bank's deterministic order.
type shadowSample struct {
	Regret       float64       `json:"regret"`
	RealHitRatio float64       `json:"real_hit_ratio"`
	RealRequests uint64        `json:"real_requests"`
	Shadows      []shadow.Stat `json:"shadows"`
}

// handleShadow streams the shadow bank's state as server-sent events,
// one JSON snapshot per second, until the client disconnects. 404 when
// no bank is attached (shadow profiling disabled).
func (s *Service) handleShadow(w http.ResponseWriter, r *http.Request) {
	b := s.getShadowBank()
	if b == nil {
		http.Error(w, "shadow profiling disabled", http.StatusNotFound)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	fmt.Fprintf(w, "retry: 2000\n\n")
	fl.Flush()

	tick := time.NewTicker(1 * time.Second)
	defer tick.Stop()
	for {
		sample := shadowSample{
			Regret:       b.Regret(),
			RealHitRatio: b.RealHitRatio(),
			RealRequests: b.RealRequests(),
			Shadows:      b.Stats(),
		}
		data, err := json.Marshal(sample)
		if err != nil {
			return
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", data); err != nil {
			return
		}
		fl.Flush()
		select {
		case <-tick.C:
		case <-r.Context().Done():
			return
		}
	}
}
