package live_test

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/live"
	"repro/internal/obs/shadow"
	"repro/internal/page"
)

func testBank(t *testing.T) *shadow.Bank {
	t.Helper()
	specs := shadow.Specs("LRU", 8, []string{"LRU", "SLRU 50%"}, []float64{0.5, 1})
	bank, err := shadow.NewBank(specs, core.Resolver, 0)
	if err != nil {
		t.Fatal(err)
	}
	return bank
}

// TestShadowGaugesExposed pins the metric families the CI smoke job
// greps for: labeled spatialbuf_shadow_hit_ratio per shadow and the
// unlabeled regret gauge.
func TestShadowGaugesExposed(t *testing.T) {
	svc := live.NewService()
	bank := testBank(t)
	svc.AddShadowGauges(bank)
	for i := 0; i < 20; i++ {
		bank.Request(obs.RequestEvent{Page: page.ID(i%4 + 1), Hit: i >= 4, Meta: page.Meta{}})
	}

	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	body := get(t, ts.URL+"/metrics")
	for _, want := range []string{
		`spatialbuf_shadow_hit_ratio{policy="LRU",capacity="8"}`,
		`spatialbuf_shadow_hit_ratio{policy="LRU",capacity="4"}`,
		`spatialbuf_shadow_hit_ratio{policy="SLRU 50%",capacity="8"}`,
		`spatialbuf_shadow_window_hit_ratio{policy="LRU",capacity="8"}`,
		`spatialbuf_shadow_hits_total{policy="LRU",capacity="8"}`,
		`spatialbuf_shadow_misses_total{policy="LRU",capacity="8"}`,
		"spatialbuf_shadow_regret ",
		"spatialbuf_shadow_requests_total 20",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	vars := get(t, ts.URL+"/vars")
	if !strings.Contains(vars, "spatialbuf_shadow_regret") {
		t.Error("/vars missing shadow regret gauge")
	}
}

// TestShadowSSE checks /events/shadow: 404 without a bank, an immediate
// well-formed snapshot with one.
func TestShadowSSE(t *testing.T) {
	svc := live.NewService()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/events/shadow")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("no-bank status = %d, want 404", resp.StatusCode)
	}

	bank := testBank(t)
	svc.AddShadowGauges(bank)
	bank.Request(obs.RequestEvent{Page: 1, Hit: true, Meta: page.Meta{}})
	resp, err = http.Get(ts.URL + "/events/shadow")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	scanner := bufio.NewScanner(resp.Body)
	var payload struct {
		Regret       float64       `json:"regret"`
		RealRequests uint64        `json:"real_requests"`
		Shadows      []shadow.Stat `json:"shadows"`
	}
	for scanner.Scan() {
		line := scanner.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &payload); err != nil {
			t.Fatalf("bad SSE payload %q: %v", line, err)
		}
		break
	}
	if err := scanner.Err(); err != nil {
		t.Fatal(err)
	}
	if payload.RealRequests != 1 || len(payload.Shadows) != 3 {
		t.Errorf("SSE snapshot = %+v, want 1 request over 3 shadows", payload)
	}
}

// TestShadowDashboardPanel checks the dashboard carries the shadow
// table wired to the SSE stream.
func TestShadowDashboardPanel(t *testing.T) {
	svc := live.NewService()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	body := get(t, ts.URL+"/")
	if !strings.Contains(body, "/events/shadow") || !strings.Contains(body, `id="shadows"`) {
		t.Error("dashboard missing the shadow-cache panel")
	}
}
