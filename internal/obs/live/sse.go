package live

import (
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// CTrajSample is one point of the live candidate-size trajectory (the
// Fig. 14 series): the ASB candidate-set size before and after one
// adaptation event, stamped with the request index at which it happened.
type CTrajSample struct {
	Ref  uint64 `json:"ref"`
	OldC int    `json:"old"`
	NewC int    `json:"new"`
}

// Broadcaster fans Adapt events out to any number of subscribers (SSE
// handlers), tagging each with the current request index. It implements
// obs.Sink via the embedded NopSink; Request only bumps an atomic
// reference counter, so the hot path stays constant-time, and Adapt
// (rare — one per overflow hit) takes a short mutex to walk the
// subscriber list. Slow subscribers lose samples instead of stalling the
// producer: sends into a subscriber's buffered channel never block.
type Broadcaster struct {
	obs.NopSink

	refs   atomic.Uint64
	mu     sync.Mutex
	subs   map[uint64]chan CTrajSample
	nextID uint64
}

// NewBroadcaster returns an empty broadcaster.
func NewBroadcaster() *Broadcaster {
	return &Broadcaster{subs: make(map[uint64]chan CTrajSample)}
}

// Request implements obs.Sink: it only advances the reference index.
func (b *Broadcaster) Request(obs.RequestEvent) { b.refs.Add(1) }

// Refs returns the number of Request events seen.
func (b *Broadcaster) Refs() uint64 { return b.refs.Load() }

// Adapt implements obs.Sink: the sample is offered to every subscriber,
// dropping it for subscribers whose buffer is full.
func (b *Broadcaster) Adapt(e obs.AdaptEvent) {
	s := CTrajSample{Ref: b.refs.Load(), OldC: e.OldC, NewC: e.NewC}
	b.mu.Lock()
	for _, ch := range b.subs {
		select {
		case ch <- s:
		default:
		}
	}
	b.mu.Unlock()
}

// Subscribe registers a subscriber with the given channel buffer
// (≤ 0 selects 64) and returns its receive channel plus a cancel
// function. Cancel closes the channel; it is safe to call once.
func (b *Broadcaster) Subscribe(buf int) (<-chan CTrajSample, func()) {
	if buf <= 0 {
		buf = 64
	}
	ch := make(chan CTrajSample, buf)
	b.mu.Lock()
	id := b.nextID
	b.nextID++
	b.subs[id] = ch
	b.mu.Unlock()
	return ch, func() {
		b.mu.Lock()
		if _, ok := b.subs[id]; ok {
			delete(b.subs, id)
			close(ch)
		}
		b.mu.Unlock()
	}
}

// Subscribers returns the current subscriber count (for tests and the
// dashboard).
func (b *Broadcaster) Subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}
