// Package obs is the observability layer of the buffer system: a
// structured event stream emitted by the buffer manager and the
// replacement policies, plus cheap aggregators (atomic counters, a
// windowed hit-ratio tracker), exporters (JSONL, CSV c-trajectory) and
// profiling helpers shared by the commands.
//
// The design constraint is that observability must be free when unused:
// every producer holds a Sink (never nil — NopSink by default) and emits
// fixed-size event structs by value, so with the no-op sink the
// Manager.Get hot path stays allocation-free (asserted by
// TestRequestHitPathZeroAllocs in package buffer).
//
// Event types mirror the decisions the paper's evaluation reasons about:
//
//   - Request — every read-path buffer request, hit or miss (§3's
//     disk-access metric is derived from these);
//   - Eviction — a page leaving the buffer, with the policy's reason,
//     the criterion value that condemned it and its LRU rank;
//   - OverflowPromotion — an ASB overflow hit with the §4.2 adaptation
//     signal (better-spatial vs better-LRU counts);
//   - Adapt — a change (or re-confirmation) of the ASB candidate-set
//     size, the series plotted in Fig. 14.
//
// Producers attach sinks through SetSink; buffer.Manager forwards its
// sink to the policy when the policy implements SinkSetter, so one call
// instruments the whole stack.
package obs

import "repro/internal/page"

// RequestEvent describes one read-path buffer request. Shard is the
// index of the pool shard that served the request; 0 for unsharded
// pools (buffer.Router tags each shard's events through TagShard).
type RequestEvent struct {
	Page    page.ID
	QueryID uint64
	Hit     bool
	Shard   int
	// Coalesced marks a miss that performed no physical read of its own:
	// it shared another request's in-flight read (singleflight) or was
	// served from the background write-back queue. Always false for hits
	// and on synchronous pools.
	Coalesced bool
	// Meta is the requested page's descriptor — the spatial criteria a
	// downstream consumer (the shadow-cache simulators of obs/shadow)
	// needs to replay spatial replacement decisions without touching page
	// data. Hits carry the resident frame's Meta; misses carry the Meta
	// of the page that was read, so the event is emitted after the
	// physical read succeeds. Zero (Meta.ID == 0) on failed reads and on
	// coalesced waiters of an async pool, which never observe the page
	// under their shard lock; consumers must treat a zero Meta as
	// "criteria unknown". JSONL serialization ignores Meta, so event
	// files are unaffected.
	Meta page.Meta
}

// Eviction reasons. Constants rather than free-form strings so sinks can
// switch on them without comparisons against magic literals.
const (
	ReasonLRU         = "lru"          // least recently used
	ReasonFIFO        = "fifo"         // oldest admission
	ReasonPriority    = "priority-lru" // LRU within the lowest non-empty priority class (LRU-T/LRU-P)
	ReasonSLRU        = "slru"         // spatial choice from the LRU candidate set
	ReasonSpatial     = "spatial"      // pure spatial minimum-criterion choice
	ReasonLRUK        = "lru-k"        // oldest HIST(q,K)
	ReasonASBOverflow = "asb-overflow" // FIFO head of the ASB overflow buffer
	ReasonASBMain     = "asb-main"     // ASB main-part SLRU victim (overflow empty)
)

// EvictionEvent describes a page leaving the buffer. Criterion is the
// policy's victim-selection value (spatial criterion for the spatial
// family, HIST(q,K) for LRU-K; 0 when not applicable). LRURank is the
// victim's distance from the LRU end of the policy's recency order at
// selection time (0 = least recently used), or -1 when the policy has no
// meaningful rank (heap-ordered or history-ordered policies).
type EvictionEvent struct {
	Page      page.ID
	Reason    string
	Criterion float64
	LRURank   int
	// Shard is the pool shard the page left (0 for unsharded pools).
	Shard int
}

// OverflowPromotionEvent describes an ASB overflow hit: the page is
// promoted back into the main part and the §4.2 signal is computed.
// BetterSpatial counts overflow pages with a larger spatial criterion
// than the promoted page; BetterLRU counts those with a more recent use.
type OverflowPromotionEvent struct {
	Page          page.ID
	BetterSpatial int
	BetterLRU     int
	// Shard is the pool shard whose overflow buffer hit (0 when
	// unsharded).
	Shard int
}

// AdaptEvent describes one adaptation event of the ASB candidate-set
// size. One event is emitted per overflow hit even when the size is
// unchanged (OldC == NewC), matching the paper's definition of an
// adaptation event, so the event count equals the overflow-hit count.
type AdaptEvent struct {
	OldC int
	NewC int
	// Shard is the pool shard whose candidate size adapted (0 when
	// unsharded). Each shard's ASB instance tunes its own c.
	Shard int
}

// Sink receives buffer and policy events. Implementations must treat the
// calls as hot-path: no locking beyond what the caller's concurrency
// model requires, no retention of pointers into policy state (events are
// self-contained values). A sink used with a concurrent composition
// (buffer.LockedEngine and above) must be safe for concurrent use
// (Counters is; the file-writing sinks are not).
type Sink interface {
	Request(e RequestEvent)
	Eviction(e EvictionEvent)
	OverflowPromotion(e OverflowPromotionEvent)
	Adapt(e AdaptEvent)
}

// SinkSetter is implemented by event producers (policies, managers) that
// accept a sink. buffer.Manager.SetSink forwards to its policy through
// this interface.
type SinkSetter interface {
	SetSink(Sink)
}

// LatencyRecorder is the optional sink extension for wall-clock request
// timings. The simulation core is counting-based and never times
// requests; but when the attached sink implements LatencyRecorder, the
// buffer manager brackets each request with a monotonic-clock reading
// and publishes the elapsed nanoseconds here. Histogram and
// WindowTracker implement it; Tee propagates it when any member does.
type LatencyRecorder interface {
	RecordLatency(nanos int64)
}

// NopSink discards all events. It is the default sink of every producer;
// its calls compile to nothing and add no allocations.
type NopSink struct{}

// Request implements Sink.
func (NopSink) Request(RequestEvent) {}

// Eviction implements Sink.
func (NopSink) Eviction(EvictionEvent) {}

// OverflowPromotion implements Sink.
func (NopSink) OverflowPromotion(OverflowPromotionEvent) {}

// Adapt implements Sink.
func (NopSink) Adapt(AdaptEvent) {}

// Target is an embeddable sink holder. Embedding it makes a producer a
// SinkSetter; Sink() never returns nil, so producers can emit without
// nil checks even on zero-valued embedders.
type Target struct {
	sink Sink
}

// SetSink implements SinkSetter. A nil sink resets to NopSink.
func (t *Target) SetSink(s Sink) {
	if s == nil {
		s = NopSink{}
	}
	t.sink = s
}

// Sink returns the attached sink, or NopSink if none was set.
func (t *Target) Sink() Sink {
	if t.sink == nil {
		return NopSink{}
	}
	return t.sink
}

// multiSink fans events out to several sinks in order.
type multiSink []Sink

func (m multiSink) Request(e RequestEvent) {
	for _, s := range m {
		s.Request(e)
	}
}

func (m multiSink) Eviction(e EvictionEvent) {
	for _, s := range m {
		s.Eviction(e)
	}
}

func (m multiSink) OverflowPromotion(e OverflowPromotionEvent) {
	for _, s := range m {
		s.OverflowPromotion(e)
	}
}

func (m multiSink) Adapt(e AdaptEvent) {
	for _, s := range m {
		s.Adapt(e)
	}
}

// timedMultiSink is a multiSink whose members include at least one
// LatencyRecorder; it forwards RecordLatency to those members so that a
// Tee of (histogram, jsonl, …) still receives request timings.
type timedMultiSink struct {
	multiSink
	timers []LatencyRecorder
}

func (t timedMultiSink) RecordLatency(nanos int64) {
	for _, lr := range t.timers {
		lr.RecordLatency(nanos)
	}
}

// Tee returns a sink that forwards every event to all the given sinks in
// order. Nil entries and NopSinks are dropped; Tee of zero remaining
// sinks is a NopSink, of one is that sink itself. If any kept sink
// implements LatencyRecorder, the returned sink does too (forwarding to
// exactly those members), so request timing survives fan-out.
//
// The degenerate cases allocate nothing: callers on reconfiguration
// paths (SetSink during shutdown, single-sink pools) can call Tee
// unconditionally without ever paying for a fan-out they don't need.
func Tee(sinks ...Sink) Sink {
	drop := func(s Sink) bool {
		if s == nil {
			return true
		}
		_, nop := s.(NopSink)
		return nop
	}
	// Count before building: a multiSink is only materialized when two
	// or more sinks actually remain.
	n, last := 0, Sink(nil)
	for _, s := range sinks {
		if !drop(s) {
			n++
			last = s
		}
	}
	switch n {
	case 0:
		return NopSink{}
	case 1:
		return last
	}
	kept := make(multiSink, 0, n)
	for _, s := range sinks {
		if !drop(s) {
			kept = append(kept, s)
		}
	}
	var timers []LatencyRecorder
	for _, s := range kept {
		if lr, ok := s.(LatencyRecorder); ok {
			timers = append(timers, lr)
		}
	}
	if len(timers) > 0 {
		return timedMultiSink{multiSink: kept, timers: timers}
	}
	return kept
}

// shardTagger stamps every event with a shard index before forwarding.
// Events travel by value, so the rewrite never mutates sender state.
type shardTagger struct {
	next  Sink
	shard int
}

func (t shardTagger) Request(e RequestEvent) { e.Shard = t.shard; t.next.Request(e) }

func (t shardTagger) Eviction(e EvictionEvent) { e.Shard = t.shard; t.next.Eviction(e) }

func (t shardTagger) OverflowPromotion(e OverflowPromotionEvent) {
	e.Shard = t.shard
	t.next.OverflowPromotion(e)
}

func (t shardTagger) Adapt(e AdaptEvent) { e.Shard = t.shard; t.next.Adapt(e) }

// timedShardTagger is a shardTagger over a latency-recording sink; it
// forwards timings unchanged so request timing survives the tagging.
type timedShardTagger struct {
	shardTagger
	timer LatencyRecorder
}

func (t timedShardTagger) RecordLatency(nanos int64) { t.timer.RecordLatency(nanos) }

// TagShard wraps a sink so every event it receives carries the given
// shard index — buffer.Router attaches one per shard, so one shared
// concurrency-safe sink (Counters, the live service, an async ring) sees
// the merged stream with shard attribution. Nil and NopSink pass through
// untouched (tagging a discarded event buys nothing); a sink that
// implements LatencyRecorder keeps that capability through the wrapper.
func TagShard(s Sink, shard int) Sink {
	if s == nil {
		return NopSink{}
	}
	if _, nop := s.(NopSink); nop {
		return s
	}
	t := shardTagger{next: s, shard: shard}
	if lr, ok := s.(LatencyRecorder); ok {
		return timedShardTagger{shardTagger: t, timer: lr}
	}
	return t
}
