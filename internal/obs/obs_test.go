package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// recordingSink counts events per kind for assertions.
type recordingSink struct {
	req, evict, promote, adapt int
	last                       any
}

func (r *recordingSink) Request(e RequestEvent) { r.req++; r.last = e }
func (r *recordingSink) Eviction(e EvictionEvent) {
	r.evict++
	r.last = e
}
func (r *recordingSink) OverflowPromotion(e OverflowPromotionEvent) { r.promote++; r.last = e }
func (r *recordingSink) Adapt(e AdaptEvent)                         { r.adapt++; r.last = e }

func TestTargetDefaultsToNop(t *testing.T) {
	var tgt Target
	if _, ok := tgt.Sink().(NopSink); !ok {
		t.Fatalf("zero Target sink = %T, want NopSink", tgt.Sink())
	}
	tgt.SetSink(nil)
	if _, ok := tgt.Sink().(NopSink); !ok {
		t.Fatalf("SetSink(nil) sink = %T, want NopSink", tgt.Sink())
	}
	rec := &recordingSink{}
	tgt.SetSink(rec)
	tgt.Sink().Request(RequestEvent{Page: 1, Hit: true})
	if rec.req != 1 {
		t.Errorf("recorded %d requests, want 1", rec.req)
	}
}

func TestTeeFansOutAndCollapses(t *testing.T) {
	a, b := &recordingSink{}, &recordingSink{}
	s := Tee(a, nil, NopSink{}, b)
	s.Request(RequestEvent{})
	s.Eviction(EvictionEvent{})
	s.OverflowPromotion(OverflowPromotionEvent{})
	s.Adapt(AdaptEvent{})
	for _, r := range []*recordingSink{a, b} {
		if r.req != 1 || r.evict != 1 || r.promote != 1 || r.adapt != 1 {
			t.Errorf("sink saw %+v, want one of each", *r)
		}
	}
	if _, ok := Tee(nil, NopSink{}).(NopSink); !ok {
		t.Error("Tee of no real sinks should be a NopSink")
	}
	if got := Tee(a); got != Sink(a) {
		t.Error("Tee of one sink should be that sink")
	}
}

func TestCountersAggregate(t *testing.T) {
	var c Counters
	c.Request(RequestEvent{Hit: true})
	c.Request(RequestEvent{Hit: true})
	c.Request(RequestEvent{Hit: false})
	c.Eviction(EvictionEvent{Reason: ReasonSLRU})
	c.Eviction(EvictionEvent{Reason: ReasonASBOverflow})
	c.Eviction(EvictionEvent{Reason: "made-up"})
	c.OverflowPromotion(OverflowPromotionEvent{})
	c.Adapt(AdaptEvent{OldC: 5, NewC: 7})
	c.Adapt(AdaptEvent{OldC: 7, NewC: 6})
	c.Adapt(AdaptEvent{OldC: 6, NewC: 6})
	c.AddDropped(4)

	s := c.Snapshot()
	want := Snapshot{
		Requests: 3, Hits: 2, Misses: 1, Evictions: 3, Promotions: 1,
		Adaptations: 3, Candidate: 6,
		AdaptGrow: 1, AdaptShrink: 1, AdaptHold: 1, Dropped: 4,
	}
	want.ByReason[reasonSlot(ReasonSLRU)] = 1
	want.ByReason[reasonSlot(ReasonASBOverflow)] = 1
	want.ByReason[reasonSlotOther] = 1
	if s != want {
		t.Errorf("snapshot = %+v, want %+v", s, want)
	}
	if r := s.HitRatio(); r < 0.66 || r > 0.67 {
		t.Errorf("hit ratio = %f, want 2/3", r)
	}
	if (Snapshot{}).HitRatio() != 0 {
		t.Error("empty snapshot hit ratio should be 0")
	}

	// String must be valid JSON (expvar contract) and carry the same
	// fields as the /vars and /metrics exporters.
	var decoded map[string]any
	if err := json.Unmarshal([]byte(c.String()), &decoded); err != nil {
		t.Fatalf("String() is not valid JSON: %v\n%s", err, c.String())
	}
	if decoded["requests"].(float64) != 3 {
		t.Errorf("String() requests = %v, want 3", decoded["requests"])
	}
	if decoded["dropped_events"].(float64) != 4 {
		t.Errorf("String() dropped_events = %v, want 4", decoded["dropped_events"])
	}
	if decoded["adapt_shrink"].(float64) != 1 {
		t.Errorf("String() adapt_shrink = %v, want 1", decoded["adapt_shrink"])
	}
	byReason, ok := decoded["evictions_by_reason"].(map[string]any)
	if !ok || byReason[ReasonSLRU].(float64) != 1 || byReason["other"].(float64) != 1 {
		t.Errorf("String() evictions_by_reason = %v", decoded["evictions_by_reason"])
	}
	if _, present := byReason[ReasonLRU]; present {
		t.Error("zero-count reasons should be omitted from the JSON object")
	}
}

func TestJSONLSinkLines(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	s.Request(RequestEvent{Page: 12, QueryID: 3, Hit: true})
	s.Eviction(EvictionEvent{Page: 9, Reason: ReasonSLRU, Criterion: 0.0125, LRURank: 4})
	s.OverflowPromotion(OverflowPromotionEvent{Page: 7, BetterSpatial: 2, BetterLRU: 5})
	s.Adapt(AdaptEvent{OldC: 12, NewC: 13})
	s.Mark(`phase "2"`)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), buf.String())
	}
	wantKinds := []string{"req", "evict", "promote", "adapt", "mark"}
	for i, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", i+1, err, line)
		}
		if m["t"] != wantKinds[i] {
			t.Errorf("line %d kind = %v, want %s", i+1, m["t"], wantKinds[i])
		}
	}
	// Spot-check field contents survived the hand-rolled encoding.
	var evict struct {
		Page   int     `json:"page"`
		Reason string  `json:"reason"`
		Crit   float64 `json:"crit"`
		Rank   int     `json:"rank"`
	}
	if err := json.Unmarshal([]byte(lines[1]), &evict); err != nil {
		t.Fatal(err)
	}
	if evict.Page != 9 || evict.Reason != ReasonSLRU || evict.Crit != 0.0125 || evict.Rank != 4 {
		t.Errorf("evict line decoded to %+v", evict)
	}
	var mark struct {
		Label string `json:"label"`
	}
	if err := json.Unmarshal([]byte(lines[4]), &mark); err != nil {
		t.Fatal(err)
	}
	if mark.Label != `phase "2"` {
		t.Errorf("mark label = %q (quotes must be escaped)", mark.Label)
	}
}

func TestTrajectoryRecorderAndCSVRoundTrip(t *testing.T) {
	r := NewTrajectoryRecorder()
	for i := 0; i < 10; i++ {
		r.Request(RequestEvent{Page: 1, Hit: i%2 == 0})
	}
	r.Adapt(AdaptEvent{OldC: 4, NewC: 5})
	for i := 0; i < 5; i++ {
		r.Request(RequestEvent{Page: 2})
	}
	r.Adapt(AdaptEvent{OldC: 5, NewC: 5})

	if r.Len() != 2 || r.Refs() != 15 {
		t.Fatalf("len = %d refs = %d, want 2/15", r.Len(), r.Refs())
	}
	if r.Ref[0] != 10 || r.Cand[0] != 5 || r.Ref[1] != 15 || r.Cand[1] != 5 {
		t.Errorf("samples = %v / %v", r.Ref, r.Cand)
	}

	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	refs, cands, err := ReadTrajectoryCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 2 || refs[0] != 10 || cands[1] != 5 {
		t.Errorf("round trip = %v / %v", refs, cands)
	}
}

func TestReadTrajectoryCSVErrors(t *testing.T) {
	cases := map[string]string{
		"missing header": "1,2\n",
		"bad pair":       "ref,candidate\nnope\n",
		"bad ref":        "ref,candidate\nx,2\n",
		"bad candidate":  "ref,candidate\n1,y\n",
	}
	for name, input := range cases {
		if _, _, err := ReadTrajectoryCSV(strings.NewReader(input)); err == nil {
			t.Errorf("%s: expected error for %q", name, input)
		}
	}
	// Comments and blank lines are tolerated.
	refs, _, err := ReadTrajectoryCSV(strings.NewReader("# produced by spatialbench\n\nref,candidate\n3,4\n"))
	if err != nil || len(refs) != 1 {
		t.Errorf("comment handling: refs=%v err=%v", refs, err)
	}
}

func TestWriteTrajectoryCSVLengthMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrajectoryCSV(&buf, []int{1, 2}, []int{1}); err == nil {
		t.Error("length mismatch should error")
	}
}
