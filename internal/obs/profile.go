package obs

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// ProfileFlags is the shared -cpuprofile/-memprofile/-trace wiring of
// the commands (spatialbench, datagen, tracedump): register the flags,
// call Start after flag.Parse, and invoke the returned stop function
// before exiting (NOT via defer past an os.Exit).
//
//	var prof obs.ProfileFlags
//	prof.Register(flag.CommandLine)
//	flag.Parse()
//	stop, err := prof.Start()
//	...
//	stop()
type ProfileFlags struct {
	CPUProfile string
	MemProfile string
	Trace      string
}

// Register adds the profiling flags to fs.
func (p *ProfileFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&p.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&p.MemProfile, "memprofile", "", "write a heap profile to this file on exit")
	fs.StringVar(&p.Trace, "trace", "", "write a runtime execution trace to this file")
}

// Start begins CPU profiling and execution tracing as requested and
// returns a stop function that ends them and writes the heap profile.
// The stop function is idempotent and never nil; it returns the first
// error encountered while finalizing the profiles.
func (p *ProfileFlags) Start() (stop func() error, err error) {
	var cpuFile, traceFile *os.File

	cleanup := func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
			cpuFile = nil
		}
		if traceFile != nil {
			trace.Stop()
			traceFile.Close()
			traceFile = nil
		}
	}

	if p.CPUProfile != "" {
		cpuFile, err = os.Create(p.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("obs: cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cleanup()
			return nil, fmt.Errorf("obs: cpuprofile: %w", err)
		}
	}
	if p.Trace != "" {
		traceFile, err = os.Create(p.Trace)
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("obs: trace: %w", err)
		}
		if err := trace.Start(traceFile); err != nil {
			cleanup()
			return nil, fmt.Errorf("obs: trace: %w", err)
		}
	}

	stopped := false
	return func() error {
		if stopped {
			return nil
		}
		stopped = true
		var firstErr error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
			cpuFile = nil
		}
		if traceFile != nil {
			trace.Stop()
			if err := traceFile.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
			traceFile = nil
		}
		if p.MemProfile != "" {
			f, err := os.Create(p.MemProfile)
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("obs: memprofile: %w", err)
				}
				return firstErr
			}
			runtime.GC() // materialize up-to-date allocation data
			if err := pprof.WriteHeapProfile(f); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("obs: memprofile: %w", err)
			}
			if err := f.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}, nil
}
