package obs

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

func TestProfileFlagsRegister(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var p ProfileFlags
	p.Register(fs)
	if err := fs.Parse([]string{"-cpuprofile", "a", "-memprofile", "b", "-trace", "c"}); err != nil {
		t.Fatal(err)
	}
	if p.CPUProfile != "a" || p.MemProfile != "b" || p.Trace != "c" {
		t.Errorf("parsed = %+v", p)
	}
}

func TestProfileFlagsStartStopWritesFiles(t *testing.T) {
	dir := t.TempDir()
	p := ProfileFlags{
		CPUProfile: filepath.Join(dir, "cpu.pprof"),
		MemProfile: filepath.Join(dir, "mem.pprof"),
		Trace:      filepath.Join(dir, "trace.out"),
	}
	stop, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	// Do a little work so the trace has something to record.
	sink := 0
	for i := 0; i < 1000; i++ {
		sink += i
	}
	_ = sink
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil { // idempotent
		t.Fatal(err)
	}
	for _, f := range []string{p.CPUProfile, p.MemProfile, p.Trace} {
		info, err := os.Stat(f)
		if err != nil {
			t.Errorf("%s: %v", f, err)
			continue
		}
		if info.Size() == 0 {
			t.Errorf("%s is empty", f)
		}
	}
}

func TestProfileFlagsEmptyIsNoop(t *testing.T) {
	var p ProfileFlags
	stop, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestProfileFlagsBadPath(t *testing.T) {
	p := ProfileFlags{CPUProfile: filepath.Join(t.TempDir(), "no", "such", "dir", "cpu")}
	if _, err := p.Start(); err == nil {
		t.Error("unwritable cpuprofile path should error")
	}
}
