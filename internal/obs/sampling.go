package obs

import "sync/atomic"

// SamplingSink forwards one in every N Request events to the wrapped
// sink and passes Eviction, OverflowPromotion and Adapt events through
// unchanged. It decouples exact accounting from bulk capture: a JSONL
// file behind a SamplingSink stays small under heavy load while the
// rare, decision-carrying events remain complete (exact request counters
// come from a Counters attached alongside, not from the sampled file).
//
// Sampling is deterministic — the 1st, N+1st, 2N+1st, … Request events
// are forwarded, counted by an atomic counter — so the sink is safe for
// concurrent producers and two runs over the same serialized stream
// select the same events.
type SamplingSink struct {
	down  Sink
	every uint64
	seen  atomic.Uint64
}

// NewSamplingSink wraps down so that only one in every Request events is
// forwarded. every ≤ 1 returns down unchanged (no wrapper); a nil down
// returns NopSink.
func NewSamplingSink(down Sink, every int) Sink {
	if down == nil {
		return NopSink{}
	}
	if every <= 1 {
		return down
	}
	return &SamplingSink{down: down, every: uint64(every)}
}

// Seen returns how many Request events were offered (forwarded or not).
func (s *SamplingSink) Seen() uint64 { return s.seen.Load() }

// Request implements Sink: every s.every-th event is forwarded.
func (s *SamplingSink) Request(e RequestEvent) {
	if (s.seen.Add(1)-1)%s.every == 0 {
		s.down.Request(e)
	}
}

// Eviction implements Sink (pass-through).
func (s *SamplingSink) Eviction(e EvictionEvent) { s.down.Eviction(e) }

// OverflowPromotion implements Sink (pass-through).
func (s *SamplingSink) OverflowPromotion(e OverflowPromotionEvent) { s.down.OverflowPromotion(e) }

// Adapt implements Sink (pass-through).
func (s *SamplingSink) Adapt(e AdaptEvent) { s.down.Adapt(e) }
