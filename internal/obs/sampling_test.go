package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestSamplingSinkDeterministic(t *testing.T) {
	rec := &recordingSink{}
	s := NewSamplingSink(rec, 3)
	for i := 0; i < 10; i++ {
		s.Request(RequestEvent{Page: 1})
	}
	// Events 1, 4, 7, 10 are forwarded.
	if rec.req != 4 {
		t.Errorf("forwarded %d of 10 requests at 1-in-3, want 4", rec.req)
	}
	// Non-request events pass through unconditionally.
	s.Eviction(EvictionEvent{})
	s.OverflowPromotion(OverflowPromotionEvent{})
	s.Adapt(AdaptEvent{})
	if rec.evict != 1 || rec.promote != 1 || rec.adapt != 1 {
		t.Errorf("pass-through events: %+v", *rec)
	}
	if seen := s.(*SamplingSink).Seen(); seen != 10 {
		t.Errorf("Seen() = %d, want 10", seen)
	}
}

func TestSamplingSinkDegenerateRates(t *testing.T) {
	rec := &recordingSink{}
	if s := NewSamplingSink(rec, 1); s != Sink(rec) {
		t.Error("1-in-1 sampling should return the sink unchanged")
	}
	if s := NewSamplingSink(rec, 0); s != Sink(rec) {
		t.Error("nonsense rate should return the sink unchanged")
	}
	if _, nop := NewSamplingSink(nil, 5).(NopSink); !nop {
		t.Error("nil downstream should yield NopSink")
	}
}

// TestMarkFlushes asserts the satellite contract: a reader of the
// underlying writer observes the mark line (and everything emitted
// before it) immediately after Mark returns, without an explicit Flush.
func TestMarkFlushes(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	s.Request(RequestEvent{Page: 1, Hit: true})
	if buf.Len() != 0 {
		t.Fatal("request line should still be buffered (precondition)")
	}
	s.Mark("combination 1")
	out := buf.String()
	if !strings.Contains(out, `"t":"req"`) || !strings.Contains(out, `"label":"combination 1"`) {
		t.Errorf("post-Mark read missed lines:\n%s", out)
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestTeePropagatesLatency(t *testing.T) {
	var h Histogram
	rec := &recordingSink{}
	tee := Tee(rec, &h)
	lr, ok := tee.(LatencyRecorder)
	if !ok {
		t.Fatal("Tee with a LatencyRecorder member must implement LatencyRecorder")
	}
	lr.RecordLatency(123)
	if h.Count() != 1 {
		t.Error("latency did not reach the histogram through the tee")
	}
	// A tee of latency-blind sinks must NOT advertise the interface, or
	// the manager would time requests for nothing.
	if _, ok := Tee(rec, &recordingSink{}).(LatencyRecorder); ok {
		t.Error("Tee of latency-blind sinks should not implement LatencyRecorder")
	}
}
