package shadow

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/buffer"
	"repro/internal/obs"
)

// Spec names one shadow configuration: a policy (by factory name, e.g.
// "LRU", "SLRU 50%", "ASB") simulated at a capacity in frames.
type Spec struct {
	Policy   string
	Capacity int
}

// Resolver maps a policy name to the factory that builds it — the hook
// that keeps this package decoupled from the policy registry. Commands
// pass core-backed resolvers (core.Resolver); tests pass stubs.
type Resolver func(name string) (buffer.PolicyFactory, error)

// DefaultPolicies are the what-if alternatives a default bank simulates
// at the real capacity: the classic baseline, the static combination and
// the paper's self-tuning proposal.
func DefaultPolicies() []string { return []string{"LRU", "SLRU 50%", "ASB"} }

// DefaultLadder is the capacity ladder (multipliers of the real
// capacity) the real policy is simulated at for the online miss-ratio
// curve. The 1× rung doubles as a self-check: its shadow replays the
// real configuration, so its hit ratio should track the real pool's.
func DefaultLadder() []float64 { return []float64{0.5, 1, 2, 4} }

// Specs builds the default shadow set for a pool running realPolicy at
// capacity frames: every policy in policies at capacity (what-if), plus
// realPolicy at each ladder rung (miss-ratio curve). Duplicate
// (policy, capacity) pairs and rungs below 2 frames are dropped by
// NewBank.
func Specs(realPolicy string, capacity int, policies []string, ladder []float64) []Spec {
	var specs []Spec
	for _, p := range policies {
		specs = append(specs, Spec{Policy: p, Capacity: capacity})
	}
	for _, m := range ladder {
		specs = append(specs, Spec{Policy: realPolicy, Capacity: int(float64(capacity)*m + 0.5)})
	}
	return specs
}

// Stat is the scrape snapshot of one shadow cache, JSON-shaped for the
// /events/shadow SSE stream and the offline CSV writer.
type Stat struct {
	Policy         string  `json:"policy"`
	Capacity       int     `json:"capacity"`
	Hits           uint64  `json:"hits"`
	Misses         uint64  `json:"misses"`
	HitRatio       float64 `json:"hit_ratio"`
	WindowHitRatio float64 `json:"window_hit_ratio"`
}

// Bank drives a set of shadow caches from one obs event stream and
// tracks the real pool's hit ratio alongside, deriving the regret gauge:
// real hit ratio minus the best shadow's hit ratio. A negative regret
// means some simulated configuration is beating the deployed one on the
// live traffic — the alertable signal.
//
// Bank implements obs.Sink. Request events drive every cache under one
// mutex; all other events are ignored (replacement simulation needs only
// the reference string). The mutex makes the bank safe for concurrent
// producers, but the intended deployment is behind a live.AsyncSink —
// one drain goroutine, no contention on the request path — optionally
// behind an obs.SamplingSink to trade shadow fidelity for event-rate
// headroom. All accessors read atomics and may be called from any
// goroutine (the gauge scrape path).
type Bank struct {
	obs.NopSink

	mu     sync.Mutex
	caches []*Cache

	realReqs atomic.Uint64
	realHits atomic.Uint64
}

// NewBank builds one shadow cache per spec. Specs are deduplicated by
// (policy, capacity) and specs with a capacity below 2 frames are
// skipped (the minimum every standard policy constructor accepts);
// resolving a policy name can fail, which is the only error path.
// window ≤ 0 selects DefaultWindow for every cache's rolling hit-ratio
// window.
func NewBank(specs []Spec, resolve Resolver, window int) (*Bank, error) {
	b := &Bank{}
	seen := make(map[Spec]bool, len(specs))
	for _, sp := range specs {
		if sp.Capacity < 2 || seen[sp] {
			continue
		}
		seen[sp] = true
		factory, err := resolve(sp.Policy)
		if err != nil {
			return nil, fmt.Errorf("shadow: %w", err)
		}
		pol := factory(sp.Capacity)
		if pol == nil {
			return nil, fmt.Errorf("shadow: factory for %q returned nil", sp.Policy)
		}
		b.caches = append(b.caches, NewCache(sp.Policy, pol, sp.Capacity, window))
	}
	// Deterministic order for gauges, SSE payloads and CSV columns:
	// by policy name, then capacity.
	sort.Slice(b.caches, func(i, j int) bool {
		if b.caches[i].policyName != b.caches[j].policyName {
			return b.caches[i].policyName < b.caches[j].policyName
		}
		return b.caches[i].capacity < b.caches[j].capacity
	})
	return b, nil
}

// Request implements obs.Sink: the real outcome feeds the regret
// baseline, then every shadow cache replays the reference.
func (b *Bank) Request(e obs.RequestEvent) {
	b.realReqs.Add(1)
	if e.Hit {
		b.realHits.Add(1)
	}
	b.mu.Lock()
	for _, c := range b.caches {
		c.Ref(e.Page, e.Meta, e.QueryID)
	}
	b.mu.Unlock()
}

// Shadows returns the bank's caches in their deterministic order. The
// slice is shared; callers must not mutate it.
func (b *Bank) Shadows() []*Cache { return b.caches }

// Len returns the number of shadow caches.
func (b *Bank) Len() int { return len(b.caches) }

// RealRequests returns the number of Request events observed.
func (b *Bank) RealRequests() uint64 { return b.realReqs.Load() }

// RealHitRatio returns the real pool's cumulative hit ratio as seen
// through the event stream (which, behind a SamplingSink, is the sampled
// stream's ratio).
func (b *Bank) RealHitRatio() float64 {
	r := b.realReqs.Load()
	if r == 0 {
		return 0
	}
	return float64(b.realHits.Load()) / float64(r)
}

// Regret returns the real policy's cumulative hit ratio minus the best
// shadow's, over the same observed stream. Negative regret means an
// alternative configuration is winning; shadows simulating larger
// capacities naturally drive it negative, so capacity-ladder rungs above
// 1× are excluded — regret compares configurations the deployed pool
// could have had at its actual size.
func (b *Bank) Regret() float64 {
	real := b.RealHitRatio()
	best := 0.0
	found := false
	for _, c := range b.caches {
		if c.capacity > b.referenceCapacity() {
			continue
		}
		if r := c.HitRatio(); !found || r > best {
			best, found = r, true
		}
	}
	if !found {
		return 0
	}
	return real - best
}

// referenceCapacity is the largest capacity not exceeding any other —
// in practice the real pool's capacity, recovered as the most common
// capacity among the what-if shadows. With only ladder shadows it is
// the smallest capacity, making regret a conservative comparison.
func (b *Bank) referenceCapacity() int {
	counts := make(map[int]int, len(b.caches))
	for _, c := range b.caches {
		counts[c.capacity]++
	}
	ref, n := 0, 0
	for c, cnt := range counts {
		if cnt > n || (cnt == n && c < ref) {
			ref, n = c, cnt
		}
	}
	return ref
}

// Stats returns a snapshot of every shadow cache, in the bank's
// deterministic order. Reads only atomics; safe during serving.
func (b *Bank) Stats() []Stat {
	out := make([]Stat, len(b.caches))
	for i, c := range b.caches {
		out[i] = Stat{
			Policy:         c.policyName,
			Capacity:       c.capacity,
			Hits:           c.Hits(),
			Misses:         c.Misses(),
			HitRatio:       c.HitRatio(),
			WindowHitRatio: c.WindowHitRatio(),
		}
	}
	return out
}
