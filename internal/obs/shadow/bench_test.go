package shadow_test

import (
	"encoding/json"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/obs/live"
	"repro/internal/obs/shadow"
	"repro/internal/page"
)

// The workload mirrors buffer's pool benchmarks: a hot set that mostly
// fits and a cold tail that keeps eviction (and thus event) traffic up.
const (
	benchNumPages = 512
	benchCapacity = 128
	benchHotPages = 64
	benchWorkers  = 8
	benchShards   = 4
)

func benchPageID(rng *rand.Rand) page.ID {
	if rng.Intn(4) < 3 {
		return page.ID(rng.Intn(benchHotPages) + 1)
	}
	return page.ID(rng.Intn(benchNumPages) + 1)
}

func drivePool(tb testing.TB, pool buffer.Pool, workers int, ops int64) {
	var next atomic.Int64
	var wg sync.WaitGroup
	var failed atomic.Bool
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for {
				i := next.Add(1)
				if i > ops {
					return
				}
				if _, err := pool.Get(benchPageID(rng), buffer.AccessContext{QueryID: uint64(i) / 4}); err != nil {
					failed.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if failed.Load() {
		tb.Fatal("pool request failed during benchmark")
	}
}

// benchPool builds the serving configuration bufserve deploys: the
// async composition over a MemStore. withBank attaches a default shadow
// bank behind an AsyncSink — the exact production composition — so the
// benchmark's on/off delta is the shadow profiler's request-path cost.
func benchPool(tb testing.TB, withBank bool) (pool *buffer.AsyncPool, cleanup func()) {
	tb.Helper()
	store := newStore(tb, benchNumPages)
	lru, err := core.Resolver("LRU")
	if err != nil {
		tb.Fatal(err)
	}
	router, err := buffer.NewRouter(store, lru, benchCapacity, benchShards)
	if err != nil {
		tb.Fatal(err)
	}
	pool = buffer.Async(router, buffer.AsyncConfig{})
	if !withBank {
		return pool, func() { pool.Close() }
	}
	specs := shadow.Specs("LRU", benchCapacity, shadow.DefaultPolicies(), shadow.DefaultLadder())
	bank, err := shadow.NewBank(specs, core.Resolver, 0)
	if err != nil {
		tb.Fatal(err)
	}
	async := live.NewAsyncSink(bank, live.DefaultRingCapacity, nil)
	pool.SetSink(async)
	return pool, func() {
		pool.SetSink(nil)
		pool.Close()
		async.Close()
	}
}

// BenchmarkPoolShadow measures async sharded serving with the shadow
// bank off versus on (the full default bank — 6 ghost caches — behind
// an AsyncSink). The acceptance bar for the profiler is that "on" costs
// the request path only the ring send.
func BenchmarkPoolShadow(b *testing.B) {
	for _, tc := range []struct {
		name     string
		withBank bool
	}{
		{"off", false},
		{"on", true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			pool, cleanup := benchPool(b, tc.withBank)
			defer cleanup()
			b.ReportAllocs()
			drivePool(b, pool, benchWorkers, int64(b.N))
		})
	}
}

// TestShadowDisabledHitPathZeroAllocs pins the disabled-profiler cost
// from outside the buffer package: with no sink attached, a buffer hit
// allocates nothing — shadow support (the Meta field on RequestEvent)
// must not have put the event on the heap.
func TestShadowDisabledHitPathZeroAllocs(t *testing.T) {
	store := newStore(t, 8)
	lru, err := core.Resolver("LRU")
	if err != nil {
		t.Fatal(err)
	}
	m, err := buffer.NewManager(store, lru(4), 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx := buffer.AccessContext{QueryID: 1}
	if _, err := m.Get(1, ctx); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := m.Get(1, ctx); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("hit path with shadows disabled allocates %.1f objects per request, want 0", allocs)
	}
}

// shadowBenchResult is one row of BENCH_shadow.json.
type shadowBenchResult struct {
	Bank      string  `json:"bank"`
	Shadows   int     `json:"shadows"`
	Workers   int     `json:"workers"`
	Ops       int64   `json:"ops"`
	NsPerOp   float64 `json:"ns_per_op"`
	OpsPerSec float64 `json:"ops_per_sec"`
}

// TestWriteBenchShadowJSON self-times serving with the shadow bank off
// and on and writes the comparison to the path in BENCH_SHADOW_JSON —
// the artifact CI archives next to BENCH_pool.json and
// BENCH_missio.json. A no-op without the variable.
func TestWriteBenchShadowJSON(t *testing.T) {
	path := os.Getenv("BENCH_SHADOW_JSON")
	if path == "" {
		t.Skip("BENCH_SHADOW_JSON not set")
	}
	const ops = 300_000
	var results []shadowBenchResult
	for _, tc := range []struct {
		name     string
		withBank bool
		shadows  int
	}{
		{"off", false, 0},
		{"on", true, 6},
	} {
		pool, cleanup := benchPool(t, tc.withBank)
		// One untimed pass warms the resident sets so the timed pass
		// measures steady-state serving, not cold misses.
		drivePool(t, pool, benchWorkers, ops/4)
		start := time.Now()
		drivePool(t, pool, benchWorkers, ops)
		elapsed := time.Since(start)
		cleanup()
		results = append(results, shadowBenchResult{
			Bank:      tc.name,
			Shadows:   tc.shadows,
			Workers:   benchWorkers,
			Ops:       ops,
			NsPerOp:   float64(elapsed.Nanoseconds()) / float64(ops),
			OpsPerSec: float64(ops) / elapsed.Seconds(),
		})
	}
	out := struct {
		Benchmark  string              `json:"benchmark"`
		GOOS       string              `json:"goos"`
		GOARCH     string              `json:"goarch"`
		GOMAXPROCS int                 `json:"gomaxprocs"`
		Results    []shadowBenchResult `json:"results"`
	}{
		Benchmark:  "PoolShadow",
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Results:    results,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %d results to %s", len(results), path)
}
