package shadow_test

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/live"
	"repro/internal/obs/shadow"
	"repro/internal/page"
)

// TestSamplingAsyncShadowComposition drives the deployment stack —
// SamplingSink ∘ AsyncSink ∘ Bank — from concurrent producers and
// asserts the exact number of sampled events reaching the bank. The
// ring is sized to hold every forwarded event, so no drop is legal; the
// SamplingSink's atomic counter guarantees exactly total/every Request
// events pass regardless of interleaving. Run under -race in CI.
func TestSamplingAsyncShadowComposition(t *testing.T) {
	const (
		producers = 8
		perProd   = 1000
		every     = 4
		total     = producers * perProd
		forwarded = total / every
	)
	bank, err := shadow.NewBank([]shadow.Spec{{Policy: "LRU", Capacity: 8}}, core.Resolver, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Size the ring for every event that can reach it — sampled requests
	// plus the unsampled evictions — so a drop is a bug, not backpressure.
	async := live.NewAsyncSink(bank, forwarded+producers*(perProd/100+1), nil)
	sink := obs.NewSamplingSink(async, every)

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				id := page.ID(p*perProd + i%16 + 1)
				sink.Request(obs.RequestEvent{
					Page:    id,
					QueryID: uint64(p),
					Hit:     i%2 == 0,
					Meta:    page.Meta{ID: id},
				})
				// Non-request events pass the sampler unsampled and must
				// not perturb the bank's request accounting.
				if i%100 == 0 {
					sink.Eviction(obs.EvictionEvent{Page: id})
				}
			}
		}(p)
	}
	wg.Wait()
	async.Close()

	if d := async.Dropped(); d != 0 {
		t.Fatalf("async sink dropped %d events with a full-size ring", d)
	}
	if got := bank.RealRequests(); got != forwarded {
		t.Errorf("bank observed %d requests, want exactly %d (= %d/%d)",
			got, forwarded, total, every)
	}
	c := bank.Shadows()[0]
	if got := c.Requests(); got != forwarded {
		t.Errorf("shadow replayed %d references, want %d", got, forwarded)
	}
	if c.Hits()+c.Misses() != c.Requests() {
		t.Errorf("hits %d + misses %d != requests %d", c.Hits(), c.Misses(), c.Requests())
	}
}
