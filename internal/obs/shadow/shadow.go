// Package shadow implements metadata-only ghost-cache simulators: buffer
// caches that hold no page data — only page IDs, their fixed-size
// spatial descriptors (page.Meta) and replacement-policy state — driven
// by the obs event stream of a real buffer pool. Each shadow cache
// replays the real request sequence against an alternative configuration
// (a different policy at the same capacity, or the same policy at a
// different capacity), so the running system continuously answers two
// questions the paper otherwise answers only by offline replay:
//
//   - What-if policy comparison: would LRU / SLRU / ASB have hit more
//     often on the live traffic? The paper's headline claim — ASB is
//     never worse than LRU on any studied distribution — becomes an
//     observable, alertable metric (the regret gauge of Bank).
//   - Online miss-ratio curve: the real policy simulated at a ladder of
//     capacities (½×, 1×, 2×, 4×) yields the hit ratio as a function of
//     buffer size, the capacity-planning curve, without restarts.
//
// A shadow cache replicates the Manager's admit/hit/evict protocol
// exactly (same logical clock, same callback order, same
// eviction-before-admission sequencing), driving a real buffer.Policy
// instance over ghost frames whose Page pointer stays nil. A shadow LRU
// fed the event stream of a real Manager+LRU therefore matches it
// hit-for-hit — the equivalence the tests pin down.
//
// Shadows see only read-path Request events: the write path (Put) is
// invisible to them, as are the page contents. Events with a zero Meta
// (coalesced waiters on an async pool, failed reads) are replayed with
// criteria unknown — spatial policies then score those pages as minimal.
// See the "Shadow cache contract" section of DESIGN.md for the full
// accuracy and overhead statement.
package shadow

import (
	"math"
	"sync/atomic"

	"repro/internal/buffer"
	"repro/internal/page"
)

// DefaultWindow is the rolling hit-ratio window size, in requests, used
// when a Bank or Cache is built with window ≤ 0.
const DefaultWindow = 4096

// Cache is one ghost cache: a replacement policy simulated over
// metadata-only frames. It is not safe for concurrent use — Bank drives
// its caches under one mutex — but its counters are atomics, so the
// accessor methods (Hits, Misses, HitRatio, WindowHitRatio, Len) may be
// called from any goroutine while the cache is being driven; that is
// the scrape path of the live gauges.
type Cache struct {
	policyName string
	capacity   int
	policy     buffer.Policy

	frames map[page.ID]*buffer.Frame
	// arena pre-allocates the ghost frames: a shadow holds at most
	// capacity frames, so evicted ghosts recycle through the arena
	// free-list and steady-state replay allocates nothing per reference.
	// Ghost frames carry Meta and policy state only — Page stays nil.
	arena *buffer.Arena
	clock uint64

	hits   atomic.Uint64
	misses atomic.Uint64
	len    atomic.Int64

	winSize  uint64
	winReqs  uint64
	winHits  uint64
	winValid atomic.Bool
	winRatio atomic.Uint64 // math.Float64bits of the last completed window's hit ratio
}

// NewCache builds a ghost cache of the given capacity (in frames, ≥ 2 so
// every standard policy constructor accepts it) around a fresh policy
// instance. policyName is the display/label name (the factory name, not
// policy.Name(), so "SLRU 50%" and "SLRU 25%" stay distinguishable).
// window ≤ 0 selects DefaultWindow.
func NewCache(policyName string, policy buffer.Policy, capacity, window int) *Cache {
	if window <= 0 {
		window = DefaultWindow
	}
	return &Cache{
		policyName: policyName,
		capacity:   capacity,
		policy:     policy,
		frames:     make(map[page.ID]*buffer.Frame, capacity),
		arena:      buffer.NewArena(capacity),
		winSize:    uint64(window),
	}
}

// Ref replays one page reference and reports whether it hit. The
// protocol mirrors buffer.Manager exactly: one clock tick per request;
// on a hit, OnHit with the previous LastUse still visible, then the
// LastUse update; on a miss, an eviction (Victim/OnEvict) when the cache
// is full, then admission (OnAdmit) at the request's logical time. meta
// is the referenced page's descriptor from the event stream; a zero Meta
// (criteria unknown) is admitted as-is apart from its ID, which is
// always forced to id so the ghost frame stays addressable.
func (c *Cache) Ref(id page.ID, meta page.Meta, queryID uint64) bool {
	c.clock++
	now := c.clock
	ctx := buffer.AccessContext{QueryID: queryID}
	hit := false
	if f, ok := c.frames[id]; ok {
		hit = true
		c.hits.Add(1)
		c.winHits++
		c.policy.OnHit(f, now, ctx)
		f.LastUse = now
	} else {
		c.misses.Add(1)
		admit := true
		if len(c.frames) >= c.capacity {
			// Ghost frames are never pinned, so Victim returning nil can
			// only mean a broken policy; mirror the Manager (which fails
			// the request with ErrAllPinned) by not admitting.
			if v := c.policy.Victim(ctx); v != nil {
				delete(c.frames, v.Meta.ID)
				c.policy.OnEvict(v)
				c.arena.Free(v)
			} else {
				admit = false
			}
		}
		if admit {
			meta.ID = id
			f := c.arena.Alloc()
			if f == nil {
				f = &buffer.Frame{} // defensive; capacity bounds residency
			}
			f.Meta = meta
			f.LastUse = now
			c.frames[id] = f
			c.policy.OnAdmit(f, now, ctx)
		}
		c.len.Store(int64(len(c.frames)))
	}
	c.winReqs++
	if c.winReqs >= c.winSize {
		c.winRatio.Store(math.Float64bits(float64(c.winHits) / float64(c.winReqs)))
		c.winValid.Store(true)
		c.winReqs, c.winHits = 0, 0
	}
	return hit
}

// PolicyName returns the label the cache was built with.
func (c *Cache) PolicyName() string { return c.policyName }

// Capacity returns the simulated capacity in frames.
func (c *Cache) Capacity() int { return c.capacity }

// Hits returns the cumulative hit count. Safe to call concurrently with
// Ref.
func (c *Cache) Hits() uint64 { return c.hits.Load() }

// Misses returns the cumulative miss count. Safe to call concurrently
// with Ref.
func (c *Cache) Misses() uint64 { return c.misses.Load() }

// Requests returns Hits+Misses. Safe to call concurrently with Ref.
func (c *Cache) Requests() uint64 { return c.hits.Load() + c.misses.Load() }

// Len returns the number of ghost-resident pages. Safe to call
// concurrently with Ref.
func (c *Cache) Len() int { return int(c.len.Load()) }

// HitRatio returns the cumulative hit ratio, 0 before any reference.
// Safe to call concurrently with Ref.
func (c *Cache) HitRatio() float64 {
	h, m := c.hits.Load(), c.misses.Load()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// WindowHitRatio returns the hit ratio of the most recently completed
// rolling window, falling back to the cumulative ratio until the first
// window completes. Safe to call concurrently with Ref.
func (c *Cache) WindowHitRatio() float64 {
	if c.winValid.Load() {
		return math.Float64frombits(c.winRatio.Load())
	}
	return c.HitRatio()
}

// ResidentIDs returns the ghost-resident page IDs in unspecified order.
// Unlike the counter accessors it reads the frame table, so it must not
// race with Ref — call it only while the cache (or its Bank) is
// quiescent. For tests and offline replay.
func (c *Cache) ResidentIDs() []page.ID {
	ids := make([]page.ID, 0, len(c.frames))
	for id := range c.frames {
		ids = append(ids, id)
	}
	return ids
}
