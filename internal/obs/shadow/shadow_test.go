package shadow_test

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/obs/shadow"
	"repro/internal/page"
	"repro/internal/storage"
	"repro/internal/trace"
)

// newStore creates a MemStore with n pages (IDs 1..n) whose spatial
// descriptors differ page to page, so spatial criteria discriminate.
func newStore(tb testing.TB, n int) *storage.MemStore {
	tb.Helper()
	s := storage.NewMemStore()
	for i := 0; i < n; i++ {
		id := s.Allocate()
		p := page.New(id, page.TypeData, 0, 2)
		p.Append(page.Entry{MBR: geom.NewRect(0, 0, float64(i+1), float64(i%7+1)), ObjID: uint64(i)})
		p.Append(page.Entry{MBR: geom.NewRect(float64(i%5), 0, float64(i%5)+2, 3), ObjID: uint64(i) + 1000})
		p.Recompute()
		if err := s.Write(p); err != nil {
			tb.Fatal(err)
		}
	}
	s.ResetStats()
	return s
}

// lcgTrace builds a deterministic reference string mixing a hot set and
// a uniform tail — the same shape the buffer benchmarks use.
func lcgTrace(refs, pages int) *trace.Trace {
	tr := &trace.Trace{Name: "lcg"}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < refs; i++ {
		var id page.ID
		if rng.Intn(4) < 3 {
			id = page.ID(rng.Intn(pages/4) + 1)
		} else {
			id = page.ID(rng.Intn(pages) + 1)
		}
		tr.Refs = append(tr.Refs, trace.Ref{Query: uint64(i) / 8, Page: id})
	}
	return tr
}

// checkingSink feeds every Request event to a shadow cache and fails the
// test on the first reference whose shadow outcome diverges from the
// real pool's — the hit-for-hit equivalence check.
type checkingSink struct {
	obs.NopSink
	t     *testing.T
	cache *shadow.Cache
	seen  int
}

func (cs *checkingSink) Request(e obs.RequestEvent) {
	cs.seen++
	if hit := cs.cache.Ref(e.Page, e.Meta, e.QueryID); hit != e.Hit {
		cs.t.Fatalf("ref %d (page %d): shadow hit=%v, real hit=%v", cs.seen, e.Page, hit, e.Hit)
	}
}

// TestShadowReplayEquivalence is the correctness anchor of the package:
// a shadow cache fed the event stream of a real Manager running the same
// policy at the same capacity must match it hit-for-hit, reference by
// reference, and end with the identical resident set. LRU is the
// contract's required case; the spatial and adaptive policies exercise
// the Meta plumbing (criteria travel on the events, not the pages).
func TestShadowReplayEquivalence(t *testing.T) {
	const (
		numPages = 200
		capacity = 32
		refs     = 20000
	)
	for _, polName := range []string{"LRU", "A", "SLRU 50%", "LRU-2", "ASB"} {
		t.Run(polName, func(t *testing.T) {
			store := newStore(t, numPages)
			factory, err := core.Resolver(polName)
			if err != nil {
				t.Fatal(err)
			}
			m, err := buffer.NewManager(store, factory(capacity), capacity)
			if err != nil {
				t.Fatal(err)
			}
			cache := shadow.NewCache(polName, factory(capacity), capacity, 0)
			cs := &checkingSink{t: t, cache: cache}
			m.SetSink(cs)

			tr := lcgTrace(refs, numPages)
			for _, ref := range tr.Refs {
				if _, err := m.Get(ref.Page, buffer.AccessContext{QueryID: ref.Query}); err != nil {
					t.Fatal(err)
				}
			}

			st := m.Stats()
			if cache.Hits() != st.Hits || cache.Misses() != st.Misses {
				t.Errorf("shadow %d/%d hits/misses, real %d/%d",
					cache.Hits(), cache.Misses(), st.Hits, st.Misses)
			}
			real := m.ResidentIDs()
			ghost := cache.ResidentIDs()
			sort.Slice(real, func(i, j int) bool { return real[i] < real[j] })
			sort.Slice(ghost, func(i, j int) bool { return ghost[i] < ghost[j] })
			if len(real) != len(ghost) {
				t.Fatalf("resident sets differ in size: real %d, ghost %d", len(real), len(ghost))
			}
			for i := range real {
				if real[i] != ghost[i] {
					t.Fatalf("resident sets diverge at %d: real %d, ghost %d", i, real[i], ghost[i])
				}
			}
		})
	}
}

// TestBankReplayedTrace runs a Bank behind a replayed trace (the offline
// deployment shape) and checks the what-if bookkeeping: the shadow
// matching the real configuration reproduces the real counters exactly,
// so the regret of a defaults bank can never be positive.
func TestBankReplayedTrace(t *testing.T) {
	const (
		numPages = 150
		capacity = 24
		refs     = 12000
	)
	store := newStore(t, numPages)
	specs := shadow.Specs("LRU", capacity, shadow.DefaultPolicies(), shadow.DefaultLadder())
	bank, err := shadow.NewBank(specs, core.Resolver, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 3 what-if policies at 1× plus ladder rungs 0.5×/2×/4× (the 1× rung
	// duplicates LRU@capacity and is dropped).
	if bank.Len() != 6 {
		t.Fatalf("bank has %d shadows, want 6: %+v", bank.Len(), bank.Stats())
	}

	tr := lcgTrace(refs, numPages)
	lru, err := core.Resolver("LRU")
	if err != nil {
		t.Fatal(err)
	}
	st, err := trace.ReplayWithSink(tr, store, lru(capacity), capacity, bank)
	if err != nil {
		t.Fatal(err)
	}

	if got := bank.RealRequests(); got != uint64(refs) {
		t.Errorf("bank observed %d requests, want %d", got, refs)
	}
	var mirror *shadow.Cache
	for _, c := range bank.Shadows() {
		if c.PolicyName() == "LRU" && c.Capacity() == capacity {
			mirror = c
		}
	}
	if mirror == nil {
		t.Fatal("no LRU shadow at the real capacity")
	}
	if mirror.Hits() != st.Hits || mirror.Misses() != st.Misses {
		t.Errorf("mirror shadow %d/%d hits/misses, real %d/%d",
			mirror.Hits(), mirror.Misses(), st.Hits, st.Misses)
	}
	if r := bank.Regret(); r > 1e-12 {
		t.Errorf("regret %v > 0 despite a shadow replaying the real configuration", r)
	}
	// The capacity ladder must be monotone: more frames never hit less
	// on the same policy (LRU has no Belady anomaly).
	ratioAt := make(map[int]float64)
	for _, s := range bank.Stats() {
		if s.Policy == "LRU" {
			ratioAt[s.Capacity] = s.HitRatio
		}
	}
	if !(ratioAt[capacity/2] <= ratioAt[capacity] && ratioAt[capacity] <= ratioAt[2*capacity] && ratioAt[2*capacity] <= ratioAt[4*capacity]) {
		t.Errorf("miss-ratio curve not monotone: %v", ratioAt)
	}
}

// TestCacheWindowRatio pins the rolling-window arithmetic: completed
// windows publish their ratio, the partial window falls back to the
// cumulative ratio.
func TestCacheWindowRatio(t *testing.T) {
	lru, err := core.Resolver("LRU")
	if err != nil {
		t.Fatal(err)
	}
	c := shadow.NewCache("LRU", lru(2), 2, 4)
	meta := page.Meta{}
	c.Ref(1, meta, 0) // miss
	c.Ref(1, meta, 0) // hit
	if got := c.WindowHitRatio(); got != 0.5 {
		t.Errorf("partial window ratio %v, want cumulative 0.5", got)
	}
	c.Ref(1, meta, 0) // hit
	c.Ref(1, meta, 0) // hit — completes the window at 3/4
	if got := c.WindowHitRatio(); got != 0.75 {
		t.Errorf("first window ratio %v, want 0.75", got)
	}
	for i := 0; i < 4; i++ {
		c.Ref(1, meta, 0)
	}
	if got := c.WindowHitRatio(); got != 1.0 {
		t.Errorf("second window ratio %v, want 1.0", got)
	}
	if got := c.HitRatio(); got != 7.0/8.0 {
		t.Errorf("cumulative ratio %v, want 7/8", got)
	}
}

// TestBankSkipsTinyAndDuplicateSpecs pins NewBank's spec hygiene.
func TestBankSkipsTinyAndDuplicateSpecs(t *testing.T) {
	bank, err := shadow.NewBank([]Spec{
		{Policy: "LRU", Capacity: 8},
		{Policy: "LRU", Capacity: 8}, // duplicate
		{Policy: "LRU", Capacity: 1}, // below the 2-frame minimum
		{Policy: "ASB", Capacity: 0}, // degenerate ladder rung
	}, core.Resolver, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bank.Len() != 1 {
		t.Errorf("bank has %d shadows, want 1", bank.Len())
	}
	if _, err := shadow.NewBank([]Spec{{Policy: "no-such-policy", Capacity: 8}}, core.Resolver, 0); err == nil {
		t.Error("unknown policy name should fail bank construction")
	}
}

// Spec aliased for brevity in table literals.
type Spec = shadow.Spec
