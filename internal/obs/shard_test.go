package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// latencySink records events and latencies, for TagShard pass-through
// checks.
type latencySink struct {
	recordingSink
	latencies []int64
}

func (l *latencySink) RecordLatency(ns int64) { l.latencies = append(l.latencies, ns) }

func TestTagShardRewritesEvents(t *testing.T) {
	rec := &recordingSink{}
	s := TagShard(rec, 3)

	s.Request(RequestEvent{Page: 1, Hit: true})
	if e := rec.last.(RequestEvent); e.Shard != 3 || e.Page != 1 || !e.Hit {
		t.Errorf("request = %+v, want shard 3 with fields intact", e)
	}
	s.Eviction(EvictionEvent{Page: 9, Reason: ReasonSLRU})
	if e := rec.last.(EvictionEvent); e.Shard != 3 || e.Page != 9 || e.Reason != ReasonSLRU {
		t.Errorf("eviction = %+v, want shard 3 with fields intact", e)
	}
	s.OverflowPromotion(OverflowPromotionEvent{Page: 7})
	if e := rec.last.(OverflowPromotionEvent); e.Shard != 3 || e.Page != 7 {
		t.Errorf("promotion = %+v, want shard 3", e)
	}
	s.Adapt(AdaptEvent{OldC: 4, NewC: 5})
	if e := rec.last.(AdaptEvent); e.Shard != 3 || e.OldC != 4 || e.NewC != 5 {
		t.Errorf("adapt = %+v, want shard 3", e)
	}
	if rec.req != 1 || rec.evict != 1 || rec.promote != 1 || rec.adapt != 1 {
		t.Errorf("event counts: %+v", *rec)
	}
}

func TestTagShardCollapsesNop(t *testing.T) {
	// nil and NopSink stay cost-free: no wrapper is allocated.
	if _, ok := TagShard(nil, 2).(NopSink); !ok {
		t.Error("TagShard(nil) should be NopSink")
	}
	if _, ok := TagShard(NopSink{}, 2).(NopSink); !ok {
		t.Error("TagShard(NopSink) should stay NopSink")
	}
}

func TestTagShardPreservesLatencyRecorder(t *testing.T) {
	// A latency-recording sink must keep recording through the tagger
	// (the manager decides whether to time requests by interface probe).
	ls := &latencySink{}
	tagged := TagShard(ls, 1)
	lr, ok := tagged.(LatencyRecorder)
	if !ok {
		t.Fatal("tagged latency sink lost LatencyRecorder")
	}
	lr.RecordLatency(42)
	if len(ls.latencies) != 1 || ls.latencies[0] != 42 {
		t.Errorf("latencies = %v, want [42]", ls.latencies)
	}
	tagged.Request(RequestEvent{Page: 5})
	if e := ls.last.(RequestEvent); e.Shard != 1 {
		t.Errorf("shard = %d, want 1", e.Shard)
	}

	// A latency-blind sink must NOT grow a LatencyRecorder by tagging,
	// or the manager would start timing requests nobody records.
	rec := &recordingSink{}
	if _, ok := TagShard(rec, 1).(LatencyRecorder); ok {
		t.Error("tagging a latency-blind sink must not add LatencyRecorder")
	}
}

// TestJSONLShardField pins the wire format: events from shard 0 (and all
// unsharded pools) serialize exactly as before — no "shard" key — while
// nonzero shards carry it, so existing JSONL consumers keep working.
func TestJSONLShardField(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	s.Request(RequestEvent{Page: 12, QueryID: 3, Hit: true})
	s.Request(RequestEvent{Page: 12, QueryID: 3, Hit: true, Shard: 2})
	s.Eviction(EvictionEvent{Page: 9, Reason: ReasonLRU, Shard: 5})
	s.OverflowPromotion(OverflowPromotionEvent{Page: 7, Shard: 1})
	s.Adapt(AdaptEvent{OldC: 3, NewC: 4, Shard: 7})
	s.Eviction(EvictionEvent{Page: 8, Reason: ReasonLRU})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 6 {
		t.Fatalf("got %d lines, want 6:\n%s", len(lines), buf.String())
	}
	if strings.Contains(lines[0], "shard") {
		t.Errorf("shard-0 request must omit the shard key: %s", lines[0])
	}
	if strings.Contains(lines[5], "shard") {
		t.Errorf("shard-0 eviction must omit the shard key: %s", lines[5])
	}
	wantShards := []int{2, 5, 1, 7}
	for i, line := range lines[1:5] {
		var m struct {
			Shard int `json:"shard"`
		}
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", i+2, err, line)
		}
		if m.Shard != wantShards[i] {
			t.Errorf("line %d shard = %d, want %d: %s", i+2, m.Shard, wantShards[i], line)
		}
	}
}
