package obs

import "testing"

// TestTeeDegenerateIdentity pins the contract that Tee never wraps when
// it doesn't have to: zero useful sinks collapse to NopSink and exactly
// one useful sink is returned as-is, so the per-event fan-out loop (and
// its slice) exists only for genuine fan-out.
func TestTeeDegenerateIdentity(t *testing.T) {
	rec := &recordingSink{}
	if _, nop := Tee().(NopSink); !nop {
		t.Errorf("Tee() = %T, want NopSink", Tee())
	}
	if _, nop := Tee(nil, NopSink{}, nil).(NopSink); !nop {
		t.Errorf("Tee(nil, NopSink, nil) = %T, want NopSink", Tee(nil, NopSink{}, nil))
	}
	if got := Tee(rec); got != Sink(rec) {
		t.Errorf("Tee(rec) = %T, want the sink itself", got)
	}
	if got := Tee(nil, rec, NopSink{}); got != Sink(rec) {
		t.Errorf("Tee(nil, rec, NopSink) = %T, want the sink itself", got)
	}
	if _, multi := Tee(rec, &recordingSink{}).(multiSink); !multi {
		t.Errorf("Tee(rec, rec2) = %T, want multiSink", Tee(rec, &recordingSink{}))
	}
}

// TestTeeDegenerateAllocFree asserts the degenerate paths allocate
// nothing — pools call SetSink(Tee(...)) on every reconfiguration, and
// the common single-sink and shutdown (all-nil) shapes must stay free.
func TestTeeDegenerateAllocFree(t *testing.T) {
	rec := &recordingSink{}
	cases := []struct {
		name string
		args []Sink
	}{
		{"empty", nil},
		{"all-dropped", []Sink{nil, NopSink{}, nil}},
		{"single", []Sink{rec}},
		{"single-among-dropped", []Sink{nil, rec, NopSink{}}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if n := testing.AllocsPerRun(100, func() { Tee(tc.args...) }); n != 0 {
				t.Errorf("Tee(%s): %.1f allocs/op, want 0", tc.name, n)
			}
		})
	}
}

func BenchmarkTeeSingle(b *testing.B) {
	rec := &recordingSink{}
	args := []Sink{nil, rec, NopSink{}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Tee(args...)
	}
}

func BenchmarkTeeEmpty(b *testing.B) {
	args := []Sink{nil, NopSink{}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Tee(args...)
	}
}

func BenchmarkTeeFanOut(b *testing.B) {
	args := []Sink{&recordingSink{}, &recordingSink{}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Tee(args...)
	}
}
