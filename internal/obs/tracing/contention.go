package tracing

import "sync/atomic"

// Contention aggregates shard-lock acquisition costs: cumulative
// lock-wait time, acquisition counts, and the instantaneous number of
// goroutines queued on each shard's lock. It is the aggregate companion
// of the per-request LockWait span field — the spans show individual
// stalls, the profiler shows which shards are hot overall. All methods
// are safe for concurrent use; the per-shard slots are padded so two
// shards' counters never share a cache line.
type Contention struct {
	shards []contendedShard
}

// contendedShard is one shard's counters, padded to a cache line.
type contendedShard struct {
	waiters  atomic.Int64  // goroutines currently acquiring the lock
	waitNs   atomic.Int64  // cumulative lock-wait nanoseconds
	acquired atomic.Uint64 // completed acquisitions
	_        [5]uint64     // pad to 64 bytes
}

// NewContention returns a profiler for the given shard count (≥ 1).
func NewContention(shards int) *Contention {
	if shards < 1 {
		shards = 1
	}
	return &Contention{shards: make([]contendedShard, shards)}
}

// Shards returns the number of profiled shards.
func (c *Contention) Shards() int { return len(c.shards) }

// BeginWait records that a goroutine started acquiring the shard's
// lock. Pair with EndWait after the lock is held.
func (c *Contention) BeginWait(shard int) {
	c.shards[shard].waiters.Add(1)
}

// EndWait records a completed acquisition that waited for the given
// nanoseconds.
func (c *Contention) EndWait(shard int, waitNs int64) {
	s := &c.shards[shard]
	s.waiters.Add(-1)
	s.waitNs.Add(waitNs)
	s.acquired.Add(1)
}

// Waiters returns the instantaneous queue depth of the shard's lock:
// goroutines between BeginWait and EndWait (including the one currently
// holding the lock if it has not reported yet).
func (c *Contention) Waiters(shard int) int64 { return c.shards[shard].waiters.Load() }

// WaitNanos returns the cumulative lock-wait time of the shard.
func (c *Contention) WaitNanos(shard int) int64 { return c.shards[shard].waitNs.Load() }

// Acquisitions returns the number of completed lock acquisitions of the
// shard.
func (c *Contention) Acquisitions(shard int) uint64 { return c.shards[shard].acquired.Load() }

// TotalWaitNanos returns the cumulative lock-wait time summed over all
// shards.
func (c *Contention) TotalWaitNanos() int64 {
	var n int64
	for i := range c.shards {
		n += c.shards[i].waitNs.Load()
	}
	return n
}
