package tracing

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one entry of the Chrome trace_event format's
// traceEvents array. Timestamps and durations are microseconds (with
// fractional precision: the spans are recorded in nanoseconds).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int32          `json:"pid"`
	Tid  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// spanArgs renders the kind-specific span payload as Chrome/Perfetto
// event args.
func spanArgs(sp Span) map[string]any {
	args := make(map[string]any, 8)
	switch sp.Kind {
	case KindGet, KindPut, KindFix, KindUnfix, KindMarkDirty:
		args["page"] = uint64(sp.Page)
		args["query"] = sp.QueryID
		args["hit"] = sp.Hit
		args["shard"] = sp.Shard
		if sp.LockWait > 0 {
			args["lock_wait_ns"] = sp.LockWait
		}
	case KindFlush:
		args["shard"] = sp.Shard
	case KindVictim:
		args["reason"] = sp.Reason
		args["criterion"] = sp.CritKind
		args["crit_win"] = sp.CritWin
		args["crit_lose"] = sp.CritLose
		args["lru_rank"] = sp.Rank
		args["arena_slot"] = sp.Slot
		args["page"] = uint64(sp.Page)
	case KindAdapt:
		args["old_c"] = sp.OldC
		args["new_c"] = sp.NewC
		args["better_spatial"] = sp.BetterSpatial
		args["better_lru"] = sp.BetterLRU
		args["page"] = uint64(sp.Page)
	case KindStoreRead, KindStoreWrite, KindWriteback:
		args["page"] = uint64(sp.Page)
		args["bytes"] = sp.Bytes
	case KindIOWait:
		args["page"] = uint64(sp.Page)
		args["coalesced"] = sp.Hit
	}
	if sp.Err {
		args["error"] = true
	}
	return args
}

// WriteChromeTrace writes the traces in the Chrome trace_event JSON
// format — load the file in chrome://tracing or https://ui.perfetto.dev.
// Each shard appears as a process (pid = shard), each sampled request as
// a thread (tid = trace ID), so concurrent requests on one shard render
// as parallel tracks and the spans of one request nest by containment.
func WriteChromeTrace(w io.Writer, traces [][]Span) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ns","traceEvents":[`); err != nil {
		return err
	}
	first := true
	emit := func(e chromeEvent) error {
		if !first {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		first = false
		// Encoder appends a newline per value; inside an array that is
		// harmless whitespace.
		return enc.Encode(e)
	}
	shards := map[int32]bool{}
	for _, tr := range traces {
		for _, sp := range tr {
			if !shards[sp.Shard] {
				shards[sp.Shard] = true
				err := emit(chromeEvent{
					Name: "process_name", Ph: "M", Pid: sp.Shard,
					Args: map[string]any{"name": fmt.Sprintf("shard %d", sp.Shard)},
				})
				if err != nil {
					return err
				}
			}
			err := emit(chromeEvent{
				Name: sp.Kind.String(),
				Ph:   "X",
				Ts:   float64(sp.Start) / 1e3,
				Dur:  float64(sp.Dur) / 1e3,
				Pid:  sp.Shard,
				Tid:  sp.Trace,
				Args: spanArgs(sp),
			})
			if err != nil {
				return err
			}
		}
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// jsonlSpan is the flat JSONL export schema of one span.
type jsonlSpan struct {
	Trace   uint64 `json:"trace"`
	Span    int    `json:"span"`
	Parent  int32  `json:"parent"`
	Kind    string `json:"kind"`
	Shard   int32  `json:"shard"`
	StartNs int64  `json:"start_ns"`
	DurNs   int64  `json:"dur_ns"`

	Page     uint64  `json:"page,omitempty"`
	Query    uint64  `json:"query,omitempty"`
	Hit      *bool   `json:"hit,omitempty"`
	Err      bool    `json:"err,omitempty"`
	LockWait int64   `json:"lock_wait_ns,omitempty"`
	Reason   string  `json:"reason,omitempty"`
	CritKind string  `json:"criterion,omitempty"`
	CritWin  float64 `json:"crit_win,omitempty"`
	CritLose float64 `json:"crit_lose,omitempty"`
	Rank     int32   `json:"lru_rank,omitempty"`
	Slot     *int32  `json:"arena_slot,omitempty"`
	OldC     int32   `json:"old_c,omitempty"`
	NewC     int32   `json:"new_c,omitempty"`
	BSpatial int32   `json:"better_spatial,omitempty"`
	BLRU     int32   `json:"better_lru,omitempty"`
	Bytes    int32   `json:"bytes,omitempty"`
}

// WriteSpansJSONL writes every span as one JSON object per line, for
// post-hoc analysis with jq/pandas (the span sibling of obs.JSONLSink).
func WriteSpansJSONL(w io.Writer, traces [][]Span) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, tr := range traces {
		for i, sp := range tr {
			row := jsonlSpan{
				Trace: sp.Trace, Span: i, Parent: sp.Parent,
				Kind: sp.Kind.String(), Shard: sp.Shard,
				StartNs: sp.Start, DurNs: sp.Dur,
				Page: uint64(sp.Page), Query: sp.QueryID, Err: sp.Err,
				LockWait: sp.LockWait, Reason: sp.Reason,
				CritKind: sp.CritKind, CritWin: sp.CritWin, CritLose: sp.CritLose,
				Rank: sp.Rank, OldC: sp.OldC, NewC: sp.NewC,
				BSpatial: sp.BetterSpatial, BLRU: sp.BetterLRU, Bytes: sp.Bytes,
			}
			if sp.Parent == -1 && (sp.Kind == KindGet || sp.Kind == KindPut || sp.Kind == KindFix ||
				sp.Kind == KindUnfix || sp.Kind == KindMarkDirty) {
				hit := sp.Hit
				row.Hit = &hit
			}
			if sp.Kind == KindVictim {
				// Pointer so slot 0 (a valid arena index) survives omitempty.
				slot := sp.Slot
				row.Slot = &slot
			}
			if err := enc.Encode(row); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
