package tracing

import (
	"net/http"
	"strconv"
)

// Handler serves the tracer's retained traces for download:
//
//	GET /debug/trace            last 64 traces, Chrome trace_event JSON
//	GET /debug/trace?n=200      last 200 traces
//	GET /debug/trace?format=jsonl   one span per line instead
//
// Chrome output loads directly in chrome://tracing or Perfetto. A nil
// tracer yields 404 (tracing disabled), so commands can mount the
// endpoint unconditionally.
func Handler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if t == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		n := 64
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 1 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			n = v
		}
		traces := t.Traces(n)
		switch r.URL.Query().Get("format") {
		case "", "chrome":
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			w.Header().Set("Content-Disposition", `attachment; filename="buffer-trace.json"`)
			if err := WriteChromeTrace(w, traces); err != nil {
				return // client gone; nothing useful to do
			}
		case "jsonl":
			w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
			w.Header().Set("Content-Disposition", `attachment; filename="buffer-trace.jsonl"`)
			if err := WriteSpansJSONL(w, traces); err != nil {
				return
			}
		default:
			http.Error(w, "bad format (want chrome or jsonl)", http.StatusBadRequest)
		}
	})
}
