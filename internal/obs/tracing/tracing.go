// Package tracing is the request-scoped complement to the aggregate
// event stream of package obs: a sampling span recorder that captures
// single buffer requests end-to-end — which shard the page hashed to,
// whether it hit, how long the request waited for the shard lock, which
// victim the replacement policy picked (and with what criterion values),
// how the ASB candidate size adapted, and what physical I/O resulted —
// as a tree of timed spans.
//
// Aggregates answer "how is the buffer doing"; spans answer "why did
// *this* request take 2 ms" and "what exactly did the policy decide".
// The paper's adaptation rule (§4.2) acts on individual overflow
// promotions, so debugging it needs per-request history, not counters.
//
// The overhead contract mirrors package obs: producers hold a *Tracer
// that may be nil (tracing disabled — the hot path pays one pointer
// test), and with tracing enabled the unsampled path pays one atomic
// increment and no allocations. Only sampled requests (1 in N) build a
// span tree, from a sync.Pool, and publish it into a fixed-size
// lock-free per-shard ring of completed traces. Export the rings with
// WriteChromeTrace (chrome://tracing / Perfetto) or WriteSpansJSONL,
// or serve them over HTTP with Handler.
package tracing

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/page"
)

// SpanKind identifies what a span measures. Root spans are the buffer
// entry points (Get/Put/Fix/Flush); the rest appear as children.
type SpanKind uint8

const (
	// KindGet is a read-path buffer request (root span).
	KindGet SpanKind = iota
	// KindPut is a write-path buffer request (root span).
	KindPut
	// KindFix is a pinning read-path request (root span).
	KindFix
	// KindFlush is a whole-buffer flush (root span; always sampled).
	KindFlush
	// KindVictim is a policy victim selection, emitted by the policy
	// with the criterion values that decided it.
	KindVictim
	// KindAdapt is an ASB candidate-size adaptation on an overflow hit.
	KindAdapt
	// KindStoreRead is a physical page read through the store.
	KindStoreRead
	// KindStoreWrite is a physical page write (write-back or flush).
	KindStoreWrite
	// KindUnfix is a pin release (root span): cheap and memory-only, but
	// traced so pin leaks line up with the Fix that created them.
	KindUnfix
	// KindMarkDirty is a dirty flagging (root span).
	KindMarkDirty
	// KindIOWait covers the part of a miss spent outside the shard lock:
	// either this request's own store read or the wait for another
	// request's coalesced read. Its extent inside the root span shows
	// exactly how much of the miss ran without blocking the shard.
	KindIOWait
	// KindWriteback is one background write-back of a dirty evicted
	// page, recorded by the writer goroutine (root span).
	KindWriteback
)

// String implements fmt.Stringer; the names double as Chrome trace
// event names.
func (k SpanKind) String() string {
	switch k {
	case KindGet:
		return "Get"
	case KindPut:
		return "Put"
	case KindFix:
		return "Fix"
	case KindFlush:
		return "Flush"
	case KindVictim:
		return "victim-select"
	case KindAdapt:
		return "asb-adapt"
	case KindStoreRead:
		return "store.Read"
	case KindStoreWrite:
		return "store.Write"
	case KindUnfix:
		return "Unfix"
	case KindMarkDirty:
		return "MarkDirty"
	case KindIOWait:
		return "io-wait"
	case KindWriteback:
		return "writeback"
	default:
		return "unknown"
	}
}

// Span is one timed node of a request trace. It is a fixed-size value:
// the string fields only ever hold package-level constants (eviction
// reasons, criterion names), so recording a span never allocates beyond
// the trace's span slice. A span's identity within its trace is its
// index in the trace slice; Parent is the index of the enclosing span
// (-1 for the root).
type Span struct {
	Trace  uint64 // trace ID, unique per tracer
	Parent int32  // index of the parent span in the trace; -1 = root
	Kind   SpanKind
	Shard  int32 // pool shard the span belongs to (0 when unsharded)
	Start  int64 // ns since the tracer's epoch
	Dur    int64 // ns

	// Request payload (root spans; Page also set on store spans).
	Page    page.ID
	QueryID uint64
	Hit     bool
	Err     bool
	// LockWait is the time the request spent acquiring its shard lock
	// before the root span started, as measured by the enclosing
	// concurrent pool (0 when unmeasured or uncontended).
	LockWait int64

	// Victim-selection payload (KindVictim).
	Reason   string  // eviction reason constant (obs.Reason*)
	CritKind string  // spatial criterion kind ("A", "EA", …)
	CritWin  float64 // criterion value of the selected victim
	CritLose float64 // worst (largest) criterion among scanned candidates
	Rank     int32   // victim's LRU rank, -1 when not applicable
	Slot     int32   // arena index of the victim's frame, -1 off-arena/none

	// Adaptation payload (KindAdapt).
	OldC, NewC               int32
	BetterSpatial, BetterLRU int32

	// Store I/O payload (KindStoreRead/KindStoreWrite).
	Bytes int32
}

// MaxSpansPerTrace bounds one trace's span count; Start calls beyond the
// bound are dropped (the trace stays valid, just truncated). A buffer
// request produces a handful of spans; only a Flush over a huge dirty
// set approaches the bound.
const MaxSpansPerTrace = 512

// Tracer is the sampling span recorder shared by a buffer stack. One
// Tracer serves any number of producer goroutines: the sampling counter
// and trace IDs are atomic, every Active trace is owned by exactly one
// request (which runs under its shard's lock), and completed traces
// land in per-shard single-producer rings.
type Tracer struct {
	every  uint64
	seen   atomic.Uint64
	nextID atomic.Uint64
	epoch  time.Time
	rings  []traceRing
	pool   sync.Pool
}

// traceRing is a fixed-size lock-free ring of completed traces for one
// shard. The shard's requests are serialized by the shard lock, so
// there is normally one producer; the atomic position counter also
// tolerates concurrent producers sharing a ring (as the experiment
// harness's parallel replay workers do on ring 0). Readers load slot
// pointers atomically and never block producers.
type traceRing struct {
	pos   atomic.Uint64
	slots []atomic.Pointer[[]Span]
}

// NewTracer returns a tracer sampling one in every requests (every ≤ 1
// records all of them), keeping up to perShard completed traces per
// shard ring. shards must cover the largest shard index the attached
// pools will use; unsharded managers record into ring 0.
func NewTracer(every, shards, perShard int) *Tracer {
	if every < 1 {
		every = 1
	}
	if shards < 1 {
		shards = 1
	}
	if perShard < 1 {
		perShard = 64
	}
	t := &Tracer{every: uint64(every), epoch: time.Now(), rings: make([]traceRing, shards)}
	for i := range t.rings {
		t.rings[i].slots = make([]atomic.Pointer[[]Span], perShard)
	}
	t.pool.New = func() any {
		return &Active{spans: make([]Span, 0, 16), open: make([]int32, 0, 4)}
	}
	return t
}

// SampleEvery returns the sampling interval (1 = every request).
func (t *Tracer) SampleEvery() int { return int(t.every) }

// Seen returns how many requests were offered to the sampler.
func (t *Tracer) Seen() uint64 { return t.seen.Load() }

// now returns nanoseconds since the tracer's epoch.
func (t *Tracer) now() int64 { return time.Since(t.epoch).Nanoseconds() }

// StartRequest begins a request trace if this request is sampled,
// returning nil otherwise (and on a nil tracer). The unsampled path is
// one atomic increment, no allocations. The returned Active must be
// closed with Finish.
func (t *Tracer) StartRequest(kind SpanKind, id page.ID, query uint64, shard int, lockWait int64) *Active {
	if t == nil {
		return nil
	}
	if (t.seen.Add(1)-1)%t.every != 0 {
		return nil
	}
	return t.start(kind, id, query, shard, lockWait)
}

// StartOp begins an always-sampled trace for a rare, non-request
// operation (Flush). Returns nil on a nil tracer.
func (t *Tracer) StartOp(kind SpanKind, shard int) *Active {
	if t == nil {
		return nil
	}
	return t.start(kind, 0, 0, shard, 0)
}

func (t *Tracer) start(kind SpanKind, id page.ID, query uint64, shard int, lockWait int64) *Active {
	a := t.pool.Get().(*Active)
	a.t = t
	a.shard = shard
	a.spans = a.spans[:0]
	a.open = a.open[:0]
	a.spans = append(a.spans, Span{
		Trace:    t.nextID.Add(1),
		Parent:   -1,
		Kind:     kind,
		Shard:    int32(shard),
		Start:    t.now(),
		Page:     id,
		QueryID:  query,
		LockWait: lockWait,
	})
	a.open = append(a.open, 0)
	return a
}

// Traces returns up to n completed traces, oldest first (n ≤ 0 returns
// everything retained). Traces are gathered from all shard rings and
// ordered by root start time; the newest n are kept. Safe to call while
// producers are recording.
func (t *Tracer) Traces(n int) [][]Span {
	if t == nil {
		return nil
	}
	var out [][]Span
	for i := range t.rings {
		for j := range t.rings[i].slots {
			if rec := t.rings[i].slots[j].Load(); rec != nil {
				out = append(out, *rec)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0].Start < out[j][0].Start })
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// Active is one in-flight sampled trace. It is owned by the request
// being traced and must not be shared across goroutines; the buffer
// stack guarantees that (a request runs under its shard's lock from
// StartRequest to Finish).
type Active struct {
	t       *Tracer
	shard   int
	spans   []Span
	open    []int32
	scratch Span // sink for At() of dropped spans
}

// Start opens a child span of the innermost open span and returns its
// index. Returns -1 (a no-op index) when the trace is full or a is nil.
func (a *Active) Start(kind SpanKind) int32 {
	if a == nil || len(a.spans) >= MaxSpansPerTrace {
		return -1
	}
	parent := int32(-1)
	if n := len(a.open); n > 0 {
		parent = a.open[n-1]
	}
	idx := int32(len(a.spans))
	a.spans = append(a.spans, Span{
		Trace:  a.spans[0].Trace,
		Parent: parent,
		Kind:   kind,
		Shard:  int32(a.shard),
		Start:  a.t.now(),
	})
	a.open = append(a.open, idx)
	return idx
}

// At returns the span at idx for payload writes between Start and End.
// The pointer is only valid until the next Start. A dropped index (-1)
// returns a scratch span so callers need no branch.
func (a *Active) At(idx int32) *Span {
	if idx < 0 || int(idx) >= len(a.spans) {
		return &a.scratch
	}
	return &a.spans[idx]
}

// End closes the span at idx, setting its duration.
func (a *Active) End(idx int32) {
	if a == nil || idx < 0 || int(idx) >= len(a.spans) {
		return
	}
	sp := &a.spans[idx]
	sp.Dur = a.t.now() - sp.Start
	if n := len(a.open); n > 0 && a.open[n-1] == idx {
		a.open = a.open[:n-1]
	}
}

// Finish closes the root span with the request outcome, publishes the
// completed trace into its shard's ring, and recycles the Active. The
// Active must not be used afterwards.
func (a *Active) Finish(hit, errored bool) {
	if a == nil {
		return
	}
	root := &a.spans[0]
	root.Hit = hit
	root.Err = errored
	root.Dur = a.t.now() - root.Start
	rec := make([]Span, len(a.spans))
	copy(rec, a.spans)
	r := &a.t.rings[a.shard%len(a.t.rings)]
	slot := (r.pos.Add(1) - 1) % uint64(len(r.slots))
	r.slots[slot].Store(&rec)
	a.t.pool.Put(a)
}

// Slot is the per-manager handoff point between the request path and
// the components below it (policy, store wrapper): the manager parks
// the current Active here for the duration of the request, and the
// policy's victim selection or the store's I/O attach child spans to
// whatever trace is active — nil for unsampled requests. All accesses
// happen under the manager's serialization (its own single thread or
// its shard's lock), so Slot needs no synchronization of its own.
type Slot struct{ a *Active }

// SetActive parks (or, with nil, clears) the in-flight trace.
func (s *Slot) SetActive(a *Active) { s.a = a }

// Active returns the in-flight trace, or nil when the current request
// is not sampled (or s itself is nil).
func (s *Slot) Active() *Active {
	if s == nil {
		return nil
	}
	return s.a
}

// SlotSetter is implemented by span producers below the manager
// (policies) that accept a trace slot; buffer.Manager.SetTracer
// forwards its slot through this interface, mirroring obs.SinkSetter.
type SlotSetter interface {
	SetTraceSlot(*Slot)
}

// SlotTarget is an embeddable slot holder: embedding it makes a policy
// a SlotSetter. TraceSlot may return nil (tracing never attached);
// Slot.Active and Active.Start are nil-safe, so producers can emit
// unconditionally.
type SlotTarget struct {
	slot *Slot
}

// SetTraceSlot implements SlotSetter.
func (t *SlotTarget) SetTraceSlot(s *Slot) { t.slot = s }

// TraceSlot returns the attached slot, or nil.
func (t *SlotTarget) TraceSlot() *Slot { return t.slot }
