package tracing

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// record completes one fully-populated fake request trace.
func record(t *Tracer, shard int, hit bool) *Active {
	a := t.StartRequest(KindGet, 42, 7, shard, 123)
	if a == nil {
		return nil
	}
	v := a.Start(KindVictim)
	sp := a.At(v)
	sp.Reason = "slru"
	sp.CritKind = "A"
	sp.CritWin = 0.25
	sp.CritLose = 0.75
	sp.Rank = 3
	a.End(v)
	r := a.Start(KindStoreRead)
	rp := a.At(r)
	rp.Page = 42
	rp.Bytes = 4096
	a.End(r)
	a.Finish(hit, false)
	return a
}

func TestSamplingExact(t *testing.T) {
	tr := NewTracer(4, 1, 64)
	sampled := 0
	for i := 0; i < 40; i++ {
		if a := tr.StartRequest(KindGet, 1, 0, 0, 0); a != nil {
			sampled++
			a.Finish(true, false)
		}
	}
	if sampled != 10 {
		t.Fatalf("sampled %d of 40 at 1-in-4, want 10", sampled)
	}
	if tr.Seen() != 40 {
		t.Fatalf("seen %d, want 40", tr.Seen())
	}
}

func TestSamplingExactConcurrent(t *testing.T) {
	tr := NewTracer(8, 4, 256)
	const goroutines, per = 8, 400
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if a := tr.StartRequest(KindGet, 1, 0, g%4, 0); a != nil {
					a.Finish(true, false)
				}
			}
		}(g)
	}
	wg.Wait()
	// The atomic sampling counter guarantees the exact global ratio no
	// matter how the emits interleave.
	if got, want := len(tr.Traces(0)), goroutines*per/8; got != want {
		t.Fatalf("retained %d traces, want %d", got, want)
	}
}

func TestSpanNesting(t *testing.T) {
	tr := NewTracer(1, 2, 8)
	record(tr, 1, false)
	traces := tr.Traces(0)
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	spans := traces[0]
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	root := spans[0]
	if root.Kind != KindGet || root.Parent != -1 || root.Shard != 1 {
		t.Fatalf("bad root span: %+v", root)
	}
	if root.LockWait != 123 || root.Page != 42 || root.QueryID != 7 {
		t.Fatalf("root payload lost: %+v", root)
	}
	if spans[1].Kind != KindVictim || spans[1].Parent != 0 {
		t.Fatalf("bad victim span: %+v", spans[1])
	}
	if spans[1].Reason != "slru" || spans[1].CritWin != 0.25 || spans[1].CritLose != 0.75 {
		t.Fatalf("victim payload lost: %+v", spans[1])
	}
	if spans[2].Kind != KindStoreRead || spans[2].Parent != 0 || spans[2].Bytes != 4096 {
		t.Fatalf("bad store span: %+v", spans[2])
	}
	for _, sp := range spans {
		if sp.Trace != root.Trace {
			t.Fatalf("span trace ID %d != root %d", sp.Trace, root.Trace)
		}
	}
}

func TestRingWraps(t *testing.T) {
	tr := NewTracer(1, 1, 4)
	for i := 0; i < 10; i++ {
		a := tr.StartRequest(KindGet, 1, uint64(i), 0, 0)
		a.Finish(true, false)
	}
	traces := tr.Traces(0)
	if len(traces) != 4 {
		t.Fatalf("ring retained %d traces, want 4", len(traces))
	}
	// Oldest-first ordering of the newest four (queries 6..9).
	for i, trc := range traces {
		if want := uint64(6 + i); trc[0].QueryID != want {
			t.Fatalf("trace %d has query %d, want %d", i, trc[0].QueryID, want)
		}
	}
	if got := len(tr.Traces(2)); got != 2 {
		t.Fatalf("Traces(2) returned %d", got)
	}
}

func TestTraceSpanCap(t *testing.T) {
	tr := NewTracer(1, 1, 2)
	a := tr.StartRequest(KindFlush, 0, 0, 0, 0)
	for i := 0; i < MaxSpansPerTrace+100; i++ {
		idx := a.Start(KindStoreWrite)
		a.At(idx).Bytes = 1 // must not panic for dropped spans
		a.End(idx)
	}
	a.Finish(false, false)
	spans := tr.Traces(0)[0]
	if len(spans) != MaxSpansPerTrace {
		t.Fatalf("trace holds %d spans, want cap %d", len(spans), MaxSpansPerTrace)
	}
}

func TestNilTracerAndSlotAreSafe(t *testing.T) {
	var tr *Tracer
	if a := tr.StartRequest(KindGet, 1, 0, 0, 0); a != nil {
		t.Fatal("nil tracer sampled a request")
	}
	if a := tr.StartOp(KindFlush, 0); a != nil {
		t.Fatal("nil tracer sampled an op")
	}
	if got := tr.Traces(10); got != nil {
		t.Fatalf("nil tracer returned traces: %v", got)
	}
	var s *Slot
	if s.Active() != nil {
		t.Fatal("nil slot returned an active trace")
	}
	var target SlotTarget
	if target.TraceSlot().Active() != nil {
		t.Fatal("zero SlotTarget returned an active trace")
	}
	var a *Active
	if idx := a.Start(KindVictim); idx != -1 {
		t.Fatalf("nil Active Start returned %d", idx)
	}
	a.End(-1)
	a.Finish(false, false)
}

func TestUnsampledPathAllocFree(t *testing.T) {
	tr := NewTracer(1<<30, 1, 8)
	tr.StartRequest(KindGet, 1, 0, 0, 0) // consume the first (sampled) slot
	allocs := testing.AllocsPerRun(1000, func() {
		if a := tr.StartRequest(KindGet, 1, 0, 0, 0); a != nil {
			t.Fatal("sampled unexpectedly")
		}
	})
	if allocs != 0 {
		t.Fatalf("unsampled StartRequest allocates %.1f/op, want 0", allocs)
	}
}

func TestChromeExportValidJSON(t *testing.T) {
	tr := NewTracer(1, 2, 8)
	record(tr, 0, true)
	record(tr, 1, false)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Traces(0)); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v\n%s", err, buf.String())
	}
	// 2 traces × 3 spans + 2 process_name metadata events.
	if len(doc.TraceEvents) != 8 {
		t.Fatalf("got %d events, want 8", len(doc.TraceEvents))
	}
	kinds := map[string]int{}
	for _, e := range doc.TraceEvents {
		kinds[e.Name]++
		if e.Ph != "X" && e.Ph != "M" {
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}
	if kinds["Get"] != 2 || kinds["victim-select"] != 2 || kinds["store.Read"] != 2 || kinds["process_name"] != 2 {
		t.Fatalf("unexpected event mix: %v", kinds)
	}
}

func TestJSONLExport(t *testing.T) {
	tr := NewTracer(1, 1, 8)
	record(tr, 0, true)
	var buf bytes.Buffer
	if err := WriteSpansJSONL(&buf, tr.Traces(0)); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	for _, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("bad JSONL line %q: %v", ln, err)
		}
	}
	if !strings.Contains(lines[0], `"hit":true`) {
		t.Fatalf("root line misses hit flag: %s", lines[0])
	}
	if !strings.Contains(lines[1], `"crit_lose":0.75`) {
		t.Fatalf("victim line misses criterion payload: %s", lines[1])
	}
}

func TestContention(t *testing.T) {
	c := NewContention(3)
	if c.Shards() != 3 {
		t.Fatalf("Shards() = %d", c.Shards())
	}
	c.BeginWait(1)
	if c.Waiters(1) != 1 {
		t.Fatalf("Waiters = %d, want 1", c.Waiters(1))
	}
	c.EndWait(1, 500)
	c.BeginWait(1)
	c.EndWait(1, 250)
	if c.Waiters(1) != 0 || c.WaitNanos(1) != 750 || c.Acquisitions(1) != 2 {
		t.Fatalf("shard 1 counters: waiters=%d wait=%d acq=%d",
			c.Waiters(1), c.WaitNanos(1), c.Acquisitions(1))
	}
	c.BeginWait(0)
	c.EndWait(0, 50)
	if c.TotalWaitNanos() != 800 {
		t.Fatalf("TotalWaitNanos = %d, want 800", c.TotalWaitNanos())
	}
}

func TestContentionConcurrent(t *testing.T) {
	c := NewContention(4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s := (g + i) % 4
				c.BeginWait(s)
				c.EndWait(s, 1)
			}
		}(g)
	}
	wg.Wait()
	var total uint64
	for s := 0; s < 4; s++ {
		if c.Waiters(s) != 0 {
			t.Fatalf("shard %d has %d leftover waiters", s, c.Waiters(s))
		}
		total += c.Acquisitions(s)
	}
	if total != 8000 {
		t.Fatalf("acquisitions %d, want 8000", total)
	}
	if c.TotalWaitNanos() != 8000 {
		t.Fatalf("TotalWaitNanos = %d, want 8000", c.TotalWaitNanos())
	}
}

// BenchmarkStartRequestUnsampled is the disabled-path cost every buffer
// request pays when a tracer is attached: one atomic add, no
// allocations.
func BenchmarkStartRequestUnsampled(b *testing.B) {
	tr := NewTracer(1<<30, 1, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if a := tr.StartRequest(KindGet, 1, 0, 0, 0); a != nil {
			a.Finish(true, false)
		}
	}
}

// BenchmarkSampledTrace measures the full cost of one sampled request
// trace (pool get, three spans, publish, pool put).
func BenchmarkSampledTrace(b *testing.B) {
	tr := NewTracer(1, 1, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		record(tr, 0, true)
	}
}
