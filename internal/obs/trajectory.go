package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// TrajectoryRecorder captures the ASB candidate-set trajectory (the
// Fig. 14 series) from the event stream: it counts Request events to
// know the current reference index and appends one (ref, candidate)
// sample per Adapt event. It replaces the bespoke OnAdapt callback
// plumbing that experiment.RunAdaptation and cmd/asbviz used to carry.
//
// TrajectoryRecorder implements Sink; Eviction and OverflowPromotion
// events are ignored. Not safe for concurrent use.
type TrajectoryRecorder struct {
	NopSink

	refs int
	// Ref[i] is the 0-based reference index at which sample i was taken;
	// Cand[i] the candidate-set size after that adaptation event.
	Ref  []int
	Cand []int
}

// NewTrajectoryRecorder returns an empty recorder.
func NewTrajectoryRecorder() *TrajectoryRecorder { return &TrajectoryRecorder{} }

// Request implements Sink: it only advances the reference index.
func (r *TrajectoryRecorder) Request(RequestEvent) { r.refs++ }

// Adapt implements Sink.
func (r *TrajectoryRecorder) Adapt(e AdaptEvent) {
	r.Ref = append(r.Ref, r.refs)
	r.Cand = append(r.Cand, e.NewC)
}

// Refs returns the number of Request events seen.
func (r *TrajectoryRecorder) Refs() int { return r.refs }

// Len returns the number of recorded samples.
func (r *TrajectoryRecorder) Len() int { return len(r.Ref) }

// WriteCSV writes the recorded series in the c-trajectory CSV format.
func (r *TrajectoryRecorder) WriteCSV(w io.Writer) error {
	return WriteTrajectoryCSV(w, r.Ref, r.Cand)
}

// WriteTrajectoryCSV writes a candidate-set trajectory as CSV with the
// header "ref,candidate" — the interchange format between spatialbench
// (producer) and asbviz (consumer).
func WriteTrajectoryCSV(w io.Writer, refs, cands []int) error {
	if len(refs) != len(cands) {
		return fmt.Errorf("obs: trajectory length mismatch: %d refs, %d candidates", len(refs), len(cands))
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("ref,candidate\n"); err != nil {
		return err
	}
	var buf []byte
	for i := range refs {
		buf = strconv.AppendInt(buf[:0], int64(refs[i]), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(cands[i]), 10)
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrajectoryCSV parses a c-trajectory CSV (as written by
// WriteTrajectoryCSV, cmd/asbviz -csv or cmd/spatialbench -ctraj).
// The header line is required; blank lines and lines starting with '#'
// are skipped.
func ReadTrajectoryCSV(rd io.Reader) (refs, cands []int, err error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	sawHeader := false
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if !sawHeader {
			if text != "ref,candidate" {
				return nil, nil, fmt.Errorf("obs: line %d: want header %q, got %q", line, "ref,candidate", text)
			}
			sawHeader = true
			continue
		}
		ref, cand, ok := strings.Cut(text, ",")
		if !ok {
			return nil, nil, fmt.Errorf("obs: line %d: not a ref,candidate pair: %q", line, text)
		}
		r, err := strconv.Atoi(strings.TrimSpace(ref))
		if err != nil {
			return nil, nil, fmt.Errorf("obs: line %d: bad ref: %w", line, err)
		}
		c, err := strconv.Atoi(strings.TrimSpace(cand))
		if err != nil {
			return nil, nil, fmt.Errorf("obs: line %d: bad candidate: %w", line, err)
		}
		refs = append(refs, r)
		cands = append(cands, c)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return refs, cands, nil
}
