package obs

// WindowTracker aggregates Request events into fixed-size windows of
// consecutive requests and keeps the most recent windows in a ring. It
// turns the cumulative hit ratio of buffer.Stats into a *windowed* hit
// ratio, which is what makes workload-shift experiments (the Fig. 12–14
// mixed workloads) legible mid-run: a policy adapting to a new phase
// shows up as a windowed-ratio transient that the cumulative ratio
// smears out.
//
// The tracker also accepts optional per-request latencies via
// RecordLatency for callers that time their requests (the simulation
// core is counting-based, so the manager does not time requests itself).
//
// WindowTracker implements Sink; non-Request events are ignored. It is
// not safe for concurrent use.
type WindowTracker struct {
	NopSink

	perWindow uint64
	ring      []WindowStats
	completed uint64 // windows closed since creation
	cur       WindowStats
}

// WindowStats are the aggregates of one window of consecutive requests.
type WindowStats struct {
	Requests uint64
	Hits     uint64
	// LatencyNanos is the sum of latencies recorded during the window;
	// LatencySamples the number of recordings (0 if the caller does not
	// time requests).
	LatencyNanos   int64
	LatencySamples uint64
}

// HitRatio returns Hits/Requests for the window, or 0 for an empty one.
func (w WindowStats) HitRatio() float64 {
	if w.Requests == 0 {
		return 0
	}
	return float64(w.Hits) / float64(w.Requests)
}

// MeanLatencyNanos returns the mean recorded latency, or 0 without
// samples.
func (w WindowStats) MeanLatencyNanos() float64 {
	if w.LatencySamples == 0 {
		return 0
	}
	return float64(w.LatencyNanos) / float64(w.LatencySamples)
}

// NewWindowTracker returns a tracker aggregating perWindow requests per
// window and retaining the keep most recent completed windows. Both must
// be ≥ 1.
func NewWindowTracker(perWindow, keep int) *WindowTracker {
	perWindow, keep = max(perWindow, 1), max(keep, 1)
	return &WindowTracker{
		perWindow: uint64(perWindow),
		ring:      make([]WindowStats, 0, keep),
	}
}

// Request implements Sink.
func (t *WindowTracker) Request(e RequestEvent) {
	t.cur.Requests++
	if e.Hit {
		t.cur.Hits++
	}
	if t.cur.Requests >= t.perWindow {
		t.close()
	}
}

// RecordLatency adds one timed request to the current window.
func (t *WindowTracker) RecordLatency(nanos int64) {
	t.cur.LatencyNanos += nanos
	t.cur.LatencySamples++
}

// close pushes the current window into the ring, overwriting the oldest
// retained window once the ring is full.
func (t *WindowTracker) close() {
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, t.cur)
	} else {
		t.ring[t.completed%uint64(cap(t.ring))] = t.cur
	}
	t.completed++
	t.cur = WindowStats{}
}

// Completed returns how many windows have been closed since creation
// (including windows already overwritten in the ring).
func (t *WindowTracker) Completed() uint64 { return t.completed }

// WindowSize returns the number of requests per window.
func (t *WindowTracker) WindowSize() int { return int(t.perWindow) }

// Current returns the still-open window (fewer than WindowSize requests).
func (t *WindowTracker) Current() WindowStats { return t.cur }

// Windows returns the retained completed windows, oldest first. The
// returned slice is freshly allocated.
func (t *WindowTracker) Windows() []WindowStats {
	n := len(t.ring)
	out := make([]WindowStats, 0, n)
	if t.completed > uint64(cap(t.ring)) && n == cap(t.ring) {
		// Ring has wrapped: the oldest retained window sits at the next
		// overwrite position.
		start := int(t.completed % uint64(cap(t.ring)))
		out = append(out, t.ring[start:]...)
		out = append(out, t.ring[:start]...)
		return out
	}
	return append(out, t.ring...)
}

// HitRatios returns the hit ratio of each retained window, oldest first.
func (t *WindowTracker) HitRatios() []float64 {
	ws := t.Windows()
	out := make([]float64, len(ws))
	for i, w := range ws {
		out[i] = w.HitRatio()
	}
	return out
}
