package obs

import "testing"

// fill pushes n requests with the given hit pattern into the tracker.
func fill(t *WindowTracker, n int, hit bool) {
	for i := 0; i < n; i++ {
		t.Request(RequestEvent{Hit: hit})
	}
}

func TestWindowTrackerBasics(t *testing.T) {
	w := NewWindowTracker(4, 3)
	if w.WindowSize() != 4 {
		t.Fatalf("window size = %d", w.WindowSize())
	}
	fill(w, 3, true)
	if w.Completed() != 0 {
		t.Fatal("window closed early")
	}
	if cur := w.Current(); cur.Requests != 3 || cur.Hits != 3 {
		t.Fatalf("current = %+v", cur)
	}
	w.Request(RequestEvent{Hit: false})
	if w.Completed() != 1 {
		t.Fatal("window did not close at size 4")
	}
	ws := w.Windows()
	if len(ws) != 1 || ws[0].Requests != 4 || ws[0].Hits != 3 {
		t.Fatalf("windows = %+v", ws)
	}
	if r := ws[0].HitRatio(); r != 0.75 {
		t.Errorf("hit ratio = %f, want 0.75", r)
	}
	if (WindowStats{}).HitRatio() != 0 {
		t.Error("empty window hit ratio should be 0")
	}
}

// TestWindowTrackerWrapAround closes more windows than the ring retains
// and checks that Windows() returns exactly the most recent ones, oldest
// first, with the overwritten windows gone.
func TestWindowTrackerWrapAround(t *testing.T) {
	w := NewWindowTracker(2, 3)
	// Close 8 windows with distinguishable hit counts: window i has
	// i%3 hits (0, 1 or 2 of its 2 requests).
	for i := 0; i < 8; i++ {
		hits := i % 3
		fill(w, hits, true)
		fill(w, 2-hits, false)
	}
	if w.Completed() != 8 {
		t.Fatalf("completed = %d, want 8", w.Completed())
	}
	ws := w.Windows()
	if len(ws) != 3 {
		t.Fatalf("retained %d windows, want 3", len(ws))
	}
	// Windows 5, 6, 7 survive, with hit counts 5%3=2, 6%3=0, 7%3=1.
	wantHits := []uint64{2, 0, 1}
	for i, win := range ws {
		if win.Requests != 2 || win.Hits != wantHits[i] {
			t.Errorf("window %d = %+v, want %d hits", i, win, wantHits[i])
		}
	}
	ratios := w.HitRatios()
	if len(ratios) != 3 || ratios[0] != 1 || ratios[1] != 0 || ratios[2] != 0.5 {
		t.Errorf("hit ratios = %v", ratios)
	}
}

// TestWindowTrackerExactRingBoundary covers the edge where the number of
// completed windows equals the ring size: no wrap has happened yet and
// ordering must still be oldest-first.
func TestWindowTrackerExactRingBoundary(t *testing.T) {
	w := NewWindowTracker(1, 4)
	for i := 0; i < 4; i++ {
		w.Request(RequestEvent{Hit: i == 3})
	}
	ws := w.Windows()
	if len(ws) != 4 {
		t.Fatalf("retained %d windows, want 4", len(ws))
	}
	for i, win := range ws {
		wantHit := uint64(0)
		if i == 3 {
			wantHit = 1
		}
		if win.Hits != wantHit {
			t.Errorf("window %d hits = %d, want %d", i, win.Hits, wantHit)
		}
	}
	// One more closes window 4 and overwrites window 0.
	w.Request(RequestEvent{Hit: true})
	ws = w.Windows()
	if len(ws) != 4 || ws[0].Hits != 0 || ws[3].Hits != 1 {
		t.Errorf("after wrap: %+v", ws)
	}
}

func TestWindowTrackerLatency(t *testing.T) {
	w := NewWindowTracker(2, 2)
	w.Request(RequestEvent{Hit: true})
	w.RecordLatency(100)
	w.RecordLatency(300)
	w.Request(RequestEvent{})
	ws := w.Windows()
	if len(ws) != 1 {
		t.Fatalf("windows = %+v", ws)
	}
	if ws[0].LatencySamples != 2 || ws[0].LatencyNanos != 400 {
		t.Errorf("latency agg = %+v", ws[0])
	}
	if m := ws[0].MeanLatencyNanos(); m != 200 {
		t.Errorf("mean latency = %f, want 200", m)
	}
	if (WindowStats{}).MeanLatencyNanos() != 0 {
		t.Error("mean latency without samples should be 0")
	}
}

func TestWindowTrackerClampsArguments(t *testing.T) {
	w := NewWindowTracker(0, -1)
	w.Request(RequestEvent{Hit: true})
	if w.Completed() != 1 {
		t.Error("perWindow should clamp to 1")
	}
	if len(w.Windows()) != 1 {
		t.Error("keep should clamp to 1")
	}
}
