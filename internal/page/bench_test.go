package page

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func benchPage(entries int) *Page {
	rng := rand.New(rand.NewSource(1))
	p := New(1, TypeData, 0, entries)
	for i := 0; i < entries; i++ {
		x, y := rng.Float64()*100, rng.Float64()*100
		p.Append(Entry{MBR: geom.NewRect(x, y, x+rng.Float64()*5, y+rng.Float64()*5)})
	}
	return p
}

// BenchmarkRecompute measures the full statistics pass including the
// O(n²) entry overlap, at the paper's data-page fan-out.
func BenchmarkRecompute(b *testing.B) {
	p := benchPage(42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Recompute()
	}
}

// BenchmarkRecomputeFast measures the O(n) pass used on the index build
// path.
func BenchmarkRecomputeFast(b *testing.B) {
	p := benchPage(42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.RecomputeFast()
	}
}

func BenchmarkCriterionValue(b *testing.B) {
	p := benchPage(42)
	p.Recompute()
	b.ResetTimer()
	var sum float64
	for i := 0; i < b.N; i++ {
		sum += Criterion(i % 5).Value(p.Meta)
	}
	_ = sum
}
