// Package page defines the disk-page model shared by the storage layer, the
// buffer manager and the spatial access methods.
//
// Following Brinkhoff (EDBT 2002, §2.1), a spatial database distinguishes
// three categories of pages: directory pages and data pages of the spatial
// access method (SAM), and object pages holding the exact representation of
// spatial objects. Every page contains a set of entries, each with a minimum
// bounding rectangle (MBR); for directory pages the entries reference child
// pages, for data pages they reference objects.
//
// The package also implements the five spatial replacement criteria of §2.3
// (A, EA, M, EM, EO) as functions of a page's precomputed Meta, so that the
// buffer manager never needs to touch entry lists on the eviction path.
package page

import (
	"fmt"
	"strings"

	"repro/internal/geom"
)

// ID identifies a page within a store. InvalidID is never allocated.
type ID uint64

// InvalidID is the zero, never-allocated page ID, used as a "no page"
// sentinel (e.g. the parent of the root).
const InvalidID ID = 0

// Type is the category of a page (paper §2.1, Fig. 1).
type Type uint8

const (
	// TypeDirectory is an inner (directory) page of the SAM.
	TypeDirectory Type = iota
	// TypeData is a leaf page of the SAM referencing objects.
	TypeData
	// TypeObject is a page storing exact object representations.
	TypeObject
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case TypeDirectory:
		return "directory"
	case TypeData:
		return "data"
	case TypeObject:
		return "object"
	default:
		return "unknown"
	}
}

// Entry is one slot of a page: an MBR plus a reference. Directory entries
// set Child to the page they point at; data entries set ObjID to the object
// they reference; object-page entries reference object fragments.
type Entry struct {
	MBR   geom.Rect
	Child ID     // child page for directory entries, InvalidID otherwise
	ObjID uint64 // referenced object for data/object entries
}

// Meta is the fixed-size descriptor of a page that the buffer manager keeps
// per frame. All spatial criteria are precomputed here when the page is
// (re)built, so eviction decisions are O(1) per inspected page — the paper
// notes (§2.3) that area and margin cost almost nothing at load time and
// that even the costlier entry overlap is worth storing with the page.
type Meta struct {
	ID    ID
	Type  Type
	Level int // height in the SAM: 0 = data/leaf page, root has the maximum

	MBR geom.Rect // MBR over all entries of the page

	NumEntries     int
	EntryAreaSum   float64 // Σ area(mbr(e)) over entries e — criterion EA
	EntryMarginSum float64 // Σ margin(mbr(e)) — criterion EM
	EntryOverlap   float64 // Σ area(mbr(e) ∩ mbr(f))/2 over ordered pairs e≠f — criterion EO
}

// Page is an in-memory page: its descriptor plus the entry list.
type Page struct {
	Meta
	Entries []Entry
}

// New returns an empty page of the given type and level with capacity for
// cap entries.
func New(id ID, typ Type, level, capacity int) *Page {
	return &Page{
		Meta: Meta{
			ID:    id,
			Type:  typ,
			Level: level,
			MBR:   geom.EmptyRect(),
		},
		Entries: make([]Entry, 0, capacity),
	}
}

// Recompute rebuilds all derived Meta fields (MBR, entry statistics) from
// the current entry list. Call after any entry mutation. The pairwise
// overlap is O(n²) in the number of entries; with the paper's fan-outs
// (≤ 51) this is at most ~1300 rectangle intersections per page build.
func (p *Page) Recompute() {
	m := &p.Meta
	m.NumEntries = len(p.Entries)
	m.MBR = geom.EmptyRect()
	m.EntryAreaSum = 0
	m.EntryMarginSum = 0
	m.EntryOverlap = 0
	for i := range p.Entries {
		r := p.Entries[i].MBR
		m.MBR = m.MBR.Union(r)
		m.EntryAreaSum += r.Area()
		m.EntryMarginSum += r.Margin()
		for j := 0; j < i; j++ {
			m.EntryOverlap += r.OverlapArea(p.Entries[j].MBR)
		}
	}
}

// RecomputeFast rebuilds the O(n) derived fields (MBR, entry area and
// margin sums) but sets EntryOverlap to zero instead of paying the O(n²)
// pairwise-overlap pass. Index construction uses it on every mutation and
// finishes with one full Recompute sweep per page (the paper makes the same
// trade-off in §2.3: the overlap "is costlier — storing this information on
// the page may be worthwhile").
func (p *Page) RecomputeFast() {
	m := &p.Meta
	m.NumEntries = len(p.Entries)
	m.MBR = geom.EmptyRect()
	m.EntryAreaSum = 0
	m.EntryMarginSum = 0
	m.EntryOverlap = 0
	for i := range p.Entries {
		r := p.Entries[i].MBR
		m.MBR = m.MBR.Union(r)
		m.EntryAreaSum += r.Area()
		m.EntryMarginSum += r.Margin()
	}
}

// Append adds an entry without recomputing derived state; callers batch
// appends and finish with Recompute.
func (p *Page) Append(e Entry) {
	p.Entries = append(p.Entries, e)
}

// Criterion selects one of the paper's five spatial replacement criteria
// (§2.3). For every criterion, a LARGER value means the page should stay in
// the buffer LONGER; the victim is the page with the minimum value.
type Criterion uint8

const (
	// CritA maximizes the area of the page MBR (optimization goal O1).
	CritA Criterion = iota
	// CritEA maximizes the sum of the entry-MBR areas (O1 + O4).
	CritEA
	// CritM maximizes the margin of the page MBR (O3).
	CritM
	// CritEM maximizes the sum of the entry-MBR margins.
	CritEM
	// CritEO maximizes the pairwise overlap between entry MBRs (O2,
	// inverted: high internal overlap marks a page worth keeping).
	CritEO
)

// String implements fmt.Stringer, using the paper's abbreviations.
func (c Criterion) String() string {
	switch c {
	case CritA:
		return "A"
	case CritEA:
		return "EA"
	case CritM:
		return "M"
	case CritEM:
		return "EM"
	case CritEO:
		return "EO"
	default:
		return "unknown"
	}
}

// Criteria lists all five spatial criteria in paper order.
func Criteria() []Criterion {
	return []Criterion{CritA, CritEA, CritM, CritEM, CritEO}
}

// ParseCriterion resolves a paper abbreviation ("A", "EA", "M", "EM",
// "EO", case-insensitive) to its Criterion.
func ParseCriterion(s string) (Criterion, error) {
	for _, c := range Criteria() {
		if strings.EqualFold(s, c.String()) {
			return c, nil
		}
	}
	return 0, fmt.Errorf("page: unknown spatial criterion %q (want A, EA, M, EM or EO)", s)
}

// Value returns spatialCrit_c(p) for the page described by m.
func (c Criterion) Value(m Meta) float64 {
	switch c {
	case CritA:
		return m.MBR.Area()
	case CritEA:
		return m.EntryAreaSum
	case CritM:
		return m.MBR.Margin()
	case CritEM:
		return m.EntryMarginSum
	case CritEO:
		return m.EntryOverlap
	default:
		return 0
	}
}

// Clone returns a deep copy of p (the entry slice is copied).
func (p *Page) Clone() *Page {
	q := *p
	q.Entries = make([]Entry, len(p.Entries))
	copy(q.Entries, p.Entries)
	return &q
}
