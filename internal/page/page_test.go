package page

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestTypeString(t *testing.T) {
	tests := []struct {
		typ  Type
		want string
	}{
		{TypeDirectory, "directory"},
		{TypeData, "data"},
		{TypeObject, "object"},
		{Type(99), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.typ.String(); got != tt.want {
			t.Errorf("Type(%d).String() = %q, want %q", tt.typ, got, tt.want)
		}
	}
}

func TestCriterionString(t *testing.T) {
	want := []string{"A", "EA", "M", "EM", "EO"}
	for i, c := range Criteria() {
		if c.String() != want[i] {
			t.Errorf("criterion %d = %q, want %q", i, c.String(), want[i])
		}
	}
	if Criterion(99).String() != "unknown" {
		t.Error("unknown criterion should stringify to unknown")
	}
	if Criterion(99).Value(Meta{}) != 0 {
		t.Error("unknown criterion value should be 0")
	}
}

func TestNewPage(t *testing.T) {
	p := New(7, TypeData, 0, 42)
	if p.ID != 7 || p.Type != TypeData || p.Level != 0 {
		t.Errorf("unexpected meta: %+v", p.Meta)
	}
	if !p.MBR.IsEmpty() {
		t.Error("fresh page should have empty MBR")
	}
	if cap(p.Entries) != 42 || len(p.Entries) != 0 {
		t.Errorf("entries cap/len = %d/%d", cap(p.Entries), len(p.Entries))
	}
}

func TestRecompute(t *testing.T) {
	p := New(1, TypeDirectory, 1, 4)
	p.Append(Entry{MBR: geom.NewRect(0, 0, 2, 2), Child: 2})
	p.Append(Entry{MBR: geom.NewRect(1, 1, 3, 3), Child: 3})
	p.Append(Entry{MBR: geom.NewRect(10, 10, 11, 11), Child: 4})
	p.Recompute()

	if p.NumEntries != 3 {
		t.Errorf("NumEntries = %d", p.NumEntries)
	}
	if want := geom.NewRect(0, 0, 11, 11); p.MBR != want {
		t.Errorf("MBR = %v, want %v", p.MBR, want)
	}
	if want := 4.0 + 4.0 + 1.0; p.EntryAreaSum != want {
		t.Errorf("EntryAreaSum = %g, want %g", p.EntryAreaSum, want)
	}
	if want := 8.0 + 8.0 + 4.0; p.EntryMarginSum != want {
		t.Errorf("EntryMarginSum = %g, want %g", p.EntryMarginSum, want)
	}
	// Entries 0 and 1 overlap in a 1×1 square; others disjoint.
	if p.EntryOverlap != 1.0 {
		t.Errorf("EntryOverlap = %g, want 1", p.EntryOverlap)
	}
}

func TestRecomputeEmpty(t *testing.T) {
	p := New(1, TypeData, 0, 4)
	p.Append(Entry{MBR: geom.NewRect(0, 0, 1, 1), ObjID: 9})
	p.Recompute()
	p.Entries = p.Entries[:0]
	p.Recompute()
	if p.NumEntries != 0 || !p.MBR.IsEmpty() || p.EntryAreaSum != 0 ||
		p.EntryMarginSum != 0 || p.EntryOverlap != 0 {
		t.Errorf("recompute of empty page left residue: %+v", p.Meta)
	}
}

func TestCriterionValues(t *testing.T) {
	m := Meta{
		MBR:            geom.NewRect(0, 0, 4, 2),
		EntryAreaSum:   7,
		EntryMarginSum: 13,
		EntryOverlap:   2.5,
	}
	tests := []struct {
		c    Criterion
		want float64
	}{
		{CritA, 8},
		{CritEA, 7},
		{CritM, 12},
		{CritEM, 13},
		{CritEO, 2.5},
	}
	for _, tt := range tests {
		if got := tt.c.Value(m); got != tt.want {
			t.Errorf("%v.Value = %g, want %g", tt.c, got, tt.want)
		}
	}
}

func TestEOCountsEachPairOnce(t *testing.T) {
	// The paper defines EO as Σ_{e≠f} area(e∩f)/2, i.e. each unordered
	// pair counted once. Two identical unit squares → overlap 1.
	p := New(1, TypeData, 0, 2)
	p.Append(Entry{MBR: geom.NewRect(0, 0, 1, 1)})
	p.Append(Entry{MBR: geom.NewRect(0, 0, 1, 1)})
	p.Recompute()
	if p.EntryOverlap != 1 {
		t.Errorf("EntryOverlap = %g, want 1 (each pair once)", p.EntryOverlap)
	}
}

func TestClone(t *testing.T) {
	p := New(3, TypeData, 0, 2)
	p.Append(Entry{MBR: geom.NewRect(0, 0, 1, 1), ObjID: 42})
	p.Recompute()
	q := p.Clone()
	q.Entries[0].ObjID = 99
	q.Append(Entry{MBR: geom.NewRect(5, 5, 6, 6)})
	if p.Entries[0].ObjID != 42 {
		t.Error("clone mutation leaked into original entries")
	}
	if len(p.Entries) != 1 {
		t.Error("clone append grew original")
	}
	if q.ID != p.ID || q.Type != p.Type {
		t.Error("clone lost meta")
	}
}

func TestPropertyRecomputeInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(20)
		p := New(ID(trial+1), TypeData, 0, n)
		for i := 0; i < n; i++ {
			x := rng.Float64() * 100
			y := rng.Float64() * 100
			p.Append(Entry{MBR: geom.NewRect(x, y, x+rng.Float64()*10, y+rng.Float64()*10)})
		}
		p.Recompute()

		// Page MBR contains every entry MBR.
		for _, e := range p.Entries {
			if !p.MBR.Contains(e.MBR) {
				t.Fatalf("page MBR %v does not contain entry %v", p.MBR, e.MBR)
			}
		}
		// EA ≤ n·area(MBR): every entry fits inside the page MBR.
		if n > 0 && p.EntryAreaSum > float64(n)*p.MBR.Area()+1e-9 {
			t.Fatalf("EntryAreaSum %g exceeds n·MBR area", p.EntryAreaSum)
		}
		// All criteria non-negative.
		for _, c := range Criteria() {
			if v := c.Value(p.Meta); v < 0 || math.IsNaN(v) {
				t.Fatalf("criterion %v = %g", c, v)
			}
		}
		// Recompute is idempotent.
		before := p.Meta
		p.Recompute()
		if p.Meta != before {
			t.Fatalf("Recompute not idempotent: %+v vs %+v", before, p.Meta)
		}
	}
}
