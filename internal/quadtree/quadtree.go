// Package quadtree implements the third spatial-access-method family the
// paper names in §2.3 ("In a quadtree, the quadtree cells match these
// entries"): a page-backed MX-CIF quadtree storing rectangles.
//
// Every node is one page covering a quadrant cell. An object lives in the
// lowest node whose cell fully contains its MBR; objects straddling a
// centre line stay in the inner node. A node page mixes two entry kinds:
// entries with Child ≠ page.InvalidID point to the four quadrant
// children, the rest are object entries. Pages carry MBRs and entry
// statistics like every other page, so all replacement policies apply
// unchanged; queries read pages through rtree.Reader, so a buffer manager
// can front the tree.
package quadtree

import (
	"errors"
	"fmt"

	"repro/internal/buffer"
	"repro/internal/geom"
	"repro/internal/page"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// Params configure the quadtree.
type Params struct {
	// MaxEntries is the number of object entries a node may hold before
	// it splits (children entries do not count against it).
	MaxEntries int
	// MaxDepth bounds the recursion; nodes at MaxDepth grow beyond
	// MaxEntries instead of splitting.
	MaxDepth int
}

// DefaultParams mirror the paper's data-page capacity.
func DefaultParams() Params {
	return Params{MaxEntries: 42, MaxDepth: 12}
}

// Tree is a page-backed MX-CIF quadtree over a square cell hierarchy
// spanning the data space.
type Tree struct {
	store  storage.Store
	params Params
	space  geom.Rect
	root   page.ID
	count  int
}

// New creates an empty quadtree over the given space.
func New(store storage.Store, space geom.Rect, params Params) (*Tree, error) {
	if store == nil {
		return nil, errors.New("quadtree: nil store")
	}
	if !space.Valid() {
		return nil, fmt.Errorf("quadtree: invalid space %v", space)
	}
	if params.MaxEntries < 4 || params.MaxDepth < 1 {
		return nil, fmt.Errorf("quadtree: bad params %+v", params)
	}
	rootID := store.Allocate()
	root := page.New(rootID, page.TypeData, params.MaxDepth, params.MaxEntries)
	if err := store.Write(root); err != nil {
		return nil, err
	}
	return &Tree{store: store, params: params, space: space, root: rootID}, nil
}

// Root returns the root page ID.
func (t *Tree) Root() page.ID { return t.root }

// NumObjects returns the number of stored objects.
func (t *Tree) NumObjects() int { return t.count }

// Store returns the backing page store.
func (t *Tree) Store() storage.Store { return t.store }

// Space returns the data space.
func (t *Tree) Space() geom.Rect { return t.space }

// quadrant returns the cell of child i (0 = SW, 1 = SE, 2 = NW, 3 = NE).
func quadrant(cell geom.Rect, i int) geom.Rect {
	cx := (cell.MinX + cell.MaxX) / 2
	cy := (cell.MinY + cell.MaxY) / 2
	switch i {
	case 0:
		return geom.Rect{MinX: cell.MinX, MinY: cell.MinY, MaxX: cx, MaxY: cy}
	case 1:
		return geom.Rect{MinX: cx, MinY: cell.MinY, MaxX: cell.MaxX, MaxY: cy}
	case 2:
		return geom.Rect{MinX: cell.MinX, MinY: cy, MaxX: cx, MaxY: cell.MaxY}
	default:
		return geom.Rect{MinX: cx, MinY: cy, MaxX: cell.MaxX, MaxY: cell.MaxY}
	}
}

// childEntries returns the indices of child entries in a node, in
// quadrant order (entries with Child ≠ InvalidID, of which there are 0 or
// 4).
func childEntries(n *page.Page) []int {
	var idx []int
	for i, e := range n.Entries {
		if e.Child != page.InvalidID {
			idx = append(idx, i)
		}
	}
	return idx
}

// Insert adds an object with the given MBR (must lie inside the space).
func (t *Tree) Insert(objID uint64, mbr geom.Rect) error {
	if !mbr.Valid() {
		return fmt.Errorf("quadtree: insert %d: invalid MBR %v", objID, mbr)
	}
	if !t.space.Contains(mbr) {
		return fmt.Errorf("quadtree: insert %d: MBR %v outside space", objID, mbr)
	}
	if err := t.insert(t.root, t.space, t.params.MaxDepth, objID, mbr); err != nil {
		return err
	}
	t.count++
	return nil
}

// insert descends to the lowest cell containing mbr.
func (t *Tree) insert(id page.ID, cell geom.Rect, level int, objID uint64, mbr geom.Rect) error {
	node, err := t.store.Read(id)
	if err != nil {
		return err
	}
	// Descend into a containing child, if the node has children.
	if kids := childEntries(node); len(kids) > 0 {
		for qi, ei := range kids {
			q := quadrant(cell, qi)
			if q.Contains(mbr) {
				// Child MBRs in the parent entry track content; update
				// after the recursive insert.
				if err := t.insert(node.Entries[ei].Child, q, level-1, objID, mbr); err != nil {
					return err
				}
				child, err := t.store.Read(node.Entries[ei].Child)
				if err != nil {
					return err
				}
				node.Entries[ei].MBR = child.MBR
				node.RecomputeFast()
				return t.store.Write(node)
			}
		}
	}
	// Store here.
	node.Entries = append(node.Entries, page.Entry{MBR: mbr, ObjID: objID})
	if t.objectCount(node) > t.params.MaxEntries && level > 0 && len(childEntries(node)) == 0 {
		if err := t.split(node, cell, level); err != nil {
			return err
		}
	}
	node.RecomputeFast()
	return t.store.Write(node)
}

// objectCount returns the number of object entries in a node.
func (t *Tree) objectCount(n *page.Page) int {
	c := 0
	for _, e := range n.Entries {
		if e.Child == page.InvalidID {
			c++
		}
	}
	return c
}

// split creates the four children of a leaf node and pushes down every
// object entry fully contained in one quadrant.
func (t *Tree) split(node *page.Page, cell geom.Rect, level int) error {
	children := make([]*page.Page, 4)
	for qi := range children {
		id := t.store.Allocate()
		children[qi] = page.New(id, page.TypeData, level-1, t.params.MaxEntries)
	}
	var keep []page.Entry
	for _, e := range node.Entries {
		placed := false
		for qi, child := range children {
			if quadrant(cell, qi).Contains(e.MBR) {
				child.Entries = append(child.Entries, e)
				placed = true
				break
			}
		}
		if !placed {
			keep = append(keep, e)
		}
	}
	node.Entries = keep
	node.Type = page.TypeDirectory
	for _, child := range children {
		child.RecomputeFast()
		if err := t.store.Write(child); err != nil {
			return err
		}
		node.Entries = append(node.Entries, page.Entry{MBR: child.MBR, Child: child.ID})
	}
	return nil
}

// Delete removes an object, returning whether it was found. Empty nodes
// are not merged (standard for non-compacting quadtrees).
func (t *Tree) Delete(objID uint64, mbr geom.Rect) (bool, error) {
	found, err := t.delete(t.root, t.space, objID, mbr)
	if err != nil {
		return false, err
	}
	if found {
		t.count--
	}
	return found, nil
}

func (t *Tree) delete(id page.ID, cell geom.Rect, objID uint64, mbr geom.Rect) (bool, error) {
	node, err := t.store.Read(id)
	if err != nil {
		return false, err
	}
	for i, e := range node.Entries {
		if e.Child == page.InvalidID && e.ObjID == objID && e.MBR.Equal(mbr) {
			node.Entries = append(node.Entries[:i], node.Entries[i+1:]...)
			node.RecomputeFast()
			return true, t.store.Write(node)
		}
	}
	for qi, ei := range childEntries(node) {
		q := quadrant(cell, qi)
		if !q.Contains(mbr) {
			continue
		}
		found, err := t.delete(node.Entries[ei].Child, q, objID, mbr)
		if err != nil || !found {
			return found, err
		}
		child, err := t.store.Read(node.Entries[ei].Child)
		if err != nil {
			return false, err
		}
		node.Entries[ei].MBR = child.MBR
		node.RecomputeFast()
		return true, t.store.Write(node)
	}
	return false, nil
}

// Search reports all object entries whose MBR intersects the query
// window, reading pages through rd.
func (t *Tree) Search(rd rtree.Reader, ctx buffer.AccessContext, query geom.Rect, fn rtree.Visit) error {
	type task struct {
		id   page.ID
		cell geom.Rect
	}
	stack := []task{{id: t.root, cell: t.space}}
	for len(stack) > 0 {
		tk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		node, err := rd.Get(tk.id, ctx)
		if err != nil {
			return fmt.Errorf("quadtree: search: %w", err)
		}
		qi := 0
		for _, e := range node.Entries {
			if e.Child != page.InvalidID {
				q := quadrant(tk.cell, qi)
				qi++
				if query.Intersects(q) && query.Intersects(e.MBR) {
					stack = append(stack, task{id: e.Child, cell: q})
				}
				continue
			}
			if query.Intersects(e.MBR) {
				if !fn(e) {
					return nil
				}
			}
		}
	}
	return nil
}

// Stats summarizes the structure.
type Stats struct {
	Pages    int
	DirPages int
	Objects  int
	MaxDepth int // deepest node below the root, in levels used
}

// Stats walks the tree.
func (t *Tree) Stats() (Stats, error) {
	st := Stats{Objects: t.count}
	var walk func(id page.ID, depth int) error
	walk = func(id page.ID, depth int) error {
		node, err := t.store.Read(id)
		if err != nil {
			return err
		}
		st.Pages++
		if depth > st.MaxDepth {
			st.MaxDepth = depth
		}
		kids := childEntries(node)
		if len(kids) > 0 {
			st.DirPages++
		}
		for _, ei := range kids {
			if err := walk(node.Entries[ei].Child, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	err := walk(t.root, 0)
	return st, err
}

// FinalizeStats recomputes full page statistics (entry overlap included)
// on every node.
func (t *Tree) FinalizeStats() error {
	var walk func(id page.ID) error
	walk = func(id page.ID) error {
		node, err := t.store.Read(id)
		if err != nil {
			return err
		}
		node.Recompute()
		if err := t.store.Write(node); err != nil {
			return err
		}
		for _, ei := range childEntries(node) {
			if err := walk(node.Entries[ei].Child); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(t.root)
}
