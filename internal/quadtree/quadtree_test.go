package quadtree

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/buffer"
	"repro/internal/geom"
	"repro/internal/page"
	"repro/internal/rtree"
	"repro/internal/storage"
)

var space = geom.NewRect(0, 0, 1024, 512)

type obj struct {
	id  uint64
	mbr geom.Rect
}

func randObjs(rng *rand.Rand, n int) []obj {
	objs := make([]obj, n)
	for i := range objs {
		x := rng.Float64() * 1000
		y := rng.Float64() * 500
		w := rng.Float64() * 8
		h := rng.Float64() * 8
		if rng.Intn(2) == 0 {
			w, h = 0, 0
		}
		objs[i] = obj{
			id:  uint64(i + 1),
			mbr: geom.NewRect(x, y, x+w, y+h).Intersection(space),
		}
	}
	return objs
}

func build(t *testing.T, objs []obj) *Tree {
	t.Helper()
	s := storage.NewMemStore()
	tr, err := New(s, space, Params{MaxEntries: 8, MaxDepth: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range objs {
		if err := tr.Insert(o.id, o.mbr); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

func search(t *testing.T, tr *Tree, query geom.Rect) []uint64 {
	t.Helper()
	var ids []uint64
	err := tr.Search(rtree.StoreReader{Store: tr.Store()}, buffer.AccessContext{}, query,
		func(e page.Entry) bool { ids = append(ids, e.ObjID); return true })
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func brute(objs []obj, query geom.Rect) []uint64 {
	var ids []uint64
	for _, o := range objs {
		if o.mbr.Intersects(query) {
			ids = append(ids, o.id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func equalIDs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestNewValidation(t *testing.T) {
	s := storage.NewMemStore()
	if _, err := New(nil, space, DefaultParams()); err == nil {
		t.Error("nil store should fail")
	}
	if _, err := New(s, geom.EmptyRect(), DefaultParams()); err == nil {
		t.Error("empty space should fail")
	}
	if _, err := New(s, space, Params{MaxEntries: 1, MaxDepth: 4}); err == nil {
		t.Error("tiny capacity should fail")
	}
}

func TestInsertValidation(t *testing.T) {
	s := storage.NewMemStore()
	tr, err := New(s, space, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(1, geom.EmptyRect()); err == nil {
		t.Error("empty MBR should fail")
	}
	if err := tr.Insert(1, geom.NewRect(-10, 0, 5, 5)); err == nil {
		t.Error("out-of-space MBR should fail")
	}
}

func TestSearchMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	objs := randObjs(rng, 3000)
	tr := build(t, objs)
	if tr.NumObjects() != 3000 {
		t.Fatalf("NumObjects = %d", tr.NumObjects())
	}
	for trial := 0; trial < 100; trial++ {
		c := geom.Point{X: rng.Float64() * 1024, Y: rng.Float64() * 512}
		q := geom.RectFromCenter(c, rng.Float64()*120, rng.Float64()*90).Intersection(space)
		if q.IsEmpty() {
			continue
		}
		if got, want := search(t, tr, q), brute(objs, q); !equalIDs(got, want) {
			t.Fatalf("trial %d: got %d, want %d", trial, len(got), len(want))
		}
	}
}

func TestStraddlersStayInInnerNodes(t *testing.T) {
	// An object across the space centre cannot descend: it must still be
	// found.
	s := storage.NewMemStore()
	tr, err := New(s, space, Params{MaxEntries: 4, MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	center := geom.NewRect(500, 250, 524, 262) // straddles both centre lines
	if err := tr.Insert(1, center); err != nil {
		t.Fatal(err)
	}
	// Force splits with contained objects.
	rng := rand.New(rand.NewSource(2))
	objs := []obj{{id: 1, mbr: center}}
	for i := 2; i <= 200; i++ {
		x, y := rng.Float64()*400, rng.Float64()*200 // SW quadrant
		m := geom.NewRect(x, y, x+2, y+2)
		if err := tr.Insert(uint64(i), m); err != nil {
			t.Fatal(err)
		}
		objs = append(objs, obj{id: uint64(i), mbr: m})
	}
	q := geom.NewRect(490, 240, 530, 270)
	if got, want := search(t, tr, q), brute(objs, q); !equalIDs(got, want) {
		t.Fatalf("straddler lost: got %v, want %v", got, want)
	}
}

func TestTreeSplitsAndStats(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	objs := randObjs(rng, 2000)
	tr := build(t, objs)
	st, err := tr.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Pages < 2000/8 {
		t.Errorf("implausibly few pages: %d", st.Pages)
	}
	if st.DirPages == 0 || st.MaxDepth < 2 {
		t.Errorf("no hierarchy: %+v", st)
	}
	if st.Objects != 2000 {
		t.Errorf("objects = %d", st.Objects)
	}
}

func TestDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	objs := randObjs(rng, 800)
	tr := build(t, objs)
	deleted := map[uint64]bool{}
	for _, idx := range rng.Perm(len(objs))[:400] {
		o := objs[idx]
		found, err := tr.Delete(o.id, o.mbr)
		if err != nil || !found {
			t.Fatalf("delete %d: %v %v", o.id, found, err)
		}
		deleted[o.id] = true
	}
	if tr.NumObjects() != 400 {
		t.Errorf("NumObjects = %d", tr.NumObjects())
	}
	var rest []obj
	for _, o := range objs {
		if !deleted[o.id] {
			rest = append(rest, o)
		}
	}
	for trial := 0; trial < 40; trial++ {
		c := geom.Point{X: rng.Float64() * 1024, Y: rng.Float64() * 512}
		q := geom.RectFromCenter(c, 100, 80).Intersection(space)
		if got, want := search(t, tr, q), brute(rest, q); !equalIDs(got, want) {
			t.Fatalf("post-delete trial %d: got %d, want %d", trial, len(got), len(want))
		}
	}
	if found, err := tr.Delete(9999, geom.NewRect(1, 1, 2, 2)); err != nil || found {
		t.Errorf("missing delete: %v %v", found, err)
	}
}

func TestSearchThroughBuffer(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	objs := randObjs(rng, 2500)
	tr := build(t, objs)
	if err := tr.FinalizeStats(); err != nil {
		t.Fatal(err)
	}
	ms := tr.Store().(*storage.MemStore)
	ms.ResetStats()
	pol := &fifoStub{}
	m, err := buffer.NewManager(ms, pol, 16)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 40; trial++ {
		c := geom.Point{X: rng.Float64() * 1024, Y: rng.Float64() * 512}
		q := geom.RectFromCenter(c, 60, 40).Intersection(space)
		err := tr.Search(m, buffer.AccessContext{QueryID: uint64(trial)}, q,
			func(page.Entry) bool { return true })
		if err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Errorf("expected both hits and misses: %+v", st)
	}
	if ms.Stats().Reads != st.Misses {
		t.Errorf("reads %d != misses %d", ms.Stats().Reads, st.Misses)
	}
}

// fifoStub is a minimal policy for the buffer-plumbing test.
type fifoStub struct{ frames []*buffer.Frame }

func (p *fifoStub) Name() string { return "stub" }
func (p *fifoStub) OnAdmit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	p.frames = append(p.frames, f)
}
func (p *fifoStub) OnHit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {}
func (p *fifoStub) Victim(ctx buffer.AccessContext) *buffer.Frame {
	for _, f := range p.frames {
		if !f.Pinned() {
			return f
		}
	}
	return nil
}
func (p *fifoStub) OnEvict(f *buffer.Frame) {
	for i, g := range p.frames {
		if g == f {
			p.frames = append(p.frames[:i], p.frames[i+1:]...)
			return
		}
	}
}
func (p *fifoStub) Reset() { p.frames = nil }

func TestQuadrantPartition(t *testing.T) {
	cell := geom.NewRect(0, 0, 100, 100)
	union := geom.EmptyRect()
	area := 0.0
	for i := 0; i < 4; i++ {
		q := quadrant(cell, i)
		union = union.Union(q)
		area += q.Area()
	}
	if !union.Equal(cell) || area != cell.Area() {
		t.Errorf("quadrants do not partition the cell: union %v, area %g", union, area)
	}
}
