// Package queryset generates the query distributions of the paper's
// evaluation (§3.1): uniform, identical, similar, intensified and
// independent, each as point queries and as window queries of several
// sizes.
//
// Every query is an axis-aligned rectangle; point queries are degenerate
// rectangles. The paper's naming scheme is kept: U-P, U-W-ex, ID-P, ID-W,
// S-P, S-W-ex, INT-P, INT-W-ex, IND-P, IND-W-ex, where ex is the
// reciprocal window extension (x-extension of a window = x-extension of
// the data space divided by ex).
package queryset

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/geom"
)

// Query is one spatial query: a region to be intersected with the
// database. ID is unique within a Set and defines reference correlation
// (two page accesses are correlated iff they share a query).
type Query struct {
	ID   uint64
	Rect geom.Rect
}

// IsPoint reports whether the query region is degenerate.
func (q Query) IsPoint() bool {
	return q.Rect.Width() == 0 && q.Rect.Height() == 0
}

// Set is a named sequence of queries.
type Set struct {
	Name    string
	Queries []Query
}

// Len returns the number of queries.
func (s Set) Len() int { return len(s.Queries) }

// window returns a query window of the set's extension centred at p,
// clipped to the data space.
func window(space geom.Rect, p geom.Point, ex int) geom.Rect {
	w := space.Width() / float64(ex)
	h := space.Height() / float64(ex)
	r := geom.RectFromCenter(p, w, h).Intersection(space)
	if r.IsEmpty() {
		r = geom.RectFromPoint(p)
	}
	return r
}

// numbered assigns query IDs 1..n in order.
func numbered(name string, rects []geom.Rect) Set {
	s := Set{Name: name, Queries: make([]Query, len(rects))}
	for i, r := range rects {
		s.Queries[i] = Query{ID: uint64(i + 1), Rect: r}
	}
	return s
}

// uniformPoints draws n uniform points over the whole space (queries also
// cover the parts of the space where no objects are stored, as in the
// paper).
func uniformPoints(space geom.Rect, n int, rng *rand.Rand) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{
			X: space.MinX + rng.Float64()*space.Width(),
			Y: space.MinY + rng.Float64()*space.Height(),
		}
	}
	return pts
}

// Uniform returns the point-query set U-P.
func Uniform(space geom.Rect, n int, seed int64) Set {
	rng := rand.New(rand.NewSource(seed))
	rects := make([]geom.Rect, n)
	for i, p := range uniformPoints(space, n, rng) {
		rects[i] = geom.RectFromPoint(p)
	}
	return numbered("U-P", rects)
}

// UniformWindows returns the window-query set U-W-ex.
func UniformWindows(space geom.Rect, n, ex int, seed int64) Set {
	rng := rand.New(rand.NewSource(seed))
	rects := make([]geom.Rect, n)
	for i, p := range uniformPoints(space, n, rng) {
		rects[i] = window(space, p, ex)
	}
	return numbered(fmt.Sprintf("U-W-%d", ex), rects)
}

// Identical returns ID-P: point queries at the centres of randomly
// selected database objects.
func Identical(objs []dataset.Object, n int, seed int64) Set {
	rng := rand.New(rand.NewSource(seed))
	rects := make([]geom.Rect, n)
	for i := range rects {
		rects[i] = geom.RectFromPoint(objs[rng.Intn(len(objs))].MBR.Center())
	}
	return numbered("ID-P", rects)
}

// IdenticalWindows returns ID-W: window queries that are the MBRs of
// randomly selected database objects ("the size of the objects is
// maintained").
func IdenticalWindows(objs []dataset.Object, n int, seed int64) Set {
	rng := rand.New(rand.NewSource(seed))
	rects := make([]geom.Rect, n)
	for i := range rects {
		rects[i] = objs[rng.Intn(len(objs))].MBR
	}
	return numbered("ID-W", rects)
}

// Similar returns S-P: point queries at uniformly selected places.
func Similar(places []dataset.Place, n int, seed int64) Set {
	rng := rand.New(rand.NewSource(seed))
	rects := make([]geom.Rect, n)
	for i := range rects {
		rects[i] = geom.RectFromPoint(places[rng.Intn(len(places))].Loc)
	}
	return numbered("S-P", rects)
}

// SimilarWindows returns S-W-ex: window queries centred at uniformly
// selected places.
func SimilarWindows(places []dataset.Place, space geom.Rect, n, ex int, seed int64) Set {
	rng := rand.New(rand.NewSource(seed))
	rects := make([]geom.Rect, n)
	for i := range rects {
		rects[i] = window(space, places[rng.Intn(len(places))].Loc, ex)
	}
	return numbered(fmt.Sprintf("S-W-%d", ex), rects)
}

// popSampler prepares √population-weighted sampling over places (the
// intensified distribution: "the probability of selecting a city ... is
// correlated to the square root of the population").
type popSampler struct {
	places []dataset.Place
	cum    []float64
}

func newPopSampler(places []dataset.Place) *popSampler {
	s := &popSampler{places: places, cum: make([]float64, len(places))}
	total := 0.0
	for i, p := range places {
		total += math.Sqrt(float64(p.Population))
		s.cum[i] = total
	}
	return s
}

// sample draws one place index.
func (s *popSampler) sample(rng *rand.Rand) int {
	x := rng.Float64() * s.cum[len(s.cum)-1]
	lo, hi := 0, len(s.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Intensified returns INT-P: point queries at places sampled with
// probability proportional to √population.
func Intensified(places []dataset.Place, n int, seed int64) Set {
	rng := rand.New(rand.NewSource(seed))
	sampler := newPopSampler(places)
	rects := make([]geom.Rect, n)
	for i := range rects {
		rects[i] = geom.RectFromPoint(places[sampler.sample(rng)].Loc)
	}
	return numbered("INT-P", rects)
}

// IntensifiedWindows returns INT-W-ex.
func IntensifiedWindows(places []dataset.Place, space geom.Rect, n, ex int, seed int64) Set {
	rng := rand.New(rand.NewSource(seed))
	sampler := newPopSampler(places)
	rects := make([]geom.Rect, n)
	for i := range rects {
		rects[i] = window(space, places[sampler.sample(rng)].Loc, ex)
	}
	return numbered(fmt.Sprintf("INT-W-%d", ex), rects)
}

// Independent returns IND-P: the similar distribution after flipping the
// x-coordinates, making query and object distributions independent (an
// object in the west queries the east and vice versa).
func Independent(places []dataset.Place, space geom.Rect, n int, seed int64) Set {
	rng := rand.New(rand.NewSource(seed))
	rects := make([]geom.Rect, n)
	for i := range rects {
		p := places[rng.Intn(len(places))].Loc
		rects[i] = geom.RectFromPoint(p).FlipX(space)
	}
	s := numbered("IND-P", rects)
	return s
}

// IndependentWindows returns IND-W-ex.
func IndependentWindows(places []dataset.Place, space geom.Rect, n, ex int, seed int64) Set {
	rng := rand.New(rand.NewSource(seed))
	rects := make([]geom.Rect, n)
	for i := range rects {
		p := places[rng.Intn(len(places))].Loc
		rects[i] = window(space, p, ex).FlipX(space)
	}
	return numbered(fmt.Sprintf("IND-W-%d", ex), rects)
}

// Concat concatenates sets into one (the mixed workload of Fig. 14),
// renumbering query IDs so correlation stays per original query.
func Concat(name string, sets ...Set) Set {
	out := Set{Name: name}
	next := uint64(1)
	for _, s := range sets {
		for _, q := range s.Queries {
			out.Queries = append(out.Queries, Query{ID: next, Rect: q.Rect})
			next++
		}
	}
	return out
}

// Extensions are the reciprocal window extensions used in the paper's
// experiments.
var Extensions = []int{33, 100, 333, 1000}
