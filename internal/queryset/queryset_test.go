package queryset

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
)

var space = geom.NewRect(0, 0, 1000, 500)

func testObjects(n int) []dataset.Object {
	g := dataset.USMainland(1)
	return g.Objects(2, n)
}

func testPlaces(n int) []dataset.Place {
	g := dataset.USMainland(1)
	return g.Places(3, n)
}

func checkSet(t *testing.T, s Set, wantName string, n int, wantPoints bool) {
	t.Helper()
	if s.Name != wantName {
		t.Errorf("name = %q, want %q", s.Name, wantName)
	}
	if s.Len() != n {
		t.Fatalf("%s: %d queries, want %d", s.Name, s.Len(), n)
	}
	for i, q := range s.Queries {
		if q.ID != uint64(i+1) {
			t.Fatalf("%s: query %d has ID %d", s.Name, i, q.ID)
		}
		if q.Rect.IsEmpty() {
			t.Fatalf("%s: query %d empty", s.Name, i)
		}
		if wantPoints && !q.IsPoint() {
			t.Fatalf("%s: query %d should be a point, got %v", s.Name, i, q.Rect)
		}
	}
}

func TestUniform(t *testing.T) {
	s := Uniform(space, 200, 1)
	checkSet(t, s, "U-P", 200, true)
	for _, q := range s.Queries {
		if !space.Contains(q.Rect) {
			t.Fatalf("query %v outside space", q.Rect)
		}
	}
	// Determinism.
	again := Uniform(space, 200, 1)
	for i := range s.Queries {
		if s.Queries[i] != again.Queries[i] {
			t.Fatal("not deterministic")
		}
	}
}

func TestUniformWindows(t *testing.T) {
	for _, ex := range Extensions {
		s := UniformWindows(space, 100, ex, 2)
		wantName := map[int]string{33: "U-W-33", 100: "U-W-100", 333: "U-W-333", 1000: "U-W-1000"}[ex]
		checkSet(t, s, wantName, 100, false)
		wantW := space.Width() / float64(ex)
		wantH := space.Height() / float64(ex)
		for _, q := range s.Queries {
			// Windows are clipped to the space, so extents are at most the
			// nominal size and at least half of it (centre inside space).
			if q.Rect.Width() > wantW+1e-9 || q.Rect.Height() > wantH+1e-9 {
				t.Fatalf("window %v exceeds nominal %gx%g", q.Rect, wantW, wantH)
			}
			if q.Rect.Width() < wantW/2-1e-9 && q.Rect.Height() < wantH/2-1e-9 {
				t.Fatalf("window %v implausibly small", q.Rect)
			}
		}
	}
}

func TestIdentical(t *testing.T) {
	objs := testObjects(500)
	s := Identical(objs, 300, 3)
	checkSet(t, s, "ID-P", 300, true)
	// Every query point is the centre of some object.
	centers := make(map[geom.Point]bool, len(objs))
	for _, o := range objs {
		centers[o.MBR.Center()] = true
	}
	for _, q := range s.Queries {
		if !centers[q.Rect.Center()] {
			t.Fatalf("query %v is not an object centre", q.Rect)
		}
	}
}

func TestIdenticalWindows(t *testing.T) {
	objs := testObjects(500)
	s := IdenticalWindows(objs, 300, 4)
	checkSet(t, s, "ID-W", 300, false)
	// Every query is exactly some object's MBR ("the size of the objects
	// is maintained").
	mbrs := make(map[geom.Rect]bool, len(objs))
	for _, o := range objs {
		mbrs[o.MBR] = true
	}
	for _, q := range s.Queries {
		if !mbrs[q.Rect] {
			t.Fatalf("query %v is not an object MBR", q.Rect)
		}
	}
}

func TestSimilar(t *testing.T) {
	places := testPlaces(400)
	s := Similar(places, 250, 5)
	checkSet(t, s, "S-P", 250, true)
	locs := make(map[geom.Point]bool, len(places))
	for _, p := range places {
		locs[p.Loc] = true
	}
	for _, q := range s.Queries {
		if !locs[q.Rect.Center()] {
			t.Fatalf("query %v is not a place", q.Rect)
		}
	}
	sw := SimilarWindows(places, space, 250, 100, 6)
	checkSet(t, sw, "S-W-100", 250, false)
}

func TestIntensifiedWeighting(t *testing.T) {
	// Two places: populations 1,000,000 and 100. With √population
	// weighting the big one must be drawn about √10000 = 100× as often.
	places := []dataset.Place{
		{Loc: geom.Point{X: 1, Y: 1}, Population: 1_000_000},
		{Loc: geom.Point{X: 2, Y: 2}, Population: 100},
	}
	s := Intensified(places, 10_000, 7)
	checkSet(t, s, "INT-P", 10_000, true)
	big := 0
	for _, q := range s.Queries {
		if q.Rect.Center() == places[0].Loc {
			big++
		}
	}
	frac := float64(big) / float64(s.Len())
	want := math.Sqrt(1_000_000) / (math.Sqrt(1_000_000) + math.Sqrt(100))
	if math.Abs(frac-want) > 0.02 {
		t.Errorf("big-place fraction = %.3f, want ≈ %.3f", frac, want)
	}
	sw := IntensifiedWindows(places, space, 100, 33, 8)
	checkSet(t, sw, "INT-W-33", 100, false)
}

func TestIndependentIsFlippedSimilar(t *testing.T) {
	places := testPlaces(400)
	s := Independent(places, space, 300, 9)
	checkSet(t, s, "IND-P", 300, true)
	// Every query is the x-flip of some place.
	locs := make(map[geom.Point]bool, len(places))
	for _, p := range places {
		locs[geom.Point{X: space.MinX + space.MaxX - p.Loc.X, Y: p.Loc.Y}] = true
	}
	for _, q := range s.Queries {
		if !locs[q.Rect.Center()] {
			t.Fatalf("query %v is not a flipped place", q.Rect)
		}
	}
	sw := IndependentWindows(places, space, 300, 333, 10)
	checkSet(t, sw, "IND-W-333", 300, false)
}

func TestConcat(t *testing.T) {
	a := Uniform(space, 50, 1)
	b := UniformWindows(space, 70, 33, 2)
	c := Concat("mixed", a, b)
	if c.Name != "mixed" {
		t.Errorf("name = %q", c.Name)
	}
	if c.Len() != 120 {
		t.Fatalf("len = %d", c.Len())
	}
	for i, q := range c.Queries {
		if q.ID != uint64(i+1) {
			t.Fatalf("query %d has ID %d (renumbering broken)", i, q.ID)
		}
	}
	// Rects preserved in order.
	if c.Queries[0].Rect != a.Queries[0].Rect || c.Queries[50].Rect != b.Queries[0].Rect {
		t.Error("concat did not preserve query order")
	}
}

func TestIsPoint(t *testing.T) {
	if !(Query{Rect: geom.RectFromPoint(geom.Point{X: 1, Y: 2})}).IsPoint() {
		t.Error("point rect should be a point query")
	}
	if (Query{Rect: geom.NewRect(0, 0, 1, 1)}).IsPoint() {
		t.Error("window should not be a point query")
	}
}
