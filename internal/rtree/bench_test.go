package rtree

import (
	"math/rand"
	"testing"

	"repro/internal/buffer"
	"repro/internal/geom"
	"repro/internal/page"
	"repro/internal/storage"
)

// benchTree builds a tree with the paper's fan-outs over n clustered
// objects.
func benchTree(b *testing.B, n int) (*Tree, []obj) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	objs := randObjs(rng, n)
	s := storage.NewMemStore()
	tr, err := New(s, DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	for _, o := range objs {
		if err := tr.Insert(o.id, o.mbr); err != nil {
			b.Fatal(err)
		}
	}
	return tr, objs
}

// BenchmarkInsert measures R*-tree insertion throughput (with forced
// reinsertion and R* splits) at the paper's fan-outs.
func BenchmarkInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	objs := randObjs(rng, b.N+1)
	s := storage.NewMemStore()
	tr, err := New(s, DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Insert(objs[i].id, objs[i].mbr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWindowQuery measures unbuffered window queries on a 50k-object
// tree.
func BenchmarkWindowQuery(b *testing.B) {
	tr, _ := benchTree(b, 50_000)
	rd := StoreReader{Store: tr.Store()}
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	matched := 0
	for i := 0; i < b.N; i++ {
		w := geom.RectFromCenter(
			geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}, 30, 30)
		err := tr.Search(rd, buffer.AccessContext{QueryID: uint64(i)}, w,
			func(page.Entry) bool { matched++; return true })
		if err != nil {
			b.Fatal(err)
		}
	}
	_ = matched
}

// BenchmarkPointQuery measures point queries.
func BenchmarkPointQuery(b *testing.B) {
	tr, _ := benchTree(b, 50_000)
	rd := StoreReader{Store: tr.Store()}
	rng := rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		err := tr.PointQuery(rd, buffer.AccessContext{QueryID: uint64(i)}, p,
			func(page.Entry) bool { return true })
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNearestNeighbors measures 10-NN queries.
func BenchmarkNearestNeighbors(b *testing.B) {
	tr, _ := benchTree(b, 50_000)
	rd := StoreReader{Store: tr.Store()}
	rng := rand.New(rand.NewSource(5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		if _, err := tr.NearestNeighbors(rd, buffer.AccessContext{QueryID: uint64(i)}, 10, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJoin measures the synchronized-traversal spatial join of two
// 10k-object trees.
func BenchmarkJoin(b *testing.B) {
	lt, _ := benchTree(b, 10_000)
	rt, _ := benchTree(b, 10_000)
	rdL := StoreReader{Store: lt.Store()}
	rdR := StoreReader{Store: rt.Store()}
	b.ResetTimer()
	pairs := 0
	for i := 0; i < b.N; i++ {
		err := Join(lt, rt, rdL, rdR, buffer.AccessContext{QueryID: uint64(i)},
			func(JoinPair) bool { pairs++; return true })
		if err != nil {
			b.Fatal(err)
		}
	}
	_ = pairs
}
