package rtree

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/page"
	"repro/internal/storage"
)

// BulkLoad builds an R-tree bottom-up with the Sort-Tile-Recursive
// packing of Leutenegger, López and Edgington: objects are sorted by
// x-centre, cut into √(N/B) vertical slabs, sorted by y-centre within
// each slab and packed into full pages; upper levels are packed the same
// way from the node MBRs. The result is a valid tree for the same query
// API as an insertion-built tree.
//
// Bulk-loaded trees are more tightly packed than insertion-built ones
// (near-100% storage utilization versus ~70%), so the paper's experiments
// build by insertion; bulk loading exists for fast setup of large
// databases and as an ablation.
func BulkLoad(store storage.Store, params Params, entries []page.Entry) (*Tree, error) {
	if err := params.validate(); err != nil {
		return nil, err
	}
	if store == nil {
		return nil, errors.New("rtree: nil store")
	}
	for i := range entries {
		if !entries[i].MBR.Valid() {
			return nil, fmt.Errorf("rtree: bulk item %d has invalid MBR", i)
		}
		if entries[i].Child != page.InvalidID {
			return nil, fmt.Errorf("rtree: bulk item %d has a child pointer", i)
		}
	}
	t := &Tree{store: store, io: storeIO{store: store}, params: params, height: 1}
	if len(entries) == 0 {
		rootID := store.Allocate()
		root := page.New(rootID, page.TypeData, 0, params.MaxDataEntries)
		if err := store.Write(root); err != nil {
			return nil, err
		}
		t.root = rootID
		return t, nil
	}

	level := 0
	current := append([]page.Entry(nil), entries...)
	for {
		nodes, err := t.packLevel(current, level)
		if err != nil {
			return nil, err
		}
		if len(nodes) == 1 {
			t.root = nodes[0].ID
			t.height = level + 1
			t.numObjects = len(entries)
			return t, nil
		}
		next := make([]page.Entry, len(nodes))
		for i, n := range nodes {
			next[i] = page.Entry{MBR: n.MBR, Child: n.ID}
		}
		current = next
		level++
	}
}

// packLevel groups entries into written pages at the given level using
// STR tiling. Every page receives at least minEntries (the tail group is
// rebalanced with its neighbour).
func (t *Tree) packLevel(entries []page.Entry, level int) ([]*page.Page, error) {
	capacity := t.params.maxEntries(level)
	minFill := t.params.minEntries(level)
	n := len(entries)

	numPages := (n + capacity - 1) / capacity
	slabs := int(math.Ceil(math.Sqrt(float64(numPages))))
	if slabs < 1 {
		slabs = 1
	}
	perSlab := (n + slabs - 1) / slabs

	sorted := append([]page.Entry(nil), entries...)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].MBR.Center().X < sorted[j].MBR.Center().X
	})

	var groups [][]page.Entry
	for s := 0; s < n; s += perSlab {
		end := s + perSlab
		if end > n {
			end = n
		}
		slab := sorted[s:end]
		sort.SliceStable(slab, func(i, j int) bool {
			return slab[i].MBR.Center().Y < slab[j].MBR.Center().Y
		})
		for o := 0; o < len(slab); o += capacity {
			e := o + capacity
			if e > len(slab) {
				e = len(slab)
			}
			groups = append(groups, slab[o:e])
		}
	}
	// Rebalance undersized tail groups with their predecessor (only the
	// last group of a slab can be undersized; a single root-level group
	// may stay small).
	for i := 1; i < len(groups); i++ {
		if len(groups[i]) >= minFill {
			continue
		}
		need := minFill - len(groups[i])
		prev := groups[i-1]
		if len(prev)-need < minFill {
			// Merge outright if the neighbour cannot spare enough.
			merged := append(append([]page.Entry(nil), prev...), groups[i]...)
			if len(merged) <= capacity {
				groups[i-1] = merged
				groups = append(groups[:i], groups[i+1:]...)
				i--
				continue
			}
			need = len(prev) - minFill
		}
		moved := append([]page.Entry(nil), prev[len(prev)-need:]...)
		groups[i-1] = prev[:len(prev)-need]
		groups[i] = append(moved, groups[i]...)
	}

	nodes := make([]*page.Page, 0, len(groups))
	typ := page.TypeData
	if level > 0 {
		typ = page.TypeDirectory
	}
	for _, g := range groups {
		id := t.store.Allocate()
		p := page.New(id, typ, level, len(g))
		p.Entries = append(p.Entries, g...)
		p.RecomputeFast()
		if err := t.store.Write(p); err != nil {
			return nil, err
		}
		nodes = append(nodes, p)
	}
	return nodes, nil
}
