package rtree

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/page"
	"repro/internal/storage"
)

func bulkEntries(objs []obj) []page.Entry {
	out := make([]page.Entry, len(objs))
	for i, o := range objs {
		out[i] = page.Entry{MBR: o.mbr, ObjID: o.id}
	}
	return out
}

func TestBulkLoadEmpty(t *testing.T) {
	tr, err := BulkLoad(storage.NewMemStore(), testParams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumObjects() != 0 || tr.Height() != 1 {
		t.Errorf("empty bulk load: %d objects, height %d", tr.NumObjects(), tr.Height())
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

func TestBulkLoadValidation(t *testing.T) {
	if _, err := BulkLoad(nil, testParams(), nil); err == nil {
		t.Error("nil store should fail")
	}
	s := storage.NewMemStore()
	if _, err := BulkLoad(s, testParams(), []page.Entry{{MBR: geom.EmptyRect()}}); err == nil {
		t.Error("invalid MBR should fail")
	}
	if _, err := BulkLoad(s, testParams(), []page.Entry{
		{MBR: geom.NewRect(0, 0, 1, 1), Child: 5},
	}); err == nil {
		t.Error("child pointer in bulk item should fail")
	}
}

func TestBulkLoadMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, n := range []int{1, 5, 6, 7, 100, 2500} {
		objs := randObjs(rng, n)
		tr, err := BulkLoad(storage.NewMemStore(), testParams(), bulkEntries(objs))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tr.NumObjects() != n {
			t.Errorf("n=%d: NumObjects = %d", n, tr.NumObjects())
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for trial := 0; trial < 30; trial++ {
			q := geom.RectFromCenter(
				geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}, 120, 90)
			got := searchIDs(t, tr, q)
			want := bruteSearch(objs, q)
			if !idsMatch(got, want) {
				t.Fatalf("n=%d trial %d: got %d, want %d", n, trial, len(got), len(want))
			}
		}
	}
}

func TestBulkLoadPacksTighter(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	objs := randObjs(rng, 4000)
	bulk, err := BulkLoad(storage.NewMemStore(), testParams(), bulkEntries(objs))
	if err != nil {
		t.Fatal(err)
	}
	ins, _ := buildTree(t, objs)
	bs, err := bulk.Stats()
	if err != nil {
		t.Fatal(err)
	}
	is, err := ins.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if bs.TotalPages() >= is.TotalPages() {
		t.Errorf("bulk load (%d pages) should pack tighter than insertion (%d pages)",
			bs.TotalPages(), is.TotalPages())
	}
}

func TestBulkLoadedTreeSupportsMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	objs := randObjs(rng, 1000)
	tr, err := BulkLoad(storage.NewMemStore(), testParams(), bulkEntries(objs))
	if err != nil {
		t.Fatal(err)
	}
	// Insert and delete on a bulk-loaded tree must keep it valid.
	for i := 0; i < 200; i++ {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		if err := tr.Insert(uint64(10000+i), geom.NewRect(x, y, x+1, y+1)); err != nil {
			t.Fatal(err)
		}
	}
	for _, idx := range rng.Perm(len(objs))[:200] {
		found, err := tr.Delete(objs[idx].id, objs[idx].mbr)
		if err != nil || !found {
			t.Fatalf("delete: %v %v", found, err)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.NumObjects() != 1000 {
		t.Errorf("NumObjects = %d, want 1000", tr.NumObjects())
	}
}
