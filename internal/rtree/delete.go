package rtree

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/page"
)

// Delete removes the object with the given ID and MBR from the tree,
// returning whether it was found. Underfull nodes are dissolved and their
// entries reinserted at their original level (Guttman's CondenseTree); a
// directory root with a single child is collapsed.
func (t *Tree) Delete(objID uint64, mbr geom.Rect) (bool, error) {
	path, err := t.findLeaf(objID, mbr)
	if err != nil {
		return false, err
	}
	if path == nil {
		return false, nil
	}
	leaf := path[len(path)-1].node
	idx := -1
	for i, e := range leaf.Entries {
		if e.ObjID == objID && e.MBR.Equal(mbr) {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false, fmt.Errorf("rtree: findLeaf returned a leaf without object %d", objID)
	}
	leaf.Entries = append(leaf.Entries[:idx], leaf.Entries[idx+1:]...)

	if err := t.condense(path); err != nil {
		return false, err
	}
	if err := t.shrinkRoot(); err != nil {
		return false, err
	}
	t.numObjects--
	return true, nil
}

// findLeaf locates a leaf containing the object and returns the
// root-to-leaf path, or nil if the object is not stored.
func (t *Tree) findLeaf(objID uint64, mbr geom.Rect) ([]pathStep, error) {
	var dfs func(id page.ID, parentIdx int) ([]pathStep, error)
	dfs = func(id page.ID, parentIdx int) ([]pathStep, error) {
		node, err := t.read(id)
		if err != nil {
			return nil, err
		}
		step := pathStep{node: node, parentIdx: parentIdx}
		if node.Level == 0 {
			for _, e := range node.Entries {
				if e.ObjID == objID && e.MBR.Equal(mbr) {
					return []pathStep{step}, nil
				}
			}
			return nil, nil
		}
		for i, e := range node.Entries {
			if !e.MBR.Contains(mbr) {
				continue
			}
			sub, err := dfs(e.Child, i)
			if err != nil {
				return nil, err
			}
			if sub != nil {
				return append([]pathStep{step}, sub...), nil
			}
		}
		return nil, nil
	}
	return dfs(t.root, -1)
}

// condense walks the deletion path bottom-up, dissolving underfull
// non-root nodes and reinserting their entries afterwards.
func (t *Tree) condense(path []pathStep) error {
	type orphan struct {
		entries []page.Entry
		level   int
	}
	var orphans []orphan

	for depth := len(path) - 1; depth > 0; depth-- {
		node := path[depth].node
		parent := path[depth-1].node
		idx := path[depth].parentIdx
		if len(node.Entries) < t.params.minEntries(node.Level) {
			// Dissolve: detach from parent, queue entries for reinsertion.
			orphans = append(orphans, orphan{
				entries: append([]page.Entry(nil), node.Entries...),
				level:   node.Level,
			})
			parent.Entries = append(parent.Entries[:idx], parent.Entries[idx+1:]...)
			// Later steps' parentIdx values may shift; fix the sibling
			// index bookkeeping by recomputing nothing — only path[depth]
			// is removed and lower depths were already processed.
			continue
		}
		node.RecomputeFast()
		if err := t.write(node); err != nil {
			return err
		}
		parent.Entries[idx].MBR = node.MBR
	}
	if err := t.write(path[0].node); err != nil {
		return err
	}

	// Reinsert orphaned entries at their original levels, deepest first.
	for i := len(orphans) - 1; i >= 0; i-- {
		for _, e := range orphans[i].entries {
			t.reinsertDone = make(map[int]bool)
			if err := t.insertEntry(e, orphans[i].level); err != nil {
				return err
			}
		}
	}
	return nil
}

// shrinkRoot collapses directory roots with a single child and resets an
// empty directory root to an empty leaf.
func (t *Tree) shrinkRoot() error {
	for {
		root, err := t.read(t.root)
		if err != nil {
			return err
		}
		if root.Level == 0 {
			return nil
		}
		switch len(root.Entries) {
		case 0:
			// All objects gone: replace with a fresh empty leaf.
			leafID := t.io.Allocate()
			leaf := page.New(leafID, page.TypeData, 0, t.params.MaxDataEntries)
			if err := t.write(leaf); err != nil {
				return err
			}
			t.root = leafID
			t.height = 1
			return nil
		case 1:
			t.root = root.Entries[0].Child
			t.height--
		default:
			return nil
		}
	}
}
