package rtree

import (
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/page"
)

// Insert adds an object with the given MBR to the tree, using the full
// R*-tree insertion algorithm: ChooseSubtree with minimum overlap
// enlargement above the leaves, forced reinsertion on the first overflow
// of each level, and the R* topological split otherwise.
func (t *Tree) Insert(objID uint64, mbr geom.Rect) error {
	if !mbr.Valid() {
		return fmt.Errorf("rtree: insert object %d: invalid MBR %v", objID, mbr)
	}
	t.reinsertDone = make(map[int]bool)
	if err := t.insertEntry(page.Entry{MBR: mbr, ObjID: objID}, 0); err != nil {
		return err
	}
	t.numObjects++
	return nil
}

// pathStep is one node on the root-to-target descent, together with the
// index of its entry within its parent (-1 for the root).
type pathStep struct {
	node      *page.Page
	parentIdx int
}

// insertEntry places e into a node at the given level, handling overflow.
// Forced-reinsertion state (reinsertDone) spans the whole top-level
// insertion, including recursive reinsertions.
func (t *Tree) insertEntry(e page.Entry, level int) error {
	path, err := t.choosePath(e.MBR, level)
	if err != nil {
		return err
	}
	leafDepth := len(path) - 1
	node := path[leafDepth].node
	node.Entries = append(node.Entries, e)
	if len(node.Entries) > t.params.maxEntries(node.Level) {
		return t.overflowTreatment(path, leafDepth)
	}
	return t.writeAndAdjust(path, leafDepth)
}

// choosePath descends from the root to a node at the target level,
// applying the R* ChooseSubtree criteria, and returns the full path.
func (t *Tree) choosePath(r geom.Rect, level int) ([]pathStep, error) {
	node, err := t.read(t.root)
	if err != nil {
		return nil, err
	}
	path := []pathStep{{node: node, parentIdx: -1}}
	for node.Level > level {
		idx := chooseSubtree(node, r)
		child, err := t.read(node.Entries[idx].Child)
		if err != nil {
			return nil, err
		}
		path = append(path, pathStep{node: child, parentIdx: idx})
		node = child
	}
	if node.Level != level {
		return nil, fmt.Errorf("rtree: no node at level %d (tree height %d)", level, t.height)
	}
	return path, nil
}

// chooseSubtree picks the entry of node whose subtree should receive a
// rectangle r. If the children are leaves, the entry needing the least
// overlap enlargement wins (ties: least area enlargement, then smallest
// area); otherwise the least area enlargement (ties: smallest area).
func chooseSubtree(node *page.Page, r geom.Rect) int {
	if node.Level == 1 {
		return chooseByOverlap(node, r)
	}
	return chooseByArea(node, r)
}

// chooseByArea returns the entry with minimum area enlargement.
func chooseByArea(node *page.Page, r geom.Rect) int {
	best := 0
	bestEnl := node.Entries[0].MBR.Enlargement(r)
	bestArea := node.Entries[0].MBR.Area()
	for i := 1; i < len(node.Entries); i++ {
		enl := node.Entries[i].MBR.Enlargement(r)
		area := node.Entries[i].MBR.Area()
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}

// chooseByOverlap returns the entry with minimum overlap enlargement.
func chooseByOverlap(node *page.Page, r geom.Rect) int {
	best := -1
	var bestOvl, bestEnl, bestArea float64
	for i := range node.Entries {
		grown := node.Entries[i].MBR.Union(r)
		var ovl float64
		for j := range node.Entries {
			if j == i {
				continue
			}
			ovl += grown.OverlapArea(node.Entries[j].MBR) -
				node.Entries[i].MBR.OverlapArea(node.Entries[j].MBR)
		}
		enl := node.Entries[i].MBR.Enlargement(r)
		area := node.Entries[i].MBR.Area()
		if best < 0 || ovl < bestOvl || (ovl == bestOvl && enl < bestEnl) ||
			(ovl == bestOvl && enl == bestEnl && area < bestArea) {
			best, bestOvl, bestEnl, bestArea = i, ovl, enl, area
		}
	}
	return best
}

// writeAndAdjust persists the node at the given depth and propagates its
// MBR change through the ancestors' entries up to the root.
func (t *Tree) writeAndAdjust(path []pathStep, depth int) error {
	if err := t.write(path[depth].node); err != nil {
		return err
	}
	for i := depth; i > 0; i-- {
		child := path[i]
		parent := path[i-1].node
		if parent.Entries[child.parentIdx].MBR.Equal(child.node.MBR) {
			return nil // no further change propagates
		}
		parent.Entries[child.parentIdx].MBR = child.node.MBR
		if err := t.write(parent); err != nil {
			return err
		}
	}
	return nil
}

// overflowTreatment handles a node at path[depth] holding M+1 entries:
// forced reinsertion on the first overflow of its level during this
// insertion (never for the root), a split otherwise.
func (t *Tree) overflowTreatment(path []pathStep, depth int) error {
	node := path[depth].node
	if node.ID != t.root && !t.reinsertDone[node.Level] {
		t.reinsertDone[node.Level] = true
		return t.reinsert(path, depth)
	}
	return t.split(path, depth)
}

// reinsert removes the ReinsertFrac share of entries farthest from the
// node's MBR centre and re-inserts them, closest first ("close reinsert",
// the variant the R*-tree authors found best).
func (t *Tree) reinsert(path []pathStep, depth int) error {
	node := path[depth].node
	center := geom.MBR(entryMBRs(node.Entries)...).Center()

	type distEntry struct {
		e page.Entry
		d float64
	}
	des := make([]distEntry, len(node.Entries))
	for i, e := range node.Entries {
		c := e.MBR.Center()
		dx, dy := c.X-center.X, c.Y-center.Y
		des[i] = distEntry{e: e, d: dx*dx + dy*dy}
	}
	sort.Slice(des, func(i, j int) bool { return des[i].d > des[j].d })

	p := int(t.params.ReinsertFrac * float64(len(des)))
	if p < 1 {
		p = 1
	}
	removed := des[:p]
	node.Entries = node.Entries[:0]
	for _, de := range des[p:] {
		node.Entries = append(node.Entries, de.e)
	}
	if err := t.writeAndAdjust(path, depth); err != nil {
		return err
	}
	// Close reinsert: smallest distance first.
	for i := len(removed) - 1; i >= 0; i-- {
		if err := t.insertEntry(removed[i].e, node.Level); err != nil {
			return err
		}
	}
	return nil
}

// split divides the overflowing node at path[depth] using the R* split
// and installs the new sibling in the parent, propagating overflow.
func (t *Tree) split(path []pathStep, depth int) error {
	node := path[depth].node
	m := t.params.minEntries(node.Level)
	group1, group2 := rstarSplit(node.Entries, m)

	node.Entries = group1
	sibID := t.io.Allocate()
	sib := page.New(sibID, node.Type, node.Level, len(group2))
	sib.Entries = append(sib.Entries, group2...)

	if err := t.write(node); err != nil {
		return err
	}
	if err := t.write(sib); err != nil {
		return err
	}

	if node.ID == t.root {
		return t.growRoot(node, sib)
	}

	parent := path[depth-1].node
	parent.Entries[path[depth].parentIdx].MBR = node.MBR
	parent.Entries = append(parent.Entries, page.Entry{MBR: sib.MBR, Child: sib.ID})
	if len(parent.Entries) > t.params.maxEntries(parent.Level) {
		return t.overflowTreatment(path, depth-1)
	}
	return t.writeAndAdjust(path, depth-1)
}

// growRoot replaces the root with a new directory node over the two split
// halves.
func (t *Tree) growRoot(left, right *page.Page) error {
	rootID := t.io.Allocate()
	root := page.New(rootID, page.TypeDirectory, left.Level+1, t.params.MaxDirEntries)
	root.Entries = append(root.Entries,
		page.Entry{MBR: left.MBR, Child: left.ID},
		page.Entry{MBR: right.MBR, Child: right.ID},
	)
	if err := t.write(root); err != nil {
		return err
	}
	t.root = rootID
	t.height++
	return nil
}

// entryMBRs extracts the MBRs of a slice of entries.
func entryMBRs(entries []page.Entry) []geom.Rect {
	rs := make([]geom.Rect, len(entries))
	for i, e := range entries {
		rs[i] = e.MBR
	}
	return rs
}

// rstarSplit partitions M+1 entries into two groups following the R*
// topological split: the split axis minimizes the margin sum over all
// distributions; the distribution on that axis minimizes the overlap
// between the groups, then their total area. Both groups have at least m
// entries.
func rstarSplit(entries []page.Entry, m int) (group1, group2 []page.Entry) {
	axis := chooseSplitAxis(entries, m)
	lower, upper := axisSortings(entries, axis)

	var best []page.Entry
	bestK := 0
	bestOvl, bestArea := 0.0, 0.0
	first := true
	for _, sorted := range [][]page.Entry{lower, upper} {
		pre, suf := prefixSuffixMBRs(sorted)
		for k := m; k <= len(sorted)-m; k++ {
			bb1, bb2 := pre[k-1], suf[k]
			ovl := bb1.OverlapArea(bb2)
			area := bb1.Area() + bb2.Area()
			if first || ovl < bestOvl || (ovl == bestOvl && area < bestArea) {
				best, bestK, bestOvl, bestArea = sorted, k, ovl, area
				first = false
			}
		}
	}
	group1 = append([]page.Entry(nil), best[:bestK]...)
	group2 = append([]page.Entry(nil), best[bestK:]...)
	return group1, group2
}

// chooseSplitAxis returns 0 (x) or 1 (y): the axis whose distributions
// have the smaller total margin.
func chooseSplitAxis(entries []page.Entry, m int) int {
	bestAxis, bestMargin := 0, 0.0
	for axis := 0; axis < 2; axis++ {
		lower, upper := axisSortings(entries, axis)
		margin := 0.0
		for _, sorted := range [][]page.Entry{lower, upper} {
			pre, suf := prefixSuffixMBRs(sorted)
			for k := m; k <= len(sorted)-m; k++ {
				margin += pre[k-1].Margin() + suf[k].Margin()
			}
		}
		if axis == 0 || margin < bestMargin {
			bestAxis, bestMargin = axis, margin
		}
	}
	return bestAxis
}

// axisSortings returns the entries sorted by lower and by upper value
// along the axis (0 = x, 1 = y).
func axisSortings(entries []page.Entry, axis int) (byLower, byUpper []page.Entry) {
	byLower = append([]page.Entry(nil), entries...)
	byUpper = append([]page.Entry(nil), entries...)
	if axis == 0 {
		sort.SliceStable(byLower, func(i, j int) bool { return byLower[i].MBR.MinX < byLower[j].MBR.MinX })
		sort.SliceStable(byUpper, func(i, j int) bool { return byUpper[i].MBR.MaxX < byUpper[j].MBR.MaxX })
	} else {
		sort.SliceStable(byLower, func(i, j int) bool { return byLower[i].MBR.MinY < byLower[j].MBR.MinY })
		sort.SliceStable(byUpper, func(i, j int) bool { return byUpper[i].MBR.MaxY < byUpper[j].MBR.MaxY })
	}
	return byLower, byUpper
}

// prefixSuffixMBRs returns pre[i] = MBR(sorted[0..i]) and
// suf[i] = MBR(sorted[i..]).
func prefixSuffixMBRs(sorted []page.Entry) (pre, suf []geom.Rect) {
	n := len(sorted)
	pre = make([]geom.Rect, n)
	suf = make([]geom.Rect, n+1)
	acc := geom.EmptyRect()
	for i := 0; i < n; i++ {
		acc = acc.Union(sorted[i].MBR)
		pre[i] = acc
	}
	suf[n] = geom.EmptyRect()
	acc = geom.EmptyRect()
	for i := n - 1; i >= 0; i-- {
		acc = acc.Union(sorted[i].MBR)
		suf[i] = acc
	}
	return pre, suf
}
