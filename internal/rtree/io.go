package rtree

import (
	"fmt"

	"repro/internal/buffer"
	"repro/internal/page"
	"repro/internal/storage"
)

// nodeIO abstracts how the tree's mutation paths read, write and allocate
// nodes. The default goes straight to the store; UseBuffer routes node
// traffic through a buffer manager so that update workloads (inserts,
// deletes) are charged to the replacement policy under study — the
// paper's future-work item 2.
type nodeIO interface {
	Read(id page.ID) (*page.Page, error)
	Write(p *page.Page) error
	Allocate() page.ID
}

// storeIO is the default, unbuffered node I/O.
type storeIO struct {
	store storage.Store
}

func (s storeIO) Read(id page.ID) (*page.Page, error) { return s.store.Read(id) }
func (s storeIO) Write(p *page.Page) error            { return s.store.Write(p) }
func (s storeIO) Allocate() page.ID                   { return s.store.Allocate() }

// bufferedIO routes node reads through a buffer pool's read path and
// node writes through its write path (dirty pages are written back on
// eviction), under a fixed access context. Any buffer.Pool works: a
// bare Engine for the single-threaded experiments, a locked, sharded or
// async composition when the tree shares its buffer with concurrent
// readers.
type bufferedIO struct {
	pool  buffer.Pool
	store storage.Store
	ctx   buffer.AccessContext
}

func (b bufferedIO) Read(id page.ID) (*page.Page, error) { return b.pool.Get(id, b.ctx) }
func (b bufferedIO) Write(p *page.Page) error            { return b.pool.Put(p, b.ctx) }
func (b bufferedIO) Allocate() page.ID                   { return b.store.Allocate() }

// UseBuffer routes all subsequent mutation I/O (Insert, Delete) through
// the buffer pool under the given context; queries already take their
// Reader explicitly. Call UnbufferedIO to restore direct store access.
// The caller must Flush the pool before reading the tree through any
// other path.
func (t *Tree) UseBuffer(pool buffer.Pool, ctx buffer.AccessContext) error {
	if pool == nil {
		return fmt.Errorf("rtree: UseBuffer with nil buffer pool")
	}
	t.io = bufferedIO{pool: pool, store: t.store, ctx: ctx}
	return nil
}

// UseBufferContext updates the access context of buffered mutation I/O
// (e.g. one context per update operation, so correlated accesses are
// recognized).
func (t *Tree) UseBufferContext(ctx buffer.AccessContext) error {
	b, ok := t.io.(bufferedIO)
	if !ok {
		return fmt.Errorf("rtree: UseBufferContext without UseBuffer")
	}
	b.ctx = ctx
	t.io = b
	return nil
}

// UnbufferedIO restores direct store access for mutations.
func (t *Tree) UnbufferedIO() {
	t.io = storeIO{store: t.store}
}
