package rtree

import (
	"fmt"

	"repro/internal/buffer"
	"repro/internal/geom"
	"repro/internal/page"
)

// JoinPair is one result of a spatial join: the IDs and MBRs of two
// intersecting objects from the left and right tree.
type JoinPair struct {
	Left, Right page.Entry
}

// JoinVisit consumes join results; returning false stops the join early.
type JoinVisit func(p JoinPair) bool

// Join computes the spatial (intersection) join of two R*-trees by
// synchronized depth-first traversal (Brinkhoff, Kriegel & Seeger,
// SIGMOD 1994): a pair of nodes is expanded only if their MBRs intersect,
// and only entry pairs whose MBRs intersect descend. Pages are read
// through the respective Readers, so the buffer policies under study pay
// the join's I/O — the paper's future-work item 2.
//
// Both traversals share one access context: all page requests of a join
// count as correlated, matching the paper's definition (one operation =
// one query).
func Join(left, right *Tree, rdL, rdR Reader, ctx buffer.AccessContext, fn JoinVisit) error {
	type task struct {
		l, r page.ID
	}
	stack := []task{{left.root, right.root}}
	for len(stack) > 0 {
		tk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nl, err := rdL.Get(tk.l, ctx)
		if err != nil {
			return fmt.Errorf("rtree: join left: %w", err)
		}
		nr, err := rdR.Get(tk.r, ctx)
		if err != nil {
			return fmt.Errorf("rtree: join right: %w", err)
		}
		if !nl.MBR.Intersects(nr.MBR) {
			continue
		}
		switch {
		case nl.Level == 0 && nr.Level == 0:
			for _, el := range nl.Entries {
				for _, er := range nr.Entries {
					if el.MBR.Intersects(er.MBR) {
						if !fn(JoinPair{Left: el, Right: er}) {
							return nil
						}
					}
				}
			}
		case nl.Level > 0 && (nr.Level == 0 || nl.Level >= nr.Level):
			// Expand the left (taller) node against the right node.
			for _, el := range nl.Entries {
				if el.MBR.Intersects(nr.MBR) {
					stack = append(stack, task{el.Child, tk.r})
				}
			}
		default:
			// Expand the right node.
			for _, er := range nr.Entries {
				if er.MBR.Intersects(nl.MBR) {
					stack = append(stack, task{tk.l, er.Child})
				}
			}
		}
	}
	return nil
}

// SelfJoinWindow is a convenience for the examples: it joins the objects
// of a tree against a query window list, returning the total number of
// intersections found. It demonstrates batched window execution under a
// shared buffer.
func SelfJoinWindow(t *Tree, rd Reader, windows []geom.Rect, startQuery uint64) (int, error) {
	total := 0
	for i, w := range windows {
		ctx := buffer.AccessContext{QueryID: startQuery + uint64(i)}
		err := t.Search(rd, ctx, w, func(page.Entry) bool {
			total++
			return true
		})
		if err != nil {
			return 0, err
		}
	}
	return total, nil
}
