package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/buffer"
	"repro/internal/geom"
)

func TestJoinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	left := randObjs(rng, 500)
	right := randObjs(rng, 400)
	lt, _ := buildTree(t, left)
	rt, _ := buildTree(t, right)

	type pair struct{ l, r uint64 }
	var got []pair
	err := Join(lt, rt,
		StoreReader{Store: lt.Store()}, StoreReader{Store: rt.Store()},
		buffer.AccessContext{QueryID: 1},
		func(p JoinPair) bool {
			got = append(got, pair{p.Left.ObjID, p.Right.ObjID})
			return true
		})
	if err != nil {
		t.Fatal(err)
	}

	var want []pair
	for _, l := range left {
		for _, r := range right {
			if l.mbr.Intersects(r.mbr) {
				want = append(want, pair{l.id, r.id})
			}
		}
	}
	lessP := func(ps []pair) func(i, j int) bool {
		return func(i, j int) bool {
			if ps[i].l != ps[j].l {
				return ps[i].l < ps[j].l
			}
			return ps[i].r < ps[j].r
		}
	}
	sort.Slice(got, lessP(got))
	sort.Slice(want, lessP(want))
	if len(got) != len(want) {
		t.Fatalf("join found %d pairs, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("pair %d: got %v, want %v", i, got[i], want[i])
		}
	}
	if len(want) == 0 {
		t.Fatal("degenerate test: no intersecting pairs")
	}
}

func TestJoinUnbalancedHeights(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	big := randObjs(rng, 1500)
	small := randObjs(rng, 10)
	bt, _ := buildTree(t, big)
	st, _ := buildTree(t, small)
	if bt.Height() <= st.Height() {
		t.Skip("trees not height-unbalanced with this seed")
	}
	count := 0
	err := Join(bt, st,
		StoreReader{Store: bt.Store()}, StoreReader{Store: st.Store()},
		buffer.AccessContext{}, func(JoinPair) bool { count++; return true })
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, l := range big {
		for _, r := range small {
			if l.mbr.Intersects(r.mbr) {
				want++
			}
		}
	}
	if count != want {
		t.Errorf("unbalanced join found %d, want %d", count, want)
	}
}

func TestJoinEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	objs := randObjs(rng, 300)
	lt, _ := buildTree(t, objs)
	rt, _ := buildTree(t, objs)
	count := 0
	err := Join(lt, rt,
		StoreReader{Store: lt.Store()}, StoreReader{Store: rt.Store()},
		buffer.AccessContext{}, func(JoinPair) bool { count++; return count < 5 })
	if err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Errorf("early stop after %d pairs, want 5", count)
	}
}

func TestSelfJoinWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	objs := randObjs(rng, 400)
	tr, _ := buildTree(t, objs)
	windows := []geom.Rect{
		geom.NewRect(0, 0, 500, 500),
		geom.NewRect(500, 0, 1000, 500),
	}
	got, err := SelfJoinWindow(tr, StoreReader{Store: tr.Store()}, windows, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, w := range windows {
		want += len(bruteSearch(objs, w))
	}
	if got != want {
		t.Errorf("SelfJoinWindow = %d, want %d", got, want)
	}
}
