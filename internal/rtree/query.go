package rtree

import (
	"container/heap"
	"fmt"

	"repro/internal/buffer"
	"repro/internal/geom"
	"repro/internal/page"
)

// Reader supplies tree pages to queries. Every buffer.Pool composition
// (Engine, LockedEngine, Router, AsyncPool) implements it, so queries
// can be routed
// through a buffer whose replacement policy is under study — including
// a shared concurrent pool serving many query goroutines; StoreReader
// bypasses buffering.
type Reader interface {
	Get(id page.ID, ctx buffer.AccessContext) (*page.Page, error)
}

// StoreReader adapts a storage.Store into a Reader (every access is a
// physical read).
type StoreReader struct {
	Store interface {
		Read(id page.ID) (*page.Page, error)
	}
}

// Get implements Reader.
func (r StoreReader) Get(id page.ID, _ buffer.AccessContext) (*page.Page, error) {
	return r.Store.Read(id)
}

// Visit is called for every matching data entry. Returning false stops the
// query early.
type Visit func(e page.Entry) bool

// Search reports all data entries whose MBR intersects query, reading
// pages through rd under the given access context. This is the window
// query of the paper's experiments.
func (t *Tree) Search(rd Reader, ctx buffer.AccessContext, query geom.Rect, fn Visit) error {
	return t.search(rd, ctx, query, geom.Rect.Intersects, fn)
}

// SearchContained reports all data entries whose MBR lies completely
// inside query.
func (t *Tree) SearchContained(rd Reader, ctx buffer.AccessContext, query geom.Rect, fn Visit) error {
	return t.search(rd, ctx, query, func(q, e geom.Rect) bool { return q.Contains(e) }, fn)
}

// PointQuery reports all data entries whose MBR contains the point.
func (t *Tree) PointQuery(rd Reader, ctx buffer.AccessContext, pt geom.Point, fn Visit) error {
	return t.Search(rd, ctx, geom.RectFromPoint(pt), fn)
}

// search runs a depth-first window query; leafPred decides whether a data
// entry matches (directory descent always uses intersection).
func (t *Tree) search(rd Reader, ctx buffer.AccessContext, query geom.Rect,
	leafPred func(q, e geom.Rect) bool, fn Visit) error {

	stack := []page.ID{t.root}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		node, err := rd.Get(id, ctx)
		if err != nil {
			return fmt.Errorf("rtree: search: %w", err)
		}
		if node.Level == 0 {
			for _, e := range node.Entries {
				if leafPred(query, e.MBR) {
					if !fn(e) {
						return nil
					}
				}
			}
			continue
		}
		for _, e := range node.Entries {
			if query.Intersects(e.MBR) {
				stack = append(stack, e.Child)
			}
		}
	}
	return nil
}

// Neighbor is one result of a nearest-neighbour query.
type Neighbor struct {
	Entry page.Entry
	Dist  float64 // MinDist from the query point to the entry MBR
}

// NearestNeighbors returns the k data entries closest to pt (by MBR
// MinDist), nearest first, using best-first traversal with a priority
// queue (Hjaltason & Samet). Fewer than k results are returned if the tree
// is smaller than k.
func (t *Tree) NearestNeighbors(rd Reader, ctx buffer.AccessContext, k int, pt geom.Point) ([]Neighbor, error) {
	if k <= 0 {
		return nil, nil
	}
	pq := &nnQueue{}
	heap.Push(pq, nnItem{dist: 0, pageID: t.root, isPage: true})
	var out []Neighbor
	for pq.Len() > 0 && len(out) < k {
		item := heap.Pop(pq).(nnItem)
		if !item.isPage {
			out = append(out, Neighbor{Entry: item.entry, Dist: item.dist})
			continue
		}
		node, err := rd.Get(item.pageID, ctx)
		if err != nil {
			return nil, fmt.Errorf("rtree: nearest neighbors: %w", err)
		}
		for _, e := range node.Entries {
			child := nnItem{dist: e.MBR.MinDist(pt), entry: e}
			if node.Level > 0 {
				child.isPage = true
				child.pageID = e.Child
			}
			heap.Push(pq, child)
		}
	}
	return out, nil
}

// nnItem is a priority-queue element: either a page to expand or a data
// entry candidate.
type nnItem struct {
	dist   float64
	isPage bool
	pageID page.ID
	entry  page.Entry
}

// nnQueue is a min-heap of nnItems by distance.
type nnQueue []nnItem

func (q nnQueue) Len() int           { return len(q) }
func (q nnQueue) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q nnQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *nnQueue) Push(x any)        { *q = append(*q, x.(nnItem)) }
func (q *nnQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}
