package rtree

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/buffer"
	"repro/internal/geom"
	"repro/internal/page"
	"repro/internal/storage"
)

// ctxNone returns an empty access context.
func ctxNone() buffer.AccessContext { return buffer.AccessContext{} }

// pageEntry aliases for test brevity.
type pageEntry = page.Entry

// rectSet is a quick-generatable batch of rectangles.
type rectSet struct {
	Rects []geom.Rect
}

// Generate implements quick.Generator: 0–120 finite rectangles.
func (rectSet) Generate(r *rand.Rand, size int) reflect.Value {
	n := r.Intn(120)
	rs := rectSet{Rects: make([]geom.Rect, n)}
	for i := range rs.Rects {
		x := r.NormFloat64() * 200
		y := r.NormFloat64() * 200
		w := math.Abs(r.NormFloat64()) * 30
		h := math.Abs(r.NormFloat64()) * 30
		rs.Rects[i] = geom.NewRect(x, y, x+w, y+h)
	}
	return reflect.ValueOf(rs)
}

// TestQuickInsertInvariants: inserting any batch of rectangles yields a
// structurally valid tree that finds every inserted object by its own
// MBR.
func TestQuickInsertInvariants(t *testing.T) {
	f := func(rs rectSet) bool {
		tr, err := New(storage.NewMemStore(), testParams())
		if err != nil {
			return false
		}
		for i, r := range rs.Rects {
			if err := tr.Insert(uint64(i+1), r); err != nil {
				return false
			}
		}
		if err := tr.Validate(); err != nil {
			return false
		}
		for i, r := range rs.Rects {
			found := false
			err := tr.Search(StoreReader{Store: tr.Store()}, ctxNone(), r,
				func(e pageEntry) bool {
					if e.ObjID == uint64(i+1) {
						found = true
						return false
					}
					return true
				})
			if err != nil || !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickDeleteInverse: deleting everything just inserted leaves an
// empty, valid tree.
func TestQuickDeleteInverse(t *testing.T) {
	f := func(rs rectSet) bool {
		tr, err := New(storage.NewMemStore(), testParams())
		if err != nil {
			return false
		}
		for i, r := range rs.Rects {
			if err := tr.Insert(uint64(i+1), r); err != nil {
				return false
			}
		}
		for i, r := range rs.Rects {
			found, err := tr.Delete(uint64(i+1), r)
			if err != nil || !found {
				return false
			}
		}
		return tr.NumObjects() == 0 && tr.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
