// Package rtree implements the R*-tree of Beckmann, Kriegel, Schneider and
// Seeger (SIGMOD 1990): the spatial access method used by the paper's
// experiments. It provides dynamic insertion with forced reinsertion and
// the R* split, deletion with tree condensation, and window, point,
// containment and nearest-neighbour queries.
//
// Tree nodes are the pages of package page, persisted through a
// storage.Store. Construction goes directly to the store; queries read
// nodes through a pluggable Reader so that a buffer.Manager can sit in
// between and the replacement policy under study determines the physical
// I/O — the measurement setup of the paper.
package rtree

import (
	"errors"
	"fmt"

	"repro/internal/geom"
	"repro/internal/page"
	"repro/internal/storage"
)

// Params configure an R*-tree. The defaults (DefaultParams) match the
// paper's primary database: at most 51 entries per directory page and 42
// per data page.
type Params struct {
	// MaxDirEntries is the directory-page fan-out (M for inner nodes).
	MaxDirEntries int
	// MaxDataEntries is the data-page capacity (M for leaves).
	MaxDataEntries int
	// MinFillFrac is the minimum fill grade m/M; the R*-tree authors
	// recommend 0.4.
	MinFillFrac float64
	// ReinsertFrac is the share of entries removed for forced reinsertion
	// on the first overflow per level; the R*-tree authors recommend 0.3.
	ReinsertFrac float64
}

// DefaultParams returns the paper's tree parameters.
func DefaultParams() Params {
	return Params{
		MaxDirEntries:  51,
		MaxDataEntries: 42,
		MinFillFrac:    0.4,
		ReinsertFrac:   0.3,
	}
}

// validate checks parameter sanity.
func (p Params) validate() error {
	if p.MaxDirEntries < 4 || p.MaxDataEntries < 4 {
		return fmt.Errorf("rtree: fan-outs must be ≥ 4, got %d/%d", p.MaxDirEntries, p.MaxDataEntries)
	}
	if p.MinFillFrac <= 0 || p.MinFillFrac > 0.5 {
		return fmt.Errorf("rtree: MinFillFrac %g outside (0, 0.5]", p.MinFillFrac)
	}
	if p.ReinsertFrac <= 0 || p.ReinsertFrac >= 1 {
		return fmt.Errorf("rtree: ReinsertFrac %g outside (0, 1)", p.ReinsertFrac)
	}
	return nil
}

// maxEntries returns M for a node at the given level.
func (p Params) maxEntries(level int) int {
	if level == 0 {
		return p.MaxDataEntries
	}
	return p.MaxDirEntries
}

// minEntries returns m for a node at the given level.
func (p Params) minEntries(level int) int {
	m := int(p.MinFillFrac * float64(p.maxEntries(level)))
	if m < 2 {
		m = 2
	}
	return m
}

// Tree is an R*-tree over a page store. It is not safe for concurrent
// mutation; concurrent read-only queries through independent Readers are
// fine.
type Tree struct {
	store  storage.Store
	io     nodeIO
	params Params

	root       page.ID
	height     int // number of levels; 1 = the root is a leaf
	numObjects int

	// reinsertDone tracks, during one insertion, the levels that already
	// used forced reinsertion (OverflowTreatment is allowed once per
	// level per inserted entry).
	reinsertDone map[int]bool
}

// New creates an empty R*-tree on the store.
func New(store storage.Store, params Params) (*Tree, error) {
	if err := params.validate(); err != nil {
		return nil, err
	}
	if store == nil {
		return nil, errors.New("rtree: nil store")
	}
	t := &Tree{store: store, io: storeIO{store: store}, params: params, height: 1}
	rootID := store.Allocate()
	root := page.New(rootID, page.TypeData, 0, params.MaxDataEntries)
	if err := store.Write(root); err != nil {
		return nil, fmt.Errorf("rtree: write initial root: %w", err)
	}
	t.root = rootID
	return t, nil
}

// Root returns the root page ID.
func (t *Tree) Root() page.ID { return t.root }

// Height returns the number of levels (1 = root is a leaf).
func (t *Tree) Height() int { return t.height }

// NumObjects returns the number of stored objects.
func (t *Tree) NumObjects() int { return t.numObjects }

// Params returns the tree parameters.
func (t *Tree) Params() Params { return t.params }

// Store returns the underlying page store.
func (t *Tree) Store() storage.Store { return t.store }

// read loads a node via the tree's node I/O (the plain store by default,
// a buffer manager after UseBuffer).
func (t *Tree) read(id page.ID) (*page.Page, error) {
	p, err := t.io.Read(id)
	if err != nil {
		return nil, fmt.Errorf("rtree: read node %d: %w", id, err)
	}
	return p, nil
}

// write persists a node after refreshing its O(n) statistics.
func (t *Tree) write(p *page.Page) error {
	p.RecomputeFast()
	if err := t.io.Write(p); err != nil {
		return fmt.Errorf("rtree: write node %d: %w", p.ID, err)
	}
	return nil
}

// FinalizeStats runs the full statistics pass (including the O(n²) entry
// overlap needed by the EO replacement criterion) over every node of the
// tree. Call once after bulk construction, before measuring queries.
func (t *Tree) FinalizeStats() error {
	return t.walk(t.root, func(p *page.Page) error {
		p.Recompute()
		return t.store.Write(p)
	})
}

// walk applies fn to every node of the tree in depth-first order.
func (t *Tree) walk(id page.ID, fn func(*page.Page) error) error {
	p, err := t.read(id)
	if err != nil {
		return err
	}
	if err := fn(p); err != nil {
		return err
	}
	if p.Level == 0 {
		return nil
	}
	for _, e := range p.Entries {
		if err := t.walk(e.Child, fn); err != nil {
			return err
		}
	}
	return nil
}

// TreeStats summarize the structure of a tree.
type TreeStats struct {
	Height     int
	DirPages   int
	DataPages  int
	NumObjects int
	RootMBR    geom.Rect
}

// TotalPages returns the total number of tree pages.
func (s TreeStats) TotalPages() int { return s.DirPages + s.DataPages }

// DirFraction returns the share of directory pages (the paper reports
// 2.84% for database 1 and 2.87% for database 2).
func (s TreeStats) DirFraction() float64 {
	if s.TotalPages() == 0 {
		return 0
	}
	return float64(s.DirPages) / float64(s.TotalPages())
}

// Stats walks the tree and returns its structural statistics.
func (t *Tree) Stats() (TreeStats, error) {
	st := TreeStats{Height: t.height, NumObjects: t.numObjects}
	err := t.walk(t.root, func(p *page.Page) error {
		if p.Level == 0 {
			st.DataPages++
		} else {
			st.DirPages++
		}
		if p.ID == t.root {
			st.RootMBR = p.MBR
		}
		return nil
	})
	return st, err
}
