package rtree

import (
	"math"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/buffer"
	"repro/internal/geom"
	"repro/internal/page"
	"repro/internal/storage"
)

// testParams are small fan-outs so that a few hundred objects already
// produce a multi-level tree exercising splits and reinsertion.
func testParams() Params {
	return Params{MaxDirEntries: 8, MaxDataEntries: 6, MinFillFrac: 0.4, ReinsertFrac: 0.3}
}

// obj is a brute-force reference object.
type obj struct {
	id  uint64
	mbr geom.Rect
}

// randObjs generates n objects with clustered positions and mixed sizes.
func randObjs(rng *rand.Rand, n int) []obj {
	objs := make([]obj, n)
	for i := range objs {
		var x, y float64
		if rng.Intn(4) == 0 { // background noise
			x, y = rng.Float64()*1000, rng.Float64()*1000
		} else { // clusters
			cx := float64(rng.Intn(5))*200 + 100
			cy := float64(rng.Intn(5))*200 + 100
			x = cx + rng.NormFloat64()*30
			y = cy + rng.NormFloat64()*30
		}
		w := rng.Float64() * 5
		h := rng.Float64() * 5
		if rng.Intn(3) == 0 { // points
			w, h = 0, 0
		}
		objs[i] = obj{id: uint64(i + 1), mbr: geom.NewRect(x, y, x+w, y+h)}
	}
	return objs
}

// buildTree inserts objects into a fresh tree over a MemStore.
func buildTree(t *testing.T, objs []obj) (*Tree, *storage.MemStore) {
	t.Helper()
	s := storage.NewMemStore()
	tr, err := New(s, testParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range objs {
		if err := tr.Insert(o.id, o.mbr); err != nil {
			t.Fatalf("insert %d: %v", o.id, err)
		}
	}
	return tr, s
}

// searchIDs runs a window query and returns the sorted result IDs.
func searchIDs(t *testing.T, tr *Tree, query geom.Rect) []uint64 {
	t.Helper()
	var ids []uint64
	err := tr.Search(StoreReader{Store: tr.Store()}, buffer.AccessContext{}, query,
		func(e page.Entry) bool {
			ids = append(ids, e.ObjID)
			return true
		})
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// bruteSearch returns the sorted IDs of objects intersecting query.
func bruteSearch(objs []obj, query geom.Rect) []uint64 {
	var ids []uint64
	for _, o := range objs {
		if o.mbr.Intersects(query) {
			ids = append(ids, o.id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func idsMatch(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestNewTree(t *testing.T) {
	s := storage.NewMemStore()
	tr, err := New(s, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if tr.Height() != 1 || tr.NumObjects() != 0 {
		t.Errorf("fresh tree: height %d, objects %d", tr.Height(), tr.NumObjects())
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("fresh tree invalid: %v", err)
	}
	// Searching an empty tree returns nothing.
	ids := searchIDs(t, tr, geom.NewRect(0, 0, 100, 100))
	if len(ids) != 0 {
		t.Errorf("empty tree returned %v", ids)
	}
}

func TestNewTreeValidation(t *testing.T) {
	s := storage.NewMemStore()
	if _, err := New(nil, DefaultParams()); err == nil {
		t.Error("nil store should fail")
	}
	bad := DefaultParams()
	bad.MaxDataEntries = 2
	if _, err := New(s, bad); err == nil {
		t.Error("tiny fan-out should fail")
	}
	bad = DefaultParams()
	bad.MinFillFrac = 0.9
	if _, err := New(s, bad); err == nil {
		t.Error("MinFillFrac > 0.5 should fail")
	}
	bad = DefaultParams()
	bad.ReinsertFrac = 0
	if _, err := New(s, bad); err == nil {
		t.Error("zero ReinsertFrac should fail")
	}
}

func TestInsertRejectsInvalidMBR(t *testing.T) {
	s := storage.NewMemStore()
	tr, err := New(s, testParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(1, geom.EmptyRect()); err == nil {
		t.Error("inserting empty MBR should fail")
	}
	if err := tr.Insert(1, geom.Rect{MinX: math.NaN()}); err == nil {
		t.Error("inserting NaN MBR should fail")
	}
}

func TestInsertAndValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 5, 6, 7, 50, 500, 2000} {
		objs := randObjs(rng, n)
		tr, _ := buildTree(t, objs)
		if tr.NumObjects() != n {
			t.Errorf("n=%d: NumObjects = %d", n, tr.NumObjects())
		}
		if err := tr.Validate(); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
}

func TestTreeGrowsInHeight(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	objs := randObjs(rng, 2000)
	tr, _ := buildTree(t, objs)
	if tr.Height() < 3 {
		t.Errorf("height = %d, want ≥ 3 for 2000 objects at fan-out 6", tr.Height())
	}
	st, err := tr.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.DataPages < 2000/6 {
		t.Errorf("data pages = %d, implausibly few", st.DataPages)
	}
	if st.DirPages == 0 {
		t.Error("no directory pages")
	}
	if st.NumObjects != 2000 {
		t.Errorf("stats objects = %d", st.NumObjects)
	}
	if st.TotalPages() != st.DirPages+st.DataPages {
		t.Error("TotalPages inconsistent")
	}
	if f := st.DirFraction(); f <= 0 || f >= 1 {
		t.Errorf("DirFraction = %g", f)
	}
}

func TestWindowQueryMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	objs := randObjs(rng, 1500)
	tr, _ := buildTree(t, objs)
	for trial := 0; trial < 100; trial++ {
		cx, cy := rng.Float64()*1000, rng.Float64()*1000
		w, h := rng.Float64()*120, rng.Float64()*120
		query := geom.RectFromCenter(geom.Point{X: cx, Y: cy}, w, h)
		got := searchIDs(t, tr, query)
		want := bruteSearch(objs, query)
		if !idsMatch(got, want) {
			t.Fatalf("trial %d query %v: got %d results, want %d", trial, query, len(got), len(want))
		}
	}
}

func TestPointQueryMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	objs := randObjs(rng, 800)
	tr, _ := buildTree(t, objs)
	for trial := 0; trial < 200; trial++ {
		pt := geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		var got []uint64
		err := tr.PointQuery(StoreReader{Store: tr.Store()}, buffer.AccessContext{}, pt,
			func(e page.Entry) bool { got = append(got, e.ObjID); return true })
		if err != nil {
			t.Fatal(err)
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		want := bruteSearch(objs, geom.RectFromPoint(pt))
		if !idsMatch(got, want) {
			t.Fatalf("trial %d point %v: got %v, want %v", trial, pt, got, want)
		}
	}
}

func TestSearchContainedMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	objs := randObjs(rng, 600)
	tr, _ := buildTree(t, objs)
	for trial := 0; trial < 50; trial++ {
		query := geom.RectFromCenter(
			geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}, 150, 150)
		var got []uint64
		err := tr.SearchContained(StoreReader{Store: tr.Store()}, buffer.AccessContext{}, query,
			func(e page.Entry) bool { got = append(got, e.ObjID); return true })
		if err != nil {
			t.Fatal(err)
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		var want []uint64
		for _, o := range objs {
			if query.Contains(o.mbr) {
				want = append(want, o.id)
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if !idsMatch(got, want) {
			t.Fatalf("trial %d: got %d, want %d", trial, len(got), len(want))
		}
	}
}

func TestSearchEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	objs := randObjs(rng, 500)
	tr, _ := buildTree(t, objs)
	count := 0
	err := tr.Search(StoreReader{Store: tr.Store()}, buffer.AccessContext{},
		geom.NewRect(0, 0, 1000, 1000),
		func(e page.Entry) bool {
			count++
			return count < 10
		})
	if err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Errorf("early stop visited %d entries, want 10", count)
	}
}

func TestNearestNeighborsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	objs := randObjs(rng, 700)
	tr, _ := buildTree(t, objs)
	for trial := 0; trial < 40; trial++ {
		pt := geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		k := rng.Intn(10) + 1
		got, err := tr.NearestNeighbors(StoreReader{Store: tr.Store()}, buffer.AccessContext{}, k, pt)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != k {
			t.Fatalf("got %d neighbors, want %d", len(got), k)
		}
		// Distances must be sorted and match the brute-force k-th distance.
		dists := make([]float64, len(objs))
		for i, o := range objs {
			dists[i] = o.mbr.MinDist(pt)
		}
		sort.Float64s(dists)
		for i, nb := range got {
			if i > 0 && nb.Dist < got[i-1].Dist {
				t.Fatalf("neighbors not sorted by distance")
			}
			if math.Abs(nb.Dist-dists[i]) > 1e-9 {
				t.Fatalf("neighbor %d dist %g, want %g", i, nb.Dist, dists[i])
			}
		}
	}
	// k ≤ 0 yields nothing.
	if nn, err := tr.NearestNeighbors(StoreReader{Store: tr.Store()}, buffer.AccessContext{}, 0, geom.Point{}); err != nil || nn != nil {
		t.Errorf("k=0: %v, %v", nn, err)
	}
}

func TestDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	objs := randObjs(rng, 900)
	tr, _ := buildTree(t, objs)

	// Delete a random half.
	perm := rng.Perm(len(objs))
	deleted := make(map[uint64]bool)
	for _, idx := range perm[:450] {
		o := objs[idx]
		found, err := tr.Delete(o.id, o.mbr)
		if err != nil {
			t.Fatalf("delete %d: %v", o.id, err)
		}
		if !found {
			t.Fatalf("object %d not found for deletion", o.id)
		}
		deleted[o.id] = true
	}
	if tr.NumObjects() != 450 {
		t.Errorf("NumObjects = %d, want 450", tr.NumObjects())
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("after deletes: %v", err)
	}
	// Deleted objects are gone; remaining are found.
	var remaining []obj
	for _, o := range objs {
		if !deleted[o.id] {
			remaining = append(remaining, o)
		}
	}
	for trial := 0; trial < 50; trial++ {
		query := geom.RectFromCenter(
			geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}, 100, 100)
		got := searchIDs(t, tr, query)
		want := bruteSearch(remaining, query)
		if !idsMatch(got, want) {
			t.Fatalf("post-delete trial %d: got %d, want %d", trial, len(got), len(want))
		}
	}
	// Deleting a missing object reports false.
	found, err := tr.Delete(999999, geom.NewRect(0, 0, 1, 1))
	if err != nil || found {
		t.Errorf("missing delete: found=%v err=%v", found, err)
	}
}

func TestDeleteAll(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	objs := randObjs(rng, 300)
	tr, _ := buildTree(t, objs)
	for _, o := range objs {
		found, err := tr.Delete(o.id, o.mbr)
		if err != nil || !found {
			t.Fatalf("delete %d: found=%v err=%v", o.id, found, err)
		}
	}
	if tr.NumObjects() != 0 {
		t.Errorf("NumObjects = %d", tr.NumObjects())
	}
	if tr.Height() != 1 {
		t.Errorf("height = %d, want 1 after deleting everything", tr.Height())
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("empty-again tree invalid: %v", err)
	}
	// Tree remains usable.
	if err := tr.Insert(1, geom.NewRect(0, 0, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if got := searchIDs(t, tr, geom.NewRect(0, 0, 2, 2)); len(got) != 1 {
		t.Errorf("reinsert after empty: %v", got)
	}
}

func TestInterleavedInsertDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	objs := randObjs(rng, 1200)
	s := storage.NewMemStore()
	tr, err := New(s, testParams())
	if err != nil {
		t.Fatal(err)
	}
	live := make(map[uint64]obj)
	next := 0
	for step := 0; step < 2400; step++ {
		if next < len(objs) && (len(live) == 0 || rng.Intn(3) > 0) {
			o := objs[next]
			next++
			if err := tr.Insert(o.id, o.mbr); err != nil {
				t.Fatal(err)
			}
			live[o.id] = o
		} else {
			for id, o := range live {
				found, err := tr.Delete(id, o.mbr)
				if err != nil || !found {
					t.Fatalf("delete %d: %v %v", id, found, err)
				}
				delete(live, id)
				break
			}
		}
	}
	if tr.NumObjects() != len(live) {
		t.Errorf("NumObjects = %d, want %d", tr.NumObjects(), len(live))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	var liveObjs []obj
	for _, o := range live {
		liveObjs = append(liveObjs, o)
	}
	query := geom.NewRect(0, 0, 1000, 1000)
	if got, want := searchIDs(t, tr, query), bruteSearch(liveObjs, query); !idsMatch(got, want) {
		t.Errorf("full query: got %d, want %d", len(got), len(want))
	}
}

func TestFileStoreBackedTree(t *testing.T) {
	fs, err := storage.CreateFileStore(filepath.Join(t.TempDir(), "tree.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	tr, err := New(fs, testParams())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	objs := randObjs(rng, 400)
	for _, o := range objs {
		if err := tr.Insert(o.id, o.mbr); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 30; trial++ {
		query := geom.RectFromCenter(
			geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}, 80, 80)
		var got []uint64
		err := tr.Search(StoreReader{Store: fs}, buffer.AccessContext{}, query,
			func(e page.Entry) bool { got = append(got, e.ObjID); return true })
		if err != nil {
			t.Fatal(err)
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if want := bruteSearch(objs, query); !idsMatch(got, want) {
			t.Fatalf("file-store trial %d: got %d, want %d", trial, len(got), len(want))
		}
	}
}

func TestFinalizeStatsComputesOverlap(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	objs := randObjs(rng, 300)
	tr, s := buildTree(t, objs)
	if err := tr.FinalizeStats(); err != nil {
		t.Fatal(err)
	}
	// After finalizing, at least one data page should have a positive
	// entry overlap (random clustered rectangles overlap somewhere), and
	// every page's stats must equal a fresh full recompute.
	sawOverlap := false
	err := tr.walk(tr.root, func(p *page.Page) error {
		if p.EntryOverlap > 0 {
			sawOverlap = true
		}
		clone := p.Clone()
		clone.Recompute()
		if clone.Meta != p.Meta {
			t.Errorf("page %d stats stale: %+v vs %+v", p.ID, p.Meta, clone.Meta)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sawOverlap {
		t.Error("no page with positive entry overlap after FinalizeStats")
	}
	_ = s
}

func TestQueriesThroughBufferCountIO(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	objs := randObjs(rng, 1000)
	tr, s := buildTree(t, objs)
	s.ResetStats()

	pol := &lruStub{}
	m, err := buffer.NewManager(s, pol, 16)
	if err != nil {
		t.Fatal(err)
	}
	var q1, q2 uint64
	for trial := 0; trial < 30; trial++ {
		query := geom.RectFromCenter(
			geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}, 60, 60)
		err := tr.Search(m, buffer.AccessContext{QueryID: uint64(trial)}, query,
			func(page.Entry) bool { return true })
		if err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	q1, q2 = st.Hits, st.Misses
	if q1 == 0 {
		t.Error("expected buffer hits across queries (shared root)")
	}
	if q2 == 0 {
		t.Error("expected buffer misses")
	}
	if s.Stats().Reads != st.Misses {
		t.Errorf("physical reads %d != misses %d", s.Stats().Reads, st.Misses)
	}
}

// lruStub is a minimal LRU policy to avoid importing core (cycle-free
// test of the Reader integration).
type lruStub struct {
	frames []*buffer.Frame
}

func (p *lruStub) Name() string { return "stub" }
func (p *lruStub) OnAdmit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {
	p.frames = append(p.frames, f)
}
func (p *lruStub) OnHit(f *buffer.Frame, now uint64, ctx buffer.AccessContext) {}
func (p *lruStub) Victim(ctx buffer.AccessContext) *buffer.Frame {
	var best *buffer.Frame
	for _, f := range p.frames {
		if f.Pinned() {
			continue
		}
		if best == nil || f.LastUse < best.LastUse {
			best = f
		}
	}
	return best
}
func (p *lruStub) OnEvict(f *buffer.Frame) {
	for i, g := range p.frames {
		if g == f {
			p.frames = append(p.frames[:i], p.frames[i+1:]...)
			return
		}
	}
}
func (p *lruStub) Reset() { p.frames = nil }

func TestPaperFanoutsDirectoryFraction(t *testing.T) {
	// With the paper's fan-outs (51/42), the directory-page share should
	// land near the paper's reported 2.8–2.9%.
	rng := rand.New(rand.NewSource(14))
	s := storage.NewMemStore()
	tr, err := New(s, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30000; i++ {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		if err := tr.Insert(uint64(i+1), geom.NewRect(x, y, x+rng.Float64(), y+rng.Float64())); err != nil {
			t.Fatal(err)
		}
	}
	st, err := tr.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if f := st.DirFraction(); f < 0.015 || f > 0.06 {
		t.Errorf("directory fraction = %.4f, want ≈ 0.028", f)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}
