package rtree

import (
	"fmt"

	"repro/internal/page"
)

// Validate checks the structural invariants of the tree and returns the
// first violation found. It is intended for tests and costs a full tree
// walk:
//
//   - every node's stored MBR is the union of its entry MBRs;
//   - every directory entry's MBR equals its child's MBR;
//   - children of a level-l node are at level l−1, leaves at level 0;
//   - page types match levels (data at 0, directory above);
//   - all non-root nodes hold between m and M entries;
//   - the number of reachable objects equals NumObjects().
func (t *Tree) Validate() error {
	objects := 0
	var check func(id page.ID, isRoot bool, expectLevel int) error
	check = func(id page.ID, isRoot bool, expectLevel int) error {
		node, err := t.read(id)
		if err != nil {
			return err
		}
		if expectLevel >= 0 && node.Level != expectLevel {
			return fmt.Errorf("rtree: node %d at level %d, expected %d", id, node.Level, expectLevel)
		}
		wantType := page.TypeData
		if node.Level > 0 {
			wantType = page.TypeDirectory
		}
		if node.Type != wantType {
			return fmt.Errorf("rtree: node %d level %d has type %v", id, node.Level, node.Type)
		}
		maxE := t.params.maxEntries(node.Level)
		minE := t.params.minEntries(node.Level)
		if len(node.Entries) > maxE {
			return fmt.Errorf("rtree: node %d has %d entries, max %d", id, len(node.Entries), maxE)
		}
		if !isRoot && len(node.Entries) < minE {
			return fmt.Errorf("rtree: node %d has %d entries, min %d", id, len(node.Entries), minE)
		}
		if isRoot && node.Level > 0 && len(node.Entries) < 2 {
			return fmt.Errorf("rtree: directory root %d has %d entries", id, len(node.Entries))
		}
		union := node.MBR
		fromEntries := node.Entries
		_ = fromEntries
		acc := page.New(0, node.Type, node.Level, 0)
		acc.Entries = node.Entries
		acc.RecomputeFast()
		if !acc.MBR.Equal(union) {
			return fmt.Errorf("rtree: node %d MBR %v != union of entries %v", id, union, acc.MBR)
		}
		if node.Level == 0 {
			objects += len(node.Entries)
			return nil
		}
		for _, e := range node.Entries {
			child, err := t.read(e.Child)
			if err != nil {
				return err
			}
			if !e.MBR.Equal(child.MBR) {
				return fmt.Errorf("rtree: entry MBR %v for child %d != child MBR %v",
					e.MBR, e.Child, child.MBR)
			}
			if err := check(e.Child, false, node.Level-1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := check(t.root, true, t.height-1); err != nil {
		return err
	}
	if objects != t.numObjects {
		return fmt.Errorf("rtree: %d reachable objects, NumObjects() = %d", objects, t.numObjects)
	}
	return nil
}
