package storage

import (
	"math/rand"
	"testing"

	"repro/internal/page"
)

func BenchmarkEncodePage(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p := makePage(1, page.TypeData, 0, 42, rng)
	buf := make([]byte, PageSize)
	b.SetBytes(PageSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := EncodePage(p, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodePage(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p := makePage(1, page.TypeData, 0, 42, rng)
	buf := make([]byte, PageSize)
	if err := EncodePage(p, buf); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(PageSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodePage(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMemStoreRead(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s := NewMemStore()
	const n = 1024
	for i := 0; i < n; i++ {
		id := s.Allocate()
		if err := s.Write(makePage(id, page.TypeData, 0, 8, rng)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Read(page.ID(i%n + 1)); err != nil {
			b.Fatal(err)
		}
	}
}
