package storage

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/page"
)

// Binary page layout (little-endian), used by FileStore. Every page
// occupies exactly PageSize bytes on disk:
//
//	offset  size  field
//	0       8     page ID
//	8       1     page type
//	9       1     (padding)
//	10      2     level
//	12      4     number of entries n
//	16      48·n  entries: MinX MinY MaxX MaxY (float64 each), Child (8), ObjID (8)
//
// Derived Meta fields (MBR, entry sums) are recomputed on decode rather
// than stored: they are cheap (the paper notes area/margin cost "no
// noticeable overhead") and recomputing keeps the format minimal.
const (
	// PageSize is the on-disk size of one page in bytes. 4 KiB holds the
	// paper's maximum fan-out (51 directory entries = 16+51·48 = 2464 B)
	// with room to spare.
	PageSize = 4096

	headerSize = 16
	entrySize  = 48

	// MaxEntries is the largest entry count a PageSize page can hold.
	MaxEntries = (PageSize - headerSize) / entrySize
)

// EncodePage serializes p into buf, which must be at least PageSize bytes.
func EncodePage(p *page.Page, buf []byte) error {
	if len(buf) < PageSize {
		return fmt.Errorf("storage: encode buffer too small: %d < %d", len(buf), PageSize)
	}
	if len(p.Entries) > MaxEntries {
		return fmt.Errorf("storage: page %d has %d entries, max %d", p.ID, len(p.Entries), MaxEntries)
	}
	for i := range buf[:PageSize] {
		buf[i] = 0
	}
	binary.LittleEndian.PutUint64(buf[0:], uint64(p.ID))
	buf[8] = byte(p.Type)
	binary.LittleEndian.PutUint16(buf[10:], uint16(p.Level))
	binary.LittleEndian.PutUint32(buf[12:], uint32(len(p.Entries)))
	off := headerSize
	for _, e := range p.Entries {
		binary.LittleEndian.PutUint64(buf[off+0:], math.Float64bits(e.MBR.MinX))
		binary.LittleEndian.PutUint64(buf[off+8:], math.Float64bits(e.MBR.MinY))
		binary.LittleEndian.PutUint64(buf[off+16:], math.Float64bits(e.MBR.MaxX))
		binary.LittleEndian.PutUint64(buf[off+24:], math.Float64bits(e.MBR.MaxY))
		binary.LittleEndian.PutUint64(buf[off+32:], uint64(e.Child))
		binary.LittleEndian.PutUint64(buf[off+40:], e.ObjID)
		off += entrySize
	}
	return nil
}

// DecodePage deserializes a page from buf (at least PageSize bytes) and
// recomputes its derived Meta fields.
func DecodePage(buf []byte) (*page.Page, error) {
	if len(buf) < PageSize {
		return nil, fmt.Errorf("storage: decode buffer too small: %d < %d", len(buf), PageSize)
	}
	id := page.ID(binary.LittleEndian.Uint64(buf[0:]))
	typ := page.Type(buf[8])
	level := int(binary.LittleEndian.Uint16(buf[10:]))
	n := int(binary.LittleEndian.Uint32(buf[12:]))
	if n < 0 || n > MaxEntries {
		return nil, fmt.Errorf("storage: corrupt page %d: %d entries", id, n)
	}
	p := page.New(id, typ, level, n)
	off := headerSize
	for i := 0; i < n; i++ {
		e := page.Entry{
			MBR: geom.Rect{
				MinX: math.Float64frombits(binary.LittleEndian.Uint64(buf[off+0:])),
				MinY: math.Float64frombits(binary.LittleEndian.Uint64(buf[off+8:])),
				MaxX: math.Float64frombits(binary.LittleEndian.Uint64(buf[off+16:])),
				MaxY: math.Float64frombits(binary.LittleEndian.Uint64(buf[off+24:])),
			},
			Child: page.ID(binary.LittleEndian.Uint64(buf[off+32:])),
			ObjID: binary.LittleEndian.Uint64(buf[off+40:]),
		}
		p.Append(e)
		off += entrySize
	}
	p.Recompute()
	return p, nil
}
