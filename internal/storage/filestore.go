package storage

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/page"
)

// pageBufPool recycles page-size scratch buffers for FileStore encode
// and decode. A sync.Pool instead of a per-store buffer lets any number
// of goroutines read and write concurrently without serializing on a
// shared scratch area.
var pageBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, PageSize)
		return &b
	},
}

// FileStore is a Store persisting pages in a single file of fixed-size
// slots: page ID n lives at byte offset (n−1)·PageSize. It exists for
// realism (binary serialization, durable databases, sequential-vs-random
// accounting against real offsets); the experiment harness uses MemStore.
//
// FileStore is safe for concurrent use without any internal lock: I/O
// goes through positioned ReadAt/WriteAt (independent pread/pwrite
// calls, no shared file offset), scratch buffers come from a pool, and
// the counters are atomics — so concurrent misses of an async buffer
// pool really do overlap in the kernel instead of serializing here.
type FileStore struct {
	f    *os.File
	next atomic.Uint64

	reads      atomic.Uint64
	writes     atomic.Uint64
	sequential atomic.Uint64
	// lastRead holds the most recently read page ID, 0 before the first
	// read (page.InvalidID is 0, so no valid read is ever adjacent to
	// the sentinel). Under concurrent readers "the previous read" is
	// whichever racer stored last — the sequentiality counter is a
	// workload heuristic, not an exact series, and stays monotonic and
	// race-free either way.
	lastRead atomic.Uint64
}

// CreateFileStore creates (or truncates) the file at path and returns an
// empty store backed by it.
func CreateFileStore(path string) (*FileStore, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("storage: create file store: %w", err)
	}
	s := &FileStore{f: f}
	s.next.Store(1)
	return s, nil
}

// OpenFileStore opens an existing page file created by CreateFileStore.
func OpenFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("storage: open file store: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat file store: %w", err)
	}
	if fi.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: %s: size %d not a multiple of page size", path, fi.Size())
	}
	s := &FileStore{f: f}
	s.next.Store(uint64(fi.Size()/PageSize) + 1)
	return s, nil
}

// Allocate implements Store.
func (s *FileStore) Allocate() page.ID {
	return page.ID(s.next.Add(1) - 1)
}

// Write implements Store.
func (s *FileStore) Write(p *page.Page) error {
	if p == nil || p.ID == page.InvalidID {
		return fmt.Errorf("storage: write of invalid page")
	}
	if uint64(p.ID) >= s.next.Load() {
		return fmt.Errorf("storage: write of unallocated page %d", p.ID)
	}
	bufp := pageBufPool.Get().(*[]byte)
	defer pageBufPool.Put(bufp)
	buf := *bufp
	if err := EncodePage(p, buf); err != nil {
		return err
	}
	if _, err := s.f.WriteAt(buf, int64(p.ID-1)*PageSize); err != nil {
		return fmt.Errorf("storage: write page %d: %w", p.ID, err)
	}
	s.writes.Add(1)
	return nil
}

// Read implements Store.
func (s *FileStore) Read(id page.ID) (*page.Page, error) {
	if id == page.InvalidID || uint64(id) >= s.next.Load() {
		return nil, fmt.Errorf("storage: read page %d: %w", id, ErrPageNotFound)
	}
	bufp := pageBufPool.Get().(*[]byte)
	defer pageBufPool.Put(bufp)
	buf := *bufp
	if _, err := s.f.ReadAt(buf, int64(id-1)*PageSize); err != nil {
		return nil, fmt.Errorf("storage: read page %d: %w", id, err)
	}
	p, err := DecodePage(buf)
	if err != nil {
		return nil, err
	}
	if p.ID != id {
		return nil, fmt.Errorf("storage: page %d slot holds page %d (never written?)", id, p.ID)
	}
	s.reads.Add(1)
	if prev := s.lastRead.Swap(uint64(id)); prev != 0 && uint64(id) == prev+1 {
		s.sequential.Add(1)
	}
	return p, nil
}

// NumPages implements Store.
func (s *FileStore) NumPages() int {
	return int(s.next.Load() - 1)
}

// Stats implements Store. Under concurrent I/O the three counters are
// individually, not mutually, consistent — the usual scrape contract.
func (s *FileStore) Stats() Stats {
	return Stats{
		Reads:      s.reads.Load(),
		Writes:     s.writes.Load(),
		Sequential: s.sequential.Load(),
	}
}

// ResetStats implements Store.
func (s *FileStore) ResetStats() {
	s.reads.Store(0)
	s.writes.Store(0)
	s.sequential.Store(0)
	s.lastRead.Store(0)
}

// Close implements Store.
func (s *FileStore) Close() error {
	return s.f.Close()
}
