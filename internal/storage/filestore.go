package storage

import (
	"fmt"
	"os"
	"sync"

	"repro/internal/page"
)

// FileStore is a Store persisting pages in a single file of fixed-size
// slots: page ID n lives at byte offset (n−1)·PageSize. It exists for
// realism (binary serialization, durable databases, sequential-vs-random
// accounting against real offsets); the experiment harness uses MemStore.
type FileStore struct {
	mu       sync.Mutex
	f        *os.File
	next     page.ID
	stats    Stats
	lastRead page.ID
	hasLast  bool
	buf      [PageSize]byte
}

// CreateFileStore creates (or truncates) the file at path and returns an
// empty store backed by it.
func CreateFileStore(path string) (*FileStore, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("storage: create file store: %w", err)
	}
	return &FileStore{f: f, next: 1}, nil
}

// OpenFileStore opens an existing page file created by CreateFileStore.
func OpenFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("storage: open file store: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat file store: %w", err)
	}
	if fi.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: %s: size %d not a multiple of page size", path, fi.Size())
	}
	return &FileStore{f: f, next: page.ID(fi.Size()/PageSize) + 1}, nil
}

// Allocate implements Store.
func (s *FileStore) Allocate() page.ID {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.next
	s.next++
	return id
}

// Write implements Store.
func (s *FileStore) Write(p *page.Page) error {
	if p == nil || p.ID == page.InvalidID {
		return fmt.Errorf("storage: write of invalid page")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if p.ID >= s.next {
		return fmt.Errorf("storage: write of unallocated page %d", p.ID)
	}
	if err := EncodePage(p, s.buf[:]); err != nil {
		return err
	}
	if _, err := s.f.WriteAt(s.buf[:], int64(p.ID-1)*PageSize); err != nil {
		return fmt.Errorf("storage: write page %d: %w", p.ID, err)
	}
	s.stats.Writes++
	return nil
}

// Read implements Store.
func (s *FileStore) Read(id page.ID) (*page.Page, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id == page.InvalidID || id >= s.next {
		return nil, fmt.Errorf("storage: read page %d: %w", id, ErrPageNotFound)
	}
	if _, err := s.f.ReadAt(s.buf[:], int64(id-1)*PageSize); err != nil {
		return nil, fmt.Errorf("storage: read page %d: %w", id, err)
	}
	p, err := DecodePage(s.buf[:])
	if err != nil {
		return nil, err
	}
	if p.ID != id {
		return nil, fmt.Errorf("storage: page %d slot holds page %d (never written?)", id, p.ID)
	}
	s.stats.Reads++
	if s.hasLast && id == s.lastRead+1 {
		s.stats.Sequential++
	}
	s.lastRead = id
	s.hasLast = true
	return p, nil
}

// NumPages implements Store.
func (s *FileStore) NumPages() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int(s.next - 1)
}

// Stats implements Store.
func (s *FileStore) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ResetStats implements Store.
func (s *FileStore) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats = Stats{}
	s.lastRead = 0
	s.hasLast = false
}

// Close implements Store.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}
