package storage

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/page"
)

// quickPage is a generatable page description for testing/quick.
type quickPage struct {
	Typ     uint8
	Level   uint8
	Entries []quickEntry
}

type quickEntry struct {
	X1, Y1, W, H float64
	Child        uint32
	ObjID        uint64
}

// Generate implements quick.Generator, bounding sizes to the codec's
// limits and coordinates to finite values.
func (quickPage) Generate(r *rand.Rand, size int) reflect.Value {
	n := r.Intn(MaxEntries + 1)
	qp := quickPage{
		Typ:     uint8(r.Intn(3)),
		Level:   uint8(r.Intn(6)),
		Entries: make([]quickEntry, n),
	}
	for i := range qp.Entries {
		qp.Entries[i] = quickEntry{
			X1:    r.NormFloat64() * 1e6,
			Y1:    r.NormFloat64() * 1e6,
			W:     math.Abs(r.NormFloat64()) * 1e3,
			H:     math.Abs(r.NormFloat64()) * 1e3,
			Child: r.Uint32(),
			ObjID: r.Uint64(),
		}
	}
	return reflect.ValueOf(qp)
}

// toPage materializes the description.
func (qp quickPage) toPage(id page.ID) *page.Page {
	p := page.New(id, page.Type(qp.Typ), int(qp.Level), len(qp.Entries))
	for _, e := range qp.Entries {
		p.Append(page.Entry{
			MBR:   geom.NewRect(e.X1, e.Y1, e.X1+e.W, e.Y1+e.H),
			Child: page.ID(e.Child),
			ObjID: e.ObjID,
		})
	}
	p.Recompute()
	return p
}

// TestQuickCodecRoundTrip: encode∘decode is the identity on every
// serializable page.
func TestQuickCodecRoundTrip(t *testing.T) {
	buf := make([]byte, PageSize)
	f := func(qp quickPage) bool {
		p := qp.toPage(1)
		if err := EncodePage(p, buf); err != nil {
			return false
		}
		got, err := DecodePage(buf)
		if err != nil {
			return false
		}
		if got.Meta != p.Meta || len(got.Entries) != len(p.Entries) {
			return false
		}
		for i := range p.Entries {
			if got.Entries[i] != p.Entries[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickStoreReadAfterWrite: a write followed by a read returns the
// same page, for arbitrary page content.
func TestQuickStoreReadAfterWrite(t *testing.T) {
	s := NewMemStore()
	f := func(qp quickPage) bool {
		id := s.Allocate()
		p := qp.toPage(id)
		if err := s.Write(p); err != nil {
			return false
		}
		got, err := s.Read(id)
		if err != nil {
			return false
		}
		return got.Meta == p.Meta && len(got.Entries) == len(p.Entries)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
