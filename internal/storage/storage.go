// Package storage provides page stores with physical-I/O accounting.
//
// The paper's experiments report disk-access counts, not wall-clock time, so
// the substrate here is a counting simulator: every Read/Write through a
// Store increments its Stats. Two implementations are provided:
//
//   - MemStore keeps pages in memory (fast, used by the experiment harness),
//   - FileStore persists fixed-size binary pages in a single file (realism;
//     it additionally distinguishes random from sequential accesses, the
//     paper's future-work item 1).
//
// Both are safe for concurrent use.
package storage

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/page"
)

// ErrPageNotFound is returned when reading a page ID that was never written.
var ErrPageNotFound = errors.New("storage: page not found")

// Stats counts physical page accesses. In the simulation every Read is one
// disk access; the buffer manager in front of the store turns logical
// requests into hits (no Read) or misses (one Read).
type Stats struct {
	Reads      uint64 // physical page reads
	Writes     uint64 // physical page writes
	Sequential uint64 // reads of the page following the previously read one
}

// Random returns the number of non-sequential reads.
func (s Stats) Random() uint64 {
	return s.Reads - s.Sequential
}

// Store is a page container with I/O accounting.
//
// Read returns the stored page. Callers must not mutate the returned page;
// the buffer manager clones pages it intends to modify.
type Store interface {
	// Allocate reserves a fresh page ID. IDs are dense and start at 1.
	Allocate() page.ID
	// Write persists p under p.ID. The ID must have been allocated.
	Write(p *page.Page) error
	// Read fetches the page with the given ID, counting one physical read.
	Read(id page.ID) (*page.Page, error)
	// NumPages returns the number of allocated pages.
	NumPages() int
	// Stats returns the accumulated I/O counters.
	Stats() Stats
	// ResetStats zeroes the I/O counters (e.g. after building an index,
	// before measuring queries).
	ResetStats()
	// Close releases resources. The store must not be used afterwards.
	Close() error
}

// MemStore is an in-memory Store. Reads return the stored page pointer
// (no copy): pages are treated as immutable once written, matching the
// read-only query workloads of the paper's experiments.
type MemStore struct {
	mu       sync.Mutex
	pages    map[page.ID]*page.Page
	next     page.ID
	stats    Stats
	lastRead page.ID
	hasLast  bool
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{pages: make(map[page.ID]*page.Page), next: 1}
}

// Allocate implements Store.
func (s *MemStore) Allocate() page.ID {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.next
	s.next++
	return id
}

// Write implements Store.
func (s *MemStore) Write(p *page.Page) error {
	if p == nil || p.ID == page.InvalidID {
		return fmt.Errorf("storage: write of invalid page")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if p.ID >= s.next {
		return fmt.Errorf("storage: write of unallocated page %d", p.ID)
	}
	s.pages[p.ID] = p
	s.stats.Writes++
	return nil
}

// Read implements Store.
func (s *MemStore) Read(id page.ID) (*page.Page, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pages[id]
	if !ok {
		return nil, fmt.Errorf("storage: read page %d: %w", id, ErrPageNotFound)
	}
	s.stats.Reads++
	if s.hasLast && id == s.lastRead+1 {
		s.stats.Sequential++
	}
	s.lastRead = id
	s.hasLast = true
	return p, nil
}

// NumPages implements Store.
func (s *MemStore) NumPages() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pages)
}

// Stats implements Store.
func (s *MemStore) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ResetStats implements Store.
func (s *MemStore) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats = Stats{}
	s.lastRead = 0
	s.hasLast = false
}

// Close implements Store.
func (s *MemStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pages = nil
	return nil
}
