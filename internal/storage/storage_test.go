package storage

import (
	"errors"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/geom"
	"repro/internal/page"
)

// makePage builds a recomputed test page with n entries.
func makePage(id page.ID, typ page.Type, level, n int, rng *rand.Rand) *page.Page {
	p := page.New(id, typ, level, n)
	for i := 0; i < n; i++ {
		x := rng.Float64() * 1000
		y := rng.Float64() * 1000
		p.Append(page.Entry{
			MBR:   geom.NewRect(x, y, x+rng.Float64()*10, y+rng.Float64()*10),
			Child: page.ID(rng.Uint64()%1000 + 1),
			ObjID: rng.Uint64(),
		})
	}
	p.Recompute()
	return p
}

// storeUnderTest runs the shared Store contract tests.
func storeUnderTest(t *testing.T, s Store) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))

	// Allocate IDs are dense from 1.
	id1 := s.Allocate()
	id2 := s.Allocate()
	if id1 != 1 || id2 != 2 {
		t.Fatalf("Allocate = %d, %d; want 1, 2", id1, id2)
	}

	p1 := makePage(id1, page.TypeDirectory, 2, 5, rng)
	p2 := makePage(id2, page.TypeData, 0, 40, rng)
	if err := s.Write(p1); err != nil {
		t.Fatalf("Write p1: %v", err)
	}
	if err := s.Write(p2); err != nil {
		t.Fatalf("Write p2: %v", err)
	}
	if n := s.NumPages(); n != 2 {
		t.Errorf("NumPages = %d, want 2", n)
	}

	got, err := s.Read(id2)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.ID != id2 || got.Type != page.TypeData || got.Level != 0 {
		t.Errorf("read meta = %+v", got.Meta)
	}
	if len(got.Entries) != 40 {
		t.Fatalf("read %d entries, want 40", len(got.Entries))
	}
	for i, e := range got.Entries {
		if e != p2.Entries[i] {
			t.Fatalf("entry %d = %+v, want %+v", i, e, p2.Entries[i])
		}
	}
	if got.MBR != p2.MBR || got.EntryAreaSum != p2.EntryAreaSum ||
		got.EntryMarginSum != p2.EntryMarginSum || got.EntryOverlap != p2.EntryOverlap {
		t.Errorf("derived meta mismatch: %+v vs %+v", got.Meta, p2.Meta)
	}

	// Stats: 1 read so far.
	if st := s.Stats(); st.Reads != 1 {
		t.Errorf("Reads = %d, want 1", st.Reads)
	}
	// Sequential read accounting: reading 1 then 2 is one sequential read.
	s.ResetStats()
	if _, err := s.Read(id1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(id2); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Reads != 2 || st.Sequential != 1 || st.Random() != 1 {
		t.Errorf("stats = %+v (random %d), want 2 reads, 1 sequential", st, st.Random())
	}

	// Reading an unknown page fails with ErrPageNotFound.
	if _, err := s.Read(9999); !errors.Is(err, ErrPageNotFound) {
		t.Errorf("read unknown page: err = %v, want ErrPageNotFound", err)
	}
	// Writing an unallocated page fails.
	if err := s.Write(makePage(500, page.TypeData, 0, 1, rng)); err == nil {
		t.Error("write of unallocated page should fail")
	}
	// Writing nil / invalid fails.
	if err := s.Write(nil); err == nil {
		t.Error("write of nil page should fail")
	}

	// Overwrite is allowed and returns the latest version.
	p1b := makePage(id1, page.TypeDirectory, 3, 7, rng)
	if err := s.Write(p1b); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	got, err = s.Read(id1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Level != 3 || len(got.Entries) != 7 {
		t.Errorf("overwritten page: level %d entries %d", got.Level, len(got.Entries))
	}

	if err := s.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

func TestMemStoreContract(t *testing.T) {
	storeUnderTest(t, NewMemStore())
}

func TestFileStoreContract(t *testing.T) {
	fs, err := CreateFileStore(filepath.Join(t.TempDir(), "pages.db"))
	if err != nil {
		t.Fatal(err)
	}
	storeUnderTest(t, fs)
}

func TestFileStoreReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	fs, err := CreateFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	var want []*page.Page
	for i := 0; i < 10; i++ {
		id := fs.Allocate()
		p := makePage(id, page.TypeData, 0, rng.Intn(MaxEntries), rng)
		if err := fs.Write(p); err != nil {
			t.Fatal(err)
		}
		want = append(want, p)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.NumPages() != 10 {
		t.Fatalf("reopened NumPages = %d, want 10", re.NumPages())
	}
	for _, w := range want {
		got, err := re.Read(w.ID)
		if err != nil {
			t.Fatalf("read %d: %v", w.ID, err)
		}
		if got.Meta != w.Meta {
			t.Errorf("page %d meta mismatch", w.ID)
		}
	}
	// New allocations continue after the persisted pages.
	if id := re.Allocate(); id != 11 {
		t.Errorf("post-reopen Allocate = %d, want 11", id)
	}
}

func TestOpenFileStoreErrors(t *testing.T) {
	if _, err := OpenFileStore(filepath.Join(t.TempDir(), "missing.db")); err == nil {
		t.Error("opening missing file should fail")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	buf := make([]byte, PageSize)
	for trial := 0; trial < 100; trial++ {
		p := makePage(page.ID(trial+1), page.Type(trial%3), trial%5, rng.Intn(MaxEntries+1), rng)
		if err := EncodePage(p, buf); err != nil {
			t.Fatalf("encode: %v", err)
		}
		got, err := DecodePage(buf)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.Meta != p.Meta {
			t.Fatalf("meta mismatch:\n got %+v\nwant %+v", got.Meta, p.Meta)
		}
		for i := range p.Entries {
			if got.Entries[i] != p.Entries[i] {
				t.Fatalf("entry %d mismatch", i)
			}
		}
	}
}

func TestCodecErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	small := make([]byte, 10)
	if err := EncodePage(makePage(1, page.TypeData, 0, 1, rng), small); err == nil {
		t.Error("encode into small buffer should fail")
	}
	if _, err := DecodePage(small); err == nil {
		t.Error("decode of small buffer should fail")
	}
	// Too many entries.
	p := page.New(1, page.TypeData, 0, MaxEntries+1)
	for i := 0; i <= MaxEntries; i++ {
		p.Append(page.Entry{MBR: geom.NewRect(0, 0, 1, 1)})
	}
	p.Recompute()
	buf := make([]byte, PageSize)
	if err := EncodePage(p, buf); err == nil {
		t.Error("encode of oversized page should fail")
	}
	// Corrupt entry count.
	ok := makePage(1, page.TypeData, 0, 3, rng)
	if err := EncodePage(ok, buf); err != nil {
		t.Fatal(err)
	}
	buf[12] = 0xFF
	buf[13] = 0xFF
	buf[14] = 0xFF
	buf[15] = 0x7F
	if _, err := DecodePage(buf); err == nil {
		t.Error("decode of corrupt entry count should fail")
	}
}

func TestMaxEntriesFitsPaperFanout(t *testing.T) {
	// The paper's R*-tree uses up to 51 directory entries per page; the
	// on-disk format must hold that.
	if MaxEntries < 51 {
		t.Fatalf("MaxEntries = %d, need at least 51", MaxEntries)
	}
}

func TestMemStoreResetStats(t *testing.T) {
	s := NewMemStore()
	id := s.Allocate()
	rng := rand.New(rand.NewSource(1))
	if err := s.Write(makePage(id, page.TypeData, 0, 1, rng)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(id); err != nil {
		t.Fatal(err)
	}
	s.ResetStats()
	if st := s.Stats(); st != (Stats{}) {
		t.Errorf("stats after reset = %+v", st)
	}
}

func TestMemStoreConcurrentAccess(t *testing.T) {
	s := NewMemStore()
	rng := rand.New(rand.NewSource(23))
	const n = 64
	ids := make([]page.ID, n)
	for i := range ids {
		ids[i] = s.Allocate()
		if err := s.Write(makePage(ids[i], page.TypeData, 0, 4, rng)); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(seed int64) {
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 500; i++ {
				if _, err := s.Read(ids[r.Intn(n)]); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(int64(g))
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Reads != 8*500 {
		t.Errorf("Reads = %d, want %d", st.Reads, 8*500)
	}
}
