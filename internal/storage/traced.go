package storage

import (
	"repro/internal/obs/tracing"
	"repro/internal/page"
)

// PageBytes returns the encoded size of p in bytes — the header plus its
// entries, i.e. the payload a FileStore write would occupy before padding
// to PageSize. Trace spans report this instead of the padded size so that
// sparse and dense pages are distinguishable in the I/O profile.
func PageBytes(p *page.Page) int {
	if p == nil {
		return 0
	}
	return headerSize + entrySize*len(p.Entries)
}

// tracedStore decorates a Store with per-request trace spans: every Read
// and Write attaches a child span (with page ID, byte count and error
// flag) to whatever trace is active in the slot. Unsampled requests find
// a nil Active and pay one nil check per call; the underlying store sees
// the exact same call sequence either way.
type tracedStore struct {
	inner Store
	slot  *tracing.Slot
}

// Traced wraps store so that physical reads and writes appear as child
// spans of the trace currently parked in slot. The buffer manager installs
// the wrapper when a tracer is attached; the slot is owned by the manager
// and read under its serialization, so the wrapper adds no locking.
func Traced(store Store, slot *tracing.Slot) Store {
	return &tracedStore{inner: store, slot: slot}
}

// Read implements Store, recording a store.Read span on sampled requests.
func (t *tracedStore) Read(id page.ID) (*page.Page, error) {
	a := t.slot.Active()
	if a == nil {
		return t.inner.Read(id)
	}
	idx := a.Start(tracing.KindStoreRead)
	p, err := t.inner.Read(id)
	sp := a.At(idx)
	sp.Page = id
	sp.Err = err != nil
	sp.Bytes = int32(PageBytes(p))
	a.End(idx)
	return p, err
}

// Write implements Store, recording a store.Write span on sampled requests.
func (t *tracedStore) Write(p *page.Page) error {
	a := t.slot.Active()
	if a == nil {
		return t.inner.Write(p)
	}
	idx := a.Start(tracing.KindStoreWrite)
	err := t.inner.Write(p)
	sp := a.At(idx)
	if p != nil {
		sp.Page = p.ID
	}
	sp.Err = err != nil
	sp.Bytes = int32(PageBytes(p))
	a.End(idx)
	return err
}

// Allocate implements Store.
func (t *tracedStore) Allocate() page.ID { return t.inner.Allocate() }

// NumPages implements Store.
func (t *tracedStore) NumPages() int { return t.inner.NumPages() }

// Stats implements Store.
func (t *tracedStore) Stats() Stats { return t.inner.Stats() }

// ResetStats implements Store.
func (t *tracedStore) ResetStats() { t.inner.ResetStats() }

// Close implements Store.
func (t *tracedStore) Close() error { return t.inner.Close() }
