package trace

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"os"
)

// Save writes the trace to a file (gob encoding). Saved traces let the
// tooling record a reference string once and replay it in later processes
// (tracedump -out / -in).
func (t *Trace) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: save: %w", err)
	}
	w := bufio.NewWriter(f)
	if err := gob.NewEncoder(w).Encode(t); err != nil {
		f.Close()
		return fmt.Errorf("trace: save %s: %w", path, err)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a trace previously written by Save.
func Load(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: load: %w", err)
	}
	defer f.Close()
	var t Trace
	if err := gob.NewDecoder(bufio.NewReader(f)).Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: load %s: %w", path, err)
	}
	return &t, nil
}
