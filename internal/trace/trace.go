// Package trace records and replays page-reference strings.
//
// The sequence of tree pages a query set touches does not depend on the
// buffer policy (queries are read-only and traverse the same index), so
// the experiment harness records the reference string once per
// (database, query set) pair and replays it through every policy × buffer
// size. Replay produces exactly the disk-access counts of live execution —
// an equivalence the integration tests assert — at a fraction of the cost.
// ReplayWithSink additionally re-emits the obs event stream during replay,
// so recorded traces can feed the same exporters (JSONL, counters,
// c-trajectories) as live runs.
package trace

import (
	"fmt"

	"repro/internal/buffer"
	"repro/internal/obs"
	"repro/internal/obs/tracing"
	"repro/internal/page"
	"repro/internal/queryset"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// Ref is one page reference: which page was requested on behalf of which
// query.
type Ref struct {
	Query uint64
	Page  page.ID
}

// Trace is the reference string of a query set against a tree.
type Trace struct {
	Name string
	Refs []Ref
}

// Len returns the number of page references.
func (t *Trace) Len() int { return len(t.Refs) }

// recorder is an rtree.Reader that appends every access to a trace.
type recorder struct {
	inner rtree.Reader
	refs  []Ref
}

// Get implements rtree.Reader.
func (r *recorder) Get(id page.ID, ctx buffer.AccessContext) (*page.Page, error) {
	r.refs = append(r.refs, Ref{Query: ctx.QueryID, Page: id})
	return r.inner.Get(id, ctx)
}

// Record runs the query set against the tree (windows via Search, points
// via the same path) and returns the reference string.
func Record(t *rtree.Tree, qs queryset.Set) (*Trace, error) {
	rec := &recorder{inner: rtree.StoreReader{Store: t.Store()}}
	for _, q := range qs.Queries {
		ctx := buffer.AccessContext{QueryID: q.ID}
		err := t.Search(rec, ctx, q.Rect, func(page.Entry) bool { return true })
		if err != nil {
			return nil, fmt.Errorf("trace: record %s query %d: %w", qs.Name, q.ID, err)
		}
	}
	return &Trace{Name: qs.Name, Refs: rec.refs}, nil
}

// Replay pushes the reference string through a fresh buffer of the given
// capacity and policy, returning the buffer statistics (DiskReads is the
// paper's cost metric).
func Replay(tr *Trace, store storage.Store, pol buffer.Policy, capacity int) (buffer.Stats, error) {
	m, err := buffer.NewManager(store, pol, capacity)
	if err != nil {
		return buffer.Stats{}, err
	}
	return ReplayOn(tr, m)
}

// ReplayWithSink is Replay with an observability sink attached before the
// first reference, so replay re-emits the full event stream (requests,
// evictions, promotions, adaptations) exactly as live execution would.
func ReplayWithSink(tr *Trace, store storage.Store, pol buffer.Policy, capacity int, sink obs.Sink) (buffer.Stats, error) {
	return ReplayTraced(tr, store, pol, capacity, sink, nil)
}

// ReplayTraced is ReplayWithSink with a request-scoped span tracer
// additionally attached (the replay records as shard 0): sampled
// references produce span trees — Get, victim selection with criterion
// values, ASB adaptations, physical I/O — exportable via
// tracing.WriteChromeTrace or WriteSpansJSONL. sink and tracer may each
// be nil; with both nil this is plain Replay.
func ReplayTraced(tr *Trace, store storage.Store, pol buffer.Policy, capacity int, sink obs.Sink, tracer *tracing.Tracer) (buffer.Stats, error) {
	m, err := buffer.NewManager(store, pol, capacity)
	if err != nil {
		return buffer.Stats{}, err
	}
	if sink != nil {
		m.SetSink(sink)
	}
	if tracer != nil {
		m.SetTracer(tracer, 0)
	}
	return ReplayOn(tr, m)
}

// ReplayOn replays the trace on an existing buffer pool (which is
// cleared first, as the paper clears the buffer before each query set).
// Any buffer.Pool works: a bare Engine for the single-threaded
// experiments, a sharded composition to measure partitioned policies.
func ReplayOn(tr *Trace, p buffer.Pool) (buffer.Stats, error) {
	if err := p.Clear(); err != nil {
		return buffer.Stats{}, err
	}
	for _, ref := range tr.Refs {
		if _, err := p.Get(ref.Page, buffer.AccessContext{QueryID: ref.Query}); err != nil {
			return buffer.Stats{}, fmt.Errorf("trace: replay %s: page %d: %w", tr.Name, ref.Page, err)
		}
	}
	return p.Stats(), nil
}

// PageMetas reads each distinct page of the trace from the store exactly
// once and returns its descriptor — the metadata an offline shadow-cache
// replay (tracedump's miss-ratio-curve mode) needs to score spatial
// criteria without re-reading pages per reference.
func PageMetas(tr *Trace, store storage.Store) (map[page.ID]page.Meta, error) {
	metas := make(map[page.ID]page.Meta)
	for _, ref := range tr.Refs {
		if _, ok := metas[ref.Page]; ok {
			continue
		}
		p, err := store.Read(ref.Page)
		if err != nil {
			return nil, fmt.Errorf("trace: meta of page %d: %w", ref.Page, err)
		}
		metas[ref.Page] = p.Meta
	}
	return metas, nil
}

// RunLive executes the query set against the tree reading through the
// given buffer pool — the non-trace path, used to validate replay
// equivalence and by the example programs.
func RunLive(t *rtree.Tree, qs queryset.Set, p buffer.Pool) (buffer.Stats, error) {
	if err := p.Clear(); err != nil {
		return buffer.Stats{}, err
	}
	for _, q := range qs.Queries {
		ctx := buffer.AccessContext{QueryID: q.ID}
		err := t.Search(p, ctx, q.Rect, func(page.Entry) bool { return true })
		if err != nil {
			return buffer.Stats{}, fmt.Errorf("trace: live %s query %d: %w", qs.Name, q.ID, err)
		}
	}
	return p.Stats(), nil
}
